package mergesum

import (
	"testing"

	"repro/internal/registry"
)

func TestKinds(t *testing.T) {
	kinds := Kinds()
	if len(kinds) < 13 {
		t.Fatalf("Kinds() = %d families, want at least 13: %v", len(kinds), kinds)
	}
	want := map[string]bool{
		"mg": true, "ss": true, "gk": true, "quantile": true,
		"countmin": true, "countsketch": true, "bottomk": true,
		"rangecount": true, "kernel": true, "qdigest": true,
		"hll": true, "kmv": true, "topk": true,
	}
	for _, k := range kinds {
		delete(want, k)
	}
	if len(want) != 0 {
		t.Fatalf("Kinds() missing %v", want)
	}
}

func TestDecode(t *testing.T) {
	s := NewMisraGries(16)
	s.Update(3, 40)
	s.Update(5, 10)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	v, err := Decode("mg", data)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := v.(*MisraGries)
	if !ok {
		t.Fatalf("Decode returned %T, want *MisraGries", v)
	}
	if got.N() != 50 || got.Estimate(3).Value != 40 {
		t.Fatalf("decoded summary wrong: n=%d", got.N())
	}

	// The frame's own tag must agree with the requested kind.
	if _, err := Decode("ss", data); err == nil {
		t.Fatal("Decode(\"ss\", mg-frame) succeeded")
	}
	if _, err := Decode("nope", data); err == nil {
		t.Fatal("Decode with unknown kind succeeded")
	}
}

func TestDecodeAny(t *testing.T) {
	// Every registered family must survive Encode → DecodeAny with its
	// canonical name and total weight intact.
	for _, name := range Kinds() {
		ent, ok := registry.ByName(name)
		if !ok {
			t.Fatalf("kind %q in Kinds() but not in registry", name)
		}
		ex := ent.Example(100)
		data, err := ent.Encode(ex)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		gotName, v, err := DecodeAny(data)
		if err != nil {
			t.Fatalf("%s: DecodeAny: %v", name, err)
		}
		if gotName != name {
			t.Fatalf("DecodeAny name = %q, want %q", gotName, name)
		}
		if ent.N(v) != ent.N(ex) {
			t.Fatalf("%s: DecodeAny n = %d, want %d", name, ent.N(v), ent.N(ex))
		}
	}

	if _, _, err := DecodeAny([]byte("not a frame")); err == nil {
		t.Fatal("DecodeAny on garbage succeeded")
	}
}
