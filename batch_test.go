// Batch-vs-loop equivalence: for every summary family, UpdateBatch
// over a stream must produce a state identical to (or, where batching
// legitimately defers work, guarantee-equivalent to) looping Update.
package mergesum_test

import (
	"fmt"
	"reflect"
	"testing"

	mergesum "repro"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/shard"
)

const batchStreamLen = 20000

func batchItemStream() []mergesum.Item {
	return gen.NewZipf(batchStreamLen/8, 1.1, 99).Stream(batchStreamLen)
}

func batchValueStream() []float64 {
	return gen.UniformValues(batchStreamLen, 99)
}

// weightedStream pairs the item stream with cycling weights 1..7.
func weightedStream() []mergesum.Counter {
	xs := batchItemStream()
	out := make([]mergesum.Counter, len(xs))
	for i, x := range xs {
		out[i] = mergesum.Counter{Item: x, Count: uint64(i%7) + 1}
	}
	return out
}

// chunks splits n into uneven chunk lengths so batch boundaries fall
// at irregular offsets (1, then growing, then whatever remains).
func chunks(n int) []int {
	var out []int
	for size, done := 1, 0; done < n; size = size*2 + 1 {
		if size > n-done {
			size = n - done
		}
		out = append(out, size)
		done += size
	}
	return out
}

func TestBatchEquivalence(t *testing.T) {
	type variant struct {
		name string
		// loop feeds every element one Update at a time; batch feeds
		// the same stream through UpdateBatch in uneven chunks. Both
		// return a comparable fingerprint of the final state.
		loop  func() any
		batch func() any
		// guarantee, when set, replaces fingerprint equality: it
		// receives both fingerprints and fails t on a violated bound.
		guarantee func(t *testing.T, loopFP, batchFP any)
	}

	items := batchItemStream()
	weighted := weightedStream()
	vals := batchValueStream()

	// Exact frequencies for the guarantee-equivalence checks.
	freq := exact.NewFreqTable()
	for _, x := range items {
		freq.Add(x, 1)
	}
	wfreq := exact.NewFreqTable()
	for _, c := range weighted {
		wfreq.Add(c.Item, c.Count)
	}

	// mgFingerprint captures everything the MG guarantee speaks about.
	type mgFP struct {
		n, dec uint64
		len, k int
		est    map[mergesum.Item]uint64
	}
	mgFinger := func(s *mergesum.MisraGries) any {
		est := make(map[mergesum.Item]uint64)
		for _, c := range s.Counters() {
			est[c.Item] = c.Count
		}
		return mgFP{n: s.N(), dec: s.ErrorBound(), len: s.Len(), k: s.K(), est: est}
	}
	mgGuarantee := func(truth *exact.FreqTable) func(t *testing.T, _, fp any) {
		return func(t *testing.T, _, fpAny any) {
			fp := fpAny.(mgFP)
			if fp.n != truth.N() {
				t.Fatalf("batch n=%d, want %d", fp.n, truth.N())
			}
			if fp.len > fp.k {
				t.Fatalf("batch holds %d counters, k=%d", fp.len, fp.k)
			}
			if bound := mergesum.MGBound(fp.n, fp.k); fp.dec > bound {
				t.Fatalf("batch dec=%d exceeds n/(k+1)=%d", fp.dec, bound)
			}
			for _, c := range truth.Counters() {
				est := fp.est[c.Item]
				if est > c.Count {
					t.Fatalf("item %d: estimate %d overestimates true %d", c.Item, est, c.Count)
				}
				if est+fp.dec < c.Count {
					t.Fatalf("item %d: estimate %d + dec %d undercounts true %d", c.Item, est, fp.dec, c.Count)
				}
			}
		}
	}

	feedItems := func(feed func(s any, chunk []mergesum.Item), s any) {
		done := 0
		for _, c := range chunks(len(items)) {
			feed(s, items[done:done+c])
			done += c
		}
	}
	feedWeighted := func(feed func(s any, chunk []mergesum.Counter), s any) {
		done := 0
		for _, c := range chunks(len(weighted)) {
			feed(s, weighted[done:done+c])
			done += c
		}
	}
	feedVals := func(feed func(s any, chunk []float64), s any) {
		done := 0
		for _, c := range chunks(len(vals)) {
			feed(s, vals[done:done+c])
			done += c
		}
	}

	ssFinger := func(s *mergesum.SpaceSaving) any {
		return fmt.Sprintf("n=%d under=%d states=%v", s.N(), s.UnderBound(), s.States())
	}
	cmFinger := func(s *mergesum.CountMin) any {
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	csFinger := func(s *mergesum.CountSketch) any {
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	quantFinger := func(s interface {
		N() uint64
		Rank(float64) uint64
	}) any {
		ranks := make([]uint64, 0, 9)
		for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			ranks = append(ranks, s.Rank(phi))
		}
		return fmt.Sprintf("n=%d ranks=%v", s.N(), ranks)
	}

	variants := []variant{
		{
			name: "mg/unit",
			loop: func() any {
				s := mergesum.NewMisraGries(64)
				for _, x := range items {
					s.Update(x, 1)
				}
				return mgFinger(s)
			},
			batch: func() any {
				s := mergesum.NewMisraGries(64)
				feedItems(func(s2 any, c []mergesum.Item) { s2.(*mergesum.MisraGries).UpdateBatch(c) }, s)
				return mgFinger(s)
			},
			guarantee: mgGuarantee(freq),
		},
		{
			name: "mg/weighted",
			loop: func() any {
				s := mergesum.NewMisraGries(64)
				for _, c := range weighted {
					s.Update(c.Item, c.Count)
				}
				return mgFinger(s)
			},
			batch: func() any {
				s := mergesum.NewMisraGries(64)
				feedWeighted(func(s2 any, c []mergesum.Counter) { s2.(*mergesum.MisraGries).UpdateBatchWeighted(c) }, s)
				return mgFinger(s)
			},
			guarantee: mgGuarantee(wfreq),
		},
		{
			name: "spacesaving/unit",
			loop: func() any {
				s := mergesum.NewSpaceSaving(64)
				for _, x := range items {
					s.Update(x, 1)
				}
				return ssFinger(s)
			},
			batch: func() any {
				s := mergesum.NewSpaceSaving(64)
				feedItems(func(s2 any, c []mergesum.Item) { s2.(*mergesum.SpaceSaving).UpdateBatch(c) }, s)
				return ssFinger(s)
			},
		},
		{
			name: "spacesaving/weighted",
			loop: func() any {
				s := mergesum.NewSpaceSaving(64)
				for _, c := range weighted {
					s.Update(c.Item, c.Count)
				}
				return ssFinger(s)
			},
			batch: func() any {
				s := mergesum.NewSpaceSaving(64)
				feedWeighted(func(s2 any, c []mergesum.Counter) { s2.(*mergesum.SpaceSaving).UpdateBatchWeighted(c) }, s)
				return ssFinger(s)
			},
		},
		{
			name: "countmin/unit",
			loop: func() any {
				s := mergesum.NewCountMin(512, 4, 7)
				for _, x := range items {
					s.Update(x, 1)
				}
				return cmFinger(s)
			},
			batch: func() any {
				s := mergesum.NewCountMin(512, 4, 7)
				feedItems(func(s2 any, c []mergesum.Item) { s2.(*mergesum.CountMin).UpdateBatch(c) }, s)
				return cmFinger(s)
			},
		},
		{
			name: "countmin/weighted",
			loop: func() any {
				s := mergesum.NewCountMin(512, 4, 7)
				for _, c := range weighted {
					s.Update(c.Item, c.Count)
				}
				return cmFinger(s)
			},
			batch: func() any {
				s := mergesum.NewCountMin(512, 4, 7)
				feedWeighted(func(s2 any, c []mergesum.Counter) { s2.(*mergesum.CountMin).UpdateBatchWeighted(c) }, s)
				return cmFinger(s)
			},
		},
		{
			name: "countmin/conservative",
			loop: func() any {
				s := mergesum.NewCountMin(512, 4, 7)
				s.SetConservative(true)
				for _, c := range weighted {
					s.Update(c.Item, c.Count)
				}
				return cmFinger(s)
			},
			batch: func() any {
				s := mergesum.NewCountMin(512, 4, 7)
				s.SetConservative(true)
				feedWeighted(func(s2 any, c []mergesum.Counter) { s2.(*mergesum.CountMin).UpdateBatchWeighted(c) }, s)
				return cmFinger(s)
			},
		},
		{
			name: "countsketch/unit",
			loop: func() any {
				s := mergesum.NewCountSketch(512, 5, 7)
				for _, x := range items {
					s.Update(x, 1)
				}
				return csFinger(s)
			},
			batch: func() any {
				s := mergesum.NewCountSketch(512, 5, 7)
				feedItems(func(s2 any, c []mergesum.Item) { s2.(*mergesum.CountSketch).UpdateBatch(c) }, s)
				return csFinger(s)
			},
		},
		{
			name: "countsketch/weighted",
			loop: func() any {
				s := mergesum.NewCountSketch(512, 5, 7)
				for _, c := range weighted {
					s.Update(c.Item, c.Count)
				}
				return csFinger(s)
			},
			batch: func() any {
				s := mergesum.NewCountSketch(512, 5, 7)
				feedWeighted(func(s2 any, c []mergesum.Counter) { s2.(*mergesum.CountSketch).UpdateBatchWeighted(c) }, s)
				return csFinger(s)
			},
		},
		{
			name: "kmv",
			loop: func() any {
				s := mergesum.NewKMV(256, 7)
				for _, x := range items {
					s.Update(x)
				}
				return fmt.Sprintf("n=%d hashes=%v", s.N(), s.Hashes())
			},
			batch: func() any {
				s := mergesum.NewKMV(256, 7)
				feedItems(func(s2 any, c []mergesum.Item) { s2.(*mergesum.KMV).UpdateBatch(c) }, s)
				return fmt.Sprintf("n=%d hashes=%v", s.N(), s.Hashes())
			},
		},
		{
			name: "hll",
			loop: func() any {
				s := mergesum.NewHLL(12, 7)
				for _, x := range items {
					s.Update(x)
				}
				data, err := s.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				return string(data)
			},
			batch: func() any {
				s := mergesum.NewHLL(12, 7)
				feedItems(func(s2 any, c []mergesum.Item) { s2.(*mergesum.HLL).UpdateBatch(c) }, s)
				data, err := s.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				return string(data)
			},
		},
		{
			name: "gk",
			loop: func() any {
				s := mergesum.NewGK(0.01)
				for _, v := range vals {
					s.Update(v)
				}
				return quantFinger(s)
			},
			batch: func() any {
				s := mergesum.NewGK(0.01)
				feedVals(func(s2 any, c []float64) { s2.(*mergesum.GK).UpdateBatch(c) }, s)
				return quantFinger(s)
			},
		},
		{
			name: "randquant",
			loop: func() any {
				s := mergesum.NewQuantile(0.02, 7)
				for _, v := range vals {
					s.Update(v)
				}
				return quantFinger(s)
			},
			batch: func() any {
				s := mergesum.NewQuantile(0.02, 7)
				feedVals(func(s2 any, c []float64) { s2.(*mergesum.Quantile).UpdateBatch(c) }, s)
				return quantFinger(s)
			},
		},
		{
			name: "randquant/hybrid",
			loop: func() any {
				s := mergesum.NewQuantileHybrid(0.02, 7)
				for _, v := range vals {
					s.Update(v)
				}
				return quantFinger(s)
			},
			batch: func() any {
				s := mergesum.NewQuantileHybrid(0.02, 7)
				feedVals(func(s2 any, c []float64) { s2.(*mergesum.QuantileHybrid).UpdateBatch(c) }, s)
				return quantFinger(s)
			},
		},
		{
			name: "qdigest",
			loop: func() any {
				s := mergesum.NewQDigest(16, 0.01)
				for _, x := range items {
					s.Update(uint64(x), 1)
				}
				ranks := make([]uint64, 0, 4)
				for _, q := range []uint64{10, 100, 1000, 60000} {
					ranks = append(ranks, s.Rank(q))
				}
				return fmt.Sprintf("n=%d ranks=%v", s.N(), ranks)
			},
			batch: func() any {
				s := mergesum.NewQDigest(16, 0.01)
				done := 0
				for _, c := range chunks(len(items)) {
					chunk := make([]uint64, c)
					for i, x := range items[done : done+c] {
						chunk[i] = uint64(x)
					}
					s.UpdateBatch(chunk)
					done += c
				}
				ranks := make([]uint64, 0, 4)
				for _, q := range []uint64{10, 100, 1000, 60000} {
					ranks = append(ranks, s.Rank(q))
				}
				return fmt.Sprintf("n=%d ranks=%v", s.N(), ranks)
			},
		},
		{
			name: "topk",
			loop: func() any {
				s := mergesum.NewTopK(32, 512, 4, 7)
				for _, x := range items {
					s.Update(x, 1)
				}
				return fmt.Sprintf("n=%d top=%v", s.N(), s.Top())
			},
			batch: func() any {
				s := mergesum.NewTopK(32, 512, 4, 7)
				feedItems(func(s2 any, c []mergesum.Item) { s2.(*mergesum.TopK).UpdateBatch(c) }, s)
				return fmt.Sprintf("n=%d top=%v", s.N(), s.Top())
			},
		},
		{
			name: "topk/weighted",
			loop: func() any {
				s := mergesum.NewTopK(32, 512, 4, 7)
				for _, c := range weighted {
					s.Update(c.Item, c.Count)
				}
				return fmt.Sprintf("n=%d top=%v", s.N(), s.Top())
			},
			batch: func() any {
				s := mergesum.NewTopK(32, 512, 4, 7)
				feedWeighted(func(s2 any, c []mergesum.Counter) { s2.(*mergesum.TopK).UpdateBatchWeighted(c) }, s)
				return fmt.Sprintf("n=%d top=%v", s.N(), s.Top())
			},
		},
		{
			name: "bottomk",
			loop: func() any {
				s := mergesum.NewBottomK(512, 7)
				for _, v := range vals {
					s.Update(v)
				}
				return fmt.Sprintf("n=%d vals=%v", s.N(), s.Values())
			},
			batch: func() any {
				s := mergesum.NewBottomK(512, 7)
				feedVals(func(s2 any, c []float64) { s2.(*mergesum.BottomK).UpdateBatch(c) }, s)
				return fmt.Sprintf("n=%d vals=%v", s.N(), s.Values())
			},
		},
	}

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			loopFP := v.loop()
			batchFP := v.batch()
			if v.guarantee != nil {
				v.guarantee(t, loopFP, batchFP)
				return
			}
			if !reflect.DeepEqual(loopFP, batchFP) {
				t.Fatalf("batch state differs from loop state:\nloop:  %v\nbatch: %v", loopFP, batchFP)
			}
		})
	}
}

// TestShardedUpdateBatch checks that batched sharded ingestion merges
// to the same totals as per-item sharded ingestion, and that the
// pooled partition buffers route every index exactly once.
func TestShardedUpdateBatch(t *testing.T) {
	items := batchItemStream()

	mkSharded := func() *shard.Sharded[*mergesum.MisraGries] {
		return shard.New(8, func(int) *mergesum.MisraGries { return mergesum.NewMisraGries(64) })
	}

	perItem := mkSharded()
	for _, x := range items {
		perItem.Update(uint64(x), func(s *mergesum.MisraGries) { s.Update(x, 1) })
	}

	batched := mkSharded()
	done := 0
	for _, c := range chunks(len(items)) {
		chunk := items[done : done+c]
		batched.UpdateBatch(len(chunk),
			func(i int) uint64 { return uint64(chunk[i]) },
			func(s *mergesum.MisraGries, idxs []int) {
				for _, i := range idxs {
					s.Update(chunk[i], 1)
				}
			})
		done += c
	}

	clone := func(s *mergesum.MisraGries) *mergesum.MisraGries { return s.Clone() }
	merge := func(dst, src *mergesum.MisraGries) error { return dst.Merge(src) }
	a, err := perItem.Snapshot(clone, merge)
	if err != nil {
		t.Fatal(err)
	}
	b, err := batched.Snapshot(clone, merge)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.N() != uint64(len(items)) {
		t.Fatalf("per-item N=%d batched N=%d, want %d", a.N(), b.N(), len(items))
	}
	// Same routing => per-shard summaries saw identical substreams.
	if got, want := fmt.Sprint(b.Counters()), fmt.Sprint(a.Counters()); got != want {
		t.Fatalf("batched merge differs:\nper-item: %s\nbatched:  %s", want, got)
	}
}
