package stats

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
)

func TestMeasureFreq(t *testing.T) {
	truth := exact.NewFreqTable()
	truth.Add(1, 10)
	truth.Add(2, 20)
	truth.Add(3, 5)
	est := func(x core.Item) core.Estimate {
		switch x {
		case 1:
			return core.Estimate{Value: 8, Lower: 8, Upper: 12} // under by 2
		case 2:
			return core.Estimate{Value: 25, Lower: 20, Upper: 25} // over by 5
		default:
			return core.Estimate{Value: 5, Lower: 5, Upper: 5} // exact
		}
	}
	got := MeasureFreq(truth, est)
	if got.Items != 3 {
		t.Fatalf("Items = %d", got.Items)
	}
	if got.MaxAbs != 5 || got.SumAbs != 7 {
		t.Errorf("MaxAbs=%d SumAbs=%d", got.MaxAbs, got.SumAbs)
	}
	if got.MaxOver != 5 || got.MaxUnder != 2 {
		t.Errorf("MaxOver=%d MaxUnder=%d", got.MaxOver, got.MaxUnder)
	}
	if math.Abs(got.MeanAbs-7.0/3) > 1e-12 {
		t.Errorf("MeanAbs = %v", got.MeanAbs)
	}
	if got.Violations != 0 {
		t.Errorf("Violations = %d", got.Violations)
	}
}

func TestMeasureFreqViolations(t *testing.T) {
	truth := exact.NewFreqTable()
	truth.Add(1, 10)
	est := func(core.Item) core.Estimate {
		return core.Estimate{Value: 3, Lower: 3, Upper: 5} // interval misses 10
	}
	if got := MeasureFreq(truth, est); got.Violations != 1 {
		t.Errorf("Violations = %d, want 1", got.Violations)
	}
}

func TestMeasureRecall(t *testing.T) {
	truth := []core.Counter{{Item: 1, Count: 10}, {Item: 2, Count: 9}, {Item: 3, Count: 8}}
	reported := []core.Counter{{Item: 1, Count: 11}, {Item: 3, Count: 7}, {Item: 9, Count: 6}, {Item: 9, Count: 6}}
	r := MeasureRecall(truth, reported)
	if r.TruePositives != 2 || r.FalsePositives != 1 || r.FalseNegatives != 1 {
		t.Fatalf("recall = %+v", r)
	}
	if math.Abs(r.RecallRate()-2.0/3) > 1e-12 {
		t.Errorf("RecallRate = %v", r.RecallRate())
	}
	if math.Abs(r.PrecisionRate()-2.0/3) > 1e-12 {
		t.Errorf("PrecisionRate = %v", r.PrecisionRate())
	}
	if math.Abs(r.F1()-2.0/3) > 1e-12 {
		t.Errorf("F1 = %v", r.F1())
	}
}

func TestRecallDegenerate(t *testing.T) {
	r := MeasureRecall(nil, nil)
	if r.RecallRate() != 1 || r.PrecisionRate() != 1 {
		t.Error("empty sets should give perfect rates")
	}
}

type fixedQuantiles struct{ vals []float64 }

func (f fixedQuantiles) Update(float64)      {}
func (f fixedQuantiles) N() uint64           { return uint64(len(f.vals)) }
func (f fixedQuantiles) Rank(float64) uint64 { return 0 }
func (f fixedQuantiles) Quantile(phi float64) float64 {
	i := int(phi * float64(len(f.vals)))
	if i >= len(f.vals) {
		i = len(f.vals) - 1
	}
	return f.vals[i]
}

func TestMeasureQuantilesPerfect(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	oracle := exact.QuantilesOf(vals)
	got := MeasureQuantiles(oracle, fixedQuantiles{vals}, DefaultPhis)
	if got.MaxRel > 0.002 {
		t.Errorf("perfect summary MaxRel = %v", got.MaxRel)
	}
	if got.Queries != len(DefaultPhis) {
		t.Errorf("Queries = %d", got.Queries)
	}
}

func TestMeasureQuantilesEmptyOracle(t *testing.T) {
	got := MeasureQuantiles(exact.QuantilesOf(nil), fixedQuantiles{[]float64{1}}, DefaultPhis)
	if got.Queries != 0 || got.MaxRel != 0 {
		t.Errorf("empty oracle: %+v", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("E00: demo", "name", "value", "relerr")
	tb.AddRow("alpha", 42, 0.123456)
	tb.AddRow("beta-long-name", 7, 1.0)
	out := tb.String()
	if !strings.Contains(out, "E00: demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "beta-long-name") {
		t.Error("missing row")
	}
	if !strings.Contains(out, "0.1235") {
		t.Errorf("float not formatted to 4 significant digits:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// All data lines must align: header and separator equal length.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned header/separator:\n%s", out)
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
	if tb.Cell(0, 0) != "alpha" || tb.Cell(1, 1) != "7" {
		t.Error("Cell accessor wrong")
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	tb := NewTable("E00: md", "a", "b")
	tb.AddRow("x|y", 1)
	var b strings.Builder
	if err := tb.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "**E00: md**") {
		t.Error("missing bold title")
	}
	if !strings.Contains(out, "| a | b |") {
		t.Errorf("missing header row:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Error("missing separator row")
	}
	if !strings.Contains(out, `x\|y`) {
		t.Error("pipe not escaped")
	}
}
