// Package stats provides the error metrics and table rendering used by
// the experiment harness: frequency-estimation error summaries,
// heavy-hitter recall/precision, quantile rank-error sweeps, and an
// aligned ASCII table writer for reproducible experiment output.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/exact"
)

// FreqErr summarizes the estimation error of a frequency summary
// against the exact table, over all items of the table.
type FreqErr struct {
	MaxAbs     uint64  // max |est - true|
	SumAbs     uint64  // Σ |est - true| (the total-error metric of the supplied text)
	MeanAbs    float64 // SumAbs / #items
	MaxOver    uint64  // max est - true (overestimation side)
	MaxUnder   uint64  // max true - est (underestimation side)
	Violations int     // items whose guaranteed interval misses the truth
	Items      int
}

// MeasureFreq compares est against every item of the exact table.
func MeasureFreq(truth *exact.FreqTable, est func(core.Item) core.Estimate) FreqErr {
	var out FreqErr
	for _, c := range truth.Counters() {
		e := est(c.Item)
		out.Items++
		var abs uint64
		if e.Value >= c.Count {
			abs = e.Value - c.Count
			if abs > out.MaxOver {
				out.MaxOver = abs
			}
		} else {
			abs = c.Count - e.Value
			if abs > out.MaxUnder {
				out.MaxUnder = abs
			}
		}
		out.SumAbs += abs
		if abs > out.MaxAbs {
			out.MaxAbs = abs
		}
		if !e.Contains(c.Count) {
			out.Violations++
		}
	}
	if out.Items > 0 {
		out.MeanAbs = float64(out.SumAbs) / float64(out.Items)
	}
	return out
}

// Recall is the classification quality of a reported heavy-hitter set
// against the true set.
type Recall struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
}

// MeasureRecall compares reported items against true items.
func MeasureRecall(truth, reported []core.Counter) Recall {
	ts := make(map[core.Item]bool, len(truth))
	for _, c := range truth {
		ts[c.Item] = true
	}
	var out Recall
	seen := make(map[core.Item]bool, len(reported))
	for _, c := range reported {
		if seen[c.Item] {
			continue
		}
		seen[c.Item] = true
		if ts[c.Item] {
			out.TruePositives++
		} else {
			out.FalsePositives++
		}
	}
	out.FalseNegatives = len(truth) - out.TruePositives
	return out
}

// RecallRate returns TP/(TP+FN), or 1 for an empty truth set.
func (r Recall) RecallRate() float64 {
	if r.TruePositives+r.FalseNegatives == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalseNegatives)
}

// PrecisionRate returns TP/(TP+FP), or 1 for an empty report.
func (r Recall) PrecisionRate() float64 {
	if r.TruePositives+r.FalsePositives == 0 {
		return 1
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalsePositives)
}

// F1 returns the harmonic mean of recall and precision.
func (r Recall) F1() float64 {
	p, q := r.PrecisionRate(), r.RecallRate()
	if p+q == 0 {
		return 0
	}
	return 2 * p * q / (p + q)
}

// QuantileErr summarizes rank error of a quantile summary over a phi
// sweep, normalized by n (so 0.01 means a 1% rank error).
type QuantileErr struct {
	MaxRel  float64
	MeanRel float64
	Queries int
}

// DefaultPhis is the standard phi sweep used by experiments.
var DefaultPhis = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}

// MeasureQuantiles sweeps phis, comparing the summary's quantile
// answers against the exact oracle by realized rank.
func MeasureQuantiles(oracle *exact.Quantiles, s core.QuantileSummary, phis []float64) QuantileErr {
	var out QuantileErr
	n := float64(oracle.N())
	if n == 0 {
		return out
	}
	var sum float64
	for _, phi := range phis {
		got := s.Quantile(phi)
		trueRank := float64(oracle.Rank(got))
		rel := math.Abs(trueRank-phi*n) / n
		sum += rel
		if rel > out.MaxRel {
			out.MaxRel = rel
		}
		out.Queries++
	}
	out.MeanRel = sum / float64(out.Queries)
	return out
}

// Table is a simple aligned ASCII table for experiment output.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v, floats with 4
// significant digits.
func (t *Table) AddRow(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the formatted cell at (row, col); used by tests.
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// RenderCSV writes the table as RFC-4180-ish CSV (header row first,
// no title), the plot-ready format cmd/experiments -csv emits.
func (t *Table) RenderCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table,
// the format EXPERIMENTS.md embeds.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
