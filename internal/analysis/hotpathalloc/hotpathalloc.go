// Package hotpathalloc checks the allocation and determinism budget
// of functions annotated //sketch:hotpath — the UpdateBatch family
// that PR 1 made the ingestion fast path. Inside an annotated
// function the analyzer reports:
//
//   - calls into package fmt (every fmt call allocates and most
//     box their operands);
//   - any make(map[...]...) (a map is a pointer-chasing heap
//     structure; the flat-table layouts keep hot paths map-free, and
//     even a pre-sized map allocates its buckets per call — reuse a
//     pooled or struct-held map outside the hot path instead);
//   - calls into container/heap (Push/Pop box every element through
//     heap.Interface and Fix/Init dispatch each comparison through an
//     interface method table; hot paths use concrete sift helpers);
//   - boxing a loop variable into an interface-typed parameter
//     (one heap allocation per iteration);
//   - nondeterminism: time.Now/time.Since and global math/rand —
//     hot paths must be replayable, which the mergeability property
//     tests rely on;
//   - string([]byte) / string([]rune) conversions (each allocates a
//     copy of the slice; hot paths should pass slices through or use
//     unsafe-free lookup keys).
//
// panic("constant") remains allowed: guard clauses are part of the
// summaries' contracts and cost nothing until they fire.
package hotpathalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the hotpathalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: `check //sketch:hotpath functions stay allocation-free and deterministic

Annotated functions must not call fmt, allocate maps, go through
container/heap, box loop variables into interface parameters, consult
time/math-rand, or convert byte/rune slices to string.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotated(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//sketch:hotpath" {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	loopVars := collectLoopVars(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		checkCall(pass, fd, call, loopVars)
		return true
	})
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, loopVars map[types.Object]bool) {
	name := fd.Name.Name
	if isStringConversion(pass, call) {
		pass.Reportf(call.Pos(), "%s: string conversion of byte/rune slice in hot path allocates a copy; keep the slice or hoist the conversion", name)
		return
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "make" && len(call.Args) >= 1 {
			if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					if len(call.Args) == 1 {
						pass.Reportf(call.Pos(), "%s: unsized make(map) in hot path; hoist the allocation and reuse the map", name)
					} else {
						pass.Reportf(call.Pos(), "%s: make(map) in hot path allocates buckets per call; reuse a pooled or struct-held map", name)
					}
				}
			}
		}
	case *ast.SelectorExpr:
		if pkg := packageOf(pass, fun); pkg != "" {
			switch {
			case pkg == "fmt":
				pass.Reportf(call.Pos(), "%s: fmt.%s call in hot path allocates; format outside the batch loop or panic with a constant", name, fun.Sel.Name)
			case pkg == "container/heap":
				pass.Reportf(call.Pos(), "%s: heap.%s in hot path boxes through heap.Interface; use a concrete sift helper", name, fun.Sel.Name)
			case pkg == "time" && (fun.Sel.Name == "Now" || fun.Sel.Name == "Since"):
				pass.Reportf(call.Pos(), "%s: time.%s in hot path is nondeterministic; take timestamps outside the batch layer", name, fun.Sel.Name)
			case pkg == "math/rand" || pkg == "math/rand/v2":
				pass.Reportf(call.Pos(), "%s: global math/rand call %s in hot path is nondeterministic; thread a seeded gen.RNG instead", name, fun.Sel.Name)
			}
		}
	}
	// Interface boxing of loop variables: a loop-scoped variable
	// passed where the callee expects an interface allocates every
	// iteration.
	sig := signatureOf(pass, call)
	if sig == nil || len(loopVars) == 0 {
		return
	}
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !loopVars[obj] {
			continue
		}
		pt := paramType(sig, i)
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); isIface {
			// Passing through a type parameter or to any/error
			// boxes the loop variable.
			pass.Reportf(arg.Pos(), "%s: loop variable %s boxed into interface parameter; hoist the conversion or use a concrete-typed helper", name, id.Name)
		}
	}
}

// isStringConversion reports whether call is a conversion of a []byte
// or []rune operand to a string type — an allocation per call.
func isStringConversion(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	dst, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || dst.Kind() != types.String {
		return false
	}
	argTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return false
	}
	sl, ok := argTV.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	el, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (el.Kind() == types.Byte || el.Kind() == types.Rune)
}

// packageOf resolves sel's base identifier to an imported package
// path, or "".
func packageOf(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// signatureOf returns the callee's signature when known.
func signatureOf(pass *analysis.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramType returns the type of parameter i, honoring variadics.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		last := params.At(params.Len() - 1).Type()
		if sl, ok := last.(*types.Slice); ok {
			return sl.Elem()
		}
		return last
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// collectLoopVars gathers the objects declared as for/range loop
// variables anywhere in fd.
func collectLoopVars(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	define := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			define(n.Key)
			define(n.Value)
		case *ast.ForStmt:
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					define(lhs)
				}
			}
		}
		return true
	})
	return out
}
