package wireshape_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wireshape"
)

// TestWireshapeFixture runs the symmetry analyzer over a fixture
// package containing one codec per asymmetry class (width drift,
// step-count drift, re-keyed and unvalidated loop bounds, trailing
// length fields, unkeyed conditionals, missing Finish, unpaired
// encoders) next to a clean codec that exercises every supported
// idiom and must stay silent.
func TestWireshapeFixture(t *testing.T) {
	analysistest.Run(t, "../testdata/src/wireshape_a", wireshape.Analyzer)
}

// TestExtractRealModule extracts schemas from the real codec packages
// and checks every registered family produced one, with no open
// asymmetries anywhere in the module.
func TestExtractRealModule(t *testing.T) {
	loader, err := analysis.NewLoader("..", "sanitize")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.ModulePackageDirs()
	if err != nil {
		t.Fatal(err)
	}
	var schemas []*wireshape.Schema
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		res := wireshape.ExtractPackage(pkg)
		for _, a := range res.Asyms {
			t.Errorf("%s: unexpected asymmetry: %s", dir, a.Msg)
		}
		schemas = append(schemas, res.Schemas...)
	}
	byKind := map[string]int{}
	for _, s := range schemas {
		byKind[s.Name]++
	}
	for _, kind := range []string{
		"mg", "ss", "gk", "countmin", "countsketch", "kmv", "hll",
		"rangecount", "kernel", "quantile", "bottomk", "qdigest", "topk",
	} {
		if byKind[kind] == 0 {
			t.Errorf("no schema extracted for registered kind %q", kind)
		}
	}
}

// TestSchemaRoundTrip re-parses every committed schema and checks the
// reserialized form agrees byte-for-byte.
func TestSchemaRoundTrip(t *testing.T) {
	entries, err := os.ReadDir("schemas")
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".schema") {
			continue
		}
		n++
		raw, err := os.ReadFile(filepath.Join("schemas", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		schemas, err := wireshape.Unmarshal(raw)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		again := wireshape.Marshal(schemas)
		if string(again) != string(raw) {
			t.Errorf("%s: marshal(unmarshal(x)) != x:\n--- committed\n%s\n--- reserialized\n%s",
				e.Name(), raw, again)
		}
	}
	if n == 0 {
		t.Fatal("no committed schemas found — run `make wire-snapshot`")
	}
}

const baseSchema = `format wireshape/1
kind mg
codec Summary tag=KindMisraGries
  uvarint k
  uvarint len(cs) len
  repeat enc=field:1 dec=field:1 guard=arraylen
    uvarint c.Item
    uvarint c.Count
`

func parseOne(t *testing.T, text string) *wireshape.Schema {
	t.Helper()
	schemas, err := wireshape.Unmarshal([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(schemas) != 1 {
		t.Fatalf("parsed %d codecs, want 1", len(schemas))
	}
	return schemas[0]
}

// TestDiffClassification pins which edits count as breaking and which
// are warnings: reorders, width changes, mid-stream insertions and
// dropped guards break; trailing additions and guard reclassification
// only warn.
func TestDiffClassification(t *testing.T) {
	replace := func(old, new string) string {
		s := strings.Replace(baseSchema, old, new, 1)
		if s == baseSchema {
			t.Fatalf("edit %q not applied", new)
		}
		return s
	}
	cases := []struct {
		name, fresh string
		breaking    bool
		wantChanges bool
	}{
		{"identical", baseSchema, false, false},
		{"reordered fields", replace(
			"  uvarint k\n  uvarint len(cs) len",
			"  uvarint len(cs) len\n  uvarint k"), true, true},
		{"narrowed width", replace("uvarint k", "byte k"), true, true},
		{"dropped length guard", replace("guard=arraylen", "guard=-"), true, true},
		{"changed guard kind", replace("guard=arraylen", "guard=range"), false, true},
		{"trailing addition", baseSchema + "  f64 decay\n", false, true},
		{"mid-stream insertion", replace(
			"  uvarint k\n", "  uvarint k\n  f64 decay\n"), true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			changes := wireshape.Diff(parseOne(t, baseSchema), parseOne(t, tc.fresh))
			if !tc.wantChanges {
				if len(changes) != 0 {
					t.Fatalf("identical schemas diffed: %+v", changes)
				}
				return
			}
			if len(changes) == 0 {
				t.Fatal("expected at least one change")
			}
			var breaking bool
			for _, ch := range changes {
				if ch.Breaking {
					breaking = true
				}
			}
			if breaking != tc.breaking {
				t.Fatalf("breaking=%v, want %v; changes: %+v", breaking, tc.breaking, changes)
			}
		})
	}
}

// TestSnapshotRefusesAsymmetries checks WriteSnapshots refuses while
// symmetry errors are open, so a broken codec can never overwrite the
// committed contract.
func TestSnapshotRefusesAsymmetries(t *testing.T) {
	res := &wireshape.Result{Asyms: []wireshape.Asym{{Msg: "boom"}}}
	if _, err := wireshape.WriteSnapshots(t.TempDir(), []*wireshape.Result{res}); err == nil {
		t.Fatal("WriteSnapshots must refuse while asymmetries are open")
	}
}

// TestSnapshotWriteAndPrune checks snapshot generation writes one file
// per kind, is idempotent, and prunes schemas whose kind disappeared.
func TestSnapshotWriteAndPrune(t *testing.T) {
	dir := t.TempDir()
	res := &wireshape.Result{Schemas: []*wireshape.Schema{
		{Name: "mg", Tag: "KindMisraGries", Type: "Summary",
			Steps: []*wireshape.Step{{Kind: wireshape.StepField, Op: wireshape.OpUvarint, Label: "k"}}},
	}}
	changed, err := wireshape.WriteSnapshots(dir, []*wireshape.Result{res})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || changed[0] != "mg.schema" {
		t.Fatalf("changed = %v, want [mg.schema]", changed)
	}
	changed, err = wireshape.WriteSnapshots(dir, []*wireshape.Result{res})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Fatalf("second snapshot not idempotent: %v", changed)
	}
	if err := os.WriteFile(filepath.Join(dir, "stale.schema"), []byte("format wireshape/1\nkind stale\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	changed, err = wireshape.WriteSnapshots(dir, []*wireshape.Result{res})
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 1 || !strings.Contains(changed[0], "stale.schema") {
		t.Fatalf("stale schema not pruned: %v", changed)
	}
	if _, err := os.Stat(filepath.Join(dir, "stale.schema")); !os.IsNotExist(err) {
		t.Fatal("stale.schema still on disk after prune")
	}
}

// TestRenderDocs checks the generated appendix mentions every
// committed kind and the step grammar.
func TestRenderDocs(t *testing.T) {
	text, err := wireshape.RenderDocs("schemas")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"### Kind `mg`", "### Kind `quantile`", "repeat", "uvarint"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered docs missing %q", want)
		}
	}
}
