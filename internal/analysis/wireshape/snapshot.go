package wireshape

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// WriteSnapshots serializes the extracted schemas of all packages to
// one <kind>.schema file per wire kind under dir, pruning orphaned
// .schema files whose kind no longer exists. It refuses to snapshot
// while any symmetry error is open — a snapshot must be a proof, not
// a wish. Returns the file names written or removed.
func WriteSnapshots(dir string, results []*Result) ([]string, error) {
	byName := map[string][]*Schema{}
	asyms := 0
	for _, r := range results {
		asyms += len(r.Asyms)
		for _, s := range r.Schemas {
			byName[s.Name] = append(byName[s.Name], s)
		}
	}
	if asyms > 0 {
		return nil, fmt.Errorf("refusing to snapshot with %d open encode/decode symmetry error(s); run sketchlint and fix them first", asyms)
	}
	if len(byName) == 0 {
		return nil, fmt.Errorf("no wire schemas extracted; nothing to snapshot")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	keep := map[string]bool{}
	var changed []string
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		file := name + ".schema"
		keep[file] = true
		data := Marshal(byName[name])
		path := filepath.Join(dir, file)
		if old, err := os.ReadFile(path); err == nil && bytes.Equal(old, data) {
			continue
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return nil, err
		}
		changed = append(changed, file)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".schema") && !keep[e.Name()] {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, err
			}
			changed = append(changed, e.Name()+" (removed)")
		}
	}
	return changed, nil
}

// RenderDocs renders the committed schemas under dir as the DESIGN.md
// wire-format appendix: one section per kind, the schema body shown
// verbatim, with a legend for the step grammar. The output is
// deterministic so `make wire-docs` is idempotent.
func RenderDocs(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".schema") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return "", fmt.Errorf("no .schema files under %s; run `make wire-snapshot` first", dir)
	}
	var b strings.Builder
	b.WriteString("All payloads ride inside the common frame (magic `MSUM`, version, kind\n")
	b.WriteString("byte, uvarint payload length, payload, CRC32). The payload layouts\n")
	b.WriteString("below are machine-extracted by the `wireshape` analyzer and proven\n")
	b.WriteString("symmetric between encoder and decoder; `wirecompat` fails `make check`\n")
	b.WriteString("on any drift from these committed snapshots.\n\n")
	b.WriteString("Step grammar: `<width> <source-expr> [len]` is one scalar field\n")
	b.WriteString("(`uvarint` varint, `byte`, `f64` little-endian IEEE-754, `bytes` raw\n")
	b.WriteString("run); `len` marks an element count. `repeat enc=<b> dec=<b>\n")
	b.WriteString("guard=<g>` is a loop over the indented steps — bounds name the\n")
	b.WriteString("header field (`field:<path>`), summary column (`col:<name>`) or\n")
	b.WriteString("expression that keys them, and the guard says how the decoder\n")
	b.WriteString("validates the count (`arraylen`, `remaining`, `range`, `const`).\n")
	b.WriteString("`cond key=field:<path>` groups fields present only when that flag\n")
	b.WriteString("byte is nonzero.\n")
	for _, file := range files {
		data, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			return "", err
		}
		schemas, err := Unmarshal(data)
		if err != nil {
			return "", fmt.Errorf("%s: %w", file, err)
		}
		if len(schemas) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n### Kind `%s`\n", schemas[0].Name)
		for _, s := range schemas {
			fmt.Fprintf(&b, "\nCodec `%s` (tag `%s`):\n\n```text\n", s.Type, s.Tag)
			var sb strings.Builder
			marshalSteps(&sb, s.Steps, 0)
			b.WriteString(sb.String())
			b.WriteString("```\n")
		}
	}
	return b.String(), nil
}
