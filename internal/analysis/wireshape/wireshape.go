package wireshape

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

// Analyzer proves encode/decode wire symmetry for every codec pair in
// the package. See the package documentation for the model.
var Analyzer = &analysis.Analyzer{
	Name: "wireshape",
	Doc: `wireshape: prove encode/decode wire symmetry of the summary codecs

Extracts the linear wire schema of every MarshalBinary /
UnmarshalBinary pair sharing a codec kind — the ordered width-class
steps, loops abstracted as repeat nodes keyed to their bounding length
field — and reports any asymmetry: mismatched step counts or widths,
a loop re-keyed to a different count, a length field written after
the data it bounds, a decode loop whose bound is never validated
(ArrayLen, Remaining() comparison, or range check), or a decoder that
never calls Reader.Finish.`,
	Run: func(pass *analysis.Pass) error {
		res := Extract(pass)
		for _, a := range res.Asyms {
			pass.Reportf(a.Pos, "%s", a.Msg)
		}
		return nil
	},
}

// Result is the wireshape extraction of one package: the proven
// schemas of its symmetric codecs, and the asymmetries of the rest
// (codecs with symmetry errors contribute no schema).
type Result struct {
	Schemas []*Schema
	Asyms   []Asym
}

// Extraction is cached per package: the wireshape and wirecompat
// analyzers (and the snapshot driver) share one symbolic walk.
var (
	cacheMu sync.Mutex
	cache   = map[*types.Package]*Result{}
)

// Extract returns the (cached) wireshape extraction for the pass's
// package.
func Extract(pass *analysis.Pass) *Result {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if r, ok := cache[pass.Pkg]; ok {
		return r
	}
	r := extractAll(flow.Of(pass))
	cache[pass.Pkg] = r
	return r
}

// ExtractPackage is Extract for driver code that holds a loaded
// package rather than an analyzer pass (the wire-snapshot and
// wire-docs modes of cmd/sketchlint).
func ExtractPackage(pkg *analysis.Package) *Result {
	return Extract(&analysis.Pass{
		Analyzer:  Analyzer,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		PkgPath:   pkg.Path,
	})
}

// codecKey pairs the two directions of one codec: a Go type encoding
// one wire kind.
type codecKey struct {
	typ  string
	kind string
}

func extractAll(in *flow.Info) *Result {
	res := &Result{}
	kindNames := scanRegistrations(in)
	encs := map[codecKey]*ast.FuncDecl{}
	decs := map[codecKey]*ast.FuncDecl{}
	for fn, fd := range in.Funcs {
		switch fn.Name() {
		case "MarshalBinary":
			if kc := frameKind(in, fd, "EncodeFrame"); kc != "" {
				encs[codecKey{codecTypeName(fn), kc}] = fd
			}
		case "UnmarshalBinary", "DecodeInto":
			if kc := frameKind(in, fd, "DecodeFrame"); kc != "" {
				key := codecKey{codecTypeName(fn), kc}
				// An UnmarshalBinary with the frame call wins over a
				// DecodeInto wrapper carrying its own.
				if prev := decs[key]; prev == nil || fd.Name.Name == "UnmarshalBinary" {
					decs[key] = fd
				}
			}
		}
	}
	keys := map[codecKey]bool{}
	for k := range encs {
		keys[k] = true
	}
	for k := range decs {
		keys[k] = true
	}
	sorted := make([]codecKey, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].typ != sorted[j].typ {
			return sorted[i].typ < sorted[j].typ
		}
		return sorted[i].kind < sorted[j].kind
	})
	for _, key := range sorted {
		encFd, decFd := encs[key], decs[key]
		switch {
		case decFd == nil:
			res.Asyms = append(res.Asyms, Asym{encFd.Pos(), fmt.Sprintf(
				"%s.MarshalBinary encodes %s but nothing decodes it", key.typ, key.kind)})
			continue
		case encFd == nil:
			res.Asyms = append(res.Asyms, Asym{decFd.Pos(), fmt.Sprintf(
				"%s decodes %s but no MarshalBinary encodes it", key.typ, key.kind)})
			continue
		}
		encEx := newExtractor(in, dirEncode, encFd)
		encSteps := encEx.extract(encFd)
		decEx := newExtractor(in, dirDecode, decFd)
		decSteps := decEx.extract(decFd)
		errs := append(append([]Asym{}, encEx.errs...), decEx.errs...)
		if !callsFinish(in, decFd) {
			errs = append(errs, Asym{decFd.Pos(), fmt.Sprintf(
				"%s decoder for %s never calls Reader.Finish (trailing bytes would pass silently)",
				key.typ, key.kind)})
		}
		checkEncOrder(encSteps, &errs)
		unified := unifySteps(encSteps, decSteps, &errs)
		if len(errs) > 0 {
			res.Asyms = append(res.Asyms, errs...)
			continue
		}
		name := kindNames[key.kind]
		if name == "" {
			name = strings.ToLower(strings.TrimPrefix(key.kind, "Kind"))
		}
		res.Schemas = append(res.Schemas, &Schema{
			Name: name, Tag: key.kind, Type: key.typ, Steps: unified, Pos: encFd.Pos(),
		})
	}
	return res
}

// --- unification: the symmetry proof ---

// unifySteps merges the encode and decode step trees into one proven
// schema, reporting every asymmetry: the two sides must agree on step
// count, kind and width class; loops keyed to header fields must be
// keyed to the same field; decode loop bounds must be validated.
func unifySteps(enc, dec []*Step, errs *[]Asym) []*Step {
	if len(enc) != len(dec) {
		*errs = append(*errs, Asym{extraStepPos(enc, dec), fmt.Sprintf(
			"encode writes %d wire step(s) at this level but decode reads %d", len(enc), len(dec))})
	}
	var out []*Step
	for i := 0; i < len(enc) && i < len(dec); i++ {
		e, d := enc[i], dec[i]
		if e.Kind != d.Kind {
			*errs = append(*errs, Asym{posOf(e, d), fmt.Sprintf(
				"step %s: encode is %s but decode is %s", e.Path, describe(e), describe(d))})
			continue
		}
		u := &Step{Kind: e.Kind, Path: e.Path, Pos: e.Pos}
		switch e.Kind {
		case StepField:
			if e.Op != d.Op {
				*errs = append(*errs, Asym{posOf(e, d), fmt.Sprintf(
					"field %s (%s): encode writes %s but decode reads %s", e.Path, e.Label, e.Op, d.Op)})
			}
			u.Op, u.Label, u.IsLen = e.Op, e.Label, e.IsLen
		case StepRepeat:
			// Bounds from the same category must agree exactly (a
			// field-bounded loop re-keyed to a different header field
			// is the classic truncation bug); cross-category pairs
			// (encode ranges a column, decode counts a field) are
			// legal — the golden round-trip covers their equality.
			if boundCat(e.EncBound) == boundCat(d.DecBound) && e.EncBound != d.DecBound {
				*errs = append(*errs, Asym{posOf(e, d), fmt.Sprintf(
					"repeat %s re-keyed: encode loops over %s but decode loops over %s",
					e.Path, e.EncBound, d.DecBound)})
			}
			if d.Guard == "" {
				*errs = append(*errs, Asym{posOf(e, d), fmt.Sprintf(
					"repeat %s: decode loop bound %s is never validated (need ArrayLen, a Remaining() comparison, or a range check on its fields)",
					e.Path, d.DecBound)})
			}
			u.EncBound, u.DecBound, u.Guard = e.EncBound, d.DecBound, d.Guard
			u.Body = unifySteps(e.Body, d.Body, errs)
		case StepCond:
			if e.Key != d.Key {
				*errs = append(*errs, Asym{posOf(e, d), fmt.Sprintf(
					"cond %s keyed to different flag fields: encode %s, decode %s", e.Path, e.Key, d.Key)})
			}
			u.Key = e.Key
			u.Body = unifySteps(e.Body, d.Body, errs)
			u.Else = unifySteps(e.Else, d.Else, errs)
		}
		out = append(out, u)
	}
	return out
}

// checkEncOrder verifies length fields are written before the data
// they bound: a col-bounded encode loop whose collection's len(...)
// appears later at the same level wrote the count after the elements.
func checkEncOrder(steps []*Step, errs *[]Asym) {
	for i, s := range steps {
		switch s.Kind {
		case StepRepeat:
			if name, ok := strings.CutPrefix(s.EncBound, "col:"); ok {
				for _, later := range steps[i+1:] {
					if later.Kind == StepField && later.IsLen && later.Label == "len("+name+")" {
						*errs = append(*errs, Asym{s.Pos, fmt.Sprintf(
							"repeat %s: length field %s is written after the data it bounds", s.Path, later.Label)})
					}
				}
			}
			checkEncOrder(s.Body, errs)
		case StepCond:
			checkEncOrder(s.Body, errs)
			checkEncOrder(s.Else, errs)
		}
	}
}

func extraStepPos(enc, dec []*Step) token.Pos {
	if len(enc) > len(dec) {
		return enc[len(dec)].Pos
	}
	return dec[len(enc)].Pos
}

func posOf(e, d *Step) token.Pos {
	if d.Pos.IsValid() {
		return d.Pos
	}
	return e.Pos
}

func boundCat(b string) string {
	if i := strings.Index(b, ":"); i >= 0 {
		return b[:i]
	}
	return b
}

// --- codec discovery ---

// frameKind returns the codec kind constant the body passes to
// codec.EncodeFrame / codec.DecodeFrame, or "" when there is none —
// which is what qualifies a method as one side of a codec.
func frameKind(in *flow.Info, fd *ast.FuncDecl, fname string) string {
	kind := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || flow.CalleeName(call) != fname || len(call.Args) < 1 {
			return true
		}
		fn := in.Callee(call)
		if fn == nil || fn.Pkg() == nil || !pathIsSuffix(fn.Pkg().Path(), "codec") {
			return true
		}
		kind = kindConstName(call.Args[0])
		return false
	})
	return kind
}

// codecTypeName names the Go type a codec method belongs to: the
// receiver's named type, or the first pointer parameter's for
// package-level DecodeInto functions.
func codecTypeName(fn *types.Func) string {
	if n := flow.RecvTypeName(fn); n != "" {
		return n
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return ""
	}
	t := sig.Params().At(0).Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj() != nil {
		return named.Obj().Name()
	}
	return ""
}

// scanRegistrations maps codec kind constants to their registered
// wire names by reading the package's registry.Register calls.
func scanRegistrations(in *flow.Info) map[string]string {
	names := map[string]string{}
	for _, f := range in.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			fun := ast.Unparen(call.Fun)
			if ix, ok := fun.(*ast.IndexExpr); ok { // Register[T](...)
				fun = ast.Unparen(ix.X)
			}
			sel, ok := fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Register" {
				return true
			}
			fn, _ := in.TypesInfo.Uses[sel.Sel].(*types.Func)
			if fn == nil || fn.Pkg() == nil || !pathIsSuffix(fn.Pkg().Path(), "registry") {
				return true
			}
			kc := kindConstName(call.Args[0])
			lit, isLit := ast.Unparen(call.Args[1]).(*ast.BasicLit)
			if kc == "" || !isLit {
				return true
			}
			if name, err := strconv.Unquote(lit.Value); err == nil {
				names[kc] = name
			}
			return true
		})
	}
	return names
}

func kindConstName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.Ident:
		return x.Name
	}
	return ""
}

func callsFinish(in *flow.Info, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && in.IsReaderCall(call, "Finish") {
			found = true
			return false
		}
		return true
	})
	return found
}

func pathIsSuffix(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}
