package wireshape

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
)

// SchemaDir is the directory of committed .schema snapshots the
// wirecompat analyzer diffs against. The sketchlint driver sets it to
// <module>/internal/analysis/wireshape/schemas; tests point it at
// fixture directories.
var SchemaDir string

// schemaRepoDir is where the snapshots live relative to the module
// root, for diagnostics that tell the user what to commit.
const schemaRepoDir = "internal/analysis/wireshape/schemas"

// CompatAnalyzer diffs freshly-extracted wire schemas against the
// committed snapshots: breaking drift fails the build until the
// snapshot is deliberately regenerated, additive drift warns.
var CompatAnalyzer = &analysis.Analyzer{
	Name: "wirecompat",
	Doc: `wirecompat: gate wire-format drift against committed schema snapshots

Diffs the wire schema wireshape extracts from each codec against the
committed snapshot under ` + schemaRepoDir + `. Incompatible changes
— a field removed, reordered, renamed or width-narrowed, a loop bound
re-keyed, a decode guard dropped — are errors until the snapshot is
deliberately regenerated with ` + "`make wire-snapshot`" + `; additive
top-level evolution and guard reclassification are warnings. Codecs
with open wireshape symmetry errors are skipped (fix symmetry first).`,
	Run: runCompat,
}

func runCompat(pass *analysis.Pass) error {
	res := Extract(pass)
	if len(res.Schemas) == 0 {
		return nil
	}
	if SchemaDir == "" {
		return fmt.Errorf("wirecompat: SchemaDir not configured")
	}
	byName := map[string][]*Schema{}
	for _, s := range res.Schemas {
		byName[s.Name] = append(byName[s.Name], s)
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		fresh := byName[name]
		data, err := os.ReadFile(filepath.Join(SchemaDir, name+".schema"))
		if errors.Is(err, fs.ErrNotExist) {
			pass.Reportf(fresh[0].Pos,
				"no committed wire schema for kind %q: run `make wire-snapshot` and commit %s/%s.schema",
				name, schemaRepoDir, name)
			continue
		}
		if err != nil {
			return err
		}
		committed, err := Unmarshal(data)
		if err != nil {
			return fmt.Errorf("%s.schema: %w", name, err)
		}
		commByType := map[string]*Schema{}
		for _, c := range committed {
			commByType[c.Type] = c
		}
		seen := map[string]bool{}
		for _, f := range fresh {
			seen[f.Type] = true
			c := commByType[f.Type]
			if c == nil {
				pass.Warnf(f.Pos,
					"codec %s is new for kind %q (absent from the committed schema): run `make wire-snapshot`",
					f.Type, name)
				continue
			}
			if c.Tag != f.Tag {
				pass.Reportf(f.Pos, "codec %s changed wire tag: committed %s, now %s", f.Type, c.Tag, f.Tag)
			}
			for _, ch := range Diff(c, f) {
				if ch.Breaking {
					pass.Reportf(f.Pos,
						"wire format of %s (kind %q) changed incompatibly vs committed snapshot: %s — regenerate deliberately with `make wire-snapshot` if intended",
						f.Type, name, ch.Msg)
				} else {
					pass.Warnf(f.Pos,
						"wire format of %s (kind %q) changed: %s — refresh the snapshot with `make wire-snapshot`",
						f.Type, name, ch.Msg)
				}
			}
		}
		for _, c := range committed {
			if !seen[c.Type] {
				pass.Reportf(fresh[0].Pos,
					"committed schema for kind %q lists codec %s, which no longer encodes it — regenerate with `make wire-snapshot` if the codec was removed deliberately",
					name, c.Type)
			}
		}
	}
	return nil
}
