package wireshape

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis/flow"
)

// Asym is one encode/decode symmetry violation found while unifying a
// codec's two schemas.
type Asym struct {
	Pos token.Pos
	Msg string
}

type direction int

const (
	dirEncode direction = iota
	dirDecode
)

// maxInlineDepth bounds same-package wire-helper inlining; codecs are
// flat today, so anything deeper is recursion.
const maxInlineDepth = 6

// extractor symbolically walks one codec method body in execution
// order, emitting a wire step for every codec.Buffer write or
// codec.Reader read it proves will run, abstracting loops into repeat
// nodes bound to their count expression and conditional groups into
// cond nodes keyed to the transferred flag byte.
type extractor struct {
	in       *flow.Info
	dir      direction
	recvName string
	depth    int

	// Encode environments: canonical label -> path of the step that
	// wrote it, and collection text -> path of its len(...) field.
	fieldPath map[string]string
	lenPath   map[string]string

	// Decode environments: read-bound variables, make()-sized locals
	// and receiver fields, constructor-built objects with the header
	// fields their shape depends on, and validation facts.
	vars         map[types.Object]string // -> "field:<path>"
	sized        map[types.Object]string // -> bound spec
	sizedField   map[string]string       // field name -> bound spec
	cons         map[types.Object][]string
	pathOrigin   map[string]flow.ReadOrigin
	rangeChecked map[string]bool
	remChecked   bool

	errs []Asym
}

func newExtractor(in *flow.Info, dir direction, fd *ast.FuncDecl) *extractor {
	ex := &extractor{
		in:           in,
		dir:          dir,
		fieldPath:    map[string]string{},
		lenPath:      map[string]string{},
		vars:         map[types.Object]string{},
		sized:        map[types.Object]string{},
		sizedField:   map[string]string{},
		cons:         map[types.Object][]string{},
		pathOrigin:   map[string]flow.ReadOrigin{},
		rangeChecked: map[string]bool{},
	}
	if id := flow.RecvIdent(fd); id != nil {
		ex.recvName = id.Name
	}
	return ex
}

func (ex *extractor) extract(fd *ast.FuncDecl) []*Step {
	var out []*Step
	ex.block(fd.Body.List, &out, "")
	return out
}

func (ex *extractor) errf(pos token.Pos, format string, args ...any) {
	ex.errs = append(ex.errs, Asym{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (ex *extractor) emit(out *[]*Step, prefix string, s *Step) *Step {
	s.Path = prefix + strconv.Itoa(len(*out))
	*out = append(*out, s)
	return s
}

// --- statement walk ---

func (ex *extractor) block(stmts []ast.Stmt, out *[]*Step, prefix string) {
	for _, st := range stmts {
		ex.stmt(st, out, prefix)
	}
}

func (ex *extractor) stmt(st ast.Stmt, out *[]*Step, prefix string) {
	switch x := st.(type) {
	case *ast.ExprStmt:
		ex.scanExpr(x.X, out, prefix)
	case *ast.AssignStmt:
		ex.assign(x, out, prefix)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						ex.scanExpr(v, out, prefix)
					}
				}
			}
		}
	case *ast.IfStmt:
		ex.ifStmt(x, out, prefix)
	case *ast.ForStmt:
		ex.forStmt(x, out, prefix)
	case *ast.RangeStmt:
		ex.rangeStmt(x, out, prefix)
	case *ast.BlockStmt:
		ex.block(x.List, out, prefix)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			ex.scanExpr(r, out, prefix)
		}
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
		// no wire operations possible
	default:
		// defer/go, switch, select, labeled statements: the linear
		// schema model cannot order wire operations inside these, so
		// they are only legal when they move no bytes.
		if ex.hasWireOps(st) {
			ex.errf(st.Pos(), "wire operation inside unsupported control flow (%T); restructure into straight-line code, if, or for", st)
		}
	}
}

func (ex *extractor) assign(x *ast.AssignStmt, out *[]*Step, prefix string) {
	if len(x.Lhs) != len(x.Rhs) {
		for _, r := range x.Rhs {
			ex.scanExpr(r, out, prefix)
		}
		return
	}
	for i := range x.Rhs {
		before := len(*out)
		ex.scanExpr(x.Rhs[i], out, prefix)
		if ex.dir == dirDecode {
			ex.bindDecode(x.Lhs[i], x.Rhs[i], out, before)
		}
	}
}

func (ex *extractor) ifStmt(x *ast.IfStmt, out *[]*Step, prefix string) {
	if x.Init != nil {
		ex.stmt(x.Init, out, prefix)
	}
	before := len(*out)
	ex.scanExpr(x.Cond, out, prefix)
	condSteps := (*out)[before:]
	bodyWire := ex.hasWireOps(x.Body)
	elseWire := x.Else != nil && ex.hasWireOps(x.Else)
	if !bodyWire && !elseWire {
		// A branch that moves no bytes is a validation/early-error
		// check; it only contributes guard facts.
		ex.noteGuards(x.Cond)
		return
	}
	key := ""
	switch {
	case ex.dir == dirDecode && len(condSteps) == 1 && condSteps[0].Op == OpByte:
		key = "field:" + condSteps[0].Path
	case len(condSteps) == 0:
		// Encode: the flag expression was written earlier (fieldPath);
		// decode: it was read into a variable earlier (vars).
		if spec, ok := ex.atomBound(condFlagExpr(x.Cond)); ok && strings.HasPrefix(spec, "field:") {
			key = spec
		}
	}
	if key == "" {
		ex.errf(x.Pos(), "conditional wire fields are not keyed to a transferred flag byte")
		key = "?"
	}
	cond := ex.emit(out, prefix, &Step{Kind: StepCond, Key: key, Pos: x.Pos()})
	ex.block(x.Body.List, &cond.Body, cond.Path+".")
	switch e := x.Else.(type) {
	case nil:
	case *ast.BlockStmt:
		ex.block(e.List, &cond.Else, cond.Path+".")
	default: // else-if chain
		ex.stmt(e, &cond.Else, cond.Path+".")
	}
}

func (ex *extractor) forStmt(x *ast.ForStmt, out *[]*Step, prefix string) {
	if !ex.hasWireOps(x.Body) {
		return // pure compute loop (collection, sizing): no bytes move
	}
	if x.Init != nil {
		ex.stmt(x.Init, out, prefix)
	}
	var spec string
	var deps []string
	if cond, ok := ast.Unparen(x.Cond).(*ast.BinaryExpr); ok && (cond.Op == token.LSS || cond.Op == token.LEQ) {
		spec, deps, _ = ex.resolveBound(cond.Y)
	} else {
		ex.errf(x.Pos(), "wire loop without a recognizable `i < bound` condition")
		spec = "expr:?"
	}
	ex.emitRepeat(out, prefix, x.Pos(), spec, deps, x.Body)
}

func (ex *extractor) rangeStmt(x *ast.RangeStmt, out *[]*Step, prefix string) {
	if !ex.hasWireOps(x.Body) {
		return
	}
	spec, deps := ex.rangeBound(x.X)
	ex.emitRepeat(out, prefix, x.Pos(), spec, deps, x.Body)
}

func (ex *extractor) emitRepeat(out *[]*Step, prefix string, pos token.Pos, spec string, deps []string, body *ast.BlockStmt) {
	s := &Step{Kind: StepRepeat, Pos: pos}
	if ex.dir == dirEncode {
		s.EncBound = spec
	} else {
		s.DecBound = spec
		s.Guard = ex.decGuard(spec, deps)
	}
	rep := ex.emit(out, prefix, s)
	ex.block(body.List, &rep.Body, rep.Path+".")
}

// --- expression scan ---

// scanExpr walks an expression in evaluation order, emitting a step
// for every wire call. Matched calls are not descended into; helpers
// carrying wire facts are inlined.
func (ex *extractor) scanExpr(e ast.Expr, out *[]*Step, prefix string) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		return !ex.handleCall(call, out, prefix)
	})
}

// handleCall emits steps for wire calls, returning true when the call
// was consumed (do not descend).
func (ex *extractor) handleCall(call *ast.CallExpr, out *[]*Step, prefix string) bool {
	if ex.dir == dirEncode {
		if class, ok := ex.in.BufferWriteOp(call); ok {
			label, isLen, lenOf := "?", false, ""
			if len(call.Args) == 1 {
				label, isLen, lenOf = ex.encodeLabel(call.Args[0])
			}
			s := ex.emit(out, prefix, &Step{Kind: StepField, Op: class.String(), Label: label, IsLen: isLen, Pos: call.Pos()})
			if _, dup := ex.fieldPath[label]; !dup {
				ex.fieldPath[label] = s.Path
			}
			if isLen {
				if _, dup := ex.lenPath[lenOf]; !dup {
					ex.lenPath[lenOf] = s.Path
				}
			}
			return true
		}
	} else if class, origin, ok := ex.in.ReaderReadOp(call); ok {
		s := ex.emit(out, prefix, &Step{Kind: StepField, Op: class.String(), Pos: call.Pos()})
		ex.pathOrigin[s.Path] = origin
		return true
	}
	fn, sum := ex.in.FuncOf(call)
	if fn == nil || sum == nil {
		return false
	}
	hasFact := sum.WritesWire
	if ex.dir == dirDecode {
		hasFact = sum.ReadsWire
	}
	if !hasFact {
		return false
	}
	fd := ex.in.Funcs[fn]
	if fd == nil || ex.depth >= maxInlineDepth {
		ex.errf(call.Pos(), "cannot inline wire helper %s (recursion or missing body)", fn.Name())
		return true
	}
	for _, a := range call.Args {
		ex.scanExpr(a, out, prefix)
	}
	saved := ex.recvName
	ex.recvName = ""
	if id := flow.RecvIdent(fd); id != nil {
		ex.recvName = id.Name
	}
	ex.depth++
	ex.block(fd.Body.List, out, prefix)
	ex.depth--
	ex.recvName = saved
	return true
}

// hasWireOps reports whether the subtree performs any wire operation,
// directly or through a same-package helper with wire facts.
func (ex *extractor) hasWireOps(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok && ex.isWireCall(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (ex *extractor) isWireCall(call *ast.CallExpr) bool {
	if ex.dir == dirEncode {
		if _, ok := ex.in.BufferWriteOp(call); ok {
			return true
		}
	} else if _, _, ok := ex.in.ReaderReadOp(call); ok {
		return true
	}
	fn, sum := ex.in.FuncOf(call)
	if fn == nil || sum == nil {
		return false
	}
	if ex.dir == dirEncode {
		return sum.WritesWire
	}
	return sum.ReadsWire
}

// --- decode bindings and guards ---

// bindDecode records what a decode assignment means for later bound
// resolution: a read-bound variable, a make()-sized slice, or a
// constructor call seeded from header fields.
func (ex *extractor) bindDecode(lhs, rhs ast.Expr, out *[]*Step, before int) {
	if call, ok := ex.stripConv(rhs).(*ast.CallExpr); ok {
		if _, _, isRead := ex.in.ReaderReadOp(call); isRead && len(*out) == before+1 {
			if obj := ex.lhsObj(lhs); obj != nil {
				ex.vars[obj] = "field:" + (*out)[before].Path
			}
			return
		}
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "make" && ex.in.Callee(call) == nil && len(call.Args) >= 2 {
		sizeArg := call.Args[1]
		if isZeroLit(sizeArg) && len(call.Args) >= 3 {
			sizeArg = call.Args[2] // make([]T, 0, n): capacity carries the count
		}
		bound, _, _ := ex.resolveBound(sizeArg)
		switch l := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			if obj := ex.in.ObjOf(l); obj != nil {
				ex.sized[obj] = bound
			}
		case *ast.SelectorExpr:
			ex.sizedField[l.Sel.Name] = bound
		}
		return
	}
	if fn := ex.in.Callee(call); fn != nil {
		var deps []string
		for _, a := range call.Args {
			if spec, _, resolved := ex.resolveBound(a); resolved && strings.HasPrefix(spec, "field:") {
				deps = append(deps, spec)
			}
		}
		if len(deps) > 0 {
			if obj := ex.lhsObj(lhs); obj != nil {
				ex.cons[obj] = deps
			}
		}
	}
}

func (ex *extractor) lhsObj(lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	return ex.in.ObjOf(id)
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// noteGuards harvests validation facts from a byte-free branch
// condition: a Remaining() comparison, or range checks over
// read-bound variables.
func (ex *extractor) noteGuards(cond ast.Expr) {
	if ex.dir != dirDecode {
		return
	}
	ast.Inspect(cond, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if ex.in.IsReaderCall(x, "Remaining") {
				ex.remChecked = true
			}
		case *ast.Ident:
			if obj := ex.in.ObjOf(x); obj != nil {
				if spec, ok := ex.vars[obj]; ok {
					ex.rangeChecked[strings.TrimPrefix(spec, "field:")] = true
				}
			}
		}
		return true
	})
}

// decGuard classifies how a decode loop bound is validated before the
// loop runs: an ArrayLen count (checked against remaining payload at
// read time), an explicit Remaining() comparison, a range check on
// the bound's header fields, or a compile-time constant. "" means
// unvalidated — a symmetry error at unify time.
func (ex *extractor) decGuard(spec string, deps []string) string {
	if strings.HasPrefix(spec, "const:") {
		return "const"
	}
	if p, ok := strings.CutPrefix(spec, "field:"); ok {
		if ex.pathOrigin[p] == flow.OriginArrayLen {
			return "arraylen"
		}
		deps = append(deps, spec)
	}
	if ex.remChecked {
		return "remaining"
	}
	for _, d := range deps {
		if p, ok := strings.CutPrefix(d, "field:"); ok && ex.rangeChecked[p] {
			return "range"
		}
	}
	return ""
}

// --- bound and label resolution ---

// resolveBound turns a count expression into a bound spec:
// "field:<path>" when it resolves to a transferred header field,
// "const:<n>" for literals, else "expr:<rendered>" with field
// references substituted. deps collects the referenced field paths;
// resolved reports whether every atom resolved.
func (ex *extractor) resolveBound(e ast.Expr) (spec string, deps []string, resolved bool) {
	e = ex.stripConv(e)
	if lit, ok := e.(*ast.BasicLit); ok {
		return "const:" + lit.Value, nil, true
	}
	if spec, ok := ex.atomBound(e); ok {
		if strings.HasPrefix(spec, "field:") {
			deps = []string{spec}
		}
		return spec, deps, true
	}
	resolved = true
	text := ex.renderBound(e, &deps, &resolved)
	return "expr:" + text, deps, resolved
}

// atomBound resolves a single atom (ident, selector, index, len(...)
// call) to a transferred-field bound.
func (ex *extractor) atomBound(e ast.Expr) (string, bool) {
	e = ex.stripConv(e)
	if ex.dir == dirEncode {
		if call, ok := e.(*ast.CallExpr); ok && isLenBuiltin(ex.in, call) {
			if p, ok := ex.lenPath[ex.render(call.Args[0])]; ok {
				return "field:" + p, true
			}
			return "", false
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
			if p, ok := ex.fieldPath[ex.render(e)]; ok {
				return "field:" + p, true
			}
		}
		return "", false
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := ex.in.ObjOf(x); obj != nil {
			if spec, ok := ex.vars[obj]; ok {
				return spec, true
			}
			if spec, ok := ex.sized[obj]; ok {
				return spec, true
			}
		}
	case *ast.SelectorExpr:
		if spec, ok := ex.sizedField[x.Sel.Name]; ok {
			return spec, true
		}
	}
	return "", false
}

// renderBound renders a compound bound expression, substituting
// resolved atoms with their field specs.
func (ex *extractor) renderBound(e ast.Expr, deps *[]string, resolved *bool) string {
	e = ex.stripConv(e)
	if spec, ok := ex.atomBound(e); ok {
		if strings.HasPrefix(spec, "field:") {
			*deps = append(*deps, spec)
		}
		return spec
	}
	switch x := e.(type) {
	case *ast.BasicLit:
		return x.Value
	case *ast.BinaryExpr:
		return ex.renderBound(x.X, deps, resolved) + x.Op.String() + ex.renderBound(x.Y, deps, resolved)
	case *ast.UnaryExpr:
		return x.Op.String() + ex.renderBound(x.X, deps, resolved)
	default:
		*resolved = false
		return ex.render(e)
	}
}

// rangeBound resolves the collection of a range loop: a field bound
// when a previously transferred len(...) (encode) or make() sizing
// (decode) pins its length, else a named column of the summary whose
// length the decoder derives from header fields (constructor args).
func (ex *extractor) rangeBound(coll ast.Expr) (string, []string) {
	coll = ast.Unparen(coll)
	if ex.dir == dirEncode {
		if p, ok := ex.lenPath[ex.render(coll)]; ok {
			return "field:" + p, []string{"field:" + p}
		}
		return "col:" + ex.render(coll), nil
	}
	if spec, ok := ex.atomBound(coll); ok {
		var deps []string
		if strings.HasPrefix(spec, "field:") {
			deps = []string{spec}
		}
		return spec, deps
	}
	if sel, ok := coll.(*ast.SelectorExpr); ok {
		var deps []string
		if root := flow.RootIdent(sel.X); root != nil {
			if obj := ex.in.ObjOf(root); obj != nil {
				deps = ex.cons[obj]
			}
		}
		return "col:" + sel.Sel.Name, deps
	}
	return "col:" + ex.render(coll), nil
}

// encodeLabel canonicalizes the encode-side source expression: type
// conversions stripped, the receiver prefix dropped, no spaces.
// len(...) arguments mark length fields and record what they size.
func (ex *extractor) encodeLabel(arg ast.Expr) (label string, isLen bool, lenOf string) {
	e := ex.stripConv(arg)
	if call, ok := e.(*ast.CallExpr); ok && isLenBuiltin(ex.in, call) {
		inner := ex.render(call.Args[0])
		return "len(" + inner + ")", true, inner
	}
	return ex.render(e), false, ""
}

// stripConv unwraps parens and type conversions (uint64(x), uint8(x))
// down to the converted operand.
func (ex *extractor) stripConv(e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		if tv, ok := ex.in.TypesInfo.Types[call.Fun]; !ok || !tv.IsType() {
			return e
		}
		e = call.Args[0]
	}
}

// render prints an expression canonically for labels and expr bounds:
// receiver prefix stripped, conversions elided, call arguments
// elided, no spaces (the snapshot format is space-separated).
func (ex *extractor) render(e ast.Expr) string {
	e = ex.stripConv(e)
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && ex.recvName != "" && id.Name == ex.recvName {
			return x.Sel.Name
		}
		return ex.render(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return ex.render(x.X) + "[" + ex.render(x.Index) + "]"
	case *ast.CallExpr:
		if isLenBuiltin(ex.in, x) {
			return "len(" + ex.render(x.Args[0]) + ")"
		}
		return ex.render(x.Fun) + "()"
	case *ast.BasicLit:
		return x.Value
	case *ast.BinaryExpr:
		return ex.render(x.X) + x.Op.String() + ex.render(x.Y)
	case *ast.UnaryExpr:
		return x.Op.String() + ex.render(x.X)
	case *ast.StarExpr:
		return ex.render(x.X)
	default:
		return "?"
	}
}

func isLenBuiltin(in *flow.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "len" && in.Callee(call) == nil && len(call.Args) == 1
}

// condFlagExpr unwraps a negation to the flag expression itself.
func condFlagExpr(e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		return u.X
	}
	return e
}
