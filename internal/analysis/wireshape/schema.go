// Package wireshape statically extracts the linear wire schema of
// every summary codec — the ordered sequence of (operation, width
// class, count-dependence) steps its MarshalBinary writes and its
// UnmarshalBinary reads — by symbolically interpreting the codec
// bodies over the flow engine's buffer-op summaries.
//
// From the two schemas per family it proves encode/decode symmetry:
// every written field is read at the same offset with the same width
// class, length fields are written before the data they bound, no
// loop reads past a count that was not validated (ArrayLen, a
// Remaining() comparison, or a range check on the bounding fields).
// Any asymmetry is a diagnostic, which makes the one-way merge
// guarantee of the paper safe to extend across processes: encoded
// snapshots exchanged between merge sites decode identically
// everywhere because the two directions of every codec are proven to
// traverse the same byte layout.
//
// The proven (unified) schemas serialize to committed snapshot files
// under schemas/<kind>.schema; the companion wirecompat analyzer
// diffs freshly-extracted schemas against the committed ones and
// fails on incompatible drift (field removed, reordered, narrowed,
// loop bound re-keyed) unless the snapshot is deliberately
// regenerated via `make wire-snapshot`. Top-level additive changes
// are reported as warnings.
package wireshape

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// StepKind discriminates schema tree nodes.
type StepKind uint8

const (
	// StepField is one scalar wire field.
	StepField StepKind = iota + 1
	// StepRepeat is a loop over elements, bounded by a length field or
	// an expression over header fields.
	StepRepeat
	// StepCond is a group of fields present only when a previously
	// transferred byte field is nonzero (presence flags).
	StepCond
)

// Wire width classes, mirroring flow.WireClass but owned here so the
// serialized schema format does not depend on analyzer internals.
const (
	OpUvarint = "uvarint"
	OpByte    = "byte"
	OpF64     = "f64"
	OpBytes   = "bytes"
)

// Step is one node of a wire schema: a scalar field, a repeat group,
// or a conditional group. Paths identify steps positionally
// ("0", "4", "7.1", ...): nested steps extend the parent's path.
type Step struct {
	Kind StepKind
	Path string

	// Field:
	Op    string // width class: uvarint, byte, f64, bytes
	Label string // canonical encode-side source expression ("k", "len(counters)", "c.Item")
	IsLen bool   // the encode side wrote len(...) — a length field

	// Repeat:
	EncBound string // "field:<path>" | "col:<name>" | "expr:<text>"
	DecBound string
	Guard    string // "arraylen" | "remaining" | "range" | "" (unvalidated)

	// Repeat and Cond bodies:
	Body []*Step
	Else []*Step // Cond only

	// Cond:
	Key string // "field:<path>" of the controlling byte field

	// Pos is the source position of the encode-side operation (for
	// diagnostics; not serialized).
	Pos token.Pos
}

// Schema is the proven wire layout of one codec type.
type Schema struct {
	// Name is the family's registered wire name ("mg", "quantile"),
	// falling back to the lower-cased kind constant suffix when the
	// package has no registry.Register call for the tag.
	Name string
	// Tag is the codec kind constant ("KindMisraGries").
	Tag string
	// Type is the Go type implementing the codec ("Summary").
	Type string
	// Steps is the unified (symmetry-proven) step tree.
	Steps []*Step
	// Pos locates the encode method (for diagnostics).
	Pos token.Pos
}

// header lines of the serialized snapshot format.
const (
	fileHeader    = "# wireshape wire-schema snapshot v1 — regenerate with `make wire-snapshot`; do not edit."
	formatVersion = "wireshape/1"
)

// Marshal serializes a kind's schemas (one or more codec types
// sharing a wire tag, e.g. randquant's Summary and Hybrid) to the
// committed snapshot format.
func Marshal(schemas []*Schema) []byte {
	var b strings.Builder
	b.WriteString(fileHeader + "\n")
	b.WriteString("format " + formatVersion + "\n")
	if len(schemas) > 0 {
		b.WriteString("kind " + schemas[0].Name + "\n")
	}
	sorted := append([]*Schema(nil), schemas...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Type < sorted[j].Type })
	for _, s := range sorted {
		fmt.Fprintf(&b, "codec %s tag=%s\n", s.Type, s.Tag)
		marshalSteps(&b, s.Steps, 1)
	}
	return []byte(b.String())
}

func marshalSteps(b *strings.Builder, steps []*Step, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, s := range steps {
		switch s.Kind {
		case StepField:
			b.WriteString(indent + s.Op + " " + s.Label)
			if s.IsLen {
				b.WriteString(" len")
			}
			b.WriteString("\n")
		case StepRepeat:
			fmt.Fprintf(b, "%srepeat enc=%s dec=%s guard=%s\n", indent, s.EncBound, s.DecBound, orDash(s.Guard))
			marshalSteps(b, s.Body, depth+1)
		case StepCond:
			fmt.Fprintf(b, "%scond key=%s\n", indent, s.Key)
			marshalSteps(b, s.Body, depth+1)
			if len(s.Else) > 0 {
				b.WriteString(indent + "condelse\n")
				marshalSteps(b, s.Else, depth+1)
			}
		}
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Unmarshal parses a committed snapshot file back into schemas.
func Unmarshal(data []byte) ([]*Schema, error) {
	lines := strings.Split(string(data), "\n")
	var (
		kind    string
		out     []*Schema
		cur     *Schema
		stack   []*[]*Step // step-list stack indexed by depth-1
		lastTop map[int]*Step
	)
	lastTop = map[int]*Step{}
	for ln, raw := range lines {
		line := strings.TrimRight(raw, " \t")
		if line == "" || strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		depth := 0
		for strings.HasPrefix(line, "  ") {
			depth++
			line = line[2:]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		errf := func(format string, args ...any) error {
			return fmt.Errorf("schema line %d: "+format, append([]any{ln + 1}, args...)...)
		}
		switch fields[0] {
		case "format":
			if len(fields) != 2 || fields[1] != formatVersion {
				return nil, errf("unsupported format %q", line)
			}
			continue
		case "kind":
			if len(fields) != 2 {
				return nil, errf("malformed kind line")
			}
			kind = fields[1]
			continue
		case "codec":
			if len(fields) != 3 || !strings.HasPrefix(fields[2], "tag=") {
				return nil, errf("malformed codec line %q", line)
			}
			cur = &Schema{Name: kind, Type: fields[1], Tag: strings.TrimPrefix(fields[2], "tag=")}
			out = append(out, cur)
			stack = []*[]*Step{&cur.Steps}
			continue
		}
		if cur == nil {
			return nil, errf("step before codec header")
		}
		if depth < 1 || depth > len(stack) {
			return nil, errf("bad indentation")
		}
		stack = stack[:depth] // close deeper scopes
		list := stack[depth-1]
		switch fields[0] {
		case "repeat":
			s := &Step{Kind: StepRepeat}
			for _, f := range fields[1:] {
				switch {
				case strings.HasPrefix(f, "enc="):
					s.EncBound = strings.TrimPrefix(f, "enc=")
				case strings.HasPrefix(f, "dec="):
					s.DecBound = strings.TrimPrefix(f, "dec=")
				case strings.HasPrefix(f, "guard="):
					if g := strings.TrimPrefix(f, "guard="); g != "-" {
						s.Guard = g
					}
				default:
					return nil, errf("unknown repeat attribute %q", f)
				}
			}
			*list = append(*list, s)
			stack = append(stack, &s.Body)
			lastTop[depth] = s
		case "cond":
			if len(fields) != 2 || !strings.HasPrefix(fields[1], "key=") {
				return nil, errf("malformed cond line %q", line)
			}
			s := &Step{Kind: StepCond, Key: strings.TrimPrefix(fields[1], "key=")}
			*list = append(*list, s)
			stack = append(stack, &s.Body)
			lastTop[depth] = s
		case "condelse":
			prev := lastTop[depth]
			if prev == nil || prev.Kind != StepCond {
				return nil, errf("condelse without preceding cond")
			}
			stack = append(stack, &prev.Else)
		case OpUvarint, OpByte, OpF64, OpBytes:
			if len(fields) < 2 || len(fields) > 3 || (len(fields) == 3 && fields[2] != "len") {
				return nil, errf("malformed field line %q", line)
			}
			*list = append(*list, &Step{
				Kind:  StepField,
				Op:    fields[0],
				Label: fields[1],
				IsLen: len(fields) == 3,
			})
		default:
			return nil, errf("unknown step %q", fields[0])
		}
	}
	setPaths(out)
	return out, nil
}

// setPaths assigns positional paths after parsing (they are derived,
// not serialized).
func setPaths(schemas []*Schema) {
	var walk func(steps []*Step, prefix string)
	walk = func(steps []*Step, prefix string) {
		for i, s := range steps {
			s.Path = fmt.Sprintf("%s%d", prefix, i)
			walk(s.Body, s.Path+".")
			walk(s.Else, s.Path+".")
		}
	}
	for _, s := range schemas {
		walk(s.Steps, "")
	}
}

// Change is one compatibility finding from Diff.
type Change struct {
	Breaking bool
	Msg      string
}

// Diff compares the committed schema against a freshly-extracted one
// and reports incompatibilities. Incompatible: a step removed,
// reordered, renamed or width-narrowed; a loop bound re-keyed; a
// decode guard weakened or dropped. Compatible-but-notable (warnings):
// steps appended at the top level (additive evolution) and guards
// strengthened or reclassified.
func Diff(committed, fresh *Schema) []Change {
	var out []Change
	diffSteps(&out, committed.Steps, fresh.Steps, true)
	return out
}

func diffSteps(out *[]Change, old, new []*Step, topLevel bool) {
	n := len(old)
	if len(new) < n {
		n = len(new)
	}
	for i := 0; i < n; i++ {
		diffStep(out, old[i], new[i])
	}
	switch {
	case len(new) > len(old) && topLevel:
		*out = append(*out, Change{Breaking: false, Msg: fmt.Sprintf(
			"%d step(s) appended after step %s (additive; older decoders will reject the longer payload)",
			len(new)-len(old), new[len(old)].Path)})
	case len(new) > len(old):
		*out = append(*out, Change{Breaking: true, Msg: fmt.Sprintf(
			"%d step(s) inserted at %s inside a group (changes element layout)",
			len(new)-len(old), new[len(old)].Path)})
	case len(new) < len(old):
		*out = append(*out, Change{Breaking: true, Msg: fmt.Sprintf(
			"step %s (%s) removed from wire format", old[len(new)].Path, describe(old[len(new)]))})
	}
}

func diffStep(out *[]Change, old, new *Step) {
	if old.Kind != new.Kind {
		*out = append(*out, Change{Breaking: true, Msg: fmt.Sprintf(
			"step %s changed shape: committed %s, now %s", old.Path, describe(old), describe(new))})
		return
	}
	switch old.Kind {
	case StepField:
		if old.Op != new.Op {
			*out = append(*out, Change{Breaking: true, Msg: fmt.Sprintf(
				"field %s (%s) changed width class: committed %s, now %s", old.Path, old.Label, old.Op, new.Op)})
		}
		if old.Label != new.Label {
			*out = append(*out, Change{Breaking: true, Msg: fmt.Sprintf(
				"field %s changed source: committed %q, now %q (reorder or semantic change; regenerate the snapshot if deliberate)",
				old.Path, old.Label, new.Label)})
		}
		if old.IsLen != new.IsLen {
			*out = append(*out, Change{Breaking: true, Msg: fmt.Sprintf(
				"field %s (%s) changed length-field role", old.Path, old.Label)})
		}
	case StepRepeat:
		if old.EncBound != new.EncBound || old.DecBound != new.DecBound {
			*out = append(*out, Change{Breaking: true, Msg: fmt.Sprintf(
				"repeat %s re-keyed: committed enc=%s dec=%s, now enc=%s dec=%s",
				old.Path, old.EncBound, old.DecBound, new.EncBound, new.DecBound)})
		}
		if old.Guard != new.Guard {
			if new.Guard == "" {
				*out = append(*out, Change{Breaking: true, Msg: fmt.Sprintf(
					"repeat %s lost its %s bound validation", old.Path, old.Guard)})
			} else {
				*out = append(*out, Change{Breaking: false, Msg: fmt.Sprintf(
					"repeat %s guard changed: committed %s, now %s", old.Path, orDash(old.Guard), new.Guard)})
			}
		}
		diffSteps(out, old.Body, new.Body, false)
	case StepCond:
		if old.Key != new.Key {
			*out = append(*out, Change{Breaking: true, Msg: fmt.Sprintf(
				"cond %s re-keyed: committed %s, now %s", old.Path, old.Key, new.Key)})
		}
		diffSteps(out, old.Body, new.Body, false)
		diffSteps(out, old.Else, new.Else, false)
	}
}

func describe(s *Step) string {
	switch s.Kind {
	case StepField:
		return strings.TrimSpace(s.Op + " " + s.Label)
	case StepRepeat:
		b := s.EncBound
		if b == "" {
			b = s.DecBound
		}
		return "repeat over " + b
	case StepCond:
		return "cond on " + s.Key
	}
	return "?"
}
