// Package locksafe checks the lock discipline of concurrent state:
// struct fields annotated with a "guarded by <mutex>" comment may only
// be accessed inside functions that visibly acquire a lock (a
// *.Lock()/*.RLock() call) or that are annotated //sketch:locked,
// meaning the caller guarantees exclusivity (e.g. constructors whose
// receiver has not been published yet).
//
// The check is function-granular on purpose: it is not a may-happen-
// in-parallel analysis, but it catches the realistic regression — a
// new method or refactored helper touching sharded/served state
// without taking the shard or slot lock first.
//
// len() and cap() of guarded slices and maps are exempt: in this
// repository slice headers of guarded containers are immutable after
// construction, and both shard routing and stat reporting rely on
// reading lengths without the lock.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the locksafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: `check "guarded by" fields are only touched under a lock

A struct field whose doc or line comment contains "guarded by <name>"
may only be read or written inside functions that either contain a
.Lock()/.RLock() call or carry a //sketch:locked annotation.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, guarded)
		}
	}
	return nil
}

// collectGuarded maps field objects to the mutex name from their
// "guarded by" annotation.
func collectGuarded(pass *analysis.Pass) map[types.Object]string {
	out := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from "guarded by <name>" in
// the field's doc or trailing comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		text := cg.Text()
		if i := strings.Index(text, "guarded by "); i >= 0 {
			rest := strings.Fields(text[i+len("guarded by "):])
			if len(rest) > 0 {
				return strings.TrimRight(rest[0], ".,;")
			}
		}
	}
	return ""
}

// checkFunc reports guarded-field accesses in fd made without a lock.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guarded map[types.Object]string) {
	if hasAnnotation(fd.Doc, "//sketch:locked") {
		return
	}
	locks := lockCallPositions(fd)
	lenArgs := append(lenCapSpans(fd), indexRangeSpans(pass, fd)...)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		obj := selection.Obj()
		// Methods on generic types see fields of an instantiated
		// struct; map them back to the declared (origin) field the
		// annotation was collected from.
		if v, isVar := obj.(*types.Var); isVar {
			obj = v.Origin()
		}
		mu, ok := guarded[obj]
		if !ok {
			return true
		}
		if inSpans(sel.Pos(), lenArgs) {
			return true
		}
		if !lockedBefore(sel.Pos(), locks) {
			pass.Reportf(sel.Pos(),
				"access to field %s (guarded by %s) outside any visible %s.Lock(); hold the lock or annotate the function //sketch:locked",
				selection.Obj().Name(), mu, mu)
		}
		return true
	})
}

// hasAnnotation reports whether the comment group contains the given
// machine annotation on a line of its own.
func hasAnnotation(cg *ast.CommentGroup, ann string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.TrimSpace(c.Text) == ann {
			return true
		}
	}
	return false
}

// lockCallPositions returns the positions of every .Lock()/.RLock()
// call in fd.
func lockCallPositions(fd *ast.FuncDecl) []token.Pos {
	var out []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				out = append(out, call.Pos())
			}
		}
		return true
	})
	return out
}

// lockedBefore reports whether any lock call precedes pos. Source
// order is an approximation of execution order that matches the
// straight-line lock/touch/unlock shape of this repository's code.
func lockedBefore(pos token.Pos, locks []token.Pos) bool {
	for _, l := range locks {
		if l < pos {
			return true
		}
	}
	return false
}

// span is a half-open position interval.
type span struct{ lo, hi token.Pos }

// lenCapSpans returns the argument spans of every len()/cap() call.
func lenCapSpans(fd *ast.FuncDecl) []span {
	var out []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			for _, a := range call.Args {
				out = append(out, span{a.Pos(), a.End()})
			}
		}
		return true
	})
	return out
}

// indexRangeSpans returns the range-expression spans of index-only
// loops over slices or arrays (`for i := range s.guarded`): like
// len(), they read only the immutable slice header, and this shape is
// how per-element locking loops (lock mus[i], touch shards[i]) start.
func indexRangeSpans(pass *analysis.Pass, fd *ast.FuncDecl) []span {
	var out []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		r, ok := n.(*ast.RangeStmt)
		if !ok || r.Value != nil {
			return true
		}
		tv, ok := pass.TypesInfo.Types[r.X]
		if !ok || tv.Type == nil {
			return true
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer:
			out = append(out, span{r.X.Pos(), r.X.End()})
		}
		return true
	})
	return out
}

func inSpans(pos token.Pos, spans []span) bool {
	for _, s := range spans {
		if pos >= s.lo && pos < s.hi {
			return true
		}
	}
	return false
}
