// Package poollife_a is the poollife fixture: pooled-value lifecycle
// violations (use-after-Put, double Put, escaped aliases, leaks) next
// to the clean idioms the live tree relies on.
package poollife_a

import (
	"errors"
	"sync"

	"repro/internal/codec"
)

var pool sync.Pool

// entry mimics the registry's scratch-pool surface: method names are
// what poollife matches.
type entry struct{ scratch sync.Pool }

func (e *entry) GetScratch() any  { return e.scratch.Get() }
func (e *entry) PutScratch(v any) { e.scratch.Put(v) }

// holder gives escaped aliases somewhere to go.
type holder struct{ b *codec.Buffer }

// --- violations ---

// useAfterPut reads a buffer after returning it to the pool.
func useAfterPut() uint64 {
	w := codec.GetBuffer()
	w.Uint64(1)
	codec.PutBuffer(w)
	w.Uint64(2) // want `use of w after it was released to the pool`
	return 0
}

// useAliasAfterPut reads a Bytes() view after the backing buffer was
// released: the view aliases pooled storage.
func useAliasAfterPut() byte {
	w := codec.GetBuffer()
	w.Uint64(7)
	b := w.Bytes()
	codec.PutBuffer(w)
	return b[0] // want `use of b after it was released to the pool`
}

// doublePut releases the same buffer twice.
func doublePut() {
	w := codec.GetBuffer()
	codec.PutBuffer(w)
	codec.PutBuffer(w) // want `double Put of pooled value w`
}

// putEscapedField releases a buffer after publishing it through a
// field: the reader of h.b now shares pooled storage.
func putEscapedField(h *holder) {
	w := codec.GetBuffer()
	h.b = w
	codec.PutBuffer(w) // want `Put of pooled value w after an alias escaped`
}

// putEscapedGoroutine releases a buffer a spawned goroutine still
// captures.
func putEscapedGoroutine(done chan struct{}) {
	w := codec.GetBuffer()
	go func() {
		w.Uint64(1)
		close(done)
	}()
	codec.PutBuffer(w) // want `Put of pooled value w after an alias escaped`
}

// leakOnError forgets the Put on the error path.
func leakOnError(fail bool) error {
	w := codec.GetBuffer() // want `pooled value from GetBuffer is not released \(Put\) on every return path`
	w.Uint64(1)
	if fail {
		return errors.New("boom")
	}
	codec.PutBuffer(w)
	return nil
}

// --- clean idioms ---

// cleanDefer is the codec pattern: get, defer put, copy out.
func cleanDefer() []byte {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Uint64(1)
	return append([]byte(nil), w.Bytes()...)
}

// cleanNilRefined is the shard pattern: a raw Pool.Get that may miss,
// refined by the nil check, recycled through an alias.
func cleanNilRefined(n int) int {
	var parts []int
	if v := pool.Get(); v != nil {
		parts = *(v.(*[]int))
	} else {
		parts = make([]int, 0, 8)
	}
	parts = parts[:0]
	for i := 0; i < n; i++ {
		parts = append(parts, i)
	}
	total := len(parts)
	pool.Put(&parts)
	return total
}

// cleanCommaOk is the merge-plane pattern: a scratch value guarded by
// a comma-ok assertion; the not-ok path never acquired anything.
func cleanCommaOk(e *entry) {
	s, ok := e.GetScratch().(*int)
	if !ok {
		return
	}
	*s = 1
	e.PutScratch(s)
}

// cleanTransfer hands ownership to the caller; the summary table
// marks this function a pool source for its callers' checks.
func cleanTransfer() *codec.Buffer {
	w := codec.GetBuffer()
	w.Uint64(1)
	return w
}

// cleanClosureRelease is the combine-map pattern: the returned
// closure owns the release, so the caller never calls Put.
func cleanClosureRelease(e *entry) (any, func()) {
	s := e.GetScratch()
	return s, func() { e.PutScratch(s) }
}

// cleanContainer stores acquisitions into a container whose lifecycle
// takes over.
func cleanContainer(n int) []*codec.Buffer {
	out := make([]*codec.Buffer, n)
	for i := range out {
		out[i] = codec.GetBuffer()
	}
	return out
}
