// Package regcomplete_b checks the inferred-type-argument form: the
// summary type is deduced from the Spec literal, not spelled in
// brackets, and the registration must still be recognized.
package regcomplete_b

import (
	"repro/internal/codec"
	"repro/internal/registry"
)

// Inferred is registered without explicit type arguments.
type Inferred struct{ n uint64 }

func (g *Inferred) MarshalBinary() ([]byte, error)    { return nil, nil }
func (g *Inferred) UnmarshalBinary(data []byte) error { return nil }
func (g *Inferred) Merge(src *Inferred) error         { return nil }
func (g *Inferred) N() uint64                         { return g.n }

func init() {
	registry.Register(codec.KindMisraGries, "fixture-inferred", registry.Spec[Inferred]{
		Example: func(n int) *Inferred { return &Inferred{n: uint64(n)} },
		Merge:   (*Inferred).Merge,
		N:       (*Inferred).N,
	})
}
