// Package detrand_a is the detrand fixture: banned math/rand imports
// and clock-derived seeds.
package detrand_a

import (
	"math/rand" // want `import of math/rand outside internal/gen breaks stream reproducibility`
	"time"
)

// RNG is a stand-in seeded generator.
type RNG struct{ state uint64 }

// NewRNG seeds explicitly — the approved pattern, but see badSeed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

func badSeed() *RNG {
	return NewRNG(uint64(time.Now().UnixNano())) // want `NewRNG seeded from the clock`
}

func alsoBad(r *rand.Rand) {
	r.Seed(time.Now().UnixNano()) // want `Seed seeded from the clock`
}

func globalDraw() int {
	return rand.Int() // want `call to process-seeded global rand.Int`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `call to process-seeded global rand.Shuffle`
}

func instanceDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // constructors are fine: explicit seed
	return r.Int()                      // instance method, not the global source
}

func goodSeed(seed uint64) *RNG {
	return NewRNG(seed)
}

func goodTiming() time.Duration {
	start := time.Now()
	return time.Since(start)
}
