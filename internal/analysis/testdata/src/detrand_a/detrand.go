// Package detrand_a is the detrand fixture: banned math/rand imports
// and clock-derived seeds.
package detrand_a

import (
	"math/rand" // want `import of math/rand outside internal/gen breaks stream reproducibility`
	"time"
)

// RNG is a stand-in seeded generator.
type RNG struct{ state uint64 }

// NewRNG seeds explicitly — the approved pattern, but see badSeed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

func badSeed() *RNG {
	return NewRNG(uint64(time.Now().UnixNano())) // want `NewRNG seeded from the clock`
}

func alsoBad(r *rand.Rand) {
	r.Seed(time.Now().UnixNano()) // want `Seed seeded from the clock`
}

func goodSeed(seed uint64) *RNG {
	return NewRNG(seed)
}

func goodTiming() time.Duration {
	start := time.Now()
	return time.Since(start)
}
