// Package hotpath_a is the hotpathalloc fixture: annotated hot-path
// functions with allocation and determinism violations, and clean
// counterparts.
package hotpath_a

import (
	"fmt"
	"time"
)

// Sink consumes interface values, forcing a box at the call site.
func Sink(v any) {}

// SinkInt is the concrete-typed alternative.
func SinkInt(v int) {}

// Sum is a clean hot path: sized map, constant panic, concrete calls.
//
//sketch:hotpath
func Sum(xs []int) int {
	if xs == nil {
		panic("hotpath_a: nil batch")
	}
	seen := make(map[int]int, len(xs))
	total := 0
	for _, x := range xs {
		SinkInt(x)
		seen[x]++
		total += x
	}
	return total
}

// BadAlloc violates every rule at once.
//
//sketch:hotpath
func BadAlloc(xs []int) uint64 {
	seen := make(map[int]bool) // want `unsized make\(map\) in hot path`
	start := time.Now()        // want `time.Now in hot path is nondeterministic`
	for _, x := range xs {
		fmt.Println(x) // want `fmt.Println call in hot path allocates` `loop variable x boxed into interface parameter`
		Sink(x)        // want `loop variable x boxed into interface parameter`
		seen[x] = true
	}
	return uint64(len(seen)) + uint64(time.Since(start)) // want `time.Since in hot path is nondeterministic`
}

// Key is a named string type; conversions to it allocate all the same.
type Key string

// BadStringConv converts slices to strings inside the hot path.
//
//sketch:hotpath
func BadStringConv(bs [][]byte, rs [][]rune) int {
	total := 0
	for _, b := range bs {
		s := string(b) // want `string conversion of byte/rune slice in hot path allocates a copy`
		total += len(s)
	}
	for _, r := range rs {
		k := Key(r) // want `string conversion of byte/rune slice in hot path allocates a copy`
		total += len(k)
	}
	return total
}

// GoodSliceUse stays on the slices; numeric conversions and
// string-to-string conversions are fine.
//
//sketch:hotpath
func GoodSliceUse(bs [][]byte, names []string) int {
	total := 0
	for _, b := range bs {
		total += len(b) + int(uint64(len(b)))
	}
	for _, n := range names {
		total += len(Key(n))
	}
	return total
}

// ColdPath is unannotated: the same constructs are fine here.
func ColdPath(xs []int) {
	seen := make(map[int]bool)
	for _, x := range xs {
		fmt.Println(x)
		seen[x] = true
	}
}
