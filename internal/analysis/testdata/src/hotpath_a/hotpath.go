// Package hotpath_a is the hotpathalloc fixture: annotated hot-path
// functions with allocation and determinism violations, and clean
// counterparts.
package hotpath_a

import (
	"container/heap"
	"fmt"
	"time"
)

// Sink consumes interface values, forcing a box at the call site.
func Sink(v any) {}

// SinkInt is the concrete-typed alternative.
func SinkInt(v int) {}

// Sum is a clean hot path: map-free, constant panic, concrete calls.
//
//sketch:hotpath
func Sum(xs []int) int {
	if xs == nil {
		panic("hotpath_a: nil batch")
	}
	total := 0
	for _, x := range xs {
		SinkInt(x)
		total += x
	}
	return total
}

// BadAlloc violates every rule at once.
//
//sketch:hotpath
func BadAlloc(xs []int) uint64 {
	seen := make(map[int]bool) // want `unsized make\(map\) in hot path`
	start := time.Now()        // want `time.Now in hot path is nondeterministic`
	for _, x := range xs {
		fmt.Println(x) // want `fmt.Println call in hot path allocates` `loop variable x boxed into interface parameter`
		Sink(x)        // want `loop variable x boxed into interface parameter`
		seen[x] = true
	}
	return uint64(len(seen)) + uint64(time.Since(start)) // want `time.Since in hot path is nondeterministic`
}

// Key is a named string type; conversions to it allocate all the same.
type Key string

// BadStringConv converts slices to strings inside the hot path.
//
//sketch:hotpath
func BadStringConv(bs [][]byte, rs [][]rune) int {
	total := 0
	for _, b := range bs {
		s := string(b) // want `string conversion of byte/rune slice in hot path allocates a copy`
		total += len(s)
	}
	for _, r := range rs {
		k := Key(r) // want `string conversion of byte/rune slice in hot path allocates a copy`
		total += len(k)
	}
	return total
}

// GoodSliceUse stays on the slices; numeric conversions and
// string-to-string conversions are fine.
//
//sketch:hotpath
func GoodSliceUse(bs [][]byte, names []string) int {
	total := 0
	for _, b := range bs {
		total += len(b) + int(uint64(len(b)))
	}
	for _, n := range names {
		total += len(Key(n))
	}
	return total
}

// BadSizedMap pre-sizes its map, which still allocates buckets on
// every call.
//
//sketch:hotpath
func BadSizedMap(xs []int) int {
	seen := make(map[int]int, len(xs)) // want `make\(map\) in hot path allocates buckets per call`
	for _, x := range xs {
		seen[x]++
	}
	return len(seen)
}

// intHeap is a min-heap used by the container/heap cases.
type intHeap []int

func (h intHeap) Len() int            { return len(h) }
func (h intHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h intHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *intHeap) Push(x interface{}) { *h = append(*h, x.(int)) }
func (h *intHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// BadHeap routes every element through heap.Interface.
//
//sketch:hotpath
func BadHeap(h *intHeap, xs []int) {
	for _, x := range xs {
		if len(*h) < 8 {
			heap.Push(h, x) // want `heap.Push in hot path boxes through heap.Interface` `loop variable x boxed into interface parameter`
			continue
		}
		if x > (*h)[0] {
			(*h)[0] = x
			heap.Fix(h, 0) // want `heap.Fix in hot path boxes through heap.Interface`
		}
	}
}

// ColdPath is unannotated: the same constructs are fine here.
func ColdPath(xs []int) {
	seen := make(map[int]bool)
	keep := make(map[int]int, len(xs))
	var h intHeap
	for _, x := range xs {
		fmt.Println(x)
		seen[x] = true
		keep[x]++
		heap.Push(&h, x)
	}
}
