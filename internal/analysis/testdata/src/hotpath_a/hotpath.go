// Package hotpath_a is the hotpathalloc fixture: annotated hot-path
// functions with allocation and determinism violations, and clean
// counterparts.
package hotpath_a

import (
	"fmt"
	"time"
)

// Sink consumes interface values, forcing a box at the call site.
func Sink(v any) {}

// SinkInt is the concrete-typed alternative.
func SinkInt(v int) {}

// Sum is a clean hot path: sized map, constant panic, concrete calls.
//
//sketch:hotpath
func Sum(xs []int) int {
	if xs == nil {
		panic("hotpath_a: nil batch")
	}
	seen := make(map[int]int, len(xs))
	total := 0
	for _, x := range xs {
		SinkInt(x)
		seen[x]++
		total += x
	}
	return total
}

// BadAlloc violates every rule at once.
//
//sketch:hotpath
func BadAlloc(xs []int) uint64 {
	seen := make(map[int]bool) // want `unsized make\(map\) in hot path`
	start := time.Now()        // want `time.Now in hot path is nondeterministic`
	for _, x := range xs {
		fmt.Println(x) // want `fmt.Println call in hot path allocates` `loop variable x boxed into interface parameter`
		Sink(x)        // want `loop variable x boxed into interface parameter`
		seen[x] = true
	}
	return uint64(len(seen)) + uint64(time.Since(start)) // want `time.Since in hot path is nondeterministic`
}

// ColdPath is unannotated: the same constructs are fine here.
func ColdPath(xs []int) {
	seen := make(map[int]bool)
	for _, x := range xs {
		fmt.Println(x)
		seen[x] = true
	}
}
