// Package locksafe_a is the locksafe fixture: guarded fields accessed
// with and without their lock.
package locksafe_a

import "sync"

// Box holds counters behind a mutex.
type Box struct {
	mu sync.Mutex
	// count is the running total.
	count int // guarded by mu
	// hits is accessed concurrently. guarded by mu
	hits map[string]int
	free int // unguarded: no annotation, never reported
}

// GoodLocked takes the lock before touching guarded state.
func (b *Box) GoodLocked(k string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.count++
	b.hits[k]++
}

// GoodAnnotated documents that the caller holds the lock.
//
//sketch:locked
func (b *Box) GoodAnnotated() int {
	return b.count
}

// GoodLen reads only the length of a guarded container, which the
// analyzer exempts.
func (b *Box) GoodLen() int {
	return len(b.hits) + b.free
}

// BadUnlocked touches guarded state with no lock in sight.
func (b *Box) BadUnlocked() int {
	return b.count // want `access to field count \(guarded by mu\) outside any visible mu.Lock\(\)`
}

// BadWrite writes guarded state without the lock.
func (b *Box) BadWrite(k string) {
	b.hits[k]++ // want `access to field hits \(guarded by mu\) outside any visible mu.Lock\(\)`
	b.free++
}

// Slab mirrors the sharded pattern: per-element locks over a slice.
type Slab struct {
	mus  []sync.Mutex
	vals []int // guarded by mus
}

// GoodPerElement ranges over indices only (reads just the immutable
// slice header, like len) and locks before touching each element.
func (s *Slab) GoodPerElement() {
	for i := range s.vals {
		s.mus[i].Lock()
		s.vals[i]++
		s.mus[i].Unlock()
	}
}

// BadValueRange reads guarded elements through a two-variable range
// with no lock.
func (s *Slab) BadValueRange() int {
	t := 0
	for _, v := range s.vals { // want `access to field vals \(guarded by mus\) outside any visible mus.Lock\(\)`
		t += v
	}
	return t
}
