// Package mergecompat_a is the mergecompat fixture: summaries whose
// Merge methods do and do not validate operand compatibility, and
// call sites that keep or drop the merge error.
package mergecompat_a

import "errors"

var errMismatch = errors.New("mismatched k")

// Good validates before mutating.
type Good struct {
	k int
	n uint64
}

func (g *Good) Merge(other *Good) error {
	if other == nil {
		return errors.New("nil operand")
	}
	if g.k != other.k {
		return errMismatch
	}
	g.n += other.n
	return nil
}

// BadNoCheck mutates the receiver with no compatibility gate.
type BadNoCheck struct {
	k int
	n uint64
}

func (b *BadNoCheck) Merge(other *BadNoCheck) error {
	b.n += other.n // want `mutates receiver "b" before validating operand compatibility`
	return nil
}

// BadLateCheck mutates first and validates after the damage is done.
type BadLateCheck struct {
	k int
	n uint64
}

func (b *BadLateCheck) MergeLowError(other *BadLateCheck) error {
	b.n += other.n // want `mutates receiver "b" before validating operand compatibility`
	if b.k != other.k {
		return errMismatch
	}
	return nil
}

// use exercises the call-site rule.
func use(a, b *Good) error {
	a.Merge(b)       // want `result of Merge is dropped`
	_ = a.Merge(b)   // want `result of Merge is assigned to the blank identifier`
	go a.Merge(b)    // want `result of Merge is dropped by go statement`
	defer a.Merge(b) // want `result of Merge is dropped by defer statement`
	if err := a.Merge(b); err != nil {
		return err
	}
	return a.Merge(b)
}
