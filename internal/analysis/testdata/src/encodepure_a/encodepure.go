// Package encodepure_a is the encodepure fixture: impure encode
// paths (receiver writes, RNG draws, clock reads, map-order leaks)
// next to the pure idioms the codecs use.
package encodepure_a

import (
	"sort"
	"time"

	"repro/internal/codec"
	"repro/internal/gen"
)

// sketch is a summary-like type with everything an encode path could
// do wrong.
type sketch struct {
	counts map[uint64]uint64
	keys   []uint64
	rng    *gen.RNG
	stamp  int64
	dirty  bool
}

// --- violations ---

// badFieldWrite mutates receiver state mid-encode.
func (s *sketch) MarshalBinary() ([]byte, error) {
	s.dirty = false // want `encode path writes receiver state \(s.dirty\)`
	return nil, nil
}

// badDraw draws randomness while encoding — the class PR 4 caught at
// runtime.
type drawer struct{ rng *gen.RNG }

func (d *drawer) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Uint64(d.rng.Uint64()) // want `encode path draws randomness \(RNG.Uint64\); persist rng.State\(\) instead`
	return append([]byte(nil), w.Bytes()...), nil
}

// badClock stamps encodes with wall time.
type stamper struct{ at int64 }

func (t *stamper) Encode() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Int(int(time.Now().UnixNano())) // want `encode path reads the wall clock \(time.Now\)`
	return append([]byte(nil), w.Bytes()...), nil
}

// badMapOrder writes entries straight out of map iteration: the byte
// order changes run to run.
type mapper struct{ m map[uint64]uint64 }

func (m *mapper) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	for k, v := range m.m { // want `map iteration order feeds encoded bytes`
		w.Uint64(k)
		w.Uint64(v)
	}
	return append([]byte(nil), w.Bytes()...), nil
}

// badHelperWrite reaches a receiver write through a same-package
// helper; the summary table carries the fact to the call site.
type compactor struct{ keys []uint64 }

func (c *compactor) compact() {
	c.keys = c.keys[:0]
}

func (c *compactor) MarshalBinary() ([]byte, error) {
	c.compact() // want `encode path calls compact, which writes receiver state`
	return nil, nil
}

// badSortInPlace reorders receiver state during encode.
type sorter struct{ keys []uint64 }

func (s *sorter) Encode() ([]byte, error) {
	sort.Slice(s.keys, func(i, j int) bool { return s.keys[i] < s.keys[j] }) // want `encode path sorts receiver state in place \(sort.Slice\); sort a copy`
	return nil, nil
}

// --- clean idioms ---

// goodCollectSort is the qdigest pattern: collect keys into a local
// slice, sort the copy, then write — deterministic bytes, untouched
// receiver.
func (s *sketch) Encode() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	ids := make([]uint64, 0, len(s.counts))
	for id := range s.counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Int(len(ids))
	for _, id := range ids {
		w.Uint64(id)
		w.Uint64(s.counts[id])
	}
	return codec.EncodeFrame(codec.KindMisraGries, w.Bytes()), nil
}

// persister is the randquant pattern: persisting rng.State() is a
// read, not a draw.
type persister struct{ rng *gen.RNG }

func (p *persister) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Uint64(p.rng.State())
	return append([]byte(nil), w.Bytes()...), nil
}

// canonicalizer shows the documented opt-out for idempotent
// canonicalization under exclusive access.
type canonicalizer struct{ pending []uint64 }

func (c *canonicalizer) flush() { c.pending = c.pending[:0] }

// MarshalBinary flushes first; the mutation is idempotent and callers
// hold exclusive access.
//
//sketch:encodemutates
func (c *canonicalizer) MarshalBinary() ([]byte, error) {
	c.flush()
	return nil, nil
}
