// Package regcomplete_a is the regcomplete fixture: one cataloged
// family, one family missing its registration, one deliberately
// unregistered variant, and one type without the full wire trio.
package regcomplete_a

import (
	"repro/internal/codec"
	"repro/internal/registry"
)

// Good is a family with the wire trio and a registration below.
type Good struct{ n uint64 }

func (g *Good) MarshalBinary() ([]byte, error)    { return nil, nil }
func (g *Good) UnmarshalBinary(data []byte) error { return nil }
func (g *Good) Merge(src *Good) error             { return nil }
func (g *Good) N() uint64                         { return g.n }

// Bad carries the full wire trio but never reaches the catalog.
type Bad struct{ n uint64 } // want `type Bad exports the MarshalBinary/UnmarshalBinary/Merge trio but is not cataloged`

func (b *Bad) MarshalBinary() ([]byte, error)    { return nil, nil }
func (b *Bad) UnmarshalBinary(data []byte) error { return nil }
func (b *Bad) Merge(src *Bad) error              { return nil }

// Variant is a deliberate opt-out: it shares Good's wire tag, so it
// cannot hold its own catalog entry.
//
//sketch:unregistered — decoded explicitly via the Good entry's tag.
type Variant struct{ n uint64 }

func (v *Variant) MarshalBinary() ([]byte, error)    { return nil, nil }
func (v *Variant) UnmarshalBinary(data []byte) error { return nil }
func (v *Variant) Merge(src *Variant) error          { return nil }

// Partial lacks Merge, so it is not a family and draws no diagnostic.
type Partial struct{}

func (p *Partial) MarshalBinary() ([]byte, error)    { return nil, nil }
func (p *Partial) UnmarshalBinary(data []byte) error { return nil }

// init registers Good with an explicit type argument; the analyzer
// must also accept the inferred form (see regcomplete_b).
func init() {
	registry.Register[Good](codec.KindMisraGries, "fixture-good", registry.Spec[Good]{
		Example: func(n int) *Good { return &Good{n: uint64(n)} },
		Merge:   (*Good).Merge,
		N:       (*Good).N,
	})
}
