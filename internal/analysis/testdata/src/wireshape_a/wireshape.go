// Package wireshape_a is the wireshape fixture: codec pairs with
// every asymmetry class the analyzer proves absent — width drift,
// step-count drift, re-keyed and unvalidated loop bounds, trailing
// length fields, unkeyed conditionals, missing Finish, unpaired
// directions — next to a clean codec using every supported idiom.
package wireshape_a

import (
	"errors"

	"repro/internal/codec"
)

// --- clean: every supported idiom, zero diagnostics ---

type clean struct {
	flag  bool
	k     int
	xs    []uint64
	cells []uint64
	extra float64
}

func (s *clean) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Bool(false) // discriminator
	w.Int(s.k)
	w.Int(len(s.xs))
	for _, v := range s.xs {
		w.Uint64(v)
	}
	for _, v := range s.cells { // column sized as k at decode
		w.Uint64(v)
	}
	w.Bool(s.flag)
	if s.flag {
		w.Float64(s.extra)
	}
	return codec.EncodeFrame(codec.KindMisraGries, w.Bytes()), nil
}

func (s *clean) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindMisraGries, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	if r.Bool() {
		return errors.New("wrong discriminator")
	}
	k := r.Int()
	if k < 0 || k > 1<<20 {
		return errors.New("bad k")
	}
	m := r.ArrayLen(1)
	xs := make([]uint64, 0, m)
	for i := 0; i < m; i++ {
		xs = append(xs, r.Uint64())
	}
	cells := make([]uint64, k)
	for i := range cells {
		cells[i] = r.Uint64()
	}
	var extra float64
	flag := r.Bool()
	if flag {
		extra = r.Float64()
	}
	if err := r.Finish(); err != nil {
		return err
	}
	*s = clean{flag: flag, k: k, xs: xs, cells: cells, extra: extra}
	return nil
}

// --- width drift: encode writes a varint, decode reads 8 bytes ---

type widths struct {
	a uint64
	b float64
}

func (s *widths) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Uint64(s.a)
	w.Float64(s.b)
	return codec.EncodeFrame(codec.KindSpaceSaving, w.Bytes()), nil
}

func (s *widths) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindSpaceSaving, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	s.a = uint64(r.Float64()) // want `field 0 \(a\): encode writes uvarint but decode reads f64`
	s.b = float64(r.Uint64()) // want `field 1 \(b\): encode writes f64 but decode reads uvarint`
	return r.Finish()
}

// --- step-count drift: decode reads a field encode never wrote ---

type counts struct {
	a, b uint64
}

func (s *counts) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Uint64(s.a)
	w.Uint64(s.b)
	return codec.EncodeFrame(codec.KindGK, w.Bytes()), nil
}

func (s *counts) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindGK, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	s.a = r.Uint64()
	s.b = r.Uint64()
	_ = r.Uint64() // want `encode writes 2 wire step\(s\) at this level but decode reads 3`
	return r.Finish()
}

// --- unvalidated loop bound: plain Int count drives allocation ---

type unguarded struct {
	xs []uint64
}

func (s *unguarded) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Int(len(s.xs))
	for _, v := range s.xs {
		w.Uint64(v)
	}
	return codec.EncodeFrame(codec.KindCountMin, w.Bytes()), nil
}

func (s *unguarded) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindCountMin, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	m := r.Int()
	s.xs = nil
	for i := 0; i < m; i++ { // want `repeat 1: decode loop bound field:0 is never validated`
		s.xs = append(s.xs, r.Uint64())
	}
	return r.Finish()
}

// --- re-keyed loops: the two counts swap on the decode side ---

type rekeyed struct {
	a, b []uint64
}

func (s *rekeyed) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Int(len(s.a))
	w.Int(len(s.b))
	for _, v := range s.a {
		w.Uint64(v)
	}
	for _, v := range s.b {
		w.Uint64(v)
	}
	return codec.EncodeFrame(codec.KindCountSketch, w.Bytes()), nil
}

func (s *rekeyed) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindCountSketch, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	na := r.ArrayLen(1)
	nb := r.ArrayLen(1)
	s.a, s.b = nil, nil
	for i := 0; i < nb; i++ { // want `repeat 2 re-keyed: encode loops over field:0 but decode loops over field:1`
		s.a = append(s.a, r.Uint64())
	}
	for i := 0; i < na; i++ { // want `repeat 3 re-keyed: encode loops over field:1 but decode loops over field:0`
		s.b = append(s.b, r.Uint64())
	}
	return r.Finish()
}

// --- trailing length: the count is written after the elements ---

type trailing struct {
	xs []uint64
}

func (s *trailing) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	for _, v := range s.xs { // want `repeat 0: length field len\(xs\) is written after the data it bounds`
		w.Uint64(v)
	}
	w.Int(len(s.xs))
	return codec.EncodeFrame(codec.KindBottomK, w.Bytes()), nil
}

func (s *trailing) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindBottomK, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	m := r.ArrayLen(1) // want `step 0: encode is repeat over col:xs but decode is uvarint`
	s.xs = make([]uint64, 0, m)
	for i := 0; i < m; i++ { // want `step 1: encode is uvarint len\(xs\) but decode is repeat over field:0`
		s.xs = append(s.xs, r.Uint64())
	}
	return r.Finish()
}

// --- unkeyed conditional: presence depends on state, not the wire ---

type unkeyed struct {
	flag bool
	x    uint64
}

func (s *unkeyed) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	if s.flag { // want `conditional wire fields are not keyed to a transferred flag byte` `encode writes 1 wire step\(s\) at this level but decode reads 0`
		w.Uint64(s.x)
	}
	return codec.EncodeFrame(codec.KindRangeCount, w.Bytes()), nil
}

func (s *unkeyed) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindRangeCount, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	return r.Finish()
}

// --- missing Finish: trailing bytes pass silently ---

type nofinish struct {
	x uint64
}

func (s *nofinish) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Uint64(s.x)
	return codec.EncodeFrame(codec.KindKernel, w.Bytes()), nil
}

func (s *nofinish) UnmarshalBinary(data []byte) error { // want `nofinish decoder for KindKernel never calls Reader.Finish`
	payload, err := codec.DecodeFrame(codec.KindKernel, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	s.x = r.Uint64()
	return r.Err()
}

// --- unpaired: an encoder whose kind nothing decodes ---

type orphanenc struct {
	x uint64
}

func (s *orphanenc) MarshalBinary() ([]byte, error) { // want `orphanenc.MarshalBinary encodes KindTopK but nothing decodes it`
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Uint64(s.x)
	return codec.EncodeFrame(codec.KindTopK, w.Bytes()), nil
}
