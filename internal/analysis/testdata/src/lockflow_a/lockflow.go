// Package lockflow_a is the lockflow fixture: blocking and
// allocation-heavy operations inside critical sections, next to the
// restructured idioms the merge plane uses.
package lockflow_a

import (
	"bufio"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
)

// slot mimics a merge-plane slot: a mutex guarding a summary.
type slot struct {
	mu      sync.Mutex
	summary *codec.Buffer
	pushes  uint64
	ch      chan []byte
}

// --- violations ---

// decodeUnderLock deserializes inside the critical section — the
// merge plane decodes off-lock for a reason.
func decodeUnderLock(sl *slot, data []byte) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	_, err := codec.DecodeFrame(codec.KindGK, data) // want `decode \(DecodeFrame\) while holding sl.mu`
	return err
}

// ioUnderLock writes to the client while holding the slot: a slow
// reader stalls every pusher.
func ioUnderLock(sl *slot, w *bufio.Writer) {
	sl.mu.Lock()
	fmt.Fprintf(w, "OK %d\n", sl.pushes) // want `I/O \(fmt.Fprintf\) while holding sl.mu`
	sl.mu.Unlock()
}

// sendUnderLock blocks on a channel inside the critical section.
func sendUnderLock(sl *slot, data []byte) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	sl.ch <- data // want `channel send while holding sl.mu`
}

// poolGetUnderLock acquires scratch under the lock: a miss allocates
// while every other pusher waits (warning severity).
func poolGetUnderLock(sl *slot) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	w := codec.GetBuffer() // want `pool Get \(a miss allocates\) while holding sl.mu`
	defer codec.PutBuffer(w)
	w.Uint64(sl.pushes)
}

// sleepUnderLock parks with the lock held.
func sleepUnderLock(sl *slot) {
	sl.mu.Lock()
	time.Sleep(time.Millisecond) // want `sleep while holding sl.mu`
	sl.mu.Unlock()
}

// helperDecode hides the decode one call away; the summary table
// carries the fact to the locked caller.
func helperDecode(data []byte) error {
	_, err := codec.DecodeFrame(codec.KindGK, data)
	return err
}

func decodeViaHelper(sl *slot, data []byte) error {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return helperDecode(data) // want `decode \(via helperDecode\) while holding sl.mu`
}

// --- clean idioms ---

// cleanDecodeOffLock is the merge-plane shape: decode first, lock
// only for the state swap.
func cleanDecodeOffLock(sl *slot, data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindGK, data)
	if err != nil {
		return err
	}
	w := codec.GetBuffer()
	w.Uint64(uint64(len(payload)))
	sl.mu.Lock()
	old := sl.summary
	sl.summary = w
	sl.pushes++
	sl.mu.Unlock()
	if old != nil {
		codec.PutBuffer(old)
	}
	return nil
}

// cleanFormatUnderWriteAfter is the cmdStat shape: format the row
// under the lock, write it after.
func cleanFormatUnderWriteAfter(sl *slot, w *bufio.Writer) {
	sl.mu.Lock()
	line := fmt.Sprintf("OK %d\n", sl.pushes)
	sl.mu.Unlock()
	w.WriteString(line)
}

// cleanSendAfterUnlock stages the payload under the lock and blocks
// only once the lock is gone.
func cleanSendAfterUnlock(sl *slot, data []byte) {
	sl.mu.Lock()
	sl.pushes++
	sl.mu.Unlock()
	sl.ch <- data
}

// mergeable mimics a summary: Merge is pure in-memory work.
type mergeable struct{ n uint64 }

func (m *mergeable) Merge(src *mergeable) { m.n += src.n }

// plane mimics the window roll-up plane: a mutex guarding the live
// summary of the current epoch.
type plane struct {
	mu  sync.Mutex
	cur *mergeable
}

// cleanMergeUnderLock is the window-plane Absorb / ingest-front flush
// shape, and it is deliberately legal: a merge is bounded in-memory
// work (no decode, no I/O, no blocking), and running it under the
// plane lock is what keeps a concurrent Advance from sealing an epoch
// between the liveness check and the merge. Decoding the operand
// still belongs outside the lock (see decodeUnderLock above).
func cleanMergeUnderLock(p *plane, src *mergeable) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cur == nil {
		p.cur = &mergeable{}
	}
	p.cur.Merge(src)
}
