// Package gen is the detrand allowlist fixture: a package whose
// import path ends in /gen may use math/rand (the real
// repro/internal/gen does not, but the allowlist is part of the
// analyzer's contract).
package gen

import "math/rand"

// FromSeed builds a generator from an explicit seed.
func FromSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
