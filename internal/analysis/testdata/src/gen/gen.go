// Package gen is the detrand allowlist fixture: a package whose
// import path ends in /gen may use math/rand (the real
// repro/internal/gen does not, but the allowlist is part of the
// analyzer's contract).
package gen

import "math/rand"

// FromSeed builds a generator from an explicit seed.
func FromSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// lazyDraw shows the gap the global-call check closes: the import is
// allowed here, but the global source is still process-seeded.
func lazyDraw() int {
	return rand.Intn(10) // want `call to process-seeded global rand.Intn`
}
