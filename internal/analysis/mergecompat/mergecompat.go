// Package mergecompat checks the merge-compatibility contract of the
// mergeable-summaries library (PODS 2012): S(D1, ε) ⊎ S(D2, ε) is
// only defined when both operands carry the same error parameter, so
//
//  1. every exported Merge/MergeLowError-shaped method must validate
//     operand compatibility (nil operand, k, ε, width/depth, seed…)
//     and return an error *before* mutating receiver state, and
//  2. no call site may drop the error those methods return — a
//     silently failed merge leaves the aggregate claiming a guarantee
//     it does not have.
package mergecompat

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the mergecompat pass.
var Analyzer = &analysis.Analyzer{
	Name: "mergecompat",
	Doc: `check merge methods validate operand compatibility and callers keep the error

A method named Merge or MergeLowError with a pointer receiver and an
error result must contain a compatibility check (an if statement
returning a non-nil error) before the first statement that mutates the
receiver. Any statement-level call of such a method whose error result
is discarded (expression statement, go/defer, or assignment to blank
identifiers only) is reported.`,
	Run: run,
}

// mergeNames are the method names covered by the contract.
var mergeNames = map[string]bool{"Merge": true, "MergeLowError": true}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				checkMergeDecl(pass, fd)
			}
		}
		checkCallSites(pass, f)
	}
	return nil
}

// checkMergeDecl enforces rule 1 on one function declaration.
func checkMergeDecl(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || fd.Body == nil || !mergeNames[fd.Name.Name] || !returnsError(pass, fd) {
		return
	}
	recv := receiverIdent(fd)
	if recv == "" || recv == "_" {
		return
	}
	validated := false
	var firstMutation ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if firstMutation != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.IfStmt:
			// An if body that returns a non-nil error counts as the
			// compatibility gate, wherever its condition looks.
			if !validated && ifReturnsError(pass, n) {
				validated = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if rootIs(lhs, recv) {
					firstMutation = n
					return false
				}
			}
		case *ast.IncDecStmt:
			if rootIs(n.X, recv) {
				firstMutation = n
				return false
			}
		}
		return true
	})
	if firstMutation != nil && !validated {
		pass.Reportf(firstMutation.Pos(),
			"%s mutates receiver %q before validating operand compatibility; check parameters (nil, k/ε/geometry/seed) and return an error first", fd.Name.Name, recv)
		return
	}
	if !validated && firstMutation == nil && mutatesViaCalls(fd, recv) {
		pass.Reportf(fd.Name.Pos(),
			"%s never validates operand compatibility before mutating the receiver through method calls", fd.Name.Name)
	}
}

// mutatesViaCalls reports whether the body calls methods on the
// receiver (the only remaining way a merge can mutate it).
func mutatesViaCalls(fd *ast.FuncDecl, recv string) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && rootIs(sel.X, recv) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkCallSites enforces rule 2 over one file.
func checkCallSites(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call := mergeCall(pass, n.X); call != nil {
				pass.Reportf(call.Pos(), "result of %s is dropped: a failed merge voids the summary's guarantee; handle the error", callName(call))
			}
		case *ast.GoStmt:
			if call := mergeCall(pass, n.Call); call != nil {
				pass.Reportf(call.Pos(), "result of %s is dropped by go statement", callName(call))
			}
		case *ast.DeferStmt:
			if call := mergeCall(pass, n.Call); call != nil {
				pass.Reportf(call.Pos(), "result of %s is dropped by defer statement", callName(call))
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call := mergeCall(pass, n.Rhs[0])
			if call == nil {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					return true
				}
			}
			pass.Reportf(call.Pos(), "result of %s is assigned to the blank identifier; a failed merge voids the summary's guarantee", callName(call))
		}
		return true
	})
}

// mergeCall returns e as a *ast.CallExpr if it is a call of a
// Merge/MergeLowError method whose static result type is error.
func mergeCall(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !mergeNames[sel.Sel.Name] {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil || !isErrorType(tv.Type) {
		return nil
	}
	return call
}

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "merge"
}

// returnsError reports whether fd's results include the error type.
func returnsError(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		if tv, ok := pass.TypesInfo.Types[r.Type]; ok && tv.Type != nil && isErrorType(tv.Type) {
			return true
		}
		if id, ok := r.Type.(*ast.Ident); ok && id.Name == "error" {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// ifReturnsError reports whether the if statement (or its else arms)
// directly returns a non-nil error expression.
func ifReturnsError(pass *analysis.Pass, n *ast.IfStmt) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		ret, ok := m.(*ast.ReturnStmt)
		if !ok || found {
			return !found
		}
		for _, res := range ret.Results {
			if id, ok := res.(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			if tv, ok := pass.TypesInfo.Types[res]; ok && tv.Type != nil && isErrorType(tv.Type) {
				found = true
				return false
			}
			// Fall back to shape when type info is missing: a call or
			// selector in error position of a single-result return.
			switch res.(type) {
			case *ast.CallExpr, *ast.SelectorExpr, *ast.Ident:
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// receiverIdent returns the receiver's identifier name.
func receiverIdent(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// rootIs reports whether the selector/index chain e is rooted at an
// identifier named name (s.field, s.field[i], s.a.b …).
func rootIs(e ast.Expr, name string) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name == name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}
