package mergecompat_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/mergecompat"
)

func TestMergecompat(t *testing.T) {
	analysistest.Run(t, "../testdata/src/mergecompat_a", mergecompat.Analyzer)
}
