package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one parsed, type-checked package as the analyzers see it.
type Package struct {
	// Path is the module-qualified import path ("repro/internal/mg").
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-checking problems. The loader returns
	// partial packages so analyzers can still run AST-level checks;
	// drivers decide whether type errors are fatal.
	TypeErrors []error
}

// Loader parses and type-checks packages of the enclosing module
// without any dependency on golang.org/x/tools: module-local imports
// are resolved from the module tree on disk, standard-library imports
// through the stdlib source importer (works offline), and results are
// cached per directory.
type Loader struct {
	Fset *token.FileSet

	// BuildTags are extra build constraints satisfied while selecting
	// files; the sketchlint driver sets "sanitize" so the invariant
	// layer is linted rather than its no-op stubs.
	BuildTags []string

	// IncludeTests selects _test.go files in the loaded package
	// itself (never in its dependencies).
	IncludeTests bool

	moduleRoot string
	modulePath string
	ctx        build.Context
	std        types.Importer
	cache      map[string]*Package
	loading    map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string, tags ...string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	ctx := build.Default
	ctx.BuildTags = append(ctx.BuildTags, tags...)
	return &Loader{
		Fset:       fset,
		BuildTags:  tags,
		moduleRoot: root,
		modulePath: path,
		ctx:        ctx,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// ModuleRoot returns the absolute path of the module root directory.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// findModule walks up from dir to the nearest go.mod and reports the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		if parent := filepath.Dir(d); parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
	}
}

// Load parses and type-checks the package in dir (absolute or
// relative to the current directory).
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.cache[abs]; ok {
		return pkg, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("analysis: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)

	bp, err := l.ctx.ImportDir(abs, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	pkg := &Package{
		Path: l.pathFor(abs),
		Dir:  abs,
		Fset: l.Fset,
		Info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		},
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the package even on errors; TypeErrors records them.
	pkg.Types, _ = conf.Check(pkg.Path, l.Fset, files, pkg.Info)
	pkg.Files = files
	l.cache[abs] = pkg
	return pkg, nil
}

// pathFor maps a directory to its module-qualified import path.
func (l *Loader) pathFor(abs string) string {
	if rel, err := filepath.Rel(l.moduleRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.modulePath
		}
		return l.modulePath + "/" + filepath.ToSlash(rel)
	}
	return filepath.ToSlash(abs)
}

// loaderImporter adapts the Loader to types.Importer: module-local
// import paths load recursively from disk, everything else is assumed
// to be standard library and handled by the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		// Dependencies are always loaded without test files.
		saved := l.IncludeTests
		l.IncludeTests = false
		pkg, err := l.Load(filepath.Join(l.moduleRoot, filepath.FromSlash(rel)))
		l.IncludeTests = saved
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: %s failed to type-check", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// ModulePackageDirs walks the module tree and returns every directory
// holding a buildable non-test package, skipping testdata, hidden
// directories, and vendored or generated result trees. This is the
// `./...` of the sketchlint driver.
func (l *Loader) ModulePackageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.moduleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.moduleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor" || name == "results") {
			return filepath.SkipDir
		}
		if bp, err := l.ctx.ImportDir(path, 0); err == nil && len(bp.GoFiles) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}
