// Package encodepure defines an Analyzer that checks the purity of
// encode paths: every method named MarshalBinary or Encode must be a
// deterministic, read-only function of summary state.
//
// The mergeability contract needs byte-identical encodings for equal
// states — snapshot caching, the wire protocol's frame dedup and the
// shuffle-invariance tests all compare encoded bytes. PR 4 caught a
// marshal-time RNG draw with runtime fuzzing; this pass makes the
// property static. For each encode method it reports:
//
//   - writes to receiver state (field assignments, in-place sorts of
//     receiver-rooted data, calls to same-package methods that write
//     the receiver),
//   - RNG draws (gen.RNG draw methods, math/rand) reached directly or
//     through same-package helpers — persisting rng.State() is the
//     pure alternative and stays clean,
//   - wall-clock reads (time.Now, time.Since),
//   - map iteration feeding codec.Buffer writes from inside the loop,
//     whose nondeterministic order becomes wire order; collect-sort-
//     write loops are clean.
//
// A method may opt out with a `//sketch:encodemutates` doc-comment
// line, documenting why mutation is safe (e.g. an idempotent
// canonicalization under exclusive access).
package encodepure

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

// Analyzer is the encodepure pass.
var Analyzer = &analysis.Analyzer{
	Name: "encodepure",
	Doc: `check that Encode/MarshalBinary paths are pure and deterministic

Flags receiver-state writes, RNG draws, wall-clock reads and
map-iteration order feeding encoded bytes, in encode methods and the
same-package helpers they call. Opt out per method with
//sketch:encodemutates.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	in := flow.Of(pass)
	for fn, fd := range in.Funcs {
		if fd.Recv == nil {
			continue
		}
		if name := fn.Name(); name != "MarshalBinary" && name != "Encode" {
			continue
		}
		if flow.HasAnnotation(fd, "//sketch:encodemutates") {
			continue
		}
		check(pass, in, fd)
	}
	return nil
}

// check walks one encode method, reporting local impurities and
// impure same-package callees (whose summaries already fold their own
// transitive callees).
func check(pass *analysis.Pass, in *flow.Info, fd *ast.FuncDecl) {
	recv := flow.RecvIdent(fd)
	var recvObj types.Object
	if recv != nil {
		recvObj = in.TypesInfo.Defs[recv]
	}
	rootsAtRecv := func(e ast.Expr) bool {
		id := flow.RootIdent(e)
		return id != nil && recvObj != nil && in.ObjOf(id) == recvObj
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// sort.Slice comparators and the like: reads are fine,
			// and writes inside them are caught by the enclosing
			// call's argument check.
			return true
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if isWriteTarget(lhs) && rootsAtRecv(lhs) {
					pass.Reportf(lhs.Pos(), "encode path writes receiver state (%s)", types.ExprString(lhs))
				}
			}
		case *ast.IncDecStmt:
			if isWriteTarget(x.X) && rootsAtRecv(x.X) {
				pass.Reportf(x.Pos(), "encode path writes receiver state (%s)", types.ExprString(x.X))
			}
		case *ast.RangeStmt:
			if in.IsMapType(x.X) && in.RangeFeedsBuffer(x) {
				pass.Reportf(x.Pos(), "map iteration order feeds encoded bytes; collect and sort keys before writing")
			}
		case *ast.CallExpr:
			checkCall(pass, in, x, rootsAtRecv)
		}
		return true
	})
}

// isWriteTarget filters assignment targets to those that store into
// the receiver's memory: a field, an element, or a dereference. A
// plain `s := ...` rebinding a local named like the receiver is not a
// receiver write (rootsAtRecv distinguishes by object identity
// anyway); a bare receiver ident on the LHS (shadow-free `d = other`)
// is only possible for value receivers, where it is local.
func isWriteTarget(e ast.Expr) bool {
	switch e.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// checkCall classifies one call inside an encode method.
func checkCall(pass *analysis.Pass, in *flow.Info, call *ast.CallExpr, rootsAtRecv func(ast.Expr) bool) {
	name := flow.CalleeName(call)
	fn := in.Callee(call)

	// In-place mutators applied to receiver-rooted data.
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sort" {
		if len(call.Args) > 0 && rootsAtRecv(call.Args[0]) {
			pass.Reportf(call.Pos(), "encode path sorts receiver state in place (sort.%s); sort a copy", name)
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "clear" || id.Name == "delete") && fn == nil {
		if len(call.Args) > 0 && rootsAtRecv(call.Args[0]) {
			pass.Reportf(call.Pos(), "encode path mutates receiver state (%s)", id.Name)
		}
	}

	// Direct impurities.
	if fn != nil {
		pkg := ""
		if fn.Pkg() != nil {
			pkg = fn.Pkg().Path()
		}
		if pkg == "time" && (name == "Now" || name == "Since") {
			pass.Reportf(call.Pos(), "encode path reads the wall clock (time.%s)", name)
		}
		if pkg == "math/rand" || pkg == "math/rand/v2" {
			pass.Reportf(call.Pos(), "encode path draws randomness (rand.%s)", name)
		}
	}
	if fn != nil && isDrawMethod(fn, name) {
		pass.Reportf(call.Pos(), "encode path draws randomness (%s.%s); persist rng.State() instead", flow.RecvTypeName(fn), name)
	}

	// Same-package callees, one summary lookup deep (summaries are
	// already transitive within the package).
	callee, cs := in.FuncOf(call)
	if cs == nil {
		return
	}
	if cs.WritesRecv {
		if root := flow.RecvRoot(call); root != nil && rootsAtRecv(root) {
			pass.Reportf(call.Pos(), "encode path calls %s, which writes receiver state", callee.Name())
		}
	}
	if cs.Draws {
		pass.Reportf(call.Pos(), "encode path reaches an RNG draw (%s) via %s", cs.DrawName, callee.Name())
	}
	if cs.Clock {
		pass.Reportf(call.Pos(), "encode path reaches a wall-clock read via %s", callee.Name())
	}
	if cs.MapRangeEncode {
		pass.Reportf(call.Pos(), "encode path reaches order-dependent map iteration via %s", callee.Name())
	}
}

// isDrawMethod reports draw-named methods on gen-package RNG types.
func isDrawMethod(fn *types.Func, name string) bool {
	if !flow.IsDrawName(name) {
		return false
	}
	path := flow.RecvTypePkgPath(fn)
	return path == "gen" || strings.HasSuffix(path, "/gen")
}
