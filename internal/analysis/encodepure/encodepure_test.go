package encodepure_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/encodepure"
)

func TestEncodepure(t *testing.T) {
	analysistest.Run(t, "../testdata/src/encodepure_a", encodepure.Analyzer)
}
