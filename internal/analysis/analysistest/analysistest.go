// Package analysistest runs analyzers over fixture packages and
// checks their diagnostics against // want "regexp" comments, the
// same convention as golang.org/x/tools/go/analysis/analysistest but
// reimplemented on the local framework so the suite builds offline.
//
// A fixture line expects diagnostics with trailing comments:
//
//	s.Merge(o) // want `dropped error`
//	bad()      // want "first" "second"
//
// Every diagnostic must match one expectation on its line and every
// expectation must be consumed, otherwise the test fails.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// expectation is one // want pattern awaiting a diagnostic.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	used bool
}

// Run loads the fixture package in dir (relative to the test's
// working directory), applies the analyzer, and enforces the // want
// expectations. Extra build tags mirror the driver's (e.g. sanitize).
func Run(t *testing.T, dir string, a *analysis.Analyzer, tags ...string) {
	t.Helper()
	l, err := analysis.NewLoader(dir, tags...)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := l.Load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s does not type-check: %v", dir, terr)
	}
	diags, err := analysis.Run(a, pkg)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	expects := collectWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(expects, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.rx)
		}
	}
}

// claim marks the first unused expectation on (file, line) whose
// regexp matches msg.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.used && e.file == file && e.line == line && e.rx.MatchString(msg) {
			e.used = true
			return true
		}
	}
	return false
}

// collectWants extracts // want expectations from every comment in
// the fixture package.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitPatterns(text) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return out
}

// splitPatterns parses a want payload: a sequence of double-quoted or
// backquoted regexp literals.
func splitPatterns(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return append(out, s) // unterminated; surfaces as a bad pattern
			}
			if unq, err := strconv.Unquote(s[:end+1]); err == nil {
				out = append(out, unq)
			} else {
				out = append(out, s[1:end])
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return append(out, s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[2+end:])
		default:
			return append(out, s)
		}
	}
	return out
}
