package lockflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockflow"
)

func TestLockflow(t *testing.T) {
	analysistest.Run(t, "../testdata/src/lockflow_a", lockflow.Analyzer)
}
