// Package lockflow defines an Analyzer that checks what happens while
// a lock is held. locksafe proves guarded fields are accessed under
// their mutex; lockflow proves the critical sections stay cheap.
//
// The merge plane's slot locks and the ingest front's lane locks sit
// on every hot path: one decode, one blocking write or one channel
// wait inside a critical section serializes the whole plane. The pass
// interprets each function with the flow engine, carrying the may-
// held lock set (sl.mu, ln.mu, ...) through branches and defers, and
// reports operations reachable while any lock is held:
//
//   - decoding (Decode, DecodeInto, UnmarshalBinary, DecodeFrame,
//     ReadFrame) — allocation-heavy by construction,
//   - I/O (fmt.Fprint*, io/os/net/bufio calls) — may block on a peer,
//   - channel operations (send, receive, select, time.Sleep) — may
//     block indefinitely,
//   - pool Gets (warning severity) — a miss allocates under the lock.
//
// Same-package callees are classified through the summary table, so a
// helper that decodes taints its callers one level up (transitively
// folded within the package). Encode is deliberately not banned: the
// snapshot cache encodes under the slot lock by design, and encoding
// writes to a pooled in-memory buffer. A function may opt out with a
// `//sketch:lockflow-ok` doc-comment line.
package lockflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

// Analyzer is the lockflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockflow",
	Doc: `check that critical sections stay cheap (no decode, I/O or blocking under a lock)

Carries a may-held lock set through each function and reports decode,
I/O, channel and pool-get operations reachable while a mutex is held,
including through same-package helpers. Opt out per function with
//sketch:lockflow-ok.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	in := flow.Of(pass)
	for _, fd := range in.Funcs {
		if flow.HasAnnotation(fd, "//sketch:lockflow-ok") {
			continue
		}
		c := &checker{in: in, pass: pass, reported: map[string]bool{}}
		ip := &flow.Interp{Client: c}
		ip.Run(fd, lockSet{})
	}
	return nil
}

// lockSet is the may-held abstract state: the canonical spelling of
// each lock expression ("sl.mu") mapped to its acquisition position.
type lockSet map[string]token.Pos

type checker struct {
	in       *flow.Info
	pass     *analysis.Pass
	reported map[string]bool
}

func (c *checker) report(pos token.Pos, sev analysis.Severity, format string, args ...any) {
	k := fmt.Sprintf("%d", pos)
	if c.reported[k] {
		return
	}
	c.reported[k] = true
	if sev == analysis.SeverityWarning {
		c.pass.Warnf(pos, format, args...)
	} else {
		c.pass.Reportf(pos, format, args...)
	}
}

func (c *checker) Copy(st any) any {
	s := st.(lockSet)
	n := lockSet{}
	for k, v := range s {
		n[k] = v
	}
	return n
}

// Join keeps the union: a lock held on either incoming path may be
// held after the merge.
func (c *checker) Join(a, b any) any {
	sa, sb := a.(lockSet), b.(lockSet)
	for k, v := range sb {
		if _, ok := sa[k]; !ok {
			sa[k] = v
		}
	}
	return sa
}

func (c *checker) Refine(st any, cond ast.Expr, taken bool) any { return st }

func (c *checker) AtExit(st any, ret *ast.ReturnStmt) {}

func (c *checker) Transfer(st any, n ast.Node) any {
	s := st.(lockSet)
	switch x := n.(type) {
	case flow.DeferredCall:
		c.lockOp(s, x.Call)
		return s
	case flow.RangeBind:
		if tv, ok := c.in.TypesInfo.Types[x.R.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				c.reportHeld(s, x.R.Pos(), "channel receive", analysis.SeverityError, "")
			}
		}
		return s
	case *ast.SendStmt:
		c.reportHeld(s, x.Pos(), "channel send", analysis.SeverityError, "")
		return s
	case *ast.GoStmt:
		// The spawned goroutine runs outside this critical section;
		// starting it is cheap.
		return s
	}
	// Everything else: walk for lock transitions, receives and calls,
	// without descending into function literals (their bodies run
	// elsewhere).
	if e, ok := n.(ast.Node); ok {
		ast.Inspect(e, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					c.reportHeld(s, x.Pos(), "channel receive", analysis.SeverityError, "")
				}
			case *ast.CallExpr:
				c.lockOp(s, x)
			}
			return true
		})
	}
	return s
}

// lockOp handles one call: a lock transition, or a classified
// operation checked against the held set.
func (c *checker) lockOp(s lockSet, call *ast.CallExpr) {
	if key, op, ok := c.mutexOp(call); ok {
		switch op {
		case "Lock", "RLock":
			if _, held := s[key]; !held {
				s[key] = call.Pos()
			}
		case "Unlock", "RUnlock":
			delete(s, key)
		}
		return
	}
	class, sev, detail := c.classify(call)
	if class == "" {
		return
	}
	c.reportHeld(s, call.Pos(), class, sev, detail)
}

// reportHeld reports an operation if any lock may be held.
func (c *checker) reportHeld(s lockSet, pos token.Pos, class string, sev analysis.Severity, detail string) {
	if len(s) == 0 {
		return
	}
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	held := keys[0]
	if len(keys) > 1 {
		held = fmt.Sprintf("%s (and %d more)", keys[0], len(keys)-1)
	}
	if detail != "" {
		detail = " " + detail
	}
	c.report(pos, sev, "%s%s while holding %s", class, detail, held)
}

// mutexOp recognizes sync.Mutex/RWMutex transitions and returns the
// canonical lock key (the receiver expression's spelling).
func (c *checker) mutexOp(call *ast.CallExpr) (key, op string, ok bool) {
	name := flow.CalleeName(call)
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	fn := c.in.Callee(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch flow.RecvTypeName(fn) {
	case "Mutex", "RWMutex":
	default:
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return types.ExprString(sel.X), name, true
}

// classify buckets one call into a banned-under-lock class.
func (c *checker) classify(call *ast.CallExpr) (class string, sev analysis.Severity, detail string) {
	name := flow.CalleeName(call)
	fn := c.in.Callee(call)
	pkg := ""
	if fn != nil && fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}

	switch name {
	case "Decode", "DecodeInto", "UnmarshalBinary", "DecodeFrame", "ReadFrame":
		return "decode", analysis.SeverityError, fmt.Sprintf("(%s)", name)
	}
	switch {
	case fn != nil && pkg == "fmt" && len(name) > 6 && name[:6] == "Fprint":
		return "I/O", analysis.SeverityError, fmt.Sprintf("(fmt.%s)", name)
	case fn != nil && isIOPkg(pkg):
		return "I/O", analysis.SeverityError, fmt.Sprintf("(%s.%s)", pkg, name)
	case fn != nil && isIOPkg(flow.RecvTypePkgPath(fn)):
		return "I/O", analysis.SeverityError, fmt.Sprintf("(%s.%s)", flow.RecvTypePkgPath(fn), name)
	case fn != nil && pkg == "time" && name == "Sleep":
		return "sleep", analysis.SeverityError, ""
	case c.in.IsDirectPoolGet(call):
		return "pool Get", analysis.SeverityWarning, "(a miss allocates)"
	}

	// Same-package callees through the summary table.
	if callee, cs := c.in.FuncOf(call); cs != nil && cs.Blocking != "" {
		via := callee.Name()
		if cs.BlockingVia != "" {
			via += " → " + cs.BlockingVia
		}
		sev := analysis.SeverityError
		class := cs.Blocking
		if class == "pool-get" {
			class, sev = "pool Get", analysis.SeverityWarning
		}
		if class == "channel" {
			class = "channel operation"
		}
		return class, sev, fmt.Sprintf("(via %s)", via)
	}
	return "", 0, ""
}

// isIOPkg mirrors the summary table's I/O package classification.
func isIOPkg(path string) bool {
	switch path {
	case "io", "os", "net", "bufio", "io/ioutil":
		return true
	}
	return len(path) > 4 && path[:4] == "net/"
}
