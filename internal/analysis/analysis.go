// Package analysis is a self-contained static-analysis framework for
// this repository: a deliberately small reimplementation of the
// golang.org/x/tools/go/analysis API surface (Analyzer, Pass,
// Diagnostic) on top of the standard library only, so the sketchlint
// suite builds offline with no external dependencies.
//
// The framework exists because the mergeability guarantee of Agarwal
// et al. (PODS 2012) rests on contracts the Go type system cannot
// express — merge operands must share the error parameter (k, ε,
// width/depth, hash seed), guarded state must be accessed under its
// lock, hot ingestion paths must stay allocation-free and
// deterministic. The analyzers in the subpackages (mergecompat,
// locksafe, hotpathalloc, detrand) machine-check those contracts on
// every `make lint` / `make check`.
//
// Analyzers receive a fully parsed and type-checked package (see
// Loader) and report Diagnostics; cmd/sketchlint is the multichecker
// driver, and package analysistest runs analyzers over fixture
// packages with // want "regexp" expectations, mirroring the upstream
// analysistest convention.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static-analysis pass: a name, a doc string
// shown by `sketchlint -help`, and the Run function applied to each
// package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must
	// be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then details.
	Doc string

	// Run applies the analyzer to a package. It reports findings via
	// pass.Reportf and returns an error only for internal failures
	// (a broken analyzer, not a finding).
	Run func(*Pass) error
}

// Severity grades a finding. Most analyzers report errors (contract
// violations); flow analyzers downgrade perf-class findings (a pool
// Get under a lock can miss and allocate, but cannot corrupt state)
// to warnings, which `sketchlint -fail-on` can admit or reject.
type Severity int

const (
	SeverityError Severity = iota
	SeverityWarning
)

func (s Severity) String() string {
	if s == SeverityWarning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	Severity Severity
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset  *token.FileSet
	Files []*ast.File

	// Pkg and TypesInfo hold the type-checked package. TypesInfo maps
	// are always non-nil; entries may be missing for code that failed
	// to type-check (the loader tolerates partial packages).
	Pkg       *types.Package
	TypesInfo *types.Info

	// PkgPath is the package's module-qualified import path (e.g.
	// "repro/internal/mg"); fixture packages get a path rooted in
	// their testdata directory.
	PkgPath string

	diagnostics []Diagnostic
}

// Reportf records an error-severity finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Warnf records a warning-severity finding at pos.
func (p *Pass) Warnf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Severity: SeverityWarning,
	})
}

// Run applies one analyzer to one loaded package and returns its
// findings in file/position order.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		PkgPath:   pkg.Path,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	ds := pass.diagnostics
	sort.Slice(ds, func(i, j int) bool { return ds[i].Pos < ds[j].Pos })
	return ds, nil
}
