// Package detrand enforces the repository's determinism contract:
// every random stream must be derived from an explicit caller-given
// seed through internal/gen's splitmix64 RNG, so experiments, tests
// and merged-summary guarantees are bit-reproducible across runs and
// Go releases.
//
// The analyzer bans (outside internal/gen):
//
//   - importing math/rand or math/rand/v2 — their global generators
//     are process-seeded and their algorithms are not covered by the
//     Go 1 compatibility promise across stream values;
//   - seeding any RNG from the clock: time.Now (or its UnixNano
//     chain) appearing inside the arguments of a call whose name
//     starts with "New" or contains "Seed".
//
// It additionally bans — everywhere, including internal/gen, in
// non-test files — calls to math/rand's package-level draw functions
// (rand.Int, rand.Shuffle, rand.Seed, ...): they consume the
// process-seeded global source even when the import itself is
// allowed. Constructors (rand.New, rand.NewSource) stay legal; they
// build explicitly-seeded instances.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: `ban global math/rand and time-seeded RNGs outside internal/gen

All randomness must flow from explicit seeds through gen.NewRNG so
streams replay identically; see internal/gen's package doc.`,
	Run: run,
}

// allowed reports whether pkgPath may import math/rand (the seeded
// generator package itself, including its fixture stand-ins).
func allowed(pkgPath string) bool {
	return pkgPath == "repro/internal/gen" || strings.HasSuffix(pkgPath, "/gen")
}

func run(pass *analysis.Pass) error {
	inGen := allowed(pass.PkgPath)
	for _, f := range pass.Files {
		if !inGen {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(imp.Pos(), "import of %s outside internal/gen breaks stream reproducibility; use gen.NewRNG with an explicit seed", path)
				}
			}
		}
		checkTimeSeeding(pass, f)
		fname := pass.Fset.Position(f.Pos()).Filename
		if !strings.HasSuffix(fname, "_test.go") {
			checkGlobalRand(pass, f)
		}
	}
	return nil
}

// checkGlobalRand reports calls to math/rand package-level functions
// other than constructors: rand.Int, rand.Shuffle and friends draw
// from the process-seeded global source, so their streams are not
// replayable, no matter which package makes the call.
func checkGlobalRand(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		// Package-level access: the selector base must be the
		// imported package name, not a *rand.Rand instance.
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[base].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			return true
		}
		name := sel.Sel.Name
		if strings.HasPrefix(name, "New") {
			return true // explicit-seed constructors are the fix, not the bug
		}
		pass.Reportf(call.Pos(), "call to process-seeded global rand.%s; draw from a gen.NewRNG (or rand.New) instance with an explicit seed", name)
		return true
	})
}

// checkTimeSeeding reports clock-derived seeds: time.Now anywhere in
// the arguments of a constructor or seeding call.
func checkTimeSeeding(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if name == "" || !(strings.HasPrefix(name, "New") || strings.Contains(name, "Seed")) {
			return true
		}
		for _, arg := range call.Args {
			if pos, found := findTimeNow(arg); found {
				pass.Reportf(pos, "%s seeded from the clock; seeds must be explicit parameters so runs replay deterministically", name)
			}
		}
		return true
	})
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// findTimeNow locates a time.Now selector in the expression subtree.
func findTimeNow(e ast.Expr) (pos token.Pos, found bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || found {
			return !found
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" && sel.Sel.Name == "Now" {
			pos, found = sel.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
