package detrand_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "../testdata/src/detrand_a", detrand.Analyzer)
}

// TestDetrandAllowsGen checks the allowlist: packages whose import
// path ends in /gen may import math/rand.
func TestDetrandAllowsGen(t *testing.T) {
	analysistest.Run(t, "../testdata/src/gen", detrand.Analyzer)
}
