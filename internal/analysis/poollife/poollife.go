// Package poollife defines a flow-sensitive Analyzer that checks the
// lifetime discipline of pooled values: buffers from codec.GetBuffer,
// registry scratch summaries from GetScratch, and raw sync.Pool.Get
// results.
//
// The pools behind the merge plane and the ingest front only pay off
// if every Get is matched by exactly one Put on every path, and the
// value is dead when the Put happens. poollife interprets each
// function with the flow engine, tracking pooled values through
// assignments, slices, Bytes()/Borrow() views and type assertions as
// one alias group per acquisition, and reports:
//
//   - use of a value after it was released (use-after-Put),
//   - releasing the same value twice (double Put),
//   - releasing a value after an alias escaped (stored to a field,
//     sent on a channel, captured by a goroutine),
//   - a Get that reaches some return path without a Put, an escape, or
//     an ownership transfer (leak).
//
// Values stored into local containers or captured by non-go closures
// leave the tracked domain (the closure may complete the lifecycle);
// returning a pooled value transfers ownership to the caller, which
// the summary table then tracks at the call site. A function may opt
// out with a `//sketch:poollife-ok` doc-comment line.
package poollife

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/flow"
)

// Analyzer is the poollife pass.
var Analyzer = &analysis.Analyzer{
	Name: "poollife",
	Doc: `check pooled buffer/scratch lifetimes (use-after-Put, double Put, escaped aliases, leaks)

Tracks values acquired from codec.GetBuffer, registry GetScratch and
sync.Pool.Get through aliases on every control-flow path, and reports
lifecycle violations that would corrupt pooled state or starve the
pool. Opt out per function with //sketch:poollife-ok.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	in := flow.Of(pass)
	for _, fd := range in.Funcs {
		if flow.HasAnnotation(fd, "//sketch:poollife-ok") {
			continue
		}
		c := &checker{
			in:       in,
			pass:     pass,
			reported: map[string]bool{},
			okBinds:  map[types.Object]int{},
		}
		ip := &flow.Interp{Client: c}
		ip.Run(fd, newState())
	}
	return nil
}

// Group flags. A group with no flags is live and still owes the pool
// a Put.
const (
	fReleased uint8 = 1 << iota // returned to its pool
	fEscaped                    // alias left the function's control
)

// ginfo is one alias group's lifecycle record.
type ginfo struct {
	flags uint8
	pos   token.Pos // the Get that created the group
	name  string    // the Get's callee name, for messages
}

// state is the per-path abstract state: variable→group bindings and
// each group's lifecycle flags.
type state struct {
	bind map[types.Object]int
	g    map[int]*ginfo
}

func newState() *state {
	return &state{bind: map[types.Object]int{}, g: map[int]*ginfo{}}
}

// checker interprets one function; it is the flow.Client.
type checker struct {
	in       *flow.Info
	pass     *analysis.Pass
	next     int
	reported map[string]bool
	// okBinds maps a comma-ok bool object to the group whose validity
	// it witnesses (pooled, ok := ent.GetScratch().(*T)): the ok-false
	// branch unlearns the group.
	okBinds map[types.Object]int
}

func (c *checker) report(pos token.Pos, key, format string, args ...any) {
	k := fmt.Sprintf("%d:%s", pos, key)
	if c.reported[k] {
		return
	}
	c.reported[k] = true
	c.pass.Reportf(pos, format, args...)
}

func (c *checker) Copy(st any) any {
	s := st.(*state)
	n := newState()
	for k, v := range s.bind {
		n.bind[k] = v
	}
	for k, v := range s.g {
		cp := *v
		n.g[k] = &cp
	}
	return n
}

func (c *checker) Join(a, b any) any {
	sa, sb := a.(*state), b.(*state)
	for gid, gb := range sb.g {
		if ga, ok := sa.g[gid]; ok {
			ga.flags |= gb.flags
		} else {
			cp := *gb
			sa.g[gid] = &cp
		}
	}
	for obj, gid := range sb.bind {
		if _, ok := sa.bind[obj]; !ok {
			sa.bind[obj] = gid
		}
	}
	return sa
}

func (c *checker) Transfer(st any, n ast.Node) any {
	s := st.(*state)
	switch x := n.(type) {
	case flow.DeferredCall:
		c.deferred(s, x.Call)
	case flow.RangeBind:
		// Range elements of a pooled container are values, not
		// aliases that could be Put; nothing to bind.
	case *ast.AssignStmt:
		c.assign(s, x)
	case *ast.DeclStmt:
		c.decl(s, x)
	case *ast.GoStmt:
		c.escapeAll(s, x.Call, "captured by goroutine")
	case *ast.ReturnStmt:
		for _, res := range x.Results {
			c.scanExpr(s, res)
		}
		for _, res := range x.Results {
			if gid, gi, ok := c.valueGroup(s, res, true); ok {
				_ = gi
				c.escape(s, gid)
			}
		}
	case *ast.SendStmt:
		c.scanExpr(s, x.Chan)
		c.scanExpr(s, x.Value)
		if gid, _, ok := c.valueGroup(s, x.Value, false); ok {
			c.escape(s, gid)
		}
	case *ast.IncDecStmt:
		c.scanExpr(s, x.X)
	case ast.Expr:
		c.scanExpr(s, x)
	}
	return s
}

func (c *checker) Refine(st any, cond ast.Expr, taken bool) any {
	s := st.(*state)
	switch x := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		if x.Op != token.NEQ && x.Op != token.EQL {
			return s
		}
		var v ast.Expr
		switch {
		case isNilIdent(x.Y):
			v = x.X
		case isNilIdent(x.X):
			v = x.Y
		default:
			return s
		}
		// The value is nil on (== nil, taken) and (!= nil, not
		// taken): a nil pool result was never acquired.
		if (x.Op == token.EQL) == taken {
			if gid, _, ok := c.valueGroup(s, v, false); ok {
				c.untrack(s, gid)
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			return c.Refine(st, x.X, !taken)
		}
	case *ast.Ident:
		// ok-false: the comma-ok assertion failed, the group's value
		// is not what we bound.
		if obj := c.in.ObjOf(x); obj != nil && !taken {
			if gid, ok := c.okBinds[obj]; ok {
				c.untrack(s, gid)
			}
		}
	}
	return s
}

func (c *checker) AtExit(st any, ret *ast.ReturnStmt) {
	s := st.(*state)
	for gid, gi := range s.g {
		if gi.flags == 0 {
			c.report(gi.pos, fmt.Sprintf("leak%d", gid),
				"pooled value from %s is not released (Put) on every return path", gi.name)
		}
	}
}

// assign threads bindings through an assignment after scanning the
// right-hand side for uses and releases.
func (c *checker) assign(s *state, x *ast.AssignStmt) {
	for _, rhs := range x.Rhs {
		c.scanExpr(s, rhs)
	}

	// Comma-ok over a type assertion of a pool get: track the value
	// and remember which bool witnesses it.
	if len(x.Lhs) == 2 && len(x.Rhs) == 1 {
		if ta, ok := ast.Unparen(x.Rhs[0]).(*ast.TypeAssertExpr); ok {
			if gid, _, tracked := c.valueGroup(s, ta.X, true); tracked {
				if id, ok := x.Lhs[0].(*ast.Ident); ok {
					if obj := c.in.ObjOf(id); obj != nil {
						s.bind[obj] = gid
					}
				}
				if id, ok := x.Lhs[1].(*ast.Ident); ok {
					if obj := c.in.ObjOf(id); obj != nil {
						c.okBinds[obj] = gid
					}
				}
				return
			}
		}
	}

	if len(x.Lhs) != len(x.Rhs) {
		// Unknown multi-return: any rebound idents leave the domain.
		for _, lhs := range x.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := c.in.ObjOf(id); obj != nil {
					delete(s.bind, obj)
				}
			}
		}
		return
	}

	for i, lhs := range x.Lhs {
		gid, _, tracked := c.valueGroup(s, x.Rhs[i], true)
		switch l := lhs.(type) {
		case *ast.Ident:
			obj := c.in.ObjOf(l)
			if obj == nil {
				continue
			}
			if tracked {
				s.bind[obj] = gid
			} else {
				delete(s.bind, obj)
			}
		case *ast.SelectorExpr:
			// Storing a pooled value into a field publishes it
			// beyond this function's control.
			c.scanExpr(s, l.X)
			if tracked {
				c.escape(s, gid)
			}
		case *ast.StarExpr:
			c.scanExpr(s, l.X)
			if tracked {
				c.escape(s, gid)
			}
		case *ast.IndexExpr:
			// Storing into a container: the container's lifecycle
			// takes over; stop tracking rather than guess.
			c.scanExpr(s, l.X)
			c.scanExpr(s, l.Index)
			if tracked {
				c.untrack(s, gid)
			}
		}
	}
}

// decl handles `var w = codec.GetBuffer()`-style declarations.
func (c *checker) decl(s *state, x *ast.DeclStmt) {
	gd, ok := x.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) != len(vs.Names) {
			continue
		}
		for i, name := range vs.Names {
			c.scanExpr(s, vs.Values[i])
			if gid, _, tracked := c.valueGroup(s, vs.Values[i], true); tracked {
				if obj := c.in.ObjOf(name); obj != nil {
					s.bind[obj] = gid
				}
			}
		}
	}
}

// deferred applies a deferred call at an exit: direct puts, summary
// sinks, and puts inside a deferred closure all count as releases.
func (c *checker) deferred(s *state, call *ast.CallExpr) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				c.applyCall(s, inner)
			}
			return true
		})
		return
	}
	c.applyCall(s, call)
}

// applyCall performs the release bookkeeping of one call (direct pool
// put or same-package sink) without scanning for uses.
func (c *checker) applyCall(s *state, call *ast.CallExpr) bool {
	if arg := c.in.PoolPutArg(call); arg != nil {
		c.release(s, arg, call)
		return true
	}
	if _, cs := c.in.FuncOf(call); cs != nil {
		hit := false
		for i, sink := range cs.SinkParams {
			if sink && i < len(call.Args) {
				c.release(s, call.Args[i], call)
				hit = true
			}
		}
		return hit
	}
	return false
}

// release marks the group denoted by arg as returned to its pool,
// reporting double releases and releases of escaped values.
func (c *checker) release(s *state, arg ast.Expr, call *ast.CallExpr) {
	gid, gi, ok := c.valueGroup(s, arg, false)
	if !ok {
		return
	}
	name := types.ExprString(arg)
	switch {
	case gi.flags&fReleased != 0:
		c.report(call.Pos(), "double", "double Put of pooled value %s", name)
	case gi.flags&fEscaped != 0:
		c.report(call.Pos(), "escput", "Put of pooled value %s after an alias escaped", name)
	default:
		gi.flags |= fReleased
	}
	_ = gid
}

// scanExpr walks an expression: releases at put calls, use-after-Put
// at identifier uses, and domain exits at closure captures.
func (c *checker) scanExpr(s *state, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A non-go closure may finish the lifecycle itself
			// (release callbacks); captured values leave the domain.
			c.untrackCaptured(s, x)
			return false
		case *ast.CallExpr:
			if c.applyCall(s, x) {
				// The put's own argument is a release, not a use;
				// don't descend into it.
				return false
			}
		case *ast.Ident:
			c.checkUse(s, x)
		}
		return true
	})
}

// checkUse reports a read of a value whose group was already released.
func (c *checker) checkUse(s *state, id *ast.Ident) {
	obj := c.in.ObjOf(id)
	if obj == nil {
		return
	}
	gid, ok := s.bind[obj]
	if !ok {
		return
	}
	gi, ok := s.g[gid]
	if !ok {
		return
	}
	if gi.flags&fReleased != 0 {
		c.report(id.Pos(), "uap", "use of %s after it was released to the pool", id.Name)
	}
}

// valueGroup resolves an expression to the alias group it denotes.
// With create set, a direct pool get (or a call to a same-package
// PoolSource) mints a new group.
func (c *checker) valueGroup(s *state, e ast.Expr, create bool) (int, *ginfo, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.in.ObjOf(x); obj != nil {
			if gid, ok := s.bind[obj]; ok {
				if gi, ok := s.g[gid]; ok {
					return gid, gi, true
				}
			}
		}
	case *ast.TypeAssertExpr:
		return c.valueGroup(s, x.X, create)
	case *ast.StarExpr:
		return c.valueGroup(s, x.X, create)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return c.valueGroup(s, x.X, create)
		}
	case *ast.SliceExpr:
		return c.valueGroup(s, x.X, create)
	case *ast.CallExpr:
		if create {
			if c.in.IsDirectPoolGet(x) {
				return c.newGroup(s, x)
			}
			if _, cs := c.in.FuncOf(x); cs != nil && cs.PoolSource {
				return c.newGroup(s, x)
			}
		}
		// Alias-returning views: w.Bytes(), r.Borrow(n) alias their
		// receiver's storage.
		name := flow.CalleeName(x)
		if name == "Bytes" || name == "Borrow" {
			if root := flow.RecvRoot(x); root != nil {
				return c.valueGroup(s, root, false)
			}
		}
		if _, cs := c.in.FuncOf(x); cs != nil {
			for i, al := range cs.AliasParams {
				if al && i < len(x.Args) {
					if gid, gi, ok := c.valueGroup(s, x.Args[i], false); ok {
						return gid, gi, ok
					}
				}
			}
		}
	}
	return 0, nil, false
}

func (c *checker) newGroup(s *state, call *ast.CallExpr) (int, *ginfo, bool) {
	c.next++
	gi := &ginfo{pos: call.Pos(), name: flow.CalleeName(call)}
	s.g[c.next] = gi
	return c.next, gi, true
}

// escape marks a group as having left the function's control:
// leak-free, but a later Put is a violation.
func (c *checker) escape(s *state, gid int) {
	if gi, ok := s.g[gid]; ok {
		gi.flags |= fEscaped
	}
}

// untrack removes a group and its bindings from the domain entirely.
func (c *checker) untrack(s *state, gid int) {
	delete(s.g, gid)
	for obj, g := range s.bind {
		if g == gid {
			delete(s.bind, obj)
		}
	}
}

// escapeAll marks every tracked value referenced anywhere under n
// (a go statement's call, including closure bodies) as escaped.
func (c *checker) escapeAll(s *state, n ast.Node, _ string) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := c.in.ObjOf(id); obj != nil {
				if gid, ok := s.bind[obj]; ok {
					c.escape(s, gid)
				}
			}
		}
		return true
	})
}

// untrackCaptured drops tracked values referenced by a non-go closure.
func (c *checker) untrackCaptured(s *state, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := c.in.ObjOf(id); obj != nil {
				if gid, ok := s.bind[obj]; ok {
					c.untrack(s, gid)
				}
			}
		}
		return true
	})
}

// isNilIdent reports the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}
