// Package regcomplete enforces registry completeness: every summary
// family the codec layer can ship must be dispatchable by name. A
// family is recognizable by its wire trio — an exported type whose
// pointer carries MarshalBinary, UnmarshalBinary and Merge — and any
// package declaring one must catalog it with registry.Register in the
// same package, so the server, the bench report and the public
// mergesum.Decode surface pick it up automatically.
//
// A type that deliberately stays out of the catalog (e.g. a variant
// sharing another family's wire tag) opts out by carrying a
// "//sketch:unregistered" line in its doc comment, which must go on to
// say why.
package regcomplete

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the regcomplete pass.
var Analyzer = &analysis.Analyzer{
	Name: "regcomplete",
	Doc: `flag summary families missing from the registry catalog

A package exporting a type with the MarshalBinary/UnmarshalBinary/Merge
trio must register it via registry.Register (or mark the type's doc
comment with //sketch:unregistered and explain why); unregistered
families silently vanish from the server, bench and Decode surfaces.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	registered := registeredTypeNames(pass)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !obj.Exported() || obj.IsAlias() {
			continue
		}
		named, ok := obj.Type().(*types.Named)
		if !ok {
			continue
		}
		if !hasWireTrio(named) {
			continue
		}
		if registered[name] || optedOut(pass, name) {
			continue
		}
		pass.Reportf(obj.Pos(), "type %s exports the MarshalBinary/UnmarshalBinary/Merge trio but is not cataloged via registry.Register; register the family or mark its doc comment with //sketch:unregistered", name)
	}
	return nil
}

// hasWireTrio reports whether *T carries the full wire contract:
// MarshalBinary() ([]byte, error), UnmarshalBinary([]byte) error and a
// Merge method.
func hasWireTrio(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	for _, want := range [...]string{"MarshalBinary", "UnmarshalBinary", "Merge"} {
		if lookupMethod(ms, want) == nil {
			return false
		}
	}
	return true
}

func lookupMethod(ms *types.MethodSet, name string) *types.Func {
	for i := 0; i < ms.Len(); i++ {
		if f, ok := ms.At(i).Obj().(*types.Func); ok && f.Name() == name {
			return f
		}
	}
	return nil
}

// registeredTypeNames collects the local type names passed as the
// summary type argument of registry.Register calls in this package,
// whether the argument is written explicitly (Register[Summary](...))
// or inferred from the Spec literal.
func registeredTypeNames(pass *analysis.Pass) map[string]bool {
	out := make(map[string]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel := calleeSelector(call)
			if sel == nil || sel.Sel.Name != "Register" || !isRegistryPkg(pass, sel.X) {
				return true
			}
			// The instantiation map resolves the summary type argument
			// for both explicit and inferred calls.
			if inst, ok := pass.TypesInfo.Instances[sel.Sel]; ok && inst.TypeArgs.Len() > 0 {
				t := inst.TypeArgs.At(0)
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					out[named.Obj().Name()] = true
				}
			}
			return true
		})
	}
	return out
}

// calleeSelector unwraps a possibly-instantiated call expression down
// to its pkg.Func selector.
func calleeSelector(call *ast.CallExpr) *ast.SelectorExpr {
	fun := call.Fun
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = e.X
	case *ast.IndexListExpr:
		fun = e.X
	}
	sel, _ := fun.(*ast.SelectorExpr)
	return sel
}

// isRegistryPkg reports whether expr names an imported package whose
// path ends in /registry (covering fixture stand-ins as well as
// repro/internal/registry).
func isRegistryPkg(pass *analysis.Pass, expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	path := pkgName.Imported().Path()
	return path == "repro/internal/registry" || strings.HasSuffix(path, "/registry")
}

// optedOut reports whether the named type's doc comment carries the
// //sketch:unregistered escape hatch.
func optedOut(pass *analysis.Pass, typeName string) bool {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != typeName {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if doc == nil {
					continue
				}
				for _, c := range doc.List {
					if strings.Contains(c.Text, "sketch:unregistered") {
						return true
					}
				}
			}
		}
	}
	return false
}
