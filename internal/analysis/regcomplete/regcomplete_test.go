package regcomplete_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/regcomplete"
)

func TestRegcomplete(t *testing.T) {
	analysistest.Run(t, "../testdata/src/regcomplete_a", regcomplete.Analyzer)
}

// TestRegcompleteInferred checks that a registration whose summary
// type argument is inferred from the Spec literal still counts.
func TestRegcompleteInferred(t *testing.T) {
	analysistest.Run(t, "../testdata/src/regcomplete_b", regcomplete.Analyzer)
}
