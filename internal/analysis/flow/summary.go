package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Summary is one function's interprocedural fact row. Facts are
// computed per package with a bounded worklist fixpoint, so a fact
// set on a helper propagates to the same-package functions that call
// it; analyzers then consult only the summary of a call's direct
// callee (one-level lookup, transitively folded).
type Summary struct {
	// PoolSource: the function returns a value obtained from a pool
	// (codec.GetBuffer, a GetScratch method, sync.Pool.Get, or a
	// same-package PoolSource callee). Functions that also return a
	// func-typed value are excluded: that shape is the borrow/release
	// pair (combineAccumulator, getCombineMap), whose lifetime is
	// managed by the returned closure, not the caller's Put.
	PoolSource bool

	// SinkParams[i]: parameter i is released to a pool on some path
	// (passed to PutBuffer/PutScratch/Pool.Put or to a same-package
	// sink).
	SinkParams []bool

	// AliasParams[i]: some return value may alias pointer-shaped
	// parameter i (readLengthPrefixed returning f's backing bytes).
	AliasParams []bool

	// WritesRecv: the method writes receiver state — a field
	// assignment rooted at the receiver, an in-place sort/clear/
	// delete of receiver-rooted data, or a call of a same-package
	// WritesRecv method on its own receiver.
	WritesRecv bool

	// Draws: the function draws from an RNG (a draw method on a
	// gen-package type, or math/rand), directly or through a
	// same-package callee.
	Draws bool
	// DrawName names the draw for diagnostics ("RNG.Uint64").
	DrawName string

	// Clock: the function reads the wall clock (time.Now/Since),
	// directly or through a same-package callee.
	Clock bool

	// MapRangeEncode: the function ranges over a map and feeds codec
	// Buffer writes from inside the loop — iteration-order-dependent
	// bytes — directly or through a same-package callee.
	MapRangeEncode bool

	// WritesWire: the function appends payload bytes to a codec.Buffer
	// (directly or through a same-package callee). The wireshape
	// analyzer inlines same-package helpers with this fact when it
	// extracts a codec's wire schema.
	WritesWire bool

	// ReadsWire: the function consumes payload bytes from a
	// codec.Reader (directly or through a same-package callee).
	ReadsWire bool

	// Blocking classifies the heaviest lock-hostile operation the
	// function performs, directly or through a same-package callee:
	// "" (none), "decode", "I/O", "channel", "sleep" or "pool-get".
	Blocking string
	// BlockingVia names the callee chain for diagnostics ("" when the
	// operation is in the function itself).
	BlockingVia string
	// BlockingPos is the operation's position (for reference).
	BlockingPos token.Pos
}

// Draw-method names on gen-package types. Getters (State, Seed) are
// deliberately absent: persisting RNG state is how codecs stay pure.
var drawNames = map[string]bool{
	"Uint64": true, "Uint64n": true, "Intn": true, "Int63": true,
	"Float64": true, "Bool": true, "Norm": true, "NormFloat64": true,
	"Exp": true, "ExpFloat64": true, "Perm": true, "Shuffle": true,
}

// Buffer write-method names: calls that append payload bytes, whose
// order becomes wire order.
var bufferWriteNames = map[string]bool{
	"Uint64": true, "Int": true, "Bool": true, "Float64": true,
}

// blockingRank orders classes so the fixpoint keeps the most severe.
var blockingRank = map[string]int{"": 0, "pool-get": 1, "sleep": 2, "channel": 3, "I/O": 4, "decode": 5}

// IsDirectPoolGet reports whether the call is a direct pool
// acquisition: codec.GetBuffer, any GetScratch method, or
// sync.Pool.Get.
func (in *Info) IsDirectPoolGet(call *ast.CallExpr) bool {
	name := CalleeName(call)
	switch name {
	case "GetScratch":
		return true
	case "GetBuffer":
		fn := in.Callee(call)
		return fn != nil && pathIs(pkgPathOf(fn), "codec")
	case "Get":
		fn := in.Callee(call)
		return fn != nil && pkgPathOf(fn) == "sync" && RecvTypeName(fn) == "Pool"
	}
	return false
}

// PoolPutArg returns the argument expression a direct pool release
// recycles (codec.PutBuffer, PutScratch methods, sync.Pool.Put), or
// nil when the call is not one.
func (in *Info) PoolPutArg(call *ast.CallExpr) ast.Expr {
	if len(call.Args) == 0 {
		return nil
	}
	switch CalleeName(call) {
	case "PutScratch":
		return call.Args[0]
	case "PutBuffer":
		if fn := in.Callee(call); fn != nil && pathIs(pkgPathOf(fn), "codec") {
			return call.Args[0]
		}
	case "Put":
		if fn := in.Callee(call); fn != nil && pkgPathOf(fn) == "sync" && RecvTypeName(fn) == "Pool" {
			return call.Args[0]
		}
	}
	return nil
}

// buildSummaries computes the package's summary table: local facts
// first, then a bounded fixpoint folding same-package callee facts
// into callers.
func (in *Info) buildSummaries() {
	for fn, fd := range in.Funcs {
		in.Summaries[fn] = in.localSummary(fn, fd)
	}
	// Propagate through same-package calls until stable. The call
	// graph is small (one package); 10 rounds bounds pathological
	// cycles.
	for round := 0; round < 10; round++ {
		changed := false
		for fn, fd := range in.Funcs {
			if in.propagate(fn, fd) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// paramObjs returns the function's parameter objects in order.
func (in *Info) paramObjs(fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, in.TypesInfo.Defs[name])
		}
	}
	return out
}

// localSummary extracts the facts visible in one function body alone.
func (in *Info) localSummary(fn *types.Func, fd *ast.FuncDecl) *Summary {
	s := &Summary{}
	params := in.paramObjs(fd)
	s.SinkParams = make([]bool, len(params))
	s.AliasParams = make([]bool, len(params))
	paramIdx := map[types.Object]int{}
	for i, p := range params {
		if p != nil {
			paramIdx[p] = i
		}
	}

	// rootedAt: local objects whose value may alias a parameter,
	// grown flow-insensitively through assignment chains.
	rootedAt := map[types.Object]int{}
	for obj, i := range paramIdx {
		rootedAt[obj] = i
	}
	for pass := 0; pass < 4; pass++ {
		grew := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := in.ObjOf(id)
				if obj == nil {
					continue
				}
				if _, done := rootedAt[obj]; done {
					continue
				}
				if root := RootIdent(as.Rhs[i]); root != nil {
					if robj := in.ObjOf(root); robj != nil {
						if pi, ok := rootedAt[robj]; ok {
							rootedAt[obj] = pi
							grew = true
						}
					}
				}
			}
			return true
		})
		if !grew {
			break
		}
	}

	recv := RecvIdent(fd)
	var recvObj types.Object
	if recv != nil {
		recvObj = in.TypesInfo.Defs[recv]
	}
	rootsAtRecv := func(e ast.Expr) bool {
		id := RootIdent(e)
		return id != nil && recvObj != nil && in.ObjOf(id) == recvObj
	}

	// getVars: locals assigned from a direct pool get (value-numbered
	// through assert/paren by RootIdent on the RHS call result via
	// direct inspection).
	getVars := map[types.Object]bool{}

	hasFuncResult := false
	if fd.Type.Results != nil {
		for _, r := range fd.Type.Results.List {
			if tv, ok := in.TypesInfo.Types[r.Type]; ok && tv.Type != nil {
				if _, isFunc := tv.Type.Underlying().(*types.Signature); isFunc {
					hasFuncResult = true
				}
			}
		}
	}

	// containsGet unwraps parens/type-asserts down to a direct pool
	// get call.
	var containsGet func(e ast.Expr) bool
	containsGet = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return in.IsDirectPoolGet(x)
		case *ast.TypeAssertExpr:
			return containsGet(x.X)
		case *ast.StarExpr:
			return containsGet(x.X)
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i := range x.Lhs {
				if i < len(x.Rhs) && len(x.Lhs) == len(x.Rhs) {
					if id, ok := x.Lhs[i].(*ast.Ident); ok && containsGet(x.Rhs[i]) {
						if obj := in.ObjOf(id); obj != nil {
							getVars[obj] = true
						}
					}
				}
				if rootsAtRecv(x.Lhs[i]) {
					if id, isIdent := x.Lhs[i].(*ast.Ident); !isIdent || id == nil || in.ObjOf(id) != recvObj {
						s.WritesRecv = true
					} else if x.Tok != token.DEFINE {
						// Reassigning the receiver variable itself
						// (*s = v is a StarExpr LHS, caught above).
						s.WritesRecv = true
					}
				}
			}
		case *ast.IncDecStmt:
			if rootsAtRecv(x.X) {
				s.WritesRecv = true
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if containsGet(res) && !hasFuncResult {
					s.PoolSource = true
				}
				if root := RootIdent(res); root != nil {
					if obj := in.ObjOf(root); obj != nil {
						if getVars[obj] && !hasFuncResult {
							s.PoolSource = true
						}
						if pi, ok := rootedAt[obj]; ok && resultMayAlias(in, res) {
							s.AliasParams[pi] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			in.classifyCall(s, x, paramIdx, rootsAtRecv)
		case *ast.SendStmt:
			s.noteBlocking("channel", "", x.Pos())
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				s.noteBlocking("channel", "", x.Pos())
			}
		case *ast.SelectStmt:
			s.noteBlocking("channel", "", x.Pos())
		case *ast.RangeStmt:
			if tv, ok := in.TypesInfo.Types[x.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					s.noteBlocking("channel", "", x.Pos())
				}
			}
			if in.IsMapType(x.X) && in.RangeFeedsBuffer(x) {
				s.MapRangeEncode = true
			}
		}
		return true
	})
	return s
}

// IsDrawName reports whether name is an RNG draw-method name (the
// class encodepure bans on gen-package receivers).
func IsDrawName(name string) bool { return drawNames[name] }

// RangeFeedsBuffer reports whether the range body writes payload
// bytes directly: a call to a codec.Buffer write method (Uint64, Int,
// Bool, Float64) anywhere inside the loop. Collect-then-sort loops
// (append ids, sort, then write) stay clean because the writes sit
// after the loop.
func (in *Info) RangeFeedsBuffer(r *ast.RangeStmt) bool {
	found := false
	ast.Inspect(r.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		name := CalleeName(call)
		if !bufferWriteNames[name] {
			return true
		}
		if fn := in.Callee(call); fn != nil &&
			RecvTypeName(fn) == "Buffer" && pathIs(RecvTypePkgPath(fn), "codec") {
			found = true
			return false
		}
		return true
	})
	return found
}

// resultMayAlias limits AliasParams to reference-shaped results:
// slices, pointers and maps can alias a parameter's memory; scalars
// and strings copied out of it cannot retain it.
func resultMayAlias(in *Info, res ast.Expr) bool {
	tv, ok := in.TypesInfo.Types[res]
	if !ok || tv.Type == nil {
		return true
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}

// classifyCall folds one call's contribution into the local summary.
func (in *Info) classifyCall(s *Summary, call *ast.CallExpr, paramIdx map[types.Object]int, rootsAtRecv func(ast.Expr) bool) {
	name := CalleeName(call)
	fn := in.Callee(call)
	pkg := pkgPathOf(fn)

	// Pool sinks: a parameter (or its address) released to a pool.
	if arg := in.PoolPutArg(call); arg != nil {
		if root := RootIdent(arg); root != nil {
			if obj := in.ObjOf(root); obj != nil {
				if pi, ok := paramIdx[obj]; ok {
					s.SinkParams[pi] = true
				}
			}
		}
	}

	// Receiver mutation through stdlib in-place mutators.
	if fn != nil && pkg == "sort" && (name == "Slice" || name == "SliceStable" || name == "Sort" || name == "Stable" ||
		strings.HasPrefix(name, "Float64s") || strings.HasPrefix(name, "Ints") || strings.HasPrefix(name, "Strings")) {
		if len(call.Args) > 0 && rootsAtRecv(call.Args[0]) {
			s.WritesRecv = true
		}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "clear" || id.Name == "delete") && in.Callee(call) == nil {
		if len(call.Args) > 0 && rootsAtRecv(call.Args[0]) {
			s.WritesRecv = true
		}
	}

	// Wire operations: payload writes to a codec.Buffer and payload
	// reads from a codec.Reader.
	if _, ok := in.BufferWriteOp(call); ok {
		s.WritesWire = true
	}
	if _, _, ok := in.ReaderReadOp(call); ok {
		s.ReadsWire = true
	}

	// RNG draws: draw-named methods on gen-package types, or any
	// math/rand use.
	if fn != nil {
		if drawNames[name] && pathIs(RecvTypePkgPath(fn), "gen") {
			s.Draws = true
			s.DrawName = RecvTypeName(fn) + "." + name
		}
		if pkg == "math/rand" || pkg == "math/rand/v2" {
			s.Draws = true
			s.DrawName = "rand." + name
		}
		if pkg == "time" && (name == "Now" || name == "Since") {
			s.Clock = true
		}
	}

	// Blocking classes.
	switch {
	case name == "DecodeInto" || name == "UnmarshalBinary" || name == "Decode" || name == "DecodeFrame" || name == "ReadFrame":
		s.noteBlocking("decode", "", call.Pos())
	case fn != nil && pkg == "fmt" && strings.HasPrefix(name, "Fprint"):
		s.noteBlocking("I/O", "", call.Pos())
	case fn != nil && isIOPkg(pkg):
		s.noteBlocking("I/O", "", call.Pos())
	case fn != nil && isIOPkg(RecvTypePkgPath(fn)):
		s.noteBlocking("I/O", "", call.Pos())
	case fn != nil && pkg == "time" && name == "Sleep":
		s.noteBlocking("sleep", "", call.Pos())
	case in.IsDirectPoolGet(call):
		s.noteBlocking("pool-get", "", call.Pos())
	}
}

// isIOPkg reports packages whose calls can reach a syscall or block
// on a peer.
func isIOPkg(path string) bool {
	switch path {
	case "io", "os", "net", "bufio", "io/ioutil":
		return true
	}
	return strings.HasPrefix(path, "net/")
}

// noteBlocking records a blocking fact, keeping the most severe class.
func (s *Summary) noteBlocking(class, via string, pos token.Pos) {
	if blockingRank[class] > blockingRank[s.Blocking] {
		s.Blocking, s.BlockingVia, s.BlockingPos = class, via, pos
	}
}

// propagate folds direct same-package callees' facts into fn's
// summary; reports whether anything changed.
func (in *Info) propagate(fn *types.Func, fd *ast.FuncDecl) bool {
	s := in.Summaries[fn]
	recv := RecvIdent(fd)
	var recvObj types.Object
	if recv != nil {
		recvObj = in.TypesInfo.Defs[recv]
	}
	params := in.paramObjs(fd)
	paramIdx := map[types.Object]int{}
	for i, p := range params {
		if p != nil {
			paramIdx[p] = i
		}
	}
	// Locals holding pool-gotten values feed PoolSource through the
	// fixpoint too: v := helper() where helper is PoolSource, then
	// return v.
	sourceVars := map[types.Object]bool{}

	changed := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			callee, cs := in.FuncOf(x)
			if callee == nil || cs == nil || cs == s {
				return true
			}
			if cs.Draws && !s.Draws {
				s.Draws, s.DrawName, changed = true, cs.DrawName, true
			}
			if cs.Clock && !s.Clock {
				s.Clock, changed = true, true
			}
			if cs.MapRangeEncode && !s.MapRangeEncode {
				s.MapRangeEncode, changed = true, true
			}
			if cs.WritesWire && !s.WritesWire {
				s.WritesWire, changed = true, true
			}
			if cs.ReadsWire && !s.ReadsWire {
				s.ReadsWire, changed = true, true
			}
			if cs.Blocking != "" && blockingRank[cs.Blocking] > blockingRank[s.Blocking] {
				via := callee.Name()
				if cs.BlockingVia != "" {
					via += " → " + cs.BlockingVia
				}
				s.noteBlocking(cs.Blocking, via, x.Pos())
				changed = true
			}
			if cs.WritesRecv && !s.WritesRecv {
				if root := RecvRoot(x); root != nil && recvObj != nil && in.ObjOf(root) == recvObj {
					s.WritesRecv, changed = true, true
				}
			}
			for i, sink := range cs.SinkParams {
				if !sink || i >= len(x.Args) {
					continue
				}
				if root := RootIdent(x.Args[i]); root != nil {
					if obj := in.ObjOf(root); obj != nil {
						if pi, ok := paramIdx[obj]; ok && !s.SinkParams[pi] {
							s.SinkParams[pi], changed = true, true
						}
					}
				}
			}
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				// v, ok := ... or multi-return: check the first LHS
				// against a PoolSource call result.
				if len(x.Rhs) == 1 && len(x.Lhs) > 0 {
					if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok {
						if _, cs := in.FuncOf(call); cs != nil && cs.PoolSource {
							if id, ok := x.Lhs[0].(*ast.Ident); ok {
								if obj := in.ObjOf(id); obj != nil {
									sourceVars[obj] = true
								}
							}
						}
					}
				}
				return true
			}
			for i := range x.Lhs {
				if call, ok := ast.Unparen(x.Rhs[i]).(*ast.CallExpr); ok {
					if _, cs := in.FuncOf(call); cs != nil && cs.PoolSource {
						if id, ok := x.Lhs[i].(*ast.Ident); ok {
							if obj := in.ObjOf(id); obj != nil {
								sourceVars[obj] = true
							}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
					if _, cs := in.FuncOf(call); cs != nil && cs.PoolSource && !s.PoolSource {
						s.PoolSource, changed = true, true
					}
				}
				if root := RootIdent(res); root != nil {
					if obj := in.ObjOf(root); obj != nil && sourceVars[obj] && !s.PoolSource {
						s.PoolSource, changed = true, true
					}
				}
			}
		}
		return true
	})
	return changed
}
