// Package flow is the shared SSA-lite dataflow layer under the
// flow-sensitive sketchlint analyzers (poollife, encodepure,
// lockflow). It stays stdlib-only, like the analysis framework it
// extends, and provides three things:
//
//   - a structured abstract interpreter (Interp) that walks a
//     function body in execution order — forking at branches, joining
//     at merge points, running loop bodies to a two-pass fixpoint,
//     and applying deferred calls at every exit — so client analyzers
//     see per-path abstract states instead of raw syntax;
//
//   - per-function summaries (Summary) giving one-level
//     interprocedural facts: does a function hand out pooled values,
//     release a parameter back to a pool, return an alias of a
//     parameter, write its receiver, draw randomness, touch the
//     clock, or perform a blocking/allocation-heavy operation. The
//     summaries are computed once per package with a bounded worklist
//     fixpoint, so in-package helper chains are folded into the facts
//     a caller-side analyzer consults;
//
//   - local value numbering (client-side via Info's resolution
//     helpers): expressions that must denote the same runtime value —
//     an ident, its parenthesized/asserted/sliced forms, and known
//     alias-returning methods — resolve to one root, which is what
//     lets poollife track a pooled buffer through w.Bytes() slices
//     and Borrow-style views.
//
// Everything here is deliberately conservative in the direction that
// keeps the live tree quiet: unknown calls neither release nor alias
// tracked values, values stored into local containers or captured by
// non-go closures leave the tracked domain, and facts only cross
// function boundaries through the summary table.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"sync"

	"repro/internal/analysis"
)

// Info is the flow IR of one type-checked package: the function table,
// the summary table, and the resolution helpers every flow analyzer
// shares. Build it with Of; it is cached per package so the three
// analyzers pay for one construction, not three.
type Info struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	PkgPath   string

	// Funcs maps each declared function or method object to its
	// declaration. Function literals are not entered here; the
	// interpreter treats them as opaque values.
	Funcs map[*types.Func]*ast.FuncDecl

	// Summaries holds the per-function interprocedural facts, keyed
	// like Funcs.
	Summaries map[*types.Func]*Summary
}

// cache holds one Info per type-checked package. The sketchlint
// driver runs analyzers sequentially but analysistest may run in
// parallel subtests, so access is locked.
var (
	cacheMu sync.Mutex
	cache   = map[*types.Package]*Info{}
)

// Of returns the (cached) flow IR for the pass's package.
func Of(pass *analysis.Pass) *Info {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if in, ok := cache[pass.Pkg]; ok {
		return in
	}
	in := &Info{
		Fset:      pass.Fset,
		Files:     pass.Files,
		Pkg:       pass.Pkg,
		TypesInfo: pass.TypesInfo,
		PkgPath:   pass.PkgPath,
		Funcs:     map[*types.Func]*ast.FuncDecl{},
		Summaries: map[*types.Func]*Summary{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				in.Funcs[obj] = fd
			}
		}
	}
	in.buildSummaries()
	cache[pass.Pkg] = in
	return in
}

// Callee resolves the statically-known callee of a call expression:
// a package-level function, a method (including generic instances),
// or nil for builtins, function values, conversions and dynamic
// dispatch through func-typed fields.
func (in *Info) Callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	if id == nil {
		return nil
	}
	fn, _ := in.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// CalleeName returns the bare name of the called function or method,
// resolving through neither summaries nor types: the syntactic name
// used by class checks that must also work across packages ("Decode",
// "GetScratch", "Lock").
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// RecvRoot returns the root identifier of the callee's receiver chain
// for a method call (sel.X of the selector, unwrapped), or nil for
// plain function calls.
func RecvRoot(call *ast.CallExpr) *ast.Ident {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return RootIdent(sel.X)
}

// RootIdent unwraps parens, unary &/*, index, slice, selector and
// type-assertion expressions down to the base identifier, or nil when
// the expression is not rooted in one (a call result, a literal).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// FuncOf returns the *types.Func a call resolves to only when it is
// declared in this package, together with its summary. One-level
// interprocedural lookups go through here.
func (in *Info) FuncOf(call *ast.CallExpr) (*types.Func, *Summary) {
	fn := in.Callee(call)
	if fn == nil {
		return nil, nil
	}
	// Generic methods resolve to the instantiated object; summaries
	// are keyed by the declared origin.
	fn = fn.Origin()
	sum := in.Summaries[fn]
	return fn, sum
}

// pkgPathOf returns the import path of the package declaring fn, or
// "" for builtins.
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// pathIs reports whether path is exactly name or ends in "/name" —
// how the analyzers match both the real repro packages and their
// fixture stand-ins.
func pathIs(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}

// HasAnnotation reports whether the function's doc comment carries
// the given machine annotation ("//sketch:...") on a line of its own.
func HasAnnotation(fd *ast.FuncDecl, ann string) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == ann {
			return true
		}
	}
	return false
}

// RecvIdent returns the receiver identifier of a method declaration,
// or nil for functions and anonymous receivers.
func RecvIdent(fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	id := fd.Recv.List[0].Names[0]
	if id.Name == "_" {
		return nil
	}
	return id
}

// ObjOf resolves an identifier to its object through either the Defs
// or Uses map.
func (in *Info) ObjOf(id *ast.Ident) types.Object {
	if obj := in.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return in.TypesInfo.Defs[id]
}

// IsMapType reports whether the expression's type is a map.
func (in *Info) IsMapType(e ast.Expr) bool {
	tv, ok := in.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// RecvTypePkgPath returns the import path of the package declaring
// the method's receiver named type ("" when unresolvable). Used to
// classify draw methods (gen.RNG) and I/O methods (net, bufio).
func RecvTypePkgPath(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}

// RecvTypeName returns the bare name of the method's receiver named
// type ("" when unresolvable).
func RecvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil {
		return ""
	}
	return named.Obj().Name()
}
