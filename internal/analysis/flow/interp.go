package flow

import (
	"go/ast"
	"go/token"
)

// Client is the transfer-function side of the abstract interpreter.
// States are opaque to the engine; the engine only copies, joins and
// threads them along the structured control flow of a function body.
type Client interface {
	// Copy returns an independent copy of st (states are mutated in
	// place by Transfer).
	Copy(st any) any
	// Join merges b into a and returns the joined state. b is dead
	// after the call.
	Join(a, b any) any
	// Transfer applies one atomic step: a simple statement, a branch
	// condition, a synthetic RangeBind, or a DeferredCall replayed at
	// an exit. Nodes never contain nested statements, but may contain
	// function literals, which the engine does not descend into.
	Transfer(st any, n ast.Node) any
	// Refine narrows st under a branch condition's outcome. Return st
	// unchanged if the condition carries no information.
	Refine(st any, cond ast.Expr, taken bool) any
	// AtExit observes the state at one function exit, after deferred
	// calls have been replayed. ret is nil when the body falls off
	// the end.
	AtExit(st any, ret *ast.ReturnStmt)
}

// RangeBind is the synthetic event the engine emits once per modeled
// iteration of a range loop, standing in for the key/value bind. The
// loop body itself is interpreted separately — analyzers must not
// descend into R.Body.
type RangeBind struct{ R *ast.RangeStmt }

func (r RangeBind) Pos() token.Pos { return r.R.Pos() }
func (r RangeBind) End() token.Pos { return r.R.X.End() }

// DeferredCall wraps a deferred call replayed at a function exit, in
// LIFO order, before AtExit runs.
type DeferredCall struct{ Call *ast.CallExpr }

func (d DeferredCall) Pos() token.Pos { return d.Call.Pos() }
func (d DeferredCall) End() token.Pos { return d.Call.End() }

// Interp drives a Client over one function body.
type Interp struct {
	Client Client
}

// path is one abstract execution path: a state, the defers collected
// along it, and whether it already exited.
type path struct {
	st     any
	defers []*ast.CallExpr
	dead   bool
}

// collector accumulates the states of paths that jump to one place
// (the break target of a loop, the continue point, the join after a
// switch).
type collector struct {
	st  any
	any bool
}

func (ip *Interp) join(a, b *path) {
	if b.dead {
		return
	}
	if a.dead {
		a.st, a.defers, a.dead = b.st, b.defers, false
		return
	}
	a.st = ip.Client.Join(a.st, b.st)
	// Defers differing across paths is rare (a conditional defer);
	// keep the union so releases are never lost at exits.
	for _, d := range b.defers {
		found := false
		for _, e := range a.defers {
			if e == d {
				found = true
				break
			}
		}
		if !found {
			a.defers = append(a.defers, d)
		}
	}
}

func (ip *Interp) collect(c *collector, p *path) {
	if p.dead {
		return
	}
	if !c.any {
		c.st, c.any = ip.Client.Copy(p.st), true
	} else {
		c.st = ip.Client.Join(c.st, ip.Client.Copy(p.st))
	}
}

func (ip *Interp) fork(p *path) *path {
	return &path{st: ip.Client.Copy(p.st), defers: append([]*ast.CallExpr(nil), p.defers...), dead: p.dead}
}

// loopCtx is the break/continue target stack entry.
type loopCtx struct {
	label    string
	brk      *collector
	cont     *collector // nil for switch/select entries (break only)
	isSwitch bool
}

// Run interprets the function body starting from init. AtExit fires
// for every return statement and for the fall-off-the-end exit.
func (ip *Interp) Run(fd *ast.FuncDecl, init any) {
	p := &path{st: init}
	ip.execBlock(p, fd.Body, nil, "")
	ip.exit(p, nil)
}

// exit replays the path's defers (LIFO) and reports the exit state.
func (ip *Interp) exit(p *path, ret *ast.ReturnStmt) {
	if p.dead {
		return
	}
	for i := len(p.defers) - 1; i >= 0; i-- {
		p.st = ip.Client.Transfer(p.st, DeferredCall{Call: p.defers[i]})
	}
	ip.Client.AtExit(p.st, ret)
	p.dead = true
}

func (ip *Interp) execBlock(p *path, b *ast.BlockStmt, stack []*loopCtx, label string) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		if p.dead {
			return
		}
		ip.exec(p, s, stack, "")
	}
	_ = label
}

func (ip *Interp) exec(p *path, stmt ast.Stmt, stack []*loopCtx, label string) {
	if p.dead {
		return
	}
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		ip.execBlock(p, s, stack, "")

	case *ast.ExprStmt:
		p.st = ip.Client.Transfer(p.st, s.X)
		if isNoReturnCall(s.X) {
			p.dead = true
		}

	case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.SendStmt, *ast.GoStmt:
		p.st = ip.Client.Transfer(p.st, stmt)

	case *ast.ReturnStmt:
		p.st = ip.Client.Transfer(p.st, s)
		ip.exit(p, s)

	case *ast.DeferStmt:
		p.defers = append(p.defers, s.Call)

	case *ast.IfStmt:
		if s.Init != nil {
			ip.exec(p, s.Init, stack, "")
		}
		p.st = ip.Client.Transfer(p.st, s.Cond)
		els := ip.fork(p)
		p.st = ip.Client.Refine(p.st, s.Cond, true)
		ip.execBlock(p, s.Body, stack, "")
		els.st = ip.Client.Refine(els.st, s.Cond, false)
		if s.Else != nil {
			ip.exec(els, s.Else, stack, "")
		}
		ip.join(p, els)

	case *ast.ForStmt:
		if s.Init != nil {
			ip.exec(p, s.Init, stack, "")
		}
		ip.execLoop(p, stack, label, s.Cond, nil, s.Body, s.Post)

	case *ast.RangeStmt:
		p.st = ip.Client.Transfer(p.st, s.X)
		ip.execLoop(p, stack, label, nil, s, s.Body, nil)

	case *ast.SwitchStmt:
		if s.Init != nil {
			ip.exec(p, s.Init, stack, "")
		}
		if s.Tag != nil {
			p.st = ip.Client.Transfer(p.st, s.Tag)
		}
		ip.execSwitch(p, s.Body, stack, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			ip.exec(p, s.Init, stack, "")
		}
		p.st = ip.Client.Transfer(p.st, s.Assign)
		ip.execSwitch(p, s.Body, stack, label, nil)

	case *ast.SelectStmt:
		ip.execSwitch(p, s.Body, stack, label, nil)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if c := findCtx(stack, s.Label, true); c != nil {
				ip.collect(c.brk, p)
			}
			p.dead = true
		case token.CONTINUE:
			if c := findCtx(stack, s.Label, false); c != nil && c.cont != nil {
				ip.collect(c.cont, p)
			}
			p.dead = true
		case token.GOTO:
			// Rare in this tree; treat conservatively as leaving the
			// analyzable region.
			p.dead = true
		case token.FALLTHROUGH:
			// Handled by execSwitch; reaching here (outside a switch)
			// is malformed code.
		}

	case *ast.LabeledStmt:
		ip.exec(p, s.Stmt, stack, s.Label.Name)

	case *ast.EmptyStmt:
	default:
		// Unknown statement kinds pass through untransferred.
	}
}

// execLoop models a for/range loop: the body runs twice from the
// joined entry state (enough for facts one iteration apart, e.g. a
// Put in iteration n observed by a use in n+1), and the state after
// the loop joins every way out — the zero-iteration path, the
// condition turning false, and breaks.
func (ip *Interp) execLoop(p *path, stack []*loopCtx, label string, cond ast.Expr, rng *ast.RangeStmt, body *ast.BlockStmt, post ast.Stmt) {
	brk, cont := &collector{}, &collector{}
	ctx := &loopCtx{label: label, brk: brk, cont: cont}
	inner := append(stack, ctx)

	entry := ip.fork(p) // zero-iteration exit state (cond false / empty range)
	infinite := cond == nil && rng == nil

	cur := p
	for i := 0; i < 2; i++ {
		if cur.dead {
			break
		}
		if cond != nil {
			cur.st = ip.Client.Transfer(cur.st, cond)
			cur.st = ip.Client.Refine(cur.st, cond, true)
		}
		if rng != nil {
			cur.st = ip.Client.Transfer(cur.st, RangeBind{R: rng})
		}
		ip.execBlock(cur, body, inner, "")
		if cont.any {
			other := &path{st: cont.st, defers: cur.defers}
			ip.join(cur, other)
			cont.st, cont.any = nil, false
		}
		if post != nil && !cur.dead {
			ip.exec(cur, post, stack, "")
		}
	}

	// After the loop: zero-iteration path ∪ post-iteration path
	// (unless the loop has no exit condition) ∪ breaks.
	after := entry
	if infinite {
		after = &path{dead: true, defers: entry.defers}
	} else if !cur.dead {
		ip.join(after, ip.fork(cur))
	}
	if brk.any {
		ip.join(after, &path{st: brk.st, defers: after.defers})
	}
	if cond != nil && !after.dead {
		after.st = ip.Client.Refine(after.st, cond, false)
	}
	*p = *after
}

// execSwitch models switch/type-switch/select bodies: each clause
// forks from the entry state; fallthrough chains a clause's end state
// into the next clause; a missing default contributes the untouched
// entry state. Break inside a clause targets the switch itself.
func (ip *Interp) execSwitch(p *path, body *ast.BlockStmt, stack []*loopCtx, label string, _ *collector) {
	brk := &collector{}
	ctx := &loopCtx{label: label, brk: brk, isSwitch: true}
	inner := append(stack, ctx)

	var clauses []ast.Stmt
	if body != nil {
		clauses = body.List
	}
	out := &path{dead: true}
	hasDefault := false
	var fall *path // state chained from a fallthrough

	for ci, cs := range clauses {
		var caseExprs []ast.Expr
		var caseBody []ast.Stmt
		switch c := cs.(type) {
		case *ast.CaseClause:
			caseExprs, caseBody = c.List, c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			caseBody = c.Body
			if c.Comm == nil {
				hasDefault = true
			} else {
				caseBody = append([]ast.Stmt{c.Comm}, caseBody...)
			}
		default:
			continue
		}
		cp := ip.fork(p)
		for _, e := range caseExprs {
			cp.st = ip.Client.Transfer(cp.st, e)
		}
		if fall != nil {
			ip.join(cp, fall)
			fall = nil
		}
		fellThrough := false
		for si, s := range caseBody {
			if cp.dead {
				break
			}
			if b, ok := s.(*ast.BranchStmt); ok && b.Tok == token.FALLTHROUGH && si == len(caseBody)-1 {
				fellThrough = true
				break
			}
			ip.exec(cp, s, inner, "")
		}
		if fellThrough && ci < len(clauses)-1 {
			fall = cp
			continue
		}
		ip.join(out, cp)
	}
	if fall != nil {
		ip.join(out, fall)
	}
	if !hasDefault {
		ip.join(out, ip.fork(p)) // no clause matched
	}
	if brk.any {
		ip.join(out, &path{st: brk.st, defers: p.defers})
	}
	*p = *out
}

// findCtx locates the branch target on the context stack: the nearest
// matching label, or — unlabeled — the nearest loop for continue and
// the nearest loop/switch for break.
func findCtx(stack []*loopCtx, label *ast.Ident, isBreak bool) *loopCtx {
	for i := len(stack) - 1; i >= 0; i-- {
		c := stack[i]
		if label != nil {
			if c.label == label.Name {
				return c
			}
			continue
		}
		if isBreak || !c.isSwitch {
			return c
		}
	}
	return nil
}

// isNoReturnCall reports whether the expression statement is a call
// that never returns (panic, os.Exit, runtime.Goexit, log.Fatal*):
// states on such paths never reach an exit check.
func isNoReturnCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			switch {
			case id.Name == "os" && fun.Sel.Name == "Exit",
				id.Name == "runtime" && fun.Sel.Name == "Goexit",
				id.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"):
				return true
			}
		}
	}
	return false
}
