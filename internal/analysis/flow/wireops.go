package flow

import (
	"go/ast"
)

// WireClass is the on-wire width class of one codec.Buffer write or
// codec.Reader read. It is the symbolic buffer-op summary the
// wireshape analyzer interprets: two sides of a codec agree exactly
// when their ordered WireClass sequences (and loop structure) agree.
type WireClass uint8

const (
	// WireUvarint is a variable-length unsigned varint (Buffer.Uint64,
	// Buffer.Int; Reader.Uint64, Reader.Int, Reader.ArrayLen).
	WireUvarint WireClass = iota + 1
	// WireByte is a single byte (Buffer.Bool, Reader.Bool).
	WireByte
	// WireF64 is 8 bytes of IEEE-754 little-endian (Float64 on both
	// sides).
	WireF64
	// WireBytes is a raw byte run of symbolic length (Reader.Borrow;
	// no Buffer counterpart exists today — encoders emit raw runs one
	// byte at a time through Uint64, which stays WireUvarint).
	WireBytes
)

func (c WireClass) String() string {
	switch c {
	case WireUvarint:
		return "uvarint"
	case WireByte:
		return "byte"
	case WireF64:
		return "f64"
	case WireBytes:
		return "bytes"
	}
	return "?"
}

// ReadOrigin classifies how a Reader read was obtained, which is what
// decides whether a loop bounded by the value counts as validated.
type ReadOrigin uint8

const (
	// OriginPlain is an unvalidated read (Uint64, Bool, Float64).
	OriginPlain ReadOrigin = iota
	// OriginInt is Reader.Int: bounded to MaxInt32 but not validated
	// against the remaining payload.
	OriginInt
	// OriginArrayLen is Reader.ArrayLen: an element count validated
	// against the remaining payload before any allocation.
	OriginArrayLen
)

// bufferWriteOps maps codec.Buffer payload-append methods to their
// wire class. Grow/Reset/Bytes/Len are buffer management, not wire
// operations, and are deliberately absent.
var bufferWriteOps = map[string]WireClass{
	"Uint64":  WireUvarint,
	"Int":     WireUvarint,
	"Bool":    WireByte,
	"Float64": WireF64,
}

// readerReadOps maps codec.Reader payload-consume methods to their
// wire class. Err/Remaining/Finish inspect state without consuming
// payload and are deliberately absent.
var readerReadOps = map[string]struct {
	class  WireClass
	origin ReadOrigin
}{
	"Uint64":   {WireUvarint, OriginPlain},
	"Int":      {WireUvarint, OriginInt},
	"ArrayLen": {WireUvarint, OriginArrayLen},
	"Bool":     {WireByte, OriginPlain},
	"Float64":  {WireF64, OriginPlain},
	"Borrow":   {WireBytes, OriginPlain},
}

// isCodecMethod reports whether the call is a method on the named
// codec type (Buffer or Reader), matching both the real codec package
// and fixture stand-ins named codec.
func (in *Info) isCodecMethod(call *ast.CallExpr, typeName string) bool {
	fn := in.Callee(call)
	return fn != nil && RecvTypeName(fn) == typeName && pathIs(RecvTypePkgPath(fn), "codec")
}

// BufferWriteOp classifies a call as a codec.Buffer payload write,
// returning its wire class. ok is false for anything else, including
// Buffer management calls (Grow, Reset, Bytes).
func (in *Info) BufferWriteOp(call *ast.CallExpr) (class WireClass, ok bool) {
	class, hit := bufferWriteOps[CalleeName(call)]
	if !hit || !in.isCodecMethod(call, "Buffer") {
		return 0, false
	}
	return class, true
}

// ReaderReadOp classifies a call as a codec.Reader payload read,
// returning its wire class and validation origin. ok is false for
// anything else, including non-consuming Reader calls (Err,
// Remaining, Finish).
func (in *Info) ReaderReadOp(call *ast.CallExpr) (class WireClass, origin ReadOrigin, ok bool) {
	op, hit := readerReadOps[CalleeName(call)]
	if !hit || !in.isCodecMethod(call, "Reader") {
		return 0, OriginPlain, false
	}
	return op.class, op.origin, true
}

// IsReaderCall reports whether the call is any method on codec.Reader
// with the given name (consuming or not).
func (in *Info) IsReaderCall(call *ast.CallExpr, name string) bool {
	return CalleeName(call) == name && in.isCodecMethod(call, "Reader")
}
