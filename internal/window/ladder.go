package window

import "fmt"

// Ladder is the shape of a multi-resolution roll-up plane: Levels
// geometric resolutions where a level-ℓ segment summarizes Fan^ℓ
// consecutive epochs. Level 0 holds one sealed segment per epoch;
// sealing the last epoch of a fan-aligned block enqueues a roll-up
// merge that materializes the block's summary one level up. With the
// default 8×3 ladder a segment covers 1, 8 or 64 epochs — at a 1s
// epoch tick, roughly per-second, coarse-minute and coarse-hour
// resolutions.
type Ladder struct {
	// Fan is the roll-up fan-in: how many level-ℓ segments one
	// level-ℓ+1 segment summarizes. Must be >= 2.
	Fan int
	// Levels is the number of resolutions including level 0. Levels
	// == 1 disables roll-ups entirely (a flat per-epoch ring), which
	// is the baseline the bench suite compares against.
	Levels int
	// Horizon[ℓ] is how many epochs of history level ℓ retains; a
	// segment is evicted once its newest epoch falls more than
	// Horizon[ℓ] epochs behind the live epoch. Nil or short slices
	// are filled with DefaultHorizon(ℓ). Coarser levels retain
	// (geometrically) more history, which is what makes the plane a
	// multi-resolution time-travel store: recent ranges answer at
	// epoch granularity, older ranges only at coarser alignments.
	Horizon []uint64
}

// DefaultLadder is the 1→8→64 shape from the roll-up design note.
func DefaultLadder() Ladder { return Ladder{Fan: 8, Levels: 3} }

// span returns the number of epochs one level-ℓ segment covers.
func (l Ladder) span(level int) uint64 {
	s := uint64(1)
	for i := 0; i < level; i++ {
		s *= uint64(l.Fan)
	}
	return s
}

// DefaultHorizon is the retention applied when Horizon does not name
// a level: each level keeps 4·Fan of its own segments' worth of
// epochs, so roll-up sources always outlive the merge that consumes
// them and covers can mix a level with its neighbours near the edges.
func (l Ladder) DefaultHorizon(level int) uint64 {
	return 4 * uint64(l.Fan) * l.span(level)
}

// normalize validates the shape and fills unset horizons.
func (l Ladder) normalize() (Ladder, error) {
	if l.Fan == 0 && l.Levels == 0 && l.Horizon == nil {
		l = DefaultLadder()
	}
	if l.Levels < 1 {
		return l, fmt.Errorf("window: ladder needs >= 1 level, got %d", l.Levels)
	}
	if l.Fan < 2 && l.Levels > 1 {
		return l, fmt.Errorf("window: ladder fan must be >= 2, got %d", l.Fan)
	}
	if l.Fan < 1 {
		l.Fan = 1
	}
	h := make([]uint64, l.Levels)
	for i := range h {
		if i < len(l.Horizon) && l.Horizon[i] > 0 {
			h[i] = l.Horizon[i]
		} else {
			h[i] = l.DefaultHorizon(i)
		}
		if span := l.span(i); h[i] < span {
			h[i] = span // a level must be able to hold one of its own segments
		}
	}
	l.Horizon = h
	return l, nil
}

// Segment is one sealed, immutable piece of the plane: the encoded
// summary of epochs [From, To] at the given level. Frame bytes are
// never mutated after sealing, so segments are shared freely between
// the store, the planner, in-flight roll-ups and the query cache.
type Segment struct {
	Level    int
	From, To uint64 // inclusive epoch range, To-From+1 == span(Level)
	N        uint64 // total summarized weight
	Frame    []byte // registry-encoded snapshot
}

// segStore holds the sealed segments of one ladder, keyed by (level,
// start epoch). It is a plain data structure: the Plane serializes
// access under its own mutex.
type segStore struct {
	ladder Ladder
	// levels[ℓ] maps a segment's From epoch to the segment.
	levels []map[uint64]*Segment
}

func newSegStore(l Ladder) *segStore {
	st := &segStore{
		ladder: l,
		levels: make([]map[uint64]*Segment, l.Levels),
	}
	for i := range st.levels {
		st.levels[i] = map[uint64]*Segment{}
	}
	return st
}

// put seals one segment. Re-sealing an existing (level, from) pair is
// rejected: segments are immutable and each epoch is counted exactly
// once per level, so a duplicate seal is a roll-up accounting bug.
func (st *segStore) put(seg *Segment) error {
	span := st.ladder.span(seg.Level)
	if seg.To != seg.From+span-1 || (seg.From-1)%span != 0 {
		return fmt.Errorf("window: level-%d segment [%d,%d] is not span-%d aligned", seg.Level, seg.From, seg.To, span)
	}
	if _, dup := st.levels[seg.Level][seg.From]; dup {
		return fmt.Errorf("window: level-%d segment starting at epoch %d sealed twice", seg.Level, seg.From)
	}
	st.levels[seg.Level][seg.From] = seg
	return nil
}

// get returns the sealed segment at (level, from), if present.
func (st *segStore) get(level int, from uint64) (*Segment, bool) {
	seg, ok := st.levels[level][from]
	return seg, ok
}

// evict drops every segment whose newest epoch has fallen more than
// its level's horizon behind the live epoch.
func (st *segStore) evict(now uint64) {
	for level, segs := range st.levels {
		h := st.ladder.Horizon[level]
		if now <= h {
			continue
		}
		limit := now - h // keep segments with To >= limit
		for from, seg := range segs {
			if seg.To < limit {
				delete(segs, from)
			}
		}
	}
}

// retained reports whether the level-ℓ block ending at epoch blockTo
// is still within the level's retention horizon at live epoch now. A
// block inside the horizon that has no sealed segment was empty (its
// epochs summarized nothing), which the planner may skip; outside the
// horizon, absence means evicted and the cover fails.
func (st *segStore) retained(level int, blockTo, now uint64) bool {
	h := st.ladder.Horizon[level]
	return now <= h || blockTo >= now-h
}

// count returns the number of sealed segments per level.
func (st *segStore) count() []int {
	out := make([]int, len(st.levels))
	for i, m := range st.levels {
		out[i] = len(m)
	}
	return out
}
