// Multi-resolution roll-up plane. A Plane owns a live epoch summary
// and a Ladder of sealed, encoded segments: Advance seals the live
// epoch into a level-0 segment and — whenever that completes a
// fan-aligned block — enqueues background roll-up merges that
// materialize the block one level up. Queries over an arbitrary
// sealed epoch range are planned as the minimal segment cover
// (O(log n) pieces) and reduced through mergetree.Parallel, so "p99
// over the last hour" at a 1s tick is a handful of frozen-segment
// merges instead of ~3600 per-epoch ones. Correctness is pure
// PODS'12 mergeability: every segment carries the single-summary
// guarantee over its epochs' stream, for any merge order and any
// roll-up topology.
package window

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/mergetree"
)

// Ops is the family-erased summary surface the plane needs; the
// registry's *Entry satisfies it, so a server (or test) hands a
// catalog entry straight to NewPlane and the whole plane is
// registry-driven — every registered family gets multi-resolution
// windows with zero per-family code. Declaring the interface here
// keeps window free of a registry dependency.
type Ops interface {
	Name() string
	New() any
	Encode(v any) ([]byte, error)
	DecodeInto(dst any, frame []byte) error
	Merge(dst, src any) error
	N(v any) uint64
	GetScratch() any
	PutScratch(v any)
}

// PlaneStats is a point-in-time snapshot of a plane's state.
type PlaneStats struct {
	Epoch       uint64 // live epoch sequence number
	Segments    []int  // sealed segments per level
	Pending     int    // queued roll-up jobs
	Rollups     uint64 // roll-up merges completed
	RollupErrs  uint64 // roll-up merges dropped on error
	CacheHits   uint64
	CacheMisses uint64
}

// rollupJob asks the background worker to materialize the level
// segment covering [from, from+span-1] from its level-1 children.
type rollupJob struct {
	level int
	from  uint64
}

// queryKey identifies one planned cover in the result cache.
type queryKey struct{ from, to uint64 }

// queryEnt is one cached query result. Fully-sealed ranges are
// immutable — segments never change after sealing, so the merged
// frame stays the correct answer for its range as long as it is
// cached. Ranges that include the live epoch are additionally pinned
// to the live-mutation version, mirroring the server's PULL snapshot
// cache: any Absorb/Update/Advance bump invalidates them.
type queryEnt struct {
	live     uint64 // liveVer at compute time (live ranges only)
	hasLive  bool
	frame    []byte
	n        uint64
	segments int
}

// maxCachedQueries bounds the cover cache; on overflow the cache is
// reset wholesale (entries are cheap to recompute and the reset keeps
// the structure allocation-free on the steady path).
const maxCachedQueries = 128

// Plane is a multi-resolution windowed summary. It is safe for
// concurrent use: Absorb/Update/Advance/Query may race each other and
// the background roll-up worker.
type Plane struct {
	ops    Ops
	ladder Ladder
	mk     func(epoch uint64) any // optional live-epoch constructor

	mu      sync.Mutex
	cond    *sync.Cond // signals the worker and Quiesce; set once at construction
	store   *segStore
	cur     any    // live epoch summary; nil until first Absorb/Update
	now     uint64 // live epoch sequence number, starts at 1
	liveVer uint64 // bumps on every live-epoch mutation and Advance
	pending []rollupJob
	inRoll  bool // worker is executing a job
	closed  bool

	cache    map[queryKey]queryEnt
	cacheOff bool
	maxLevel int // coarsest level the planner may use

	rollups    uint64
	rollupErrs uint64
	lastErr    error
	hits       uint64
	misses     uint64
}

// NewPlane returns a running plane over the given summary surface and
// ladder shape. mk constructs the live epoch's summary on first
// update and may be nil when every summary arrives through Absorb
// (the server's shape: the first absorbed summary becomes the live
// accumulator). The zero Ladder selects DefaultLadder. The background
// roll-up worker starts immediately; Close stops it.
func NewPlane(ops Ops, mk func(epoch uint64) any, l Ladder) (*Plane, error) {
	nl, err := l.normalize()
	if err != nil {
		return nil, err
	}
	p := &Plane{
		ops:      ops,
		ladder:   nl,
		mk:       mk,
		store:    newSegStore(nl),
		now:      1,
		cache:    map[queryKey]queryEnt{},
		maxLevel: nl.Levels - 1,
	}
	p.cond = sync.NewCond(&p.mu)
	go p.rollWorker()
	return p, nil
}

// Ladder returns the normalized ladder shape.
func (p *Plane) Ladder() Ladder { return p.ladder }

// StartAt aligns a fresh plane's live epoch with an external epoch
// sequence: a plane bound to a slot after its server has already
// turned over epochs starts at the server's current epoch instead of
// 1, so every slot on a node — and every node in a cluster advancing
// on the same tick — shares one epoch timeline. It is a no-op unless
// the plane is still pristine (no absorbs, no advances, no sealed
// segments) and epoch moves the sequence forward.
func (p *Plane) StartAt(epoch uint64) {
	p.mu.Lock()
	if p.cur == nil && p.liveVer == 0 && epoch > p.now {
		p.now = epoch
	}
	p.mu.Unlock()
}

// SetQueryCache enables or disables the cover-result cache (enabled
// by default); benchmarks disable it to measure the plan+reduce path.
func (p *Plane) SetQueryCache(on bool) {
	p.mu.Lock()
	p.cacheOff = !on
	if !on {
		clear(p.cache)
	}
	p.mu.Unlock()
}

// SetMaxLevel caps the coarsest level the planner may use; -1 resets
// to the ladder's top. Capping at 0 forces flat per-epoch covers —
// the roll-ups-off baseline the bench suite measures against.
func (p *Plane) SetMaxLevel(level int) {
	p.mu.Lock()
	if level < 0 || level >= p.ladder.Levels {
		level = p.ladder.Levels - 1
	}
	p.maxLevel = level
	clear(p.cache)
	p.mu.Unlock()
}

// Epoch returns the live epoch sequence number.
func (p *Plane) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.now
}

// Update applies f to the live epoch's summary under the plane lock,
// constructing it with mk on first use. The callback must only
// mutate the summary — it runs inside the critical section.
func (p *Plane) Update(f func(cur any)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cur == nil {
		if p.mk == nil {
			panic("window: Plane.Update without a live-epoch constructor; use Absorb")
		}
		p.cur = p.mk(p.now)
	}
	f(p.cur)
	p.liveVer++
}

// Absorb folds an already-built summary into the live epoch: the
// first summary becomes the live accumulator (ownership transfers to
// the plane and consumed is true), later ones are merged in and may
// be recycled by the caller. This merge runs under the window lock by
// design — it is the documented-legal critical-section shape (see the
// lockflow fixture): merging is pure in-memory folding with no
// decode, I/O or blocking, exactly like the ingest front's
// lane-absorb path.
func (p *Plane) Absorb(src any) (consumed bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cur == nil {
		p.cur = src
		p.liveVer++
		return true, nil
	}
	if err := p.ops.Merge(p.cur, src); err != nil {
		p.liveVer++ // a failed merge may have partially mutated the live summary
		return false, err
	}
	p.liveVer++
	return false, nil
}

// AbsorbClone folds src into the live epoch without ever taking
// ownership: the caller keeps src (and may keep mutating or recycle
// it). When the live accumulator does not exist yet, src is cloned by
// a codec roundtrip — outside the lock, per the lock discipline's
// no-decode-under-mutex rule — and the clone adopts src's shape the
// way the server's slots adopt their first push's. The cold path runs
// once per plane lifetime plus once per epoch turn-over; every other
// call is Absorb's plain merge-under-the-window-lock.
func (p *Plane) AbsorbClone(src any) error {
	p.mu.Lock()
	if p.cur != nil {
		err := p.ops.Merge(p.cur, src)
		p.liveVer++
		p.mu.Unlock()
		return err
	}
	p.mu.Unlock()
	frame, err := p.ops.Encode(src)
	if err != nil {
		return err
	}
	c := p.ops.GetScratch()
	if err := p.ops.DecodeInto(c, frame); err != nil {
		p.ops.PutScratch(c)
		return err
	}
	// Another absorber (or an Advance) may have raced the clone; Absorb
	// re-checks under the lock and either installs the clone or merges
	// it into whoever won.
	consumed, err := p.Absorb(c)
	if !consumed {
		p.ops.PutScratch(c)
	}
	return err
}

// Advance seals the live epoch as a level-0 segment (empty epochs
// seal nothing), enqueues the roll-up merges the seal completes, and
// opens the next epoch. Encoding the sealed summary happens under the
// plane lock — the same deliberate choice as the server's snapshot
// cache: encode writes to a pooled in-memory buffer and keeps the
// seal atomic with the epoch turn-over.
func (p *Plane) Advance() error {
	p.mu.Lock()
	sealed := p.now
	var sealErr error
	if p.cur != nil && p.ops.N(p.cur) > 0 {
		frame, err := p.ops.Encode(p.cur)
		if err != nil {
			sealErr = fmt.Errorf("window: sealing epoch %d: %w", sealed, err)
		} else {
			seg := &Segment{Level: 0, From: sealed, To: sealed, N: p.ops.N(p.cur), Frame: frame}
			if err := p.store.put(seg); err != nil {
				sealErr = err
			}
		}
	}
	// The live summary is recycled through the registry pool: the
	// sealed frame fully captures it, and scratch targets are fully
	// replaced by DecodeInto.
	if p.cur != nil {
		p.ops.PutScratch(p.cur)
		p.cur = nil
	}
	p.now++
	p.liveVer++
	// A seal that completes a fan-aligned block enqueues its roll-up;
	// jobs are queued finest-first so a cascading boundary (epoch 64
	// completing both an 8-block and a 64-block) builds level 1 before
	// level 2 consumes it.
	if sealErr == nil {
		for level := 1; level <= p.maxRollLevel(); level++ {
			span := p.ladder.span(level)
			if sealed%span == 0 {
				p.pending = append(p.pending, rollupJob{level: level, from: sealed - span + 1})
			}
		}
	}
	p.store.evict(p.now)
	if len(p.cache) > 0 {
		// Live-range entries are now stale; sealed-range entries stay
		// correct but cheap to drop with them.
		p.dropLiveEntries()
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	return sealErr
}

func (p *Plane) maxRollLevel() int { return p.ladder.Levels - 1 }

// dropLiveEntries removes cache entries pinned to the live epoch.
func (p *Plane) dropLiveEntries() {
	for k, e := range p.cache {
		if e.hasLive {
			delete(p.cache, k)
		}
	}
}

// rollWorker is the background roll-up goroutine: it pops queued jobs
// and materializes coarse segments, doing all decode/merge/encode
// work outside the plane lock so sealing and queries never wait on a
// roll-up.
func (p *Plane) rollWorker() {
	p.mu.Lock()
	for {
		for len(p.pending) == 0 && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		job := p.pending[0]
		p.pending = p.pending[1:]
		p.inRoll = true
		// Gather the block's sealed children while still locked;
		// frames are immutable so the refs stay valid unlocked.
		childSpan := p.ladder.span(job.level - 1)
		children := make([]*Segment, 0, p.ladder.Fan)
		for i := 0; i < p.ladder.Fan; i++ {
			if seg, ok := p.store.get(job.level-1, job.from+uint64(i)*childSpan); ok {
				children = append(children, seg)
			}
		}
		p.mu.Unlock()

		seg, err := p.mergeSegments(children, job.level, job.from, job.from+p.ladder.span(job.level)-1)

		p.mu.Lock()
		switch {
		case err != nil:
			p.rollupErrs++
			p.lastErr = err
		case seg != nil:
			if putErr := p.store.put(seg); putErr != nil {
				p.rollupErrs++
				p.lastErr = putErr
			} else {
				p.rollups++
			}
		}
		p.inRoll = false
		p.cond.Broadcast()
	}
}

// mergeSegments decodes the given sealed segments into pooled scratch
// summaries, reduces them in ascending epoch order, and re-encodes
// the result as one segment at the target level. A nil segment (no
// children) means the whole block was empty. Called with no lock
// held.
func (p *Plane) mergeSegments(segs []*Segment, level int, from, to uint64) (*Segment, error) {
	if len(segs) == 0 {
		return nil, nil
	}
	acc, n, err := p.reduce(segs)
	if err != nil {
		return nil, err
	}
	frame, err := p.ops.Encode(acc)
	p.ops.PutScratch(acc)
	if err != nil {
		return nil, fmt.Errorf("window: encoding level-%d segment [%d, %d]: %w", level, from, to, err)
	}
	return &Segment{Level: level, From: from, To: to, N: n, Frame: frame}, nil
}

// reduce decodes segs into pooled scratch summaries and folds them
// through mergetree.Parallel's pairing reduction — inline for
// fan-sized roll-up blocks, concurrent for the long flat covers where
// the parallel tree pays. The caller owns the returned summary and
// must PutScratch it; the intermediate scratch summaries are recycled
// here.
func (p *Plane) reduce(segs []*Segment) (any, uint64, error) {
	var n uint64
	parts := make([]any, len(segs))
	for i, seg := range segs {
		parts[i] = p.ops.GetScratch()
		if err := p.ops.DecodeInto(parts[i], seg.Frame); err != nil {
			for _, s := range parts[:i+1] {
				p.ops.PutScratch(s)
			}
			return nil, 0, fmt.Errorf("window: decoding level-%d segment [%d, %d]: %w", seg.Level, seg.From, seg.To, err)
		}
		n += seg.N
	}
	if len(parts) == 1 {
		return parts[0], n, nil
	}
	acc, err := mergetree.Parallel(parts, p.workers(len(parts)), p.ops.Merge)
	if err != nil {
		// Parallel may leave merged-into summaries in any state; every
		// part except the would-be result is still safely recyclable
		// because DecodeInto fully replaces scratch contents.
		for _, s := range parts {
			p.ops.PutScratch(s)
		}
		return nil, 0, err
	}
	for _, s := range parts {
		if s != acc {
			p.ops.PutScratch(s)
		}
	}
	return acc, n, nil
}

// workers picks the mergetree.Parallel worker count: inline for
// fan-sized roll-ups, up to GOMAXPROCS for long covers.
func (p *Plane) workers(parts int) int {
	w := runtime.GOMAXPROCS(0)
	if parts <= p.ladder.Fan || w < 1 {
		return 1
	}
	if w > 8 {
		w = 8
	}
	return w
}

// Quiesce blocks until every queued roll-up has completed. Tests and
// benchmarks use it to observe a deterministic ladder; production
// callers never need it (queries are correct against whatever is
// sealed, falling back to finer segments while a roll-up is in
// flight).
func (p *Plane) Quiesce() {
	p.mu.Lock()
	for (len(p.pending) > 0 || p.inRoll) && !p.closed {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Close stops the background worker. Pending roll-ups are abandoned;
// sealed segments remain queryable.
func (p *Plane) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Stats snapshots the plane's counters.
func (p *Plane) Stats() PlaneStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PlaneStats{
		Epoch:       p.now,
		Segments:    p.store.count(),
		Pending:     len(p.pending),
		Rollups:     p.rollups,
		RollupErrs:  p.rollupErrs,
		CacheHits:   p.hits,
		CacheMisses: p.misses,
	}
}

// Cover plans the minimal sealed-segment cover of [from, to] without
// reducing it; tests and the bench suite use it to count pieces.
func (p *Plane) Cover(from, to uint64) (Cover, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	from, to, includeLive, err := p.resolveRange(from, to)
	if err != nil {
		return Cover{}, err
	}
	if includeLive && from == p.now {
		return Cover{From: from, To: to}, nil
	}
	sealedTo := to
	if includeLive {
		sealedTo = p.now - 1
	}
	return p.store.plan(from, sealedTo, p.now, p.maxLevel)
}

// resolveRange validates and normalizes a query range under p.mu:
// from == 0 selects the oldest retained epoch, to == 0 the live
// epoch; a range ending at p.now includes the live summary.
func (p *Plane) resolveRange(from, to uint64) (rfrom, rto uint64, includeLive bool, err error) {
	if to == 0 || to > p.now {
		to = p.now
	}
	if from == 0 {
		from = p.store.oldestRetained(p.now)
	}
	if from > to {
		return 0, 0, false, fmt.Errorf("window: bad epoch range [%d, %d]", from, to)
	}
	return from, to, to == p.now, nil
}

// QueryEncoded plans, reduces and encodes the summary of epochs
// [from, to] (both inclusive; 0 means "oldest retained" / "live").
// The returned frame is immutable and may be shared; repeated covers
// are served from the epoch-versioned result cache. The live epoch,
// when included, is snapshotted under the plane lock via the registry
// Encode path — identical bound-wise to merging it directly, and it
// keeps every decode outside the critical section.
func (p *Plane) QueryEncoded(from, to uint64) ([]byte, error) {
	p.mu.Lock()
	rfrom, rto, includeLive, err := p.resolveRange(from, to)
	if err != nil {
		p.mu.Unlock()
		return nil, err
	}
	key := queryKey{rfrom, rto}
	now := p.now
	liveVer := p.liveVer
	if !p.cacheOff {
		if e, ok := p.cache[key]; ok && (!e.hasLive || e.live == liveVer) {
			p.hits++
			p.mu.Unlock()
			return e.frame, nil
		}
	}
	p.misses++
	sealedTo := rto
	if includeLive {
		sealedTo = p.now - 1
	}
	var cov Cover
	if !includeLive || rfrom < p.now {
		cov, err = p.store.plan(rfrom, sealedTo, p.now, p.maxLevel)
		if err != nil {
			p.mu.Unlock()
			return nil, err
		}
	}
	var liveFrame []byte
	var liveN uint64
	if includeLive && p.cur != nil && p.ops.N(p.cur) > 0 {
		liveFrame, err = p.ops.Encode(p.cur)
		if err != nil {
			p.mu.Unlock()
			return nil, fmt.Errorf("window: snapshotting live epoch: %w", err)
		}
		liveN = p.ops.N(p.cur)
	}
	p.mu.Unlock()

	// Reduce outside the lock: decode every cover frame (and the live
	// snapshot) into pooled scratch and fold.
	pieces := cov.Segments
	if liveFrame != nil {
		pieces = append(append(make([]*Segment, 0, len(cov.Segments)+1), cov.Segments...),
			&Segment{Level: 0, From: now, To: now, N: liveN, Frame: liveFrame})
	}
	if len(pieces) == 0 {
		return nil, fmt.Errorf("window: nothing summarized in [%d, %d]", rfrom, rto)
	}
	var frame []byte
	var n uint64
	if len(pieces) == 1 {
		// A single piece is already the answer; its frame is immutable
		// and shared as-is.
		frame, n = pieces[0].Frame, pieces[0].N
	} else {
		acc, rn, err := p.reduce(pieces)
		if err != nil {
			return nil, err
		}
		frame, err = p.ops.Encode(acc)
		p.ops.PutScratch(acc)
		if err != nil {
			return nil, fmt.Errorf("window: encoding query result: %w", err)
		}
		n = rn
	}

	p.mu.Lock()
	if !p.cacheOff && (!includeLive || p.liveVer == liveVer) {
		if len(p.cache) >= maxCachedQueries {
			clear(p.cache)
		}
		p.cache[key] = queryEnt{live: liveVer, hasLive: includeLive, frame: frame, n: n, segments: len(pieces)}
	}
	p.mu.Unlock()
	return frame, nil
}

// Query reduces the cover of [from, to] and returns a freshly decoded
// summary the caller owns.
func (p *Plane) Query(from, to uint64) (any, error) {
	frame, err := p.QueryEncoded(from, to)
	if err != nil {
		return nil, err
	}
	v := p.ops.New()
	if err := p.ops.DecodeInto(v, frame); err != nil {
		return nil, err
	}
	return v, nil
}
