// Package window turns any mergeable summary into a sliding-window
// summary over tumbling epochs: updates go to the current epoch's
// summary, the ring retains the most recent E epochs, and a window
// query merges the relevant epochs on demand. Correctness is pure
// mergeability (the PODS'12 property): the merged epoch summaries
// carry the same guarantee as one summary built over the window's
// stream — an extension the paper's framework makes one page of code.
package window

import (
	"fmt"
)

// Windowed maintains a ring of per-epoch summaries of type S. It is
// not safe for concurrent use; wrap with package shard for that.
type Windowed[S any] struct {
	epochs []S
	seq    []uint64 // epoch sequence numbers, 0 = never used
	head   int      // index of the current epoch
	now    uint64   // current epoch sequence number (starts at 1)
	mk     func(epoch uint64) S

	// Query memoizes the merge of the window's sealed epochs (every
	// covered epoch except the live one, which callers mutate through
	// Current between queries). Sealed epochs are frozen, so the tail
	// stays valid until the epoch advances or the window length
	// changes — a repeated query re-merges one summary, not the whole
	// window.
	tail      S
	tailLen   int    // window length the tail was computed for
	tailEpoch uint64 // epoch the tail was computed at
	tailOK    bool   // tail covers >= 1 sealed epoch
	tailSet   bool   // tail slot holds a summary (recyclable)
	recycle   func(S)
}

// New returns a Windowed retaining the most recent capacity epochs;
// mk builds an empty summary for a given epoch sequence number.
func New[S any](capacity int, mk func(epoch uint64) S) *Windowed[S] {
	if capacity < 1 {
		panic("window: capacity must be >= 1")
	}
	w := &Windowed[S]{
		epochs: make([]S, capacity),
		seq:    make([]uint64, capacity),
		mk:     mk,
		now:    1,
	}
	w.epochs[0] = mk(1)
	w.seq[0] = 1
	return w
}

// Capacity returns the number of retained epochs.
func (w *Windowed[S]) Capacity() int { return len(w.epochs) }

// Epoch returns the current epoch sequence number (starting at 1).
func (w *Windowed[S]) Epoch() uint64 { return w.now }

// Current returns the summary receiving updates.
func (w *Windowed[S]) Current() S { return w.epochs[w.head] }

// Advance closes the current epoch and opens a fresh one, discarding
// the oldest epoch once the ring is full.
func (w *Windowed[S]) Advance() {
	w.now++
	w.head = (w.head + 1) % len(w.epochs)
	w.epochs[w.head] = w.mk(w.now)
	w.seq[w.head] = w.now
}

// SetRecycler installs a hook that receives query-tail summaries the
// window no longer needs (an epoch advance or a different window
// length invalidates the memoized tail). Callers running over the
// registry catalog typically pass the family entry's PutScratch so
// invalidated tails return to the family's sync.Pool instead of the
// garbage collector.
func (w *Windowed[S]) SetRecycler(put func(S)) { w.recycle = put }

// dropTail invalidates the memoized sealed-epoch merge, recycling the
// summary it holds.
func (w *Windowed[S]) dropTail() {
	if w.tailSet && w.recycle != nil {
		w.recycle(w.tail)
	}
	var zero S
	w.tail = zero
	w.tailOK = false
	w.tailSet = false
}

// Query merges the summaries of the most recent `last` epochs
// (including the current one) into a fresh summary: clone copies an
// epoch summary, merge folds src into dst (and must not mutate src).
// last is clamped to the retained range.
//
// The merge of the sealed epochs is memoized per (last, epoch): while
// no epoch advances, a repeated query clones the memoized tail and
// folds in only the live epoch — one clone and one merge instead of
// re-merging the whole window — so a dashboard polling the same
// window between ticks no longer pays O(window) merges per refresh.
func (w *Windowed[S]) Query(last int, clone func(S) S, merge func(dst, src S) error) (S, error) {
	var zero S
	if last < 1 {
		last = 1
	}
	if last > len(w.epochs) {
		last = len(w.epochs)
	}
	if w.tailLen != last || w.tailEpoch != w.now || !w.tailSet {
		// Rebuild the sealed tail: every in-range epoch except the
		// live one, oldest first. Sealed epochs never change, so this
		// runs once per (advance, window length), not once per query.
		w.dropTail()
		for i := last - 1; i >= 1; i-- {
			idx := (w.head - i + len(w.epochs)) % len(w.epochs)
			if w.seq[idx] == 0 || w.seq[idx] >= w.now || w.seq[idx]+uint64(last) <= w.now {
				continue // never used, live, or outside the window
			}
			if !w.tailSet {
				w.tail = clone(w.epochs[idx])
				w.tailSet = true
				w.tailOK = true
				continue
			}
			if err := merge(w.tail, w.epochs[idx]); err != nil {
				w.dropTail()
				return zero, fmt.Errorf("window: merging epoch %d: %w", w.seq[idx], err)
			}
		}
		w.tailLen = last
		w.tailEpoch = w.now
		if !w.tailSet {
			// No sealed epochs in range; memoize the emptiness.
			w.tailSet = true
			w.tailOK = false
		}
	}
	if !w.tailOK {
		// Only the live epoch is in range.
		return clone(w.epochs[w.head]), nil
	}
	acc := clone(w.tail)
	if err := merge(acc, w.epochs[w.head]); err != nil {
		return zero, fmt.Errorf("window: merging epoch %d: %w", w.now, err)
	}
	return acc, nil
}

// Encoder is the slice of the registry catalog's entry the encoded
// query path needs; *registry.Entry satisfies it. Declaring the
// interface here keeps window free of a registry dependency.
type Encoder interface {
	Encode(v any) ([]byte, error)
}

// QueryEncoded merges the most recent `last` epochs (as Query) and
// returns the result as a self-describing wire frame via enc —
// typically the family's *registry.Entry — so a windowed summary can
// be shipped to an aggregator without the caller touching the codec.
func (w *Windowed[S]) QueryEncoded(enc Encoder, last int, clone func(S) S, merge func(dst, src S) error) ([]byte, error) {
	acc, err := w.Query(last, clone, merge)
	if err != nil {
		return nil, err
	}
	data, err := enc.Encode(acc)
	if err != nil {
		return nil, fmt.Errorf("window: encoding query: %w", err)
	}
	return data, nil
}

// Epochs returns the retained (sequence, summary) pairs from newest to
// oldest; used for inspection and tests.
func (w *Windowed[S]) Epochs() []uint64 {
	var out []uint64
	for i := 0; i < len(w.epochs); i++ {
		idx := (w.head - i + len(w.epochs)) % len(w.epochs)
		if w.seq[idx] != 0 {
			out = append(out, w.seq[idx])
		}
	}
	return out
}
