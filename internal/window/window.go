// Package window turns any mergeable summary into a sliding-window
// summary over tumbling epochs: updates go to the current epoch's
// summary, the ring retains the most recent E epochs, and a window
// query merges the relevant epochs on demand. Correctness is pure
// mergeability (the PODS'12 property): the merged epoch summaries
// carry the same guarantee as one summary built over the window's
// stream — an extension the paper's framework makes one page of code.
package window

import (
	"fmt"
)

// Windowed maintains a ring of per-epoch summaries of type S. It is
// not safe for concurrent use; wrap with package shard for that.
type Windowed[S any] struct {
	epochs []S
	seq    []uint64 // epoch sequence numbers, 0 = never used
	head   int      // index of the current epoch
	now    uint64   // current epoch sequence number (starts at 1)
	mk     func(epoch uint64) S
}

// New returns a Windowed retaining the most recent capacity epochs;
// mk builds an empty summary for a given epoch sequence number.
func New[S any](capacity int, mk func(epoch uint64) S) *Windowed[S] {
	if capacity < 1 {
		panic("window: capacity must be >= 1")
	}
	w := &Windowed[S]{
		epochs: make([]S, capacity),
		seq:    make([]uint64, capacity),
		mk:     mk,
		now:    1,
	}
	w.epochs[0] = mk(1)
	w.seq[0] = 1
	return w
}

// Capacity returns the number of retained epochs.
func (w *Windowed[S]) Capacity() int { return len(w.epochs) }

// Epoch returns the current epoch sequence number (starting at 1).
func (w *Windowed[S]) Epoch() uint64 { return w.now }

// Current returns the summary receiving updates.
func (w *Windowed[S]) Current() S { return w.epochs[w.head] }

// Advance closes the current epoch and opens a fresh one, discarding
// the oldest epoch once the ring is full.
func (w *Windowed[S]) Advance() {
	w.now++
	w.head = (w.head + 1) % len(w.epochs)
	w.epochs[w.head] = w.mk(w.now)
	w.seq[w.head] = w.now
}

// Query merges the summaries of the most recent `last` epochs
// (including the current one) into a fresh summary: clone copies an
// epoch summary, merge folds src into dst. last is clamped to the
// retained range.
func (w *Windowed[S]) Query(last int, clone func(S) S, merge func(dst, src S) error) (S, error) {
	var zero S
	if last < 1 {
		last = 1
	}
	if last > len(w.epochs) {
		last = len(w.epochs)
	}
	var acc S
	started := false
	for i := 0; i < last; i++ {
		idx := (w.head - i + len(w.epochs)) % len(w.epochs)
		if w.seq[idx] == 0 || w.seq[idx] > w.now || w.seq[idx]+uint64(last) <= w.now {
			continue // never used, or outside the requested window
		}
		if !started {
			acc = clone(w.epochs[idx])
			started = true
			continue
		}
		if err := merge(acc, clone(w.epochs[idx])); err != nil {
			return zero, fmt.Errorf("window: merging epoch %d: %w", w.seq[idx], err)
		}
	}
	if !started {
		return zero, fmt.Errorf("window: no epochs in range")
	}
	return acc, nil
}

// Encoder is the slice of the registry catalog's entry the encoded
// query path needs; *registry.Entry satisfies it. Declaring the
// interface here keeps window free of a registry dependency.
type Encoder interface {
	Encode(v any) ([]byte, error)
}

// QueryEncoded merges the most recent `last` epochs (as Query) and
// returns the result as a self-describing wire frame via enc —
// typically the family's *registry.Entry — so a windowed summary can
// be shipped to an aggregator without the caller touching the codec.
func (w *Windowed[S]) QueryEncoded(enc Encoder, last int, clone func(S) S, merge func(dst, src S) error) ([]byte, error) {
	acc, err := w.Query(last, clone, merge)
	if err != nil {
		return nil, err
	}
	data, err := enc.Encode(acc)
	if err != nil {
		return nil, fmt.Errorf("window: encoding query: %w", err)
	}
	return data, nil
}

// Epochs returns the retained (sequence, summary) pairs from newest to
// oldest; used for inspection and tests.
func (w *Windowed[S]) Epochs() []uint64 {
	var out []uint64
	for i := 0; i < len(w.epochs); i++ {
		idx := (w.head - i + len(w.epochs)) % len(w.epochs)
		if w.seq[idx] != 0 {
			out = append(out, w.seq[idx])
		}
	}
	return out
}
