package window

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/mg"
	"repro/internal/randquant"
)

func newMG(uint64) *mg.Summary { return mg.New(32) }

func cloneMG(s *mg.Summary) *mg.Summary { return s.Clone() }

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, newMG)
}

func TestEpochRotation(t *testing.T) {
	w := New(3, newMG)
	if w.Epoch() != 1 || w.Capacity() != 3 {
		t.Fatalf("epoch=%d capacity=%d", w.Epoch(), w.Capacity())
	}
	for i := 0; i < 5; i++ {
		w.Advance()
	}
	if w.Epoch() != 6 {
		t.Fatalf("epoch = %d", w.Epoch())
	}
	got := w.Epochs()
	want := []uint64{6, 5, 4}
	if len(got) != len(want) {
		t.Fatalf("Epochs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Epochs = %v, want %v", got, want)
		}
	}
}

// The core property: a window query over the last w epochs answers
// with the single-summary guarantee over exactly those epochs' items.
func TestWindowQueryMatchesWindowStream(t *testing.T) {
	const epochs = 10
	const perEpoch = 5000
	const retain = 4
	w := New(retain, newMG)
	streams := make([][]core.Item, 0, epochs)
	for e := 0; e < epochs; e++ {
		if e > 0 {
			w.Advance()
		}
		stream := gen.NewZipf(300, 1.3, uint64(e)+1).Stream(perEpoch)
		streams = append(streams, stream)
		cur := w.Current()
		for _, x := range stream {
			cur.Update(x, 1)
		}
	}
	for _, last := range []int{1, 2, 4} {
		q, err := w.Query(last, cloneMG, (*mg.Summary).Merge)
		if err != nil {
			t.Fatal(err)
		}
		if q.N() != uint64(last*perEpoch) {
			t.Fatalf("last=%d: N=%d, want %d", last, q.N(), last*perEpoch)
		}
		truth := exact.NewFreqTable()
		for _, s := range streams[epochs-last:] {
			for _, x := range s {
				truth.Add(x, 1)
			}
		}
		bound := core.MGBound(q.N(), 32)
		if q.ErrorBound() > bound {
			t.Errorf("last=%d: bound %d > %d", last, q.ErrorBound(), bound)
		}
		for _, c := range truth.Counters()[:5] {
			if e := q.Estimate(c.Item); !e.Contains(c.Count) {
				t.Errorf("last=%d: interval %v misses %d for item %d", last, e, c.Count, c.Item)
			}
		}
	}
}

// Querying must not disturb the retained epochs (clone semantics).
func TestQueryIsNonDestructive(t *testing.T) {
	w := New(3, newMG)
	w.Current().Update(1, 5)
	w.Advance()
	w.Current().Update(2, 7)
	before := w.Current().N()
	if _, err := w.Query(2, cloneMG, (*mg.Summary).Merge); err != nil {
		t.Fatal(err)
	}
	if w.Current().N() != before {
		t.Fatal("query modified the current epoch")
	}
	q2, err := w.Query(2, cloneMG, (*mg.Summary).Merge)
	if err != nil {
		t.Fatal(err)
	}
	if q2.N() != 12 {
		t.Fatalf("repeat query N = %d, want 12", q2.N())
	}
}

func TestQueryClamping(t *testing.T) {
	w := New(2, newMG)
	w.Current().Update(1, 3)
	// last larger than capacity and smaller than 1 both clamp.
	for _, last := range []int{-1, 0, 1, 2, 99} {
		q, err := w.Query(last, cloneMG, (*mg.Summary).Merge)
		if err != nil {
			t.Fatalf("last=%d: %v", last, err)
		}
		if q.N() != 3 {
			t.Fatalf("last=%d: N=%d", last, q.N())
		}
	}
}

func TestWindowWithQuantiles(t *testing.T) {
	w := New(4, func(e uint64) *randquant.Summary { return randquant.NewEpsilon(0.02, e) })
	var last2 []float64
	for e := 0; e < 6; e++ {
		if e > 0 {
			w.Advance()
		}
		vals := gen.UniformValues(4000, uint64(e)+10)
		for _, v := range vals {
			w.Current().Update(v)
		}
		if e >= 4 {
			last2 = append(last2, vals...)
		}
	}
	q, err := w.Query(2,
		func(s *randquant.Summary) *randquant.Summary { return s.Clone() },
		(*randquant.Summary).Merge)
	if err != nil {
		t.Fatal(err)
	}
	if q.N() != uint64(len(last2)) {
		t.Fatalf("N = %d, want %d", q.N(), len(last2))
	}
	oracle := exact.QuantilesOf(last2)
	med := q.Quantile(0.5)
	rank := oracle.Rank(med)
	n := uint64(len(last2))
	if rank < n/2-n/25 || rank > n/2+n/25 {
		t.Errorf("median rank %d too far from %d", rank, n/2)
	}
}

// Property: for any sequence of per-epoch weights and any window
// length, the window query's N is exactly the sum of the covered
// epochs' weights.
func TestPropertyWindowWeights(t *testing.T) {
	f := func(weights []uint8, capRaw, lastRaw uint8) bool {
		capacity := int(capRaw%6) + 1
		w := New(capacity, newMG)
		epochWeights := make([]uint64, 0, len(weights)+1)
		for i, wt := range weights {
			if i > 0 {
				w.Advance()
			}
			n := uint64(wt%9) + 1
			w.Current().Update(core.Item(i), n)
			epochWeights = append(epochWeights, n)
		}
		if len(epochWeights) == 0 {
			w.Current().Update(0, 1)
			epochWeights = append(epochWeights, 1)
		}
		last := int(lastRaw%8) + 1
		got, err := w.Query(last, cloneMG, (*mg.Summary).Merge)
		if err != nil {
			return false
		}
		eff := last
		if eff > capacity {
			eff = capacity
		}
		if eff > len(epochWeights) {
			eff = len(epochWeights)
		}
		var want uint64
		for _, n := range epochWeights[len(epochWeights)-eff:] {
			want += n
		}
		return got.N() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
