package window

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mg"
	"repro/internal/registry"
	_ "repro/internal/registry/all"
)

// mustPlane builds a running plane over the named registry family.
func mustPlane(t testing.TB, kind string, l Ladder) (*Plane, *registry.Entry) {
	t.Helper()
	ent, ok := registry.ByName(kind)
	if !ok {
		t.Fatalf("%s not registered", kind)
	}
	p, err := NewPlane(ent, nil, l)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p, ent
}

// sealExampleEpochs absorbs ent.Example(weights[i]) into epoch i+1 and
// advances past it; a zero weight leaves the epoch empty.
func sealExampleEpochs(t testing.TB, p *Plane, ent *registry.Entry, weights []int) {
	t.Helper()
	for _, n := range weights {
		if n > 0 {
			if _, err := p.Absorb(ent.Example(n)); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Advance(); err != nil {
			t.Fatal(err)
		}
	}
}

// exampleN returns the total weight of ent.Example(n). Examples are
// deterministic, so this is the exact expected contribution of an
// epoch seeded with Example(n).
func exampleN(ent *registry.Entry, n int) uint64 {
	return ent.N(ent.Example(n))
}

func TestLadderNormalize(t *testing.T) {
	l, err := Ladder{}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if l.Fan != 8 || l.Levels != 3 || len(l.Horizon) != 3 {
		t.Fatalf("zero ladder normalized to %+v", l)
	}
	if l.Horizon[0] != 32 || l.Horizon[1] != 256 || l.Horizon[2] != 2048 {
		t.Fatalf("default horizons = %v", l.Horizon)
	}
	if _, err := (Ladder{Fan: 1, Levels: 2}).normalize(); err == nil {
		t.Fatal("fan 1 with 2 levels accepted")
	}
	if _, err := (Ladder{Fan: 8, Levels: 0, Horizon: []uint64{1}}).normalize(); err == nil {
		t.Fatal("0 levels accepted")
	}
}

// The roll-up invariant: after quiescing, every fan-aligned completed
// block is sealed at every level, each epoch counted exactly once per
// level — so a cover of [1, 64] is one level-2 segment, not 64.
func TestPlaneRollupLadder(t *testing.T) {
	p, ent := mustPlane(t, "mg", Ladder{Fan: 8, Levels: 3, Horizon: []uint64{1 << 20, 1 << 20, 1 << 20}})
	weights := make([]int, 130)
	for i := range weights {
		weights[i] = i + 1
	}
	sealExampleEpochs(t, p, ent, weights)
	p.Quiesce()

	st := p.Stats()
	if st.Epoch != 131 {
		t.Fatalf("epoch = %d", st.Epoch)
	}
	// 130 level-0 segments, 16 complete 8-blocks, 2 complete 64-blocks.
	want := []int{130, 16, 2}
	for lv, n := range want {
		if st.Segments[lv] != n {
			t.Fatalf("level %d: %d segments, want %d (stats %+v)", lv, st.Segments[lv], n, st)
		}
	}
	if st.RollupErrs != 0 || st.Pending != 0 {
		t.Fatalf("rollup errors/pending: %+v", st)
	}

	cov, err := p.Cover(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(cov.Segments) != 1 || cov.Segments[0].Level != 2 {
		t.Fatalf("cover [1,64] = %d pieces (first level %d), want one level-2 segment",
			len(cov.Segments), cov.Segments[0].Level)
	}
	// [3, 100]: ragged edges decompose into O(log n) pieces, strictly
	// fewer than the 98 per-epoch merges of the flat plan.
	cov, err = p.Cover(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(cov.Segments) >= 30 {
		t.Fatalf("cover [3,100] = %d pieces, want O(log n)", len(cov.Segments))
	}
	var covered uint64
	prev := uint64(2)
	for _, seg := range cov.Segments {
		if seg.From != prev+1 {
			t.Fatalf("cover gap: segment starts at %d after %d", seg.From, prev)
		}
		covered += seg.To - seg.From + 1
		prev = seg.To
	}
	if covered != 98 || prev != 100 {
		t.Fatalf("cover spans %d epochs ending at %d, want 98 ending at 100", covered, prev)
	}
}

// A ladder query must agree exactly (in weight, and for this family
// in bytes) with the flat per-epoch plan over the same range.
func TestPlaneQueryMatchesFlat(t *testing.T) {
	p, ent := mustPlane(t, "countmin", Ladder{Fan: 4, Levels: 3, Horizon: []uint64{1 << 20, 1 << 20, 1 << 20}})
	weights := make([]int, 40)
	for i := range weights {
		weights[i] = 10*i + 7
	}
	sealExampleEpochs(t, p, ent, weights)
	p.Quiesce()
	p.SetQueryCache(false)

	for _, r := range [][2]uint64{{1, 16}, {2, 37}, {5, 5}, {1, 40}} {
		ladder, err := p.QueryEncoded(r[0], r[1])
		if err != nil {
			t.Fatalf("[%d,%d]: %v", r[0], r[1], err)
		}
		p.SetMaxLevel(0)
		flat, err := p.QueryEncoded(r[0], r[1])
		p.SetMaxLevel(-1)
		if err != nil {
			t.Fatalf("[%d,%d] flat: %v", r[0], r[1], err)
		}
		if !bytes.Equal(ladder, flat) {
			t.Fatalf("[%d,%d]: ladder and flat frames differ (%d vs %d bytes)", r[0], r[1], len(ladder), len(flat))
		}
	}
}

// Queries ending at the live epoch fold in the un-sealed summary and
// observe every absorbed update immediately.
func TestPlaneLiveQueries(t *testing.T) {
	p, ent := mustPlane(t, "mg", Ladder{Fan: 4, Levels: 2})
	sealExampleEpochs(t, p, ent, []int{100, 200})
	if _, err := p.Absorb(ent.Example(50)); err != nil {
		t.Fatal(err)
	}

	w100, w200 := exampleN(ent, 100), exampleN(ent, 200)
	w50, w25 := exampleN(ent, 50), exampleN(ent, 25)

	v, err := p.Query(1, 0) // 0 = through the live epoch
	if err != nil {
		t.Fatal(err)
	}
	if n, want := ent.N(v), w100+w200+w50; n != want {
		t.Fatalf("live query N = %d, want %d", n, want)
	}
	if _, err := p.Absorb(ent.Example(25)); err != nil {
		t.Fatal(err)
	}
	v, err = p.Query(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n, want := ent.N(v), w100+w200+w50+w25; n != want {
		t.Fatalf("live query after absorb N = %d, want %d", n, want)
	}

	// Sealed-only query ignores the live epoch.
	v, err = p.Query(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n, want := ent.N(v), w100+w200; n != want {
		t.Fatalf("sealed query N = %d, want %d", n, want)
	}
}

// Empty epochs contribute nothing and never block a cover.
func TestPlaneEmptyEpochs(t *testing.T) {
	p, ent := mustPlane(t, "mg", Ladder{Fan: 4, Levels: 2, Horizon: []uint64{1 << 20, 1 << 20}})
	sealExampleEpochs(t, p, ent, []int{10, 0, 0, 40, 0, 60})
	p.Quiesce()
	v, err := p.Query(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if n, want := ent.N(v), exampleN(ent, 10)+exampleN(ent, 40)+exampleN(ent, 60); n != want {
		t.Fatalf("N = %d, want %d", n, want)
	}
	// A range of only empty epochs has nothing to summarize.
	if _, err := p.Query(2, 3); err == nil {
		t.Fatal("query over empty epochs succeeded")
	}
}

// The cover cache serves repeated covers and invalidates live ranges
// on mutation, mirroring the PULL snapshot cache.
func TestPlaneQueryCache(t *testing.T) {
	p, ent := mustPlane(t, "mg", Ladder{Fan: 4, Levels: 2})
	sealExampleEpochs(t, p, ent, []int{100, 200, 300})
	p.Quiesce()

	f1, err := p.QueryEncoded(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := p.QueryEncoded(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if &f1[0] != &f2[0] {
		t.Fatal("repeated sealed cover was not served from the cache")
	}
	st := p.Stats()
	if st.CacheHits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.CacheHits)
	}

	// Live ranges: cached until a mutation bumps the version.
	l1, err := p.QueryEncoded(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := p.QueryEncoded(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if &l1[0] != &l2[0] {
		t.Fatal("repeated live cover was not served from the cache")
	}
	if _, err := p.Absorb(ent.Example(5)); err != nil {
		t.Fatal(err)
	}
	l3, err := p.QueryEncoded(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if &l1[0] == &l3[0] {
		t.Fatal("live cover served stale after Absorb")
	}
	got, err := ent.Decode(l3)
	if err != nil {
		t.Fatal(err)
	}
	want := exampleN(ent, 100) + exampleN(ent, 200) + exampleN(ent, 300) + exampleN(ent, 5)
	if n := ent.N(got); n != want {
		t.Fatalf("post-absorb live N = %d, want %d", n, want)
	}
}

// Ranges older than every retained resolution fail with a useful
// error instead of silently under-counting.
func TestPlaneEvictionErrors(t *testing.T) {
	p, ent := mustPlane(t, "mg", Ladder{Fan: 2, Levels: 2, Horizon: []uint64{4, 16}})
	weights := make([]int, 32)
	for i := range weights {
		weights[i] = 1
	}
	sealExampleEpochs(t, p, ent, weights)
	p.Quiesce()

	// Epoch 1 is far outside both horizons.
	if _, err := p.Query(1, 2); err == nil {
		t.Fatal("query over evicted epochs succeeded")
	}
	// A recent range still answers.
	v, err := p.Query(30, 32)
	if err != nil {
		t.Fatal(err)
	}
	if n := ent.N(v); n != 3 {
		t.Fatalf("N = %d, want 3", n)
	}
	// An old but coarse-aligned range within the level-1 horizon
	// answers at level-1 resolution.
	cov, err := p.Cover(21, 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range cov.Segments {
		if seg.Level != 1 {
			t.Fatalf("aged cover uses level-%d segment [%d,%d], want level 1", seg.Level, seg.From, seg.To)
		}
	}
}

// Background roll-ups racing Absorb/Advance/Query: run with -race.
// Queries may fail (ranges evict under the racing advances); they must
// never return a wrong weight for the range they claim.
func TestPlaneConcurrentRollups(t *testing.T) {
	p, ent := mustPlane(t, "mg", Ladder{Fan: 4, Levels: 3, Horizon: []uint64{1 << 20, 1 << 20, 1 << 20}})
	const epochs = 200
	w10 := exampleN(ent, 10)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for e := 0; e < epochs; e++ {
			if _, err := p.Absorb(ent.Example(10)); err != nil {
				t.Error(err)
				return
			}
			if err := p.Advance(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			sealed := p.Epoch() - 1
			if sealed < 1 {
				continue
			}
			from := sealed/2 + 1
			v, err := p.Query(from, sealed)
			if err != nil {
				continue // racing advance/rollup; acceptable
			}
			if n, want := ent.N(v), (sealed-from+1)*w10; n != want {
				t.Errorf("query [%d,%d]: N = %d, want %d", from, sealed, n, want)
				return
			}
		}
	}()
	wg.Wait()
	p.Quiesce()
	st := p.Stats()
	if st.RollupErrs != 0 {
		t.Fatalf("rollup errors: %+v (last: %v)", st, p.lastErr)
	}
	v, err := p.Query(1, epochs)
	if err != nil {
		t.Fatal(err)
	}
	if n, want := ent.N(v), epochs*w10; n != want {
		t.Fatalf("full-range N = %d, want %d", n, want)
	}
}

// The memoized sealed tail makes repeated Windowed queries cheap: no
// re-merge of sealed epochs while the epoch stands, and updates to the
// live epoch are still observed immediately.
func TestWindowedQueryMemoization(t *testing.T) {
	clones, merges := 0, 0
	clone := func(s *mg.Summary) *mg.Summary { clones++; return s.Clone() }
	merge := func(dst, src *mg.Summary) error { merges++; return dst.Merge(src) }

	w := New(8, newMG)
	for e := 0; e < 5; e++ {
		w.Current().Update(1, 10)
		if e < 4 {
			w.Advance()
		}
	}
	q1, err := w.Query(5, clone, merge)
	if err != nil {
		t.Fatal(err)
	}
	if q1.N() != 50 {
		t.Fatalf("N = %d, want 50", q1.N())
	}
	c1, m1 := clones, merges

	// Same window, no advance: one clone of the tail + one live merge.
	q2, err := w.Query(5, clone, merge)
	if err != nil {
		t.Fatal(err)
	}
	if q2.N() != 50 {
		t.Fatalf("repeat N = %d, want 50", q2.N())
	}
	if clones-c1 != 1 || merges-m1 != 1 {
		t.Fatalf("repeat query cost %d clones %d merges, want 1 and 1", clones-c1, merges-m1)
	}

	// Updates to the live epoch are never hidden by the memo.
	w.Current().Update(2, 7)
	q3, err := w.Query(5, clone, merge)
	if err != nil {
		t.Fatal(err)
	}
	if q3.N() != 57 {
		t.Fatalf("post-update N = %d, want 57", q3.N())
	}

	// Advancing invalidates the tail and recycles it.
	recycled := 0
	w.SetRecycler(func(*mg.Summary) { recycled++ })
	w.Advance()
	if _, err := w.Query(5, clone, merge); err != nil {
		t.Fatal(err)
	}
	if recycled != 1 {
		t.Fatalf("recycled %d tails after advance, want 1", recycled)
	}
}

// Changing the window length rebuilds the tail for the new length.
func TestWindowedQueryMemoPerLength(t *testing.T) {
	w := New(8, newMG)
	for e := 0; e < 6; e++ {
		w.Current().Update(1, 1)
		if e < 5 {
			w.Advance()
		}
	}
	for _, last := range []int{1, 3, 6, 3, 1} {
		q, err := w.Query(last, cloneMG, (*mg.Summary).Merge)
		if err != nil {
			t.Fatal(err)
		}
		if q.N() != uint64(last) {
			t.Fatalf("last=%d: N = %d", last, q.N())
		}
	}
}

func BenchmarkWindowedQueryMemoized(b *testing.B) {
	w := New(64, newMG)
	for e := 0; e < 64; e++ {
		for i := 0; i < 100; i++ {
			w.Current().Update(core.Item(i), 1)
		}
		if e < 63 {
			w.Advance()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Query(64, cloneMG, (*mg.Summary).Merge); err != nil {
			b.Fatal(err)
		}
	}
}
