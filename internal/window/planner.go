package window

import "fmt"

// Cover is a planner result: sealed segments whose epoch ranges are
// pairwise disjoint and union exactly to the planned [From, To] range
// minus empty epochs. Segments appear in ascending epoch order.
type Cover struct {
	From, To uint64
	Segments []*Segment
}

// N sums the covered segments' weights.
func (c Cover) N() uint64 {
	var n uint64
	for _, s := range c.Segments {
		n += s.N
	}
	return n
}

// plan decomposes the sealed epoch range [from, to] into the minimal
// cover of available segments: at each position it takes the sealed
// segment of the coarsest level that (a) starts aligned at the
// position and (b) ends inside the range. Because every level
// partitions the timeline into fan^ℓ-aligned blocks, any exact cover
// must break at the block boundaries this greedy walk breaks at, so
// the greedy choice of the coarsest available segment is minimal. The
// walk is O(pieces · levels) with at most ~2·(fan−1) pieces per level
// — O(log n) pieces for an n-epoch range instead of the O(n) per-epoch
// merge chain.
//
// maxLevel caps the coarsest level considered (len(levels)-1 normally;
// 0 reproduces the flat per-epoch plan the bench suite compares
// against). A position whose level-0 block is retained but unsealed
// was an empty epoch and is skipped; a position older than every
// level's horizon fails with a description of the oldest answerable
// granularity.
func (st *segStore) plan(from, to, now uint64, maxLevel int) (Cover, error) {
	if from < 1 || to < from {
		return Cover{}, fmt.Errorf("window: bad epoch range [%d, %d]", from, to)
	}
	if to >= now {
		return Cover{}, fmt.Errorf("window: epoch range [%d, %d] reaches past the last sealed epoch %d", from, to, now-1)
	}
	if maxLevel >= len(st.levels) {
		maxLevel = len(st.levels) - 1
	}
	cov := Cover{From: from, To: to}
	for pos := from; pos <= to; {
		var seg *Segment
		for level := maxLevel; level >= 0; level-- {
			span := st.ladder.span(level)
			if (pos-1)%span != 0 || pos+span-1 > to {
				continue // not aligned here, or overshoots the range
			}
			if s, ok := st.get(level, pos); ok {
				seg = s
				break
			}
		}
		if seg != nil {
			cov.Segments = append(cov.Segments, seg)
			pos = seg.To + 1
			continue
		}
		// Nothing sealed at pos. Find the finest level whose aligned
		// block at pos both fits the range and is still retained: a
		// retained block with no sealed segment summarized no data
		// (roll-ups seal every non-empty completed block), so the
		// planner skips it. With no such level, the range has aged
		// past every retained resolution and the cover fails.
		skipped := false
		for level := 0; level <= maxLevel; level++ {
			span := st.ladder.span(level)
			if (pos-1)%span != 0 {
				continue
			}
			blockTo := pos + span - 1
			if blockTo > to {
				break // coarser blocks only overshoot further
			}
			if st.retained(level, blockTo, now) {
				pos = blockTo + 1
				skipped = true
				break
			}
		}
		if skipped {
			continue
		}
		return Cover{}, fmt.Errorf(
			"window: epoch %d evicted at every level covering [%d, %d]; oldest retained epoch is %d",
			pos, from, to, st.oldestRetained(now))
	}
	return cov, nil
}

// oldestRetained returns the oldest epoch any level still retains.
func (st *segStore) oldestRetained(now uint64) uint64 {
	oldest := now
	for _, segs := range st.levels {
		for _, seg := range segs {
			if seg.From < oldest {
				oldest = seg.From
			}
		}
	}
	return oldest
}
