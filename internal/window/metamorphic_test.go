package window

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/mergetree"
	"repro/internal/registry"
	_ "repro/internal/registry/all"
)

// TestPlaneMetamorphic is the planner's metamorphic gate, run for
// every registered family with zero per-family code: under a random
// advance/absorb/query schedule, a planner-cover query over [from, to]
// must summarize exactly the stream a flat epoch-order merge of the
// same range summarizes. Total weight must match exactly for every
// family. Byte equality cannot be demanded unconditionally — some
// families are merge-order sensitive in their tie-breaking or cascade
// compactions that depend on how the fold is grouped (epsapprox's
// carry chain, randquant's block promotion) — so the test classifies
// each family empirically: it folds every probed range three ways
// (sequential, pairing, fan-blocked with encode/decode roundtrips),
// and only when a family's three shapes agree on every probed range is
// it deemed fold-shape insensitive and its planner frames required to
// match byte-for-byte. A single shape divergence anywhere demotes the
// whole family to the exact-weight gate — per-range probing is not
// enough, because a shape-sensitive family's folds can coincide on one
// range and differ on the next.
func TestPlaneMetamorphic(t *testing.T) {
	for _, ent := range registry.Entries() {
		ent := ent
		t.Run(ent.Name(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(len(ent.Name())) * 7919))
			p, err := NewPlane(ent, nil, Ladder{Fan: 3, Levels: 3, Horizon: []uint64{1 << 20, 1 << 20, 1 << 20}})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()

			// Random schedule: ~60 sealed epochs, each absorbing 0-2
			// deterministic example summaries. sizes[e] records epoch
			// e+1's example sizes so the flat side can rebuild them.
			const sealed = 60
			sizes := make([][]int, sealed)
			for e := 0; e < sealed; e++ {
				for k := rng.Intn(3); k > 0; k-- {
					n := 1 + rng.Intn(64)
					sizes[e] = append(sizes[e], n)
					if _, err := p.Absorb(ent.Example(n)); err != nil {
						t.Fatal(err)
					}
				}
				if err := p.Advance(); err != nil {
					t.Fatal(err)
				}
			}
			p.Quiesce()
			if st := p.Stats(); st.RollupErrs != 0 {
				t.Fatalf("rollup errors: %+v", st)
			}

			seqFold := func(parts []any) any {
				acc := parts[0]
				for _, src := range parts[1:] {
					if err := ent.Merge(acc, src); err != nil {
						t.Fatal(err)
					}
				}
				return acc
			}
			// flatFold rebuilds the range's examples and folds them in
			// epoch order; returns nil when the range is empty.
			flatFold := func(from, to uint64) any {
				var parts []any
				for e := from; e <= to; e++ {
					for _, n := range sizes[e-1] {
						parts = append(parts, ent.Example(n))
					}
				}
				if len(parts) == 0 {
					return nil
				}
				return seqFold(parts)
			}
			// pairFold folds the same range as a pairing reduction.
			pairFold := func(from, to uint64) any {
				var parts []any
				for e := from; e <= to; e++ {
					for _, n := range sizes[e-1] {
						parts = append(parts, ent.Example(n))
					}
				}
				acc, err := mergetree.Parallel(parts, 1, ent.Merge)
				if err != nil {
					t.Fatal(err)
				}
				return acc
			}
			// blockFold folds each fan-aligned 3-epoch block
			// sequentially, roundtrips the block through the codec (as
			// sealing a segment does), then folds the blocks — the
			// grouped-with-roundtrips shape the roll-up plane produces.
			blockFold := func(from, to uint64) any {
				var blocks []any
				for b := from; b <= to; b += 3 {
					var parts []any
					for e := b; e <= to && e < b+3; e++ {
						for _, n := range sizes[e-1] {
							parts = append(parts, ent.Example(n))
						}
					}
					if len(parts) == 0 {
						continue
					}
					frame, err := ent.Encode(seqFold(parts))
					if err != nil {
						t.Fatal(err)
					}
					dec, err := ent.Decode(frame)
					if err != nil {
						t.Fatal(err)
					}
					blocks = append(blocks, dec)
				}
				return seqFold(blocks)
			}

			type probed struct {
				from, to      uint64
				planner, flat []byte
			}
			insensitive := true
			var probes []probed
			for q := 0; q < 20; q++ {
				from := uint64(1 + rng.Intn(sealed))
				to := from + uint64(rng.Intn(int(uint64(sealed)-from)+1))
				seq := flatFold(from, to)
				got, err := p.QueryEncoded(from, to)
				if seq == nil {
					if err == nil {
						t.Fatalf("[%d,%d]: empty range answered", from, to)
					}
					continue
				}
				if err != nil {
					t.Fatalf("[%d,%d]: %v", from, to, err)
				}
				dec, err := ent.Decode(got)
				if err != nil {
					t.Fatalf("[%d,%d]: decoding planner frame: %v", from, to, err)
				}
				if gn, wn := ent.N(dec), ent.N(seq); gn != wn {
					t.Fatalf("[%d,%d]: planner N = %d, flat N = %d", from, to, gn, wn)
				}
				seqFrame, err := ent.Encode(seq)
				if err != nil {
					t.Fatal(err)
				}
				pairFrame, err := ent.Encode(pairFold(from, to))
				if err != nil {
					t.Fatal(err)
				}
				blockFrame, err := ent.Encode(blockFold(from, to))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(seqFrame, pairFrame) || !bytes.Equal(seqFrame, blockFrame) {
					insensitive = false
				}
				probes = append(probes, probed{from, to, got, seqFrame})
			}
			if insensitive {
				t.Logf("fold-shape insensitive: byte gate armed over %d ranges", len(probes))
				for _, pr := range probes {
					if !bytes.Equal(pr.planner, pr.flat) {
						t.Fatalf("[%d,%d]: family is fold-shape insensitive yet the planner frame differs from the flat fold (%d vs %d bytes)",
							pr.from, pr.to, len(pr.planner), len(pr.flat))
					}
				}
			}

			// Live-edge query: absorb into the open epoch and compare
			// a through-live query against the flat fold plus live.
			liveSizes := []int{1 + rng.Intn(64), 1 + rng.Intn(64)}
			for _, n := range liveSizes {
				if _, err := p.Absorb(ent.Example(n)); err != nil {
					t.Fatal(err)
				}
			}
			got, err := p.Query(1, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := ent.N(flatFold(1, sealed))
			for _, n := range liveSizes {
				want += ent.N(ent.Example(n))
			}
			if gn := ent.N(got); gn != want {
				t.Fatalf("live query N = %d, want %d", gn, want)
			}
		})
	}
}
