package window

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mg"
	"repro/internal/registry"
)

// The encoded query path must produce exactly the frame the registry
// entry would encode from a plain Query over the same window.
func TestQueryEncoded(t *testing.T) {
	ent, ok := registry.ByName("mg")
	if !ok {
		t.Fatal("mg not registered")
	}
	w := New(4, newMG)
	for e := 0; e < 3; e++ {
		for i := 0; i < 100; i++ {
			w.Current().Update(core.Item(i%7), 1)
		}
		if e < 2 {
			w.Advance()
		}
	}
	merge := (*mg.Summary).Merge

	frame, err := w.QueryEncoded(ent, 2, cloneMG, merge)
	if err != nil {
		t.Fatal(err)
	}
	q, err := w.Query(2, cloneMG, merge)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ent.Encode(q)
	if err != nil {
		t.Fatal(err)
	}
	if string(frame) != string(want) {
		t.Fatalf("QueryEncoded frame differs from Encode(Query()): %d vs %d bytes", len(frame), len(want))
	}

	got, err := ent.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n := got.(*mg.Summary).N(); n != 200 {
		t.Fatalf("decoded window query n = %d, want 200", n)
	}
}
