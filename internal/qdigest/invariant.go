//go:build sanitize

package qdigest

// sanitizeEnabled reports whether this build carries the runtime
// invariant layer (`go test -tags sanitize`). See DESIGN.md.
const sanitizeEnabled = true

// debugAssert compresses a clone of d and panics if it violates the
// q-digest property: positive node counts inside the tree, the
// compression completeness bound c(v)+c(sibling)+c(parent) > n/k for
// every non-root node, and total mass equal to n. This is the weight
// bound every merge order must preserve (Agarwal et al. §3). The
// clone keeps the assert side-effect-free: compressing d itself would
// be legal, but it would make sanitize builds take different
// amortization paths than release builds (and break the batch-vs-loop
// state-equivalence tests).
func debugAssert(d *Digest) {
	c := d.Clone()
	c.Compress()
	if err := c.checkInvariants(); err != nil {
		panic("qdigest: sanitize: " + err.Error())
	}
}

// debugAssertSampled runs debugAssert on a deterministic sample of
// calls (keyed on n): forcing a compression per update would defeat
// the amortization the update path is built around.
func debugAssertSampled(d *Digest) {
	if d.n&1023 == 0 {
		debugAssert(d)
	}
}
