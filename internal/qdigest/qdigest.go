// Package qdigest implements the q-digest of Shrivastava, Buragohain,
// Agrawal and Suri — the prior mergeable quantile summary the PODS'12
// paper compares its randomized construction against (§3): for a fixed
// integer universe [0, 2^logU) it answers rank queries with error at
// most εn using O((1/ε)·log u) nodes, and it is deterministically and
// trivially mergeable (add node counts, re-compress).
//
// The structure is a binary tree over the universe; node v covers a
// dyadic range, the root covers everything. The digest keeps a sparse
// map of node counts satisfying the q-digest property with threshold
// t = ⌊n/k⌋:
//
//	(1) non-leaf nodes have count ≤ t, and
//	(2) a node, its sibling and its parent together exceed t
//	    (otherwise they are merged upward by Compress).
//
// A rank query sums the counts of nodes entirely below the query
// point; each of the logU levels contributes at most t uncertainty
// from the single spanning node, so rank error ≤ logU·⌊n/k⌋ ≤ εn for
// k = ⌈logU/ε⌉.
//
// The trade-offs against the paper's randomized summary (package
// randquant) are exactly the ones §3 motivates: q-digest needs a
// bounded integer universe and pays a log u factor, but is
// deterministic; the randomized summary is comparison-based
// (unbounded universe) and smaller. Experiment E18 measures both.
package qdigest

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/codec"
	"repro/internal/core"
)

// Digest is a q-digest over the universe [0, 2^logU). The zero value
// is not usable; use New. Not safe for concurrent use.
type Digest struct {
	logU   uint8
	k      uint64
	n      uint64
	counts map[uint64]uint64 // node id (1 = root) → count
	// dirty counts insertions since the last compress; compression is
	// amortized over Θ(size) updates.
	dirty uint64
}

// New returns an empty digest over [0, 2^logU) with compression factor
// k: rank error is at most logU·⌊n/k⌋. logU must be in [1, 62], k >= 1.
func New(logU uint8, k uint64) *Digest {
	if logU < 1 || logU > 62 {
		panic("qdigest: logU must be in [1, 62]")
	}
	if k < 1 {
		panic("qdigest: k must be >= 1")
	}
	return &Digest{logU: logU, k: k, counts: make(map[uint64]uint64)}
}

// NewEpsilon returns a digest with rank error at most eps*n:
// k = ceil(logU/eps).
func NewEpsilon(logU uint8, eps float64) *Digest {
	if eps <= 0 || eps >= 1 {
		panic("qdigest: eps must be in (0, 1)")
	}
	return New(logU, uint64(math.Ceil(float64(logU)/eps)))
}

// LogUniverse returns logU.
func (d *Digest) LogUniverse() uint8 { return d.logU }

// K returns the compression factor.
func (d *Digest) K() uint64 { return d.k }

// N returns the total weight summarized, including merges.
func (d *Digest) N() uint64 { return d.n }

// Size returns the number of stored nodes.
func (d *Digest) Size() int { return len(d.counts) }

// ErrorBound returns the current deterministic rank-error bound
// logU·⌊n/k⌋.
func (d *Digest) ErrorBound() uint64 {
	return uint64(d.logU) * (d.n / d.k)
}

// leaf returns the node id of value v's leaf.
func (d *Digest) leaf(v uint64) uint64 {
	return (uint64(1) << d.logU) + v
}

// level returns the depth of node id (root = 0).
func level(id uint64) uint8 {
	l := uint8(0)
	for id > 1 {
		id >>= 1
		l++
	}
	return l
}

// rangeOf returns the inclusive value range covered by node id.
func (d *Digest) rangeOf(id uint64) (lo, hi uint64) {
	lv := level(id)
	span := uint64(1) << (d.logU - lv)
	lo = (id - (uint64(1) << lv)) * span
	return lo, lo + span - 1
}

// Update adds w >= 1 occurrences of value v (clamped into the
// universe).
func (d *Digest) Update(v uint64, w uint64) {
	if w == 0 {
		panic("qdigest: zero-weight update")
	}
	max := (uint64(1) << d.logU) - 1
	if v > max {
		v = max
	}
	d.counts[d.leaf(v)] += w
	d.n += w
	d.dirty++
	if d.dirty > uint64(len(d.counts))+16 {
		d.Compress()
	}
	debugAssertSampled(d)
}

// Compress restores the q-digest property, merging under-full sibling
// pairs into their parents bottom-up. It runs in O(size·log size).
func (d *Digest) Compress() {
	d.dirty = 0
	t := d.n / d.k
	if t == 0 || len(d.counts) == 0 {
		return
	}
	// Sweep levels bottom-up until a fixpoint: a pass can re-enable
	// merges below (a parent that moved its count upward leaves its
	// remaining child's triple under the threshold), and every merge
	// strictly shrinks the node set, so the loop terminates quickly.
	for {
		merged := false
		byLevel := make([][]uint64, d.logU+1)
		for id := range d.counts {
			lv := level(id)
			byLevel[lv] = append(byLevel[lv], id)
		}
		for lv := int(d.logU); lv >= 1; lv-- {
			for _, id := range byLevel[lv] {
				c, ok := d.counts[id]
				if !ok {
					continue // already folded into its parent
				}
				sib := id ^ 1
				parent := id >> 1
				total := c + d.counts[sib] + d.counts[parent]
				if total <= t {
					_, parentExisted := d.counts[parent]
					delete(d.counts, id)
					delete(d.counts, sib)
					d.counts[parent] = total
					merged = true
					if !parentExisted {
						byLevel[lv-1] = append(byLevel[lv-1], parent)
					}
				}
			}
		}
		if !merged {
			return
		}
	}
}

// Rank estimates the number of inserted values <= v: the sum of node
// counts whose ranges lie entirely at or below v. The estimate never
// exceeds the true rank and undershoots by at most ErrorBound().
func (d *Digest) Rank(v uint64) uint64 {
	d.Compress()
	var r uint64
	for id, c := range d.counts {
		_, hi := d.rangeOf(id)
		if hi <= v {
			r += c
		}
	}
	return r
}

// Quantile returns a value whose rank is within ErrorBound() of
// phi*N: the canonical post-order walk accumulating counts.
func (d *Digest) Quantile(phi float64) uint64 {
	d.Compress()
	if len(d.counts) == 0 {
		return 0
	}
	type nodeCount struct {
		hi, lo, c uint64
	}
	nodes := make([]nodeCount, 0, len(d.counts))
	for id, c := range d.counts {
		lo, hi := d.rangeOf(id)
		nodes = append(nodes, nodeCount{hi: hi, lo: lo, c: c})
	}
	// Post-order over the range tree: by upper bound, then smaller
	// ranges (deeper nodes) first.
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].hi != nodes[j].hi {
			return nodes[i].hi < nodes[j].hi
		}
		return nodes[i].lo > nodes[j].lo
	})
	target := phi * float64(d.n)
	var cum float64
	for _, nc := range nodes {
		cum += float64(nc.c)
		if cum >= target {
			return nc.hi
		}
	}
	return nodes[len(nodes)-1].hi
}

// Merge folds other into d: counts add node-wise and the result is
// re-compressed — the q-digest is trivially mergeable. Digests must
// share logU and k; other is not modified.
func (d *Digest) Merge(other *Digest) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if d.logU != other.logU || d.k != other.k {
		return fmt.Errorf("%w: qdigest logU/k", core.ErrMismatchedShape)
	}
	for id, c := range other.counts {
		d.counts[id] += c
	}
	d.n += other.n
	d.Compress()
	debugAssert(d)
	return nil
}

// Merged returns the merge of a and b without modifying either.
func Merged(a, b *Digest) (*Digest, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// Clone returns a deep copy.
func (d *Digest) Clone() *Digest {
	c := New(d.logU, d.k)
	c.n = d.n
	c.dirty = d.dirty
	for id, v := range d.counts {
		c.counts[id] = v
	}
	return c
}

// checkInvariants verifies the q-digest property; used by tests.
// It must be called right after Compress.
func (d *Digest) checkInvariants() error {
	var sum uint64
	t := d.n / d.k
	maxID := uint64(1) << (d.logU + 1)
	for id, c := range d.counts {
		if c == 0 {
			return fmt.Errorf("zero-count node %d", id)
		}
		if id < 1 || id >= maxID {
			return fmt.Errorf("node id %d out of tree", id)
		}
		sum += c
		if id == 1 {
			continue
		}
		if total := c + d.counts[id^1] + d.counts[id>>1]; total <= t {
			return fmt.Errorf("node %d violates compression: %d <= %d", id, total, t)
		}
	}
	if sum != d.n {
		return fmt.Errorf("Σ counts %d != n %d", sum, d.n)
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
//
// Compress is an idempotent canonicalization, not an impurity: the
// q-digest invariant requires the encoded tree to be in compressed
// form so equal logical states encode to identical bytes, and
// compressing an already-compressed digest is a no-op. Callers hold
// exclusive access during encode (the merge plane encodes under the
// slot lock), so the mutation cannot race.
//
//sketch:encodemutates
func (d *Digest) MarshalBinary() ([]byte, error) {
	d.Compress()
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	// Header (logU, k, n, len) plus (id, count) uvarints per node.
	w.Grow(4*10 + len(d.counts)*2*10)
	w.Int(int(d.logU))
	w.Uint64(d.k)
	w.Uint64(d.n)
	ids := make([]uint64, 0, len(d.counts))
	for id := range d.counts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Int(len(ids))
	for _, id := range ids {
		w.Uint64(id)
		w.Uint64(d.counts[id])
	}
	return codec.EncodeFrame(codec.KindQDigest, w.Bytes()), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (d *Digest) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindQDigest, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	logU := r.Int()
	k := r.Uint64()
	n := r.Uint64()
	m := r.ArrayLen(2)
	if r.Err() != nil {
		return r.Err()
	}
	if logU < 1 || logU > 62 || k < 1 {
		return fmt.Errorf("qdigest: invalid header (logU=%d, k=%d)", logU, k)
	}
	out := New(uint8(logU), k)
	out.n = n
	maxID := uint64(1) << (uint8(logU) + 1)
	var sum uint64
	for i := 0; i < m; i++ {
		id := r.Uint64()
		c := r.Uint64()
		if r.Err() == nil {
			if id < 1 || id >= maxID {
				return fmt.Errorf("qdigest: node id %d out of tree", id)
			}
			if c == 0 {
				return fmt.Errorf("qdigest: zero-count node %d", id)
			}
			if _, dup := out.counts[id]; dup {
				return fmt.Errorf("qdigest: duplicate node %d", id)
			}
			out.counts[id] = c
			sum += c
		}
	}
	if err := r.Finish(); err != nil {
		return err
	}
	if sum != n {
		return fmt.Errorf("qdigest: frame weight %d != n %d", sum, n)
	}
	*d = *out
	return nil
}
