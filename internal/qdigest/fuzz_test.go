package qdigest

import (
	"testing"

	"repro/internal/gen"
)

func FuzzUnmarshal(f *testing.F) {
	d := NewEpsilon(10, 0.1)
	rng := gen.NewRNG(1)
	for i := 0; i < 2000; i++ {
		d.Update(rng.Uint64n(1<<10), 1)
	}
	seed, _ := d.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Digest
		if err := out.UnmarshalBinary(data); err != nil {
			return
		}
		if _, err := out.MarshalBinary(); err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
	})
}
