package qdigest

import (
	"testing"

	"repro/internal/gen"
)

func FuzzUnmarshal(f *testing.F) {
	d := NewEpsilon(10, 0.1)
	rng := gen.NewRNG(1)
	for i := 0; i < 2000; i++ {
		d.Update(rng.Uint64n(1<<10), 1)
	}
	seed, _ := d.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Digest
		if err := out.UnmarshalBinary(data); err != nil {
			return
		}
		if _, err := out.MarshalBinary(); err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
	})
}

// FuzzMergeRoundTrip builds two compatible digests from the fuzzed
// byte streams, merges them, and checks the result keeps the q-digest
// property and survives a codec round-trip unchanged.
func FuzzMergeRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200}, []byte{5})
	f.Add([]byte{}, []byte{0, 0, 255})
	f.Fuzz(func(t *testing.T, ra, rb []byte) {
		a, b := New(8, 5), New(8, 5)
		for _, v := range ra {
			a.Update(uint64(v), 1)
		}
		for _, v := range rb {
			b.Update(uint64(v), 1)
		}
		n := a.N() + b.N()
		if err := a.Merge(b); err != nil {
			t.Fatalf("merge of compatible digests failed: %v", err)
		}
		if a.N() != n {
			t.Fatalf("merged n=%d, want %d", a.N(), n)
		}
		if err := a.checkInvariants(); err != nil {
			t.Fatalf("merged digest violates q-digest property: %v", err)
		}
		data, err := a.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got Digest
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("round-trip rejected own frame: %v", err)
		}
		if got.N() != a.N() || got.Size() != a.Size() {
			t.Fatalf("round-trip changed digest: n %d->%d, size %d->%d", a.N(), got.N(), a.Size(), got.Size())
		}
		for _, q := range []uint64{0, 100, 255} {
			if got.Rank(q) != a.Rank(q) {
				t.Fatalf("round-trip changed Rank(%d)", q)
			}
		}
	})
}
