package qdigest

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"logU=0":      func() { New(0, 4) },
		"logU=63":     func() { New(63, 4) },
		"k=0":         func() { New(16, 0) },
		"eps=0":       func() { NewEpsilon(16, 0) },
		"eps=1":       func() { NewEpsilon(16, 1) },
		"zero weight": func() { New(8, 4).Update(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSmallExact(t *testing.T) {
	d := New(8, 1000) // huge k: threshold 0, no compression
	for _, v := range []uint64{5, 1, 9, 3, 7} {
		d.Update(v, 1)
	}
	if d.N() != 5 {
		t.Fatalf("N = %d", d.N())
	}
	if r := d.Rank(4); r != 2 {
		t.Errorf("Rank(4) = %d, want 2", r)
	}
	if q := d.Quantile(0.5); q != 5 {
		t.Errorf("Quantile(0.5) = %d, want 5", q)
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestClampsToUniverse(t *testing.T) {
	d := New(4, 8) // universe [0, 16)
	d.Update(100, 3)
	if r := d.Rank(15); r != 3 {
		t.Errorf("clamped value not at universe max: Rank(15) = %d", r)
	}
}

// The q-digest guarantee: rank error <= logU * floor(n/k) <= eps*n for
// NewEpsilon.
func TestRankGuarantee(t *testing.T) {
	const n = 100000
	const logU = 16
	for _, eps := range []float64{0.05, 0.01} {
		for name, mkStream := range map[string]func() []uint64{
			"zipf": func() []uint64 {
				z := gen.NewZipf(1<<logU, 1.2, 3)
				out := make([]uint64, n)
				for i := range out {
					out[i] = uint64(z.Sample())
				}
				return out
			},
			"uniform": func() []uint64 {
				rng := gen.NewRNG(5)
				out := make([]uint64, n)
				for i := range out {
					out[i] = rng.Uint64n(1 << logU)
				}
				return out
			},
		} {
			stream := mkStream()
			d := NewEpsilon(logU, eps)
			exactRank := func(v uint64) uint64 {
				var r uint64
				for _, x := range stream {
					if x <= v {
						r++
					}
				}
				return r
			}
			for _, v := range stream {
				d.Update(v, 1)
			}
			d.Compress()
			if err := d.checkInvariants(); err != nil {
				t.Fatalf("%s eps=%v: %v", name, eps, err)
			}
			slack := uint64(eps*n) + 1
			for _, v := range []uint64{100, 1 << 8, 1 << 12, 1 << 14, 1<<16 - 1} {
				got, want := d.Rank(v), exactRank(v)
				if got > want {
					t.Fatalf("%s eps=%v: Rank(%d) = %d overestimates true %d", name, eps, v, got, want)
				}
				if want-got > slack {
					t.Errorf("%s eps=%v: Rank(%d) = %d, true %d, undershoot > %d", name, eps, v, got, want, slack)
				}
			}
			for _, phi := range []float64{0.1, 0.5, 0.9, 0.99} {
				q := d.Quantile(phi)
				// q is correct if the target rank falls within q's own
				// rank interval [#values < q, #values <= q] up to
				// slack (a heavy value legitimately spans many ranks).
				var below uint64
				if q > 0 {
					below = exactRank(q - 1)
				}
				atOrBelow := exactRank(q)
				target := uint64(phi * n)
				var diff uint64
				if target > atOrBelow {
					diff = target - atOrBelow
				} else if below > target {
					diff = below - target
				}
				if diff > slack {
					t.Errorf("%s eps=%v phi=%v: quantile rank error %d > %d (q=%d interval [%d,%d] target %d)",
						name, eps, phi, diff, slack, q, below, atOrBelow, target)
				}
			}
		}
	}
}

// Size must stay near O(k) = O(logU/eps), far below the number of
// distinct values.
func TestSizeCompressed(t *testing.T) {
	const n = 200000
	const logU = 20
	d := NewEpsilon(logU, 0.01)
	rng := gen.NewRNG(7)
	for i := 0; i < n; i++ {
		d.Update(rng.Uint64n(1<<logU), 1)
	}
	d.Compress()
	// k = logU/eps = 2000; classic bound is 3k nodes.
	if d.Size() > 3*int(d.K()) {
		t.Errorf("size %d exceeds 3k = %d", d.Size(), 3*d.K())
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Mergeability: a binary merge tree over partitions obeys the same
// bound as the whole-stream digest.
func TestMergeTreeGuarantee(t *testing.T) {
	const n = 120000
	const logU = 14
	eps := 0.02
	z := gen.NewZipf(1<<logU, 1.1, 9)
	stream := make([]uint64, n)
	for i := range stream {
		stream[i] = uint64(z.Sample())
	}
	exactRank := func(v uint64) uint64 {
		var r uint64
		for _, x := range stream {
			if x <= v {
				r++
			}
		}
		return r
	}
	parts := gen.PartitionRandomSizes(stream, 16, 4)
	digests := make([]*Digest, len(parts))
	for i, p := range parts {
		digests[i] = NewEpsilon(logU, eps)
		for _, v := range p {
			digests[i].Update(v, 1)
		}
	}
	for len(digests) > 1 {
		var next []*Digest
		for i := 0; i+1 < len(digests); i += 2 {
			if err := digests[i].Merge(digests[i+1]); err != nil {
				t.Fatal(err)
			}
			next = append(next, digests[i])
		}
		if len(digests)%2 == 1 {
			next = append(next, digests[len(digests)-1])
		}
		digests = next
	}
	m := digests[0]
	if m.N() != n {
		t.Fatalf("N = %d, want %d", m.N(), n)
	}
	if err := m.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.Size() > 3*int(m.K()) {
		t.Errorf("merged size %d exceeds 3k", m.Size())
	}
	slack := uint64(eps*n) + 1
	for _, v := range []uint64{10, 1 << 6, 1 << 10, 1 << 13} {
		got, want := m.Rank(v), exactRank(v)
		if got > want || want-got > slack {
			t.Errorf("Rank(%d) = %d, true %d (slack %d)", v, got, want, slack)
		}
	}
}

func TestMergeMismatched(t *testing.T) {
	a := New(8, 16)
	if err := a.Merge(New(9, 16)); err == nil {
		t.Error("mismatched logU accepted")
	}
	if err := a.Merge(New(8, 32)); err == nil {
		t.Error("mismatched k accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestMergeDoesNotModifyOther(t *testing.T) {
	a, b := New(8, 4), New(8, 4)
	a.Update(1, 10)
	b.Update(2, 20)
	bn, bsize := b.N(), b.Size()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if b.N() != bn || b.Size() != bsize {
		t.Fatal("merge modified other")
	}
	if a.N() != 30 {
		t.Fatalf("a.N = %d", a.N())
	}
}

func TestErrorBound(t *testing.T) {
	d := New(10, 100)
	for i := uint64(0); i < 1000; i++ {
		d.Update(i, 1)
	}
	if got, want := d.ErrorBound(), uint64(10)*(1000/100); got != want {
		t.Errorf("ErrorBound = %d, want %d", got, want)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	d := NewEpsilon(12, 0.02)
	rng := gen.NewRNG(11)
	for i := 0; i < 50000; i++ {
		d.Update(rng.Uint64n(1<<12), 1)
	}
	data, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Digest
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.N() != d.N() || got.Size() != d.Size() || got.K() != d.K() || got.LogUniverse() != d.LogUniverse() {
		t.Fatal("round trip changed header")
	}
	for _, v := range []uint64{10, 100, 1000, 4000} {
		if got.Rank(v) != d.Rank(v) {
			t.Fatalf("Rank(%d) differs after round trip", v)
		}
	}
	data[len(data)-5] ^= 0xff
	if err := got.UnmarshalBinary(data); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func TestWeightedUpdates(t *testing.T) {
	d := New(8, 4)
	d.Update(3, 100)
	d.Update(200, 50)
	if d.N() != 150 {
		t.Fatalf("N = %d", d.N())
	}
	if r := d.Rank(3); r == 0 {
		t.Error("weighted mass lost")
	}
	_ = core.Item(0)
}
