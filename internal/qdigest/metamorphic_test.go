package qdigest

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/mergetree"
)

// Property: the rank envelope is independent of merge order — every
// topology's fold of the same partitioned stream stays within the
// merged digest's own error bound against the exact ranks.
func TestMetamorphicRankBound(t *testing.T) {
	f := func(raw []byte, kRaw, partsRaw uint8) bool {
		k := uint64(kRaw%32) + 1
		const logU = 8
		nParts := int(partsRaw%6) + 2
		parts := make([]*Digest, nParts)
		for i := range parts {
			parts[i] = New(logU, k)
		}
		counts := make(map[uint64]uint64)
		var n uint64
		for i, bv := range raw {
			v := uint64(bv)
			parts[i%nParts].Update(v, 1)
			counts[v]++
			n++
		}
		err := mergetree.Metamorphic(parts, (*Digest).Clone,
			func(dst, src *Digest) error { return dst.Merge(src) },
			func(topology string, m *Digest) error {
				if m.N() != n {
					return fmt.Errorf("n=%d, want %d", m.N(), n)
				}
				if err := m.checkInvariants(); err != nil {
					return err
				}
				bound := m.ErrorBound()
				for _, q := range []uint64{0, 31, 127, 255} {
					var truth uint64
					for v, c := range counts {
						if v <= q {
							truth += c
						}
					}
					got := m.Rank(q)
					if got > truth {
						return fmt.Errorf("rank(%d)=%d overestimates truth %d", q, got, truth)
					}
					if truth-got > bound {
						return fmt.Errorf("rank(%d)=%d undershoots truth %d beyond bound %d", q, got, truth, bound)
					}
				}
				return nil
			})
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
