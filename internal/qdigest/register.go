package qdigest

import (
	"repro/internal/codec"
	"repro/internal/gen"
	"repro/internal/registry"
)

// init catalogs the family; see internal/registry.
func init() {
	registry.Register[Digest](codec.KindQDigest, "qdigest", registry.Spec[Digest]{
		Example: func(n int) *Digest {
			d := NewEpsilon(16, 0.02)
			rng := gen.NewRNG(7)
			for i := 0; i < n; i++ {
				d.Update(rng.Uint64n(1<<16), 1)
			}
			return d
		},
		Merge: (*Digest).Merge,
		N:     (*Digest).N,
	})
}
