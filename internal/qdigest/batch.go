package qdigest

// UpdateBatch adds one occurrence of every value in vs (each clamped
// into the universe). The resulting state is identical to calling
// Update(v, 1) for each v in order: the amortized compression triggers
// at exactly the same points, but the leaf base and clamp bound are
// hoisted out of the loop.
//
//sketch:hotpath
func (d *Digest) UpdateBatch(vs []uint64) {
	max := (uint64(1) << d.logU) - 1
	leafBase := uint64(1) << d.logU
	for _, v := range vs {
		if v > max {
			v = max
		}
		d.counts[leafBase+v]++
		d.n++
		d.dirty++
		if d.dirty > uint64(len(d.counts))+16 {
			d.Compress()
		}
	}
	debugAssertSampled(d)
}

// UpdateBatchWeighted adds Count occurrences of every value in vs,
// where each element pairs a universe value with its weight. All
// weights must be >= 1.
//
//sketch:hotpath
func (d *Digest) UpdateBatchWeighted(vs []WeightedValue) {
	max := (uint64(1) << d.logU) - 1
	leafBase := uint64(1) << d.logU
	for _, wv := range vs {
		if wv.Weight == 0 {
			panic("qdigest: zero-weight update")
		}
		v := wv.Value
		if v > max {
			v = max
		}
		d.counts[leafBase+v] += wv.Weight
		d.n += wv.Weight
		d.dirty++
		if d.dirty > uint64(len(d.counts))+16 {
			d.Compress()
		}
	}
	debugAssertSampled(d)
}

// WeightedValue pairs a universe value with an update weight for
// UpdateBatchWeighted.
type WeightedValue struct {
	Value  uint64
	Weight uint64
}
