package qdigest

import (
	"testing"
	"testing/quick"
)

// Property: Rank never overestimates and undershoots by at most the
// deterministic bound, for any stream and split.
func TestPropertyRankBound(t *testing.T) {
	f := func(raw []byte, kRaw uint8, cut uint8) bool {
		k := uint64(kRaw%32) + 1
		const logU = 8
		a, b := New(logU, k), New(logU, k)
		counts := make(map[uint64]uint64)
		split := 0
		if len(raw) > 0 {
			split = int(cut) % (len(raw) + 1)
		}
		var n uint64
		for i, bv := range raw {
			v := uint64(bv)
			if i < split {
				a.Update(v, 1)
			} else {
				b.Update(v, 1)
			}
			counts[v]++
			n++
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		if a.N() != n {
			return false
		}
		if err := a.checkInvariants(); err != nil {
			return false
		}
		bound := a.ErrorBound()
		for _, q := range []uint64{0, 31, 127, 255} {
			var truth uint64
			for v, c := range counts {
				if v <= q {
					truth += c
				}
			}
			got := a.Rank(q)
			if got > truth {
				return false
			}
			if truth-got > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: merging equals building one digest over the concatenated
// stream, up to the compression bound (both satisfy the same rank
// envelope against the truth).
func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(raw []byte, kRaw uint8) bool {
		k := uint64(kRaw%32) + 1
		d := New(8, k)
		for _, bv := range raw {
			d.Update(uint64(bv), 1)
		}
		data, err := d.MarshalBinary()
		if err != nil {
			return false
		}
		var got Digest
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		if got.N() != d.N() || got.Size() != d.Size() {
			return false
		}
		for _, q := range []uint64{0, 100, 255} {
			if got.Rank(q) != d.Rank(q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
