package mg

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func mustFrom(t *testing.T, k int, cs []core.Counter) *Summary {
	t.Helper()
	s, err := FromCounters(k, core.TotalCount(cs), 0, cs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Golden test from §5.1 of the supplied text: the PODS'12 merge of the
// two Frequent summaries (k-majority parameter 5, i.e. 4 counters).
func TestMergeGoldenExample(t *testing.T) {
	s1 := mustFrom(t, 4, []core.Counter{{Item: 2, Count: 4}, {Item: 3, Count: 11}, {Item: 4, Count: 22}, {Item: 5, Count: 33}})
	s2 := mustFrom(t, 4, []core.Counter{{Item: 7, Count: 10}, {Item: 8, Count: 20}, {Item: 9, Count: 30}, {Item: 10, Count: 40}})
	combined := CombinedCounters(s1, s2)

	m, err := Merged(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[core.Item]uint64{4: 2, 9: 10, 5: 13, 10: 20}
	if m.Len() != len(want) {
		t.Fatalf("merged has %d counters: %v", m.Len(), m.Counters())
	}
	for item, count := range want {
		if got := m.Estimate(item).Value; got != count {
			t.Errorf("merged[%d] = %d, want %d", item, got, count)
		}
	}
	// Total error of the PODS merge on this input is (k-1)*20 = 80.
	if te := TotalMergeError(combined, m); te != 80 {
		t.Errorf("total error = %d, want 80", te)
	}
	// The subtracted amount is recorded in the undercount certificate.
	if m.ErrorBound() != 20 {
		t.Errorf("ErrorBound = %d, want 20", m.ErrorBound())
	}
}

func TestMergeMismatchedK(t *testing.T) {
	a, b := New(4), New(8)
	if err := a.Merge(b); !errors.Is(err, core.ErrMismatchedK) {
		t.Fatalf("err = %v, want ErrMismatchedK", err)
	}
	if err := a.Merge(nil); !errors.Is(err, core.ErrNilSummary) {
		t.Fatalf("err = %v, want ErrNilSummary", err)
	}
}

func TestMergeNoPruneWhenSmall(t *testing.T) {
	a, b := New(4), New(4)
	a.Update(1, 5)
	a.Update(2, 3)
	b.Update(2, 2)
	b.Update(3, 7)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// 3 distinct items <= k=4: exact combination, no error.
	if a.ErrorBound() != 0 {
		t.Errorf("ErrorBound = %d, want 0", a.ErrorBound())
	}
	for item, want := range map[core.Item]uint64{1: 5, 2: 5, 3: 7} {
		if got := a.Estimate(item).Value; got != want {
			t.Errorf("est[%d] = %d, want %d", item, got, want)
		}
	}
	if a.N() != 17 {
		t.Errorf("N = %d, want 17", a.N())
	}
}

func TestMergeDoesNotModifyOther(t *testing.T) {
	a, b := New(2), New(2)
	a.Update(1, 5)
	a.Update(2, 4)
	b.Update(3, 3)
	b.Update(4, 2)
	bBefore := b.Counters()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	bAfter := b.Counters()
	if len(bBefore) != len(bAfter) {
		t.Fatal("merge modified other")
	}
	for i := range bBefore {
		if bBefore[i] != bAfter[i] {
			t.Fatal("merge modified other's counters")
		}
	}
}

// mergeTree folds summaries pairwise in a balanced binary tree using
// the provided merge function.
func mergeTree(t *testing.T, parts []*Summary, merge func(a, b *Summary) error) *Summary {
	t.Helper()
	for len(parts) > 1 {
		var next []*Summary
		for i := 0; i+1 < len(parts); i += 2 {
			if err := merge(parts[i], parts[i+1]); err != nil {
				t.Fatal(err)
			}
			next = append(next, parts[i])
		}
		if len(parts)%2 == 1 {
			next = append(next, parts[len(parts)-1])
		}
		parts = next
	}
	return parts[0]
}

// The mergeability theorem (PODS'12 Thm 2.2): after merging summaries
// of arbitrary partitions in a tree, the merged summary obeys the same
// bound n/(k+1) as a single-site summary, for every partitioning
// scheme and both merge algorithms.
func TestMergeTreePreservesBound(t *testing.T) {
	const n = 120000
	const k = 24
	stream := gen.NewZipf(3000, 1.2, 99).Stream(n)
	truth := exact.FreqOf(stream)

	partitionings := map[string][][]core.Item{
		"contiguous": gen.PartitionContiguous(stream, 16),
		"roundrobin": gen.PartitionRoundRobin(stream, 16),
		"random":     gen.PartitionRandomSizes(stream, 16, 5),
		"byhash":     gen.PartitionByHash(stream, 16, func(x core.Item) uint64 { return uint64(x) * 2654435761 }),
	}
	merges := map[string]func(a, b *Summary) error{
		"pods":     (*Summary).Merge,
		"lowerror": (*Summary).MergeLowError,
	}
	for pname, parts := range partitionings {
		for mname, mfn := range merges {
			summaries := make([]*Summary, len(parts))
			for i, p := range parts {
				summaries[i] = New(k)
				for _, x := range p {
					summaries[i].Update(x, 1)
				}
			}
			m := mergeTree(t, summaries, mfn)
			if m.N() != n {
				t.Fatalf("%s/%s: N=%d, want %d", pname, mname, m.N(), n)
			}
			bound := core.MGBound(n, k)
			if m.ErrorBound() > bound {
				t.Errorf("%s/%s: ErrorBound %d > %d", pname, mname, m.ErrorBound(), bound)
			}
			if m.Len() > k {
				t.Errorf("%s/%s: size %d > k", pname, mname, m.Len())
			}
			for _, c := range truth.Counters() {
				e := m.Estimate(c.Item)
				if e.Value > c.Count {
					t.Fatalf("%s/%s: overestimate of %d: %d > %d", pname, mname, c.Item, e.Value, c.Count)
				}
				if c.Count-e.Value > bound {
					t.Fatalf("%s/%s: undercount of %d beyond bound: est %d true %d bound %d",
						pname, mname, c.Item, e.Value, c.Count, bound)
				}
			}
		}
	}
}

// Sequential (one-way) merging must agree with the tree bound too:
// mergeability means *any* shape.
func TestSequentialMergePreservesBound(t *testing.T) {
	const n = 60000
	const k = 16
	stream := gen.NewZipf(2000, 1.5, 3).Stream(n)
	parts := gen.PartitionContiguous(stream, 30)
	acc := New(k)
	for _, p := range parts {
		s := New(k)
		for _, x := range p {
			s.Update(x, 1)
		}
		if err := acc.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	if acc.ErrorBound() > core.MGBound(n, k) {
		t.Errorf("ErrorBound %d > %d", acc.ErrorBound(), core.MGBound(n, k))
	}
	truth := exact.FreqOf(stream)
	for _, c := range truth.Counters()[:10] {
		e := acc.Estimate(c.Item)
		if !e.Contains(c.Count) {
			t.Errorf("interval %v misses %d for item %d", e, c.Count, c.Item)
		}
	}
}

func TestMergeWithEmpty(t *testing.T) {
	a := New(4)
	a.Update(1, 7)
	empty := New(4)
	if err := a.Merge(empty); err != nil {
		t.Fatal(err)
	}
	if a.N() != 7 || a.Estimate(1).Value != 7 || a.ErrorBound() != 0 {
		t.Fatal("merge with empty changed state")
	}
	if err := empty.MergeLowError(a); err != nil {
		t.Fatal(err)
	}
	if empty.N() != 7 || empty.Estimate(1).Value != 7 {
		t.Fatal("merge into empty lost state")
	}
}

func TestCombinedCounters(t *testing.T) {
	a := mustFrom(t, 3, []core.Counter{{Item: 1, Count: 5}, {Item: 2, Count: 3}})
	b := mustFrom(t, 3, []core.Counter{{Item: 2, Count: 4}, {Item: 3, Count: 1}})
	got := CombinedCounters(a, b)
	want := []core.Counter{{Item: 3, Count: 1}, {Item: 1, Count: 5}, {Item: 2, Count: 7}}
	if len(got) != len(want) {
		t.Fatalf("combined = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("combined = %v, want %v", got, want)
		}
	}
}

func TestDroppedMergeError(t *testing.T) {
	s1 := mustFrom(t, 4, []core.Counter{{Item: 2, Count: 4}, {Item: 3, Count: 11}, {Item: 4, Count: 22}, {Item: 5, Count: 33}})
	s2 := mustFrom(t, 4, []core.Counter{{Item: 7, Count: 10}, {Item: 8, Count: 20}, {Item: 9, Count: 30}, {Item: 10, Count: 40}})
	combined := CombinedCounters(s1, s2)
	m, err := Merged(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	// Items 2,7,3,8 are dropped: 4+10+11+20 = 45.
	if got := DroppedMergeError(combined, m); got != 45 {
		t.Errorf("DroppedMergeError = %d, want 45", got)
	}
}
