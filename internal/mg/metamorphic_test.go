package mg

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/mergetree"
)

// Property: the stream guarantee is independent of merge order. The
// same partitioned stream folded sequentially, as a binary tree, in
// random order, and concurrently must yield a summary within the
// single-stream bound — the PODS'12 mergeability definition itself.
func TestMetamorphicMergeOrder(t *testing.T) {
	f := func(raw []byte, kRaw, partsRaw uint8, lowError bool) bool {
		k := int(kRaw%8) + 2
		nParts := int(partsRaw%6) + 2
		parts := make([]*Summary, nParts)
		for i := range parts {
			parts[i] = New(k)
		}
		truth := exact.NewFreqTable()
		for i, u := range buildStream(raw) {
			parts[i%nParts].Update(u.Item, u.Count)
			truth.Add(u.Item, u.Count)
		}
		merge := func(dst, src *Summary) error { return dst.Merge(src) }
		if lowError {
			merge = func(dst, src *Summary) error { return dst.MergeLowError(src) }
		}
		err := mergetree.Metamorphic(parts, (*Summary).Clone, merge,
			func(topology string, m *Summary) error {
				if m.N() != truth.N() {
					return fmt.Errorf("n=%d, want %d", m.N(), truth.N())
				}
				if m.Len() > k {
					return fmt.Errorf("%d counters exceed k=%d", m.Len(), k)
				}
				if bound := core.MGBound(m.N(), k); m.ErrorBound() > bound {
					return fmt.Errorf("error bound %d exceeds n/(k+1)=%d", m.ErrorBound(), bound)
				}
				for _, c := range truth.Counters() {
					e := m.Estimate(c.Item)
					if e.Value > c.Count || !e.Contains(c.Count) {
						return fmt.Errorf("estimate %v misses truth %d for item %d", e, c.Count, c.Item)
					}
				}
				return nil
			})
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
