package mg

import (
	"repro/internal/core"
)

// MergeMany combines any number of summaries in a single step: all
// counters are added pointwise and exactly one prune runs at the end.
// The result satisfies the same bound as pairwise merging — the prune
// argument charges every subtracted unit to k+1 removed occurrences,
// independent of how many summaries were combined — but the *total*
// error is usually lower than a pairwise chain's because intermediate
// prunes never happen. Experiment E04 quantifies the gap.
//
// All summaries must share k. The inputs are not modified.
func MergeMany(summaries []*Summary) (*Summary, error) {
	if len(summaries) == 0 {
		return nil, core.ErrNilSummary
	}
	k := summaries[0].k
	total := 0
	for _, s := range summaries {
		if s == nil {
			return nil, core.ErrNilSummary
		}
		if s.k != k {
			return nil, core.ErrMismatchedK
		}
		total += s.live
	}
	// Size the accumulator table once for the full transient footprint
	// (up to Σ live counters stay live until the single final prune).
	out := newSized(k, total)
	for _, s := range summaries {
		for i, c := range s.counts {
			if c != 0 {
				out.add(core.Item(s.keys[i]), c)
			}
		}
		out.n += s.n
		out.dec += s.dec
	}
	out.prune()
	return out, nil
}
