package mg

import (
	"testing"

	"repro/internal/gen"
)

// FuzzUnmarshal: no byte sequence may panic the decoder, and anything
// it accepts must re-marshal cleanly.
func FuzzUnmarshal(f *testing.F) {
	s := New(8)
	for _, x := range gen.NewZipf(50, 1.2, 1).Stream(500) {
		s.Update(x, 1)
	}
	seed, _ := s.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Summary
		if err := out.UnmarshalBinary(data); err != nil {
			return
		}
		if _, err := out.MarshalBinary(); err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
	})
}
