package mg

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
)

// Golden test from §5.1.2 of the supplied text: the low-total-error
// merge of the same two Frequent summaries must produce exactly the
// closed-form output, with total error 55 (vs. 80 for the PODS merge).
func TestMergeLowErrorGoldenExample(t *testing.T) {
	s1 := mustFrom(t, 4, []core.Counter{{Item: 2, Count: 4}, {Item: 3, Count: 11}, {Item: 4, Count: 22}, {Item: 5, Count: 33}})
	s2 := mustFrom(t, 4, []core.Counter{{Item: 7, Count: 10}, {Item: 8, Count: 20}, {Item: 9, Count: 30}, {Item: 10, Count: 40}})
	combined := CombinedCounters(s1, s2)

	m, err := MergedLowError(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[core.Item]uint64{4: 2, 9: 14, 5: 23, 10: 31}
	if m.Len() != len(want) {
		t.Fatalf("merged has %d counters: %v", m.Len(), m.Counters())
	}
	for item, count := range want {
		if got := m.Estimate(item).Value; got != count {
			t.Errorf("merged[%d] = %d, want %d", item, got, count)
		}
	}
	if te := TotalMergeError(combined, m); te != 55 {
		t.Errorf("total error = %d, want 55", te)
	}

	// And the text's headline claim on this example: 55 < 80.
	pods, err := Merged(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if TotalMergeError(combined, m) >= TotalMergeError(combined, pods) {
		t.Error("low-error merge not better than PODS merge on the worked example")
	}
}

// The §4.2 equivalence theorem: MergeLowError equals an actual
// Misra–Gries run over the combined counters processed in ascending
// order with aggregated (weighted) updates.
func replayMG(k int, combined []core.Counter) *Summary {
	s := New(k)
	for _, c := range combined {
		if c.Count > 0 {
			s.Update(c.Item, c.Count)
		}
	}
	return s
}

func sameCounters(a, b *Summary) bool {
	ca, cb := a.Counters(), b.Counters()
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

func TestMergeLowErrorEqualsReplay(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 8, 16} {
		for seed := uint64(0); seed < 20; seed++ {
			rng := gen.NewRNG(seed*1000 + uint64(k))
			mk := func(itemBase int) *Summary {
				s := New(k)
				cnt := rng.Intn(k + 1)
				for i := 0; i < cnt; i++ {
					c := uint64(rng.Intn(100) + 1)
					s.add(core.Item(itemBase+i), c)
					s.n += c
				}
				return s
			}
			a, b := mk(0), mk(1000+rng.Intn(k+1)) // supports may or may not overlap
			combined := CombinedCounters(a, b)
			m, err := MergedLowError(a, b)
			if err != nil {
				t.Fatal(err)
			}
			want := replayMG(k, combined)
			if !sameCounters(m, want) {
				t.Fatalf("k=%d seed=%d: closed form %v != replay %v (combined %v)",
					k, seed, m.Counters(), want.Counters(), combined)
			}
		}
	}
}

// The text's Lemma 4.3: the low-error merge's total error never
// exceeds the PODS'12 merge's total error, on any pair of summaries.
func TestLowErrorNeverWorse(t *testing.T) {
	f := func(counts1, counts2 []uint16, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		build := func(counts []uint16, base int) *Summary {
			s := New(k)
			for i, c := range counts {
				if i >= k {
					break
				}
				if c == 0 {
					continue
				}
				s.add(core.Item(base+i), uint64(c))
				s.n += uint64(c)
			}
			return s
		}
		a := build(counts1, 0)
		b := build(counts2, 500)
		combined := CombinedCounters(a, b)
		lo, err1 := MergedLowError(a, b)
		po, err2 := Merged(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return TotalMergeError(combined, lo) <= TotalMergeError(combined, po)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Overlapping supports: both algorithms must add counts for shared
// items before pruning.
func TestMergeLowErrorOverlap(t *testing.T) {
	a := mustFrom(t, 3, []core.Counter{{Item: 1, Count: 10}, {Item: 2, Count: 6}, {Item: 3, Count: 2}})
	b := mustFrom(t, 3, []core.Counter{{Item: 1, Count: 4}, {Item: 4, Count: 8}, {Item: 5, Count: 1}})
	m, err := MergedLowError(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// combined ascending: (5,1) (3,2) (2,6) (4,8) (1,14); padded to 6:
	// [0 1 2 6 8 14]; c=3, base=C_3=2.
	// j=1: e=C_4=(2,6)  f=6-2=4
	// j=2: e=C_5=(4,8)  f=8-2+0=6
	// j=3: e=C_6=(1,14) f=14-2+1=13
	want := map[core.Item]uint64{2: 4, 4: 6, 1: 13}
	for item, count := range want {
		if got := m.Estimate(item).Value; got != count {
			t.Errorf("merged[%d] = %d, want %d", item, got, count)
		}
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d, want 3", m.Len())
	}
	// Cross-check against replay.
	if want := replayMG(3, CombinedCounters(a, b)); !sameCounters(m, want) {
		t.Errorf("closed form %v != replay %v", m.Counters(), want.Counters())
	}
}

func TestMergeLowErrorMismatched(t *testing.T) {
	a, b := New(4), New(8)
	if err := a.MergeLowError(b); err == nil {
		t.Fatal("mismatched k accepted")
	}
	if err := a.MergeLowError(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

// Zero-frequency closed-form outputs must be dropped, not stored.
func TestMergeLowErrorDropsZeros(t *testing.T) {
	// Two summaries with identical counter values produce f_1 = 0 when
	// C_{c+1} == C_c.
	a := mustFrom(t, 2, []core.Counter{{Item: 1, Count: 5}, {Item: 2, Count: 5}})
	b := mustFrom(t, 2, []core.Counter{{Item: 3, Count: 5}, {Item: 4, Count: 5}})
	m, err := MergedLowError(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Counters() {
		if c.Count == 0 {
			t.Fatalf("zero counter stored: %v", m.Counters())
		}
	}
	if want := replayMG(2, CombinedCounters(a, b)); !sameCounters(m, want) {
		t.Errorf("closed form %v != replay %v", m.Counters(), want.Counters())
	}
}
