// Package mg implements the Misra–Gries (a.k.a. Frequent) heavy-hitter
// summary and its merge operations.
//
// A Summary with k counters processes a stream of total weight n and
// guarantees, for every item x with true frequency f(x):
//
//	f(x) − n/(k+1) ≤ Estimate(x) ≤ f(x)
//
// i.e. MG never overestimates and undercounts by at most n/(k+1). The
// PODS'12 result reproduced here (Theorem 2.2 of Agarwal, Cormode,
// Huang, Phillips, Wei, Yi, "Mergeable Summaries") is that this summary
// is fully mergeable: Merge preserves both the size k and the error
// bound (n1+n2)/(k+1) under arbitrary merge trees.
//
// Two merge algorithms are provided:
//
//   - Merge: the PODS'12 algorithm — add counters pointwise, then prune
//     back to k counters by subtracting the (k+1)-th largest count.
//   - MergeLowError: the low-total-error variant (Algorithm 2 of the
//     supplied follow-up text by Cafaro, Tempesta and Pulimeno), which
//     produces exactly the summary an MG run over the combined counters
//     would produce, via closed-form equations. Same bound, same O(k)
//     cost, strictly smaller total error except in degenerate cases.
package mg

import (
	"fmt"

	"repro/internal/core"
)

// Summary is a Misra–Gries summary. The zero value is not usable; use
// New. Summaries are not safe for concurrent use.
type Summary struct {
	k        int
	n        uint64
	counters map[core.Item]uint64
	// dec is the cumulative undercount bound: the total amount that
	// pruning has subtracted along any single counter's history. The
	// MG invariant is dec ≤ n/(k+1).
	dec uint64
	// pruneBuf is scratch for prune's count selection, reused across
	// prunes so the hot ingestion path stays allocation-free.
	pruneBuf []uint64
}

// New returns an empty summary with capacity k >= 1 counters.
func New(k int) *Summary {
	if k < 1 {
		panic("mg: k must be >= 1")
	}
	return &Summary{k: k, counters: make(map[core.Item]uint64, k+1)}
}

// NewEpsilon returns a summary sized for frequency error at most eps*n,
// i.e. k = ceil(1/eps) - 1 counters (bound n/(k+1) <= eps*n).
func NewEpsilon(eps float64) *Summary {
	if eps <= 0 || eps >= 1 {
		panic("mg: eps must be in (0, 1)")
	}
	k := int(1/eps+0.9999999) - 1
	if k < 1 {
		k = 1
	}
	return New(k)
}

// FromCounters reconstructs a summary from explicit counters, as used
// by the codec and by tests that replay the paper's worked examples.
// n is the total summarized weight and dec the accumulated undercount
// bound. It returns an error if the counters exceed k, repeat an item,
// or contain a zero count.
func FromCounters(k int, n, dec uint64, cs []core.Counter) (*Summary, error) {
	if k < 1 {
		return nil, fmt.Errorf("mg: k must be >= 1, have %d", k)
	}
	if len(cs) > k {
		return nil, fmt.Errorf("mg: %d counters exceed k=%d", len(cs), k)
	}
	s := New(k)
	s.n = n
	s.dec = dec
	for _, c := range cs {
		if c.Count == 0 {
			return nil, fmt.Errorf("mg: zero count for item %d", c.Item)
		}
		if _, dup := s.counters[c.Item]; dup {
			return nil, fmt.Errorf("mg: duplicate item %d", c.Item)
		}
		s.counters[c.Item] = c.Count
	}
	return s, nil
}

// K returns the counter capacity.
func (s *Summary) K() int { return s.k }

// N returns the total weight summarized, including merged-in weight.
func (s *Summary) N() uint64 { return s.n }

// Len returns the number of monitored items (<= K).
func (s *Summary) Len() int { return len(s.counters) }

// ErrorBound returns the realized undercount bound: for every item,
// f(x) − Estimate(x).Value <= ErrorBound(). It is always <= n/(k+1).
func (s *Summary) ErrorBound() uint64 { return s.dec }

// Update adds w >= 1 occurrences of x.
func (s *Summary) Update(x core.Item, w uint64) {
	if w == 0 {
		panic("mg: zero-weight update")
	}
	s.n += w
	s.counters[x] += w
	if len(s.counters) > s.k {
		s.prune()
	}
	debugAssertSampled(s)
}

// prune restores len(counters) <= k by subtracting the (k+1)-th largest
// count from every counter and discarding non-positive ones — the
// PODS'12 reduction. It increases dec by the subtracted amount.
func (s *Summary) prune() {
	m := len(s.counters)
	if m <= s.k {
		return
	}
	// The (k+1)-th largest is the (m-k)-th smallest.
	vals := s.pruneBuf[:0]
	for _, v := range s.counters {
		vals = append(vals, v)
	}
	s.pruneBuf = vals
	cut := selectKth(vals, m-s.k-1)
	for x, v := range s.counters {
		if v <= cut {
			delete(s.counters, x)
		} else {
			s.counters[x] = v - cut
		}
	}
	s.dec += cut
}

// Estimate answers a point query. For monitored items the interval is
// [count, count+dec]; for unmonitored items it is [0, dec].
func (s *Summary) Estimate(x core.Item) core.Estimate {
	c := s.counters[x]
	return core.Estimate{Value: c, Lower: c, Upper: c + s.dec}
}

// Counters returns the monitored (item, count) pairs in ascending count
// order (ties by item). The slice is freshly allocated.
func (s *Summary) Counters() []core.Counter {
	out := make([]core.Counter, 0, len(s.counters))
	for x, v := range s.counters {
		out = append(out, core.Counter{Item: x, Count: v})
	}
	core.SortCountersAsc(out)
	return out
}

// HeavyHitters returns every monitored item whose estimate interval
// can reach threshold, i.e. all candidates with count+dec >= threshold,
// in descending count order. By the MG guarantee this includes every
// item with true frequency >= threshold.
func (s *Summary) HeavyHitters(threshold uint64) []core.Counter {
	var out []core.Counter
	for x, v := range s.counters {
		if v+s.dec >= threshold {
			out = append(out, core.Counter{Item: x, Count: v})
		}
	}
	core.SortCountersDesc(out)
	return out
}

// Clone returns a deep copy.
func (s *Summary) Clone() *Summary {
	c := New(s.k)
	c.n = s.n
	c.dec = s.dec
	for x, v := range s.counters {
		c.counters[x] = v
	}
	return c
}

// Reset restores the summary to its freshly-constructed state.
func (s *Summary) Reset() {
	s.n = 0
	s.dec = 0
	clear(s.counters)
}

var _ core.CounterSummary = (*Summary)(nil)
