// Package mg implements the Misra–Gries (a.k.a. Frequent) heavy-hitter
// summary and its merge operations.
//
// A Summary with k counters processes a stream of total weight n and
// guarantees, for every item x with true frequency f(x):
//
//	f(x) − n/(k+1) ≤ Estimate(x) ≤ f(x)
//
// i.e. MG never overestimates and undercounts by at most n/(k+1). The
// PODS'12 result reproduced here (Theorem 2.2 of Agarwal, Cormode,
// Huang, Phillips, Wei, Yi, "Mergeable Summaries") is that this summary
// is fully mergeable: Merge preserves both the size k and the error
// bound (n1+n2)/(k+1) under arbitrary merge trees.
//
// Two merge algorithms are provided:
//
//   - Merge: the PODS'12 algorithm — add counters pointwise, then prune
//     back to k counters by subtracting the (k+1)-th largest count.
//   - MergeLowError: the low-total-error variant (Algorithm 2 of the
//     supplied follow-up text by Cafaro, Tempesta and Pulimeno), which
//     produces exactly the summary an MG run over the combined counters
//     would produce, via closed-form equations. Same bound, same O(k)
//     cost, strictly smaller total error except in degenerate cases.
//
// The counter store is a flat open-addressed hash table in
// structure-of-arrays layout (keys and counts are two views of a single
// contiguous backing slice), so the ingestion hot path walks dense
// cache lines instead of chasing map buckets — the high-performance
// frequent-items layout of Anderson et al. (see PAPERS.md). Counts
// double as occupancy: a slot with count 0 is empty, which the MG
// invariant (monitored counts are strictly positive) makes safe.
package mg

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
)

// fibMul is the 64-bit Fibonacci hashing multiplier (the odd integer
// nearest 2^64/φ); taking the high bits of key*fibMul spreads dense and
// strided item spaces evenly across power-of-two tables.
const fibMul = 0x9E3779B97F4A7C15

// tableSizeFor returns the power-of-two slot count for a table that
// must hold occ live counters at load factor <= 5/8.
func tableSizeFor(occ int) int {
	need := occ*8/5 + 1
	if need < 16 {
		need = 16
	}
	return 1 << bits.Len(uint(need-1))
}

// maxOcc is the table occupancy high-water mark for a summary with k
// counters: the batch path defers pruning until k+pruneSlack(k) = 2k
// counters are live, and the prune itself triggers one insert past the
// limit.
func maxOcc(k int) int { return 2*k + 2 }

// Summary is a Misra–Gries summary. The zero value is not usable; use
// New. Summaries are not safe for concurrent use.
type Summary struct {
	k int
	n uint64
	// dec is the cumulative undercount bound: the total amount that
	// pruning has subtracted along any single counter's history. The
	// MG invariant is dec ≤ n/(k+1).
	dec uint64

	// Open-addressed counter table. keys and counts are equal-length
	// views of one backing allocation; counts[i] == 0 marks slot i
	// empty. live is the number of occupied slots, mask = len-1 and
	// shift = 64-log2(len) serve the Fibonacci probe sequence.
	keys   []uint64
	counts []uint64
	live   int
	mask   uint64
	shift  uint
	growAt int

	// pruneBuf is scratch for prune's count selection; scratchK and
	// scratchC stage prune survivors during table rebuilds. All are
	// reused across prunes so the hot ingestion path stays
	// allocation-free.
	pruneBuf []uint64
	scratchK []uint64
	scratchC []uint64
}

// New returns an empty summary with capacity k >= 1 counters. The
// counter table is sized eagerly for the batch path's full deferred-
// prune footprint (up to 2k live counters) unless k is very large, in
// which case it starts small and grows on demand.
func New(k int) *Summary {
	if k < 1 {
		panic("mg: k must be >= 1")
	}
	s := &Summary{k: k}
	occ := maxOcc(k)
	if occ > 1<<12 {
		occ = 1 << 12
	}
	s.ensure(occ)
	return s
}

// newSized returns a summary whose table holds occ counters without
// growing; used by decode and merge paths that know their footprint.
func newSized(k, occ int) *Summary {
	if k < 1 {
		panic("mg: k must be >= 1")
	}
	s := &Summary{k: k}
	s.ensure(occ)
	return s
}

// ensure guarantees the table can hold occ live counters at the target
// load factor, rehashing into a larger table if needed.
func (s *Summary) ensure(occ int) {
	size := tableSizeFor(occ)
	if len(s.counts) >= size {
		return
	}
	oldKeys, oldCounts := s.keys, s.counts
	buf := make([]uint64, 2*size)
	s.keys = buf[:size:size]
	s.counts = buf[size:]
	s.mask = uint64(size - 1)
	s.shift = uint(64 - bits.TrailingZeros(uint(size)))
	s.growAt = size/2 + size/8
	s.live = 0
	for i, c := range oldCounts {
		if c != 0 {
			s.insertFresh(oldKeys[i], c)
		}
	}
}

// insertFresh inserts a key known to be absent from the table. The
// caller has already sized the table for the new occupancy.
func (s *Summary) insertFresh(key, count uint64) {
	i := (key * fibMul) >> s.shift
	for s.counts[i] != 0 {
		i = (i + 1) & s.mask
	}
	s.keys[i] = key
	s.counts[i] = count
	s.live++
}

// add adds w to x's counter, inserting it if absent. The table grows
// before an insert would exceed the load limit; lookups of present
// keys never trigger growth, so iterating one summary while adding
// into another (or itself) is safe as long as no new keys appear.
func (s *Summary) add(x core.Item, w uint64) {
	key := uint64(x)
	i := (key * fibMul) >> s.shift
	for {
		c := s.counts[i]
		if c == 0 {
			if s.live >= s.growAt {
				s.ensure(len(s.counts)) // tableSizeFor(size) = 2*size: force a doubling
				s.insertFresh(key, w)
				return
			}
			s.keys[i] = key
			s.counts[i] = w
			s.live++
			return
		}
		if s.keys[i] == key {
			s.counts[i] = c + w
			return
		}
		i = (i + 1) & s.mask
	}
}

// get returns x's counter, or 0 if x is not monitored.
func (s *Summary) get(x core.Item) uint64 {
	if s.live == 0 {
		return 0
	}
	key := uint64(x)
	i := (key * fibMul) >> s.shift
	for {
		c := s.counts[i]
		if c == 0 {
			return 0
		}
		if s.keys[i] == key {
			return c
		}
		i = (i + 1) & s.mask
	}
}

// forEach calls f for every monitored (item, count) pair in table slot
// order. f must not insert into the table.
func (s *Summary) forEach(f func(x core.Item, c uint64)) {
	for i, c := range s.counts {
		if c != 0 {
			f(core.Item(s.keys[i]), c)
		}
	}
}

// clearTable empties the counter table without shrinking it.
func (s *Summary) clearTable() {
	clear(s.counts)
	s.live = 0
}

// NewEpsilon returns a summary sized for frequency error at most eps*n,
// i.e. k = ceil(1/eps) - 1 counters (bound n/(k+1) <= eps*n).
func NewEpsilon(eps float64) *Summary {
	if eps <= 0 || eps >= 1 {
		panic("mg: eps must be in (0, 1)")
	}
	k := int(1/eps+0.9999999) - 1
	if k < 1 {
		k = 1
	}
	return New(k)
}

// FromCounters reconstructs a summary from explicit counters, as used
// by the codec and by tests that replay the paper's worked examples.
// n is the total summarized weight and dec the accumulated undercount
// bound. It returns an error if the counters exceed k, repeat an item,
// or contain a zero count. The table is sized for the given counters
// (not k), so decoding a frame allocates in proportion to the payload.
func FromCounters(k int, n, dec uint64, cs []core.Counter) (*Summary, error) {
	if k < 1 {
		return nil, fmt.Errorf("mg: k must be >= 1, have %d", k)
	}
	if len(cs) > k {
		return nil, fmt.Errorf("mg: %d counters exceed k=%d", len(cs), k)
	}
	s := newSized(k, len(cs))
	s.n = n
	s.dec = dec
	for _, c := range cs {
		if c.Count == 0 {
			return nil, fmt.Errorf("mg: zero count for item %d", c.Item)
		}
		if s.get(c.Item) != 0 {
			return nil, fmt.Errorf("mg: duplicate item %d", c.Item)
		}
		s.insertFresh(uint64(c.Item), c.Count)
	}
	return s, nil
}

// K returns the counter capacity.
func (s *Summary) K() int { return s.k }

// N returns the total weight summarized, including merged-in weight.
func (s *Summary) N() uint64 { return s.n }

// Len returns the number of monitored items (<= K).
func (s *Summary) Len() int { return s.live }

// ErrorBound returns the realized undercount bound: for every item,
// f(x) − Estimate(x).Value <= ErrorBound(). It is always <= n/(k+1).
func (s *Summary) ErrorBound() uint64 { return s.dec }

// Update adds w >= 1 occurrences of x.
func (s *Summary) Update(x core.Item, w uint64) {
	if w == 0 {
		panic("mg: zero-weight update")
	}
	s.n += w
	s.add(x, w)
	if s.live > s.k {
		s.prune()
	}
	debugAssertSampled(s)
}

// prune restores live <= k by subtracting the (k+1)-th largest count
// from every counter and discarding non-positive ones — the PODS'12
// reduction. It increases dec by the subtracted amount. Survivors are
// staged in scratch and reinserted, so the table stays densely probed
// with no tombstones.
func (s *Summary) prune() {
	m := s.live
	if m <= s.k {
		return
	}
	// The (k+1)-th largest is the (m-k)-th smallest.
	vals := s.pruneBuf[:0]
	for _, c := range s.counts {
		if c != 0 {
			vals = append(vals, c)
		}
	}
	s.pruneBuf = vals
	cut := selectKth(vals, m-s.k-1)
	sk, sc := s.scratchK[:0], s.scratchC[:0]
	for i, c := range s.counts {
		if c > cut {
			sk = append(sk, s.keys[i])
			sc = append(sc, c-cut)
		}
		s.counts[i] = 0
	}
	s.scratchK, s.scratchC = sk, sc
	s.live = 0
	for j, key := range sk {
		s.insertFresh(key, sc[j])
	}
	s.dec += cut
}

// Estimate answers a point query. For monitored items the interval is
// [count, count+dec]; for unmonitored items it is [0, dec].
func (s *Summary) Estimate(x core.Item) core.Estimate {
	c := s.get(x)
	return core.Estimate{Value: c, Lower: c, Upper: c + s.dec}
}

// Counters returns the monitored (item, count) pairs in ascending count
// order (ties by item). The slice is freshly allocated.
func (s *Summary) Counters() []core.Counter {
	out := make([]core.Counter, 0, s.live)
	for i, c := range s.counts {
		if c != 0 {
			out = append(out, core.Counter{Item: core.Item(s.keys[i]), Count: c})
		}
	}
	core.SortCountersAsc(out)
	return out
}

// HeavyHitters returns every monitored item whose estimate interval
// can reach threshold, i.e. all candidates with count+dec >= threshold,
// in descending count order. By the MG guarantee this includes every
// item with true frequency >= threshold.
func (s *Summary) HeavyHitters(threshold uint64) []core.Counter {
	var out []core.Counter
	for i, c := range s.counts {
		if c != 0 && c+s.dec >= threshold {
			out = append(out, core.Counter{Item: core.Item(s.keys[i]), Count: c})
		}
	}
	core.SortCountersDesc(out)
	return out
}

// Clone returns a deep copy.
func (s *Summary) Clone() *Summary {
	c := newSized(s.k, s.live)
	c.n = s.n
	c.dec = s.dec
	for i, v := range s.counts {
		if v != 0 {
			c.insertFresh(s.keys[i], v)
		}
	}
	return c
}

// Reset restores the summary to its freshly-constructed state.
func (s *Summary) Reset() {
	s.n = 0
	s.dec = 0
	s.clearTable()
}

var _ core.CounterSummary = (*Summary)(nil)
