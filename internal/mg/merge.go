package mg

import (
	"repro/internal/core"
	"repro/internal/registry"
)

// Merge folds other into s using the PODS'12 algorithm (Agarwal et al.,
// §2): counters are added pointwise, and if more than k counters remain
// the (k+1)-th largest count is subtracted from all of them, keeping
// only the strictly positive ones. The error bound of the result is at
// most (s.n + other.n)/(k+1) — the same ε as the inputs (Theorem 2.2).
//
// other is not modified. Merging summaries with different k fails.
func (s *Summary) Merge(other *Summary) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if s.k != other.k {
		return core.ErrMismatchedK
	}
	s.ensure(s.live + other.live)
	for i, c := range other.counts {
		if c != 0 {
			s.add(core.Item(other.keys[i]), c)
		}
	}
	s.n += other.n
	s.dec += other.dec
	s.prune()
	debugAssert(s)
	return nil
}

// Merged returns the PODS'12 merge of a and b without modifying either.
func Merged(a, b *Summary) (*Summary, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// combineAccumulator borrows a summary to accumulate pointwise counter
// sums into, drawn from the family's registry scratch pool (the same
// sync.Pool the server's decode path recycles summaries through) so
// repeated merge experiments do not allocate a fresh table each time.
// release returns it to the pool.
func combineAccumulator(occ int) (acc *Summary, release func()) {
	if ent, ok := registry.ByName("mg"); ok {
		if pooled, ok := ent.GetScratch().(*Summary); ok {
			pooled.k = 1 // accumulator never prunes; k is irrelevant
			pooled.Reset()
			pooled.ensure(occ)
			return pooled, func() { ent.PutScratch(pooled) }
		}
	}
	return newSized(1, occ), func() {}
}

// CombinedCounters returns the exact pointwise sum of the two
// summaries' counters in ascending order — the intermediate multiset S
// both merge algorithms start from. Exposed for the total-error
// experiments, which compare each merge's output against it. The
// accumulation runs in a pooled scratch table; only the returned slice
// is allocated.
func CombinedCounters(a, b *Summary) []core.Counter {
	acc, release := combineAccumulator(a.live + b.live)
	defer release()
	for i, c := range a.counts {
		if c != 0 {
			acc.add(core.Item(a.keys[i]), c)
		}
	}
	for i, c := range b.counts {
		if c != 0 {
			acc.add(core.Item(b.keys[i]), c)
		}
	}
	return acc.Counters()
}

// TotalMergeError measures the total error a merge committed relative
// to the combined (pre-prune) summary: the sum over the merged
// summary's monitored items of combined(x) − merged(x). This is the
// E_T metric of the supplied follow-up text (its §5 examples), which
// both its algorithms and the PODS'12 algorithm are scored by.
func TotalMergeError(combined []core.Counter, merged *Summary) uint64 {
	var te uint64
	for _, c := range combined {
		if got := merged.get(c.Item); got != 0 {
			if got > c.Count {
				// A merge must never raise a count above the combined
				// value; flag it loudly in experiments.
				panic("mg: merged count exceeds combined count")
			}
			te += c.Count - got
		}
	}
	return te
}

// DroppedMergeError complements TotalMergeError: the combined weight of
// items the merge dropped entirely.
func DroppedMergeError(combined []core.Counter, merged *Summary) uint64 {
	var te uint64
	for _, c := range combined {
		if merged.get(c.Item) == 0 {
			te += c.Count
		}
	}
	return te
}
