package mg

import (
	"repro/internal/core"
)

// Merge folds other into s using the PODS'12 algorithm (Agarwal et al.,
// §2): counters are added pointwise, and if more than k counters remain
// the (k+1)-th largest count is subtracted from all of them, keeping
// only the strictly positive ones. The error bound of the result is at
// most (s.n + other.n)/(k+1) — the same ε as the inputs (Theorem 2.2).
//
// other is not modified. Merging summaries with different k fails.
func (s *Summary) Merge(other *Summary) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if s.k != other.k {
		return core.ErrMismatchedK
	}
	for x, v := range other.counters {
		s.counters[x] += v
	}
	s.n += other.n
	s.dec += other.dec
	s.prune()
	debugAssert(s)
	return nil
}

// Merged returns the PODS'12 merge of a and b without modifying either.
func Merged(a, b *Summary) (*Summary, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// CombinedCounters returns the exact pointwise sum of the two
// summaries' counters in ascending order — the intermediate multiset S
// both merge algorithms start from. Exposed for the total-error
// experiments, which compare each merge's output against it.
func CombinedCounters(a, b *Summary) []core.Counter {
	m := make(map[core.Item]uint64, len(a.counters)+len(b.counters))
	for x, v := range a.counters {
		m[x] += v
	}
	for x, v := range b.counters {
		m[x] += v
	}
	out := make([]core.Counter, 0, len(m))
	for x, v := range m {
		out = append(out, core.Counter{Item: x, Count: v})
	}
	core.SortCountersAsc(out)
	return out
}

// TotalMergeError measures the total error a merge committed relative
// to the combined (pre-prune) summary: the sum over the merged
// summary's monitored items of combined(x) − merged(x). This is the
// E_T metric of the supplied follow-up text (its §5 examples), which
// both its algorithms and the PODS'12 algorithm are scored by.
func TotalMergeError(combined []core.Counter, merged *Summary) uint64 {
	var te uint64
	for _, c := range combined {
		if got, ok := merged.counters[c.Item]; ok {
			if got > c.Count {
				// A merge must never raise a count above the combined
				// value; flag it loudly in experiments.
				panic("mg: merged count exceeds combined count")
			}
			te += c.Count - got
		}
	}
	return te
}

// DroppedMergeError complements TotalMergeError: the combined weight of
// items the merge dropped entirely.
func DroppedMergeError(combined []core.Counter, merged *Summary) uint64 {
	var te uint64
	for _, c := range combined {
		if _, ok := merged.counters[c.Item]; !ok {
			te += c.Count
		}
	}
	return te
}
