package mg

import (
	"repro/internal/codec"
	"repro/internal/core"
)

// MarshalBinary encodes the summary in the library's framed wire
// format (see package codec). It implements encoding.BinaryMarshaler.
// The payload is built in a pooled, pre-sized buffer: steady-state
// encoding allocates only the returned frame.
func (s *Summary) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	// Worst-case uvarint sizing: header (k, n, dec, len) plus two
	// uvarints per counter.
	w.Grow(4*10 + s.live*2*10)
	w.Int(s.k)
	w.Uint64(s.n)
	w.Uint64(s.dec)
	cs := s.Counters()
	w.Int(len(cs))
	for _, c := range cs {
		w.Uint64(uint64(c.Item))
		w.Uint64(c.Count)
	}
	return codec.EncodeFrame(codec.KindMisraGries, w.Bytes()), nil
}

// UnmarshalBinary decodes a summary previously encoded with
// MarshalBinary, replacing the receiver's contents. It implements
// encoding.BinaryUnmarshaler.
func (s *Summary) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindMisraGries, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	k := r.Int()
	n := r.Uint64()
	dec := r.Uint64()
	m := r.ArrayLen(2)
	cs := make([]core.Counter, 0, m)
	for i := 0; i < m; i++ {
		item := core.Item(r.Uint64())
		count := r.Uint64()
		cs = append(cs, core.Counter{Item: item, Count: count})
	}
	if err := r.Finish(); err != nil {
		return err
	}
	dec2, err := FromCounters(k, n, dec, cs)
	if err != nil {
		return err
	}
	*s = *dec2
	return nil
}
