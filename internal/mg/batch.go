package mg

import "repro/internal/core"

// pruneSlack is the extra headroom the batch path allows the counter
// table before pruning: prune triggers at live > k+pruneSlack(k)
// instead of live > k. Deferred pruning is guarantee-preserving — every
// prune with m counters subtracts the (m−k)-th smallest count `cut`
// from the k surviving counters and deletes at least one counter worth
// `cut`, removing ≥ cut·(k+1) total mass per cut of dec, so dec ≤
// n/(k+1) still holds (the PODS'12 argument, which never uses m = k+1).
// The payoff is amortization: the per-item path pays an O(k log k)
// prune for every miss once the table is full; the batch path pays one
// prune per k misses.
func pruneSlack(k int) int {
	// Match the merge algorithm's transient footprint: at most 2k live
	// counters, pruned back to k.
	return k
}

// UpdateBatch adds one occurrence of every item in xs. It is
// guarantee-equivalent to calling Update(x, 1) for each x: same n, at
// most k counters afterwards, no overestimation, and undercount at
// most ErrorBound() ≤ n/(k+1). The summary state may differ from the
// per-item loop's because pruning is deferred across the batch (see
// pruneSlack).
//
//sketch:hotpath
func (s *Summary) UpdateBatch(xs []core.Item) {
	if len(xs) == 0 {
		return
	}
	limit := s.k + pruneSlack(s.k)
	s.ensure(limit + 1)
	keys, counts, mask, shift := s.keys, s.counts, s.mask, s.shift
	for _, x := range xs {
		// Inlined add(x, 1) against hoisted table views: the table
		// cannot grow mid-batch because prune keeps live <= limit+1
		// and ensure sized it for that.
		key := uint64(x)
		i := (key * fibMul) >> shift
		for {
			c := counts[i]
			if c == 0 {
				keys[i] = key
				counts[i] = 1
				s.live++
				break
			}
			if keys[i] == key {
				counts[i] = c + 1
				break
			}
			i = (i + 1) & mask
		}
		if s.live > limit {
			s.prune()
		}
	}
	s.n += uint64(len(xs))
	if s.live > s.k {
		s.prune()
	}
	debugAssert(s)
}

// UpdateBatchWeighted adds Count occurrences of every Item in ws, the
// weighted variant of UpdateBatch. All weights must be >= 1.
//
//sketch:hotpath
func (s *Summary) UpdateBatchWeighted(ws []core.Counter) {
	if len(ws) == 0 {
		return
	}
	limit := s.k + pruneSlack(s.k)
	s.ensure(limit + 1)
	keys, counts, mask, shift := s.keys, s.counts, s.mask, s.shift
	var total uint64
	for _, c := range ws {
		if c.Count == 0 {
			panic("mg: zero-weight update")
		}
		total += c.Count
		key := uint64(c.Item)
		i := (key * fibMul) >> shift
		for {
			cv := counts[i]
			if cv == 0 {
				keys[i] = key
				counts[i] = c.Count
				s.live++
				break
			}
			if keys[i] == key {
				counts[i] = cv + c.Count
				break
			}
			i = (i + 1) & mask
		}
		if s.live > limit {
			s.prune()
		}
	}
	s.n += total
	if s.live > s.k {
		s.prune()
	}
	debugAssert(s)
}
