package mg

import "repro/internal/core"

// pruneSlack is the extra headroom the batch path allows the counter
// map before pruning: prune triggers at len > k+pruneSlack(k) instead
// of len > k. Deferred pruning is guarantee-preserving — every prune
// with m counters subtracts the (m−k)-th smallest count `cut` from the
// k surviving counters and deletes at least one counter worth `cut`,
// removing ≥ cut·(k+1) total mass per cut of dec, so dec ≤ n/(k+1)
// still holds (the PODS'12 argument, which never uses m = k+1). The
// payoff is amortization: the per-item path pays an O(k log k) prune
// for every miss once the map is full; the batch path pays one prune
// per k misses.
func pruneSlack(k int) int {
	// Match the merge algorithm's transient footprint: at most 2k live
	// counters, pruned back to k.
	return k
}

// UpdateBatch adds one occurrence of every item in xs. It is
// guarantee-equivalent to calling Update(x, 1) for each x: same n, at
// most k counters afterwards, no overestimation, and undercount at
// most ErrorBound() ≤ n/(k+1). The summary state may differ from the
// per-item loop's because pruning is deferred across the batch (see
// pruneSlack).
//
//sketch:hotpath
func (s *Summary) UpdateBatch(xs []core.Item) {
	if len(xs) == 0 {
		return
	}
	limit := s.k + pruneSlack(s.k)
	for _, x := range xs {
		s.counters[x]++
		if len(s.counters) > limit {
			s.prune()
		}
	}
	s.n += uint64(len(xs))
	if len(s.counters) > s.k {
		s.prune()
	}
	debugAssert(s)
}

// UpdateBatchWeighted adds Count occurrences of every Item in ws, the
// weighted variant of UpdateBatch. All weights must be >= 1.
//
//sketch:hotpath
func (s *Summary) UpdateBatchWeighted(ws []core.Counter) {
	if len(ws) == 0 {
		return
	}
	limit := s.k + pruneSlack(s.k)
	var total uint64
	for _, c := range ws {
		if c.Count == 0 {
			panic("mg: zero-weight update")
		}
		total += c.Count
		s.counters[c.Item] += c.Count
		if len(s.counters) > limit {
			s.prune()
		}
	}
	s.n += total
	if len(s.counters) > s.k {
		s.prune()
	}
	debugAssert(s)
}
