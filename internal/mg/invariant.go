//go:build sanitize

package mg

import (
	"fmt"

	"repro/internal/core"
)

// sanitizeEnabled reports whether this build carries the runtime
// invariant layer (`go test -tags sanitize`). See DESIGN.md.
const sanitizeEnabled = true

// debugAssert panics if s violates the Misra–Gries structural
// invariants the PODS'12 mergeability proof rests on:
//
//   - at most k counters are monitored;
//   - every monitored count is positive;
//   - the monitored mass never exceeds the summarized weight n
//     (MG never overestimates);
//   - the undercount certificate dec never exceeds n/(k+1)
//     (Theorem 2.2's error bound, preserved by every merge order).
//
// It must be called only at points where the summary is quiescent —
// after an update, merge, or batch completes — not mid-batch, where
// deferred pruning intentionally lets the map overshoot k.
func debugAssert(s *Summary) {
	if s.live > s.k {
		panic(fmt.Sprintf("mg: sanitize: %d counters exceed k=%d", s.live, s.k))
	}
	var sum uint64
	live := 0
	for i, v := range s.counts {
		if v == 0 {
			continue
		}
		live++
		sum += v
		// The slot must be reachable by probing for its own key, or
		// lookups would silently duplicate the counter.
		if got := s.get(core.Item(s.keys[i])); got != v {
			panic(fmt.Sprintf("mg: sanitize: slot %d (item %d, count %d) unreachable by probe (get=%d)",
				i, s.keys[i], v, got))
		}
	}
	if live != s.live {
		panic(fmt.Sprintf("mg: sanitize: live=%d but %d occupied slots", s.live, live))
	}
	if sum > s.n {
		panic(fmt.Sprintf("mg: sanitize: monitored mass %d exceeds n=%d (overestimation)", sum, s.n))
	}
	if bound := core.MGBound(s.n, s.k); s.dec > bound {
		panic(fmt.Sprintf("mg: sanitize: dec=%d exceeds n/(k+1)=%d (n=%d, k=%d)", s.dec, bound, s.n, s.k))
	}
}

// debugAssertSampled runs debugAssert on a deterministic 1-in-64
// sample of calls (keyed on n), keeping per-item paths usable under
// the sanitize tag on large test streams.
func debugAssertSampled(s *Summary) {
	if s.n&63 == 0 {
		debugAssert(s)
	}
}
