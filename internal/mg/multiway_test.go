package mg

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestMergeManyBasics(t *testing.T) {
	if _, err := MergeMany(nil); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := MergeMany([]*Summary{New(4), nil}); err == nil {
		t.Error("nil element accepted")
	}
	if _, err := MergeMany([]*Summary{New(4), New(8)}); err == nil {
		t.Error("mismatched k accepted")
	}
	a, b := New(4), New(4)
	a.Update(1, 5)
	b.Update(2, 3)
	m, err := MergeMany([]*Summary{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 8 || m.Estimate(1).Value != 5 || m.Estimate(2).Value != 3 {
		t.Fatal("two-way MergeMany wrong")
	}
	// Inputs untouched.
	if a.N() != 5 || b.N() != 3 {
		t.Fatal("MergeMany modified inputs")
	}
}

// MergeMany must stay within the single-summary bound and never
// overestimate, over many sites with disjoint supports.
func TestMergeManyGuarantee(t *testing.T) {
	const n = 120000
	const k = 32
	const sites = 24
	stream := gen.NewZipf(3000, 1.2, 7).Stream(n)
	truth := exact.FreqOf(stream)
	parts := gen.PartitionByHash(stream, sites, func(x core.Item) uint64 { return uint64(x) * 0x9e3779b1 })
	sums := make([]*Summary, sites)
	for i, p := range parts {
		sums[i] = New(k)
		for _, x := range p {
			sums[i].Update(x, 1)
		}
	}
	m, err := MergeMany(sums)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != n || m.Len() > k {
		t.Fatalf("N=%d Len=%d", m.N(), m.Len())
	}
	if m.ErrorBound() > core.MGBound(n, k) {
		t.Errorf("bound %d > %d", m.ErrorBound(), core.MGBound(n, k))
	}
	for _, c := range truth.Counters() {
		e := m.Estimate(c.Item)
		if e.Value > c.Count || !e.Contains(c.Count) {
			t.Fatalf("item %d: interval %v vs true %d", c.Item, e, c.Count)
		}
	}
}

// The point of multiway merging: total error at most the pairwise
// chain's on the same inputs (single prune vs repeated prunes).
func TestMergeManyBeatsChain(t *testing.T) {
	const n = 100000
	const k = 64
	const sites = 16
	for seed := uint64(1); seed <= 5; seed++ {
		stream := gen.NewZipf(2000, 1.3, seed).Stream(n)
		truth := exact.FreqOf(stream)
		parts := gen.PartitionByHash(stream, sites, func(x core.Item) uint64 { return uint64(x) * 0x85ebca6b })
		build := func() []*Summary {
			sums := make([]*Summary, sites)
			for i, p := range parts {
				sums[i] = New(k)
				for _, x := range p {
					sums[i].Update(x, 1)
				}
			}
			return sums
		}
		sumAbs := func(s *Summary) uint64 {
			var te uint64
			for _, c := range truth.Counters() {
				e := s.Estimate(c.Item)
				te += c.Count - e.Value // MG never overestimates
			}
			return te
		}
		multi, err := MergeMany(build())
		if err != nil {
			t.Fatal(err)
		}
		chainParts := build()
		chain := chainParts[0]
		for _, s := range chainParts[1:] {
			if err := chain.Merge(s); err != nil {
				t.Fatal(err)
			}
		}
		if sumAbs(multi) > sumAbs(chain) {
			t.Errorf("seed %d: multiway error %d > chain error %d", seed, sumAbs(multi), sumAbs(chain))
		}
	}
}
