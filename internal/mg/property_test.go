package mg

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/exact"
)

// buildStream turns fuzzer-style raw bytes into a small weighted
// stream over a narrow universe (to force evictions).
func buildStream(raw []byte) []core.Counter {
	out := make([]core.Counter, 0, len(raw))
	for i := 0; i+1 < len(raw); i += 2 {
		out = append(out, core.Counter{
			Item:  core.Item(raw[i] % 32),
			Count: uint64(raw[i+1]%16) + 1,
		})
	}
	return out
}

// Property: on any weighted stream, every estimate interval contains
// the true count, the summary never overestimates, and the certificate
// never exceeds n/(k+1).
func TestPropertyStreamGuarantee(t *testing.T) {
	f := func(raw []byte, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		s := New(k)
		truth := exact.NewFreqTable()
		for _, u := range buildStream(raw) {
			s.Update(u.Item, u.Count)
			truth.Add(u.Item, u.Count)
		}
		if s.ErrorBound() > core.MGBound(s.N(), k) {
			return false
		}
		if s.Len() > k {
			return false
		}
		for _, c := range truth.Counters() {
			e := s.Estimate(c.Item)
			if e.Value > c.Count || !e.Contains(c.Count) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: any split of a stream, summarized per-part and merged with
// either algorithm, stays within the single-summary bound.
func TestPropertyMergeGuarantee(t *testing.T) {
	f := func(raw []byte, kRaw, cut uint8, lowError bool) bool {
		k := int(kRaw%8) + 2
		stream := buildStream(raw)
		split := 0
		if len(stream) > 0 {
			split = int(cut) % (len(stream) + 1)
		}
		a, b := New(k), New(k)
		truth := exact.NewFreqTable()
		for i, u := range stream {
			if i < split {
				a.Update(u.Item, u.Count)
			} else {
				b.Update(u.Item, u.Count)
			}
			truth.Add(u.Item, u.Count)
		}
		var err error
		if lowError {
			err = a.MergeLowError(b)
		} else {
			err = a.Merge(b)
		}
		if err != nil {
			return false
		}
		if a.N() != truth.N() || a.Len() > k {
			return false
		}
		if a.ErrorBound() > core.MGBound(a.N(), k) {
			return false
		}
		for _, c := range truth.Counters() {
			e := a.Estimate(c.Item)
			if e.Value > c.Count || !e.Contains(c.Count) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: codec round-trips are lossless for any reachable summary.
func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(raw []byte, kRaw uint8) bool {
		k := int(kRaw%16) + 1
		s := New(k)
		for _, u := range buildStream(raw) {
			s.Update(u.Item, u.Count)
		}
		data, err := s.MarshalBinary()
		if err != nil {
			return false
		}
		var got Summary
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		if got.N() != s.N() || got.K() != s.K() || got.ErrorBound() != s.ErrorBound() {
			return false
		}
		a, b := s.Counters(), got.Counters()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
