package mg

import (
	"testing"

	"repro/internal/core"
)

// FuzzUpdateBatch feeds the same random weighted stream to a per-item
// summary and a batched summary (with fuzz-chosen k and batch
// boundaries) and checks guarantee-equivalence: identical n, at most k
// counters, no overestimation, undercount within ErrorBound, and
// ErrorBound within the theorem's n/(k+1).
func FuzzUpdateBatch(f *testing.F) {
	f.Add(uint64(1), uint8(4), uint8(3), []byte{1, 2, 3, 250, 2, 2, 9})
	f.Add(uint64(42), uint8(1), uint8(1), []byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(uint64(7), uint8(16), uint8(64), []byte{5, 5, 5, 1, 200, 200, 201, 17})
	f.Fuzz(func(t *testing.T, seed uint64, kRaw, chunkRaw uint8, data []byte) {
		k := int(kRaw%32) + 1
		chunk := int(chunkRaw%40) + 1

		// Derive a weighted stream from the fuzz bytes: item from the
		// byte, weight from a cheap mix of seed and position.
		stream := make([]core.Counter, len(data))
		truth := make(map[core.Item]uint64, 64)
		var n uint64
		for i, b := range data {
			x := core.Item(b % 50)
			w := (seed+uint64(i)*2654435761)%9 + 1
			stream[i] = core.Counter{Item: x, Count: w}
			truth[x] += w
			n += w
		}

		loop := New(k)
		for _, c := range stream {
			loop.Update(c.Item, c.Count)
		}
		batch := New(k)
		for i := 0; i < len(stream); i += chunk {
			end := i + chunk
			if end > len(stream) {
				end = len(stream)
			}
			batch.UpdateBatchWeighted(stream[i:end])
		}

		for name, s := range map[string]*Summary{"loop": loop, "batch": batch} {
			if s.N() != n {
				t.Fatalf("%s: N=%d, want %d", name, s.N(), n)
			}
			if s.Len() > k {
				t.Fatalf("%s: %d counters exceed k=%d", name, s.Len(), k)
			}
			if bound := core.MGBound(n, k); s.ErrorBound() > bound {
				t.Fatalf("%s: dec=%d exceeds n/(k+1)=%d", name, s.ErrorBound(), bound)
			}
			for x, fx := range truth {
				est := s.Estimate(x)
				if est.Value > fx {
					t.Fatalf("%s: item %d estimate %d overestimates true %d", name, x, est.Value, fx)
				}
				if est.Value+s.ErrorBound() < fx {
					t.Fatalf("%s: item %d estimate %d + dec %d undercounts true %d",
						name, x, est.Value, s.ErrorBound(), fx)
				}
			}
		}
	})
}
