package mg

// selectKth returns the k-th smallest element (0-indexed) of vals,
// partially reordering vals in place. Quickselect with median-of-three
// pivots: expected O(len(vals)), against the O(m log m) full sort it
// replaces in prune — the prune itself only needs the single cut value,
// not an ordering.
func selectKth(vals []uint64, k int) uint64 {
	lo, hi := 0, len(vals)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if vals[mid] < vals[lo] {
			vals[mid], vals[lo] = vals[lo], vals[mid]
		}
		if vals[hi] < vals[lo] {
			vals[hi], vals[lo] = vals[lo], vals[hi]
		}
		if vals[hi] < vals[mid] {
			vals[hi], vals[mid] = vals[mid], vals[hi]
		}
		pivot := vals[mid]
		// Hoare partition: afterwards vals[lo..j] <= pivot <= vals[j+1..hi].
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if vals[i] >= pivot {
					break
				}
			}
			for {
				j--
				if vals[j] <= pivot {
					break
				}
			}
			if i >= j {
				break
			}
			vals[i], vals[j] = vals[j], vals[i]
		}
		if k <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
	return vals[lo]
}
