package mg

import (
	"repro/internal/codec"
	"repro/internal/gen"
	"repro/internal/registry"
)

// init catalogs the family; see internal/registry.
func init() {
	registry.Register[Summary](codec.KindMisraGries, "mg", registry.Spec[Summary]{
		Example: func(n int) *Summary {
			s := New(64)
			for i, x := range gen.NewZipf(512, 1.2, 1).Stream(n) {
				s.Update(x, uint64(i%3+1))
			}
			return s
		},
		Merge:         (*Summary).Merge,
		MergeLowError: (*Summary).MergeLowError,
		N:             (*Summary).N,
	})
}
