package mg

import (
	"math/rand"
	"sort"
	"testing"
)

func TestSelectKth(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(200) + 1
		vals := make([]uint64, n)
		for i := range vals {
			// Small value range forces heavy duplication, the regime
			// prune actually sees (many equal low counts).
			vals[i] = uint64(rng.Intn(8))
		}
		sorted := append([]uint64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		k := rng.Intn(n)
		if got := selectKth(vals, k); got != sorted[k] {
			t.Fatalf("trial %d: selectKth(%d of %d) = %d, want %d", trial, k, n, got, sorted[k])
		}
	}
}
