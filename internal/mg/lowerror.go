package mg

import (
	"repro/internal/core"
)

// MergeLowError folds other into s using the closed-form low-total-
// error algorithm (Algorithm 2 of the supplied follow-up text,
// "Mergeable Summaries With Low Total Error", Cafaro–Tempesta–Pulimeno;
// their Theorem 4.2 evaluated at the final update step).
//
// The construction: let C_1 … C_2c be the combined counters of the two
// inputs in ascending count order, padded at the front with zero
// counters, where c is the per-summary capacity (the text's k-1). If at
// most c counters are nonzero the combined summary is returned exactly.
// Otherwise the result is the summary a Misra–Gries run over the
// combined counters would produce, given directly by
//
//	e_j = C_{c+j}                       j = 1 … c
//	f_1 = C_{c+1} − C_c
//	f_j = C_{c+j} − C_c + C_{j−1}       j = 2 … c
//
// This output satisfies the identical MG bound as Merge (total weight
// divided by c+1 — the text's Lemma 4.3 shows its total error is never
// larger than the PODS'12 prune, and usually much smaller), at the same
// O(c) cost.
func (s *Summary) MergeLowError(other *Summary) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if s.k != other.k {
		return core.ErrMismatchedK
	}
	c := s.k
	combined := CombinedCounters(s, other)
	s.n += other.n
	s.dec += other.dec
	if len(combined) <= c {
		// No pruning necessary: the combined summary is exact
		// relative to its inputs.
		s.clearTable()
		s.ensure(len(combined))
		for _, cc := range combined {
			s.insertFresh(uint64(cc.Item), cc.Count)
		}
		debugAssert(s)
		return nil
	}
	// Pad at the front with zero counters to exactly 2c slots.
	pad := core.PadAscending(combined, 2*c)
	// cnt(i) is the 1-based C_i^f accessor over the padded array.
	cnt := func(i int) uint64 { return pad[i-1].Count }
	s.clearTable()
	s.ensure(c)
	base := cnt(c) // C_c, the amount every surviving counter is cut by
	for j := 1; j <= c; j++ {
		e := pad[c+j-1].Item
		var f uint64
		if j == 1 {
			f = cnt(c+1) - base
		} else {
			f = cnt(c+j) - base + cnt(j-1)
		}
		if f > 0 {
			s.insertFresh(uint64(e), f)
		}
	}
	// Every output counter was reduced by at most C_c relative to the
	// combined counts (j=1 loses C_c; j>=2 loses C_c − C_{j−1} ≤ C_c),
	// and every dropped item had combined count ≤ C_c.
	s.dec += base
	debugAssert(s)
	return nil
}

// MergedLowError returns the low-total-error merge of a and b without
// modifying either.
func MergedLowError(a, b *Summary) (*Summary, error) {
	out := a.Clone()
	if err := out.MergeLowError(b); err != nil {
		return nil, err
	}
	return out, nil
}
