package mg

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestNewEpsilon(t *testing.T) {
	s := NewEpsilon(0.1)
	if s.K() != 9 {
		t.Errorf("NewEpsilon(0.1).K() = %d, want 9", s.K())
	}
	s = NewEpsilon(0.5)
	if s.K() != 1 {
		t.Errorf("NewEpsilon(0.5).K() = %d, want 1", s.K())
	}
	for _, bad := range []float64{0, -0.1, 1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEpsilon(%v) did not panic", bad)
				}
			}()
			NewEpsilon(bad)
		}()
	}
}

func TestUpdateSmallStream(t *testing.T) {
	s := New(2)
	s.Update(1, 3)
	s.Update(2, 2)
	if s.Len() != 2 || s.N() != 5 {
		t.Fatalf("Len=%d N=%d", s.Len(), s.N())
	}
	if e := s.Estimate(1); e.Value != 3 || e.Lower != 3 || e.Upper != 3 {
		t.Errorf("Estimate(1) = %v", e)
	}
	// Third distinct item triggers a prune by the minimum (=1 here,
	// the new item's own weight): counts 3,2 stay minus 1... cut is
	// the (k+1)-th largest of {3,2,1} = 1.
	s.Update(3, 1)
	if s.Len() > 2 {
		t.Fatalf("Len=%d after prune", s.Len())
	}
	if e := s.Estimate(1); e.Value != 2 {
		t.Errorf("Estimate(1) after prune = %v, want value 2", e)
	}
	if e := s.Estimate(3); e.Value != 0 {
		t.Errorf("Estimate(3) = %v, want 0", e)
	}
	if s.ErrorBound() != 1 {
		t.Errorf("ErrorBound = %d, want 1", s.ErrorBound())
	}
	if s.N() != 6 {
		t.Errorf("N = %d, want 6", s.N())
	}
}

func TestUpdateZeroWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-weight update did not panic")
		}
	}()
	New(2).Update(1, 0)
}

func TestWeightedUpdateEviction(t *testing.T) {
	s := New(2)
	s.Update(1, 10)
	s.Update(2, 5)
	// New item heavier than the current minimum: it must survive with
	// weight reduced by the minimum.
	s.Update(3, 7)
	if e := s.Estimate(3); e.Value != 2 {
		t.Errorf("Estimate(3) = %v, want value 2 (7-5)", e)
	}
	if e := s.Estimate(2); e.Value != 0 {
		t.Errorf("Estimate(2) = %v, want evicted", e)
	}
	if e := s.Estimate(1); e.Value != 5 {
		t.Errorf("Estimate(1) = %v, want 5", e)
	}
}

// The central MG guarantee on a skewed stream: no overestimation,
// undercount at most n/(k+1), and ErrorBound() is a valid certificate.
func TestStreamGuarantee(t *testing.T) {
	const n = 200000
	for _, k := range []int{4, 16, 64} {
		stream := gen.NewZipf(10000, 1.3, uint64(k)).Stream(n)
		truth := exact.FreqOf(stream)
		s := New(k)
		for _, x := range stream {
			s.Update(x, 1)
		}
		if s.N() != n {
			t.Fatalf("k=%d: N=%d, want %d", k, s.N(), n)
		}
		bound := core.MGBound(n, k)
		if s.ErrorBound() > bound {
			t.Errorf("k=%d: ErrorBound %d exceeds n/(k+1)=%d", k, s.ErrorBound(), bound)
		}
		for _, c := range truth.Counters() {
			e := s.Estimate(c.Item)
			if e.Value > c.Count {
				t.Fatalf("k=%d: overestimate of %d: est %d > true %d", k, c.Item, e.Value, c.Count)
			}
			if c.Count-e.Value > s.ErrorBound() {
				t.Fatalf("k=%d: undercount of %d beyond certificate: est %d, true %d, dec %d",
					k, c.Item, e.Value, c.Count, s.ErrorBound())
			}
			if !e.Contains(c.Count) {
				t.Fatalf("k=%d: interval %v misses true count %d", k, e, c.Count)
			}
		}
	}
}

// Sequential all-distinct stream: the worst case. Estimates collapse
// toward zero but the bound must still hold.
func TestSequentialWorstCase(t *testing.T) {
	const n = 10000
	s := New(9)
	for _, x := range gen.Sequential(n) {
		s.Update(x, 1)
	}
	if s.ErrorBound() > core.MGBound(n, 9) {
		t.Errorf("ErrorBound %d exceeds %d", s.ErrorBound(), core.MGBound(n, 9))
	}
}

func TestHeavyHitters(t *testing.T) {
	const n = 100000
	k := 49 // phi = 1/50
	stream := gen.NewZipf(5000, 1.5, 7).Stream(n)
	truth := exact.FreqOf(stream)
	s := New(k)
	for _, x := range stream {
		s.Update(x, 1)
	}
	threshold := core.HeavyThreshold(n, 50)
	got := s.HeavyHitters(threshold)
	gotSet := make(map[core.Item]bool)
	for _, c := range got {
		gotSet[c.Item] = true
	}
	// Completeness: every true heavy hitter must be reported.
	for _, c := range truth.HeavyHitters(threshold) {
		if !gotSet[c.Item] {
			t.Errorf("true heavy hitter %d (count %d) not reported", c.Item, c.Count)
		}
	}
	// Soundness up to the guarantee: no reported item may have true
	// frequency below threshold - n/(k+1).
	slack := core.MGBound(n, k)
	for _, c := range got {
		if truth.Count(c.Item)+slack < threshold {
			t.Errorf("reported item %d has true count %d, below threshold-slack", c.Item, truth.Count(c.Item))
		}
	}
}

func TestCountersSortedAscending(t *testing.T) {
	s := New(8)
	for _, x := range gen.NewZipf(100, 1.2, 3).Stream(10000) {
		s.Update(x, 1)
	}
	cs := s.Counters()
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Count > cs[i].Count {
			t.Fatalf("Counters not ascending: %v", cs)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(4)
	s.Update(1, 5)
	c := s.Clone()
	c.Update(2, 3)
	if s.Len() != 1 || c.Len() != 2 {
		t.Fatal("clone not independent")
	}
	if s.N() != 5 || c.N() != 8 {
		t.Fatal("clone N wrong")
	}
}

func TestReset(t *testing.T) {
	s := New(4)
	s.Update(1, 5)
	s.Update(2, 1)
	s.Reset()
	if s.Len() != 0 || s.N() != 0 || s.ErrorBound() != 0 {
		t.Fatal("Reset left state behind")
	}
	s.Update(3, 2)
	if e := s.Estimate(3); e.Value != 2 {
		t.Fatal("summary unusable after Reset")
	}
}

func TestFromCountersValidation(t *testing.T) {
	if _, err := FromCounters(0, 0, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := FromCounters(1, 10, 0, []core.Counter{{Item: 1, Count: 1}, {Item: 2, Count: 1}}); err == nil {
		t.Error("too many counters accepted")
	}
	if _, err := FromCounters(2, 10, 0, []core.Counter{{Item: 1, Count: 0}}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := FromCounters(2, 10, 0, []core.Counter{{Item: 1, Count: 1}, {Item: 1, Count: 2}}); err == nil {
		t.Error("duplicate item accepted")
	}
	s, err := FromCounters(2, 10, 1, []core.Counter{{Item: 1, Count: 4}})
	if err != nil {
		t.Fatalf("valid FromCounters failed: %v", err)
	}
	if s.N() != 10 || s.ErrorBound() != 1 || s.Estimate(1).Value != 4 {
		t.Error("FromCounters state wrong")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	s := New(16)
	for _, x := range gen.NewZipf(500, 1.4, 11).Stream(50000) {
		s.Update(x, 1)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.K() != s.K() || got.N() != s.N() || got.ErrorBound() != s.ErrorBound() || got.Len() != s.Len() {
		t.Fatal("round-trip changed header state")
	}
	want := s.Counters()
	have := got.Counters()
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("counter %d: %v != %v", i, have[i], want[i])
		}
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	s := New(4)
	s.Update(1, 2)
	data, _ := s.MarshalBinary()
	data[len(data)-5] ^= 0xff
	var got Summary
	if err := got.UnmarshalBinary(data); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}
