package epsapprox

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
)

var unitBox = exact.Rect{X0: 0, Y0: 0, X1: 1, Y1: 1}

func queryGrid() []exact.Rect {
	var rs []exact.Rect
	for _, x0 := range []float64{0, 0.2, 0.45} {
		for _, y0 := range []float64{0, 0.3, 0.6} {
			for _, w := range []float64{0.1, 0.35, 0.8} {
				rs = append(rs, exact.Rect{X0: x0, Y0: y0, X1: x0 + w, Y1: y0 + w/2})
			}
		}
	}
	return rs
}

func maxAbsErr(t *testing.T, s *Summary, pts []gen.Point) uint64 {
	t.Helper()
	var worst uint64
	for _, r := range queryGrid() {
		truth := exact.RangeCount(pts, r)
		got := s.RangeCount(r)
		var d uint64
		if got > truth {
			d = got - truth
		} else {
			d = truth - got
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"s=0":     func() { New(0, unitBox, 1) },
		"box":     func() { New(4, exact.Rect{X0: 1, Y0: 0, X1: 1, Y1: 1}, 1) },
		"eps=0":   func() { NewEpsilon(0, unitBox, 1) },
		"eps=1.5": func() { NewEpsilon(1.5, unitBox, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestExactWhenSmall(t *testing.T) {
	s := New(100, unitBox, 1)
	pts := gen.UniformPoints(50, 2)
	for _, p := range pts {
		s.Update(p)
	}
	for _, r := range queryGrid() {
		if got, want := s.RangeCount(r), exact.RangeCount(pts, r); got != want {
			t.Fatalf("small summary not exact: %d vs %d", got, want)
		}
	}
}

func TestWeightConservation(t *testing.T) {
	s := New(16, unitBox, 3)
	for i, p := range gen.UniformPoints(5000, 4) {
		s.Update(p)
		if i%500 == 0 {
			if err := s.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.StoredWeight() != s.N() {
		t.Fatal("weight not conserved")
	}
	// Whole-box query returns exactly n.
	if got := s.RangeCount(unitBox); got != s.N() {
		t.Fatalf("whole-box count %d != n %d", got, s.N())
	}
}

func TestStreamDiscrepancy(t *testing.T) {
	const n = 60000
	eps := 0.05
	for name, pts := range map[string][]gen.Point{
		"uniform":   gen.UniformPoints(n, 1),
		"clustered": gen.ClusteredPoints(n, 5, 0.03, 2),
	} {
		s := NewEpsilon(eps, unitBox, 7)
		for _, p := range pts {
			s.Update(p)
		}
		if worst := maxAbsErr(t, s, pts); worst > uint64(eps*float64(n)) {
			t.Errorf("%s: worst rectangle error %d > eps*n = %v", name, worst, eps*float64(n))
		}
		if err := s.checkInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestMergeTreeDiscrepancy(t *testing.T) {
	const n = 60000
	eps := 0.05
	pts := gen.UniformPoints(n, 11)
	parts := gen.PartitionRandomSizes(pts, 8, 5)
	sums := make([]*Summary, len(parts))
	for i, p := range parts {
		sums[i] = NewEpsilon(eps, unitBox, uint64(i)+20)
		for _, pt := range p {
			sums[i].Update(pt)
		}
	}
	for len(sums) > 1 {
		var next []*Summary
		for i := 0; i+1 < len(sums); i += 2 {
			if err := sums[i].Merge(sums[i+1]); err != nil {
				t.Fatal(err)
			}
			next = append(next, sums[i])
		}
		if len(sums)%2 == 1 {
			next = append(next, sums[len(sums)-1])
		}
		sums = next
	}
	m := sums[0]
	if m.N() != n {
		t.Fatalf("N = %d", m.N())
	}
	if err := m.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if worst := maxAbsErr(t, m, pts); worst > uint64(eps*float64(n)) {
		t.Errorf("worst rectangle error %d > eps*n = %v after merge tree", worst, eps*float64(n))
	}
}

func TestMergeMismatched(t *testing.T) {
	a := New(8, unitBox, 1)
	if err := a.Merge(New(16, unitBox, 1)); err == nil {
		t.Error("mismatched s accepted")
	}
	other := New(8, exact.Rect{X0: 0, Y0: 0, X1: 2, Y1: 2}, 1)
	if err := a.Merge(other); err == nil {
		t.Error("mismatched box accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestMergeDoesNotModifyOther(t *testing.T) {
	a, b := New(8, unitBox, 1), New(8, unitBox, 2)
	for _, p := range gen.UniformPoints(100, 3) {
		a.Update(p)
	}
	for _, p := range gen.UniformPoints(77, 4) {
		b.Update(p)
	}
	bn, bsize := b.N(), b.Size()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if b.N() != bn || b.Size() != bsize {
		t.Fatal("merge modified other")
	}
	if a.N() != 177 {
		t.Fatalf("a.N = %d", a.N())
	}
}

func TestSizeLogarithmic(t *testing.T) {
	s := New(64, unitBox, 9)
	const n = 1 << 15
	for _, p := range gen.UniformPoints(n, 2) {
		s.Update(p)
	}
	if s.Size() > 64*16 {
		t.Errorf("size %d too large", s.Size())
	}
}

func TestMortonOrdering(t *testing.T) {
	s := New(4, unitBox, 1)
	// Z-order: points in the same quadrant must be closer in Morton
	// order than points in different quadrants.
	bl := s.morton(gen.Point{X: 0.1, Y: 0.1})
	bl2 := s.morton(gen.Point{X: 0.2, Y: 0.2})
	tr := s.morton(gen.Point{X: 0.9, Y: 0.9})
	if !(bl < tr && bl2 < tr) {
		t.Errorf("morton order violates quadrant structure: %d %d %d", bl, bl2, tr)
	}
	// Clamping: out-of-box points do not panic and land at the ends.
	lo := s.morton(gen.Point{X: -5, Y: -5})
	hi := s.morton(gen.Point{X: 5, Y: 5})
	if lo != 0 {
		t.Errorf("clamped low morton = %d", lo)
	}
	if hi != s.morton(gen.Point{X: 1, Y: 1}) {
		t.Errorf("clamped high morton %b != corner %b", hi, s.morton(gen.Point{X: 1, Y: 1}))
	}
}
