package epsapprox

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/exact"
	"repro/internal/gen"
)

// MarshalBinary implements encoding.BinaryMarshaler. The RNG state is
// re-derived so a decoded summary continues a deterministic sequence.
func (s *Summary) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	// Header (size, box, n, seed, lengths) plus 16 bytes per stored
	// point and a length uvarint per block.
	pts := len(s.partial)
	for _, b := range s.blocks {
		pts += len(b)
	}
	w.Grow(4*10 + 4*8 + len(s.blocks)*10 + pts*16)
	w.Int(s.s)
	w.Float64(s.box.X0)
	w.Float64(s.box.Y0)
	w.Float64(s.box.X1)
	w.Float64(s.box.Y1)
	w.Uint64(s.n)
	w.Uint64(s.rng.State())
	w.Int(len(s.partial))
	for _, p := range s.partial {
		w.Float64(p.X)
		w.Float64(p.Y)
	}
	w.Int(len(s.blocks))
	for _, b := range s.blocks {
		w.Int(len(b))
		for _, p := range b {
			w.Float64(p.X)
			w.Float64(p.Y)
		}
	}
	return codec.EncodeFrame(codec.KindRangeCount, w.Bytes()), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Summary) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindRangeCount, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	size := r.Int()
	box := exact.Rect{X0: r.Float64(), Y0: r.Float64(), X1: r.Float64(), Y1: r.Float64()}
	n := r.Uint64()
	seed := r.Uint64()
	if r.Err() != nil {
		return r.Err()
	}
	if size < 1 || !(box.X1 > box.X0) || !(box.Y1 > box.Y0) {
		return fmt.Errorf("epsapprox: invalid frame header")
	}
	out := New(size, box, seed)
	out.n = n
	np := r.ArrayLen(16)
	if r.Err() != nil {
		return r.Err()
	}
	if np >= size {
		return fmt.Errorf("epsapprox: partial %d exceeds block size %d", np, size)
	}
	for i := 0; i < np; i++ {
		out.partial = append(out.partial, gen.Point{X: r.Float64(), Y: r.Float64()})
	}
	nb := r.ArrayLen(1)
	if r.Err() != nil {
		return r.Err()
	}
	out.blocks = make([][]gen.Point, nb)
	for i := 0; i < nb; i++ {
		bl := r.ArrayLen(16)
		if r.Err() != nil {
			return r.Err()
		}
		if bl == 0 {
			continue
		}
		if bl != size {
			return fmt.Errorf("epsapprox: block %d has %d points, want %d", i, bl, size)
		}
		b := make([]gen.Point, bl)
		for j := range b {
			b[j] = gen.Point{X: r.Float64(), Y: r.Float64()}
		}
		out.blocks[i] = b
	}
	if err := r.Finish(); err != nil {
		return err
	}
	if err := out.checkInvariants(); err != nil {
		return fmt.Errorf("epsapprox: decoded summary invalid: %w", err)
	}
	*s = *out
	return nil
}
