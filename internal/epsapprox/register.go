package epsapprox

import (
	"repro/internal/codec"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/registry"
)

// init catalogs the family; see internal/registry.
func init() {
	registry.Register[Summary](codec.KindRangeCount, "rangecount", registry.Spec[Summary]{
		Example: func(n int) *Summary {
			s := NewEpsilon(0.05, exact.Rect{X0: 0, Y0: 0, X1: 1, Y1: 1}, 12)
			for _, p := range gen.UniformPoints(n, 12) {
				s.Update(p)
			}
			return s
		},
		Merge: (*Summary).Merge,
		N:     (*Summary).N,
	})
}
