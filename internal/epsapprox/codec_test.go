package epsapprox

import (
	"testing"

	"repro/internal/gen"
)

func TestCodecRoundTrip(t *testing.T) {
	s := New(32, unitBox, 7)
	pts := gen.UniformPoints(5000, 3)
	for _, p := range pts {
		s.Update(p)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.N() != s.N() || got.Size() != s.Size() || got.BlockSize() != s.BlockSize() {
		t.Fatal("round trip changed header")
	}
	for _, r := range queryGrid() {
		if got.RangeCount(r) != s.RangeCount(r) {
			t.Fatalf("RangeCount differs after round trip for %v", r)
		}
	}
	if err := got.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// Decoded summaries keep working: update and merge.
	got.Update(gen.Point{X: 0.5, Y: 0.5})
	if got.N() != s.N()+1 {
		t.Fatal("decoded summary not updatable")
	}
	other := New(32, unitBox, 9)
	for _, p := range gen.UniformPoints(100, 4) {
		other.Update(p)
	}
	if err := got.Merge(other); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	s := New(8, unitBox, 1)
	for _, p := range gen.UniformPoints(100, 2) {
		s.Update(p)
	}
	data, _ := s.MarshalBinary()
	data[len(data)-5] ^= 0xff
	var got Summary
	if err := got.UnmarshalBinary(data); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func FuzzUnmarshal(f *testing.F) {
	s := New(8, unitBox, 1)
	for _, p := range gen.UniformPoints(200, 2) {
		s.Update(p)
	}
	seed, _ := s.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Summary
		if err := out.UnmarshalBinary(data); err != nil {
			return
		}
		if err := out.checkInvariants(); err != nil {
			t.Fatalf("accepted frame violates invariants: %v", err)
		}
	})
}
