// Package epsapprox implements a mergeable ε-approximation summary for
// 2-D range counting (PODS'12 §4): a weighted point set Q such that for
// every axis-aligned rectangle R,
//
//	| weight(Q ∩ R) − |P ∩ R| |  ≤  ε·|P|
//
// under arbitrary merges. The structure mirrors the quantile summary's
// logarithmic block hierarchy (a 1-D ε-approximation *is* a quantile
// summary); the per-level primitive is an equal-weight halving of 2s
// points down to s points.
//
// Substitution note (DESIGN.md §2): the paper's halving is a
// deterministic low-discrepancy coloring with large constants; this
// implementation halves by sorting points along a Z-order (Morton)
// space-filling curve and keeping alternate points with a random
// offset. Z-order alternation is a practical low-discrepancy halving
// for axis-aligned rectangles: any rectangle decomposes into O(log²)
// Z-order intervals, and alternation errs by at most 1 per interval.
// Mergeability and the ε·n error shape are preserved; experiment E10
// measures the realized discrepancy against ε·n.
package epsapprox

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

// Summary is a mergeable 2-D range-counting summary. The zero value is
// not usable; use New. Not safe for concurrent use.
type Summary struct {
	s       int // points per block
	n       uint64
	partial []gen.Point   // < s raw points at weight 1
	blocks  [][]gen.Point // blocks[i]: nil or s points at weight 2^i, Z-order sorted
	rng     *gen.RNG
	// Morton quantization box: fixed at construction so that two
	// mergeable summaries agree on the curve.
	box exact.Rect
}

// New returns an empty summary with block size s over the coordinate
// bounding box (points outside are clamped for curve ordering only;
// counting remains exact). Two summaries merge iff they share s and
// the box.
func New(s int, box exact.Rect, seed uint64) *Summary {
	if s < 1 {
		panic("epsapprox: block size must be >= 1")
	}
	if !(box.X1 > box.X0) || !(box.Y1 > box.Y0) {
		panic("epsapprox: degenerate bounding box")
	}
	return &Summary{s: s, box: box, rng: gen.NewRNG(seed)}
}

// NewEpsilon sizes the summary for rectangle-count error ~eps*n:
// s = ceil((4/eps)·(log2(1/eps)+1)), reflecting the extra log factor
// of 2-D discrepancy relative to the 1-D quantile case.
func NewEpsilon(eps float64, box exact.Rect, seed uint64) *Summary {
	if eps <= 0 || eps >= 1 {
		panic("epsapprox: eps must be in (0, 1)")
	}
	s := int(math.Ceil(4 / eps * (math.Log2(1/eps) + 1)))
	return New(s, box, seed)
}

// BlockSize returns the points-per-block parameter.
func (s *Summary) BlockSize() int { return s.s }

// N returns the number of points summarized, including merges.
func (s *Summary) N() uint64 { return s.n }

// Size returns the number of stored points.
func (s *Summary) Size() int {
	total := len(s.partial)
	for _, b := range s.blocks {
		total += len(b)
	}
	return total
}

// morton maps p to its Z-order index inside the box (16 bits per axis).
func (s *Summary) morton(p gen.Point) uint64 {
	const bits = 16
	qx := quantize(p.X, s.box.X0, s.box.X1, bits)
	qy := quantize(p.Y, s.box.Y0, s.box.Y1, bits)
	return interleave(qx) | interleave(qy)<<1
}

func quantize(v, lo, hi float64, bits uint) uint32 {
	t := (v - lo) / (hi - lo)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	max := float64(uint32(1)<<bits - 1)
	return uint32(t * max)
}

// interleave spreads the low 16 bits of v into even bit positions.
func interleave(v uint32) uint64 {
	x := uint64(v) & 0xffff
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// Update inserts one point.
func (s *Summary) Update(p gen.Point) {
	s.n++
	s.partial = append(s.partial, p)
	if len(s.partial) >= s.s {
		s.promotePartial()
	}
}

func (s *Summary) promotePartial() {
	b := make([]gen.Point, len(s.partial))
	copy(b, s.partial)
	s.partial = s.partial[:0]
	s.sortZ(b)
	s.carry(b, 0)
}

func (s *Summary) sortZ(ps []gen.Point) {
	sort.Slice(ps, func(i, j int) bool { return s.morton(ps[i]) < s.morton(ps[j]) })
}

func (s *Summary) carry(b []gen.Point, i int) {
	for {
		for len(s.blocks) <= i {
			s.blocks = append(s.blocks, nil)
		}
		if s.blocks[i] == nil {
			s.blocks[i] = b
			return
		}
		b = s.halve(s.blocks[i], b)
		s.blocks[i] = nil
		i++
	}
}

// halve merges two Z-sorted blocks and keeps alternate points with a
// random offset — the low-discrepancy halving primitive.
func (s *Summary) halve(a, b []gen.Point) []gen.Point {
	union := make([]gen.Point, 0, len(a)+len(b))
	ai, bi := 0, 0
	for ai < len(a) || bi < len(b) {
		if bi >= len(b) || (ai < len(a) && s.morton(a[ai]) <= s.morton(b[bi])) {
			union = append(union, a[ai])
			ai++
		} else {
			union = append(union, b[bi])
			bi++
		}
	}
	offset := 0
	if s.rng.Bool() {
		offset = 1
	}
	out := make([]gen.Point, 0, (len(union)+1)/2)
	for i := offset; i < len(union); i += 2 {
		out = append(out, union[i])
	}
	return out
}

// Merge folds other into s; summaries must share block size and box.
// other is not modified.
func (s *Summary) Merge(other *Summary) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if s.s != other.s || s.box != other.box {
		return fmt.Errorf("%w: epsapprox shape", core.ErrMismatchedShape)
	}
	s.n += other.n
	for i := len(other.blocks) - 1; i >= 0; i-- {
		if other.blocks[i] != nil {
			b := make([]gen.Point, len(other.blocks[i]))
			copy(b, other.blocks[i])
			s.carry(b, i)
		}
	}
	for _, p := range other.partial {
		s.partial = append(s.partial, p)
		if len(s.partial) >= s.s {
			s.promotePartial()
		}
	}
	return nil
}

// Merged returns the merge of a and b without modifying either.
func Merged(a, b *Summary) (*Summary, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// RangeCount estimates the number of summarized points inside r.
func (s *Summary) RangeCount(r exact.Rect) uint64 {
	var c uint64
	for i, b := range s.blocks {
		var in uint64
		for _, p := range b {
			if r.Contains(p) {
				in++
			}
		}
		c += in << uint(i)
	}
	for _, p := range s.partial {
		if r.Contains(p) {
			c++
		}
	}
	return c
}

// StoredWeight returns the total weight of stored points; the
// hierarchy conserves it exactly (equal to N).
func (s *Summary) StoredWeight() uint64 {
	var w uint64
	for i, b := range s.blocks {
		w += uint64(len(b)) << uint(i)
	}
	return w + uint64(len(s.partial))
}

// Clone returns a deep copy (with a re-derived RNG).
func (s *Summary) Clone() *Summary {
	c := New(s.s, s.box, s.rng.Uint64())
	c.n = s.n
	c.partial = append([]gen.Point(nil), s.partial...)
	c.blocks = make([][]gen.Point, len(s.blocks))
	for i, b := range s.blocks {
		if b != nil {
			c.blocks[i] = append([]gen.Point(nil), b...)
		}
	}
	return c
}

// checkInvariants verifies structural invariants; used by tests.
func (s *Summary) checkInvariants() error {
	if len(s.partial) >= s.s {
		return fmt.Errorf("partial %d >= s=%d", len(s.partial), s.s)
	}
	for i, b := range s.blocks {
		if b == nil {
			continue
		}
		if len(b) != s.s {
			return fmt.Errorf("block %d has %d points, want %d", i, len(b), s.s)
		}
		for j := 1; j < len(b); j++ {
			if s.morton(b[j-1]) > s.morton(b[j]) {
				return fmt.Errorf("block %d not Z-sorted", i)
			}
		}
	}
	if s.StoredWeight() != s.n {
		return fmt.Errorf("stored weight %d != n %d", s.StoredWeight(), s.n)
	}
	return nil
}
