package shard

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/mg"
	"repro/internal/randquant"
)

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, func(int) int { return 0 })
}

// Concurrent ingestion into sharded MG summaries; the merged snapshot
// must satisfy the single-summary guarantee over all updates. Run
// under -race in CI.
func TestConcurrentFrequency(t *testing.T) {
	const (
		workers = 8
		perW    = 20000
		k       = 64
	)
	sh := New(workers, func(int) *mg.Summary { return mg.New(k) })
	truthCh := make(chan []core.Item, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			stream := gen.NewZipf(2000, 1.3, uint64(id)+1).Stream(perW)
			for _, x := range stream {
				sh.Update(uint64(x), func(s *mg.Summary) { s.Update(x, 1) })
			}
			truthCh <- stream
		}(w)
	}
	wg.Wait()
	close(truthCh)
	truth := exact.NewFreqTable()
	for stream := range truthCh {
		for _, x := range stream {
			truth.Add(x, 1)
		}
	}

	snap, err := sh.Snapshot(
		func(s *mg.Summary) *mg.Summary { return s.Clone() },
		(*mg.Summary).Merge,
	)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(workers * perW)
	if snap.N() != n {
		t.Fatalf("snapshot N = %d, want %d", snap.N(), n)
	}
	if snap.ErrorBound() > core.MGBound(n, k) {
		t.Errorf("bound %d > %d", snap.ErrorBound(), core.MGBound(n, k))
	}
	for _, c := range truth.Counters()[:20] {
		if e := snap.Estimate(c.Item); !e.Contains(c.Count) {
			t.Errorf("interval %v misses %d for item %d", e, c.Count, c.Item)
		}
	}
}

// Snapshot while ingestion continues: must never violate invariants or
// race (the test's value is under -race).
func TestSnapshotDuringIngestion(t *testing.T) {
	sh := New(4, func(int) *mg.Summary { return mg.New(16) })
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := gen.NewRNG(uint64(id))
			for {
				select {
				case <-stop:
					return
				default:
				}
				x := core.Item(rng.Intn(100))
				sh.Update(uint64(x), func(s *mg.Summary) { s.Update(x, 1) })
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		snap, err := sh.Snapshot(
			func(s *mg.Summary) *mg.Summary { return s.Clone() },
			(*mg.Summary).Merge,
		)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Len() > 16 {
			t.Fatalf("snapshot size %d > k", snap.Len())
		}
	}
	close(stop)
	wg.Wait()
}

func TestConcurrentQuantiles(t *testing.T) {
	const workers = 6
	const perW = 10000
	sh := New(workers, func(i int) *randquant.Summary {
		return randquant.NewEpsilon(0.02, uint64(i)+1)
	})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i, v := range gen.UniformValues(perW, uint64(id)+10) {
				sh.UpdateAny(uint64(id*perW+i), func(s *randquant.Summary) { s.Update(v) })
			}
		}(w)
	}
	wg.Wait()
	snap, err := sh.Snapshot(
		func(s *randquant.Summary) *randquant.Summary { return s.Clone() },
		(*randquant.Summary).Merge,
	)
	if err != nil {
		t.Fatal(err)
	}
	if snap.N() != workers*perW {
		t.Fatalf("N = %d", snap.N())
	}
	med := snap.Quantile(0.5)
	if med < 0.45 || med > 0.55 {
		t.Errorf("median %v far from 0.5", med)
	}
}

func TestDrainRotation(t *testing.T) {
	sh := New(3, func(int) *mg.Summary { return mg.New(8) })
	for i := 0; i < 100; i++ {
		x := core.Item(i % 10)
		sh.Update(uint64(x), func(s *mg.Summary) { s.Update(x, 1) })
	}
	epoch1 := sh.Drain(func(int) *mg.Summary { return mg.New(8) })
	var total uint64
	for _, s := range epoch1 {
		total += s.N()
	}
	if total != 100 {
		t.Fatalf("drained weight %d, want 100", total)
	}
	// After draining, the shards are fresh.
	snap, err := sh.Snapshot(
		func(s *mg.Summary) *mg.Summary { return s.Clone() },
		(*mg.Summary).Merge,
	)
	if err != nil {
		t.Fatal(err)
	}
	if snap.N() != 0 {
		t.Fatalf("post-drain snapshot N = %d", snap.N())
	}
}

// Concurrent batched ingestion: many goroutines push batches through
// UpdateBatch (exercising the pooled partition buffers under -race);
// the merged snapshot must carry the single-summary guarantee.
func TestConcurrentBatchFrequency(t *testing.T) {
	const (
		workers   = 8
		perW      = 20000
		batchSize = 512
		k         = 64
	)
	sh := New(workers, func(int) *mg.Summary { return mg.New(k) })
	truthCh := make(chan []core.Item, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			stream := gen.NewZipf(2000, 1.3, uint64(id)+1).Stream(perW)
			for off := 0; off < len(stream); off += batchSize {
				end := off + batchSize
				if end > len(stream) {
					end = len(stream)
				}
				chunk := stream[off:end]
				sh.UpdateBatch(len(chunk),
					func(i int) uint64 { return uint64(chunk[i]) },
					func(s *mg.Summary, idxs []int) {
						for _, i := range idxs {
							s.Update(chunk[i], 1)
						}
					})
			}
			truthCh <- stream
		}(w)
	}
	wg.Wait()
	close(truthCh)
	truth := exact.NewFreqTable()
	for stream := range truthCh {
		for _, x := range stream {
			truth.Add(x, 1)
		}
	}

	snap, err := sh.Snapshot(
		func(s *mg.Summary) *mg.Summary { return s.Clone() },
		(*mg.Summary).Merge,
	)
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(workers * perW)
	if snap.N() != n {
		t.Fatalf("snapshot N = %d, want %d", snap.N(), n)
	}
	if snap.ErrorBound() > core.MGBound(n, k) {
		t.Errorf("bound %d > %d", snap.ErrorBound(), core.MGBound(n, k))
	}
	for _, c := range truth.Counters()[:20] {
		if e := snap.Estimate(c.Item); !e.Contains(c.Count) {
			t.Errorf("interval %v misses %d for item %d", e, c.Count, c.Item)
		}
	}
}
