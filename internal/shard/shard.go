// Package shard provides a concurrent ingestion wrapper around any
// mergeable summary: updates are routed to per-shard summaries guarded
// by per-shard locks, and queries merge a snapshot of all shards. This
// is the intra-process mirror of the paper's distributed story — the
// reason it works at all is mergeability: a snapshot merged from P
// shard summaries carries the same guarantee as one summary that saw
// every update.
package shard

import (
	"fmt"
	"sync"
)

// Sharded fans updates out over p summaries of type S. All methods are
// safe for concurrent use.
type Sharded[S any] struct {
	mus    []sync.Mutex
	shards []S
}

// New returns a Sharded with p shards built by mk (called once per
// shard index).
func New[S any](p int, mk func(shard int) S) *Sharded[S] {
	if p < 1 {
		panic("shard: need at least one shard")
	}
	s := &Sharded[S]{
		mus:    make([]sync.Mutex, p),
		shards: make([]S, p),
	}
	for i := range s.shards {
		s.shards[i] = mk(i)
	}
	return s
}

// Shards returns the shard count.
func (s *Sharded[S]) Shards() int { return len(s.shards) }

// Update locks the shard selected by key and applies f to its summary.
// Callers route related keys to the same shard by hashing; unrelated
// keys spread across shards and proceed in parallel.
func (s *Sharded[S]) Update(key uint64, f func(S)) {
	i := int(key % uint64(len(s.shards)))
	s.mus[i].Lock()
	f(s.shards[i])
	s.mus[i].Unlock()
}

// UpdateAny applies f to an arbitrary shard chosen by the caller-
// provided token (e.g. a goroutine-local counter); use when the
// summary accepts any routing, such as quantile summaries.
func (s *Sharded[S]) UpdateAny(token uint64, f func(S)) {
	s.Update(token, f)
}

// Snapshot clones every shard under its lock and folds the clones
// with merge, returning a summary equivalent (by mergeability) to one
// that observed every update. Ingestion continues concurrently;
// the snapshot is a consistent-per-shard cut.
func (s *Sharded[S]) Snapshot(clone func(S) S, merge func(dst, src S) error) (S, error) {
	clones := make([]S, len(s.shards))
	for i := range s.shards {
		s.mus[i].Lock()
		clones[i] = clone(s.shards[i])
		s.mus[i].Unlock()
	}
	acc := clones[0]
	for i, c := range clones[1:] {
		if err := merge(acc, c); err != nil {
			return acc, fmt.Errorf("shard: merging shard %d: %w", i+1, err)
		}
	}
	return acc, nil
}

// Drain removes and returns the shard summaries, replacing them with
// fresh ones from mk — the epoch-rotation pattern for periodic
// flushing to an aggregator.
func (s *Sharded[S]) Drain(mk func(shard int) S) []S {
	out := make([]S, len(s.shards))
	for i := range s.shards {
		s.mus[i].Lock()
		out[i] = s.shards[i]
		s.shards[i] = mk(i)
		s.mus[i].Unlock()
	}
	return out
}
