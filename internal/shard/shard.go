// Package shard provides a concurrent ingestion wrapper around any
// mergeable summary: updates are routed to per-shard summaries guarded
// by per-shard locks, and queries merge a snapshot of all shards. This
// is the intra-process mirror of the paper's distributed story — the
// reason it works at all is mergeability: a snapshot merged from P
// shard summaries carries the same guarantee as one summary that saw
// every update.
package shard

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/mergetree"
)

// Sharded fans updates out over p summaries of type S. All methods are
// safe for concurrent use.
type Sharded[S any] struct {
	mus []sync.Mutex
	// shards[i] may only be touched while holding mus[i]; the slice
	// header itself is immutable after New. guarded by mus
	shards []S
	// parts pools per-shard index buffers for UpdateBatch so steady-
	// state batch ingestion allocates nothing. sync.Pool synchronizes
	// internally.
	parts sync.Pool
}

// New returns a Sharded with p shards built by mk (called once per
// shard index). The receiver is unpublished until New returns, so no
// locks are needed while filling the shards.
//
//sketch:locked
func New[S any](p int, mk func(shard int) S) *Sharded[S] {
	if p < 1 {
		panic("shard: need at least one shard")
	}
	s := &Sharded[S]{
		mus:    make([]sync.Mutex, p),
		shards: make([]S, p),
	}
	for i := range s.shards {
		s.shards[i] = mk(i)
	}
	return s
}

// Shards returns the shard count.
func (s *Sharded[S]) Shards() int { return len(s.shards) }

// Update locks the shard selected by key and applies f to its summary.
// Callers route related keys to the same shard by hashing; unrelated
// keys spread across shards and proceed in parallel.
func (s *Sharded[S]) Update(key uint64, f func(S)) {
	i := int(key % uint64(len(s.shards)))
	s.mus[i].Lock()
	f(s.shards[i])
	s.mus[i].Unlock()
}

// UpdateAny applies f to an arbitrary shard chosen by the caller-
// provided token (e.g. a goroutine-local counter); use when the
// summary accepts any routing, such as quantile summaries.
func (s *Sharded[S]) UpdateAny(token uint64, f func(S)) {
	s.Update(token, f)
}

// UpdateBatch ingests items [0, n) in one pass: it partitions the
// indices by shard using key(i), then for every non-empty shard takes
// that shard's lock once and calls apply with the shard's summary and
// the indices routed to it (in ascending order). This turns n lock
// acquisitions into at most Shards() per batch, which is where the
// batch ingestion layer wins under contention; apply should feed the
// indexed items to the summary's own batch method.
//
// The partition buffers are pooled, so steady-state batches allocate
// nothing beyond what apply does. The idxs slice passed to apply is
// only valid during the call.
//
//sketch:hotpath
func (s *Sharded[S]) UpdateBatch(n int, key func(i int) uint64, apply func(shard S, idxs []int)) {
	if n <= 0 {
		return
	}
	p := uint64(len(s.shards))
	var parts [][]int
	if v := s.parts.Get(); v != nil {
		parts = *(v.(*[][]int))
	} else {
		parts = make([][]int, p)
	}
	for i := 0; i < n; i++ {
		b := key(i) % p
		parts[b] = append(parts[b], i)
	}
	for b := range parts {
		if len(parts[b]) == 0 {
			continue
		}
		s.mus[b].Lock()
		apply(s.shards[b], parts[b])
		s.mus[b].Unlock()
		parts[b] = parts[b][:0]
	}
	s.parts.Put(&parts)
}

// Snapshot clones every shard under its lock and folds the clones
// with merge, returning a summary equivalent (by mergeability) to one
// that observed every update. Ingestion continues concurrently;
// the snapshot is a consistent-per-shard cut. The clones are folded
// with mergetree.Parallel — the lock-free pairing reduction — so a
// wide Sharded (64+ shards) snapshots in O(log p) merge depth on a
// multi-core host instead of a serial O(p) chain; mergeability
// guarantees the tree order changes nothing about the result's error
// bound.
func (s *Sharded[S]) Snapshot(clone func(S) S, merge func(dst, src S) error) (S, error) {
	clones := make([]S, len(s.shards))
	for i := range s.shards {
		s.mus[i].Lock()
		clones[i] = clone(s.shards[i])
		s.mus[i].Unlock()
	}
	acc, err := mergetree.Parallel(clones, runtime.GOMAXPROCS(0), mergetree.MergeFunc[S](merge))
	if err != nil {
		return acc, fmt.Errorf("shard: merging snapshot: %w", err)
	}
	return acc, nil
}

// Encoder is the slice of the registry catalog's entry the encoded
// snapshot path needs; *registry.Entry satisfies it. Declaring the
// interface here keeps shard a pure data-structure package with no
// registry dependency.
type Encoder interface {
	Encode(v any) ([]byte, error)
}

// SnapshotEncoded takes a Snapshot and returns it as a self-describing
// wire frame via enc — typically the family's *registry.Entry — ready
// to PUSH to an aggregator. This is the shard-to-server hop of the
// paper's merge topology: per-shard summaries fold locally, and only
// the constant-size frame crosses the process boundary.
func (s *Sharded[S]) SnapshotEncoded(enc Encoder, clone func(S) S, merge func(dst, src S) error) ([]byte, error) {
	acc, err := s.Snapshot(clone, merge)
	if err != nil {
		return nil, err
	}
	data, err := enc.Encode(acc)
	if err != nil {
		return nil, fmt.Errorf("shard: encoding snapshot: %w", err)
	}
	return data, nil
}

// Drain removes and returns the shard summaries, replacing them with
// fresh ones from mk — the epoch-rotation pattern for periodic
// flushing to an aggregator.
func (s *Sharded[S]) Drain(mk func(shard int) S) []S {
	out := make([]S, len(s.shards))
	for i := range s.shards {
		s.mus[i].Lock()
		out[i] = s.shards[i]
		s.shards[i] = mk(i)
		s.mus[i].Unlock()
	}
	return out
}
