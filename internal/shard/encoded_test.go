package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mg"
	"repro/internal/registry"
)

// The encoded snapshot path must produce exactly the frame the
// registry entry would encode from a plain Snapshot — same bytes, kind
// tag included — so a shard layer can feed an aggregator directly.
func TestSnapshotEncoded(t *testing.T) {
	ent, ok := registry.ByName("mg")
	if !ok {
		t.Fatal("mg not registered")
	}
	s := New(4, func(int) *mg.Summary { return mg.New(32) })
	for i := 0; i < 1000; i++ {
		x := core.Item(i % 17)
		s.Update(uint64(x), func(m *mg.Summary) { m.Update(x, 1) })
	}
	clone := (*mg.Summary).Clone
	merge := (*mg.Summary).Merge

	frame, err := s.SnapshotEncoded(ent, clone, merge)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot(clone, merge)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ent.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(frame) != string(want) {
		t.Fatalf("SnapshotEncoded frame differs from Encode(Snapshot()): %d vs %d bytes", len(frame), len(want))
	}

	got, err := ent.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n := got.(*mg.Summary).N(); n != 1000 {
		t.Fatalf("decoded snapshot n = %d, want 1000", n)
	}
}
