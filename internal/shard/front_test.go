package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mergetree"
	"repro/internal/mg"
)

// ctrOps is a minimal Ops over *uint64 accumulators for exercising the
// front's mechanics (ownership, dirty tracking, drain) without
// dragging in a summary family.
type ctrOps struct{ failMerge bool }

func (o ctrOps) Merge(dst, src any) error {
	if o.failMerge {
		return errors.New("injected merge failure")
	}
	*dst.(*uint64) += *src.(*uint64)
	return nil
}

func (o ctrOps) N(v any) uint64 { return *v.(*uint64) }

func ctr(v uint64) *uint64 { return &v }

func TestFrontPushDrainMechanics(t *testing.T) {
	f := NewFront(ctrOps{}, 4)
	if f.Lanes() != 4 {
		t.Fatalf("Lanes() = %d, want 4", f.Lanes())
	}
	if f.Dirty() {
		t.Fatal("new front reports dirty")
	}
	if got := f.Drain(); got != nil {
		t.Fatalf("Drain on clean front = %v, want nil", got)
	}

	// First push to a lane transfers ownership; the second merges.
	consumed, err := f.Push(0, ctr(3))
	if err != nil || !consumed {
		t.Fatalf("first Push = (%v, %v), want (true, nil)", consumed, err)
	}
	consumed, err = f.Push(0, ctr(5))
	if err != nil || consumed {
		t.Fatalf("second Push = (%v, %v), want (false, nil)", consumed, err)
	}
	// A distinct token modulo lanes lands in its own lane.
	if _, err := f.Push(1, ctr(7)); err != nil {
		t.Fatal(err)
	}
	if !f.Dirty() {
		t.Fatal("front with pending lanes reports clean")
	}
	if got := f.PushedN(); got != 15 {
		t.Fatalf("PushedN = %d, want 15", got)
	}

	out := f.Drain()
	if len(out) != 2 {
		t.Fatalf("Drain returned %d lanes, want 2", len(out))
	}
	var total uint64
	for _, p := range out {
		total += *p.(*uint64)
	}
	if total != 15 {
		t.Fatalf("drained total = %d, want 15", total)
	}
	if f.Dirty() {
		t.Fatal("front reports dirty after full drain")
	}
	if got := f.PushedN(); got != 15 {
		t.Fatalf("PushedN after drain = %d, want 15 (monotone)", got)
	}
}

func TestFrontPushMergeError(t *testing.T) {
	f := NewFront(ctrOps{failMerge: true}, 1)
	if consumed, err := f.Push(0, ctr(1)); err != nil || !consumed {
		t.Fatalf("installing push = (%v, %v), want (true, nil)", consumed, err)
	}
	consumed, err := f.Push(0, ctr(2))
	if err == nil {
		t.Fatal("expected injected merge failure")
	}
	if consumed {
		t.Fatal("failed merge must not consume src")
	}
	// The lane stays drainable after the failure.
	if got := f.Drain(); len(got) != 1 {
		t.Fatalf("Drain after failed merge returned %d lanes, want 1", len(got))
	}
}

func TestFrontTokenModulo(t *testing.T) {
	f := NewFront(ctrOps{}, 3)
	// Tokens 0 and 3 share lane 0; 1 gets its own.
	f.Push(0, ctr(1))
	f.Push(3, ctr(1))
	f.Push(1, ctr(1))
	if got := f.Drain(); len(got) != 2 {
		t.Fatalf("Drain returned %d lanes, want 2", len(got))
	}
}

func TestFrontDefaultLanes(t *testing.T) {
	if got := NewFront(ctrOps{}, 0).Lanes(); got < 1 {
		t.Fatalf("NewFront(ops, 0).Lanes() = %d, want >= 1", got)
	}
}

// mgOps adapts mg.Summary to the front's merge surface, standing in
// for the registry entry the server hands NewFront.
type mgOps struct{}

func (mgOps) Merge(dst, src any) error { return dst.(*mg.Summary).Merge(src.(*mg.Summary)) }
func (mgOps) N(v any) uint64           { return v.(*mg.Summary).N() }

// TestFrontConcurrentPushDrain hammers a front from concurrent
// producers with drains racing the pushes (run under -race), then
// checks that nothing was lost: the final merged summary carries every
// pushed update with the MG deficit bound intact.
func TestFrontConcurrentPushDrain(t *testing.T) {
	const (
		k         = 128
		producers = 8
		batches   = 40
		perBatch  = 256
	)
	f := NewFront(mgOps{}, 4)
	truth := make([]map[core.Item]uint64, producers)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		truth[p] = make(map[core.Item]uint64)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(p) + 1))
			local := make(map[core.Item]uint64)
			for b := 0; b < batches; b++ {
				s := mg.New(k)
				for i := 0; i < perBatch; i++ {
					// Skewed stream: small ids are heavy.
					x := core.Item(rng.Intn(32))
					if rng.Intn(4) == 0 {
						x = core.Item(rng.Intn(1 << 16))
					}
					s.Update(x, 1)
					local[x]++
				}
				if consumed, err := f.Push(uint64(p), s); err != nil {
					t.Errorf("producer %d: Push: %v", p, err)
					return
				} else if !consumed {
					// Front merged it; the summary is ours to drop.
					_ = s
				}
			}
			truth[p] = local
		}(p)
	}

	// Drain concurrently with the producers, as the epoch ticker does.
	stop := make(chan struct{})
	var drainWG sync.WaitGroup
	drained := mg.New(k)
	var drainedMu sync.Mutex
	absorb := func() {
		for _, p := range f.Drain() {
			drainedMu.Lock()
			if err := drained.Merge(p.(*mg.Summary)); err != nil {
				t.Errorf("absorb: %v", err)
			}
			drainedMu.Unlock()
		}
	}
	drainWG.Add(1)
	go func() {
		defer drainWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				absorb()
			}
		}
	}()

	wg.Wait()
	close(stop)
	drainWG.Wait()
	absorb() // final flush after all producers stopped

	exact := make(map[core.Item]uint64)
	var total uint64
	for _, m := range truth {
		for x, c := range m {
			exact[x] += c
			total += c
		}
	}
	if got := f.PushedN(); got != total {
		t.Fatalf("PushedN = %d, want %d", got, total)
	}
	if got := drained.N(); got != total {
		t.Fatalf("merged N = %d, want %d (weight lost across drains)", got, total)
	}
	if f.Dirty() {
		t.Fatal("front reports dirty after final drain")
	}
	bound := drained.ErrorBound()
	if maxBound := total / uint64(k+1); bound > maxBound {
		t.Fatalf("merged ErrorBound = %d exceeds n/(k+1) = %d", bound, maxBound)
	}
	for x, c := range exact {
		est := uint64(drained.Estimate(x).Value)
		if est > c {
			t.Fatalf("item %d overestimated: est %d > true %d", x, est, c)
		}
		if c > bound && est+bound < c {
			t.Fatalf("item %d underestimated past bound: est %d + %d < true %d", x, est, bound, c)
		}
	}
}

// TestFrontMetamorphicDrain checks that the lane partition is
// guarantee-invariant: however pushes distribute over lanes and in
// whatever order the drained shards are merged back, the result obeys
// the MG bound — the property that makes the ingest front sound.
func TestFrontMetamorphicDrain(t *testing.T) {
	const (
		k        = 64
		batches  = 24
		perBatch = 512
	)
	for _, lanes := range []int{1, 3, 8} {
		f := NewFront(mgOps{}, lanes)
		rng := rand.New(rand.NewSource(7))
		exact := make(map[core.Item]uint64)
		var total uint64
		for b := 0; b < batches; b++ {
			s := mg.New(k)
			for i := 0; i < perBatch; i++ {
				x := core.Item(rng.Intn(96))
				s.Update(x, 1)
				exact[x]++
				total++
			}
			if _, err := f.Push(uint64(rng.Intn(64)), s); err != nil {
				t.Fatal(err)
			}
		}
		shards := f.Drain()
		parts := make([]*mg.Summary, len(shards))
		for i, p := range shards {
			parts[i] = p.(*mg.Summary)
		}
		err := mergetree.Metamorphic(parts,
			func(s *mg.Summary) *mg.Summary { return s.Clone() },
			func(dst, src *mg.Summary) error { return dst.Merge(src) },
			func(topology string, merged *mg.Summary) error {
				if merged.N() != total {
					return fmt.Errorf("%s: N = %d, want %d", topology, merged.N(), total)
				}
				bound := merged.ErrorBound()
				if maxBound := total / uint64(k+1); bound > maxBound {
					return fmt.Errorf("%s: bound %d > n/(k+1) = %d", topology, bound, maxBound)
				}
				for x, c := range exact {
					est := uint64(merged.Estimate(x).Value)
					if est > c {
						return fmt.Errorf("%s: item %d est %d > true %d", topology, x, est, c)
					}
					if c > bound && est+bound < c {
						return fmt.Errorf("%s: item %d est %d + bound %d < true %d", topology, x, est, bound, c)
					}
				}
				return nil
			})
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
	}
}
