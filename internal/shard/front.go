package shard

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Ops is the family-erased merge surface the ingest front needs: a
// merge that folds src into dst and a weight accessor. The registry's
// *Entry satisfies it, so a server can hand a catalog entry straight
// to NewFront without this package importing the registry.
type Ops interface {
	Merge(dst, src any) error
	N(v any) uint64
}

// Front is a per-CPU (per-goroutine-shard) ingest front for one
// aggregation target: concurrent producers fold incoming summaries
// into per-lane pending accumulators chosen by a producer token, so
// pushes from different producers never contend on the target's lock —
// or on each other, as long as their tokens spread across lanes. The
// owner of the target drains the lanes on an epoch tick (or before a
// read) and merges the pending summaries in; mergeability guarantees
// the result is identical in bound to having merged every push
// directly.
//
// A Front is safe for concurrent use. It holds at most one pending
// summary per lane, so its memory footprint is bounded by lanes ×
// summary size regardless of push rate.
type Front struct {
	ops     Ops
	lanes   []frontLane
	dirty   atomic.Int64  // number of lanes holding a pending summary
	pushedN atomic.Uint64 // total weight absorbed, across drains
}

// frontLane is one accumulation slot. The pad keeps neighbouring lanes
// on separate cache lines so uncontended pushes do not false-share.
type frontLane struct {
	mu      sync.Mutex
	pending any
	_       [40]byte
}

// NewFront returns a front over the given merge surface with the given
// lane count; lanes < 1 selects GOMAXPROCS lanes.
func NewFront(ops Ops, lanes int) *Front {
	if lanes < 1 {
		lanes = runtime.GOMAXPROCS(0)
	}
	return &Front{ops: ops, lanes: make([]frontLane, lanes)}
}

// Lanes returns the lane count.
func (f *Front) Lanes() int { return len(f.lanes) }

// Push folds src into the lane selected by token. On return the front
// owns src if consumed is true (src became the lane's pending
// accumulator; the caller must not touch it again); otherwise src was
// merged into the lane's accumulator and the caller may recycle it. A
// merge error leaves the lane's accumulator in an unspecified but
// drainable state and returns the error with consumed false.
//
// Tokens only affect contention, never correctness: any token
// distribution yields the same merged result up to merge order, which
// mergeability makes guarantee-equivalent.
func (f *Front) Push(token uint64, src any) (consumed bool, err error) {
	n := f.ops.N(src)
	ln := &f.lanes[token%uint64(len(f.lanes))]
	ln.mu.Lock()
	if ln.pending == nil {
		ln.pending = src
		f.dirty.Add(1) // inside the lock: a completed Push is always visible to Dirty
		ln.mu.Unlock()
		f.pushedN.Add(n)
		return true, nil
	}
	err = f.ops.Merge(ln.pending, src)
	ln.mu.Unlock()
	if err != nil {
		return false, err
	}
	f.pushedN.Add(n)
	return false, nil
}

// Dirty reports whether any lane holds a pending summary. A false
// return is a consistent read: every Push that completed before the
// call is either drained or visible.
func (f *Front) Dirty() bool { return f.dirty.Load() != 0 }

// PushedN returns the total weight pushed through the front since
// creation (monotone; draining does not reset it).
func (f *Front) PushedN() uint64 { return f.pushedN.Load() }

// Drain removes and returns every lane's pending summary. The caller
// assumes ownership of the returned summaries and typically merges
// them into the aggregation target under its own lock. Pushes racing a
// drain land in whichever side wins each lane's lock; nothing is lost.
func (f *Front) Drain() []any {
	if f.dirty.Load() == 0 {
		return nil
	}
	var out []any
	for i := range f.lanes {
		ln := &f.lanes[i]
		ln.mu.Lock()
		p := ln.pending
		if p != nil {
			ln.pending = nil
			f.dirty.Add(-1)
		}
		ln.mu.Unlock()
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}
