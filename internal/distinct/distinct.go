// Package distinct implements mergeable count-distinct summaries — the
// classic "other mergeable summaries" family referenced by the
// PODS'12 framework (order statistics of hashed items):
//
//   - KMV (k minimum values): keep the k smallest hash values of the
//     items seen; the k-th smallest value v estimates the distinct
//     count as (k-1)/v. Merging keeps the k smallest of the union,
//     which is exactly the KMV summary of the union — mergeable with
//     zero loss, the same order-statistics argument as the bottom-k
//     sample.
//   - HLL (HyperLogLog): 2^p registers holding the max leading-zero
//     run per hashed bucket; merge is a register-wise max — an
//     idempotent semigroup, so merging is lossless and even tolerates
//     duplicate delivery.
//
// Both summaries hash items with the same seeded 64-bit mixer, so all
// sites constructing summaries with equal parameters merge exactly.
package distinct

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/codec"
	"repro/internal/core"
)

// hash64 is a seeded splitmix64-style mixer used as the item hash. It
// must be identical across sites, so it is a pure function of (seed,
// item).
func hash64(seed uint64, x core.Item) uint64 {
	z := uint64(x) + seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// KMV is a k-minimum-values distinct-count summary. The zero value is
// not usable; use NewKMV. Not safe for concurrent use.
type KMV struct {
	k    int
	seed uint64
	// hashes holds the up-to-k smallest distinct hash values seen, as
	// a max-heap so the largest kept value is at the root.
	hashes []uint64
	member map[uint64]bool
	n      uint64 // total updates (with multiplicity), for bookkeeping
}

// NewKMV returns an empty KMV summary keeping the k smallest hashes.
// Relative standard error is about 1/sqrt(k-2).
func NewKMV(k int, seed uint64) *KMV {
	if k < 2 {
		panic("distinct: KMV needs k >= 2")
	}
	return &KMV{k: k, seed: seed, member: make(map[uint64]bool, k)}
}

// K returns the capacity.
func (s *KMV) K() int { return s.k }

// N returns the number of updates observed (with multiplicity).
func (s *KMV) N() uint64 { return s.n }

// Size returns the number of stored hash values (min(k, distinct)).
func (s *KMV) Size() int { return len(s.hashes) }

func (s *KMV) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.hashes[p] >= s.hashes[i] {
			return
		}
		s.hashes[p], s.hashes[i] = s.hashes[i], s.hashes[p]
		i = p
	}
}

func (s *KMV) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(s.hashes) && s.hashes[l] > s.hashes[big] {
			big = l
		}
		if r < len(s.hashes) && s.hashes[r] > s.hashes[big] {
			big = r
		}
		if big == i {
			return
		}
		s.hashes[i], s.hashes[big] = s.hashes[big], s.hashes[i]
		i = big
	}
}

// offer inserts a hash value if it belongs to the k smallest.
func (s *KMV) offer(h uint64) {
	if s.member[h] {
		return
	}
	if len(s.hashes) < s.k {
		s.member[h] = true
		s.hashes = append(s.hashes, h)
		s.siftUp(len(s.hashes) - 1)
		return
	}
	if h < s.hashes[0] {
		delete(s.member, s.hashes[0])
		s.member[h] = true
		s.hashes[0] = h
		s.siftDown(0)
	}
}

// Update observes one occurrence of x.
func (s *KMV) Update(x core.Item) {
	s.n++
	s.offer(hash64(s.seed, x))
	debugAssertKMVSampled(s)
}

// Estimate returns the estimated number of distinct items.
func (s *KMV) Estimate() float64 {
	if len(s.hashes) < s.k {
		// Fewer than k distinct hashes seen: the count is exact.
		return float64(len(s.hashes))
	}
	// (k-1) / normalized k-th minimum.
	kth := float64(s.hashes[0]) / float64(math.MaxUint64)
	if kth == 0 {
		return float64(s.k)
	}
	return float64(s.k-1) / kth
}

// Merge folds other into s: the k smallest hashes of the union are
// kept, which is exactly the KMV summary of the combined stream.
// Summaries must share k and seed; other is not modified.
func (s *KMV) Merge(other *KMV) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if s.k != other.k {
		return core.ErrMismatchedK
	}
	if s.seed != other.seed {
		return fmt.Errorf("%w: KMV hash seeds differ", core.ErrMismatchedShape)
	}
	s.n += other.n
	for _, h := range other.hashes {
		s.offer(h)
	}
	debugAssertKMV(s)
	return nil
}

// MergedKMV returns the merge of a and b without modifying either.
func MergedKMV(a, b *KMV) (*KMV, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// Clone returns a deep copy.
func (s *KMV) Clone() *KMV {
	c := NewKMV(s.k, s.seed)
	c.n = s.n
	c.hashes = append([]uint64(nil), s.hashes...)
	for h := range s.member {
		c.member[h] = true
	}
	return c
}

// Hashes returns the stored hash values in ascending order; used by
// tests to verify the merge-equals-union property.
func (s *KMV) Hashes() []uint64 {
	out := append([]uint64(nil), s.hashes...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MarshalBinary implements encoding.BinaryMarshaler. The payload is
// built in a pooled, pre-sized buffer.
func (s *KMV) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Grow(1 + 4*10 + len(s.hashes)*10)
	w.Bool(false) // kind: KMV
	w.Int(s.k)
	w.Uint64(s.seed)
	w.Uint64(s.n)
	hs := s.Hashes()
	w.Int(len(hs))
	for _, h := range hs {
		w.Uint64(h)
	}
	return codec.EncodeFrame(codec.KindKMV, w.Bytes()), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *KMV) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindKMV, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	if r.Bool() {
		return fmt.Errorf("distinct: frame holds an HLL summary")
	}
	k := r.Int()
	seed := r.Uint64()
	n := r.Uint64()
	m := r.ArrayLen(1)
	if r.Err() != nil {
		return r.Err()
	}
	if k < 2 || m > k {
		return fmt.Errorf("distinct: invalid KMV frame (k=%d, m=%d)", k, m)
	}
	out := NewKMV(k, seed)
	out.n = n
	for i := 0; i < m; i++ {
		out.offer(r.Uint64())
	}
	if err := r.Finish(); err != nil {
		return err
	}
	if out.Size() != m {
		return fmt.Errorf("distinct: duplicate hashes in KMV frame")
	}
	*s = *out
	return nil
}

// HLL is a HyperLogLog distinct-count summary with 2^p registers.
// The zero value is not usable; use NewHLL. Not safe for concurrent
// use.
type HLL struct {
	p    uint8
	seed uint64
	n    uint64
	regs []uint8
}

// NewHLL returns an empty HLL with precision p in [4, 18] (2^p
// registers; relative standard error about 1.04/sqrt(2^p)).
func NewHLL(p uint8, seed uint64) *HLL {
	if p < 4 || p > 18 {
		panic("distinct: HLL precision must be in [4, 18]")
	}
	return &HLL{p: p, seed: seed, regs: make([]uint8, 1<<p)}
}

// Precision returns p.
func (s *HLL) Precision() uint8 { return s.p }

// N returns the number of updates observed (with multiplicity).
func (s *HLL) N() uint64 { return s.n }

// Update observes one occurrence of x.
func (s *HLL) Update(x core.Item) {
	s.n++
	h := hash64(s.seed, x)
	idx := h >> (64 - s.p)
	rest := h<<s.p | 1<<(uint(s.p)-1) // ensure termination
	rho := uint8(1)
	for rest&(1<<63) == 0 {
		rho++
		rest <<= 1
	}
	if rho > s.regs[idx] {
		s.regs[idx] = rho
	}
	debugAssertHLLSampled(s)
}

// Estimate returns the estimated number of distinct items, with the
// standard small-range (linear counting) correction.
func (s *HLL) Estimate() float64 {
	m := float64(len(s.regs))
	var sum float64
	zeros := 0
	for _, r := range s.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	est := alpha * m * m / sum
	if est <= 2.5*m && zeros > 0 {
		// Linear counting for small cardinalities.
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// Merge folds other into s by register-wise max; summaries must share
// precision and seed. The operation is idempotent and commutative, so
// HLL tolerates re-delivery and arbitrary merge orders. other is not
// modified.
func (s *HLL) Merge(other *HLL) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if s.p != other.p || s.seed != other.seed {
		return fmt.Errorf("%w: HLL precision/seed", core.ErrMismatchedShape)
	}
	s.n += other.n
	for i, r := range other.regs {
		if r > s.regs[i] {
			s.regs[i] = r
		}
	}
	debugAssertHLL(s)
	return nil
}

// MergedHLL returns the merge of a and b without modifying either.
func MergedHLL(a, b *HLL) (*HLL, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// Clone returns a deep copy.
func (s *HLL) Clone() *HLL {
	c := NewHLL(s.p, s.seed)
	c.n = s.n
	copy(c.regs, s.regs)
	return c
}

// MarshalBinary implements encoding.BinaryMarshaler. The payload is
// built in a pooled buffer pre-sized for the register file (each
// register value is < 65, so one uvarint byte each).
func (s *HLL) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	w.Grow(1 + 3*10 + len(s.regs))
	w.Bool(true) // kind: HLL
	w.Int(int(s.p))
	w.Uint64(s.seed)
	w.Uint64(s.n)
	for _, r := range s.regs {
		w.Uint64(uint64(r))
	}
	return codec.EncodeFrame(codec.KindHLL, w.Bytes()), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *HLL) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindHLL, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	if !r.Bool() {
		if r.Err() != nil {
			return r.Err()
		}
		return fmt.Errorf("distinct: frame holds a KMV summary")
	}
	p := r.Int()
	seed := r.Uint64()
	n := r.Uint64()
	if r.Err() != nil {
		return r.Err()
	}
	if p < 4 || p > 18 {
		return fmt.Errorf("distinct: invalid HLL precision %d", p)
	}
	out := NewHLL(uint8(p), seed)
	out.n = n
	for i := range out.regs {
		v := r.Uint64()
		if v > 64 {
			return fmt.Errorf("distinct: implausible register value %d", v)
		}
		out.regs[i] = uint8(v)
	}
	if err := r.Finish(); err != nil {
		return err
	}
	*s = *out
	return nil
}
