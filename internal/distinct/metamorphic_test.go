package distinct

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mergetree"
)

// Property: KMV is a deterministic function of the observed set, so
// every merge topology must reproduce the single-pass summary's hash
// set exactly — merge order cannot even perturb the estimate.
func TestMetamorphicKMVDeterministic(t *testing.T) {
	f := func(vals []uint16, partsRaw uint8) bool {
		nParts := int(partsRaw%6) + 2
		parts := make([]*KMV, nParts)
		for i := range parts {
			parts[i] = NewKMV(16, 9)
		}
		ref := NewKMV(16, 9)
		for i, v := range vals {
			parts[i%nParts].Update(core.Item(v))
			ref.Update(core.Item(v))
		}
		err := mergetree.Metamorphic(parts, (*KMV).Clone,
			func(dst, src *KMV) error { return dst.Merge(src) },
			func(topology string, m *KMV) error {
				got, want := m.Hashes(), ref.Hashes()
				if len(got) != len(want) {
					return fmt.Errorf("%d hashes, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						return fmt.Errorf("hash %d differs from single-pass summary", i)
					}
				}
				return nil
			})
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: HLL's register state is a deterministic function of the
// observed set (register-wise max), so every merge topology must
// reproduce the single-pass registers exactly.
func TestMetamorphicHLLDeterministic(t *testing.T) {
	f := func(vals []uint16, partsRaw uint8) bool {
		nParts := int(partsRaw%6) + 2
		parts := make([]*HLL, nParts)
		for i := range parts {
			parts[i] = NewHLL(8, 3)
		}
		ref := NewHLL(8, 3)
		for i, v := range vals {
			parts[i%nParts].Update(core.Item(v))
			ref.Update(core.Item(v))
		}
		err := mergetree.Metamorphic(parts, (*HLL).Clone,
			func(dst, src *HLL) error { return dst.Merge(src) },
			func(topology string, m *HLL) error {
				for i, r := range m.regs {
					if r != ref.regs[i] {
						return fmt.Errorf("register %d = %d differs from single-pass %d", i, r, ref.regs[i])
					}
				}
				return nil
			})
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
