package distinct

import (
	"math/bits"

	"repro/internal/core"
)

// UpdateBatch observes one occurrence of every item in xs. The state
// is identical to calling Update(x) for each x in order.
//
//sketch:hotpath
func (s *KMV) UpdateBatch(xs []core.Item) {
	seed := s.seed
	for _, x := range xs {
		s.offer(hash64(seed, x))
	}
	s.n += uint64(len(xs))
	debugAssertKMV(s)
}

// UpdateBatch observes one occurrence of every item in xs. The state
// is identical to calling Update(x) for each x: the batch path inlines
// the hash and leading-zero computation with the precision and
// register slice held in registers.
//
//sketch:hotpath
func (s *HLL) UpdateBatch(xs []core.Item) {
	p := uint(s.p)
	seed := s.seed
	regs := s.regs
	for _, x := range xs {
		h := hash64(seed, x)
		idx := h >> (64 - p)
		rest := h<<p | uint64(1)<<(p-1) // ensure termination, as in Update
		rho := uint8(bits.LeadingZeros64(rest)) + 1
		if rho > regs[idx] {
			regs[idx] = rho
		}
	}
	s.n += uint64(len(xs))
	debugAssertHLL(s)
}
