package distinct

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"kmv k=1":  func() { NewKMV(1, 1) },
		"hll p=3":  func() { NewHLL(3, 1) },
		"hll p=19": func() { NewHLL(19, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestKMVExactWhenSmall(t *testing.T) {
	s := NewKMV(64, 1)
	for i := 0; i < 40; i++ {
		s.Update(core.Item(i))
		s.Update(core.Item(i)) // duplicates must not count
	}
	if got := s.Estimate(); got != 40 {
		t.Errorf("Estimate = %v, want exact 40", got)
	}
	if s.N() != 80 {
		t.Errorf("N = %d", s.N())
	}
}

func TestKMVAccuracy(t *testing.T) {
	const distinct = 100000
	for _, k := range []int{256, 1024} {
		s := NewKMV(k, 7)
		// Each item appears a variable number of times.
		rng := gen.NewRNG(3)
		for i := 0; i < distinct; i++ {
			reps := 1 + rng.Intn(3)
			for r := 0; r < reps; r++ {
				s.Update(core.Item(i))
			}
		}
		got := s.Estimate()
		relErr := math.Abs(got-distinct) / distinct
		// 5 sigma of 1/sqrt(k-2).
		if relErr > 5/math.Sqrt(float64(k-2)) {
			t.Errorf("k=%d: estimate %v, rel err %v too large", k, got, relErr)
		}
	}
}

// Mergeability: the merge is exactly the KMV of the union.
func TestKMVMergeIsUnion(t *testing.T) {
	a, b := NewKMV(128, 9), NewKMV(128, 9)
	whole := NewKMV(128, 9)
	for i := 0; i < 5000; i++ {
		x := core.Item(i)
		if i%2 == 0 {
			a.Update(x)
		} else {
			b.Update(x)
		}
		whole.Update(x)
	}
	// Overlap: both sides see some shared items.
	for i := 0; i < 500; i++ {
		a.Update(core.Item(i))
		b.Update(core.Item(i))
		whole.Update(core.Item(i))
		whole.Update(core.Item(i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	ah, wh := a.Hashes(), whole.Hashes()
	if len(ah) != len(wh) {
		t.Fatalf("merged has %d hashes, whole has %d", len(ah), len(wh))
	}
	for i := range ah {
		if ah[i] != wh[i] {
			t.Fatalf("hash %d differs: %d vs %d", i, ah[i], wh[i])
		}
	}
	if a.Estimate() != whole.Estimate() {
		t.Fatal("merged estimate differs from whole-stream estimate")
	}
}

func TestKMVMergeMismatched(t *testing.T) {
	a := NewKMV(64, 1)
	if err := a.Merge(NewKMV(128, 1)); err == nil {
		t.Error("mismatched k accepted")
	}
	if err := a.Merge(NewKMV(64, 2)); err == nil {
		t.Error("mismatched seed accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestKMVCodecRoundTrip(t *testing.T) {
	s := NewKMV(64, 5)
	for i := 0; i < 10000; i++ {
		s.Update(core.Item(i % 3000))
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got KMV
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != s.Estimate() || got.N() != s.N() || got.Size() != s.Size() {
		t.Fatal("round trip changed state")
	}
	data[len(data)-5] ^= 0xff
	if err := got.UnmarshalBinary(data); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func TestHLLAccuracy(t *testing.T) {
	const distinct = 200000
	for _, p := range []uint8{10, 14} {
		s := NewHLL(p, 3)
		for i := 0; i < distinct; i++ {
			s.Update(core.Item(i))
			if i%3 == 0 {
				s.Update(core.Item(i)) // duplicates
			}
		}
		got := s.Estimate()
		relErr := math.Abs(got-distinct) / distinct
		if relErr > 5*1.04/math.Sqrt(float64(uint64(1)<<p)) {
			t.Errorf("p=%d: estimate %v, rel err %v too large", p, got, relErr)
		}
	}
}

func TestHLLSmallRange(t *testing.T) {
	s := NewHLL(12, 1)
	for i := 0; i < 100; i++ {
		s.Update(core.Item(i))
	}
	got := s.Estimate()
	if math.Abs(got-100) > 10 {
		t.Errorf("small-range estimate %v, want ~100", got)
	}
}

// HLL merge is idempotent: merging a summary with itself changes
// nothing but N.
func TestHLLMergeIdempotent(t *testing.T) {
	s := NewHLL(10, 2)
	for i := 0; i < 10000; i++ {
		s.Update(core.Item(i))
	}
	before := s.Estimate()
	c := s.Clone()
	if err := s.Merge(c); err != nil {
		t.Fatal(err)
	}
	if s.Estimate() != before {
		t.Error("self-merge changed the estimate")
	}
}

// HLL mergeability: merged registers equal whole-stream registers.
func TestHLLMergeEqualsWhole(t *testing.T) {
	a, b, whole := NewHLL(12, 7), NewHLL(12, 7), NewHLL(12, 7)
	for i := 0; i < 50000; i++ {
		x := core.Item(i * 3)
		whole.Update(x)
		if i%2 == 0 {
			a.Update(x)
		} else {
			b.Update(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != whole.Estimate() {
		t.Fatalf("merged estimate %v != whole %v", a.Estimate(), whole.Estimate())
	}
}

func TestHLLMergeMismatched(t *testing.T) {
	a := NewHLL(10, 1)
	if err := a.Merge(NewHLL(11, 1)); err == nil {
		t.Error("mismatched p accepted")
	}
	if err := a.Merge(NewHLL(10, 2)); err == nil {
		t.Error("mismatched seed accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestHLLCodecRoundTrip(t *testing.T) {
	s := NewHLL(10, 5)
	for i := 0; i < 30000; i++ {
		s.Update(core.Item(i))
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got HLL
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != s.Estimate() || got.N() != s.N() {
		t.Fatal("round trip changed state")
	}
	data[len(data)-5] ^= 0xff
	if err := got.UnmarshalBinary(data); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func TestCodecKindSeparation(t *testing.T) {
	kmvData, _ := NewKMV(8, 1).MarshalBinary()
	hllData, _ := NewHLL(8, 1).MarshalBinary()
	var k KMV
	if err := k.UnmarshalBinary(hllData); err == nil {
		t.Error("KMV decoded an HLL frame")
	}
	var h HLL
	if err := h.UnmarshalBinary(kmvData); err == nil {
		t.Error("HLL decoded a KMV frame")
	}
}

// Property: for any partition of a distinct-item set into two streams,
// KMV merge equals the whole-stream KMV (hash-for-hash).
func TestKMVMergeProperty(t *testing.T) {
	f := func(items []uint32, split uint8) bool {
		a, b, whole := NewKMV(32, 11), NewKMV(32, 11), NewKMV(32, 11)
		for i, raw := range items {
			x := core.Item(raw)
			whole.Update(x)
			if uint8(i)%16 < split%16+1 {
				a.Update(x)
			} else {
				b.Update(x)
			}
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		ah, wh := a.Hashes(), whole.Hashes()
		if len(ah) != len(wh) {
			return false
		}
		for i := range ah {
			if ah[i] != wh[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
