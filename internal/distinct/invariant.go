//go:build sanitize

package distinct

import "fmt"

// sanitizeEnabled reports whether this build carries the runtime
// invariant layer (`go test -tags sanitize`). See DESIGN.md.
const sanitizeEnabled = true

// debugAssertKMV panics if s violates the k-minimum-values structural
// invariants: at most k stored hashes, max-heap order (every child ≤
// its parent, so the root is the k-th minimum), and an exact
// membership map (no duplicates counted, no stale entries).
func debugAssertKMV(s *KMV) {
	if len(s.hashes) > s.k {
		panic(fmt.Sprintf("distinct: sanitize: KMV holds %d hashes, cap k=%d", len(s.hashes), s.k))
	}
	for i := 1; i < len(s.hashes); i++ {
		parent := (i - 1) / 2
		if s.hashes[i] > s.hashes[parent] {
			panic(fmt.Sprintf("distinct: sanitize: KMV heap order broken at %d", i))
		}
	}
	if len(s.member) != len(s.hashes) {
		panic(fmt.Sprintf("distinct: sanitize: KMV member map has %d entries for %d hashes", len(s.member), len(s.hashes)))
	}
	for _, h := range s.hashes {
		if !s.member[h] {
			panic(fmt.Sprintf("distinct: sanitize: KMV hash %#x missing from member map", h))
		}
	}
}

// debugAssertHLL panics if s violates the HyperLogLog structural
// invariants: exactly 2^p registers, each holding a rho value no
// larger than a 64-bit hash allows (64−p leading-zero bits plus one).
func debugAssertHLL(s *HLL) {
	if len(s.regs) != 1<<s.p {
		panic(fmt.Sprintf("distinct: sanitize: HLL has %d registers, want 2^%d", len(s.regs), s.p))
	}
	max := uint8(64-s.p) + 1
	for i, r := range s.regs {
		if r > max {
			panic(fmt.Sprintf("distinct: sanitize: HLL register %d holds rho=%d, max %d", i, r, max))
		}
	}
}

// debugAssertKMVSampled samples the O(k) KMV check 1-in-64 (keyed on
// n) so per-item ingestion stays usable under the sanitize tag.
func debugAssertKMVSampled(s *KMV) {
	if s.n&63 == 0 {
		debugAssertKMV(s)
	}
}

// debugAssertHLLSampled samples the O(2^p) HLL check (keyed on n).
func debugAssertHLLSampled(s *HLL) {
	if s.n&1023 == 0 {
		debugAssertHLL(s)
	}
}
