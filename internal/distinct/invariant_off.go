//go:build !sanitize

package distinct

// sanitizeEnabled reports whether this build carries the runtime
// invariant layer; see invariant.go (build tag sanitize).
const sanitizeEnabled = false

// The debugAssert family is a no-op unless built with -tags sanitize.

func debugAssertKMV(*KMV) {}

func debugAssertHLL(*HLL) {}

func debugAssertKMVSampled(*KMV) {}

func debugAssertHLLSampled(*HLL) {}
