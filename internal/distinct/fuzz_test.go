package distinct

import (
	"testing"

	"repro/internal/core"
)

func FuzzUnmarshal(f *testing.F) {
	k := NewKMV(16, 1)
	h := NewHLL(6, 1)
	for i := 0; i < 500; i++ {
		k.Update(core.Item(i))
		h.Update(core.Item(i))
	}
	kd, _ := k.MarshalBinary()
	hd, _ := h.MarshalBinary()
	f.Add(kd)
	f.Add(hd)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var ok KMV
		if err := ok.UnmarshalBinary(data); err == nil {
			if ok.Size() > ok.K() {
				t.Fatal("accepted KMV frame overflows capacity")
			}
		}
		var oh HLL
		_ = oh.UnmarshalBinary(data)
	})
}
