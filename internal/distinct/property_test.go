package distinct

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// Property: HLL estimates are monotone under merging (register-wise
// max can only grow the estimate) and invariant under self-merge.
func TestPropertyHLLMonotoneMerge(t *testing.T) {
	f := func(s1, s2 []uint16) bool {
		a, b := NewHLL(8, 3), NewHLL(8, 3)
		for _, v := range s1 {
			a.Update(core.Item(v))
		}
		for _, v := range s2 {
			b.Update(core.Item(v))
		}
		before := a.Estimate()
		merged := a.Clone()
		if err := merged.Merge(b); err != nil {
			return false
		}
		if merged.Estimate() < before-1e-9 {
			return false
		}
		// Idempotence.
		again := merged.Clone()
		if err := again.Merge(merged); err != nil {
			return false
		}
		return again.Estimate() == merged.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: merging KMVs commutes — a⊎b and b⊎a hold identical hash
// sets, hence identical estimates.
func TestPropertyKMVCommutative(t *testing.T) {
	f := func(s1, s2 []uint16) bool {
		build := func(vals []uint16) *KMV {
			s := NewKMV(16, 9)
			for _, v := range vals {
				s.Update(core.Item(v))
			}
			return s
		}
		ab := build(s1)
		if err := ab.Merge(build(s2)); err != nil {
			return false
		}
		ba := build(s2)
		if err := ba.Merge(build(s1)); err != nil {
			return false
		}
		ha, hb := ab.Hashes(), ba.Hashes()
		if len(ha) != len(hb) {
			return false
		}
		for i := range ha {
			if ha[i] != hb[i] {
				return false
			}
		}
		return ab.Estimate() == ba.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: KMV never stores more than k hashes and its exact regime
// (fewer than k distinct) reports the exact distinct count.
func TestPropertyKMVExactRegime(t *testing.T) {
	f := func(vals []uint8) bool {
		s := NewKMV(300, 4) // k above the max distinct of a byte universe
		seen := make(map[uint8]bool)
		for _, v := range vals {
			s.Update(core.Item(v))
			seen[v] = true
		}
		if s.Size() > s.K() {
			return false
		}
		return s.Estimate() == float64(len(seen))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
