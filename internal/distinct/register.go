package distinct

import (
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/registry"
)

// init catalogs both distinct-count families; see internal/registry.
func init() {
	registry.Register[KMV](codec.KindKMV, "kmv", registry.Spec[KMV]{
		Example: func(n int) *KMV {
			s := NewKMV(256, 9)
			for i := 0; i < n; i++ {
				s.Update(core.Item(i))
			}
			return s
		},
		Merge: (*KMV).Merge,
		N:     (*KMV).N,
	})
	registry.Register[HLL](codec.KindHLL, "hll", registry.Spec[HLL]{
		Example: func(n int) *HLL {
			s := NewHLL(12, 10)
			for i := 0; i < n; i++ {
				s.Update(core.Item(i))
			}
			return s
		},
		Merge: (*HLL).Merge,
		N:     (*HLL).N,
	})
}
