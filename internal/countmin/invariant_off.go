//go:build !sanitize

package countmin

// sanitizeEnabled reports whether this build carries the runtime
// invariant layer; see invariant.go (build tag sanitize).
const sanitizeEnabled = false

// debugAssert is a no-op unless built with -tags sanitize.
func debugAssert(*Sketch) {}

// debugAssertSampled is a no-op unless built with -tags sanitize.
func debugAssertSampled(*Sketch) {}
