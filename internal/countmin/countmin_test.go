package countmin

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"width":       func() { New(0, 2, 1) },
		"depth":       func() { New(2, 0, 1) },
		"eps":         func() { NewEpsilonDelta(0, 0.1, 1) },
		"delta":       func() { NewEpsilonDelta(0.1, 0, 1) },
		"zero-weight": func() { New(8, 2, 1).Update(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNeverUnderestimates(t *testing.T) {
	const n = 100000
	stream := gen.NewZipf(5000, 1.2, 3).Stream(n)
	truth := exact.FreqOf(stream)
	s := New(512, 4, 7)
	for _, x := range stream {
		s.Update(x, 1)
	}
	if s.N() != n {
		t.Fatalf("N = %d", s.N())
	}
	for _, c := range truth.Counters() {
		if est := s.Estimate(c.Item); est.Value < c.Count {
			t.Fatalf("underestimate of %d: %d < %d", c.Item, est.Value, c.Count)
		}
	}
}

func TestErrorWithinExpectedScale(t *testing.T) {
	const n = 200000
	stream := gen.NewZipf(5000, 1.3, 11).Stream(n)
	truth := exact.FreqOf(stream)
	eps := 0.01
	s := NewEpsilonDelta(eps, 0.01, 5)
	for _, x := range stream {
		s.Update(x, 1)
	}
	// With width=2/eps, overestimate of a given item exceeds eps*n with
	// probability < delta. Check the top 100 items all sit within eps*n.
	bound := uint64(eps * float64(n))
	for _, c := range truth.Counters()[:100] {
		est := s.Estimate(c.Item)
		if est.Value-c.Count > bound {
			t.Errorf("item %d: overestimate %d > %d", c.Item, est.Value-c.Count, bound)
		}
	}
}

func TestConservativeNoWorse(t *testing.T) {
	const n = 50000
	stream := gen.NewZipf(2000, 1.2, 9).Stream(n)
	plain := New(128, 4, 3)
	cons := New(128, 4, 3)
	cons.SetConservative(true)
	for _, x := range stream {
		plain.Update(x, 1)
		cons.Update(x, 1)
	}
	truth := exact.FreqOf(stream)
	var plainErr, consErr uint64
	for _, c := range truth.Counters() {
		plainErr += plain.Estimate(c.Item).Value - c.Count
		cv := cons.Estimate(c.Item).Value
		if cv < c.Count {
			t.Fatalf("conservative underestimated %d: %d < %d", c.Item, cv, c.Count)
		}
		consErr += cv - c.Count
	}
	if consErr > plainErr {
		t.Errorf("conservative total error %d > plain %d", consErr, plainErr)
	}
}

func TestMergeEqualsWholeStream(t *testing.T) {
	const n = 60000
	stream := gen.NewZipf(1000, 1.4, 2).Stream(n)
	parts := gen.PartitionContiguous(stream, 8)
	whole := New(256, 3, 1)
	for _, x := range stream {
		whole.Update(x, 1)
	}
	merged := New(256, 3, 1)
	for _, p := range parts {
		s := New(256, 3, 1)
		for _, x := range p {
			s.Update(x, 1)
		}
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	if merged.N() != whole.N() {
		t.Fatalf("N: %d != %d", merged.N(), whole.N())
	}
	// Linearity: the merged sketch must be bit-identical to the
	// whole-stream sketch.
	for _, x := range []core.Item{0, 1, 5, 99, 12345} {
		if merged.Estimate(x) != whole.Estimate(x) {
			t.Fatalf("estimate of %d differs: %v vs %v", x, merged.Estimate(x), whole.Estimate(x))
		}
	}
}

func TestMergeMismatched(t *testing.T) {
	a := New(128, 4, 1)
	for _, b := range []*Sketch{New(64, 4, 1), New(128, 3, 1), New(128, 4, 2)} {
		if err := a.Merge(b); err == nil {
			t.Error("mismatched sketch accepted")
		}
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestHeavyHittersOver(t *testing.T) {
	const n = 50000
	z := gen.NewZipf(1000, 1.5, 4)
	stream := z.Stream(n)
	truth := exact.FreqOf(stream)
	s := New(1024, 4, 8)
	for _, x := range stream {
		s.Update(x, 1)
	}
	threshold := core.HeavyThreshold(n, 100)
	candidates := make([]core.Item, 0, 1000)
	for i := 1; i <= 1000; i++ {
		candidates = append(candidates, z.ItemForRank(i))
	}
	got := s.HeavyHittersOver(candidates, threshold)
	set := make(map[core.Item]bool)
	for _, c := range got {
		set[c.Item] = true
	}
	for _, c := range truth.HeavyHitters(threshold) {
		if !set[c.Item] {
			t.Errorf("true heavy hitter %d missing", c.Item)
		}
	}
}

func TestCloneAndReset(t *testing.T) {
	s := New(64, 2, 1)
	s.Update(1, 10)
	c := s.Clone()
	c.Update(1, 5)
	if s.Estimate(1).Value != 10 || c.Estimate(1).Value != 15 {
		t.Fatal("clone not independent")
	}
	s.Reset()
	if s.N() != 0 || s.Estimate(1).Value != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	s := New(128, 4, 9)
	s.SetConservative(true)
	for _, x := range gen.NewZipf(500, 1.1, 6).Stream(20000) {
		s.Update(x, 1)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Sketch
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.N() != s.N() || got.Width() != s.Width() || got.Depth() != s.Depth() {
		t.Fatal("header changed")
	}
	for x := core.Item(0); x < 500; x++ {
		if got.Estimate(x) != s.Estimate(x) {
			t.Fatalf("estimate of %d differs", x)
		}
	}
	data[len(data)-5] ^= 0xff
	if err := got.UnmarshalBinary(data); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func TestRemoveStrictTurnstile(t *testing.T) {
	s := New(256, 4, 1)
	s.Update(1, 100)
	s.Update(2, 50)
	s.Remove(1, 40)
	if s.N() != 110 {
		t.Fatalf("N = %d", s.N())
	}
	if est := s.Estimate(1).Value; est < 60 {
		t.Errorf("Estimate(1) = %d underestimates after remove", est)
	}
	if est := s.Estimate(2).Value; est < 50 {
		t.Errorf("Estimate(2) = %d damaged by unrelated remove", est)
	}
	// Full deletion drives the estimate to its collision floor.
	s.Remove(1, 60)
	if est := s.Estimate(2).Value; est < 50 {
		t.Errorf("Estimate(2) = %d after full deletion of 1", est)
	}
}

func TestRemovePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero weight": func() { New(8, 2, 1).Remove(1, 0) },
		"conservative": func() {
			s := New(8, 2, 1)
			s.SetConservative(true)
			s.Update(1, 1)
			s.Remove(1, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Turnstile linearity: insert a stream, delete a sub-stream, and the
// sketch equals the sketch of the difference.
func TestRemoveLinearity(t *testing.T) {
	stream := gen.NewZipf(500, 1.2, 9).Stream(20000)
	full := New(512, 4, 2)
	for _, x := range stream {
		full.Update(x, 1)
	}
	for _, x := range stream[:5000] {
		full.Remove(x, 1)
	}
	direct := New(512, 4, 2)
	for _, x := range stream[5000:] {
		direct.Update(x, 1)
	}
	if full.N() != direct.N() {
		t.Fatalf("N: %d vs %d", full.N(), direct.N())
	}
	for x := core.Item(0); x < 500; x++ {
		if full.Estimate(x) != direct.Estimate(x) {
			t.Fatalf("estimate of %d differs: %v vs %v", x, full.Estimate(x), direct.Estimate(x))
		}
	}
}
