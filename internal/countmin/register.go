package countmin

import (
	"repro/internal/codec"
	"repro/internal/gen"
	"repro/internal/registry"
)

// init catalogs the family; see internal/registry.
func init() {
	registry.Register[Sketch](codec.KindCountMin, "countmin", registry.Spec[Sketch]{
		Example: func(n int) *Sketch {
			s := New(512, 4, 5)
			s.UpdateBatch(gen.NewZipf(512, 1.2, 5).Stream(n))
			return s
		},
		Merge: (*Sketch).Merge,
		N:     (*Sketch).N,
	})
}
