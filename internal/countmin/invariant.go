//go:build sanitize

package countmin

import "fmt"

// sanitizeEnabled reports whether this build carries the runtime
// invariant layer (`go test -tags sanitize`). See DESIGN.md.
const sanitizeEnabled = true

// debugAssert panics if s violates the Count-Min structural
// invariants:
//
//   - geometry is intact (depth rows of width cells, per-row hash
//     parameters present);
//   - row monotonicity for plain (non-conservative) sketches: every
//     row carries at least the summarized weight n, and all rows
//     carry the same total — each update adds exactly w to every row,
//     which is what makes the sketch a linear (trivially mergeable)
//     function of the frequency vector. Conservative updates are
//     deliberately sub-linear, so only the ≥-n half applies... and
//     clamped removes only ever reduce a row below its siblings when
//     the caller removed more than was present, which Remove
//     documents as unsupported.
func debugAssert(s *Sketch) {
	if len(s.cells) != s.depth*s.width || len(s.a) != s.depth || len(s.b) != s.depth {
		panic(fmt.Sprintf("countmin: sanitize: geometry broken: %d cells for %dx%d", len(s.cells), s.depth, s.width))
	}
	var first uint64
	for i := 0; i < s.depth; i++ {
		row := s.row(i)
		var sum uint64
		for _, c := range row {
			sum += c
		}
		if !s.conservative {
			if sum < s.n {
				panic(fmt.Sprintf("countmin: sanitize: row %d mass %d below n=%d (lost weight)", i, sum, s.n))
			}
			if i == 0 {
				first = sum
			} else if sum != first {
				panic(fmt.Sprintf("countmin: sanitize: row %d mass %d differs from row 0 mass %d (linearity broken)", i, sum, first))
			}
		}
	}
}

// debugAssertSampled runs the O(width·depth) debugAssert on a
// deterministic sample of calls (keyed on n), keeping per-item paths
// usable under the sanitize tag.
func debugAssertSampled(s *Sketch) {
	if s.n&1023 == 0 {
		debugAssert(s)
	}
}
