// Package countmin implements the Count-Min sketch of Cormode and
// Muthukrishnan: a d×w matrix of counters updated through d pairwise-
// independent hash rows. Point queries return the minimum of the d
// matching cells, which never underestimates and overestimates by at
// most 2n/w with probability 1−(1/2)^d per query.
//
// In the PODS'12 taxonomy linear sketches are the trivially mergeable
// baseline: the sketch is a linear function of the input frequency
// vector, so merging is cell-wise addition — at the price of a log(1/δ)
// size factor and only probabilistic error, which is exactly the
// trade-off the deterministic counter summaries (packages mg and
// spacesaving) avoid.
//
// The matrix is stored as one contiguous backing slice in row-major
// order, so a batch update streams through memory instead of chasing
// per-row allocations, and column indexing uses the multiply-high
// range reduction (Lemire's fastrange) instead of an integer division.
package countmin

import (
	"fmt"
	"math/bits"

	"repro/internal/codec"
	"repro/internal/core"
)

// Sketch is a Count-Min sketch. The zero value is not usable; use New.
// Sketches are not safe for concurrent use.
type Sketch struct {
	width        int
	depth        int
	seed         uint64
	n            uint64
	cells        []uint64 // depth*width counters, row-major
	a, b         []uint64 // per-row multiply-shift hash parameters
	conservative bool
	// scratch holds one column index per row so an item's cells are
	// hashed once and reused (conservative updates, UpdateAndEstimate,
	// batch paths). Lazily allocated; never shared between sketches.
	scratch []int
}

// New returns an empty sketch with the given geometry. Two sketches
// are mergeable iff they share width, depth and seed.
func New(width, depth int, seed uint64) *Sketch {
	if width < 1 || depth < 1 {
		panic("countmin: width and depth must be >= 1")
	}
	s := &Sketch{
		width: width,
		depth: depth,
		seed:  seed,
		cells: make([]uint64, width*depth),
		a:     make([]uint64, depth),
		b:     make([]uint64, depth),
	}
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < depth; i++ {
		s.a[i] = next() | 1 // multiplier must be odd
		s.b[i] = next()
	}
	return s
}

// row returns the i-th row as a view into the backing slice.
func (s *Sketch) row(i int) []uint64 {
	return s.cells[i*s.width : (i+1)*s.width : (i+1)*s.width]
}

// NewEpsilonDelta returns a sketch with error at most eps*n per point
// query with probability 1-delta: width = ceil(2/eps), depth =
// ceil(log2(1/delta)).
func NewEpsilonDelta(eps, delta float64, seed uint64) *Sketch {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("countmin: eps and delta must be in (0, 1)")
	}
	width := int(2/eps + 0.9999999)
	depth := 1
	for p := 0.5; p > delta; p *= 0.5 {
		depth++
	}
	return New(width, depth, seed)
}

// SetConservative switches the sketch to conservative updating
// (increment only the cells that equal the current minimum estimate),
// which reduces overestimation on skewed streams. Conservative
// sketches remain point-query-compatible but are no longer linear, so
// merging them is an upper-bound approximation (still never
// underestimates).
func (s *Sketch) SetConservative(on bool) { s.conservative = on }

// Width returns the row width.
func (s *Sketch) Width() int { return s.width }

// Depth returns the number of rows.
func (s *Sketch) Depth() int { return s.depth }

// N returns the total weight summarized, including merged-in weight.
func (s *Sketch) N() uint64 { return s.n }

// cell returns the column index of x in row i: a multiply-shift hash
// range-reduced by multiply-high, which maps the hash's high bits onto
// [0, width) without a division.
func (s *Sketch) cell(i int, x core.Item) int {
	h := s.a[i]*uint64(x) + s.b[i]
	hi, _ := bits.Mul64(h, uint64(s.width))
	return int(hi)
}

// Update adds w >= 1 occurrences of x.
func (s *Sketch) Update(x core.Item, w uint64) {
	if w == 0 {
		panic("countmin: zero-weight update")
	}
	s.n += w
	if !s.conservative {
		width := uint64(s.width)
		for i := 0; i < s.depth; i++ {
			hi, _ := bits.Mul64(s.a[i]*uint64(x)+s.b[i], width)
			s.cells[uint64(i)*width+hi] += w
		}
		debugAssertSampled(s)
		return
	}
	s.conservativeUpdate(x, w)
	debugAssertSampled(s)
}

// cells fills the scratch buffer with x's column index in every row and
// returns it. The buffer is reused across calls, so each item is hashed
// only once even when its cells are read and then written.
func (s *Sketch) cellIdx(x core.Item) []int {
	if cap(s.scratch) < s.depth {
		s.scratch = make([]int, s.depth)
	}
	idx := s.scratch[:s.depth]
	width := uint64(s.width)
	for i := 0; i < s.depth; i++ {
		hi, _ := bits.Mul64(s.a[i]*uint64(x)+s.b[i], width)
		idx[i] = int(hi)
	}
	return idx
}

// conservativeUpdate raises every cell of x to at most est+w and
// returns the new estimate (which is exactly est+w: the minimum cell is
// raised to the target and no cell ends below it). It does not touch n.
func (s *Sketch) conservativeUpdate(x core.Item, w uint64) uint64 {
	idx := s.cellIdx(x)
	min := s.cells[idx[0]]
	for i := 1; i < s.depth; i++ {
		if v := s.cells[i*s.width+idx[i]]; v < min {
			min = v
		}
	}
	target := min + w
	for i := 0; i < s.depth; i++ {
		if c := i*s.width + idx[i]; s.cells[c] < target {
			s.cells[c] = target
		}
	}
	return target
}

// UpdateAndEstimate adds w >= 1 occurrences of x and returns the point
// estimate after the update. It is equivalent to Update followed by
// Estimate but hashes each row only once, which matters on hot
// ingestion paths that need the fresh estimate (e.g. top-k tracking).
func (s *Sketch) UpdateAndEstimate(x core.Item, w uint64) uint64 {
	if w == 0 {
		panic("countmin: zero-weight update")
	}
	s.n += w
	if s.conservative {
		return s.conservativeUpdate(x, w)
	}
	idx := s.cellIdx(x)
	s.cells[idx[0]] += w
	min := s.cells[idx[0]]
	for i := 1; i < s.depth; i++ {
		c := i*s.width + idx[i]
		s.cells[c] += w
		if v := s.cells[c]; v < min {
			min = v
		}
	}
	return min
}

// UpdateBatch adds one occurrence of every item in xs. The result is
// identical to calling Update(x, 1) for each x in order, but the batch
// path walks the matrix row-major with the row's hash parameters held
// in registers, hashes unrolled four items at a time, and no division
// in the column reduction.
//
//sketch:hotpath
func (s *Sketch) UpdateBatch(xs []core.Item) {
	if len(xs) == 0 {
		return
	}
	if s.conservative {
		for _, x := range xs {
			s.conservativeUpdate(x, 1)
		}
		s.n += uint64(len(xs))
		debugAssert(s)
		return
	}
	width := uint64(s.width)
	for i := 0; i < s.depth; i++ {
		ai, bi := s.a[i], s.b[i]
		row := s.row(i)
		j := 0
		for ; j+4 <= len(xs); j += 4 {
			c0, _ := bits.Mul64(ai*uint64(xs[j])+bi, width)
			c1, _ := bits.Mul64(ai*uint64(xs[j+1])+bi, width)
			c2, _ := bits.Mul64(ai*uint64(xs[j+2])+bi, width)
			c3, _ := bits.Mul64(ai*uint64(xs[j+3])+bi, width)
			row[c0]++
			row[c1]++
			row[c2]++
			row[c3]++
		}
		for ; j < len(xs); j++ {
			c, _ := bits.Mul64(ai*uint64(xs[j])+bi, width)
			row[c]++
		}
	}
	s.n += uint64(len(xs))
	debugAssert(s)
}

// UpdateBatchWeighted adds Count occurrences of every Item in ws, the
// weighted variant of UpdateBatch. All weights must be >= 1.
//
//sketch:hotpath
func (s *Sketch) UpdateBatchWeighted(ws []core.Counter) {
	if len(ws) == 0 {
		return
	}
	var total uint64
	for _, c := range ws {
		if c.Count == 0 {
			panic("countmin: zero-weight update")
		}
		total += c.Count
	}
	if s.conservative {
		for _, c := range ws {
			s.conservativeUpdate(c.Item, c.Count)
		}
		s.n += total
		debugAssert(s)
		return
	}
	width := uint64(s.width)
	for i := 0; i < s.depth; i++ {
		ai, bi := s.a[i], s.b[i]
		row := s.row(i)
		j := 0
		for ; j+2 <= len(ws); j += 2 {
			c0, _ := bits.Mul64(ai*uint64(ws[j].Item)+bi, width)
			c1, _ := bits.Mul64(ai*uint64(ws[j+1].Item)+bi, width)
			row[c0] += ws[j].Count
			row[c1] += ws[j+1].Count
		}
		if j < len(ws) {
			c, _ := bits.Mul64(ai*uint64(ws[j].Item)+bi, width)
			row[c] += ws[j].Count
		}
	}
	s.n += total
	debugAssert(s)
}

// Remove subtracts w occurrences of x — the strict-turnstile model,
// where deletions never exceed prior insertions of the same item. As
// long as the caller honours that contract the no-underestimate
// guarantee is preserved (each cell's surplus from other items only
// shrinks); violating it makes estimates meaningless, and cells are
// clamped at zero rather than wrapping. Conservative-update sketches
// are not linear and cannot support deletions; Remove panics on them.
func (s *Sketch) Remove(x core.Item, w uint64) {
	if w == 0 {
		panic("countmin: zero-weight remove")
	}
	if s.conservative {
		panic("countmin: conservative sketches do not support Remove")
	}
	if w > s.n {
		w = s.n
	}
	s.n -= w
	for i := 0; i < s.depth; i++ {
		c := i*s.width + s.cell(i, x)
		if s.cells[c] >= w {
			s.cells[c] -= w
		} else {
			s.cells[c] = 0
		}
	}
}

func (s *Sketch) estimate(x core.Item) uint64 {
	min := s.cells[s.cell(0, x)]
	for i := 1; i < s.depth; i++ {
		if v := s.cells[i*s.width+s.cell(i, x)]; v < min {
			min = v
		}
	}
	return min
}

// Estimate answers a point query. The sketch never underestimates, so
// the true frequency is in [0, Value]; the expected overestimate is at
// most 2n/width per row.
func (s *Sketch) Estimate(x core.Item) core.Estimate {
	v := s.estimate(x)
	return core.Estimate{Value: v, Lower: 0, Upper: v}
}

// Merge adds other cell-wise into s. Sketches must share geometry and
// seed. For conservative sketches the result remains a valid upper
// bound but may overestimate more than a directly-built sketch.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if s.width != other.width || s.depth != other.depth || s.seed != other.seed {
		return fmt.Errorf("%w: countmin geometry/seed", core.ErrMismatchedShape)
	}
	for i, v := range other.cells {
		s.cells[i] += v
	}
	s.n += other.n
	debugAssert(s)
	return nil
}

// Merged returns the merge of a and b without modifying either.
func Merged(a, b *Sketch) (*Sketch, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// HeavyHittersOver returns the candidates whose estimate reaches
// threshold, in descending estimate order. Because the sketch has no
// item directory, callers supply the candidate set (e.g. the stream's
// universe or a tracked top-k list).
func (s *Sketch) HeavyHittersOver(candidates []core.Item, threshold uint64) []core.Counter {
	var out []core.Counter
	for _, x := range candidates {
		if v := s.estimate(x); v >= threshold {
			out = append(out, core.Counter{Item: x, Count: v})
		}
	}
	core.SortCountersDesc(out)
	return out
}

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	c := New(s.width, s.depth, s.seed)
	c.n = s.n
	c.conservative = s.conservative
	copy(c.cells, s.cells)
	return c
}

// Reset zeroes the sketch.
func (s *Sketch) Reset() {
	s.n = 0
	clear(s.cells)
}

// MarshalBinary implements encoding.BinaryMarshaler. The payload is
// built in a pooled buffer pre-sized for the full counter matrix.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	// Header plus one uvarint per cell; typical counters are small, so
	// size cells at five bytes (uvarint for values < 2^35) rather than
	// the 10-byte worst case to avoid chronic 2x over-allocation.
	w.Grow(4*10 + 1 + s.width*s.depth*5)
	w.Int(s.width)
	w.Int(s.depth)
	w.Uint64(s.seed)
	w.Uint64(s.n)
	w.Bool(s.conservative)
	for _, v := range s.cells {
		w.Uint64(v)
	}
	return codec.EncodeFrame(codec.KindCountMin, w.Bytes()), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindCountMin, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	width := r.Int()
	depth := r.Int()
	seed := r.Uint64()
	n := r.Uint64()
	conservative := r.Bool()
	if r.Err() != nil {
		return r.Err()
	}
	if width < 1 || depth < 1 || width*depth > 1<<28 {
		return fmt.Errorf("countmin: implausible geometry %dx%d", depth, width)
	}
	if width*depth > r.Remaining() {
		// Every cell takes at least one payload byte; reject before
		// allocating attacker-controlled matrix sizes.
		return fmt.Errorf("countmin: geometry %dx%d exceeds payload", depth, width)
	}
	out := New(width, depth, seed)
	out.n = n
	out.conservative = conservative
	for i := range out.cells {
		out.cells[i] = r.Uint64()
	}
	if err := r.Finish(); err != nil {
		return err
	}
	*s = *out
	return nil
}

var _ core.FrequencySummary = (*Sketch)(nil)
