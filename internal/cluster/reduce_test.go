package cluster

import (
	"bytes"
	"testing"

	"repro/internal/registry"
	_ "repro/internal/registry/all"
)

// TestReduceMatchesSequentialN runs the fan-in reduction for every
// registered family and checks the PODS'12 invariant the network
// merge inherits: total weight equals the sequential fold's, whatever
// the pairing tree did.
func TestReduceMatchesSequentialN(t *testing.T) {
	for _, ent := range registry.Entries() {
		ent := ent
		t.Run(ent.Name(), func(t *testing.T) {
			var frames [][]byte
			var wantN uint64
			for _, n := range []int{120, 45, 300, 7, 88} {
				ex := ent.Example(n)
				wantN += ent.N(ex)
				f, err := ent.Encode(ex)
				if err != nil {
					t.Fatal(err)
				}
				frames = append(frames, f)
			}
			gotEnt, merged, err := Reduce(frames)
			if err != nil {
				t.Fatal(err)
			}
			defer gotEnt.PutScratch(merged)
			if gotEnt.Name() != ent.Name() {
				t.Fatalf("resolved entry %q, want %q", gotEnt.Name(), ent.Name())
			}
			if gn := ent.N(merged); gn != wantN {
				t.Fatalf("reduced N = %d, want %d", gn, wantN)
			}
		})
	}
}

// TestReduceEncodedSingleFramePassthrough: a one-frame fan-in is the
// frame itself, with no decode/merge/encode round-trip to perturb it.
func TestReduceEncodedSingleFramePassthrough(t *testing.T) {
	ent := registry.Entries()[0]
	f, err := ent.Encode(ent.Example(64))
	if err != nil {
		t.Fatal(err)
	}
	kind, out, err := ReduceEncoded([][]byte{f})
	if err != nil {
		t.Fatal(err)
	}
	if kind != ent.Name() || !bytes.Equal(out, f) {
		t.Fatalf("single-frame passthrough altered the frame (kind %q, %d vs %d bytes)", kind, len(out), len(f))
	}
}

// TestReduceErrors covers the failure paths: no frames, a garbage
// first frame, and a mixed-kind batch (the second frame's kind check
// must fail the whole reduction, not silently misparse).
func TestReduceErrors(t *testing.T) {
	if _, _, err := Reduce(nil); err == nil {
		t.Fatal("empty fan-in succeeded")
	}
	if _, _, err := Reduce([][]byte{{0xff, 0xfe, 0xfd}}); err == nil {
		t.Fatal("garbage frame succeeded")
	}
	ents := registry.Entries()
	if len(ents) < 2 {
		t.Skip("need two families")
	}
	f0, err := ents[0].Encode(ents[0].Example(16))
	if err != nil {
		t.Fatal(err)
	}
	f1, err := ents[1].Encode(ents[1].Example(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Reduce([][]byte{f0, f1}); err == nil {
		t.Fatal("mixed-kind fan-in succeeded")
	}
}
