package cluster

import (
	"fmt"
	"testing"
)

// TestRingDeterministic proves the property routing relies on: every
// client and every server computes the same key→node assignment from
// the same member set, regardless of the order the list is written in.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]string{"n1:7070", "n2:7070", "n3:7070"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3:7070", "n1:7070", "n2:7070"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("slot-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner %q vs %q under reordered node list", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingDistribution sanity-checks the virtual-point spread: over
// many keys every node owns a non-trivial share.
func TestRingDistribution(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("k%d", i))]++
	}
	for _, n := range nodes {
		if counts[n] < keys/len(nodes)/3 {
			t.Fatalf("node %q owns only %d/%d keys: spread too skewed", n, counts[n], keys)
		}
	}
}

// TestRingStability checks the consistent-hashing contract: removing
// one node only remaps keys that belonged to it — no key owned by a
// surviving node moves between survivors.
func TestRingStability(t *testing.T) {
	full, err := NewRing([]string{"a", "b", "c", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("slot-%d", i)
		before := full.Owner(key)
		if before == "d" {
			continue // d's keys must remap somewhere
		}
		if after := reduced.Owner(key); after != before {
			t.Fatalf("key %q moved %q → %q though its owner survived", key, before, after)
		}
	}
}

// TestRingErrors covers the constructor's rejection paths.
func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node name accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

// TestRingOwnerIndex checks Owner and OwnerIndex agree.
func TestRingOwnerIndex(t *testing.T) {
	r, err := NewRing([]string{"x", "y", "z"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		if r.Nodes()[r.OwnerIndex(key)] != r.Owner(key) {
			t.Fatalf("OwnerIndex and Owner disagree for %q", key)
		}
	}
}
