package cluster

import (
	"fmt"
	"runtime"

	"repro/internal/mergetree"
	"repro/internal/registry"
)

// Reduce merges encoded summary frames of one family into a single
// summary: every frame is decoded into a pooled scratch target through
// the registry (no per-family code), the scratch summaries are folded
// with mergetree.Parallel's pairing reduction — the same deterministic
// tree the in-process merge plane runs, so a fan-in computed by any
// node over the same frame order is byte-identical — and the surviving
// summary is returned together with its catalog entry. The caller owns
// the result and should recycle it with ent.PutScratch when done.
//
// Frame order matters only for merge-order-sensitive families' exact
// bytes, never for their guarantees (the PODS'12 theorem); callers
// that want cross-node determinism fix the order (the server's fan-in
// uses peer-list order).
func Reduce(frames [][]byte) (*registry.Entry, any, error) {
	if len(frames) == 0 {
		return nil, nil, mergetree.ErrNoParts
	}
	ent, err := registry.FromFrame(frames[0])
	if err != nil {
		return nil, nil, err
	}
	parts := make([]any, len(frames))
	for i, f := range frames {
		parts[i] = ent.GetScratch()
		if err := ent.DecodeInto(parts[i], f); err != nil {
			for _, p := range parts[:i+1] {
				ent.PutScratch(p)
			}
			return nil, nil, fmt.Errorf("cluster: decoding frame %d/%d (%s): %w", i+1, len(frames), ent.Name(), err)
		}
	}
	if len(parts) == 1 {
		return ent, parts[0], nil
	}
	merged, err := mergetree.Parallel(parts, reduceWorkers(len(parts)), ent.Merge)
	if err != nil {
		// Parallel may leave merged-into summaries in any state; every
		// part is still safely recyclable because DecodeInto fully
		// replaces scratch contents.
		for _, p := range parts {
			ent.PutScratch(p)
		}
		return nil, nil, fmt.Errorf("cluster: fan-in merge (%s): %w", ent.Name(), err)
	}
	for _, p := range parts {
		if p != merged {
			ent.PutScratch(p)
		}
	}
	return ent, merged, nil
}

// ReduceEncoded is Reduce re-encoded: the fan-in answer as a wire
// frame plus its kind name, the shape a PULL-style reply needs.
func ReduceEncoded(frames [][]byte) (string, []byte, error) {
	// One frame needs no decode/merge/encode round-trip at all: the
	// peer's snapshot is already the answer.
	if len(frames) == 1 {
		ent, err := registry.FromFrame(frames[0])
		if err != nil {
			return "", nil, err
		}
		return ent.Name(), frames[0], nil
	}
	ent, merged, err := Reduce(frames)
	if err != nil {
		return "", nil, err
	}
	out, err := ent.Encode(merged)
	ent.PutScratch(merged)
	if err != nil {
		return "", nil, err
	}
	return ent.Name(), out, nil
}

// reduceWorkers caps fan-in parallelism: peer counts are small, so a
// couple of workers per round suffices and the tail rounds run inline.
func reduceWorkers(parts int) int {
	w := runtime.GOMAXPROCS(0)
	if w > parts/2 {
		w = parts / 2
	}
	if w < 1 {
		w = 1
	}
	return w
}
