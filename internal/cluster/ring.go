// Package cluster holds the topology-free pieces of the multi-node
// aggregation plane: a consistent-hash ring routing slot keys to
// nodes, and the registry-driven fan-in reduction that merges encoded
// peer snapshots through mergetree.Parallel. Neither half touches the
// network — the server's peer mode and the cluster client both build
// on them — and neither holds any per-family code: the PODS'12
// theorem says the merge is correct over any topology, so the same
// pairing reduction that serves the in-process merge tree serves the
// network one.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultReplicas is the number of virtual points each node projects
// onto the ring. 128 keeps the expected per-node key share within a
// few percent of uniform while the ring stays a few KiB per node.
const defaultReplicas = 128

// ringPoint is one virtual node position.
type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// Ring is an immutable consistent-hash ring over a fixed node list.
// Key→node assignment depends only on the node names, not their order
// or count history: adding or removing one node remaps only the keys
// that hashed to its virtual points, which is what lets a cluster
// grow without reshuffling every slot. Safe for concurrent use.
type Ring struct {
	nodes  []string
	points []ringPoint
}

// NewRing builds a ring over the node list (node addresses, typically)
// with the given number of virtual points per node; replicas < 1
// selects the default. Duplicate or empty node names are an error —
// a duplicated address would silently double a node's key share.
func NewRing(nodes []string, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if replicas < 1 {
		replicas = defaultReplicas
	}
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if seen[n] {
			return nil, fmt.Errorf("cluster: duplicate node %q", n)
		}
		seen[n] = true
	}
	r := &Ring{
		nodes:  append([]string(nil), nodes...),
		points: make([]ringPoint, 0, len(nodes)*replicas),
	}
	for i, n := range r.nodes {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(n, v), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		pa, pb := r.points[a], r.points[b]
		if pa.hash != pb.hash {
			return pa.hash < pb.hash
		}
		// Colliding points tie-break on the node name so the ring is
		// identical no matter the input order of the node list.
		return r.nodes[pa.node] < r.nodes[pb.node]
	})
	return r, nil
}

// Nodes returns the ring's node list in construction order. The slice
// is shared; callers must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node owning the key: the first virtual point at or
// clockwise after the key's hash.
func (r *Ring) Owner(key string) string {
	return r.nodes[r.ownerIndex(key)]
}

// OwnerIndex returns the owning node's index into Nodes().
func (r *Ring) OwnerIndex(key string) int { return r.ownerIndex(key) }

func (r *Ring) ownerIndex(key string) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// pointHash positions one virtual node on the ring. FNV-1a over
// "<node>#<replica>" is deterministic across processes — every client
// and every server computes the same ring from the same peer list.
func pointHash(node string, replica int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(node))
	h.Write([]byte{'#'})
	var buf [4]byte
	buf[0] = byte(replica)
	buf[1] = byte(replica >> 8)
	buf[2] = byte(replica >> 16)
	buf[3] = byte(replica >> 24)
	h.Write(buf[:])
	return h.Sum64()
}

// keyHash positions a slot key on the ring.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}
