package topk

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// Property: the directory never exceeds k, estimates never fall below
// the true count (Count-Min inheritance), and the directory's weakest
// member never has a higher estimate than its strongest.
func TestPropertyDirectoryInvariants(t *testing.T) {
	f := func(raw []byte, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		tr := New(k, 128, 3, 7)
		truth := make(map[core.Item]uint64)
		for i := 0; i+1 < len(raw); i += 2 {
			x := core.Item(raw[i] % 24)
			w := uint64(raw[i+1]%9) + 1
			tr.Update(x, w)
			truth[x] += w
		}
		top := tr.Top()
		if len(top) > k {
			return false
		}
		for i := 1; i < len(top); i++ {
			if top[i-1].Count < top[i].Count {
				return false
			}
		}
		for x, c := range truth {
			if tr.Estimate(x).Value < c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: merging preserves the no-underestimate guarantee over the
// union for any split.
func TestPropertyMergeNoUnderestimate(t *testing.T) {
	f := func(raw []byte, cut uint8) bool {
		a, b := New(8, 128, 3, 7), New(8, 128, 3, 7)
		truth := make(map[core.Item]uint64)
		split := 0
		if len(raw) > 0 {
			split = int(cut) % (len(raw) + 1)
		}
		for i, bv := range raw {
			x := core.Item(bv % 24)
			if i < split {
				a.Update(x, 1)
			} else {
				b.Update(x, 1)
			}
			truth[x]++
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		if a.N() != uint64(len(raw)) {
			return false
		}
		for x, c := range truth {
			if a.Estimate(x).Value < c {
				return false
			}
		}
		return len(a.Top()) <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
