package topk

import (
	"repro/internal/codec"
	"repro/internal/gen"
	"repro/internal/registry"
)

// init catalogs the family; see internal/registry.
func init() {
	registry.Register[Tracker](codec.KindTopK, "topk", registry.Spec[Tracker]{
		Example: func(n int) *Tracker {
			t := New(16, 512, 4, 11)
			t.UpdateBatch(gen.NewZipf(512, 1.2, 11).Stream(n))
			return t
		},
		Merge: (*Tracker).Merge,
		N:     (*Tracker).N,
	})
}
