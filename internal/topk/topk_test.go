package topk

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,...) did not panic")
		}
	}()
	New(0, 64, 2, 1)
}

func TestSmallStreamExact(t *testing.T) {
	tr := New(4, 1024, 4, 1)
	tr.Update(1, 10)
	tr.Update(2, 5)
	tr.Update(3, 1)
	top := tr.Top()
	if len(top) != 3 {
		t.Fatalf("Top has %d entries", len(top))
	}
	if top[0].Item != 1 || top[0].Count != 10 {
		t.Errorf("top[0] = %v", top[0])
	}
	if tr.N() != 16 {
		t.Errorf("N = %d", tr.N())
	}
}

func TestDirectoryBounded(t *testing.T) {
	tr := New(8, 512, 4, 1)
	for _, x := range gen.NewZipf(5000, 1.1, 2).Stream(50000) {
		tr.Update(x, 1)
	}
	if got := len(tr.Top()); got != 8 {
		t.Fatalf("directory size %d, want 8", got)
	}
}

func TestFindsTrueTopItems(t *testing.T) {
	const n = 100000
	z := gen.NewZipf(5000, 1.5, 7)
	stream := z.Stream(n)
	truth := exact.FreqOf(stream)
	tr := New(16, 2048, 4, 3)
	for _, x := range stream {
		tr.Update(x, 1)
	}
	got := make(map[core.Item]bool)
	for _, c := range tr.Top() {
		got[c.Item] = true
	}
	// The true top-8 must all be in the tracked top-16 (slack for
	// sketch noise).
	for _, c := range truth.Counters()[:8] {
		if !got[c.Item] {
			t.Errorf("true top item %d (count %d) missing from directory", c.Item, c.Count)
		}
	}
}

func TestMergePreservesHeavyHitters(t *testing.T) {
	const n = 80000
	z := gen.NewZipf(3000, 1.4, 9)
	stream := z.Stream(n)
	truth := exact.FreqOf(stream)
	parts := gen.PartitionByHash(stream, 8, func(x core.Item) uint64 { return uint64(x) * 0x9e3779b1 })
	trackers := make([]*Tracker, len(parts))
	for i, p := range parts {
		trackers[i] = New(16, 2048, 4, 3)
		for _, x := range p {
			trackers[i].Update(x, 1)
		}
	}
	acc := trackers[0]
	for _, tr := range trackers[1:] {
		if err := acc.Merge(tr); err != nil {
			t.Fatal(err)
		}
	}
	if acc.N() != n {
		t.Fatalf("N = %d", acc.N())
	}
	got := make(map[core.Item]bool)
	for _, c := range acc.Top() {
		got[c.Item] = true
	}
	for _, c := range truth.Counters()[:8] {
		if !got[c.Item] {
			t.Errorf("true top item %d missing after merge", c.Item)
		}
	}
	// Merged estimates never underestimate (Count-Min property is
	// preserved by cell-wise addition).
	for _, c := range truth.Counters()[:50] {
		if est := acc.Estimate(c.Item); est.Value < c.Count {
			t.Errorf("item %d underestimated: %d < %d", c.Item, est.Value, c.Count)
		}
	}
}

func TestMergeMismatched(t *testing.T) {
	a := New(8, 64, 2, 1)
	if err := a.Merge(New(16, 64, 2, 1)); err == nil {
		t.Error("mismatched k accepted")
	}
	if err := a.Merge(New(8, 128, 2, 1)); err == nil {
		t.Error("mismatched sketch accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestMergedDoesNotModifyInputs(t *testing.T) {
	a, b := New(4, 64, 2, 1), New(4, 64, 2, 1)
	a.Update(1, 5)
	b.Update(2, 7)
	m, err := Merged(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 5 || b.N() != 7 || m.N() != 12 {
		t.Fatalf("N: a=%d b=%d m=%d", a.N(), b.N(), m.N())
	}
	if m.Estimate(2).Value < 7 {
		t.Error("merged lost item 2")
	}
}

func TestHeavyHittersThreshold(t *testing.T) {
	tr := New(8, 1024, 4, 1)
	tr.Update(1, 100)
	tr.Update(2, 50)
	tr.Update(3, 10)
	hh := tr.HeavyHitters(50)
	if len(hh) != 2 || hh[0].Item != 1 || hh[1].Item != 2 {
		t.Fatalf("HeavyHitters(50) = %v", hh)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	tr := New(16, 512, 4, 5)
	for _, x := range gen.NewZipf(1000, 1.3, 6).Stream(30000) {
		tr.Update(x, 1)
	}
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Tracker
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.N() != tr.N() || got.K() != tr.K() {
		t.Fatal("header changed")
	}
	want, have := tr.Top(), got.Top()
	if len(want) != len(have) {
		t.Fatalf("directory size changed: %d vs %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("directory entry %d: %v vs %v", i, have[i], want[i])
		}
	}
	data[len(data)-5] ^= 0xff
	if err := got.UnmarshalBinary(data); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(4, 64, 2, 1)
	a.Update(1, 5)
	c := a.Clone()
	c.Update(2, 9)
	if a.N() != 5 || c.N() != 14 {
		t.Fatal("clone not independent")
	}
	if len(a.Top()) != 1 || len(c.Top()) != 2 {
		t.Fatal("clone directory not independent")
	}
}
