package topk

import (
	"testing"

	"repro/internal/core"
)

func FuzzUnmarshal(f *testing.F) {
	tr := New(8, 32, 2, 1)
	for i := 0; i < 500; i++ {
		tr.Update(core.Item(i%40), 1)
	}
	seed, _ := tr.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Tracker
		if err := out.UnmarshalBinary(data); err != nil {
			return
		}
		if len(out.Top()) > out.K() {
			t.Fatal("accepted frame overflows directory")
		}
		if _, err := out.MarshalBinary(); err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
	})
}
