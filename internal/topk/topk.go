// Package topk pairs a Count-Min sketch with a top-k candidate
// directory, closing the gap that raw linear sketches have no item
// list to report heavy hitters from. The tracker keeps the k items
// with the largest sketch estimates seen so far; because Count-Min
// never underestimates, any item whose true count exceeds the
// directory's minimum estimate is guaranteed to enter the directory
// when it is next updated.
//
// The tracker is mergeable in the framework's sense: sketches add
// cell-wise, and the candidate directories union and re-rank against
// the merged sketch. An item heavy in the union is heavy in at least
// one part (the k-majority pigeonhole of the supplied text's Lemma
// 1.2), so it appears in at least one input directory and survives the
// re-rank.
package topk

import (
	"container/heap"
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/countmin"
)

// Tracker is a Count-Min-backed top-k heavy-hitter tracker. The zero
// value is not usable; use New. Not safe for concurrent use.
type Tracker struct {
	k      int
	sketch *countmin.Sketch
	items  map[core.Item]*candidate
	heap   candHeap
}

type candidate struct {
	item  core.Item
	est   uint64
	index int
}

// candHeap is a min-heap on estimates: the root is the weakest
// candidate, first to be displaced.
type candHeap []*candidate

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[i].est < h[j].est }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *candHeap) Push(x interface{}) { c := x.(*candidate); c.index = len(*h); *h = append(*h, c) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// New returns a tracker keeping the top k items over a Count-Min
// sketch with the given geometry. Trackers merge iff k and the sketch
// geometry/seed match.
func New(k, width, depth int, seed uint64) *Tracker {
	if k < 1 {
		panic("topk: k must be >= 1")
	}
	return &Tracker{
		k:      k,
		sketch: countmin.New(width, depth, seed),
		items:  make(map[core.Item]*candidate, k),
	}
}

// K returns the directory capacity.
func (t *Tracker) K() int { return t.k }

// N returns the total weight observed.
func (t *Tracker) N() uint64 { return t.sketch.N() }

// Update adds w >= 1 occurrences of x and refreshes the directory.
// The sketch update and the directory's estimate refresh share one
// pass over the sketch rows (countmin.UpdateAndEstimate).
func (t *Tracker) Update(x core.Item, w uint64) {
	est := t.sketch.UpdateAndEstimate(x, w)
	t.refresh(x, est)
}

// UpdateBatch adds one occurrence of every item in xs and refreshes
// the directory, identically to calling Update(x, 1) for each x.
//
//sketch:hotpath
func (t *Tracker) UpdateBatch(xs []core.Item) {
	for _, x := range xs {
		t.refresh(x, t.sketch.UpdateAndEstimate(x, 1))
	}
}

// UpdateBatchWeighted adds Count occurrences of every Item in ws, the
// weighted variant of UpdateBatch. All weights must be >= 1.
//
//sketch:hotpath
func (t *Tracker) UpdateBatchWeighted(ws []core.Counter) {
	for _, c := range ws {
		t.refresh(c.Item, t.sketch.UpdateAndEstimate(c.Item, c.Count))
	}
}

// refresh installs x's fresh estimate into the top-k directory.
func (t *Tracker) refresh(x core.Item, est uint64) {
	if c, ok := t.items[x]; ok {
		c.est = est
		heap.Fix(&t.heap, c.index)
		return
	}
	if len(t.heap) < t.k {
		c := &candidate{item: x, est: est}
		t.items[x] = c
		heap.Push(&t.heap, c)
		return
	}
	if est > t.heap[0].est {
		weakest := t.heap[0]
		delete(t.items, weakest.item)
		weakest.item = x
		weakest.est = est
		t.items[x] = weakest
		heap.Fix(&t.heap, 0)
	}
}

// Estimate answers a point query via the underlying sketch.
func (t *Tracker) Estimate(x core.Item) core.Estimate { return t.sketch.Estimate(x) }

// Top returns the current directory in descending estimate order.
func (t *Tracker) Top() []core.Counter {
	out := make([]core.Counter, 0, len(t.heap))
	for _, c := range t.heap {
		out = append(out, core.Counter{Item: c.item, Count: c.est})
	}
	core.SortCountersDesc(out)
	return out
}

// HeavyHitters returns directory items whose estimate reaches
// threshold, descending.
func (t *Tracker) HeavyHitters(threshold uint64) []core.Counter {
	var out []core.Counter
	for _, c := range t.heap {
		if c.est >= threshold {
			out = append(out, core.Counter{Item: c.item, Count: c.est})
		}
	}
	core.SortCountersDesc(out)
	return out
}

// Merge folds other into t: sketches add cell-wise, then both
// directories are re-ranked against the merged sketch and the top k
// survive. other is not modified.
func (t *Tracker) Merge(other *Tracker) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if t.k != other.k {
		return core.ErrMismatchedK
	}
	if err := t.sketch.Merge(other.sketch); err != nil {
		return err
	}
	t.rebuild(append(t.candidateItems(), other.candidateItems()...))
	return nil
}

// Merged returns the merge of a and b without modifying either.
func Merged(a, b *Tracker) (*Tracker, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

func (t *Tracker) candidateItems() []core.Item {
	out := make([]core.Item, 0, len(t.heap))
	for _, c := range t.heap {
		out = append(out, c.item)
	}
	return out
}

// rebuild replaces the directory with the top k of the given candidate
// items, re-estimated against the current sketch.
func (t *Tracker) rebuild(candidates []core.Item) {
	clear(t.items)
	t.heap = t.heap[:0]
	for _, x := range candidates {
		if _, dup := t.items[x]; dup {
			continue
		}
		est := t.sketch.Estimate(x).Value
		if len(t.heap) < t.k {
			c := &candidate{item: x, est: est}
			t.items[x] = c
			heap.Push(&t.heap, c)
			continue
		}
		if est > t.heap[0].est {
			weakest := t.heap[0]
			delete(t.items, weakest.item)
			weakest.item = x
			weakest.est = est
			t.items[x] = weakest
			heap.Fix(&t.heap, 0)
		}
	}
}

// Clone returns a deep copy.
func (t *Tracker) Clone() *Tracker {
	c := &Tracker{
		k:      t.k,
		sketch: t.sketch.Clone(),
		items:  make(map[core.Item]*candidate, len(t.items)),
	}
	c.rebuild(t.candidateItems())
	return c
}

// MarshalBinary implements encoding.BinaryMarshaler: the sketch frame
// followed by the directory, wrapped in one outer frame.
func (t *Tracker) MarshalBinary() ([]byte, error) {
	inner, err := t.sketch.MarshalBinary()
	if err != nil {
		return nil, err
	}
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	// Inner frame bytes cost up to two uvarint bytes each; directory
	// items up to ten.
	w.Grow(3*10 + len(inner)*2 + t.k*2*10)
	w.Int(t.k)
	w.Int(len(inner))
	for _, b := range inner {
		w.Uint64(uint64(b))
	}
	items := t.candidateItems()
	w.Int(len(items))
	for _, x := range items {
		w.Uint64(uint64(x))
	}
	return codec.EncodeFrame(codec.KindTopK, w.Bytes()), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (t *Tracker) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindTopK, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	k := r.Int()
	il := r.ArrayLen(1)
	if r.Err() != nil {
		return r.Err()
	}
	if k < 1 {
		return fmt.Errorf("topk: implausible frame header (k=%d)", k)
	}
	inner := make([]byte, il)
	for i := range inner {
		inner[i] = byte(r.Uint64())
	}
	m := r.ArrayLen(1)
	if r.Err() != nil {
		return r.Err()
	}
	items := make([]core.Item, 0, m)
	for i := 0; i < m; i++ {
		items = append(items, core.Item(r.Uint64()))
	}
	if err := r.Finish(); err != nil {
		return err
	}
	var sk countmin.Sketch
	if err := sk.UnmarshalBinary(inner); err != nil {
		return err
	}
	if m > k {
		return fmt.Errorf("topk: %d candidates exceed k=%d", m, k)
	}
	out := &Tracker{k: k, sketch: &sk, items: make(map[core.Item]*candidate, m)}
	out.rebuild(items)
	*t = *out
	return nil
}

var _ core.FrequencySummary = (*Tracker)(nil)
