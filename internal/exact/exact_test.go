package exact

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
)

func TestFreqTable(t *testing.T) {
	ft := FreqOf([]core.Item{1, 2, 2, 3, 3, 3})
	if ft.N() != 6 {
		t.Errorf("N = %d, want 6", ft.N())
	}
	if ft.Distinct() != 3 {
		t.Errorf("Distinct = %d, want 3", ft.Distinct())
	}
	if ft.Count(3) != 3 || ft.Count(1) != 1 || ft.Count(99) != 0 {
		t.Error("wrong counts")
	}
	cs := ft.Counters()
	if cs[0] != (core.Counter{Item: 3, Count: 3}) {
		t.Errorf("top counter = %v", cs[0])
	}
}

func TestFreqTableMerge(t *testing.T) {
	a := FreqOf([]core.Item{1, 1, 2})
	b := FreqOf([]core.Item{2, 3})
	a.Merge(b)
	if a.N() != 5 || a.Count(1) != 2 || a.Count(2) != 2 || a.Count(3) != 1 {
		t.Errorf("merge wrong: n=%d", a.N())
	}
}

func TestHeavyHitters(t *testing.T) {
	ft := FreqOf([]core.Item{1, 1, 1, 1, 2, 2, 3})
	hh := ft.HeavyHitters(2)
	if len(hh) != 2 || hh[0].Item != 1 || hh[1].Item != 2 {
		t.Errorf("HeavyHitters(2) = %v", hh)
	}
	if got := ft.HeavyHitters(100); len(got) != 0 {
		t.Errorf("HeavyHitters(100) = %v, want empty", got)
	}
}

func TestQuantiles(t *testing.T) {
	q := QuantilesOf([]float64{10, 30, 20, 40, 50})
	if q.N() != 5 {
		t.Errorf("N = %d", q.N())
	}
	if r := q.Rank(25); r != 2 {
		t.Errorf("Rank(25) = %d, want 2", r)
	}
	if r := q.Rank(30); r != 3 {
		t.Errorf("Rank(30) = %d, want 3 (rank counts <=)", r)
	}
	if r := q.Rank(5); r != 0 {
		t.Errorf("Rank(5) = %d, want 0", r)
	}
	if r := q.Rank(100); r != 5 {
		t.Errorf("Rank(100) = %d, want 5", r)
	}
	if v := q.Quantile(0); v != 10 {
		t.Errorf("Quantile(0) = %v", v)
	}
	if v := q.Quantile(0.5); v != 30 {
		t.Errorf("Quantile(0.5) = %v", v)
	}
	if v := q.Quantile(1); v != 50 {
		t.Errorf("Quantile(1) = %v", v)
	}
}

func TestQuantilesEmpty(t *testing.T) {
	q := QuantilesOf(nil)
	if !math.IsNaN(q.Quantile(0.5)) {
		t.Error("Quantile on empty should be NaN")
	}
	if q.Rank(1) != 0 {
		t.Error("Rank on empty should be 0")
	}
}

func TestRangeCount(t *testing.T) {
	ps := []gen.Point{{X: 0, Y: 0}, {X: 0.5, Y: 0.5}, {X: 1, Y: 1}, {X: 0.25, Y: 0.9}}
	r := Rect{X0: 0, Y0: 0, X1: 0.5, Y1: 1}
	if got := RangeCount(ps, r); got != 3 {
		t.Errorf("RangeCount = %d, want 3", got)
	}
	if got := RangeCount(nil, r); got != 0 {
		t.Errorf("RangeCount(nil) = %d", got)
	}
}

func TestDirectionalWidth(t *testing.T) {
	ps := []gen.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 1, Y: 3}}
	if w := DirectionalWidth(ps, 0); math.Abs(w-2) > 1e-12 {
		t.Errorf("width along x = %v, want 2", w)
	}
	if w := DirectionalWidth(ps, math.Pi/2); math.Abs(w-3) > 1e-12 {
		t.Errorf("width along y = %v, want 3", w)
	}
	if w := DirectionalWidth(nil, 0); w != 0 {
		t.Errorf("width of empty = %v", w)
	}
}

// Property: Rank is monotone and bounded by N.
func TestRankMonotone(t *testing.T) {
	f := func(values []float64, a, b float64) bool {
		for i, v := range values {
			if math.IsNaN(v) {
				values[i] = 0
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		q := QuantilesOf(values)
		if a > b {
			a, b = b, a
		}
		ra, rb := q.Rank(a), q.Rank(b)
		return ra <= rb && rb <= q.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: merging tables equals building one table from the
// concatenated stream.
func TestFreqMergeEquivalence(t *testing.T) {
	f := func(s1, s2 []uint8) bool {
		a := make([]core.Item, len(s1))
		for i, v := range s1 {
			a[i] = core.Item(v)
		}
		b := make([]core.Item, len(s2))
		for i, v := range s2 {
			b[i] = core.Item(v)
		}
		merged := FreqOf(a)
		merged.Merge(FreqOf(b))
		whole := FreqOf(append(append([]core.Item{}, a...), b...))
		if merged.N() != whole.N() || merged.Distinct() != whole.Distinct() {
			return false
		}
		for _, c := range whole.Counters() {
			if merged.Count(c.Item) != c.Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
