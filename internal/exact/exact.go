// Package exact implements the brute-force ground-truth oracles that
// the experiments and tests compare every summary against: exact
// frequency tables, exact quantiles/ranks, exact rectangle counts and
// exact directional width. These are deliberately simple and obviously
// correct — they define "truth" for the whole repository.
package exact

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
)

// FreqTable is an exact multiset of items.
type FreqTable struct {
	counts map[core.Item]uint64
	n      uint64
}

// NewFreqTable returns an empty table.
func NewFreqTable() *FreqTable {
	return &FreqTable{counts: make(map[core.Item]uint64)}
}

// FreqOf builds a table from a stream.
func FreqOf(stream []core.Item) *FreqTable {
	t := NewFreqTable()
	for _, x := range stream {
		t.Add(x, 1)
	}
	return t
}

// Add records w occurrences of x.
func (t *FreqTable) Add(x core.Item, w uint64) {
	t.counts[x] += w
	t.n += w
}

// Count returns the exact frequency of x.
func (t *FreqTable) Count(x core.Item) uint64 { return t.counts[x] }

// N returns the total weight.
func (t *FreqTable) N() uint64 { return t.n }

// Distinct returns the number of distinct items.
func (t *FreqTable) Distinct() int { return len(t.counts) }

// Merge adds the contents of other into t.
func (t *FreqTable) Merge(other *FreqTable) {
	for x, c := range other.counts {
		t.counts[x] += c
	}
	t.n += other.n
}

// Counters returns all (item, count) pairs in descending count order.
func (t *FreqTable) Counters() []core.Counter {
	out := make([]core.Counter, 0, len(t.counts))
	for x, c := range t.counts {
		out = append(out, core.Counter{Item: x, Count: c})
	}
	core.SortCountersDesc(out)
	return out
}

// HeavyHitters returns all items with frequency >= threshold, in
// descending count order.
func (t *FreqTable) HeavyHitters(threshold uint64) []core.Counter {
	var out []core.Counter
	for x, c := range t.counts {
		if c >= threshold {
			out = append(out, core.Counter{Item: x, Count: c})
		}
	}
	core.SortCountersDesc(out)
	return out
}

// Quantiles answers exact rank and quantile queries over a value set.
type Quantiles struct {
	sorted []float64
}

// QuantilesOf builds an oracle from values (copied, then sorted).
func QuantilesOf(values []float64) *Quantiles {
	s := make([]float64, len(values))
	copy(s, values)
	sort.Float64s(s)
	return &Quantiles{sorted: s}
}

// N returns the number of values.
func (q *Quantiles) N() uint64 { return uint64(len(q.sorted)) }

// Rank returns the exact number of values <= v.
func (q *Quantiles) Rank(v float64) uint64 {
	return uint64(sort.Search(len(q.sorted), func(i int) bool { return q.sorted[i] > v }))
}

// Quantile returns the exact phi-quantile (nearest rank).
func (q *Quantiles) Quantile(phi float64) float64 {
	if len(q.sorted) == 0 {
		return math.NaN()
	}
	i := int(phi * float64(len(q.sorted)))
	if i >= len(q.sorted) {
		i = len(q.sorted) - 1
	}
	if i < 0 {
		i = 0
	}
	return q.sorted[i]
}

// Values returns the sorted values (not a copy; callers must not
// mutate).
func (q *Quantiles) Values() []float64 { return q.sorted }

// Rect is an axis-aligned rectangle [X0,X1] × [Y0,Y1].
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// Contains reports whether p lies in r (closed on all sides).
func (r Rect) Contains(p gen.Point) bool {
	return p.X >= r.X0 && p.X <= r.X1 && p.Y >= r.Y0 && p.Y <= r.Y1
}

// RangeCount returns the exact number of points of ps inside r.
func RangeCount(ps []gen.Point, r Rect) uint64 {
	var n uint64
	for _, p := range ps {
		if r.Contains(p) {
			n++
		}
	}
	return n
}

// DirectionalWidth returns the exact extent of ps along the unit
// direction (cos θ, sin θ): max⟨p,u⟩ − min⟨p,u⟩.
func DirectionalWidth(ps []gen.Point, theta float64) float64 {
	if len(ps) == 0 {
		return 0
	}
	ux, uy := math.Cos(theta), math.Sin(theta)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range ps {
		d := p.X*ux + p.Y*uy
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	return hi - lo
}
