package server

import (
	"bufio"
	"encoding"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/registry"
)

// Client speaks the summaryd protocol over one TCP connection. It is
// not safe for concurrent use; open one client per goroutine.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	// Wall-clock→epoch mapping, lazily fetched from METRICS for
	// QueryWindowTime and cached for the connection's lifetime (the
	// origin and tick are fixed at server start).
	winOriginNS int64
	winTickNS   int64
}

// Dial connects to a summaryd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// DialTimeout is Dial with a connect timeout, for callers (the peer
// fan-out, cluster clients) that must not block on a dead address.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// SetDeadline bounds every subsequent read and write on the
// connection; a zero time clears it.
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// RemoteError is an ERR reply from the server, as opposed to a
// transport failure. Msg is the server's text after "ERR ".
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "server: " + e.Msg }

// IsNoData reports whether err is a server reply meaning "nothing
// held for that query" — a slot the server never saw, an empty slot,
// or a window range nothing was sealed into — rather than a failure.
// Fan-in readers use it to let such peers contribute nothing.
func IsNoData(err error) bool {
	var re *RemoteError
	if !errors.As(err, &re) {
		return false
	}
	return strings.HasPrefix(re.Msg, "no such slot ") ||
		strings.HasSuffix(re.Msg, "is empty") ||
		strings.Contains(re.Msg, "nothing summarized")
}

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	fmt.Fprintf(c.w, "QUIT\n")
	c.w.Flush()
	return c.conn.Close()
}

func (c *Client) readStatus() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return "", &RemoteError{Msg: strings.TrimPrefix(line, "ERR ")}
	}
	if !strings.HasPrefix(line, "OK") {
		return "", fmt.Errorf("server: malformed reply %q", line)
	}
	return strings.TrimSpace(strings.TrimPrefix(line, "OK")), nil
}

// Push merges a summary into the named slot and returns the slot's
// total weight after the merge.
func (c *Client) Push(slot, kind string, summary encoding.BinaryMarshaler) (uint64, error) {
	data, err := summary.MarshalBinary()
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(c.w, "PUSH %s %s\n%d\n", slot, kind, len(data))
	c.w.Write(data)
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	rest, err := c.readStatus()
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(rest, 10, 64)
}

// PushBatch merges every summary into the named slot with a single
// PUSHB round-trip — all frames are pipelined behind one command line
// and acknowledged by one reply — and returns the slot's total weight
// after the batch. Batches longer than MaxBatch are split into
// multiple round-trips transparently.
func (c *Client) PushBatch(slot, kind string, summaries []encoding.BinaryMarshaler) (uint64, error) {
	if len(summaries) == 0 {
		return 0, fmt.Errorf("server: empty batch")
	}
	var n uint64
	for len(summaries) > 0 {
		chunk := summaries
		if len(chunk) > MaxBatch {
			chunk = chunk[:MaxBatch]
		}
		summaries = summaries[len(chunk):]
		// Marshal everything before touching the wire so an encoding
		// failure cannot leave a half-written batch on the stream.
		frames := make([][]byte, len(chunk))
		for i, s := range chunk {
			data, err := s.MarshalBinary()
			if err != nil {
				return 0, err
			}
			frames[i] = data
		}
		fmt.Fprintf(c.w, "PUSHB %s %s %d\n", slot, kind, len(frames))
		for _, f := range frames {
			fmt.Fprintf(c.w, "%d\n", len(f))
			c.w.Write(f)
		}
		if err := c.w.Flush(); err != nil {
			return 0, err
		}
		rest, err := c.readStatus()
		if err != nil {
			return 0, err
		}
		if n, err = strconv.ParseUint(rest, 10, 64); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// PullFrame fetches the named slot's raw encoded frame and its kind,
// without decoding — the shape fan-in readers and relays want.
func (c *Client) PullFrame(slot string) (string, []byte, error) {
	fmt.Fprintf(c.w, "PULL %s\n", slot)
	if err := c.w.Flush(); err != nil {
		return "", nil, err
	}
	rest, err := c.readStatus()
	if err != nil {
		return "", nil, err
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return "", nil, fmt.Errorf("server: malformed PULL reply %q", rest)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 || n > maxFrame {
		return "", nil, fmt.Errorf("server: bad frame length %q", fields[1])
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return "", nil, err
	}
	return fields[0], buf, nil
}

// QueryWindowFrame fetches the raw encoded frame of the slot's epoch
// range [from, to] from a windowed server, and its kind.
func (c *Client) QueryWindowFrame(slot string, from, to uint64) (string, []byte, error) {
	fmt.Fprintf(c.w, "QWIN %s %d %d\n", slot, from, to)
	if err := c.w.Flush(); err != nil {
		return "", nil, err
	}
	rest, err := c.readStatus()
	if err != nil {
		return "", nil, err
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return "", nil, fmt.Errorf("server: malformed QWIN reply %q", rest)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 || n > maxFrame {
		return "", nil, fmt.Errorf("server: bad frame length %q", fields[1])
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return "", nil, err
	}
	return fields[0], buf, nil
}

// QueryWindow decodes the merged summary of the named slot's epoch
// range [from, to] into out, returning the slot's kind. Epoch 0 means
// "oldest retained" for from and "through the live epoch" for to, so
// QueryWindow(slot, 0, 0, out) is the all-retained-history query. The
// server must be running windowed mode (summaryd -window).
func (c *Client) QueryWindow(slot string, from, to uint64, out encoding.BinaryUnmarshaler) (string, error) {
	kind, buf, err := c.QueryWindowFrame(slot, from, to)
	if err != nil {
		return "", err
	}
	return kind, out.UnmarshalBinary(buf)
}

// QueryWindowAny is QueryWindow without the caller naming the type:
// the frame's kind tag selects the registry entry, which constructs
// and decodes a fresh summary (as PullAny).
func (c *Client) QueryWindowAny(slot string, from, to uint64) (string, any, error) {
	kind, buf, err := c.QueryWindowFrame(slot, from, to)
	if err != nil {
		return "", nil, err
	}
	ent, err := registry.FromFrame(buf)
	if err != nil {
		return "", nil, fmt.Errorf("server: slot %q kind %q: %w", slot, kind, err)
	}
	v, err := ent.Decode(buf)
	if err != nil {
		return "", nil, err
	}
	return kind, v, nil
}

// Pull decodes the named slot's merged summary into out, returning the
// slot's kind.
func (c *Client) Pull(slot string, out encoding.BinaryUnmarshaler) (string, error) {
	kind, buf, err := c.PullFrame(slot)
	if err != nil {
		return "", err
	}
	return kind, out.UnmarshalBinary(buf)
}

// PullAny fetches and decodes the named slot's merged summary without
// the caller naming its type: the frame's kind tag selects the registry
// entry, which constructs and decodes a fresh summary. The returned
// value's dynamic type is the family's summary pointer (e.g. *mg.Summary
// for kind "mg").
func (c *Client) PullAny(slot string) (string, any, error) {
	kind, buf, err := c.PullFrame(slot)
	if err != nil {
		return "", nil, err
	}
	ent, err := registry.FromFrame(buf)
	if err != nil {
		return "", nil, fmt.Errorf("server: slot %q kind %q: %w", slot, kind, err)
	}
	v, err := ent.Decode(buf)
	if err != nil {
		return "", nil, err
	}
	return kind, v, nil
}

// PushTyped merges a summary into the named slot, deriving the wire
// kind from the summary's own frame via the registry — callers never
// spell kind strings. It returns the slot's total weight after the
// merge.
func PushTyped[T any, PT registry.Codec[T]](c *Client, slot string, summary PT) (uint64, error) {
	data, err := summary.MarshalBinary()
	if err != nil {
		return 0, err
	}
	ent, err := registry.FromFrame(data)
	if err != nil {
		return 0, fmt.Errorf("server: push: %w", err)
	}
	fmt.Fprintf(c.w, "PUSH %s %s\n%d\n", slot, ent.Name(), len(data))
	c.w.Write(data)
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	rest, err := c.readStatus()
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(rest, 10, 64)
}

// PullTyped fetches the named slot's merged summary decoded into a
// fresh *T. The slot must hold T's registered kind; a mismatch is
// reported by the codec layer's kind check, not a silent misparse.
func PullTyped[T any, PT registry.Codec[T]](c *Client, slot string) (*T, error) {
	_, buf, err := c.PullFrame(slot)
	if err != nil {
		return nil, err
	}
	out := new(T)
	if err := PT(out).UnmarshalBinary(buf); err != nil {
		return nil, err
	}
	return out, nil
}

// SlotInfo is one STAT row.
type SlotInfo struct {
	Name   string
	Kind   string
	N      uint64
	Pushes uint64
}

// Stat lists the server's slots.
func (c *Client) Stat() ([]SlotInfo, error) {
	fmt.Fprintf(c.w, "STAT\n")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	rest, err := c.readStatus()
	if err != nil {
		return nil, err
	}
	count, err := strconv.Atoi(rest)
	if err != nil || count < 0 {
		return nil, fmt.Errorf("server: malformed STAT count %q", rest)
	}
	out := make([]SlotInfo, 0, count)
	for i := 0; i < count; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		f := strings.Fields(strings.TrimSpace(line))
		if len(f) != 4 {
			return nil, fmt.Errorf("server: malformed STAT row %q", line)
		}
		n, _ := strconv.ParseUint(f[2], 10, 64)
		p, _ := strconv.ParseUint(f[3], 10, 64)
		out = append(out, SlotInfo{Name: f[0], Kind: f[1], N: n, Pushes: p})
	}
	return out, nil
}

// Reset drops the named slot.
func (c *Client) Reset(slot string) error {
	fmt.Fprintf(c.w, "RESET %s\n", slot)
	if err := c.w.Flush(); err != nil {
		return err
	}
	_, err := c.readStatus()
	return err
}

// readFrameReply parses an "OK <kind> <len>\n<frame>" reply.
func (c *Client) readFrameReply(cmd string) (string, []byte, error) {
	rest, err := c.readStatus()
	if err != nil {
		return "", nil, err
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return "", nil, fmt.Errorf("server: malformed %s reply %q", cmd, rest)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 || n > maxFrame {
		return "", nil, fmt.Errorf("server: bad frame length %q", fields[1])
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return "", nil, err
	}
	return fields[0], buf, nil
}

// PullClusterFrame fetches the cluster-wide merged frame of the named
// slot via PULLC: the contacted node fans the read out to every peer
// and reduces the snapshots before replying. Against a node without
// peers it is a plain PULL.
func (c *Client) PullClusterFrame(slot string) (string, []byte, error) {
	fmt.Fprintf(c.w, "PULLC %s\n", slot)
	if err := c.w.Flush(); err != nil {
		return "", nil, err
	}
	return c.readFrameReply("PULLC")
}

// PullCluster decodes the cluster-wide merged summary of the named
// slot into out, returning the slot's kind.
func (c *Client) PullCluster(slot string, out encoding.BinaryUnmarshaler) (string, error) {
	kind, buf, err := c.PullClusterFrame(slot)
	if err != nil {
		return "", err
	}
	return kind, out.UnmarshalBinary(buf)
}

// PullClusterAny is PullCluster without the caller naming the type
// (as PullAny).
func (c *Client) PullClusterAny(slot string) (string, any, error) {
	kind, buf, err := c.PullClusterFrame(slot)
	if err != nil {
		return "", nil, err
	}
	ent, err := registry.FromFrame(buf)
	if err != nil {
		return "", nil, fmt.Errorf("server: slot %q kind %q: %w", slot, kind, err)
	}
	v, err := ent.Decode(buf)
	if err != nil {
		return "", nil, err
	}
	return kind, v, nil
}

// QueryWindowClusterFrame fetches the cluster-wide merged frame of the
// slot's epoch range [from, to] via QWINC (epoch-0 conventions as
// QueryWindow).
func (c *Client) QueryWindowClusterFrame(slot string, from, to uint64) (string, []byte, error) {
	fmt.Fprintf(c.w, "QWINC %s %d %d\n", slot, from, to)
	if err := c.w.Flush(); err != nil {
		return "", nil, err
	}
	return c.readFrameReply("QWINC")
}

// QueryWindowCluster decodes the cluster-wide merged summary of the
// slot's epoch range [from, to] into out, returning the slot's kind.
func (c *Client) QueryWindowCluster(slot string, from, to uint64, out encoding.BinaryUnmarshaler) (string, error) {
	kind, buf, err := c.QueryWindowClusterFrame(slot, from, to)
	if err != nil {
		return "", err
	}
	return kind, out.UnmarshalBinary(buf)
}

// Metrics fetches the server's METRICS counters as a name→value map:
// per-kind push/pull/merge totals, peer fan-out counters (peer mode),
// and the window epoch origin and tick (windowed mode).
func (c *Client) Metrics() (map[string]uint64, error) {
	fmt.Fprintf(c.w, "METRICS\n")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	rest, err := c.readStatus()
	if err != nil {
		return nil, err
	}
	count, err := strconv.Atoi(rest)
	if err != nil || count < 0 {
		return nil, fmt.Errorf("server: malformed METRICS count %q", rest)
	}
	out := make(map[string]uint64, count)
	for i := 0; i < count; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		f := strings.Fields(strings.TrimSpace(line))
		if len(f) != 2 {
			return nil, fmt.Errorf("server: malformed METRICS row %q", line)
		}
		v, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("server: malformed METRICS value %q", line)
		}
		out[f[0]] = v
	}
	return out, nil
}

// windowClock fetches (once per connection) the server's epoch origin
// and tick from METRICS. Both are fixed at server start, so caching
// them is safe for the connection's lifetime.
func (c *Client) windowClock() (originNS, tickNS int64, err error) {
	if c.winTickNS != 0 {
		return c.winOriginNS, c.winTickNS, nil
	}
	m, err := c.Metrics()
	if err != nil {
		return 0, 0, err
	}
	origin, okO := m["window.origin_unix_ns"]
	tick, okT := m["window.tick_ns"]
	if !okO || !okT || tick == 0 {
		return 0, 0, fmt.Errorf("server: windowed queries disabled (start with -window)")
	}
	c.winOriginNS, c.winTickNS = int64(origin), int64(tick)
	return c.winOriginNS, c.winTickNS, nil
}

// epochAt maps a wall-clock instant to the epoch that was live at
// that instant: epoch 1 spans [origin, origin+tick), and so on.
// Instants before the origin map to epoch 1.
func epochAt(t time.Time, originNS, tickNS int64) uint64 {
	d := t.UnixNano() - originNS
	if d < 0 {
		return 1
	}
	return uint64(d/tickNS) + 1
}

// QueryWindowTime decodes the merged summary of the wall-clock span
// [from, to] into out, returning the slot's kind. The span is mapped
// to epochs with the epoch origin and tick the server reports over
// METRICS: the result covers every epoch that was live at any instant
// of the span, rounded outward to epoch boundaries. A zero from means
// "oldest retained"; a zero to means "through the live epoch". The
// server must be running windowed mode with a tick (summaryd -window
// -wtick), since only tick-driven epochs track wall time.
func (c *Client) QueryWindowTime(slot string, from, to time.Time, out encoding.BinaryUnmarshaler) (string, error) {
	originNS, tickNS, err := c.windowClock()
	if err != nil {
		return "", err
	}
	var fromE, toE uint64
	if !from.IsZero() {
		fromE = epochAt(from, originNS, tickNS)
	}
	if !to.IsZero() {
		toE = epochAt(to, originNS, tickNS)
	}
	return c.QueryWindow(slot, fromE, toE, out)
}

// QueryWindowClusterTime is QueryWindowTime fanned cluster-wide via
// QWINC. The contacted node's epoch clock maps the span; peers advance
// on the same tick, so the range names the same span everywhere.
func (c *Client) QueryWindowClusterTime(slot string, from, to time.Time, out encoding.BinaryUnmarshaler) (string, error) {
	originNS, tickNS, err := c.windowClock()
	if err != nil {
		return "", err
	}
	var fromE, toE uint64
	if !from.IsZero() {
		fromE = epochAt(from, originNS, tickNS)
	}
	if !to.IsZero() {
		toE = epochAt(to, originNS, tickNS)
	}
	return c.QueryWindowCluster(slot, fromE, toE, out)
}
