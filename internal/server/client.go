package server

import (
	"bufio"
	"encoding"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"

	"repro/internal/registry"
)

// Client speaks the summaryd protocol over one TCP connection. It is
// not safe for concurrent use; open one client per goroutine.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a summaryd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	fmt.Fprintf(c.w, "QUIT\n")
	c.w.Flush()
	return c.conn.Close()
}

func (c *Client) readStatus() (string, error) {
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	line = strings.TrimSpace(line)
	if strings.HasPrefix(line, "ERR ") {
		return "", fmt.Errorf("server: %s", strings.TrimPrefix(line, "ERR "))
	}
	if !strings.HasPrefix(line, "OK") {
		return "", fmt.Errorf("server: malformed reply %q", line)
	}
	return strings.TrimSpace(strings.TrimPrefix(line, "OK")), nil
}

// Push merges a summary into the named slot and returns the slot's
// total weight after the merge.
func (c *Client) Push(slot, kind string, summary encoding.BinaryMarshaler) (uint64, error) {
	data, err := summary.MarshalBinary()
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(c.w, "PUSH %s %s\n%d\n", slot, kind, len(data))
	c.w.Write(data)
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	rest, err := c.readStatus()
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(rest, 10, 64)
}

// PushBatch merges every summary into the named slot with a single
// PUSHB round-trip — all frames are pipelined behind one command line
// and acknowledged by one reply — and returns the slot's total weight
// after the batch. Batches longer than MaxBatch are split into
// multiple round-trips transparently.
func (c *Client) PushBatch(slot, kind string, summaries []encoding.BinaryMarshaler) (uint64, error) {
	if len(summaries) == 0 {
		return 0, fmt.Errorf("server: empty batch")
	}
	var n uint64
	for len(summaries) > 0 {
		chunk := summaries
		if len(chunk) > MaxBatch {
			chunk = chunk[:MaxBatch]
		}
		summaries = summaries[len(chunk):]
		// Marshal everything before touching the wire so an encoding
		// failure cannot leave a half-written batch on the stream.
		frames := make([][]byte, len(chunk))
		for i, s := range chunk {
			data, err := s.MarshalBinary()
			if err != nil {
				return 0, err
			}
			frames[i] = data
		}
		fmt.Fprintf(c.w, "PUSHB %s %s %d\n", slot, kind, len(frames))
		for _, f := range frames {
			fmt.Fprintf(c.w, "%d\n", len(f))
			c.w.Write(f)
		}
		if err := c.w.Flush(); err != nil {
			return 0, err
		}
		rest, err := c.readStatus()
		if err != nil {
			return 0, err
		}
		if n, err = strconv.ParseUint(rest, 10, 64); err != nil {
			return 0, err
		}
	}
	return n, nil
}

// pullFrame fetches the named slot's raw encoded frame and its kind.
func (c *Client) pullFrame(slot string) (string, []byte, error) {
	fmt.Fprintf(c.w, "PULL %s\n", slot)
	if err := c.w.Flush(); err != nil {
		return "", nil, err
	}
	rest, err := c.readStatus()
	if err != nil {
		return "", nil, err
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return "", nil, fmt.Errorf("server: malformed PULL reply %q", rest)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 || n > maxFrame {
		return "", nil, fmt.Errorf("server: bad frame length %q", fields[1])
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return "", nil, err
	}
	return fields[0], buf, nil
}

// queryWindowFrame fetches the raw encoded frame of the slot's epoch
// range [from, to] from a windowed server, and its kind.
func (c *Client) queryWindowFrame(slot string, from, to uint64) (string, []byte, error) {
	fmt.Fprintf(c.w, "QWIN %s %d %d\n", slot, from, to)
	if err := c.w.Flush(); err != nil {
		return "", nil, err
	}
	rest, err := c.readStatus()
	if err != nil {
		return "", nil, err
	}
	fields := strings.Fields(rest)
	if len(fields) != 2 {
		return "", nil, fmt.Errorf("server: malformed QWIN reply %q", rest)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 || n > maxFrame {
		return "", nil, fmt.Errorf("server: bad frame length %q", fields[1])
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return "", nil, err
	}
	return fields[0], buf, nil
}

// QueryWindow decodes the merged summary of the named slot's epoch
// range [from, to] into out, returning the slot's kind. Epoch 0 means
// "oldest retained" for from and "through the live epoch" for to, so
// QueryWindow(slot, 0, 0, out) is the all-retained-history query. The
// server must be running windowed mode (summaryd -window).
func (c *Client) QueryWindow(slot string, from, to uint64, out encoding.BinaryUnmarshaler) (string, error) {
	kind, buf, err := c.queryWindowFrame(slot, from, to)
	if err != nil {
		return "", err
	}
	return kind, out.UnmarshalBinary(buf)
}

// QueryWindowAny is QueryWindow without the caller naming the type:
// the frame's kind tag selects the registry entry, which constructs
// and decodes a fresh summary (as PullAny).
func (c *Client) QueryWindowAny(slot string, from, to uint64) (string, any, error) {
	kind, buf, err := c.queryWindowFrame(slot, from, to)
	if err != nil {
		return "", nil, err
	}
	ent, err := registry.FromFrame(buf)
	if err != nil {
		return "", nil, fmt.Errorf("server: slot %q kind %q: %w", slot, kind, err)
	}
	v, err := ent.Decode(buf)
	if err != nil {
		return "", nil, err
	}
	return kind, v, nil
}

// Pull decodes the named slot's merged summary into out, returning the
// slot's kind.
func (c *Client) Pull(slot string, out encoding.BinaryUnmarshaler) (string, error) {
	kind, buf, err := c.pullFrame(slot)
	if err != nil {
		return "", err
	}
	return kind, out.UnmarshalBinary(buf)
}

// PullAny fetches and decodes the named slot's merged summary without
// the caller naming its type: the frame's kind tag selects the registry
// entry, which constructs and decodes a fresh summary. The returned
// value's dynamic type is the family's summary pointer (e.g. *mg.Summary
// for kind "mg").
func (c *Client) PullAny(slot string) (string, any, error) {
	kind, buf, err := c.pullFrame(slot)
	if err != nil {
		return "", nil, err
	}
	ent, err := registry.FromFrame(buf)
	if err != nil {
		return "", nil, fmt.Errorf("server: slot %q kind %q: %w", slot, kind, err)
	}
	v, err := ent.Decode(buf)
	if err != nil {
		return "", nil, err
	}
	return kind, v, nil
}

// PushTyped merges a summary into the named slot, deriving the wire
// kind from the summary's own frame via the registry — callers never
// spell kind strings. It returns the slot's total weight after the
// merge.
func PushTyped[T any, PT registry.Codec[T]](c *Client, slot string, summary PT) (uint64, error) {
	data, err := summary.MarshalBinary()
	if err != nil {
		return 0, err
	}
	ent, err := registry.FromFrame(data)
	if err != nil {
		return 0, fmt.Errorf("server: push: %w", err)
	}
	fmt.Fprintf(c.w, "PUSH %s %s\n%d\n", slot, ent.Name(), len(data))
	c.w.Write(data)
	if err := c.w.Flush(); err != nil {
		return 0, err
	}
	rest, err := c.readStatus()
	if err != nil {
		return 0, err
	}
	return strconv.ParseUint(rest, 10, 64)
}

// PullTyped fetches the named slot's merged summary decoded into a
// fresh *T. The slot must hold T's registered kind; a mismatch is
// reported by the codec layer's kind check, not a silent misparse.
func PullTyped[T any, PT registry.Codec[T]](c *Client, slot string) (*T, error) {
	_, buf, err := c.pullFrame(slot)
	if err != nil {
		return nil, err
	}
	out := new(T)
	if err := PT(out).UnmarshalBinary(buf); err != nil {
		return nil, err
	}
	return out, nil
}

// SlotInfo is one STAT row.
type SlotInfo struct {
	Name   string
	Kind   string
	N      uint64
	Pushes uint64
}

// Stat lists the server's slots.
func (c *Client) Stat() ([]SlotInfo, error) {
	fmt.Fprintf(c.w, "STAT\n")
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	rest, err := c.readStatus()
	if err != nil {
		return nil, err
	}
	count, err := strconv.Atoi(rest)
	if err != nil || count < 0 {
		return nil, fmt.Errorf("server: malformed STAT count %q", rest)
	}
	out := make([]SlotInfo, 0, count)
	for i := 0; i < count; i++ {
		line, err := c.r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		f := strings.Fields(strings.TrimSpace(line))
		if len(f) != 4 {
			return nil, fmt.Errorf("server: malformed STAT row %q", line)
		}
		n, _ := strconv.ParseUint(f[2], 10, 64)
		p, _ := strconv.ParseUint(f[3], 10, 64)
		out = append(out, SlotInfo{Name: f[0], Kind: f[1], N: n, Pushes: p})
	}
	return out, nil
}

// Reset drops the named slot.
func (c *Client) Reset(slot string) error {
	fmt.Fprintf(c.w, "RESET %s\n", slot)
	if err := c.w.Flush(); err != nil {
		return err
	}
	_, err := c.readStatus()
	return err
}
