package server

import (
	"encoding"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mg"
)

// startFrontServer returns a running server with the PUSHB ingest
// front enabled.
func startFrontServer(t *testing.T, lanes int, tick time.Duration) (string, func()) {
	t.Helper()
	s := New()
	s.SetIngestFront(lanes, tick)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	return addr, func() {
		s.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

// A PULL issued after a front-mode PUSHB's OK reply must observe the
// push even if the epoch ticker has not fired: PULL flushes the lanes.
func TestFrontReadYourWrites(t *testing.T) {
	addr, stop := startFrontServer(t, 4, time.Hour) // ticker effectively off
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s1 := mg.New(16)
	s1.Update(7, 100)
	s2 := mg.New(16)
	s2.Update(9, 50)
	n, err := c.PushBatch("flows", "mg", []encoding.BinaryMarshaler{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if n != 150 {
		t.Fatalf("front PUSHB returned n=%d, want pushed weight 150", n)
	}

	var got mg.Summary
	if _, err := c.Pull("flows", &got); err != nil {
		t.Fatal(err)
	}
	if got.N() != 150 || got.Estimate(7).Value != 100 || got.Estimate(9).Value != 50 {
		t.Fatalf("pull after front PUSHB lost data: n=%d", got.N())
	}

	// The reply's count is cumulative pushed weight, monotone across
	// flushes.
	s3 := mg.New(16)
	s3.Update(7, 25)
	if n, err = c.PushBatch("flows", "mg", []encoding.BinaryMarshaler{s3}); err != nil {
		t.Fatal(err)
	}
	if n != 175 {
		t.Fatalf("second front PUSHB returned n=%d, want 175", n)
	}
}

// STAT must also absorb lane-parked batches.
func TestFrontStatFlushes(t *testing.T) {
	addr, stop := startFrontServer(t, 4, time.Hour)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s := mg.New(16)
	s.Update(1, 40)
	if _, err := c.PushBatch("flows", "mg", []encoding.BinaryMarshaler{s}); err != nil {
		t.Fatal(err)
	}
	infos, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].N != 40 {
		t.Fatalf("STAT after front PUSHB = %+v, want one slot with n=40", infos)
	}
}

// Kind mismatches must be caught even when the slot's only state is
// lane-parked (summary still nil, ent bound).
func TestFrontKindMismatch(t *testing.T) {
	addr, stop := startFrontServer(t, 4, time.Hour)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s := mg.New(16)
	s.Update(1, 1)
	if _, err := c.PushBatch("flows", "mg", []encoding.BinaryMarshaler{s}); err != nil {
		t.Fatal(err)
	}
	s2 := mg.New(16)
	s2.Update(2, 1)
	if _, err := c.PushBatch("flows", "ss", []encoding.BinaryMarshaler{s2}); err == nil {
		t.Fatal("mismatched kind accepted into front-mode slot")
	}
	if _, err := c.Push("flows", "ss", s2); err == nil {
		t.Fatal("mismatched single PUSH accepted into front-mode slot")
	}
}

// TestFrontConcurrentStress races front-mode PUSHB against PULL with a
// fast epoch tick (run under -race): weight must be conserved and
// every pulled snapshot must be a valid MG summary whose N never
// exceeds the total pushed so far.
func TestFrontConcurrentStress(t *testing.T) {
	const (
		k        = 64
		workers  = 8
		batches  = 30
		perBatch = 4
	)
	addr, stop := startFrontServer(t, 4, time.Millisecond)
	defer stop()

	var (
		mu    sync.Mutex
		exact = make(map[core.Item]uint64)
		total uint64
	)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(int64(wk)))
			for b := 0; b < batches; b++ {
				frames := make([]encoding.BinaryMarshaler, perBatch)
				local := make(map[core.Item]uint64)
				var ln uint64
				for i := range frames {
					s := mg.New(k)
					for j := 0; j < 128; j++ {
						x := core.Item(rng.Intn(48))
						s.Update(x, 1)
						local[x]++
						ln++
					}
					frames[i] = s
				}
				// Record the weight before pushing so the reader's
				// ceiling check (pulled N <= recorded total) is sound:
				// the server can never hold weight the test has not yet
				// counted.
				mu.Lock()
				for x, v := range local {
					exact[x] += v
				}
				total += ln
				mu.Unlock()
				if _, err := c.PushBatch("stress", "mg", frames); err != nil {
					t.Errorf("worker %d: %v", wk, err)
					return
				}
			}
		}(wk)
	}

	// Reader racing the pushes and the epoch ticks.
	stopRead := make(chan struct{})
	var readWG sync.WaitGroup
	readWG.Add(1)
	go func() {
		defer readWG.Done()
		c, err := Dial(addr)
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		for {
			select {
			case <-stopRead:
				return
			default:
			}
			var got mg.Summary
			if _, err := c.Pull("stress", &got); err != nil {
				continue // slot may not exist yet
			}
			mu.Lock()
			ceiling := total
			mu.Unlock()
			if got.N() > ceiling {
				t.Errorf("pulled N=%d exceeds pushed total %d", got.N(), ceiling)
				return
			}
		}
	}()

	wg.Wait()
	close(stopRead)
	readWG.Wait()

	// Final pull observes everything (PULL flushes the lanes).
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got mg.Summary
	if _, err := c.Pull("stress", &got); err != nil {
		t.Fatal(err)
	}
	if got.N() != total {
		t.Fatalf("final N = %d, want %d (weight lost)", got.N(), total)
	}
	bound := got.ErrorBound()
	if maxBound := total / uint64(k+1); bound > maxBound {
		t.Fatalf("merged bound %d > n/(k+1) = %d", bound, maxBound)
	}
	for x, cnt := range exact {
		est := got.Estimate(x).Value
		if est > cnt {
			t.Fatalf("item %d overestimated: %d > %d", x, est, cnt)
		}
		if cnt > bound && est+bound < cnt {
			t.Fatalf("item %d underestimated past bound: %d + %d < %d", x, est, bound, cnt)
		}
	}
}
