package server

import (
	"net"
	"testing"
	"time"
)

// FuzzHandle throws arbitrary bytes at a live connection handler: the
// server must never panic and must always terminate once the client
// side closes.
func FuzzHandle(f *testing.F) {
	f.Add([]byte("STAT\n"))
	f.Add([]byte("PUSH a mg\n4\nABCD"))
	f.Add([]byte("PULL nope\nRESET x\nQUIT\n"))
	f.Add([]byte{0, 1, 2, 0xff, '\n'})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New()
		client, srvSide := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.handle(srvSide)
		}()
		client.SetDeadline(time.Now().Add(2 * time.Second))
		client.Write(data)
		// Drain whatever the server replies so it never blocks on
		// write, then hang up.
		go func() {
			buf := make([]byte, 4096)
			for {
				if _, err := client.Read(buf); err != nil {
					return
				}
			}
		}()
		client.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("handler did not terminate after close")
		}
	})
}
