package server

import (
	"encoding"
	"testing"

	"repro/internal/gen"
	"repro/internal/mg"
	"repro/internal/randquant"
)

// benchServer starts a server and returns its address plus a stop
// function; cache toggles the PULL snapshot cache.
func benchServer(b *testing.B, cache bool) (string, func()) {
	b.Helper()
	s := New()
	s.SetSnapshotCache(cache)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	return addr, func() {
		s.Close()
		<-done
	}
}

// seedQuantileSlot pushes one non-trivial quantile summary so PULL has
// real encoding work to (not) do.
func seedQuantileSlot(b *testing.B, addr, slot string) {
	b.Helper()
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	q := randquant.NewEpsilon(0.01, 1)
	for _, v := range gen.UniformValues(1<<15, 3) {
		q.Update(v)
	}
	if _, err := c.Push(slot, "quantile", q); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServerPush measures the single-frame ingest path: pooled
// frame read + off-lock decode + locked merge, one round-trip each.
func BenchmarkServerPush(b *testing.B) {
	addr, stop := benchServer(b, true)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	s := mg.New(256)
	for i, x := range gen.NewZipf(4096, 1.2, 1).Stream(1 << 12) {
		s.Update(x, uint64(i%3+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Push("bp", "mg", s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerPullCached measures the steady-state query path: the
// slot is unchanged between pulls, so every request is served from the
// epoch-cached encoding with no lock and no re-encode.
func BenchmarkServerPullCached(b *testing.B) {
	addr, stop := benchServer(b, true)
	defer stop()
	seedQuantileSlot(b, addr, "bq")
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	var out randquant.Summary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Pull("bq", &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerPullReencode is the pre-cache baseline: the snapshot
// cache is disabled, so every PULL re-encodes the summary under the
// slot lock. The cached/reencode ratio is the headline speedup of the
// epoch cache.
func BenchmarkServerPullReencode(b *testing.B) {
	addr, stop := benchServer(b, false)
	defer stop()
	seedQuantileSlot(b, addr, "bq")
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	var out randquant.Summary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Pull("bq", &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerPushB measures batched ingest: MaxBatch-bounded
// pipelined frames, one reply, slot lock taken once per batch. ns/op
// is per frame (b.N advances by the batch length).
func BenchmarkServerPushB(b *testing.B) {
	const batch = 64
	addr, stop := benchServer(b, true)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	s := mg.New(256)
	for _, x := range gen.NewZipf(4096, 1.2, 2).Stream(1 << 12) {
		s.Update(x, 1)
	}
	summaries := make([]encoding.BinaryMarshaler, batch)
	for i := range summaries {
		summaries[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		if _, err := c.PushBatch("bb", "mg", summaries); err != nil {
			b.Fatal(err)
		}
	}
}
