// Package server implements a small summary-aggregation service: a
// TCP daemon holding named summary slots that workers PUSH framed
// summaries into (the server merges on arrival) and dashboards PULL
// merged summaries out of. It is the minimal "mergeable summaries as a
// service" deployment the PODS'12 framework enables: the server never
// sees raw data, only constant-size summaries, and any number of
// workers can push in any order.
//
// Protocol (text commands, binary frames):
//
//	PUSH <slot> <kind>\n<frame>   → OK <n>\n            merge frame into slot
//	PUSHB <slot> <kind> <count>\n then <count> frames
//	                              → OK <n>\n            merge all frames, one round-trip
//	PULL <slot>\n                 → OK <kind> <len>\n<frame>
//	PULLC <slot>\n                → OK <kind> <len>\n<frame>   cluster-wide fan-in
//	QWIN <slot> <from> <to>\n     → OK <kind> <len>\n<frame>
//	QWINC <slot> <from> <to>\n    → OK <kind> <len>\n<frame>   cluster-wide fan-in
//	STAT\n                        → OK <count>\n then "<slot> <kind> <n> <pushes>\n" each
//	METRICS\n                     → OK <count>\n then "<name> <value>\n" each
//	RESET <slot>\n                → OK 0\n              drop the slot
//	QUIT\n                        → connection closes
//
// QWIN is the time-travel query: on servers running windowed mode
// (SetWindow), every slot additionally feeds a multi-resolution
// roll-up plane (internal/window.Plane) and QWIN returns the merged
// summary of the epoch range [from, to] — 0 meaning "oldest retained"
// and "through the live epoch" respectively. The reply frame is
// byte-identical in shape to PULL's. Without windowed mode QWIN
// reports an error.
//
// PULLC and QWINC are the cluster fan-in commands: on servers running
// peer mode (SetPeers / summaryd -peers), the node PULLs the slot's
// encoded snapshot from every peer concurrently, reduces the peer
// partials together with its own local state through the registry's
// decode-into-scratch path and mergetree.Parallel (cluster.Reduce),
// and replies with the merged frame — the paper's topology-free merge
// run over the network as a star. Peers missing the slot contribute
// nothing; a peer that cannot be reached within the per-peer timeout
// (after retries) turns the reply into a partial-result error naming
// the failed peers, never a hang. See fanout.go.
//
// Every frame on the wire is preceded by its own "<len>\n" length
// line. PUSHB is the batch ingestion command: workers pipeline up to
// MaxBatch frames behind one command line and receive a single reply,
// amortizing syscall, parse and slot-lock overhead across the batch;
// the slot lock is taken once per batch, not once per frame. Frames
// preceding a failed decode/merge within a batch stay merged (the
// reply reports the error).
//
// Layering: all slot state — the slot table, the epoch-versioned
// snapshot cache, the per-lane ingest front, the roll-up planes and
// the per-kind operation counters — lives on Node (node.go), which has
// no network attached. Server is the wire-protocol shell: it reads
// frames into pooled buffers, decodes them into pooled scratch
// summaries entirely outside any slot lock, and calls the node's
// ingest/read methods; the cluster fan-in reuses the same node methods
// for the local share. One process can therefore act as ingest node,
// aggregator, or both.
//
// Concurrency architecture (the merge plane):
//
//   - PUSH/PUSHB read frames into pooled buffers and decode them into
//     pooled scratch summaries entirely outside the slot lock; only
//     the merge itself runs under sl.mu. Steady-state ingestion
//     allocates nothing at the framing layer.
//   - Every successful mutation bumps the slot's version counter.
//     PULL serves from an epoch-versioned encoded-snapshot cache: a
//     slot re-encodes only after its version moved, and concurrent
//     readers share the cached bytes lock-free. A PULL issued after a
//     push's OK reply always observes that push (the version bump
//     happens before the reply is written).
//   - Lock ordering: n.mu (slot map) and sl.mu (one slot) are never
//     held together except map-lookup-then-slot-lock; sl.mu is never
//     held while touching another slot.
//
// A frame-layer error (unparseable or oversized length line, short
// read) leaves the stream position unknown, so the server reports ERR
// and drops the connection rather than misparse frame bytes as
// commands. Command-layer errors (unknown kind, decode failure, kind
// mismatch) keep the connection usable.
//
// Kinds: every family in the registry catalog is served — the server
// keeps no per-kind table of its own. Kind names on the wire are the
// registry's canonical names (registry.Names lists them; currently
// mg, ss, gk, quantile, countmin, countsketch, bottomk, rangecount,
// kernel, qdigest, hll, kmv, topk). A slot's kind and shape are fixed
// by its first PUSH; mismatching pushes fail without corrupting the
// slot.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/registry"
	// Link the full family catalog into any binary embedding the
	// server, so a bare daemon serves every registered kind.
	_ "repro/internal/registry/all"
)

// maxFrame bounds a single pushed frame (16 MiB) so a misbehaving
// client cannot exhaust server memory with one length header. The
// reader additionally grows its buffer only as bytes actually arrive
// (see readLengthPrefixed), so even a header declaring the full 16 MiB
// costs nothing until the peer really sends that much.
const maxFrame = 16 << 20

// frameChunk is the read granularity for large frames: the frame
// buffer is extended at most this much ahead of the bytes received.
const frameChunk = 64 << 10

// MaxBatch bounds the number of frames a single PUSHB may carry.
const MaxBatch = 4096

// frameBuf is a pooled frame read buffer. Pooling the struct (not the
// slice) keeps Get/Put allocation-free.
type frameBuf struct{ b []byte }

// maxPooledFrame caps the capacity a returned frame buffer may keep:
// one giant frame must not pin megabytes in the pool.
const maxPooledFrame = 1 << 20

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

//sketch:hotpath
func getFrame() *frameBuf { return framePool.Get().(*frameBuf) }

//sketch:hotpath
func putFrame(f *frameBuf) {
	if cap(f.b) > maxPooledFrame {
		f.b = nil
	}
	f.b = f.b[:0]
	framePool.Put(f)
}

// Server is the aggregation daemon: the wire-protocol shell over a
// Node. Use New and Serve. Kind dispatch goes through the registry
// catalog: the server itself holds no per-kind state.
type Server struct {
	*Node

	// peer mode (SetPeers): the full cluster member list, this node's
	// own entry, and the per-peer fan-out policy. See fanout.go.
	peers       []string
	self        string
	peerTimeout time.Duration
	peerRetries int

	// peer fan-out counters, served by METRICS.
	fanouts    atomic.Uint64 // cluster fan-in commands executed
	fanPeerOK  atomic.Uint64 // per-peer reads that succeeded
	fanPeerErr atomic.Uint64 // per-peer reads that failed after retries
	fanRetries atomic.Uint64 // per-peer retry attempts

	// winOrigin is the wall-clock instant epoch 1 began (Serve time on
	// windowed servers), unix nanoseconds; 0 until serving. With
	// winTick it is the epoch↔wall-clock mapping METRICS reports and
	// Client.QueryWindowTime uses.
	winOrigin atomic.Int64

	// connSeq hands each connection a token that spreads its pushes
	// across front lanes.
	connSeq atomic.Uint64

	// draining is set by Shutdown: the listener is closed (no new
	// connections) while in-flight connections keep being served until
	// the grace period ends.
	draining atomic.Bool

	ln     net.Listener
	loopWg sync.WaitGroup // ticker goroutines, exit on closed
	connWg sync.WaitGroup // connection handlers
	closed chan struct{}
}

// New returns a server with no slots.
func New() *Server {
	return &Server{
		Node:   NewNode(),
		closed: make(chan struct{}),
	}
}

// Listen binds the server to addr ("127.0.0.1:0" for an ephemeral
// port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve accepts connections until Close (or Shutdown) is called. It
// returns nil on graceful shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Listen first")
	}
	if s.windowed {
		s.winOrigin.Store(time.Now().UnixNano())
	}
	if s.frontLanes > 0 {
		s.loopWg.Add(1)
		go s.flushLoop()
	}
	if s.windowed && s.winTick > 0 {
		s.loopWg.Add(1)
		go s.windowLoop()
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				// Shutdown owns the rest of the teardown.
				return nil
			}
			select {
			case <-s.closed:
				s.connWg.Wait()
				s.loopWg.Wait()
				return nil
			default:
				return err
			}
		}
		s.connWg.Add(1)
		go func() {
			defer s.connWg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and waits for nothing: in-flight connections
// are abandoned to finish on their own and roll-up planes are closed
// so their background workers exit; sealed segments stay queryable
// until the server is dropped. For an orderly drain use Shutdown.
func (s *Server) Close() {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.CloseSlots()
}

// Shutdown drains the server gracefully: it stops accepting new
// connections, absorbs every slot's lane-parked ingest, seals the live
// window epoch (windowed servers), then waits up to grace for
// in-flight connections to finish before closing everything. After the
// drain the node's serveable state contains every push a reply ever
// acknowledged — a final PULL equals the pre-shutdown state.
func (s *Server) Shutdown(grace time.Duration) {
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close() // stop accepting; Serve returns nil
	}
	s.Drain()
	done := make(chan struct{})
	go func() {
		s.connWg.Wait()
		close(done)
	}()
	if grace > 0 {
		select {
		case <-done:
		case <-time.After(grace):
		}
	}
	s.Close()
	s.loopWg.Wait()
}

// windowLoop is the windowed-mode epoch ticker.
func (s *Server) windowLoop() {
	defer s.loopWg.Done()
	t := time.NewTicker(s.winTick)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.AdvanceWindows()
		}
	}
}

// flushLoop is the epoch ticker: on servers running the ingest front
// it absorbs every slot's lanes each tick, bounding the staleness of
// lane-parked data by frontTick even when nobody pulls.
func (s *Server) flushLoop() {
	defer s.loopWg.Done()
	t := time.NewTicker(s.frontTick)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.FlushFronts()
		}
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	token := s.connSeq.Add(1)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for {
		w.Flush()
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "PUSH":
			if !s.cmdPush(fields, r, w) {
				return
			}
		case "PUSHB":
			if !s.cmdPushBatch(token, fields, r, w) {
				return
			}
		case "PULL":
			s.cmdPull(fields, w)
		case "PULLC":
			s.cmdPullCluster(fields, w)
		case "QWIN":
			s.cmdQueryWindow(fields, w)
		case "QWINC":
			s.cmdQueryWindowCluster(fields, w)
		case "STAT":
			s.cmdStat(w)
		case "METRICS":
			s.cmdMetrics(w)
		case "RESET":
			s.cmdReset(fields, w)
		case "QUIT":
			return
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
		}
	}
}

// readLengthPrefixed reads one self-delimiting summary frame preceded
// by its length line ("<len>\n") into f's pooled buffer, returning the
// filled slice (aliasing f.b; valid until f is recycled). The declared
// length is capped at maxFrame, and the buffer grows only as bytes
// actually arrive — at most one frameChunk ahead and at most 2× the
// received size — so a hostile length header cannot force a large
// up-front allocation. Any error from here is protocol-fatal: the
// stream position is unknown and the connection must be dropped after
// reporting it.
func readLengthPrefixed(r *bufio.Reader, f *frameBuf) ([]byte, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(line))
	if err != nil || n < 0 || n > maxFrame {
		return nil, fmt.Errorf("bad frame length %q (max %d)", strings.TrimSpace(line), maxFrame)
	}
	buf := f.b[:0]
	for len(buf) < n {
		chunk := n - len(buf)
		if chunk > frameChunk {
			chunk = frameChunk
		}
		start := len(buf)
		if cap(buf) < start+chunk {
			newCap := 2 * cap(buf)
			if newCap < start+chunk {
				newCap = start + chunk
			}
			if newCap > n {
				newCap = n
			}
			nb := make([]byte, start, newCap)
			copy(nb, buf)
			buf = nb
		}
		buf = buf[:start+chunk]
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			f.b = buf[:0]
			return nil, err
		}
	}
	f.b = buf
	return buf, nil
}

// cmdPush handles PUSH: the frame is read into a pooled buffer and
// decoded into a pooled scratch summary entirely outside the slot
// lock; the node merges it under sl.mu. It returns false when the
// stream can no longer be kept in sync and the connection must drop.
func (s *Server) cmdPush(fields []string, r *bufio.Reader, w *bufio.Writer) bool {
	if len(fields) != 3 {
		fmt.Fprintf(w, "ERR usage: PUSH <slot> <kind>\n")
		return true
	}
	name, kind := fields[1], fields[2]
	ent, ok := registry.ByName(kind)
	if !ok {
		// Consume the frame so the stream stays in sync; if even that
		// fails, the connection is beyond saving.
		f := getFrame()
		_, err := readLengthPrefixed(r, f)
		putFrame(f)
		fmt.Fprintf(w, "ERR unknown kind %q\n", kind)
		return err == nil
	}
	f := getFrame()
	frame, err := readLengthPrefixed(r, f)
	if err != nil {
		putFrame(f)
		fmt.Fprintf(w, "ERR reading frame: %v\n", err)
		return false
	}
	incoming := ent.GetScratch()
	decErr := ent.DecodeInto(incoming, frame)
	putFrame(f)
	if decErr != nil {
		ent.PutScratch(incoming)
		fmt.Fprintf(w, "ERR decoding frame: %v\n", decErr)
		return true
	}
	n, err := s.Ingest(name, ent, incoming)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return true
	}
	fmt.Fprintf(w, "OK %d\n", n)
	return true
}

// cmdPushBatch handles PUSHB <slot> <kind> <count>: count frames are
// read into pooled buffers and decoded into pooled scratch summaries
// up front (outside any lock), then handed to the node, which merges
// them under a single lock acquisition (or folds them into a front
// lane). It returns false when the connection must be dropped because
// the stream can no longer be kept in sync (an unparseable count or a
// frame-layer error means we cannot know where the next command
// starts).
func (s *Server) cmdPushBatch(token uint64, fields []string, r *bufio.Reader, w *bufio.Writer) bool {
	if len(fields) != 4 {
		fmt.Fprintf(w, "ERR usage: PUSHB <slot> <kind> <count>\n")
		return false
	}
	name, kind := fields[1], fields[2]
	count, err := strconv.Atoi(fields[3])
	if err != nil || count < 1 || count > MaxBatch {
		fmt.Fprintf(w, "ERR bad batch count %q (want 1..%d)\n", fields[3], MaxBatch)
		return false
	}
	// Read every frame first so the stream stays in sync regardless of
	// per-frame errors below.
	frames := make([]*frameBuf, count)
	release := func(upto int) {
		for i := 0; i < upto; i++ {
			putFrame(frames[i])
		}
	}
	for i := range frames {
		frames[i] = getFrame()
		if _, err = readLengthPrefixed(r, frames[i]); err != nil {
			release(i + 1)
			fmt.Fprintf(w, "ERR reading frame %d/%d: %v\n", i+1, count, err)
			return false
		}
	}
	ent, ok := registry.ByName(kind)
	if !ok {
		release(count)
		fmt.Fprintf(w, "ERR unknown kind %q\n", kind)
		return true
	}
	decoded := make([]any, count)
	for i, f := range frames {
		decoded[i] = ent.GetScratch()
		if err = ent.DecodeInto(decoded[i], f.b); err != nil {
			for j := 0; j <= i; j++ {
				ent.PutScratch(decoded[j])
			}
			release(count)
			fmt.Fprintf(w, "ERR decoding frame %d/%d: %v\n", i+1, count, err)
			return true
		}
	}
	release(count)
	n, err := s.IngestBatch(name, ent, decoded, token)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return true
	}
	fmt.Fprintf(w, "OK %d\n", n)
	return true
}

func (s *Server) cmdPull(fields []string, w *bufio.Writer) {
	if len(fields) != 2 {
		fmt.Fprintf(w, "ERR usage: PULL <slot>\n")
		return
	}
	kind, data, err := s.Encoded(fields[1])
	if err != nil {
		switch {
		case errors.Is(err, errNoSlot), errors.Is(err, errSlotEmpty):
			fmt.Fprintf(w, "ERR %v\n", err)
		default:
			fmt.Fprintf(w, "ERR encoding: %v\n", err)
		}
		return
	}
	fmt.Fprintf(w, "OK %s %d\n", kind, len(data))
	w.Write(data)
}

// cmdQueryWindow handles QWIN <slot> <from> <to>: the slot's roll-up
// plane answers the epoch range with a minimal precomputed-segment
// cover (0 = oldest retained / through the live epoch).
func (s *Server) cmdQueryWindow(fields []string, w *bufio.Writer) {
	if len(fields) != 4 {
		fmt.Fprintf(w, "ERR usage: QWIN <slot> <from> <to>\n")
		return
	}
	from, err1 := strconv.ParseUint(fields[2], 10, 64)
	to, err2 := strconv.ParseUint(fields[3], 10, 64)
	if err1 != nil || err2 != nil {
		fmt.Fprintf(w, "ERR bad epoch range %q %q\n", fields[2], fields[3])
		return
	}
	kind, frame, err := s.WindowEncoded(fields[1], from, to)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(w, "OK %s %d\n", kind, len(frame))
	w.Write(frame)
}

func (s *Server) cmdStat(w *bufio.Writer) {
	// Rows are formatted outside the write loop (each under its slot's
	// lock inside Node.Rows): the client may be slow to drain and must
	// not stall a slot.
	rows := s.Rows()
	fmt.Fprintf(w, "OK %d\n", len(rows))
	for _, row := range rows {
		fmt.Fprintf(w, "%s %s %d %d\n", row.Name, row.Kind, row.N, row.Pushes)
	}
}

// cmdMetrics handles METRICS: the per-kind push/pull/merge counters,
// the peer fan-out counters (peer mode), and the window epoch origin
// and tick (windowed mode) as "<name> <value>" rows — the first slice
// of the observability surface, and the epoch↔wall-clock mapping
// Client.QueryWindowTime resolves epochs against.
func (s *Server) cmdMetrics(w *bufio.Writer) {
	type row struct {
		name string
		val  uint64
	}
	rows := make([]row, 0, 3*16+8)
	for _, ks := range s.Stats() {
		rows = append(rows,
			row{"kind.push." + ks.Kind, ks.Pushes},
			row{"kind.pull." + ks.Kind, ks.Pulls},
			row{"kind.merge." + ks.Kind, ks.Merges},
		)
	}
	if len(s.peers) > 0 {
		rows = append(rows,
			row{"peer.count", uint64(len(s.peers))},
			row{"peer.fanouts", s.fanouts.Load()},
			row{"peer.ok", s.fanPeerOK.Load()},
			row{"peer.errors", s.fanPeerErr.Load()},
			row{"peer.retries", s.fanRetries.Load()},
		)
	}
	if s.windowed {
		rows = append(rows,
			row{"window.epoch", s.Epoch()},
			row{"window.origin_unix_ns", uint64(s.winOrigin.Load())},
			row{"window.tick_ns", uint64(s.winTick)},
		)
	}
	fmt.Fprintf(w, "OK %d\n", len(rows))
	for _, r := range rows {
		fmt.Fprintf(w, "%s %d\n", r.name, r.val)
	}
}

func (s *Server) cmdReset(fields []string, w *bufio.Writer) {
	if len(fields) != 2 {
		fmt.Fprintf(w, "ERR usage: RESET <slot>\n")
		return
	}
	s.Reset(fields[1])
	fmt.Fprintf(w, "OK 0\n")
}
