// Package server implements a small summary-aggregation service: a
// TCP daemon holding named summary slots that workers PUSH framed
// summaries into (the server merges on arrival) and dashboards PULL
// merged summaries out of. It is the minimal "mergeable summaries as a
// service" deployment the PODS'12 framework enables: the server never
// sees raw data, only constant-size summaries, and any number of
// workers can push in any order.
//
// Protocol (text commands, binary frames):
//
//	PUSH <slot> <kind>\n<frame>   → OK <n>\n            merge frame into slot
//	PUSHB <slot> <kind> <count>\n then <count> frames
//	                              → OK <n>\n            merge all frames, one round-trip
//	PULL <slot>\n                 → OK <kind> <len>\n<frame>
//	QWIN <slot> <from> <to>\n     → OK <kind> <len>\n<frame>
//	STAT\n                        → OK <count>\n then "<slot> <kind> <n> <pushes>\n" each
//	RESET <slot>\n                → OK 0\n              drop the slot
//	QUIT\n                        → connection closes
//
// QWIN is the time-travel query: on servers running windowed mode
// (SetWindow), every slot additionally feeds a multi-resolution
// roll-up plane (internal/window.Plane) and QWIN returns the merged
// summary of the epoch range [from, to] — 0 meaning "oldest retained"
// and "through the live epoch" respectively. The reply frame is
// byte-identical in shape to PULL's. Without windowed mode QWIN
// reports an error.
//
// Every frame on the wire is preceded by its own "<len>\n" length
// line. PUSHB is the batch ingestion command: workers pipeline up to
// MaxBatch frames behind one command line and receive a single reply,
// amortizing syscall, parse and slot-lock overhead across the batch;
// the slot lock is taken once per batch, not once per frame. Frames
// preceding a failed decode/merge within a batch stay merged (the
// reply reports the error).
//
// Concurrency architecture (the merge plane):
//
//   - PUSH/PUSHB read frames into pooled buffers and decode them into
//     pooled scratch summaries entirely outside the slot lock; only
//     the merge itself runs under sl.mu. Steady-state ingestion
//     allocates nothing at the framing layer.
//   - Every successful mutation bumps the slot's version counter.
//     PULL serves from an epoch-versioned encoded-snapshot cache: a
//     slot re-encodes only after its version moved, and concurrent
//     readers share the cached bytes lock-free. A PULL issued after a
//     push's OK reply always observes that push (the version bump
//     happens before the reply is written).
//   - Lock ordering: s.mu (slot map) and sl.mu (one slot) are never
//     held together except map-lookup-then-slot-lock; sl.mu is never
//     held while touching another slot.
//
// A frame-layer error (unparseable or oversized length line, short
// read) leaves the stream position unknown, so the server reports ERR
// and drops the connection rather than misparse frame bytes as
// commands. Command-layer errors (unknown kind, decode failure, kind
// mismatch) keep the connection usable.
//
// Kinds: every family in the registry catalog is served — the server
// keeps no per-kind table of its own. Kind names on the wire are the
// registry's canonical names (registry.Names lists them; currently
// mg, ss, gk, quantile, countmin, countsketch, bottomk, rangecount,
// kernel, qdigest, hll, kmv, topk). A slot's kind and shape are fixed
// by its first PUSH; mismatching pushes fail without corrupting the
// slot.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/registry"
	"repro/internal/shard"
	"repro/internal/window"
	// Link the full family catalog into any binary embedding the
	// server, so a bare daemon serves every registered kind.
	_ "repro/internal/registry/all"
)

// maxFrame bounds a single pushed frame (16 MiB) so a misbehaving
// client cannot exhaust server memory with one length header. The
// reader additionally grows its buffer only as bytes actually arrive
// (see readLengthPrefixed), so even a header declaring the full 16 MiB
// costs nothing until the peer really sends that much.
const maxFrame = 16 << 20

// frameChunk is the read granularity for large frames: the frame
// buffer is extended at most this much ahead of the bytes received.
const frameChunk = 64 << 10

// MaxBatch bounds the number of frames a single PUSHB may carry.
const MaxBatch = 4096

// errSlotEmpty reports a PULL of a slot that exists but holds nothing.
var errSlotEmpty = errors.New("slot is empty")

// snapshot is one epoch of a slot's encoded state. data is immutable
// once published: concurrent PULLs write the same bytes to their own
// connections without copying.
type snapshot struct {
	version uint64
	kind    string
	data    []byte
}

// slot is one named aggregation target.
type slot struct {
	mu      sync.Mutex
	ent     *registry.Entry // guarded by mu; set by the first push
	summary any             // guarded by mu
	pushes  uint64          // guarded by mu

	// version counts mutations. It is bumped under mu after every
	// install/merge and read without mu by the PULL fast path, so a
	// reply-ordered reader can detect staleness with one atomic load.
	version atomic.Uint64
	// snap is the epoch-cached encoding, valid iff snap.version ==
	// version. Published under mu, loaded lock-free.
	snap atomic.Pointer[snapshot]

	// front is the slot's per-lane ingest front, created lazily by the
	// first PUSHB once the server has ingest fronting enabled (see
	// SetIngestFront). nil on servers running the default direct-merge
	// path. pushedN totals the weight absorbed through the front so the
	// PUSHB reply stays meaningful without flushing.
	frontOnce sync.Once
	front     atomic.Pointer[shard.Front]
	pushedN   atomic.Uint64

	// plane is the slot's multi-resolution roll-up plane, bound with
	// ent on windowed servers (SetWindow); nil otherwise. Guarded by mu
	// for binding; the plane itself is internally synchronized.
	plane *window.Plane
}

// encoded returns the slot's wire encoding, serving the epoch cache
// when it is fresh. The fast path is two atomic loads and no lock; the
// slow path takes sl.mu, re-checks (another puller may have refreshed
// the cache while we waited), encodes, and publishes the snapshot
// before unlocking. Invalidation rule: a snapshot is valid only while
// its version matches the slot's; pushes bump the version, so stale
// bytes are unreachable the instant a push's reply is written.
//
//sketch:hotpath
func (sl *slot) encoded(cacheOff bool) (string, []byte, error) {
	if !cacheOff {
		if snap := sl.snap.Load(); snap != nil && snap.version == sl.version.Load() {
			return snap.kind, snap.data, nil
		}
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.summary == nil {
		return "", nil, errSlotEmpty
	}
	v := sl.version.Load()
	if !cacheOff {
		if snap := sl.snap.Load(); snap != nil && snap.version == v {
			return snap.kind, snap.data, nil
		}
	}
	data, err := sl.ent.Encode(sl.summary)
	if err != nil {
		return "", nil, err
	}
	if !cacheOff {
		sl.snap.Store(&snapshot{version: v, kind: sl.ent.Name(), data: data})
	}
	return sl.ent.Name(), data, nil
}

// frameBuf is a pooled frame read buffer. Pooling the struct (not the
// slice) keeps Get/Put allocation-free.
type frameBuf struct{ b []byte }

// maxPooledFrame caps the capacity a returned frame buffer may keep:
// one giant frame must not pin megabytes in the pool.
const maxPooledFrame = 1 << 20

var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

//sketch:hotpath
func getFrame() *frameBuf { return framePool.Get().(*frameBuf) }

//sketch:hotpath
func putFrame(f *frameBuf) {
	if cap(f.b) > maxPooledFrame {
		f.b = nil
	}
	f.b = f.b[:0]
	framePool.Put(f)
}

// Server is the aggregation daemon. Use New and Serve. Kind dispatch
// goes through the registry catalog: the server itself holds no
// per-kind state.
type Server struct {
	mu    sync.Mutex
	slots map[string]*slot // guarded by mu

	// snapCacheOff disables the PULL snapshot cache (benchmarks use it
	// to measure the re-encode-every-call baseline).
	snapCacheOff atomic.Bool

	// frontLanes > 0 enables the per-lane ingest front for PUSHB:
	// batches fold into per-connection lanes off the slot lock and the
	// slot absorbs them on the epoch tick (frontTick) or at the next
	// PULL/STAT. Set via SetIngestFront before Serve.
	frontLanes int
	frontTick  time.Duration

	// windowed servers (SetWindow) give every slot a roll-up plane with
	// this ladder shape; winTick > 0 additionally starts the epoch
	// ticker advancing every plane.
	windowed  bool
	winLadder window.Ladder
	winTick   time.Duration

	// connSeq hands each connection a token that spreads its pushes
	// across front lanes.
	connSeq atomic.Uint64

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// New returns a server with no slots.
func New() *Server {
	return &Server{
		slots:  make(map[string]*slot),
		closed: make(chan struct{}),
	}
}

// SetSnapshotCache enables or disables the epoch-versioned snapshot
// cache serving PULL (enabled by default). Disabling forces every PULL
// to re-encode the slot under its lock — the pre-cache behavior — and
// exists so benchmarks can measure the cache's effect.
func (s *Server) SetSnapshotCache(on bool) { s.snapCacheOff.Store(!on) }

// SetIngestFront enables the per-lane ingest front for PUSHB (off by
// default). With the front on, each batch is folded into a single
// summary off any lock and parked in a per-connection lane; the slot
// absorbs the lanes on the epoch tick (every tick) and before any
// PULL/STAT, so concurrent pushers stop contending on the slot lock
// while reads stay read-your-writes. The PUSHB reply reports the total
// weight pushed through the slot (monotone) instead of the merged N.
// lanes < 1 selects GOMAXPROCS lanes; tick <= 0 selects 5ms. Call
// before Serve.
func (s *Server) SetIngestFront(lanes int, tick time.Duration) {
	if lanes < 1 {
		lanes = runtime.GOMAXPROCS(0)
	}
	if tick <= 0 {
		tick = 5 * time.Millisecond
	}
	s.frontLanes = lanes
	s.frontTick = tick
}

// SetWindow enables windowed mode (off by default): every slot's
// pushes additionally feed a per-slot multi-resolution roll-up plane
// with the given ladder shape, served by QWIN. The zero Ladder selects
// window.DefaultLadder. tick > 0 starts the epoch ticker: the live
// epoch of every plane is sealed (and rolled up in the background)
// every tick. tick <= 0 leaves epoch turn-over to AdvanceWindows —
// the deterministic shape tests use. Call before Serve.
func (s *Server) SetWindow(l window.Ladder, tick time.Duration) {
	s.windowed = true
	s.winLadder = l
	s.winTick = tick
}

// bindPlane creates the slot's roll-up plane on windowed servers, tied
// to the slot's family entry. Called under sl.mu at kind-bind time, so
// a slot's plane exists from its first push onward.
func (s *Server) bindPlane(sl *slot, ent *registry.Entry) {
	if !s.windowed || sl.plane != nil {
		return
	}
	pl, err := window.NewPlane(ent, nil, s.winLadder)
	if err != nil {
		// An invalid ladder shape fails every slot the same way; QWIN
		// reports the missing plane.
		return
	}
	sl.plane = pl
}

// AdvanceWindows seals the live epoch of every windowed slot's plane,
// absorbing lane-parked ingest first so front-mode pushes land in the
// epoch that was open when they arrived. The epoch ticker calls this
// every tick; tests call it directly for deterministic epochs.
func (s *Server) AdvanceWindows() {
	s.mu.Lock()
	sls := make([]*slot, 0, len(s.slots))
	for _, sl := range s.slots {
		sls = append(sls, sl)
	}
	s.mu.Unlock()
	for _, sl := range sls {
		s.flushFront(sl)
		sl.mu.Lock()
		pl := sl.plane
		sl.mu.Unlock()
		if pl != nil {
			// A seal error is retained in the plane's own stats; the
			// epoch still turns over.
			_ = pl.Advance()
		}
	}
}

// windowLoop is the windowed-mode epoch ticker.
func (s *Server) windowLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.winTick)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.AdvanceWindows()
		}
	}
}

// Listen binds the server to addr ("127.0.0.1:0" for an ephemeral
// port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve accepts connections until Close is called. It returns nil on
// graceful shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Listen first")
	}
	if s.frontLanes > 0 {
		s.wg.Add(1)
		go s.flushLoop()
	}
	if s.windowed && s.winTick > 0 {
		s.wg.Add(1)
		go s.windowLoop()
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				s.wg.Wait()
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections. Roll-up
// planes are closed so their background workers exit; sealed segments
// stay queryable until the server is dropped.
func (s *Server) Close() {
	close(s.closed)
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sl := range s.slots {
		sl.mu.Lock()
		if sl.plane != nil {
			sl.plane.Close()
		}
		sl.mu.Unlock()
	}
}

func (s *Server) getSlot(name string) *slot {
	s.mu.Lock()
	defer s.mu.Unlock()
	sl, ok := s.slots[name]
	if !ok {
		sl = &slot{}
		s.slots[name] = sl
	}
	return sl
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	token := s.connSeq.Add(1)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for {
		w.Flush()
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "PUSH":
			if !s.cmdPush(fields, r, w) {
				return
			}
		case "PUSHB":
			if !s.cmdPushBatch(token, fields, r, w) {
				return
			}
		case "PULL":
			s.cmdPull(fields, w)
		case "QWIN":
			s.cmdQueryWindow(fields, w)
		case "STAT":
			s.cmdStat(w)
		case "RESET":
			s.cmdReset(fields, w)
		case "QUIT":
			return
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
		}
	}
}

// readLengthPrefixed reads one self-delimiting summary frame preceded
// by its length line ("<len>\n") into f's pooled buffer, returning the
// filled slice (aliasing f.b; valid until f is recycled). The declared
// length is capped at maxFrame, and the buffer grows only as bytes
// actually arrive — at most one frameChunk ahead and at most 2× the
// received size — so a hostile length header cannot force a large
// up-front allocation. Any error from here is protocol-fatal: the
// stream position is unknown and the connection must be dropped after
// reporting it.
func readLengthPrefixed(r *bufio.Reader, f *frameBuf) ([]byte, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(line))
	if err != nil || n < 0 || n > maxFrame {
		return nil, fmt.Errorf("bad frame length %q (max %d)", strings.TrimSpace(line), maxFrame)
	}
	buf := f.b[:0]
	for len(buf) < n {
		chunk := n - len(buf)
		if chunk > frameChunk {
			chunk = frameChunk
		}
		start := len(buf)
		if cap(buf) < start+chunk {
			newCap := 2 * cap(buf)
			if newCap < start+chunk {
				newCap = start + chunk
			}
			if newCap > n {
				newCap = n
			}
			nb := make([]byte, start, newCap)
			copy(nb, buf)
			buf = nb
		}
		buf = buf[:start+chunk]
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			f.b = buf[:0]
			return nil, err
		}
	}
	f.b = buf
	return buf, nil
}

// cmdPush handles PUSH: the frame is read into a pooled buffer and
// decoded into a pooled scratch summary entirely outside the slot
// lock; only the merge runs under sl.mu. It returns false when the
// stream can no longer be kept in sync and the connection must drop.
func (s *Server) cmdPush(fields []string, r *bufio.Reader, w *bufio.Writer) bool {
	if len(fields) != 3 {
		fmt.Fprintf(w, "ERR usage: PUSH <slot> <kind>\n")
		return true
	}
	name, kind := fields[1], fields[2]
	ent, ok := registry.ByName(kind)
	if !ok {
		// Consume the frame so the stream stays in sync; if even that
		// fails, the connection is beyond saving.
		f := getFrame()
		_, err := readLengthPrefixed(r, f)
		putFrame(f)
		fmt.Fprintf(w, "ERR unknown kind %q\n", kind)
		return err == nil
	}
	f := getFrame()
	frame, err := readLengthPrefixed(r, f)
	if err != nil {
		putFrame(f)
		fmt.Fprintf(w, "ERR reading frame: %v\n", err)
		return false
	}
	incoming := ent.GetScratch()
	decErr := ent.DecodeInto(incoming, frame)
	putFrame(f)
	if decErr != nil {
		ent.PutScratch(incoming)
		fmt.Fprintf(w, "ERR decoding frame: %v\n", decErr)
		return true
	}
	sl := s.getSlot(name)
	sl.mu.Lock()
	switch {
	// ent can be bound with summary still nil when the ingest front
	// holds the slot's only data, so the mismatch check keys on ent.
	case sl.ent != nil && sl.ent != ent:
		held := sl.ent.Name()
		sl.mu.Unlock()
		ent.PutScratch(incoming)
		fmt.Fprintf(w, "ERR slot %q holds kind %q\n", name, held)
		return true
	case sl.summary == nil:
		sl.ent = ent
		sl.summary = incoming // ownership transfers to the slot
		s.bindPlane(sl, ent)
		if sl.plane != nil {
			// AbsorbClone never takes ownership, so the slot keeps the
			// summary it just installed.
			_ = sl.plane.AbsorbClone(incoming)
		}
	default:
		if err := ent.Merge(sl.summary, incoming); err != nil {
			// A failed merge may have partially mutated the slot;
			// bump the version so no cached snapshot outlives it.
			sl.version.Add(1)
			sl.mu.Unlock()
			ent.PutScratch(incoming)
			fmt.Fprintf(w, "ERR merge: %v\n", err)
			return true
		}
		if sl.plane != nil {
			_ = sl.plane.AbsorbClone(incoming)
		}
		ent.PutScratch(incoming)
	}
	sl.pushes++
	sl.version.Add(1)
	n := ent.N(sl.summary)
	sl.mu.Unlock()
	fmt.Fprintf(w, "OK %d\n", n)
	return true
}

// cmdPushBatch handles PUSHB <slot> <kind> <count>: count frames are
// read into pooled buffers and decoded into pooled scratch summaries
// up front (outside any lock), then merged into the slot under a
// single lock acquisition. It returns false when the connection must
// be dropped because the stream can no longer be kept in sync (an
// unparseable count or a frame-layer error means we cannot know where
// the next command starts).
func (s *Server) cmdPushBatch(token uint64, fields []string, r *bufio.Reader, w *bufio.Writer) bool {
	if len(fields) != 4 {
		fmt.Fprintf(w, "ERR usage: PUSHB <slot> <kind> <count>\n")
		return false
	}
	name, kind := fields[1], fields[2]
	count, err := strconv.Atoi(fields[3])
	if err != nil || count < 1 || count > MaxBatch {
		fmt.Fprintf(w, "ERR bad batch count %q (want 1..%d)\n", fields[3], MaxBatch)
		return false
	}
	// Read every frame first so the stream stays in sync regardless of
	// per-frame errors below.
	frames := make([]*frameBuf, count)
	release := func(upto int) {
		for i := 0; i < upto; i++ {
			putFrame(frames[i])
		}
	}
	for i := range frames {
		frames[i] = getFrame()
		if _, err = readLengthPrefixed(r, frames[i]); err != nil {
			release(i + 1)
			fmt.Fprintf(w, "ERR reading frame %d/%d: %v\n", i+1, count, err)
			return false
		}
	}
	ent, ok := registry.ByName(kind)
	if !ok {
		release(count)
		fmt.Fprintf(w, "ERR unknown kind %q\n", kind)
		return true
	}
	decoded := make([]any, count)
	for i, f := range frames {
		decoded[i] = ent.GetScratch()
		if err = ent.DecodeInto(decoded[i], f.b); err != nil {
			for j := 0; j <= i; j++ {
				ent.PutScratch(decoded[j])
			}
			release(count)
			fmt.Fprintf(w, "ERR decoding frame %d/%d: %v\n", i+1, count, err)
			return true
		}
	}
	release(count)
	if s.frontLanes > 0 {
		return s.pushBatchFront(name, ent, decoded, token, w)
	}
	sl := s.getSlot(name)
	sl.mu.Lock()
	if sl.ent != nil && sl.ent != ent {
		held := sl.ent.Name()
		sl.mu.Unlock()
		for _, d := range decoded {
			ent.PutScratch(d)
		}
		fmt.Fprintf(w, "ERR slot %q holds kind %q\n", name, held)
		return true
	}
	for i, incoming := range decoded {
		if sl.summary == nil {
			sl.ent = ent
			sl.summary = incoming // ownership transfers to the slot
			s.bindPlane(sl, ent)
			if sl.plane != nil {
				_ = sl.plane.AbsorbClone(incoming)
			}
		} else if err := ent.Merge(sl.summary, incoming); err != nil {
			// Frames before i stay merged; invalidate any snapshot.
			sl.version.Add(1)
			sl.mu.Unlock()
			for _, d := range decoded[i:] {
				ent.PutScratch(d)
			}
			fmt.Fprintf(w, "ERR merge frame %d/%d: %v\n", i+1, count, err)
			return true
		} else {
			if sl.plane != nil {
				_ = sl.plane.AbsorbClone(incoming)
			}
			ent.PutScratch(incoming)
		}
		sl.pushes++
	}
	sl.version.Add(1)
	n := ent.N(sl.summary)
	sl.mu.Unlock()
	fmt.Fprintf(w, "OK %d\n", n)
	return true
}

// pushBatchFront is the PUSHB tail on servers running the ingest
// front: the already-decoded batch is folded into one summary with no
// lock held, the slot binds its kind under a brief critical section,
// and the folded summary lands in the connection's front lane — so
// concurrent pushers to the same slot contend (at worst) on a lane
// mutex held for one merge, never on the slot lock. The slot absorbs
// the lanes on the epoch tick or at the next PULL/STAT (flushFront).
// The OK reply reports the total weight pushed through the slot so far
// rather than the merged slot's N, which would require a flush.
func (s *Server) pushBatchFront(name string, ent *registry.Entry, decoded []any, token uint64, w *bufio.Writer) bool {
	folded := decoded[0]
	for i := 1; i < len(decoded); i++ {
		if err := ent.Merge(folded, decoded[i]); err != nil {
			for _, d := range decoded[i:] {
				ent.PutScratch(d)
			}
			ent.PutScratch(folded)
			fmt.Fprintf(w, "ERR merge frame %d/%d: %v\n", i+1, len(decoded), err)
			return true
		}
		ent.PutScratch(decoded[i])
	}
	sl := s.getSlot(name)
	sl.mu.Lock()
	if sl.ent != nil && sl.ent != ent {
		held := sl.ent.Name()
		sl.mu.Unlock()
		ent.PutScratch(folded)
		fmt.Fprintf(w, "ERR slot %q holds kind %q\n", name, held)
		return true
	}
	sl.ent = ent
	sl.pushes += uint64(len(decoded))
	s.bindPlane(sl, ent)
	sl.mu.Unlock()
	sl.frontOnce.Do(func() {
		sl.front.Store(shard.NewFront(ent, s.frontLanes))
	})
	n := ent.N(folded)
	consumed, err := sl.front.Load().Push(token, folded)
	if !consumed {
		ent.PutScratch(folded)
	}
	if err != nil {
		fmt.Fprintf(w, "ERR merge: %v\n", err)
		return true
	}
	fmt.Fprintf(w, "OK %d\n", sl.pushedN.Add(n))
	return true
}

// flushFront drains the slot's ingest front (if any) and absorbs the
// pending per-lane summaries under the slot lock, making them visible
// to PULL/STAT — and, on windowed servers, to the slot's roll-up
// plane. The front is keyed to one kind, so merges here cannot
// shape-mismatch in normal operation; if one fails anyway the pending
// summary is dropped unrecycled (a failed merge may alias its state)
// and the version bump keeps cached snapshots from outliving the
// partial merge.
func (s *Server) flushFront(sl *slot) {
	fr := sl.front.Load()
	if fr == nil || !fr.Dirty() {
		return
	}
	pending := fr.Drain()
	if len(pending) == 0 {
		return
	}
	sl.mu.Lock()
	for _, p := range pending {
		if sl.plane != nil {
			// Absorb before the slot consumes p; the plane never takes
			// ownership.
			_ = sl.plane.AbsorbClone(p)
		}
		if sl.summary == nil {
			sl.summary = p
			continue
		}
		if err := sl.ent.Merge(sl.summary, p); err == nil {
			sl.ent.PutScratch(p)
		}
	}
	sl.version.Add(1)
	sl.mu.Unlock()
}

// flushLoop is the epoch ticker: on servers running the ingest front
// it absorbs every slot's lanes each tick, bounding the staleness of
// lane-parked data by frontTick even when nobody pulls.
func (s *Server) flushLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.frontTick)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.mu.Lock()
			sls := make([]*slot, 0, len(s.slots))
			for _, sl := range s.slots {
				sls = append(sls, sl)
			}
			s.mu.Unlock()
			for _, sl := range sls {
				s.flushFront(sl)
			}
		}
	}
}

func (s *Server) cmdPull(fields []string, w *bufio.Writer) {
	if len(fields) != 2 {
		fmt.Fprintf(w, "ERR usage: PULL <slot>\n")
		return
	}
	s.mu.Lock()
	sl, ok := s.slots[fields[1]]
	s.mu.Unlock()
	if !ok {
		fmt.Fprintf(w, "ERR no such slot %q\n", fields[1])
		return
	}
	// Absorb any lane-parked batches first: a PULL issued after a
	// front-mode PUSHB's OK reply must observe that push.
	s.flushFront(sl)
	kind, data, err := sl.encoded(s.snapCacheOff.Load())
	if err != nil {
		if errors.Is(err, errSlotEmpty) {
			fmt.Fprintf(w, "ERR slot %q is empty\n", fields[1])
		} else {
			fmt.Fprintf(w, "ERR encoding: %v\n", err)
		}
		return
	}
	fmt.Fprintf(w, "OK %s %d\n", kind, len(data))
	w.Write(data)
}

// cmdQueryWindow handles QWIN <slot> <from> <to>: the slot's roll-up
// plane answers the epoch range with a minimal precomputed-segment
// cover (0 = oldest retained / through the live epoch). Lane-parked
// ingest is absorbed first so a QWIN issued after a push's OK reply
// observes that push in the live epoch.
func (s *Server) cmdQueryWindow(fields []string, w *bufio.Writer) {
	if len(fields) != 4 {
		fmt.Fprintf(w, "ERR usage: QWIN <slot> <from> <to>\n")
		return
	}
	from, err1 := strconv.ParseUint(fields[2], 10, 64)
	to, err2 := strconv.ParseUint(fields[3], 10, 64)
	if err1 != nil || err2 != nil {
		fmt.Fprintf(w, "ERR bad epoch range %q %q\n", fields[2], fields[3])
		return
	}
	s.mu.Lock()
	sl, ok := s.slots[fields[1]]
	s.mu.Unlock()
	if !ok {
		fmt.Fprintf(w, "ERR no such slot %q\n", fields[1])
		return
	}
	s.flushFront(sl)
	sl.mu.Lock()
	pl := sl.plane
	kind := ""
	if sl.ent != nil {
		kind = sl.ent.Name()
	}
	sl.mu.Unlock()
	if pl == nil {
		if !s.windowed {
			fmt.Fprintf(w, "ERR windowed queries disabled (start with -window)\n")
		} else {
			fmt.Fprintf(w, "ERR slot %q is empty\n", fields[1])
		}
		return
	}
	frame, err := pl.QueryEncoded(from, to)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(w, "OK %s %d\n", kind, len(frame))
	w.Write(frame)
}

func (s *Server) cmdStat(w *bufio.Writer) {
	s.mu.Lock()
	names := make([]string, 0, len(s.slots))
	for name := range s.slots {
		names = append(names, name)
	}
	s.mu.Unlock()
	fmt.Fprintf(w, "OK %d\n", len(names))
	for _, name := range names {
		s.mu.Lock()
		sl := s.slots[name]
		s.mu.Unlock()
		if sl == nil {
			// Reset won the race since the name list was taken.
			fmt.Fprintf(w, "%s - 0 0\n", name)
			continue
		}
		s.flushFront(sl)
		// Format the row under the lock (the summary may be merged
		// into concurrently) but write it after: the client may be
		// slow to drain and must not stall the slot.
		sl.mu.Lock()
		line := fmt.Sprintf("%s - 0 0\n", name)
		if sl.summary != nil {
			line = fmt.Sprintf("%s %s %d %d\n", name, sl.ent.Name(), sl.ent.N(sl.summary), sl.pushes)
		}
		sl.mu.Unlock()
		w.WriteString(line)
	}
}

func (s *Server) cmdReset(fields []string, w *bufio.Writer) {
	if len(fields) != 2 {
		fmt.Fprintf(w, "ERR usage: RESET <slot>\n")
		return
	}
	s.mu.Lock()
	sl := s.slots[fields[1]]
	delete(s.slots, fields[1])
	s.mu.Unlock()
	if sl != nil {
		// Stop the dropped slot's roll-up worker; its history dies with
		// the slot.
		sl.mu.Lock()
		if sl.plane != nil {
			sl.plane.Close()
		}
		sl.mu.Unlock()
	}
	fmt.Fprintf(w, "OK 0\n")
}
