// Package server implements a small summary-aggregation service: a
// TCP daemon holding named summary slots that workers PUSH framed
// summaries into (the server merges on arrival) and dashboards PULL
// merged summaries out of. It is the minimal "mergeable summaries as a
// service" deployment the PODS'12 framework enables: the server never
// sees raw data, only constant-size summaries, and any number of
// workers can push in any order.
//
// Protocol (text commands, binary frames):
//
//	PUSH <slot> <kind>\n<frame>   → OK <n>\n            merge frame into slot
//	PUSHB <slot> <kind> <count>\n then <count> frames
//	                              → OK <n>\n            merge all frames, one round-trip
//	PULL <slot>\n                 → OK <kind> <len>\n<frame>
//	STAT\n                        → OK <count>\n then "<slot> <kind> <n> <pushes>\n" each
//	RESET <slot>\n                → OK 0\n              drop the slot
//	QUIT\n                        → connection closes
//
// Every frame on the wire is preceded by its own "<len>\n" length
// line. PUSHB is the batch ingestion command: workers pipeline up to
// MaxBatch frames behind one command line and receive a single reply,
// amortizing syscall, parse and slot-lock overhead across the batch;
// the slot lock is taken once per batch, not once per frame. Frames
// preceding a failed decode/merge within a batch stay merged (the
// reply reports the error).
//
// Kinds: mg, ss, quantile, gk, qdigest, countmin, hll. A slot's kind
// and shape are fixed by its first PUSH; mismatching pushes fail
// without corrupting the slot.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"

	"repro/internal/countmin"
	"repro/internal/distinct"
	"repro/internal/gk"
	"repro/internal/mg"
	"repro/internal/qdigest"
	"repro/internal/randquant"
	"repro/internal/spacesaving"
)

// maxFrame bounds a single pushed frame (16 MiB) so a misbehaving
// client cannot exhaust server memory with one length header.
const maxFrame = 16 << 20

// MaxBatch bounds the number of frames a single PUSHB may carry.
const MaxBatch = 4096

// ops adapts one summary kind to the slot interface.
type ops struct {
	decode func([]byte) (any, error)
	encode func(any) ([]byte, error)
	merge  func(dst, src any) error
	n      func(any) uint64
}

func kindOps() map[string]ops {
	return map[string]ops{
		"mg": {
			decode: func(b []byte) (any, error) { s := new(mg.Summary); return s, s.UnmarshalBinary(b) },
			encode: func(v any) ([]byte, error) { return v.(*mg.Summary).MarshalBinary() },
			merge:  func(d, s any) error { return d.(*mg.Summary).MergeLowError(s.(*mg.Summary)) },
			n:      func(v any) uint64 { return v.(*mg.Summary).N() },
		},
		"ss": {
			decode: func(b []byte) (any, error) { s := new(spacesaving.Summary); return s, s.UnmarshalBinary(b) },
			encode: func(v any) ([]byte, error) { return v.(*spacesaving.Summary).MarshalBinary() },
			merge: func(d, s any) error {
				return d.(*spacesaving.Summary).MergeLowError(s.(*spacesaving.Summary))
			},
			n: func(v any) uint64 { return v.(*spacesaving.Summary).N() },
		},
		"quantile": {
			decode: func(b []byte) (any, error) { s := new(randquant.Summary); return s, s.UnmarshalBinary(b) },
			encode: func(v any) ([]byte, error) { return v.(*randquant.Summary).MarshalBinary() },
			merge:  func(d, s any) error { return d.(*randquant.Summary).Merge(s.(*randquant.Summary)) },
			n:      func(v any) uint64 { return v.(*randquant.Summary).N() },
		},
		"gk": {
			decode: func(b []byte) (any, error) { s := new(gk.Summary); return s, s.UnmarshalBinary(b) },
			encode: func(v any) ([]byte, error) { return v.(*gk.Summary).MarshalBinary() },
			merge:  func(d, s any) error { return d.(*gk.Summary).Merge(s.(*gk.Summary)) },
			n:      func(v any) uint64 { return v.(*gk.Summary).N() },
		},
		"qdigest": {
			decode: func(b []byte) (any, error) { s := new(qdigest.Digest); return s, s.UnmarshalBinary(b) },
			encode: func(v any) ([]byte, error) { return v.(*qdigest.Digest).MarshalBinary() },
			merge:  func(d, s any) error { return d.(*qdigest.Digest).Merge(s.(*qdigest.Digest)) },
			n:      func(v any) uint64 { return v.(*qdigest.Digest).N() },
		},
		"countmin": {
			decode: func(b []byte) (any, error) { s := new(countmin.Sketch); return s, s.UnmarshalBinary(b) },
			encode: func(v any) ([]byte, error) { return v.(*countmin.Sketch).MarshalBinary() },
			merge:  func(d, s any) error { return d.(*countmin.Sketch).Merge(s.(*countmin.Sketch)) },
			n:      func(v any) uint64 { return v.(*countmin.Sketch).N() },
		},
		"hll": {
			decode: func(b []byte) (any, error) { s := new(distinct.HLL); return s, s.UnmarshalBinary(b) },
			encode: func(v any) ([]byte, error) { return v.(*distinct.HLL).MarshalBinary() },
			merge:  func(d, s any) error { return d.(*distinct.HLL).Merge(s.(*distinct.HLL)) },
			n:      func(v any) uint64 { return v.(*distinct.HLL).N() },
		},
	}
}

// slot is one named aggregation target.
type slot struct {
	mu      sync.Mutex
	kind    string // guarded by mu
	summary any    // guarded by mu
	pushes  uint64 // guarded by mu
}

// Server is the aggregation daemon. Use New and Serve.
type Server struct {
	kinds map[string]ops

	mu    sync.Mutex
	slots map[string]*slot // guarded by mu

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// New returns a server with no slots.
func New() *Server {
	return &Server{
		kinds:  kindOps(),
		slots:  make(map[string]*slot),
		closed: make(chan struct{}),
	}
}

// Listen binds the server to addr ("127.0.0.1:0" for an ephemeral
// port) and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve accepts connections until Close is called. It returns nil on
// graceful shutdown.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Listen first")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				s.wg.Wait()
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() {
	close(s.closed)
	if s.ln != nil {
		s.ln.Close()
	}
}

func (s *Server) getSlot(name string) *slot {
	s.mu.Lock()
	defer s.mu.Unlock()
	sl, ok := s.slots[name]
	if !ok {
		sl = &slot{}
		s.slots[name] = sl
	}
	return sl
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	defer w.Flush()
	for {
		w.Flush()
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "PUSH":
			s.cmdPush(fields, r, w)
		case "PUSHB":
			if !s.cmdPushBatch(fields, r, w) {
				return
			}
		case "PULL":
			s.cmdPull(fields, w)
		case "STAT":
			s.cmdStat(w)
		case "RESET":
			s.cmdReset(fields, w)
		case "QUIT":
			return
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
		}
	}
}

// readFrame reads one self-delimiting summary frame preceded by its
// length line ("<len>\n").
func readLengthPrefixed(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return nil, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(line))
	if err != nil || n < 0 || n > maxFrame {
		return nil, fmt.Errorf("bad frame length %q", strings.TrimSpace(line))
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (s *Server) cmdPush(fields []string, r *bufio.Reader, w *bufio.Writer) {
	if len(fields) != 3 {
		fmt.Fprintf(w, "ERR usage: PUSH <slot> <kind>\n")
		return
	}
	name, kind := fields[1], fields[2]
	op, ok := s.kinds[kind]
	if !ok {
		// Drain nothing: the client will notice the error before
		// sending the frame only if it waits; we must still consume
		// the frame to keep the stream in sync.
		if _, err := readLengthPrefixed(r); err != nil {
			return
		}
		fmt.Fprintf(w, "ERR unknown kind %q\n", kind)
		return
	}
	frame, err := readLengthPrefixed(r)
	if err != nil {
		fmt.Fprintf(w, "ERR reading frame: %v\n", err)
		return
	}
	incoming, err := op.decode(frame)
	if err != nil {
		fmt.Fprintf(w, "ERR decoding frame: %v\n", err)
		return
	}
	sl := s.getSlot(name)
	sl.mu.Lock()
	defer sl.mu.Unlock()
	switch {
	case sl.summary == nil:
		sl.kind = kind
		sl.summary = incoming
	case sl.kind != kind:
		fmt.Fprintf(w, "ERR slot %q holds kind %q\n", name, sl.kind)
		return
	default:
		if err := op.merge(sl.summary, incoming); err != nil {
			fmt.Fprintf(w, "ERR merge: %v\n", err)
			return
		}
	}
	sl.pushes++
	fmt.Fprintf(w, "OK %d\n", op.n(sl.summary))
}

// cmdPushBatch handles PUSHB <slot> <kind> <count>: count frames are
// read and decoded up front (outside any lock), then merged into the
// slot under a single lock acquisition. It returns false when the
// connection must be dropped because the stream can no longer be kept
// in sync (an unparseable count means we cannot know how many frames
// follow).
func (s *Server) cmdPushBatch(fields []string, r *bufio.Reader, w *bufio.Writer) bool {
	if len(fields) != 4 {
		fmt.Fprintf(w, "ERR usage: PUSHB <slot> <kind> <count>\n")
		return false
	}
	name, kind := fields[1], fields[2]
	count, err := strconv.Atoi(fields[3])
	if err != nil || count < 1 || count > MaxBatch {
		fmt.Fprintf(w, "ERR bad batch count %q (want 1..%d)\n", fields[3], MaxBatch)
		return false
	}
	// Read every frame first so the stream stays in sync regardless of
	// per-frame errors below.
	frames := make([][]byte, count)
	for i := range frames {
		if frames[i], err = readLengthPrefixed(r); err != nil {
			fmt.Fprintf(w, "ERR reading frame %d/%d: %v\n", i+1, count, err)
			return false
		}
	}
	op, ok := s.kinds[kind]
	if !ok {
		fmt.Fprintf(w, "ERR unknown kind %q\n", kind)
		return true
	}
	decoded := make([]any, count)
	for i, f := range frames {
		if decoded[i], err = op.decode(f); err != nil {
			fmt.Fprintf(w, "ERR decoding frame %d/%d: %v\n", i+1, count, err)
			return true
		}
	}
	sl := s.getSlot(name)
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.summary != nil && sl.kind != kind {
		fmt.Fprintf(w, "ERR slot %q holds kind %q\n", name, sl.kind)
		return true
	}
	for i, incoming := range decoded {
		if sl.summary == nil {
			sl.kind = kind
			sl.summary = incoming
		} else if err := op.merge(sl.summary, incoming); err != nil {
			fmt.Fprintf(w, "ERR merge frame %d/%d: %v\n", i+1, count, err)
			return true
		}
		sl.pushes++
	}
	fmt.Fprintf(w, "OK %d\n", op.n(sl.summary))
	return true
}

func (s *Server) cmdPull(fields []string, w *bufio.Writer) {
	if len(fields) != 2 {
		fmt.Fprintf(w, "ERR usage: PULL <slot>\n")
		return
	}
	s.mu.Lock()
	sl, ok := s.slots[fields[1]]
	s.mu.Unlock()
	if !ok {
		fmt.Fprintf(w, "ERR no such slot %q\n", fields[1])
		return
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.summary == nil {
		fmt.Fprintf(w, "ERR slot %q is empty\n", fields[1])
		return
	}
	data, err := s.kinds[sl.kind].encode(sl.summary)
	if err != nil {
		fmt.Fprintf(w, "ERR encoding: %v\n", err)
		return
	}
	fmt.Fprintf(w, "OK %s %d\n", sl.kind, len(data))
	w.Write(data)
}

func (s *Server) cmdStat(w *bufio.Writer) {
	s.mu.Lock()
	names := make([]string, 0, len(s.slots))
	for name := range s.slots {
		names = append(names, name)
	}
	s.mu.Unlock()
	fmt.Fprintf(w, "OK %d\n", len(names))
	for _, name := range names {
		s.mu.Lock()
		sl := s.slots[name]
		s.mu.Unlock()
		sl.mu.Lock()
		if sl.summary != nil {
			fmt.Fprintf(w, "%s %s %d %d\n", name, sl.kind, s.kinds[sl.kind].n(sl.summary), sl.pushes)
		} else {
			fmt.Fprintf(w, "%s - 0 0\n", name)
		}
		sl.mu.Unlock()
	}
}

func (s *Server) cmdReset(fields []string, w *bufio.Writer) {
	if len(fields) != 2 {
		fmt.Fprintf(w, "ERR usage: RESET <slot>\n")
		return
	}
	s.mu.Lock()
	delete(s.slots, fields[1])
	s.mu.Unlock()
	fmt.Fprintf(w, "OK 0\n")
}
