package server

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codec"
	"repro/internal/registry"
	"repro/internal/shard"
	"repro/internal/window"
)

// errSlotEmpty reports a PULL of a slot that exists but holds nothing.
var errSlotEmpty = errors.New("slot is empty")

// errNoSlot reports an operation on a slot that was never pushed to.
var errNoSlot = errors.New("no such slot")

// emptySlotError is errSlotEmpty with the slot name attached; it
// matches errors.Is(err, errSlotEmpty), and the cluster fan-in treats
// it (like errNoSlot) as "this peer contributes nothing".
type emptySlotError struct{ name string }

func (e *emptySlotError) Error() string        { return fmt.Sprintf("slot %q is empty", e.name) }
func (e *emptySlotError) Is(target error) bool { return target == errSlotEmpty }

// snapshot is one epoch of a slot's encoded state. data is immutable
// once published: concurrent PULLs write the same bytes to their own
// connections without copying.
type snapshot struct {
	version uint64
	kind    string
	data    []byte
}

// slot is one named aggregation target.
type slot struct {
	mu      sync.Mutex
	ent     *registry.Entry // guarded by mu; set by the first push
	summary any             // guarded by mu
	pushes  uint64          // guarded by mu

	// version counts mutations. It is bumped under mu after every
	// install/merge and read without mu by the PULL fast path, so a
	// reply-ordered reader can detect staleness with one atomic load.
	version atomic.Uint64
	// snap is the epoch-cached encoding, valid iff snap.version ==
	// version. Published under mu, loaded lock-free.
	snap atomic.Pointer[snapshot]

	// front is the slot's per-lane ingest front, created lazily by the
	// first PUSHB once the node has ingest fronting enabled (see
	// SetIngestFront). nil on nodes running the default direct-merge
	// path. pushedN totals the weight absorbed through the front so the
	// PUSHB reply stays meaningful without flushing.
	frontOnce sync.Once
	front     atomic.Pointer[shard.Front]
	pushedN   atomic.Uint64

	// plane is the slot's multi-resolution roll-up plane, bound with
	// ent on windowed nodes (SetWindow); nil otherwise. Guarded by mu
	// for binding; the plane itself is internally synchronized.
	plane *window.Plane
}

// encoded returns the slot's wire encoding, serving the epoch cache
// when it is fresh. The fast path is two atomic loads and no lock; the
// slow path takes sl.mu, re-checks (another puller may have refreshed
// the cache while we waited), encodes, and publishes the snapshot
// before unlocking. Invalidation rule: a snapshot is valid only while
// its version matches the slot's; pushes bump the version, so stale
// bytes are unreachable the instant a push's reply is written.
//
//sketch:hotpath
func (sl *slot) encoded(cacheOff bool) (string, []byte, error) {
	if !cacheOff {
		if snap := sl.snap.Load(); snap != nil && snap.version == sl.version.Load() {
			return snap.kind, snap.data, nil
		}
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.summary == nil {
		return "", nil, errSlotEmpty
	}
	v := sl.version.Load()
	if !cacheOff {
		if snap := sl.snap.Load(); snap != nil && snap.version == v {
			return snap.kind, snap.data, nil
		}
	}
	data, err := sl.ent.Encode(sl.summary)
	if err != nil {
		return "", nil, err
	}
	if !cacheOff {
		sl.snap.Store(&snapshot{version: v, kind: sl.ent.Name(), data: data})
	}
	return sl.ent.Name(), data, nil
}

// kindCounters is one family's operation tally on a node. Counters are
// monotone and read lock-free by the METRICS command.
type kindCounters struct {
	pushes atomic.Uint64 // frames ingested (PUSH + each PUSHB frame)
	pulls  atomic.Uint64 // encoded serves (PULL, QWIN and peer fan-in reads)
	merges atomic.Uint64 // slot-level registry merges executed
}

// SlotRow is one slot's STAT view.
type SlotRow struct {
	Name   string
	Kind   string
	N      uint64
	Pushes uint64
}

// Node is the slot/registry/ingest-front core of the aggregation
// plane, with no network attached: a named slot table, the
// epoch-versioned snapshot cache serving encoded reads, the optional
// per-lane ingest front, the optional per-slot roll-up planes, and
// per-kind operation counters. The network Server layers the wire
// protocol over exactly these methods, and the cluster fan-in reuses
// them for its local share — one process can act as ingest node,
// aggregator, or both without duplicating slot state.
type Node struct {
	mu    sync.Mutex
	slots map[string]*slot // guarded by mu

	// snapCacheOff disables the PULL snapshot cache (benchmarks use it
	// to measure the re-encode-every-call baseline).
	snapCacheOff atomic.Bool

	// frontLanes > 0 enables the per-lane ingest front for batch
	// ingestion: batches fold into per-connection lanes and the slot
	// absorbs them on the epoch tick (frontTick) or at the next read.
	frontLanes int
	frontTick  time.Duration

	// windowed nodes (SetWindow) give every slot a roll-up plane with
	// this ladder shape; winTick > 0 additionally drives the epoch
	// ticker (owned by the Server).
	windowed  bool
	winLadder window.Ladder
	winTick   time.Duration

	// winEpoch is the node-wide live epoch sequence: it starts at 1 and
	// advances with AdvanceWindows, and every plane bound after the
	// node has already turned epochs over is aligned to it (StartAt),
	// so one wall-clock origin + tick maps times to epochs for every
	// slot regardless of when the slot first appeared.
	winEpoch atomic.Uint64

	// stats is the per-kind operation tally, indexed by wire tag.
	stats [codec.KindCount]kindCounters
}

// NewNode returns a node with no slots.
func NewNode() *Node {
	n := &Node{slots: make(map[string]*slot)}
	n.winEpoch.Store(1)
	return n
}

// SetSnapshotCache enables or disables the epoch-versioned snapshot
// cache serving encoded reads (enabled by default). Disabling forces
// every read to re-encode the slot under its lock — the pre-cache
// behavior — and exists so benchmarks can measure the cache's effect.
func (n *Node) SetSnapshotCache(on bool) { n.snapCacheOff.Store(!on) }

// SetIngestFront enables the per-lane ingest front for batch ingestion
// (off by default). With the front on, each batch is folded into a
// single summary off any lock and parked in a per-connection lane; the
// slot absorbs the lanes on the epoch tick (every tick) and before any
// read, so concurrent pushers stop contending on the slot lock while
// reads stay read-your-writes. The batch reply reports the total
// weight pushed through the slot (monotone) instead of the merged N.
// lanes < 1 selects GOMAXPROCS lanes; tick <= 0 selects 5ms. Call
// before serving.
func (n *Node) SetIngestFront(lanes int, tick time.Duration) {
	if lanes < 1 {
		lanes = runtime.GOMAXPROCS(0)
	}
	if tick <= 0 {
		tick = 5 * time.Millisecond
	}
	n.frontLanes = lanes
	n.frontTick = tick
}

// SetWindow enables windowed mode (off by default): every slot's
// pushes additionally feed a per-slot multi-resolution roll-up plane
// with the given ladder shape, served by QWIN. The zero Ladder selects
// window.DefaultLadder. tick > 0 asks the serving layer to start the
// epoch ticker; tick <= 0 leaves epoch turn-over to AdvanceWindows —
// the deterministic shape tests use. Call before serving.
func (n *Node) SetWindow(l window.Ladder, tick time.Duration) {
	n.windowed = true
	n.winLadder = l
	n.winTick = tick
}

// Epoch returns the node-wide live window epoch (1 before the first
// AdvanceWindows).
func (n *Node) Epoch() uint64 { return n.winEpoch.Load() }

// counters returns the tally row for a family.
func (n *Node) counters(ent *registry.Entry) *kindCounters {
	return &n.stats[ent.Kind()]
}

// getSlot returns the named slot, creating it if needed.
func (n *Node) getSlot(name string) *slot {
	n.mu.Lock()
	defer n.mu.Unlock()
	sl, ok := n.slots[name]
	if !ok {
		sl = &slot{}
		n.slots[name] = sl
	}
	return sl
}

// lookupSlot returns the named slot without creating it.
func (n *Node) lookupSlot(name string) (*slot, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	sl, ok := n.slots[name]
	return sl, ok
}

// snapshotSlots returns the current slot set; the slice is private to
// the caller.
func (n *Node) snapshotSlots() []*slot {
	n.mu.Lock()
	sls := make([]*slot, 0, len(n.slots))
	for _, sl := range n.slots {
		sls = append(sls, sl)
	}
	n.mu.Unlock()
	return sls
}

// bindPlane creates the slot's roll-up plane on windowed nodes, tied
// to the slot's family entry. Called under sl.mu at kind-bind time, so
// a slot's plane exists from its first push onward. A plane bound
// after the node has already turned epochs over starts at the
// node-wide epoch, keeping every slot on one epoch timeline.
func (n *Node) bindPlane(sl *slot, ent *registry.Entry) {
	if !n.windowed || sl.plane != nil {
		return
	}
	pl, err := window.NewPlane(ent, nil, n.winLadder)
	if err != nil {
		// An invalid ladder shape fails every slot the same way; QWIN
		// reports the missing plane.
		return
	}
	pl.StartAt(n.winEpoch.Load())
	sl.plane = pl
}

// Ingest decodes nothing: it takes an already-decoded summary of ent's
// family and merges it into the named slot under the slot lock,
// binding the slot's kind on first contact. Ownership of incoming
// always transfers to the node — it is installed, recycled through the
// registry pool, or (after a failed merge, which may alias its state)
// dropped. Returns the slot's total weight after the merge.
func (n *Node) Ingest(name string, ent *registry.Entry, incoming any) (uint64, error) {
	sl := n.getSlot(name)
	sl.mu.Lock()
	switch {
	// ent can be bound with summary still nil when the ingest front
	// holds the slot's only data, so the mismatch check keys on ent.
	case sl.ent != nil && sl.ent != ent:
		held := sl.ent.Name()
		sl.mu.Unlock()
		ent.PutScratch(incoming)
		return 0, fmt.Errorf("slot %q holds kind %q", name, held)
	case sl.summary == nil:
		sl.ent = ent
		sl.summary = incoming // ownership transfers to the slot
		n.bindPlane(sl, ent)
		if sl.plane != nil {
			// AbsorbClone never takes ownership, so the slot keeps the
			// summary it just installed.
			_ = sl.plane.AbsorbClone(incoming)
		}
	default:
		if err := ent.Merge(sl.summary, incoming); err != nil {
			// A failed merge may have partially mutated the slot;
			// bump the version so no cached snapshot outlives it.
			sl.version.Add(1)
			sl.mu.Unlock()
			ent.PutScratch(incoming)
			return 0, fmt.Errorf("merge: %v", err)
		}
		n.counters(ent).merges.Add(1)
		if sl.plane != nil {
			_ = sl.plane.AbsorbClone(incoming)
		}
		ent.PutScratch(incoming)
	}
	sl.pushes++
	sl.version.Add(1)
	total := ent.N(sl.summary)
	sl.mu.Unlock()
	n.counters(ent).pushes.Add(1)
	return total, nil
}

// IngestBatch merges a batch of already-decoded summaries into the
// named slot under a single lock acquisition (or, on nodes running the
// ingest front, folds them into a per-connection lane off the slot
// lock — token spreads connections across lanes). Ownership of every
// element transfers to the node, exactly as Ingest. Frames preceding a
// failed merge stay merged; the error reports the failing index.
func (n *Node) IngestBatch(name string, ent *registry.Entry, decoded []any, token uint64) (uint64, error) {
	if n.frontLanes > 0 {
		return n.ingestBatchFront(name, ent, decoded, token)
	}
	count := len(decoded)
	sl := n.getSlot(name)
	sl.mu.Lock()
	if sl.ent != nil && sl.ent != ent {
		held := sl.ent.Name()
		sl.mu.Unlock()
		for _, d := range decoded {
			ent.PutScratch(d)
		}
		return 0, fmt.Errorf("slot %q holds kind %q", name, held)
	}
	for i, incoming := range decoded {
		if sl.summary == nil {
			sl.ent = ent
			sl.summary = incoming // ownership transfers to the slot
			n.bindPlane(sl, ent)
			if sl.plane != nil {
				_ = sl.plane.AbsorbClone(incoming)
			}
		} else if err := ent.Merge(sl.summary, incoming); err != nil {
			// Frames before i stay merged; invalidate any snapshot.
			sl.version.Add(1)
			sl.mu.Unlock()
			for _, d := range decoded[i:] {
				ent.PutScratch(d)
			}
			n.counters(ent).pushes.Add(uint64(i))
			return 0, fmt.Errorf("merge frame %d/%d: %v", i+1, count, err)
		} else {
			n.counters(ent).merges.Add(1)
			if sl.plane != nil {
				_ = sl.plane.AbsorbClone(incoming)
			}
			ent.PutScratch(incoming)
		}
		sl.pushes++
	}
	sl.version.Add(1)
	total := ent.N(sl.summary)
	sl.mu.Unlock()
	n.counters(ent).pushes.Add(uint64(count))
	return total, nil
}

// ingestBatchFront is the batch tail on nodes running the ingest
// front: the already-decoded batch is folded into one summary with no
// lock held, the slot binds its kind under a brief critical section,
// and the folded summary lands in the connection's front lane — so
// concurrent pushers to the same slot contend (at worst) on a lane
// mutex held for one merge, never on the slot lock. The slot absorbs
// the lanes on the epoch tick or at the next read (flushFront). The
// returned total is the weight pushed through the slot so far rather
// than the merged slot's N, which would require a flush.
func (n *Node) ingestBatchFront(name string, ent *registry.Entry, decoded []any, token uint64) (uint64, error) {
	folded := decoded[0]
	for i := 1; i < len(decoded); i++ {
		if err := ent.Merge(folded, decoded[i]); err != nil {
			for _, d := range decoded[i:] {
				ent.PutScratch(d)
			}
			ent.PutScratch(folded)
			return 0, fmt.Errorf("merge frame %d/%d: %v", i+1, len(decoded), err)
		}
		n.counters(ent).merges.Add(1)
		ent.PutScratch(decoded[i])
	}
	sl := n.getSlot(name)
	sl.mu.Lock()
	if sl.ent != nil && sl.ent != ent {
		held := sl.ent.Name()
		sl.mu.Unlock()
		ent.PutScratch(folded)
		return 0, fmt.Errorf("slot %q holds kind %q", name, held)
	}
	sl.ent = ent
	sl.pushes += uint64(len(decoded))
	n.bindPlane(sl, ent)
	sl.mu.Unlock()
	sl.frontOnce.Do(func() {
		sl.front.Store(shard.NewFront(ent, n.frontLanes))
	})
	w := ent.N(folded)
	consumed, err := sl.front.Load().Push(token, folded)
	if !consumed {
		ent.PutScratch(folded)
	}
	if err != nil {
		return 0, fmt.Errorf("merge: %v", err)
	}
	n.counters(ent).pushes.Add(uint64(len(decoded)))
	return sl.pushedN.Add(w), nil
}

// flushFront drains the slot's ingest front (if any) and absorbs the
// pending per-lane summaries under the slot lock, making them visible
// to reads — and, on windowed nodes, to the slot's roll-up plane. The
// front is keyed to one kind, so merges here cannot shape-mismatch in
// normal operation; if one fails anyway the pending summary is dropped
// unrecycled (a failed merge may alias its state) and the version bump
// keeps cached snapshots from outliving the partial merge.
func (n *Node) flushFront(sl *slot) {
	fr := sl.front.Load()
	if fr == nil || !fr.Dirty() {
		return
	}
	pending := fr.Drain()
	if len(pending) == 0 {
		return
	}
	sl.mu.Lock()
	merges := uint64(0)
	for _, p := range pending {
		if sl.plane != nil {
			// Absorb before the slot consumes p; the plane never takes
			// ownership.
			_ = sl.plane.AbsorbClone(p)
		}
		if sl.summary == nil {
			sl.summary = p
			continue
		}
		if err := sl.ent.Merge(sl.summary, p); err == nil {
			merges++
			sl.ent.PutScratch(p)
		}
	}
	sl.version.Add(1)
	ent := sl.ent
	sl.mu.Unlock()
	if ent != nil {
		n.counters(ent).merges.Add(merges)
	}
}

// FlushFronts absorbs every slot's lane-parked ingest. The serving
// layer's epoch ticker calls this each tick, bounding the staleness of
// lane-parked data even when nobody pulls.
func (n *Node) FlushFronts() {
	for _, sl := range n.snapshotSlots() {
		n.flushFront(sl)
	}
}

// AdvanceWindows seals the live epoch of every windowed slot's plane,
// absorbing lane-parked ingest first so front-mode pushes land in the
// epoch that was open when they arrived, and advances the node-wide
// epoch sequence. The epoch ticker calls this every tick; tests call
// it directly for deterministic epochs.
func (n *Node) AdvanceWindows() {
	for _, sl := range n.snapshotSlots() {
		n.flushFront(sl)
		sl.mu.Lock()
		pl := sl.plane
		sl.mu.Unlock()
		if pl != nil {
			// A seal error is retained in the plane's own stats; the
			// epoch still turns over.
			_ = pl.Advance()
		}
	}
	n.winEpoch.Add(1)
}

// Drain is the graceful-shutdown flush: every slot's lane-parked
// ingest is absorbed and, on windowed nodes, the live window epoch is
// sealed — so the node's final serveable state (and its roll-up
// history) contains everything a push reply ever acknowledged.
func (n *Node) Drain() {
	n.FlushFronts()
	if n.windowed {
		n.AdvanceWindows()
	}
}

// Encoded returns the named slot's kind and wire frame, absorbing any
// lane-parked batches first: an encoded read issued after a front-mode
// push's OK reply must observe that push.
func (n *Node) Encoded(name string) (string, []byte, error) {
	sl, ok := n.lookupSlot(name)
	if !ok {
		return "", nil, fmt.Errorf("%w %q", errNoSlot, name)
	}
	n.flushFront(sl)
	kind, data, err := sl.encoded(n.snapCacheOff.Load())
	if err != nil {
		if errors.Is(err, errSlotEmpty) {
			return "", nil, &emptySlotError{name}
		}
		return "", nil, err
	}
	if ent, entOK := registry.ByName(kind); entOK {
		n.counters(ent).pulls.Add(1)
	}
	return kind, data, nil
}

// WindowEncoded answers the named slot's epoch range [from, to] from
// its roll-up plane (0 = oldest retained / through the live epoch).
// Lane-parked ingest is absorbed first so a windowed read issued after
// a push's OK reply observes that push in the live epoch.
func (n *Node) WindowEncoded(name string, from, to uint64) (string, []byte, error) {
	sl, ok := n.lookupSlot(name)
	if !ok {
		return "", nil, fmt.Errorf("%w %q", errNoSlot, name)
	}
	n.flushFront(sl)
	sl.mu.Lock()
	pl := sl.plane
	kind := ""
	if sl.ent != nil {
		kind = sl.ent.Name()
	}
	sl.mu.Unlock()
	if pl == nil {
		if !n.windowed {
			return "", nil, errors.New("windowed queries disabled (start with -window)")
		}
		return "", nil, &emptySlotError{name}
	}
	frame, err := pl.QueryEncoded(from, to)
	if err != nil {
		return "", nil, err
	}
	if ent, entOK := registry.ByName(kind); entOK {
		n.counters(ent).pulls.Add(1)
	}
	return kind, frame, nil
}

// Rows returns one STAT row per slot, each formatted under its slot's
// lock, lane-parked ingest absorbed first. The order is the slot map's
// iteration order; the caller sorts if it needs determinism.
func (n *Node) Rows() []SlotRow {
	n.mu.Lock()
	names := make([]string, 0, len(n.slots))
	for name := range n.slots {
		names = append(names, name)
	}
	n.mu.Unlock()
	rows := make([]SlotRow, 0, len(names))
	for _, name := range names {
		n.mu.Lock()
		sl := n.slots[name]
		n.mu.Unlock()
		row := SlotRow{Name: name, Kind: "-"}
		if sl != nil {
			n.flushFront(sl)
			sl.mu.Lock()
			if sl.summary != nil {
				row.Kind = sl.ent.Name()
				row.N = sl.ent.N(sl.summary)
				row.Pushes = sl.pushes
			}
			sl.mu.Unlock()
		}
		rows = append(rows, row)
	}
	return rows
}

// Reset drops the named slot, stopping its roll-up worker; its history
// dies with the slot.
func (n *Node) Reset(name string) {
	n.mu.Lock()
	sl := n.slots[name]
	delete(n.slots, name)
	n.mu.Unlock()
	if sl != nil {
		sl.mu.Lock()
		if sl.plane != nil {
			sl.plane.Close()
		}
		sl.mu.Unlock()
	}
}

// CloseSlots stops every slot's roll-up worker. Sealed segments stay
// queryable until the node is dropped.
func (n *Node) CloseSlots() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, sl := range n.slots {
		sl.mu.Lock()
		if sl.plane != nil {
			sl.plane.Close()
		}
		sl.mu.Unlock()
	}
}

// KindStats is one family's METRICS view.
type KindStats struct {
	Kind   string
	Pushes uint64
	Pulls  uint64
	Merges uint64
}

// Stats returns the per-kind operation tally in registry order.
func (n *Node) Stats() []KindStats {
	ents := registry.Entries()
	out := make([]KindStats, 0, len(ents))
	for _, ent := range ents {
		c := n.counters(ent)
		out = append(out, KindStats{
			Kind:   ent.Name(),
			Pushes: c.pushes.Load(),
			Pulls:  c.pulls.Load(),
			Merges: c.merges.Load(),
		})
	}
	return out
}
