package server

import (
	"bufio"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
)

// DefaultPeerTimeout bounds one peer read (dial + request + reply)
// during a cluster fan-in when SetPeers is given no explicit timeout.
const DefaultPeerTimeout = 2 * time.Second

// SetPeers enables coordinator-less peer mode: peers is the full
// cluster member list (every node's listen address, this one
// included) and self names this node's own entry, which is answered
// from local state instead of a network round-trip. With peers set,
// the PULLC and QWINC commands answer cluster-wide queries by fanning
// the corresponding single-node read out to every peer concurrently
// and reducing the snapshots through cluster.ReduceEncoded — any node
// can be asked, and every node computes the same answer because the
// reduction order is the shared peer list. timeout bounds each peer
// read (<= 0 selects DefaultPeerTimeout); retries is the number of
// re-dials after a failed read (< 0 selects 1). Call before Serve.
//
// Peer-mode queries never recurse: the fan-out sends single-node
// PULL/QWIN, so a cycle in the peer list costs nothing.
func (s *Server) SetPeers(self string, peers []string, timeout time.Duration, retries int) {
	s.peers = append([]string(nil), peers...)
	s.self = self
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	if retries < 0 {
		retries = 1
	}
	s.peerTimeout = timeout
	s.peerRetries = retries
}

// Peers returns the configured cluster member list (nil outside peer
// mode). The slice is shared; callers must not mutate it.
func (s *Server) Peers() []string { return s.peers }

// peerResult is one peer's contribution to a fan-in: its frame (nil
// when the peer holds nothing for the query) or its terminal error.
type peerResult struct {
	addr  string
	frame []byte
	err   error
}

// readPeer performs one peer read with the configured timeout and
// retry budget. A fresh connection per attempt keeps a half-dead
// socket from poisoning the retry; the deadline covers the whole
// round-trip so a hung peer costs at most (retries+1)·timeout. A
// no-data reply (missing or empty slot, nothing summarized in range)
// is a success contributing nothing — that is what lets a star fan-in
// span nodes that never saw the slot.
func (s *Server) readPeer(addr string, op func(*Client) ([]byte, error)) peerResult {
	var lastErr error
	for attempt := 0; attempt <= s.peerRetries; attempt++ {
		if attempt > 0 {
			s.fanRetries.Add(1)
		}
		c, err := DialTimeout(addr, s.peerTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		c.SetDeadline(time.Now().Add(s.peerTimeout))
		frame, err := op(c)
		c.Close()
		switch {
		case err == nil:
			s.fanPeerOK.Add(1)
			return peerResult{addr: addr, frame: frame}
		case IsNoData(err):
			s.fanPeerOK.Add(1)
			return peerResult{addr: addr}
		}
		lastErr = err
	}
	s.fanPeerErr.Add(1)
	return peerResult{addr: addr, err: lastErr}
}

// fanIn runs a cluster-wide read: local answers this node's share and
// op reads one peer's. Results keep peer-list order — the reduction
// order every node shares — and failures are returned separately.
func (s *Server) fanIn(local func() ([]byte, error), op func(*Client) ([]byte, error)) (frames [][]byte, failed []peerResult) {
	s.fanouts.Add(1)
	results := make([]peerResult, len(s.peers))
	var wg sync.WaitGroup
	for i, addr := range s.peers {
		if addr == s.self {
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			results[i] = s.readPeer(addr, op)
		}(i, addr)
	}
	// The local share runs on this goroutine while the peers are in
	// flight. Local no-data mirrors the peer classification.
	selfAt := -1
	for i, addr := range s.peers {
		if addr == s.self {
			selfAt = i
			frame, err := local()
			switch {
			case err == nil:
				results[i] = peerResult{addr: addr, frame: frame}
			case isLocalNoData(err):
				results[i] = peerResult{addr: addr}
			default:
				s.fanPeerErr.Add(1)
				results[i] = peerResult{addr: addr, err: err}
			}
			break
		}
	}
	wg.Wait()
	if selfAt >= 0 {
		// Count the local share as a peer read so METRICS adds up.
		if results[selfAt].err == nil {
			s.fanPeerOK.Add(1)
		}
	}
	for _, r := range results {
		if r.addr == "" {
			continue // self not in peer list and loop skipped it
		}
		if r.err != nil {
			failed = append(failed, r)
			continue
		}
		if r.frame != nil {
			frames = append(frames, r.frame)
		}
	}
	return frames, failed
}

// isLocalNoData classifies a local read error the way IsNoData
// classifies a remote one: a slot this node never saw, a slot with
// nothing in it, or a window range nothing was sealed into all mean
// "this node contributes nothing".
func isLocalNoData(err error) bool {
	return errors.Is(err, errNoSlot) || errors.Is(err, errSlotEmpty) ||
		strings.Contains(err.Error(), "nothing summarized")
}

// describeFailures renders the failed-peer list for a partial-result
// error reply, deterministically ordered by address.
func describeFailures(failed []peerResult) string {
	sort.Slice(failed, func(i, j int) bool { return failed[i].addr < failed[j].addr })
	parts := make([]string, len(failed))
	for i, f := range failed {
		parts[i] = fmt.Sprintf("peer %s: %v", f.addr, f.err)
	}
	return strings.Join(parts, "; ")
}

// replyFanIn reduces the collected frames and writes the PULL-shaped
// reply, or the partial-result error when any peer failed: the
// cluster never silently serves an answer missing a reachable-peer's
// share, and never hangs — a dead peer costs at most the retry budget.
func (s *Server) replyFanIn(slot string, frames [][]byte, failed []peerResult, w *bufio.Writer) {
	if len(failed) > 0 {
		ok := len(s.peers) - len(failed)
		fmt.Fprintf(w, "ERR partial result (%d/%d peers ok): %s\n", ok, len(s.peers), describeFailures(failed))
		return
	}
	if len(frames) == 0 {
		fmt.Fprintf(w, "ERR no such slot %q\n", slot)
		return
	}
	kind, data, err := cluster.ReduceEncoded(frames)
	if err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	fmt.Fprintf(w, "OK %s %d\n", kind, len(data))
	w.Write(data)
}

// cmdPullCluster handles PULLC <slot>: the cluster-wide merged
// summary, reduced from every peer's PULL snapshot plus this node's
// own state. Outside peer mode it degrades to a plain PULL — a
// cluster of one.
func (s *Server) cmdPullCluster(fields []string, w *bufio.Writer) {
	if len(fields) != 2 {
		fmt.Fprintf(w, "ERR usage: PULLC <slot>\n")
		return
	}
	if len(s.peers) == 0 {
		s.cmdPull(fields, w)
		return
	}
	slot := fields[1]
	frames, failed := s.fanIn(
		func() ([]byte, error) {
			_, data, err := s.Encoded(slot)
			return data, err
		},
		func(c *Client) ([]byte, error) {
			_, data, err := c.PullFrame(slot)
			return data, err
		},
	)
	s.replyFanIn(slot, frames, failed, w)
}

// cmdQueryWindowCluster handles QWINC <slot> <from> <to>: the
// cluster-wide merged summary of the epoch range, reduced from every
// peer's QWIN answer plus this node's own plane. Nodes advance epochs
// on the same tick (or the operator's AdvanceWindows cadence), so a
// range means the same wall-clock span on every peer.
func (s *Server) cmdQueryWindowCluster(fields []string, w *bufio.Writer) {
	if len(fields) != 4 {
		fmt.Fprintf(w, "ERR usage: QWINC <slot> <from> <to>\n")
		return
	}
	if len(s.peers) == 0 {
		s.cmdQueryWindow(fields, w)
		return
	}
	slot := fields[1]
	from, err1 := strconv.ParseUint(fields[2], 10, 64)
	to, err2 := strconv.ParseUint(fields[3], 10, 64)
	if err1 != nil || err2 != nil {
		fmt.Fprintf(w, "ERR bad epoch range %q %q\n", fields[2], fields[3])
		return
	}
	frames, failed := s.fanIn(
		func() ([]byte, error) {
			_, data, err := s.WindowEncoded(slot, from, to)
			return data, err
		},
		func(c *Client) ([]byte, error) {
			_, data, err := c.QueryWindowFrame(slot, from, to)
			return data, err
		},
	)
	s.replyFanIn(slot, frames, failed, w)
}
