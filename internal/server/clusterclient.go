package server

import (
	"encoding"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/registry"
)

// ClusterClient spreads one logical summaryd workload over a node
// list: pushes are routed to the slot key's owner on a consistent-hash
// ring (every client computes the same ring from the same node list,
// so all writers of a slot land on one node without coordination), and
// PullAll answers cluster-wide reads by pulling every node's snapshot
// concurrently and reducing them client-side — the same registry-driven
// fan-in the server's PULLC runs, minus the extra network hop.
//
// A ClusterClient is NOT safe for concurrent use: it caches one
// connection per node and re-uses them across calls (PullAll uses each
// from exactly one goroutine at a time). Open one per goroutine.
type ClusterClient struct {
	ring    *cluster.Ring
	nodes   []string
	conns   []*Client // lazily dialed, index-aligned with nodes
	timeout time.Duration
}

// DialCluster builds a routing client over the node list. Connections
// are dialed lazily, so a cluster with a dead node can still be used
// until a call actually needs that node. timeout bounds each dial and
// each per-node operation (<= 0 selects DefaultPeerTimeout).
func DialCluster(nodes []string, timeout time.Duration) (*ClusterClient, error) {
	ring, err := cluster.NewRing(nodes, 0)
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = DefaultPeerTimeout
	}
	return &ClusterClient{
		ring:    ring,
		nodes:   ring.Nodes(),
		conns:   make([]*Client, len(ring.Nodes())),
		timeout: timeout,
	}, nil
}

// Close closes every open connection, returning the first error.
func (cc *ClusterClient) Close() error {
	var first error
	for i, c := range cc.conns {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
		cc.conns[i] = nil
	}
	return first
}

// Nodes returns the cluster's node list. The slice is shared; callers
// must not mutate it.
func (cc *ClusterClient) Nodes() []string { return cc.nodes }

// Owner returns the node a slot key routes to.
func (cc *ClusterClient) Owner(slot string) string { return cc.ring.Owner(slot) }

// withConn runs op on node i's cached connection, dialing on first
// use. A transport failure (not a server ERR reply) drops the cached
// connection and retries once on a fresh dial, so one stale socket —
// a node restart, an idle-timeout — does not poison the client.
func (cc *ClusterClient) withConn(i int, op func(*Client) error) error {
	redialed := false
	for {
		c := cc.conns[i]
		if c == nil {
			var err error
			c, err = DialTimeout(cc.nodes[i], cc.timeout)
			if err != nil {
				return fmt.Errorf("node %s: %w", cc.nodes[i], err)
			}
			cc.conns[i] = c
			redialed = true
		}
		c.SetDeadline(time.Now().Add(cc.timeout))
		err := op(c)
		c.SetDeadline(time.Time{})
		if err == nil {
			return nil
		}
		var re *RemoteError
		if errors.As(err, &re) {
			// The server answered; the connection is fine.
			return err
		}
		c.conn.Close()
		cc.conns[i] = nil
		if redialed {
			return fmt.Errorf("node %s: %w", cc.nodes[i], err)
		}
	}
}

// Push routes the summary to the slot key's owning node and merges it
// there, returning that node's slot weight after the merge.
func (cc *ClusterClient) Push(slot, kind string, summary encoding.BinaryMarshaler) (uint64, error) {
	var n uint64
	err := cc.withConn(cc.ring.OwnerIndex(slot), func(c *Client) error {
		var err error
		n, err = c.Push(slot, kind, summary)
		return err
	})
	return n, err
}

// PushBatch routes the whole batch to the slot key's owning node with
// PUSHB round-trips, returning that node's slot weight after the batch.
func (cc *ClusterClient) PushBatch(slot, kind string, summaries []encoding.BinaryMarshaler) (uint64, error) {
	var n uint64
	err := cc.withConn(cc.ring.OwnerIndex(slot), func(c *Client) error {
		var err error
		n, err = c.PushBatch(slot, kind, summaries)
		return err
	})
	return n, err
}

// PullAllFrame fetches the cluster-wide merged frame of the named
// slot: every node's PULL snapshot is read concurrently and reduced
// client-side in node-list order (so the answer is byte-identical to
// the server-side PULLC fan-in over the same member list). Nodes that
// never saw the slot contribute nothing; a node that cannot be read
// fails the whole call with a partial-result error naming it — the
// caller is never handed an answer silently missing a node's share.
func (cc *ClusterClient) PullAllFrame(slot string) (string, []byte, error) {
	frames, err := cc.fanOut(func(c *Client) ([]byte, error) {
		_, data, err := c.PullFrame(slot)
		return data, err
	})
	if err != nil {
		return "", nil, err
	}
	if len(frames) == 0 {
		return "", nil, &RemoteError{Msg: fmt.Sprintf("no such slot %q", slot)}
	}
	return cluster.ReduceEncoded(frames)
}

// PullAll decodes the cluster-wide merged summary of the named slot
// into out, returning the slot's kind.
func (cc *ClusterClient) PullAll(slot string, out encoding.BinaryUnmarshaler) (string, error) {
	kind, buf, err := cc.PullAllFrame(slot)
	if err != nil {
		return "", err
	}
	return kind, out.UnmarshalBinary(buf)
}

// PullAllAny is PullAll without the caller naming the type (as
// PullAny).
func (cc *ClusterClient) PullAllAny(slot string) (string, any, error) {
	kind, buf, err := cc.PullAllFrame(slot)
	if err != nil {
		return "", nil, err
	}
	ent, err := registry.FromFrame(buf)
	if err != nil {
		return "", nil, fmt.Errorf("slot %q kind %q: %w", slot, kind, err)
	}
	v, err := ent.Decode(buf)
	if err != nil {
		return "", nil, err
	}
	return kind, v, nil
}

// QueryWindowAllFrame is PullAllFrame over an epoch range: every
// node's QWIN answer for [from, to], reduced in node-list order.
func (cc *ClusterClient) QueryWindowAllFrame(slot string, from, to uint64) (string, []byte, error) {
	frames, err := cc.fanOut(func(c *Client) ([]byte, error) {
		_, data, err := c.QueryWindowFrame(slot, from, to)
		return data, err
	})
	if err != nil {
		return "", nil, err
	}
	if len(frames) == 0 {
		return "", nil, &RemoteError{Msg: fmt.Sprintf("window: nothing summarized in [%d, %d]", from, to)}
	}
	return cluster.ReduceEncoded(frames)
}

// QueryWindowAll decodes the cluster-wide merged summary of the epoch
// range [from, to] into out, returning the slot's kind.
func (cc *ClusterClient) QueryWindowAll(slot string, from, to uint64, out encoding.BinaryUnmarshaler) (string, error) {
	kind, buf, err := cc.QueryWindowAllFrame(slot, from, to)
	if err != nil {
		return "", err
	}
	return kind, out.UnmarshalBinary(buf)
}

// fanOut reads one frame per node concurrently (each node's cached
// connection is used by exactly one goroutine), keeping node-list
// order. No-data replies contribute nothing; any other failure fails
// the call with every failing node named.
func (cc *ClusterClient) fanOut(op func(*Client) ([]byte, error)) ([][]byte, error) {
	type res struct {
		frame []byte
		err   error
	}
	results := make([]res, len(cc.nodes))
	var wg sync.WaitGroup
	for i := range cc.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := cc.withConn(i, func(c *Client) error {
				frame, err := op(c)
				if err != nil {
					return err
				}
				results[i].frame = frame
				return nil
			})
			if err != nil && !IsNoData(err) {
				results[i].err = err
			}
		}(i)
	}
	wg.Wait()
	var failed []string
	frames := make([][]byte, 0, len(cc.nodes))
	for i, r := range results {
		if r.err != nil {
			failed = append(failed, fmt.Sprintf("%s: %v", cc.nodes[i], r.err))
			continue
		}
		if r.frame != nil {
			frames = append(frames, r.frame)
		}
	}
	if len(failed) > 0 {
		sort.Strings(failed)
		return nil, fmt.Errorf("cluster: partial result (%d/%d nodes ok): %s",
			len(cc.nodes)-len(failed), len(cc.nodes), strings.Join(failed, "; "))
	}
	return frames, nil
}
