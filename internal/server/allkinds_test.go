package server

import (
	"bytes"
	"encoding"
	"testing"

	"repro/internal/mg"
	"repro/internal/registry"
)

// rawSummary adapts pre-encoded frame bytes to the Push/PushBatch
// marshaler interface so the catalog sweep below can push any family
// without naming its type.
type rawSummary []byte

func (r rawSummary) MarshalBinary() ([]byte, error) { return r, nil }

// TestAllKindsRoundTrip is the catalog integration test: every family
// the registry serves goes through PUSH, PUSHB, server-side merge and
// PULL, and the pulled frame must be byte-identical to folding the same
// frames locally with the same registry merge. This is the "13/13
// served" acceptance check — it needs no per-family code, so a family
// added to the catalog is covered automatically.
func TestAllKindsRoundTrip(t *testing.T) {
	ents := registry.Entries()
	if len(ents) < 13 {
		t.Fatalf("registry holds %d families, want at least 13", len(ents))
	}
	addr, stop := startServer(t)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for _, ent := range ents {
		ent := ent
		t.Run(ent.Name(), func(t *testing.T) {
			frames := make([][]byte, 3)
			for i, n := range []int{400, 300, 200} {
				f, err := ent.Encode(ent.Example(n))
				if err != nil {
					t.Fatalf("encode example: %v", err)
				}
				frames[i] = f
			}

			// Local expectation: fold the same frames in push order with
			// the same default-variant merge the server uses.
			local, err := ent.Decode(frames[0])
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			for _, f := range frames[1:] {
				src, err := ent.Decode(f)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if err := ent.Merge(local, src); err != nil {
					t.Fatalf("local merge: %v", err)
				}
			}
			want, err := ent.Encode(local)
			if err != nil {
				t.Fatalf("encode local fold: %v", err)
			}

			slot := "rt-" + ent.Name()
			if _, err := c.Push(slot, ent.Name(), rawSummary(frames[0])); err != nil {
				t.Fatalf("PUSH: %v", err)
			}
			batch := []encoding.BinaryMarshaler{rawSummary(frames[1]), rawSummary(frames[2])}
			n, err := c.PushBatch(slot, ent.Name(), batch)
			if err != nil {
				t.Fatalf("PUSHB: %v", err)
			}
			if wantN := ent.N(local); n != wantN {
				t.Fatalf("server n = %d, local fold n = %d", n, wantN)
			}

			kind, got, err := c.PullFrame(slot)
			if err != nil {
				t.Fatalf("PULL: %v", err)
			}
			if kind != ent.Name() {
				t.Fatalf("PULL kind = %q, want %q", kind, ent.Name())
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("pulled frame differs from local fold (%d vs %d bytes)", len(got), len(want))
			}

			// PullAny decodes without the caller naming the type.
			kind, v, err := c.PullAny(slot)
			if err != nil {
				t.Fatalf("PullAny: %v", err)
			}
			if kind != ent.Name() || v == nil {
				t.Fatalf("PullAny = (%q, %T)", kind, v)
			}
			if gotN := ent.N(v); gotN != ent.N(local) {
				t.Fatalf("PullAny n = %d, want %d", gotN, ent.N(local))
			}
		})
	}

	// One STAT sweep over the populated catalog: every family's slot is
	// present with its canonical kind name and three pushes.
	rows, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]SlotInfo, len(rows))
	for _, r := range rows {
		byName[r.Name] = r
	}
	for _, ent := range ents {
		r, ok := byName["rt-"+ent.Name()]
		if !ok {
			t.Fatalf("STAT missing slot for %q", ent.Name())
		}
		if r.Kind != ent.Name() || r.Pushes != 3 {
			t.Fatalf("STAT row %+v, want kind %q pushes 3", r, ent.Name())
		}
	}
}

// TestTypedClientHelpers covers PushTyped/PullTyped: the kind string is
// derived from the frame, never spelled by the caller.
func TestTypedClientHelpers(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s := mg.New(16)
	s.Update(3, 40)
	s.Update(5, 10)
	if _, err := PushTyped(c, "typed", s); err != nil {
		t.Fatal(err)
	}
	s2 := mg.New(16)
	s2.Update(3, 60)
	if n, err := PushTyped(c, "typed", s2); err != nil || n != 110 {
		t.Fatalf("PushTyped: n=%d err=%v", n, err)
	}

	got, err := PullTyped[mg.Summary](c, "typed")
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 110 || got.Estimate(3).Value != 100 {
		t.Fatalf("PullTyped summary wrong: n=%d", got.N())
	}

	// Pulling the slot as a different registered type must fail loudly
	// via the codec kind check.
	if _, err := PullTyped[mg.Summary](c, "nosuch"); err == nil {
		t.Fatal("PullTyped on missing slot succeeded")
	}
}
