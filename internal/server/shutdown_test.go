package server

import (
	"bytes"
	"encoding"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mg"
	"repro/internal/window"
)

// TestShutdownDrainsFront: a graceful Shutdown absorbs every
// lane-parked batch before the grace period starts, so a final PULL
// on a still-open connection sees exactly the acknowledged
// pre-shutdown state — and new connections are refused.
func TestShutdownDrainsFront(t *testing.T) {
	s := New()
	// An hour-long flush tick: only Drain (or a PULL) can absorb the
	// lanes, so the test proves Shutdown does the draining.
	s.SetIngestFront(4, time.Hour)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// The expected final state: the sequential fold of every pushed
	// frame, computed locally.
	want := mg.New(16)
	var batch []encoding.BinaryMarshaler
	for i := 0; i < 64; i++ {
		sum := mg.New(16)
		sum.Update(core.Item(i%8), uint64(i+1))
		want.Update(core.Item(i%8), uint64(i+1))
		batch = append(batch, sum)
	}
	if _, err := c.PushBatch("drained", "mg", batch); err != nil {
		t.Fatal(err)
	}

	shutDone := make(chan struct{})
	go func() {
		s.Shutdown(5 * time.Second)
		close(shutDone)
	}()

	// Wait until the listener is down: new connections must fail.
	deadline := time.Now().Add(3 * time.Second)
	for {
		nc, err := Dial(addr)
		if err != nil {
			break
		}
		nc.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after Shutdown began")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The open connection is served through the grace period; its
	// final PULL must equal the local fold — nothing parked in a lane
	// was lost.
	wantFrame, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	kind, got, err := c.PullFrame("drained")
	if err != nil {
		t.Fatalf("final PULL during drain: %v", err)
	}
	if kind != "mg" || !bytes.Equal(got, wantFrame) {
		t.Fatalf("final PULL differs from pre-shutdown state (%d vs %d bytes)", len(got), len(wantFrame))
	}
	c.Close()

	select {
	case <-shutDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not complete")
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v on graceful shutdown", err)
	}

	// After shutdown the node's state is still intact in-process.
	if _, frame, err := s.Encoded("drained"); err != nil || !bytes.Equal(frame, wantFrame) {
		t.Fatalf("post-shutdown node state lost: err=%v", err)
	}
}

// TestShutdownSealsLiveEpoch: on a windowed server, Shutdown's drain
// advances the plane, so the live epoch's pushes end up in a sealed
// segment queryable during the grace period.
func TestShutdownSealsLiveEpoch(t *testing.T) {
	s := New()
	// Hour-long tick: epochs only advance when Shutdown drains.
	s.SetWindow(window.Ladder{Fan: 4, Levels: 2}, time.Hour)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pushMG(t, c, "w", 1, 30)
	pushMG(t, c, "w", 2, 12)

	go s.Shutdown(5 * time.Second)
	for {
		if s.draining.Load() && s.Epoch() >= 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Epoch 1 is sealed now; the final windowed query on the open
	// connection must serve it.
	var got mg.Summary
	if _, err := c.QueryWindow("w", 1, 1, &got); err != nil {
		t.Fatalf("QWIN over the sealed shutdown epoch: %v", err)
	}
	if got.N() != 42 {
		t.Fatalf("sealed epoch N = %d, want 42", got.N())
	}
	c.Close()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v on graceful shutdown", err)
	}
}

// TestQueryWindowTime: wall-clock queries resolve through the epoch
// origin and tick the server reports over METRICS.
func TestQueryWindowTime(t *testing.T) {
	s, addr, stop := startWindowedServer(t, window.Ladder{Fan: 4, Levels: 2}, time.Hour)
	defer stop()
	_ = s

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pushMG(t, c, "tw", 5, 17)

	// Zero times mean the full retained range, exactly as epoch zeros.
	var got mg.Summary
	kind, err := c.QueryWindowTime("tw", time.Time{}, time.Time{}, &got)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "mg" || got.N() != 17 {
		t.Fatalf("QueryWindowTime zero-span: kind=%q n=%d", kind, got.N())
	}

	// A [start-of-serving, now] span covers the live epoch (the tick
	// is an hour, so "now" still maps to epoch 1).
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	origin := time.Unix(0, int64(m["window.origin_unix_ns"]))
	var got2 mg.Summary
	if _, err := c.QueryWindowTime("tw", origin, time.Now(), &got2); err != nil {
		t.Fatal(err)
	}
	if got2.N() != 17 {
		t.Fatalf("QueryWindowTime live-span n=%d, want 17", got2.N())
	}

	// Against a non-windowed server the mapping fails with the
	// canonical disabled-windows message.
	plainAddr, plainStop := startServer(t)
	defer plainStop()
	pc, err := Dial(plainAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	var out mg.Summary
	if _, err := pc.QueryWindowTime("tw", time.Time{}, time.Time{}, &out); err == nil {
		t.Fatal("QueryWindowTime succeeded against a non-windowed server")
	}
}
