package server

import (
	"bytes"
	"encoding"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/mergetree"
	"repro/internal/mg"
	"repro/internal/registry"
)

// startPeerCluster starts n peer-mode servers sharing one member
// list, returning the list (peer order) and the live servers.
func startPeerCluster(t *testing.T, n int, timeout time.Duration, retries int) ([]string, []*Server, func()) {
	t.Helper()
	servers := make([]*Server, n)
	addrs := make([]string, n)
	for i := range servers {
		servers[i] = New()
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
	}
	done := make(chan error, n)
	for i, s := range servers {
		s.SetPeers(addrs[i], addrs, timeout, retries)
		go func(s *Server) { done <- s.Serve() }(s)
	}
	return addrs, servers, func() {
		for _, s := range servers {
			s.Close()
		}
		for range servers {
			if err := <-done; err != nil {
				t.Errorf("Serve: %v", err)
			}
		}
	}
}

// TestClusterFanInAllKinds is the registry-enumerated cluster
// equivalence gate: for every family, a stream sharded over a 3-node
// star must answer a cluster-wide PULLC identically from every node,
// byte-for-byte, and that answer must summarize exactly the stream a
// single node ingesting everything summarizes — exact total weight
// always, exact bytes for families whose folds are shape-insensitive
// (classified empirically, as the window metamorphic gate does).
func TestClusterFanInAllKinds(t *testing.T) {
	addrs, _, stop := startPeerCluster(t, 3, 2*time.Second, 1)
	defer stop()

	conns := make([]*Client, len(addrs))
	for i, a := range addrs {
		c, err := Dial(a)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}

	// A single reference server ingesting the whole stream.
	refAddr, refStop := startServer(t)
	defer refStop()
	ref, err := Dial(refAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	for _, ent := range registry.Entries() {
		ent := ent
		t.Run(ent.Name(), func(t *testing.T) {
			sizes := []int{400, 35, 220, 90, 150, 12, 310, 64, 500}
			frames := make([][]byte, len(sizes))
			for i, n := range sizes {
				f, err := ent.Encode(ent.Example(n))
				if err != nil {
					t.Fatal(err)
				}
				frames[i] = f
			}
			slot := "cl-" + ent.Name()

			// Star sharding: node i gets every third frame, in order;
			// the reference node gets everything in the same order.
			var wantN uint64
			for i, f := range frames {
				if _, err := conns[i%3].Push(slot, ent.Name(), rawSummary(f)); err != nil {
					t.Fatalf("shard push: %v", err)
				}
				n, err := ref.Push(slot, ent.Name(), rawSummary(f))
				if err != nil {
					t.Fatalf("reference push: %v", err)
				}
				wantN = n
			}

			// The simulated fan-in every node should reproduce: each
			// node's PULL partial, in peer-list order, through the same
			// reduction.
			var partials [][]byte
			for _, c := range conns {
				_, f, err := c.PullFrame(slot)
				if err != nil {
					t.Fatalf("partial PULL: %v", err)
				}
				partials = append(partials, f)
			}
			_, wantFanIn, err := cluster.ReduceEncoded(partials)
			if err != nil {
				t.Fatalf("simulated fan-in: %v", err)
			}

			// Every node answers the cluster-wide PULLC identically.
			var answers [][]byte
			for i, c := range conns {
				kind, f, err := c.PullClusterFrame(slot)
				if err != nil {
					t.Fatalf("PULLC via node %d: %v", i, err)
				}
				if kind != ent.Name() {
					t.Fatalf("PULLC kind = %q, want %q", kind, ent.Name())
				}
				answers = append(answers, f)
			}
			for i, f := range answers {
				if !bytes.Equal(f, answers[0]) {
					t.Fatalf("node %d's PULLC differs from node 0's (%d vs %d bytes): fan-in is not node-independent",
						i, len(f), len(answers[0]))
				}
			}
			if !bytes.Equal(answers[0], wantFanIn) {
				t.Fatalf("PULLC differs from the simulated peer-order fan-in (%d vs %d bytes)",
					len(answers[0]), len(wantFanIn))
			}

			// Cluster answer vs single-node ingestion: weight always.
			dec, err := ent.Decode(answers[0])
			if err != nil {
				t.Fatal(err)
			}
			if gn := ent.N(dec); gn != wantN {
				t.Fatalf("cluster N = %d, single-node N = %d", gn, wantN)
			}

			// Classify the family's fold-shape sensitivity empirically
			// (sequential vs pairing vs node-grouped with codec
			// roundtrips); only an insensitive family owes byte equality
			// with the single-node answer.
			seq, err := ent.Decode(frames[0])
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range frames[1:] {
				src, err := ent.Decode(f)
				if err != nil {
					t.Fatal(err)
				}
				if err := ent.Merge(seq, src); err != nil {
					t.Fatal(err)
				}
			}
			seqFrame, err := ent.Encode(seq)
			if err != nil {
				t.Fatal(err)
			}
			pairParts := make([]any, len(frames))
			for i, f := range frames {
				if pairParts[i], err = ent.Decode(f); err != nil {
					t.Fatal(err)
				}
			}
			paired, err := mergetree.Parallel(pairParts, 1, ent.Merge)
			if err != nil {
				t.Fatal(err)
			}
			pairFrame, err := ent.Encode(paired)
			if err != nil {
				t.Fatal(err)
			}
			insensitive := bytes.Equal(seqFrame, pairFrame) && bytes.Equal(seqFrame, wantFanIn)

			_, refFrame, err := ref.PullFrame(slot)
			if err != nil {
				t.Fatal(err)
			}
			if insensitive && !bytes.Equal(answers[0], refFrame) {
				t.Fatalf("fold-shape-insensitive family: cluster answer differs from single-node answer (%d vs %d bytes)",
					len(answers[0]), len(refFrame))
			}
		})
	}
}

// TestClusterClientRouting: the consistent-hash router sends every
// push of a slot to one owning node — checked against each node's
// STAT — and PullAll reassembles the cluster view of any slot from
// any mix of nodes.
func TestClusterClientRouting(t *testing.T) {
	addrs, _, stop := startPeerCluster(t, 3, 2*time.Second, 1)
	defer stop()

	cc, err := DialCluster(addrs, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	const slots = 24
	for i := 0; i < slots; i++ {
		slot := fmt.Sprintf("route-%d", i)
		s := mg.New(16)
		s.Update(core.Item(i), 10)
		if _, err := cc.Push(slot, "mg", s); err != nil {
			t.Fatalf("routed push: %v", err)
		}
	}

	// Each slot must exist on exactly its ring owner.
	holds := make(map[string]string) // slot → node addr
	for _, addr := range addrs {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := c.Stat()
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			if prev, dup := holds[r.Name]; dup {
				t.Fatalf("slot %q present on both %s and %s", r.Name, prev, addr)
			}
			holds[r.Name] = addr
		}
	}
	if len(holds) != slots {
		t.Fatalf("%d slots materialized, want %d", len(holds), slots)
	}
	for slot, addr := range holds {
		if want := cc.Owner(slot); addr != want {
			t.Fatalf("slot %q landed on %s, ring owner is %s", slot, addr, want)
		}
	}

	// PullAll finds each slot wherever it lives.
	for i := 0; i < slots; i++ {
		slot := fmt.Sprintf("route-%d", i)
		var got mg.Summary
		if _, err := cc.PullAll(slot, &got); err != nil {
			t.Fatalf("PullAll(%q): %v", slot, err)
		}
		if got.N() != 10 {
			t.Fatalf("PullAll(%q) N = %d, want 10", slot, got.N())
		}
	}

	// A star-sharded slot: PullAll equals the server-side PULLC.
	for i, addr := range addrs {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		s := mg.New(16)
		s.Update(core.Item(100+i), 5)
		if _, err := c.Push("starred", "mg", s); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	_, clientFrame, err := cc.PullAllFrame("starred")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, serverFrame, err := c.PullClusterFrame("starred")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(clientFrame, serverFrame) {
		t.Fatalf("client-side PullAll and server-side PULLC disagree (%d vs %d bytes)",
			len(clientFrame), len(serverFrame))
	}
}

// hungListener accepts connections and never replies — the shape of a
// wedged peer, which only a deadline can unstick.
func hungListener(t *testing.T) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var conns []net.Conn
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
		}
	}()
	return ln.Addr().String(), func() {
		ln.Close()
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
		wg.Wait()
	}
}

// TestClusterPartialResultOnHungPeer: a fan-in spanning a peer that
// accepts but never answers must come back within the timeout budget
// as a partial-result error naming the hung peer — never a hang,
// never a silent short answer.
func TestClusterPartialResultOnHungPeer(t *testing.T) {
	hungAddr, stopHung := hungListener(t)
	defer stopHung()

	const timeout = 150 * time.Millisecond
	s := New()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	peerList := []string{addr, hungAddr}
	s.SetPeers(addr, peerList, timeout, 0)
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	defer func() {
		s.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sum := mg.New(16)
	sum.Update(1, 7)
	if _, err := c.Push("pq", "mg", sum); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	_, _, err = c.PullClusterFrame("pq")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("fan-in over a hung peer succeeded")
	}
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want a server ERR reply, got %v", err)
	}
	if !strings.Contains(re.Msg, "partial result") || !strings.Contains(re.Msg, hungAddr) {
		t.Fatalf("partial-result error does not name the hung peer: %q", re.Msg)
	}
	if !strings.Contains(re.Msg, "1/2 peers ok") {
		t.Fatalf("partial-result error miscounts: %q", re.Msg)
	}
	// One attempt at 150ms plus dial/scheduling slack: well under 2s.
	if elapsed > 2*time.Second {
		t.Fatalf("fan-in over a hung peer took %v: the deadline is not cutting it off", elapsed)
	}

	// The same slot is still answerable node-locally.
	var got mg.Summary
	if _, err := c.Pull("pq", &got); err != nil || got.N() != 7 {
		t.Fatalf("local PULL after failed fan-in: n=%d err=%v", got.N(), err)
	}

	// And the failure shows up in the fan-out counters.
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["peer.fanouts"] == 0 || m["peer.errors"] == 0 {
		t.Fatalf("fan-out counters missed the failure: %v", m)
	}
}

// TestClusterDeadPeerPartialResult: a peer whose port is closed fails
// fast (connection refused) and the fan-in reports it the same way.
func TestClusterDeadPeerPartialResult(t *testing.T) {
	// Reserve an address, then close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	s := New()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.SetPeers(addr, []string{addr, deadAddr}, 200*time.Millisecond, 1)
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	defer func() {
		s.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sum := mg.New(16)
	sum.Update(2, 3)
	if _, err := c.Push("dq", "mg", sum); err != nil {
		t.Fatal(err)
	}
	_, _, err = c.PullClusterFrame("dq")
	if err == nil || !strings.Contains(err.Error(), "partial result") {
		t.Fatalf("want partial-result error, got %v", err)
	}

	// The retry was attempted and counted.
	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["peer.retries"] == 0 {
		t.Fatalf("dead peer read was not retried: %v", m)
	}
}

// TestClusterFanInSkipsEmptyPeers: peers that never saw the slot
// contribute nothing instead of failing the fan-in; a slot no peer
// holds is reported with the canonical missing-slot error.
func TestClusterFanInSkipsEmptyPeers(t *testing.T) {
	addrs, _, stop := startPeerCluster(t, 3, 2*time.Second, 1)
	defer stop()

	c0, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	sum := mg.New(16)
	sum.Update(9, 42)
	if _, err := c0.Push("lone", "mg", sum); err != nil {
		t.Fatal(err)
	}

	// Ask a node that does NOT hold the slot: the answer comes from the
	// one peer that does.
	c1, err := Dial(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	var got mg.Summary
	if _, err := c1.PullCluster("lone", &got); err != nil {
		t.Fatal(err)
	}
	if got.N() != 42 {
		t.Fatalf("fan-in over one holding peer: N = %d, want 42", got.N())
	}

	if _, _, err := c1.PullClusterFrame("nowhere"); err == nil || !strings.Contains(err.Error(), `no such slot "nowhere"`) {
		t.Fatalf("cluster-wide missing slot: got %v", err)
	}
}

// TestMetricsCounters: METRICS serves the per-kind push/pull/merge
// counters and they add up against a known little workload.
func TestMetricsCounters(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sum := mg.New(16)
	sum.Update(1, 1)
	if _, err := c.Push("m1", "mg", sum); err != nil {
		t.Fatal(err)
	}
	batch := []encoding.BinaryMarshaler{sum, sum, sum}
	if _, err := c.PushBatch("m1", "mg", batch); err != nil {
		t.Fatal(err)
	}
	var out mg.Summary
	if _, err := c.Pull("m1", &out); err != nil {
		t.Fatal(err)
	}

	m, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if m["kind.push.mg"] != 4 {
		t.Fatalf("kind.push.mg = %d, want 4", m["kind.push.mg"])
	}
	if m["kind.pull.mg"] != 1 {
		t.Fatalf("kind.pull.mg = %d, want 1", m["kind.pull.mg"])
	}
	// First push adopts, the three batched frames merge.
	if m["kind.merge.mg"] != 3 {
		t.Fatalf("kind.merge.mg = %d, want 3", m["kind.merge.mg"])
	}
	// No peers, no windows: those groups are absent entirely.
	if _, ok := m["peer.count"]; ok {
		t.Fatal("peer metrics served outside peer mode")
	}
	if _, ok := m["window.epoch"]; ok {
		t.Fatal("window metrics served outside windowed mode")
	}
}
