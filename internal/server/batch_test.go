package server

import (
	"bufio"
	"encoding"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mg"
)

func TestPushBatchRoundTrip(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	batch := make([]encoding.BinaryMarshaler, 10)
	var want uint64
	for i := range batch {
		s := mg.New(16)
		s.Update(core.Item(i), uint64(i+1))
		s.Update(7, 5)
		want += uint64(i+1) + 5
		batch[i] = s
	}
	n, err := c.PushBatch("flows", "mg", batch)
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("PushBatch returned n=%d, want %d", n, want)
	}

	var got mg.Summary
	if _, err := c.Pull("flows", &got); err != nil {
		t.Fatal(err)
	}
	if got.N() != want {
		t.Fatalf("pulled N=%d, want %d", got.N(), want)
	}

	// The batch counts one push per frame.
	infos, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Pushes != uint64(len(batch)) {
		t.Fatalf("stat = %+v, want 1 slot with %d pushes", infos, len(batch))
	}
}

func TestPushBatchErrors(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	// Unknown kind: the frames must be consumed and the connection must
	// stay usable.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	s := mg.New(4)
	s.Update(1, 1)
	frame, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "PUSHB slot nosuch 2\n%d\n", len(frame))
	conn.Write(frame)
	fmt.Fprintf(conn, "%d\n", len(frame))
	conn.Write(frame)
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "ERR unknown kind") {
		t.Fatalf("got %q, want unknown-kind error", line)
	}
	// Stream still in sync: a valid PUSHB on the same connection works.
	fmt.Fprintf(conn, "PUSHB slot mg 1\n%d\n", len(frame))
	conn.Write(frame)
	if line, err = r.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "OK 1") {
		t.Fatalf("got %q, want OK 1", line)
	}

	// A bad count cannot be recovered from; the server replies ERR and
	// drops the connection.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	r2 := bufio.NewReader(conn2)
	fmt.Fprintf(conn2, "PUSHB slot mg 0\n")
	if line, err = r2.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "ERR bad batch count") {
		t.Fatalf("got %q, want bad-batch-count error", line)
	}
	if _, err := r2.ReadString('\n'); err == nil {
		t.Fatal("connection survived a bad batch count")
	}
}

// TestConcurrentPushStress hammers one slot from many goroutines with
// a mix of PUSH and PUSHB and asserts the merged total equals the sum
// of everything pushed — the slot lock must serialize batch merges
// correctly. Run under -race (the Makefile's check target does).
func TestConcurrentPushStress(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	const (
		workers    = 8
		rounds     = 20
		perBatch   = 5
		itemWeight = 3
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("worker %d: %v", id, err)
				return
			}
			defer c.Close()
			for r := 0; r < rounds; r++ {
				if r%2 == 0 {
					batch := make([]encoding.BinaryMarshaler, perBatch)
					for i := range batch {
						s := mg.New(32)
						s.Update(core.Item(id*1000+i), itemWeight)
						batch[i] = s
					}
					if _, err := c.PushBatch("stress", "mg", batch); err != nil {
						t.Errorf("worker %d round %d: PushBatch: %v", id, r, err)
						return
					}
				} else {
					s := mg.New(32)
					for i := 0; i < perBatch; i++ {
						s.Update(core.Item(id*1000+i), itemWeight)
					}
					if _, err := c.Push("stress", "mg", s); err != nil {
						t.Errorf("worker %d round %d: Push: %v", id, r, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var merged mg.Summary
	if _, err := c.Pull("stress", &merged); err != nil {
		t.Fatal(err)
	}
	want := uint64(workers * rounds * perBatch * itemWeight)
	if merged.N() != want {
		t.Fatalf("merged N=%d, want %d", merged.N(), want)
	}
	infos, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	wantPushes := uint64(workers * (rounds/2*perBatch + (rounds - rounds/2)))
	if len(infos) != 1 || infos[0].Pushes != wantPushes {
		t.Fatalf("stat = %+v, want %d pushes", infos, wantPushes)
	}
}
