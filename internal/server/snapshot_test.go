package server

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mg"
)

// The epoch cache's contract: a PULL issued after a push was
// acknowledged never serves bytes from before that push. First the
// deterministic shape — warm the cache, bump the version, re-pull —
// then the concurrent one under the race detector.
func TestSnapshotCacheCoherence(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	one := mg.New(8)
	one.Update(1, 1)
	if _, err := c.Push("coh", "mg", one); err != nil {
		t.Fatal(err)
	}
	var got mg.Summary
	if _, err := c.Pull("coh", &got); err != nil { // caches epoch 1
		t.Fatal(err)
	}
	if got.N() != 1 {
		t.Fatalf("first pull N=%d, want 1", got.N())
	}
	if _, err := c.Push("coh", "mg", one); err != nil { // version bump
		t.Fatal(err)
	}
	if _, err := c.Pull("coh", &got); err != nil {
		t.Fatal(err)
	}
	if got.N() != 2 {
		t.Fatalf("pull after version bump served stale bytes: N=%d, want 2", got.N())
	}

	// Concurrent pushers that immediately re-pull: the pulled weight
	// must never lag the weight the push reply acknowledged.
	const pushers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < pushers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("pusher %d: %v", id, err)
				return
			}
			defer c.Close()
			s := mg.New(8)
			s.Update(core.Item(id), 1)
			for i := 0; i < rounds; i++ {
				n, err := c.Push("coh2", "mg", s)
				if err != nil {
					t.Errorf("pusher %d: %v", id, err)
					return
				}
				var out mg.Summary
				if _, err := c.Pull("coh2", &out); err != nil {
					t.Errorf("pusher %d pull: %v", id, err)
					return
				}
				if out.N() < n {
					t.Errorf("stale snapshot: pulled N=%d after push acknowledged %d", out.N(), n)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// Chaos on one slot: pushers, pullers and a resetter race. Every PULL
// must either decode cleanly (the cached bytes are never torn) or fail
// with a clean protocol error from the reset window; every other reply
// must parse. Run with -race to check the cache's synchronization.
func TestConcurrentPushPullReset(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	const workers = 4
	const rounds = 150
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("pusher %d: %v", id, err)
				return
			}
			defer c.Close()
			s := mg.New(8)
			s.Update(core.Item(id), 1)
			for i := 0; i < rounds; i++ {
				if _, err := c.Push("chaos", "mg", s); err != nil {
					t.Errorf("pusher %d: %v", id, err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("puller %d: %v", id, err)
				return
			}
			defer c.Close()
			for i := 0; i < rounds; i++ {
				var out mg.Summary
				_, err := c.Pull("chaos", &out)
				if err == nil {
					continue
				}
				msg := err.Error()
				if !strings.Contains(msg, "no such slot") && !strings.Contains(msg, "is empty") {
					t.Errorf("puller %d: non-protocol pull failure: %v", id, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := Dial(addr)
		if err != nil {
			t.Errorf("resetter: %v", err)
			return
		}
		defer c.Close()
		for i := 0; i < rounds/4; i++ {
			if err := c.Reset("chaos"); err != nil {
				t.Errorf("resetter: %v", err)
				return
			}
			if _, err := c.Stat(); err != nil {
				t.Errorf("resetter stat: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
