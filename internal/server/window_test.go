package server

import (
	"encoding"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mg"
	"repro/internal/window"
)

// startWindowedServer returns a running windowed server (manual epoch
// control via AdvanceWindows), its address, and a stop function.
func startWindowedServer(t *testing.T, l window.Ladder, tick time.Duration) (*Server, string, func()) {
	t.Helper()
	s := New()
	s.SetWindow(l, tick)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	return s, addr, func() {
		s.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

func pushMG(t *testing.T, c *Client, slot string, item, weight uint64) {
	t.Helper()
	s := mg.New(16)
	s.Update(core.Item(item), weight)
	if _, err := c.Push(slot, "mg", s); err != nil {
		t.Fatal(err)
	}
}

func TestQueryWindowRoundTrip(t *testing.T) {
	s, addr, stop := startWindowedServer(t, window.Ladder{Fan: 4, Levels: 2}, 0)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Three epochs of pushes: weights 100, 200, 300.
	for e, w := range []uint64{100, 200, 300} {
		pushMG(t, c, "flows", uint64(e+1), w)
		s.AdvanceWindows()
	}
	pushMG(t, c, "flows", 9, 50) // live epoch

	// Full history through the live epoch.
	var got mg.Summary
	kind, err := c.QueryWindow("flows", 0, 0, &got)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "mg" {
		t.Fatalf("kind = %q", kind)
	}
	if got.N() != 650 {
		t.Fatalf("QWIN [0,0] N = %d, want 650", got.N())
	}

	// Sealed sub-range only.
	var mid mg.Summary
	if _, err := c.QueryWindow("flows", 2, 3, &mid); err != nil {
		t.Fatal(err)
	}
	if mid.N() != 500 {
		t.Fatalf("QWIN [2,3] N = %d, want 500", mid.N())
	}

	// The registry-dispatched variant agrees.
	_, v, err := c.QueryWindowAny("flows", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.(*mg.Summary).N() != 500 {
		t.Fatalf("QueryWindowAny N = %d, want 500", v.(*mg.Summary).N())
	}

	// PULL still serves the all-time summary, unchanged by windowing.
	var all mg.Summary
	if _, err := c.Pull("flows", &all); err != nil {
		t.Fatal(err)
	}
	if all.N() != 650 {
		t.Fatalf("PULL N = %d, want 650", all.N())
	}
}

func TestQueryWindowErrors(t *testing.T) {
	s, addr, stop := startWindowedServer(t, window.Ladder{Fan: 4, Levels: 2}, 0)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.QueryWindow("ghost", 0, 0, &mg.Summary{}); err == nil {
		t.Fatal("QWIN on a missing slot succeeded")
	}
	pushMG(t, c, "flows", 1, 10)
	s.AdvanceWindows()
	if _, err := c.QueryWindow("flows", 3, 2, &mg.Summary{}); err == nil {
		t.Fatal("QWIN with an inverted range succeeded")
	}
	// A range past the last sealed epoch that excludes the live epoch
	// has nothing to answer with.
	if _, err := c.QueryWindow("flows", 2, 2, &mg.Summary{}); err == nil {
		t.Fatal("QWIN over an unsealed empty epoch succeeded")
	}
}

func TestQueryWindowDisabled(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pushMG(t, c, "flows", 1, 10)
	if _, err := c.QueryWindow("flows", 0, 0, &mg.Summary{}); err == nil {
		t.Fatal("QWIN succeeded on a non-windowed server")
	}
}

// Windowed mode composes with the ingest front: lane-parked batches
// must be visible to QWIN issued after the push's reply.
func TestQueryWindowWithIngestFront(t *testing.T) {
	s := New()
	s.SetIngestFront(2, time.Hour) // ticker effectively off; flush on demand
	s.SetWindow(window.Ladder{Fan: 4, Levels: 2}, 0)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	defer func() {
		s.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	batch := make([]encoding.BinaryMarshaler, 0, 4)
	for i := 0; i < 4; i++ {
		sm := mg.New(16)
		sm.Update(core.Item(i), 25)
		batch = append(batch, sm)
	}
	if _, err := c.PushBatch("flows", "mg", batch); err != nil {
		t.Fatal(err)
	}
	s.AdvanceWindows() // flushes lanes into the plane, then seals

	var got mg.Summary
	if _, err := c.QueryWindow("flows", 1, 1, &got); err != nil {
		t.Fatal(err)
	}
	if got.N() != 100 {
		t.Fatalf("QWIN [1,1] N = %d, want 100", got.N())
	}
}
