package server

import (
	"bufio"
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/mg"
	"repro/internal/randquant"
)

// startServer returns a running server's address and a stop function.
func startServer(t *testing.T) (string, func()) {
	t.Helper()
	s := New()
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve() }()
	return addr, func() {
		s.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}
}

func TestPushPullRoundTrip(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s := mg.New(16)
	s.Update(7, 100)
	s.Update(9, 50)
	n, err := c.Push("flows", "mg", s)
	if err != nil {
		t.Fatal(err)
	}
	if n != 150 {
		t.Fatalf("push returned n=%d", n)
	}

	var got mg.Summary
	kind, err := c.Pull("flows", &got)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "mg" {
		t.Fatalf("kind = %q", kind)
	}
	if got.N() != 150 || got.Estimate(7).Value != 100 {
		t.Fatalf("pulled summary wrong: n=%d", got.N())
	}
}

// The server's whole point: concurrent workers push shard summaries,
// the pulled slot equals a single-site summary within the bound.
func TestConcurrentWorkers(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	const workers = 8
	const perWorker = 20000
	const k = 64

	var truthMu sync.Mutex
	truth := exact.NewFreqTable()

	var wg sync.WaitGroup
	for wid := 0; wid < workers; wid++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Errorf("worker %d: %v", id, err)
				return
			}
			defer c.Close()
			s := mg.New(k)
			local := exact.NewFreqTable()
			for _, x := range gen.NewZipf(2000, 1.3, uint64(id)+1).Stream(perWorker) {
				s.Update(x, 1)
				local.Add(x, 1)
			}
			truthMu.Lock()
			truth.Merge(local)
			truthMu.Unlock()
			if _, err := c.Push("agg", "mg", s); err != nil {
				t.Errorf("worker %d push: %v", id, err)
			}
		}(wid)
	}
	wg.Wait()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var merged mg.Summary
	if _, err := c.Pull("agg", &merged); err != nil {
		t.Fatal(err)
	}
	n := uint64(workers * perWorker)
	if merged.N() != n {
		t.Fatalf("merged N = %d, want %d", merged.N(), n)
	}
	if merged.ErrorBound() > core.MGBound(n, k) {
		t.Errorf("bound %d > %d", merged.ErrorBound(), core.MGBound(n, k))
	}
	for _, cnt := range truth.Counters()[:10] {
		if e := merged.Estimate(cnt.Item); !e.Contains(cnt.Count) {
			t.Errorf("interval %v misses %d for item %d", e, cnt.Count, cnt.Item)
		}
	}

	stats, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Name != "agg" || stats[0].Pushes != workers || stats[0].N != n {
		t.Fatalf("Stat = %+v", stats)
	}
}

func TestMultipleKindsAndSlots(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q := randquant.NewEpsilon(0.05, 1)
	for _, v := range gen.UniformValues(5000, 2) {
		q.Update(v)
	}
	if _, err := c.Push("lat", "quantile", q); err != nil {
		t.Fatal(err)
	}
	m := mg.New(8)
	m.Update(1, 3)
	if _, err := c.Push("flows", "mg", m); err != nil {
		t.Fatal(err)
	}

	// Kind mismatch on an existing slot must fail and not corrupt.
	if _, err := c.Push("lat", "mg", m); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	var back randquant.Summary
	if _, err := c.Pull("lat", &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 5000 {
		t.Fatalf("lat slot corrupted: n=%d", back.N())
	}

	stats, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("Stat rows = %d", len(stats))
	}

	if err := c.Reset("lat"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pull("lat", &back); err == nil {
		t.Fatal("pull after reset succeeded")
	}
}

func TestProtocolErrors(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	m := mg.New(4)
	m.Update(1, 1)
	if _, err := c.Push("x", "nope", m); err == nil {
		t.Error("unknown kind accepted")
	}
	var out mg.Summary
	if _, err := c.Pull("missing", &out); err == nil {
		t.Error("missing slot pull succeeded")
	}
	// The connection must still be usable after errors.
	if _, err := c.Push("x", "mg", m); err != nil {
		t.Fatalf("connection broken after errors: %v", err)
	}
}

// Raw-socket tests for malformed input: the server must answer ERR and
// survive.
func TestMalformedCommands(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)

	send := func(s string) string {
		if _, err := conn.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimSpace(line)
	}

	if got := send("BOGUS\n"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("BOGUS → %q", got)
	}
	if got := send("PUSH onlyslot\n"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("short PUSH → %q", got)
	}
	// Garbage frame bytes of declared length: decode error, and the
	// connection stays usable (the stream is still in sync).
	if got := send("PUSH s mg\n4\nABCD"); !strings.HasPrefix(got, "ERR") {
		t.Errorf("garbage frame → %q", got)
	}
	if got := send("STAT\n"); got != "OK 0" {
		t.Errorf("STAT after garbage → %q", got)
	}
}

// A frame-length error leaves the stream position unknown, so the
// server must reply ERR and then drop the connection rather than
// misparse the frame bytes that may follow as commands.
func TestFrameLengthErrorsDropConnection(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	for _, tc := range []struct {
		name, payload string
	}{
		{"unparseable length", "PUSH s mg\nnotanumber\n"},
		{"negative length", "PUSH s mg\n-5\n"},
		{"oversized length", fmt.Sprintf("PUSH s mg\n%d\n", maxFrame+1)},
		{"oversized batch frame", fmt.Sprintf("PUSHB s mg 2\n%d\n", maxFrame+1)},
	} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		r := bufio.NewReader(conn)
		if _, err := conn.Write([]byte(tc.payload)); err != nil {
			t.Fatal(err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("%s: no ERR reply before close: %v", tc.name, err)
		}
		if !strings.HasPrefix(line, "ERR") {
			t.Errorf("%s → %q, want ERR", tc.name, strings.TrimSpace(line))
		}
		// The server must close its end: the next read sees EOF, not a
		// misparse of leftover bytes.
		if _, err := r.ReadString('\n'); err == nil {
			t.Errorf("%s: connection stayed open after frame-length error", tc.name)
		}
		conn.Close()
	}
}

// A hostile length header must not cost the server a frame-sized
// allocation: the frame buffer grows only as bytes arrive. This is
// observable from outside by declaring a huge (but legal) length,
// sending nothing, and watching the server survive many such
// connections without trouble; the allocation bound itself is asserted
// by reading the final heap delta.
func TestOversizedHeaderAllocationBound(t *testing.T) {
	addr, stop := startServer(t)
	defer stop()

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	const conns = 8
	for i := 0; i < conns; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		// Declare 16 MiB, deliver 16 bytes, hang up.
		fmt.Fprintf(conn, "PUSH big mg\n%d\n0123456789abcdef", maxFrame)
		conn.Close()
	}
	// Wait for the handlers to notice EOF.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		c, err := Dial(addr)
		if err == nil {
			c.Stat()
			c.Close()
			break
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	grew := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	// Eight aborted 16 MiB declarations with ~16 B delivered each must
	// not have allocated anywhere near 8×16 MiB; allow generous noise.
	if grew > 8<<20 {
		t.Errorf("heap grew %d bytes after %d aborted oversized frames", grew, conns)
	}
}
