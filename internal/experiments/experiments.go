// Package experiments is the reproduction harness: every experiment
// from EXPERIMENTS.md is registered here as a callable that generates
// its tables. The target paper (PODS'12) has no empirical evaluation —
// it is a theory paper — so the "tables and figures" reproduced here
// are its theorems turned into measurements (error vs. proven bound,
// size vs. proven bound, across merge topologies), plus the worked
// numeric examples of the supplied follow-up text (experiment E04).
//
// The same registry backs the cmd/experiments binary and the
// bench_test.go benchmarks, so `go test -bench=.` regenerates every
// experiment.
package experiments

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Config scales an experiment run.
type Config struct {
	// N is the base stream length. The default (0) means 200000;
	// experiments derive their workload sizes from it.
	N int
	// Seed makes the whole run reproducible.
	Seed uint64
	// Quick trims sweeps for use inside benchmarks and smoke tests.
	Quick bool
}

func (c Config) n() int {
	if c.N <= 0 {
		return 200000
	}
	return c.N
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	// Notes carries claim-vs-observed commentary for EXPERIMENTS.md.
	Notes []string
}

// Experiment is a registered reproduction experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) Result
}

var registry []Experiment

func register(id, title string, run func(cfg Config) Result) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every registered experiment in ID order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all registered experiment IDs in order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	return out
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return float64(a)
	}
	return float64(a) / float64(b)
}

func fmtBool(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

var _ = fmt.Sprintf // fmt is used by several experiment files
