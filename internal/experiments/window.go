package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/mg"
	"repro/internal/stats"
	"repro/internal/window"
)

func init() {
	register("E17", "Sliding-window heavy hitters from tumbling-epoch merges (mergeability extension)", runE17)
}

func runE17(cfg Config) Result {
	epochs := 12
	retain := 6
	perEpoch := cfg.n() / epochs
	k := 64
	lasts := []int{1, 3, 6}
	if cfg.Quick {
		lasts = []int{3}
	}
	tb := stats.NewTable(
		fmt.Sprintf("E17: window query over last L of %d epochs (%d items each), k=%d", epochs, perEpoch, k),
		"L", "windowN", "maxUnder", "bound n/(k+1)", "ratio", "violations")

	w := window.New(retain, func(uint64) *mg.Summary { return mg.New(k) })
	streams := make([][]core.Item, 0, epochs)
	for e := 0; e < epochs; e++ {
		if e > 0 {
			w.Advance()
		}
		// The item distribution drifts across epochs: heavy items of
		// epoch e are light in epoch e+3, so windows genuinely differ.
		stream := gen.NewZipf(perEpoch/10, 1.4, cfg.Seed+uint64(e%3)*7+uint64(e)).Stream(perEpoch)
		streams = append(streams, stream)
		cur := w.Current()
		for _, x := range stream {
			cur.Update(x, 1)
		}
	}
	for _, last := range lasts {
		q, err := w.Query(last,
			func(s *mg.Summary) *mg.Summary { return s.Clone() },
			(*mg.Summary).Merge)
		if err != nil {
			panic(err)
		}
		truth := exact.NewFreqTable()
		for _, s := range streams[epochs-last:] {
			for _, x := range s {
				truth.Add(x, 1)
			}
		}
		fe := stats.MeasureFreq(truth, q.Estimate)
		bound := core.MGBound(q.N(), k)
		tb.AddRow(last, q.N(), fe.MaxUnder, bound, ratio(fe.MaxUnder, bound), fe.Violations)
	}
	return Result{
		ID: "E17", Title: "Sliding windows via merging", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim: a window query assembled by merging the window's epoch summaries satisfies the single-summary bound over exactly the window's stream (violations = 0, ratio <= 1) — sliding windows are a corollary of mergeability.",
		},
	}
}
