package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/countmin"
	"repro/internal/countsketch"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/gk"
	"repro/internal/mergetree"
	"repro/internal/mg"
	"repro/internal/randquant"
	"repro/internal/sampling"
	"repro/internal/spacesaving"
	"repro/internal/stats"
)

func init() {
	register("E12", "Mergeable bottom-k sampling: accuracy vs. the n/sqrt(k) law (PODS'12 §3.3 primitive)", runE12)
	register("E13", "Linear-sketch baselines: Count-Min / Count-Sketch vs. MG at equal space", runE13)
	register("E14", "Throughput: updates/s and merges/s for every summary", runE14)
}

func runE12(cfg Config) Result {
	n := cfg.n()
	ks := []int{256, 1024, 4096}
	sites := 16
	if cfg.Quick {
		ks = []int{1024}
	}
	vals := gen.NormalValues(n, cfg.Seed+4)
	oracle := exact.QuantilesOf(vals)
	tb := stats.NewTable(
		fmt.Sprintf("E12: bottom-k sample rank error, n=%d, %d sites, binary tree", n, sites),
		"k", "mode", "maxRelErr", "1/sqrt(k) law", "err*sqrt(k)")
	for _, k := range ks {
		stream := sampling.NewBottomK(k, cfg.Seed+5)
		for _, v := range vals {
			stream.Update(v)
		}
		qe := stats.MeasureQuantiles(oracle, stream, stats.DefaultPhis)
		tb.AddRow(k, "stream", qe.MaxRel, 1/math.Sqrt(float64(k)), qe.MaxRel*math.Sqrt(float64(k)))

		parts := gen.PartitionRandomSizes(vals, sites, cfg.Seed+6)
		seed := cfg.Seed + 50
		merged, err := mergetree.BuildAndMerge(parts,
			func(part []float64) *sampling.BottomK {
				seed++
				s := sampling.NewBottomK(k, seed)
				for _, v := range part {
					s.Update(v)
				}
				return s
			},
			mergetree.Binary[*sampling.BottomK], (*sampling.BottomK).Merge)
		if err != nil {
			panic(err)
		}
		qe = stats.MeasureQuantiles(oracle, merged, stats.DefaultPhis)
		tb.AddRow(k, "merged", qe.MaxRel, 1/math.Sqrt(float64(k)), qe.MaxRel*math.Sqrt(float64(k)))
	}
	return Result{
		ID: "E12", Title: "Bottom-k sampling", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim: rank error scales as 1/sqrt(k) (err*sqrt(k) roughly constant) and merging costs nothing (merged ≈ stream rows).",
		},
	}
}

func runE13(cfg Config) Result {
	n := cfg.n()
	alphas := []float64{1.1, 1.5}
	if cfg.Quick {
		alphas = []float64{1.3}
	}
	// Equal space: MG with k counters stores ~2k words; CM/CS with
	// width w and depth d store w*d words. Compare at w*d == 2k.
	k := 256
	depth := 4
	width := 2 * k / depth
	tb := stats.NewTable(
		fmt.Sprintf("E13: frequency error at equal space (~%d words), n=%d, zipf", 2*k, n),
		"alpha", "summary", "maxAbsErr", "meanAbsErr(top100)", "violations")
	for _, alpha := range alphas {
		z := gen.NewZipf(n/20, alpha, cfg.Seed+uint64(alpha*100))
		stream := z.Stream(n)
		truth := exact.FreqOf(stream)
		top := truth.Counters()
		if len(top) > 100 {
			top = top[:100]
		}
		mgS := mg.New(k)
		ssS := spacesaving.New(k)
		cmS := countmin.New(width, depth, cfg.Seed)
		cmC := countmin.New(width, depth, cfg.Seed)
		cmC.SetConservative(true)
		csS := countsketch.New(width, depth, cfg.Seed)
		for _, x := range stream {
			mgS.Update(x, 1)
			ssS.Update(x, 1)
			cmS.Update(x, 1)
			cmC.Update(x, 1)
			csS.Update(x, 1)
		}
		for name, est := range map[string]func(core.Item) core.Estimate{
			"mg":               mgS.Estimate,
			"spacesaving":      ssS.Estimate,
			"countmin":         cmS.Estimate,
			"countmin-conserv": cmC.Estimate,
			"countsketch":      csS.Estimate,
		} {
			var worst, sum uint64
			violations := 0
			for _, c := range top {
				e := est(c.Item)
				var d uint64
				if e.Value >= c.Count {
					d = e.Value - c.Count
				} else {
					d = c.Count - e.Value
				}
				sum += d
				if d > worst {
					worst = d
				}
				if !e.Contains(c.Count) {
					violations++
				}
			}
			tb.AddRow(alpha, name, worst, float64(sum)/float64(len(top)), violations)
		}
	}
	return Result{
		ID: "E13", Title: "Linear-sketch baselines", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim: at equal space the counter summaries (mg/ss) dominate Count-Min on skewed streams for heavy items; Count-Sketch sits between; all intervals remain sound (violations = 0).",
		},
	}
}

func runE14(cfg Config) Result {
	n := cfg.n()
	if cfg.Quick {
		n = cfg.n() / 4
	}
	stream := gen.NewZipf(n/20, 1.2, cfg.Seed+8).Stream(n)
	vals := gen.UniformValues(n, cfg.Seed+9)

	tb := stats.NewTable(
		fmt.Sprintf("E14: single-thread throughput, n=%d (also available as go test -bench)", n),
		"summary", "updates/s (millions)", "merges/s")

	timeUpdates := func(update func()) float64 {
		start := time.Now()
		update()
		el := time.Since(start).Seconds()
		return float64(n) / el / 1e6
	}

	type mergeable struct {
		name    string
		updates func()
		merges  func() float64 // merges per second
	}

	mkMG := func() *mg.Summary {
		s := mg.New(256)
		for _, x := range stream {
			s.Update(x, 1)
		}
		return s
	}
	mkSS := func() *spacesaving.Summary {
		s := spacesaving.New(256)
		for _, x := range stream {
			s.Update(x, 1)
		}
		return s
	}
	mkRQ := func() *randquant.Summary {
		s := randquant.NewEpsilon(0.01, cfg.Seed)
		for _, v := range vals {
			s.Update(v)
		}
		return s
	}
	mkGK := func() *gk.Summary {
		s := gk.New(0.01)
		for _, v := range vals {
			s.Update(v)
		}
		return s
	}

	rows := []mergeable{
		{
			name:    "mg(k=256)",
			updates: func() { mkMG() },
			merges: func() float64 {
				a, b := mkMG(), mkMG()
				const reps = 200
				start := time.Now()
				for i := 0; i < reps; i++ {
					c := a.Clone()
					if err := c.Merge(b); err != nil {
						panic(err)
					}
				}
				return reps / time.Since(start).Seconds()
			},
		},
		{
			name:    "spacesaving(k=256)",
			updates: func() { mkSS() },
			merges: func() float64 {
				a, b := mkSS(), mkSS()
				const reps = 200
				start := time.Now()
				for i := 0; i < reps; i++ {
					c := a.Clone()
					if err := c.MergeLowError(b); err != nil {
						panic(err)
					}
				}
				return reps / time.Since(start).Seconds()
			},
		},
		{
			name:    "gk(eps=0.01)",
			updates: func() { mkGK() },
			merges: func() float64 {
				a, b := mkGK(), mkGK()
				const reps = 50
				start := time.Now()
				for i := 0; i < reps; i++ {
					c := a.Clone()
					if err := c.Merge(b); err != nil {
						panic(err)
					}
				}
				return reps / time.Since(start).Seconds()
			},
		},
		{
			name:    "randquant(eps=0.01)",
			updates: func() { mkRQ() },
			merges: func() float64 {
				a, b := mkRQ(), mkRQ()
				const reps = 50
				start := time.Now()
				for i := 0; i < reps; i++ {
					c := a.Clone()
					if err := c.Merge(b); err != nil {
						panic(err)
					}
				}
				return reps / time.Since(start).Seconds()
			},
		},
		{
			name: "countmin(512x4)",
			updates: func() {
				s := countmin.New(512, 4, cfg.Seed)
				for _, x := range stream {
					s.Update(x, 1)
				}
			},
			merges: func() float64 {
				a := countmin.New(512, 4, cfg.Seed)
				b := countmin.New(512, 4, cfg.Seed)
				const reps = 2000
				start := time.Now()
				for i := 0; i < reps; i++ {
					if err := a.Merge(b); err != nil {
						panic(err)
					}
				}
				return reps / time.Since(start).Seconds()
			},
		},
		{
			name: "bottomk(k=4096)",
			updates: func() {
				s := sampling.NewBottomK(4096, cfg.Seed)
				for _, v := range vals {
					s.Update(v)
				}
			},
			merges: func() float64 {
				mk := func(seed uint64) *sampling.BottomK {
					s := sampling.NewBottomK(4096, seed)
					for _, v := range vals[:n/4] {
						s.Update(v)
					}
					return s
				}
				a, b := mk(1), mk(2)
				const reps = 500
				start := time.Now()
				for i := 0; i < reps; i++ {
					c := a.Clone()
					if err := c.Merge(b); err != nil {
						panic(err)
					}
				}
				return reps / time.Since(start).Seconds()
			},
		},
	}
	for _, r := range rows {
		tb.AddRow(r.name, timeUpdates(r.updates), r.merges())
	}
	return Result{
		ID: "E14", Title: "Throughput", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim: all summaries sustain millions of updates/s single-threaded; merges are microsecond-scale (O(k) or O(size) work).",
		},
	}
}
