package experiments

import (
	"fmt"
	"math"

	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/gk"
	"repro/internal/mergetree"
	"repro/internal/randquant"
	"repro/internal/stats"
)

func init() {
	register("E05", "GK summary: size and error vs. the O((1/ε)log(εn)) bound (PODS'12 §3.1)", runE05)
	register("E06", "GK under repeated merging: size drift motivates the randomized summary (PODS'12 §3.1→3.2)", runE06)
	register("E07", "Randomized equal-weight merge: unbiased, error within εn (PODS'12 §3.2)", runE07)
	register("E08", "Randomized mergeable quantiles: arbitrary partitions and topologies (PODS'12 Thm 3.4)", runE08)
	register("E09", "Hybrid summary: size independent of n at equal error (PODS'12 §3.3-3.4)", runE09)
}

func runE05(cfg Config) Result {
	n := cfg.n()
	epss := []float64{0.1, 0.01, 0.001}
	if cfg.Quick {
		epss = []float64{0.01}
	}
	tb := stats.NewTable(
		fmt.Sprintf("E05: GK single-stream size and error, n=%d", n),
		"eps", "dist", "size", "(1/eps)log2(eps*n)", "maxRelErr", "err/eps")
	for _, eps := range epss {
		for _, dist := range []string{"uniform", "sorted"} {
			var vals []float64
			if dist == "uniform" {
				vals = gen.UniformValues(n, cfg.Seed+1)
			} else {
				vals = gen.SortedValues(n)
			}
			s := gk.New(eps)
			s.UpdateBatch(vals)
			s.Flush()
			oracle := exact.QuantilesOf(vals)
			qe := stats.MeasureQuantiles(oracle, s, stats.DefaultPhis)
			theory := math.Ceil(1 / eps * math.Max(1, math.Log2(eps*float64(n))))
			tb.AddRow(eps, dist, s.Size(), theory, qe.MaxRel, qe.MaxRel/eps)
		}
	}
	return Result{
		ID: "E05", Title: "GK size and error", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim: size tracks O((1/eps)·log(eps·n)) and realized rank error stays below eps (err/eps < 1).",
		},
	}
}

func runE06(cfg Config) Result {
	n := cfg.n()
	eps := 0.01
	siteCounts := []int{1, 4, 16, 64}
	if cfg.Quick {
		siteCounts = []int{1, 8}
	}
	vals := gen.UniformValues(n, cfg.Seed+3)
	oracle := exact.QuantilesOf(vals)
	tb := stats.NewTable(
		fmt.Sprintf("E06: GK vs randomized summary under binary-tree merging, n=%d, eps=%v", n, eps),
		"sites", "summary", "size", "maxRelErr", "err/eps")
	for _, sites := range siteCounts {
		parts := gen.PartitionContiguous(vals, sites)
		gkM, err := mergetree.BuildAndMerge(parts,
			func(part []float64) *gk.Summary {
				s := gk.New(eps)
				s.UpdateBatch(part)
				return s
			},
			mergetree.Binary[*gk.Summary], (*gk.Summary).Merge)
		if err != nil {
			panic(err)
		}
		gkM.Flush()
		qe := stats.MeasureQuantiles(oracle, gkM, stats.DefaultPhis)
		tb.AddRow(sites, "gk", gkM.Size(), qe.MaxRel, qe.MaxRel/eps)

		seed := cfg.Seed
		rqM, err := mergetree.BuildAndMerge(parts,
			func(part []float64) *randquant.Summary {
				seed++
				s := randquant.NewEpsilon(eps, seed)
				s.UpdateBatch(part)
				return s
			},
			mergetree.Binary[*randquant.Summary], (*randquant.Summary).Merge)
		if err != nil {
			panic(err)
		}
		qe = stats.MeasureQuantiles(oracle, rqM, stats.DefaultPhis)
		tb.AddRow(sites, "randquant", rqM.Size(), qe.MaxRel, qe.MaxRel/eps)
	}
	return Result{
		ID: "E06", Title: "GK merge degradation", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim: GK's error parameter survives merging but its compressed size drifts upward with the number of merges (GK is only one-way mergeable); the randomized summary's size is flat.",
		},
	}
}

func runE07(cfg Config) Result {
	n := cfg.n()
	eps := 0.02
	js := []int{1, 2, 4, 6, 8} // 2^j equal partitions
	trials := 9
	if cfg.Quick {
		js = []int{3}
		trials = 3
	}
	vals := gen.NormalValues(n, cfg.Seed+5)
	oracle := exact.QuantilesOf(vals)
	tb := stats.NewTable(
		fmt.Sprintf("E07: equal-weight binary merge tree of 2^j sites, n=%d, eps=%v, %d trials", n, eps, trials),
		"2^j sites", "maxRelErr(max over trials)", "meanRelErr", "meanSignedErr@0.5", "err/eps")
	for _, j := range js {
		sites := 1 << j
		parts := gen.PartitionContiguous(vals, sites)
		var worst, meanSum, signedSum float64
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + uint64(trial)*1000
			m, err := mergetree.BuildAndMerge(parts,
				func(part []float64) *randquant.Summary {
					seed++
					s := randquant.NewEpsilon(eps, seed)
					s.UpdateBatch(part)
					return s
				},
				mergetree.Binary[*randquant.Summary], (*randquant.Summary).Merge)
			if err != nil {
				panic(err)
			}
			qe := stats.MeasureQuantiles(oracle, m, stats.DefaultPhis)
			if qe.MaxRel > worst {
				worst = qe.MaxRel
			}
			meanSum += qe.MeanRel
			// Signed rank error of the median: unbiasedness check.
			got := m.Quantile(0.5)
			signedSum += (float64(oracle.Rank(got)) - 0.5*float64(n)) / float64(n)
		}
		tb.AddRow(sites, worst, meanSum/float64(trials), signedSum/float64(trials), worst/eps)
	}
	return Result{
		ID: "E07", Title: "Equal-weight merges", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim (Lemma 3.1 shape): the randomized merge is unbiased (signed error centered on 0) and the max rank error stays below eps*n regardless of tree depth j.",
		},
	}
}

func runE08(cfg Config) Result {
	n := cfg.n()
	epss := []float64{0.05, 0.02, 0.01}
	sites := 16
	if cfg.Quick {
		epss = []float64{0.02}
	}
	vals := gen.UniformValues(n, cfg.Seed+9)
	oracle := exact.QuantilesOf(vals)
	tb := stats.NewTable(
		fmt.Sprintf("E08: randomized mergeable quantiles, random-size partitions, n=%d, %d sites", n, sites),
		"eps", "topology", "size", "maxRelErr", "err/eps")
	for _, eps := range epss {
		parts := gen.PartitionRandomSizes(vals, sites, cfg.Seed+2)
		for _, fname := range foldOrder {
			seed := cfg.Seed + 31
			fold := folds[*randquant.Summary](cfg.Seed + 41)[fname]
			m, err := mergetree.BuildAndMerge(parts,
				func(part []float64) *randquant.Summary {
					seed++
					s := randquant.NewEpsilon(eps, seed)
					s.UpdateBatch(part)
					return s
				},
				fold, (*randquant.Summary).Merge)
			if err != nil {
				panic(err)
			}
			qe := stats.MeasureQuantiles(oracle, m, stats.DefaultPhis)
			tb.AddRow(eps, fname, m.Size(), qe.MaxRel, qe.MaxRel/eps)
		}
	}
	return Result{
		ID: "E08", Title: "Fully mergeable quantiles", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim (Thm 3.4): for every topology and unequal partition sizes the rank error stays below eps*n (err/eps < 1) with size O((1/eps)·sqrt(log(1/eps))·log(n)).",
		},
	}
}

func runE09(cfg Config) Result {
	eps := 0.02
	ns := []int{1 << 14, 1 << 17, 1 << 20}
	if cfg.Quick {
		ns = []int{1 << 14, 1 << 16}
	}
	tb := stats.NewTable(
		fmt.Sprintf("E09: plain vs hybrid summary size as n grows, eps=%v", eps),
		"n", "summary", "size", "levels-ish", "maxRelErr", "err/eps")
	for _, n := range ns {
		vals := gen.UniformValues(n, cfg.Seed+uint64(n))
		oracle := exact.QuantilesOf(vals)

		plain := randquant.NewEpsilon(eps, cfg.Seed+1)
		plain.UpdateBatch(vals)
		qe := stats.MeasureQuantiles(oracle, plain, stats.DefaultPhis)
		tb.AddRow(n, "plain", plain.Size(), plain.Levels(), qe.MaxRel, qe.MaxRel/eps)

		hybrid := randquant.NewHybridEpsilon(eps, cfg.Seed+2)
		hybrid.UpdateBatch(vals)
		qe = stats.MeasureQuantiles(oracle, hybrid, stats.DefaultPhis)
		tb.AddRow(n, "hybrid", hybrid.Size(), hybrid.SampleLevel(), qe.MaxRel, qe.MaxRel/eps)
	}
	return Result{
		ID: "E09", Title: "Hybrid size independence", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim (§3.3-3.4): the plain summary's size grows with log(n) (levels column) while the hybrid's stays flat (its sampling level absorbs growth), at comparable realized error.",
		},
	}
}
