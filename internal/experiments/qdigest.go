package experiments

import (
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/qdigest"
	"repro/internal/randquant"
	"repro/internal/stats"
)

func init() {
	register("E18", "q-digest (fixed universe, deterministic) vs the randomized summary (§3 comparison)", runE18)
}

func runE18(cfg Config) Result {
	n := cfg.n()
	const logU = 16
	epss := []float64{0.05, 0.01}
	sites := 16
	if cfg.Quick {
		epss = []float64{0.02}
	}
	tb := stats.NewTable(
		fmt.Sprintf("E18: quantiles over a fixed universe 2^%d, n=%d, %d-site binary tree", logU, n, sites),
		"eps", "summary", "size", "maxRankErr/n", "err/eps", "deterministic")
	for _, eps := range epss {
		z := gen.NewZipf(1<<logU, 1.1, cfg.Seed+uint64(eps*1000))
		stream := make([]uint64, n)
		for i := range stream {
			stream[i] = uint64(z.Sample())
		}
		sorted := append([]uint64(nil), stream...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		exactRank := func(v uint64) uint64 {
			return uint64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > v }))
		}
		queryPoints := []uint64{1 << 4, 1 << 8, 1 << 10, 1 << 12, 1 << 14, 1<<16 - 1}

		parts := gen.PartitionRandomSizes(stream, sites, cfg.Seed+3)

		// q-digest merge tree.
		qs := make([]*qdigest.Digest, len(parts))
		for i, p := range parts {
			qs[i] = qdigest.NewEpsilon(logU, eps)
			for _, v := range p {
				qs[i].Update(v, 1)
			}
		}
		for len(qs) > 1 {
			var next []*qdigest.Digest
			for i := 0; i+1 < len(qs); i += 2 {
				if err := qs[i].Merge(qs[i+1]); err != nil {
					panic(err)
				}
				next = append(next, qs[i])
			}
			if len(qs)%2 == 1 {
				next = append(next, qs[len(qs)-1])
			}
			qs = next
		}
		qd := qs[0]
		var worstQ float64
		for _, v := range queryPoints {
			got, want := qd.Rank(v), exactRank(v)
			var diff uint64
			if want > got {
				diff = want - got
			} else {
				diff = got - want
			}
			if rel := float64(diff) / float64(n); rel > worstQ {
				worstQ = rel
			}
		}
		tb.AddRow(eps, "qdigest", qd.Size(), worstQ, worstQ/eps, "yes")

		// randomized summary merge tree over the same data (as floats).
		rs := make([]*randquant.Summary, len(parts))
		seed := cfg.Seed + 77
		for i, p := range parts {
			seed++
			rs[i] = randquant.NewEpsilon(eps, seed)
			for _, v := range p {
				rs[i].Update(float64(v))
			}
		}
		for len(rs) > 1 {
			var next []*randquant.Summary
			for i := 0; i+1 < len(rs); i += 2 {
				if err := rs[i].Merge(rs[i+1]); err != nil {
					panic(err)
				}
				next = append(next, rs[i])
			}
			if len(rs)%2 == 1 {
				next = append(next, rs[len(rs)-1])
			}
			rs = next
		}
		rq := rs[0]
		var worstR float64
		for _, v := range queryPoints {
			got, want := rq.Rank(float64(v)), exactRank(v)
			var diff uint64
			if want > got {
				diff = want - got
			} else {
				diff = got - want
			}
			if rel := float64(diff) / float64(n); rel > worstR {
				worstR = rel
			}
		}
		tb.AddRow(eps, "randquant", rq.Size(), worstR, worstR/eps, "no (w.h.p.)")
	}
	return Result{
		ID: "E18", Title: "q-digest vs randomized quantiles", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim (§3 framing): the prior mergeable quantile summary (q-digest) is deterministic but needs a fixed universe and a log(u) space factor; the paper's randomized summary is comparison-based and smaller at the same eps. Both must stay within eps after the merge tree (err/eps < 1).",
		},
	}
}
