package experiments

import (
	"fmt"
	"math"

	"repro/internal/epsapprox"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/kernel"
	"repro/internal/mergetree"
	"repro/internal/stats"
)

func init() {
	register("E10", "ε-approximation for 2-D rectangle counting under merges (PODS'12 §4)", runE10)
	register("E11", "Mergeable ε-kernel: directional width under merges (PODS'12 §5)", runE11)
}

var unitBox = exact.Rect{X0: 0, Y0: 0, X1: 1, Y1: 1}

// rectGrid is the query workload for E10.
func rectGrid() []exact.Rect {
	var rs []exact.Rect
	for _, x0 := range []float64{0, 0.15, 0.4, 0.7} {
		for _, y0 := range []float64{0, 0.25, 0.55} {
			for _, w := range []float64{0.08, 0.3, 0.6} {
				rs = append(rs, exact.Rect{X0: x0, Y0: y0, X1: x0 + w, Y1: y0 + 0.7*w})
			}
		}
	}
	return rs
}

func runE10(cfg Config) Result {
	n := cfg.n() / 2
	blockSizes := []int{64, 256, 1024}
	sites := 8
	if cfg.Quick {
		blockSizes = []int{256}
	}
	tb := stats.NewTable(
		fmt.Sprintf("E10: rectangle-count discrepancy, n=%d points, %d sites, binary tree", n, sites),
		"dist", "blockSize s", "summarySize", "maxErr stream", "maxErr merged", "maxErr/n")
	for _, dist := range []string{"uniform", "clustered"} {
		var pts []gen.Point
		if dist == "uniform" {
			pts = gen.UniformPoints(n, cfg.Seed+1)
		} else {
			pts = gen.ClusteredPoints(n, 6, 0.04, cfg.Seed+2)
		}
		queries := rectGrid()
		worstOf := func(s *epsapprox.Summary) uint64 {
			var worst uint64
			for _, r := range queries {
				truth := exact.RangeCount(pts, r)
				got := s.RangeCount(r)
				d := got - truth
				if truth > got {
					d = truth - got
				}
				if d > worst {
					worst = d
				}
			}
			return worst
		}
		for _, bs := range blockSizes {
			stream := epsapprox.New(bs, unitBox, cfg.Seed+7)
			for _, p := range pts {
				stream.Update(p)
			}
			parts := gen.PartitionRandomSizes(pts, sites, cfg.Seed+3)
			seed := cfg.Seed + 100
			merged, err := mergetree.BuildAndMerge(parts,
				func(part []gen.Point) *epsapprox.Summary {
					seed++
					s := epsapprox.New(bs, unitBox, seed)
					for _, p := range part {
						s.Update(p)
					}
					return s
				},
				mergetree.Binary[*epsapprox.Summary], (*epsapprox.Summary).Merge)
			if err != nil {
				panic(err)
			}
			tb.AddRow(dist, bs, merged.Size(), worstOf(stream), worstOf(merged),
				float64(worstOf(merged))/float64(n))
		}
	}
	return Result{
		ID: "E10", Title: "2-D ε-approximation", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim (§4 shape): rectangle-count error decreases as the block size grows and merging does not blow it up (merged ≈ stream column).",
		},
	}
}

func runE11(cfg Config) Result {
	n := cfg.n() / 4
	ms := []int{8, 32, 128, 512}
	sites := 8
	if cfg.Quick {
		ms = []int{32}
	}
	tb := stats.NewTable(
		fmt.Sprintf("E11: directional-width error of the kernel, n=%d points, %d sites", n, sites),
		"dist", "m dirs", "kernelPts", "maxRelErr", "predicted 2*pi/m*aspect", "mergeLossless")
	for _, dist := range []string{"ring", "gaussian"} {
		var pts []gen.Point
		aspect := 1.0
		if dist == "ring" {
			pts = gen.RingPoints(n, 1, 0.02, cfg.Seed+1)
		} else {
			pts = gen.GaussianPoints(n, 3, 1, 0.4, cfg.Seed+2)
			aspect = 3
		}
		for _, m := range ms {
			whole := kernel.New(m)
			for _, p := range pts {
				whole.Update(p)
			}
			parts := gen.PartitionRandomSizes(pts, sites, cfg.Seed+3)
			merged, err := mergetree.BuildAndMerge(parts,
				func(part []gen.Point) *kernel.Kernel {
					k := kernel.New(m)
					for _, p := range part {
						k.Update(p)
					}
					return k
				},
				mergetree.Binary[*kernel.Kernel], (*kernel.Kernel).Merge)
			if err != nil {
				panic(err)
			}
			var worst float64
			lossless := true
			for i := 0; i < 90; i++ {
				theta := math.Pi * float64(i) / 90
				truth := exact.DirectionalWidth(pts, theta)
				got := merged.Width(theta)
				if truth > 0 {
					rel := (truth - got) / truth
					if rel > worst {
						worst = rel
					}
				}
				if math.Abs(got-whole.Width(theta)) > 1e-9 {
					lossless = false
				}
			}
			tb.AddRow(dist, m, len(merged.Points()), worst,
				2*math.Pi/float64(m)*aspect, fmtBool(lossless))
		}
	}
	return Result{
		ID: "E11", Title: "ε-kernel width", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim (§5): merging kernels over a fixed direction grid is lossless (merged width == whole-set kernel width for every direction), so the only error is the grid discretization ~1/m.",
		},
	}
}
