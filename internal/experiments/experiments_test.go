package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config { return Config{N: 40000, Seed: 1, Quick: true} }

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{"E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08", "E09", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19"}
	if len(ids) != len(want) {
		t.Fatalf("registered %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("registered %v, want %v", ids, want)
		}
	}
	if _, ok := ByID("E04"); !ok {
		t.Fatal("ByID(E04) missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID(E99) should not exist")
	}
}

// Every experiment must run at quick scale and produce non-empty,
// renderable tables.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res := e.Run(quickCfg())
			if res.ID != e.ID {
				t.Errorf("result ID %q != %q", res.ID, e.ID)
			}
			if len(res.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range res.Tables {
				if tb.Rows() == 0 {
					t.Errorf("table %q has no rows", tb.Title)
				}
				if out := tb.String(); len(out) == 0 {
					t.Error("empty render")
				}
			}
			if len(res.Notes) == 0 {
				t.Error("no claim notes")
			}
		})
	}
}

// E01's key property: ratio column (realized error / bound) <= 1 and
// violations == 0 on every row.
func TestE01BoundHolds(t *testing.T) {
	e, _ := ByID("E01")
	res := e.Run(quickCfg())
	tb := res.Tables[0]
	for r := 0; r < tb.Rows(); r++ {
		ratio, err := strconv.ParseFloat(tb.Cell(r, 5), 64)
		if err != nil {
			t.Fatalf("row %d ratio: %v", r, err)
		}
		if ratio > 1 {
			t.Errorf("row %d: error/bound ratio %v > 1", r, ratio)
		}
		if tb.Cell(r, 7) != "0" {
			t.Errorf("row %d: violations = %s", r, tb.Cell(r, 7))
		}
	}
}

// E02: isomorphism must hold and intervals must be sound.
func TestE02Isomorphism(t *testing.T) {
	e, _ := ByID("E02")
	res := e.Run(quickCfg())
	tb := res.Tables[0]
	for r := 0; r < tb.Rows(); r++ {
		if tb.Cell(r, 6) != "yes" {
			t.Errorf("row %d: isomorphism broken", r)
		}
		if tb.Cell(r, 5) != "0" {
			t.Errorf("row %d: violations = %s", r, tb.Cell(r, 5))
		}
	}
}

// E03: recall must be 1.0 on every row (completeness of merging).
func TestE03PerfectRecall(t *testing.T) {
	e, _ := ByID("E03")
	res := e.Run(quickCfg())
	tb := res.Tables[0]
	for r := 0; r < tb.Rows(); r++ {
		if got := tb.Cell(r, 4); got != "1" {
			t.Errorf("row %d: recall = %s, want 1", r, got)
		}
	}
}

// E04: the golden table must reproduce the supplied text's numbers
// exactly, and the sweep ratio must never exceed 1.
func TestE04GoldenAndRatio(t *testing.T) {
	e, _ := ByID("E04")
	res := e.Run(quickCfg())
	golden := res.Tables[0]
	for r := 0; r < golden.Rows(); r++ {
		if golden.Cell(r, 2) != golden.Cell(r, 3) {
			t.Errorf("golden row %d: measured %s != paper %s", r, golden.Cell(r, 2), golden.Cell(r, 3))
		}
	}
	sweep := res.Tables[1]
	for r := 0; r < sweep.Rows(); r++ {
		ratio, err := strconv.ParseFloat(sweep.Cell(r, 5), 64)
		if err != nil {
			t.Fatalf("row %d: %v", r, err)
		}
		if ratio > 1+1e-9 {
			t.Errorf("sweep row %d: low/pods ratio %v > 1", r, ratio)
		}
	}
}

// E05/E08: realized error over eps must stay below 1.
func TestQuantileErrWithinEps(t *testing.T) {
	for _, id := range []string{"E05", "E08"} {
		e, _ := ByID(id)
		res := e.Run(quickCfg())
		tb := res.Tables[0]
		last := len(tb.Columns) - 1
		for r := 0; r < tb.Rows(); r++ {
			v, err := strconv.ParseFloat(tb.Cell(r, last), 64)
			if err != nil {
				t.Fatalf("%s row %d: %v", id, r, err)
			}
			if v > 1 {
				t.Errorf("%s row %d: err/eps = %v > 1", id, r, v)
			}
		}
	}
}

// E11: kernel merging must be lossless on every row.
func TestE11Lossless(t *testing.T) {
	e, _ := ByID("E11")
	res := e.Run(quickCfg())
	tb := res.Tables[0]
	last := len(tb.Columns) - 1
	for r := 0; r < tb.Rows(); r++ {
		if tb.Cell(r, last) != "yes" {
			t.Errorf("row %d: kernel merge not lossless", r)
		}
	}
}

// E15: distinct-count merging must be lossless on every row.
func TestE15Lossless(t *testing.T) {
	e, _ := ByID("E15")
	res := e.Run(quickCfg())
	tb := res.Tables[0]
	last := len(tb.Columns) - 1
	for r := 0; r < tb.Rows(); r++ {
		if tb.Cell(r, last) != "yes" {
			t.Errorf("row %d: distinct merge not lossless", r)
		}
	}
}

// Table titles embed their experiment IDs so EXPERIMENTS.md can be
// cross-referenced mechanically.
func TestTitlesCarryIDs(t *testing.T) {
	for _, e := range All() {
		if e.ID == "E14" {
			continue // throughput tables are timed; covered above
		}
		res := e.Run(quickCfg())
		found := false
		for _, tb := range res.Tables {
			if strings.HasPrefix(tb.Title, e.ID) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no table title carries the experiment ID", e.ID)
		}
	}
}
