package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/mergetree"
	"repro/internal/mg"
	"repro/internal/spacesaving"
	"repro/internal/stats"
)

func init() {
	register("E01", "MG mergeability: realized error vs. n/(k+1) bound across merge topologies (PODS'12 Thm 2.2)", runE01)
	register("E02", "SpaceSaving mergeability and the SS↔MG isomorphism (PODS'12 §2)", runE02)
	register("E03", "Heavy-hitter recall/precision after merging (PODS'12 §2)", runE03)
	register("E04", "Total merge error: PODS'12 prune vs. low-total-error closed form (supplied text §5)", runE04)
}

// foldNames are the topologies every mergeability experiment sweeps.
func folds[S any](seed uint64) map[string]func([]S, mergetree.MergeFunc[S]) (S, error) {
	return map[string]func([]S, mergetree.MergeFunc[S]) (S, error){
		"sequential": mergetree.Sequential[S],
		"binary":     mergetree.Binary[S],
		"random": func(p []S, m mergetree.MergeFunc[S]) (S, error) {
			return mergetree.Random(p, seed, m)
		},
		"parallel": func(p []S, m mergetree.MergeFunc[S]) (S, error) {
			return mergetree.Parallel(p, 4, m)
		},
	}
}

var foldOrder = []string{"sequential", "binary", "random", "parallel"}

func runE01(cfg Config) Result {
	n := cfg.n()
	alphas := []float64{1.1, 1.5, 2.0}
	ks := []int{16, 64, 256}
	sites := 16
	if cfg.Quick {
		alphas = []float64{1.2}
		ks = []int{32}
	}
	tb := stats.NewTable(
		fmt.Sprintf("E01: Misra–Gries merge error, n=%d, %d sites, hash-partitioned", n, sites),
		"alpha", "k", "topology", "maxUnder", "bound n/(k+1)", "ratio", "sumAbs", "violations")
	for _, alpha := range alphas {
		stream := gen.NewZipf(n/20, alpha, cfg.Seed+uint64(alpha*100)).Stream(n)
		truth := exact.FreqOf(stream)
		parts := gen.PartitionByHash(stream, sites, func(x core.Item) uint64 { return uint64(x) * 2654435761 })
		for _, k := range ks {
			for _, fname := range foldOrder {
				fold := folds[*mg.Summary](cfg.Seed + 7)[fname]
				merged, err := mergetree.BuildAndMerge(parts,
					func(part []core.Item) *mg.Summary {
						s := mg.New(k)
						s.UpdateBatch(part)
						return s
					},
					fold, (*mg.Summary).Merge)
				if err != nil {
					panic(err)
				}
				fe := stats.MeasureFreq(truth, merged.Estimate)
				bound := core.MGBound(uint64(n), k)
				tb.AddRow(alpha, k, fname, fe.MaxUnder, bound, ratio(fe.MaxUnder, bound), fe.SumAbs, fe.Violations)
			}
		}
	}
	return Result{
		ID: "E01", Title: "MG mergeability", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim: for every topology the realized undercount stays <= n/(k+1) and no estimate interval misses the truth (violations = 0).",
		},
	}
}

func runE02(cfg Config) Result {
	n := cfg.n()
	alphas := []float64{1.1, 1.5}
	ks := []int{17, 65}
	sites := 16
	if cfg.Quick {
		alphas = []float64{1.2}
		ks = []int{33}
	}
	tb := stats.NewTable(
		fmt.Sprintf("E02: SpaceSaving merge error and isomorphism, n=%d, %d sites", n, sites),
		"alpha", "k", "topology", "maxAbs", "under bound", "violations", "iso(SS-min == MG)")
	for _, alpha := range alphas {
		stream := gen.NewZipf(n/20, alpha, cfg.Seed+uint64(alpha*100)).Stream(n)
		truth := exact.FreqOf(stream)
		parts := gen.PartitionByHash(stream, sites, func(x core.Item) uint64 { return uint64(x) * 0x9e3779b1 })
		for _, k := range ks {
			// Isomorphism check on the unmerged whole stream. SS's batch
			// path is state-identical to its per-item path, but MG must
			// stay per-item here: the SS-min == MG isomorphism is stated
			// for the per-item MG pruning schedule, and MG's UpdateBatch
			// defers pruning (guarantee-equivalent, not state-identical).
			ssWhole := spacesaving.New(k)
			ssWhole.UpdateBatch(stream)
			mgWhole := mg.New(k - 1)
			for _, x := range stream {
				mgWhole.Update(x, 1)
			}
			iso := true
			ic, mc := ssWhole.ToMisraGries().Counters(), mgWhole.Counters()
			if len(ic) != len(mc) {
				iso = false
			} else {
				for i := range ic {
					if ic[i] != mc[i] {
						iso = false
					}
				}
			}
			for _, fname := range foldOrder {
				fold := folds[*spacesaving.Summary](cfg.Seed + 7)[fname]
				merged, err := mergetree.BuildAndMerge(parts,
					func(part []core.Item) *spacesaving.Summary {
						s := spacesaving.New(k)
						s.UpdateBatch(part)
						return s
					},
					fold, (*spacesaving.Summary).Merge)
				if err != nil {
					panic(err)
				}
				fe := stats.MeasureFreq(truth, merged.Estimate)
				tb.AddRow(alpha, k, fname, fe.MaxAbs, merged.UnderBound(), fe.Violations, fmtBool(iso))
			}
		}
	}
	return Result{
		ID: "E02", Title: "SpaceSaving mergeability", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim: SS minus its minimum counter is pointwise identical to MG with k-1 counters (iso column), and merged SS estimates stay interval-correct (violations = 0).",
		},
	}
}

func runE03(cfg Config) Result {
	n := cfg.n()
	alphas := []float64{1.1, 1.3, 1.7}
	if cfg.Quick {
		alphas = []float64{1.3}
	}
	const phiInv = 100 // heavy = items above n/100
	k := 2 * phiInv    // eps = phi/2
	sites := 16
	tb := stats.NewTable(
		fmt.Sprintf("E03: heavy-hitter recall after binary-tree merge, n=%d, phi=1/%d, k=%d", n, phiInv, k),
		"alpha", "summary", "trueHH", "reported", "recall", "precision", "F1")
	for _, alpha := range alphas {
		stream := gen.NewZipf(n/20, alpha, cfg.Seed+uint64(alpha*1000)).Stream(n)
		truth := exact.FreqOf(stream)
		threshold := core.HeavyThreshold(uint64(n), phiInv)
		trueHH := truth.HeavyHitters(threshold)
		parts := gen.PartitionContiguous(stream, sites)

		mgMerged, err := mergetree.BuildAndMerge(parts,
			func(part []core.Item) *mg.Summary {
				s := mg.New(k)
				s.UpdateBatch(part)
				return s
			},
			mergetree.Binary[*mg.Summary], (*mg.Summary).Merge)
		if err != nil {
			panic(err)
		}
		ssMerged, err := mergetree.BuildAndMerge(parts,
			func(part []core.Item) *spacesaving.Summary {
				s := spacesaving.New(k)
				s.UpdateBatch(part)
				return s
			},
			mergetree.Binary[*spacesaving.Summary], (*spacesaving.Summary).MergeLowError)
		if err != nil {
			panic(err)
		}
		for name, reported := range map[string][]core.Counter{
			"mg": mgMerged.HeavyHitters(threshold),
			"ss": ssMerged.HeavyHitters(threshold),
		} {
			r := stats.MeasureRecall(trueHH, reported)
			tb.AddRow(alpha, name, len(trueHH), len(reported), r.RecallRate(), r.PrecisionRate(), r.F1())
		}
	}
	return Result{
		ID: "E03", Title: "Heavy-hitter recall", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim: recall = 1.0 always (no true heavy hitter is lost by merging); precision degrades gracefully with skew, bounded by the eps slack.",
		},
	}
}

func runE04(cfg Config) Result {
	// Part 1: the worked examples of the supplied text, verbatim.
	golden := stats.NewTable("E04a: worked examples (supplied text §5), total merge error E_T",
		"summary", "algorithm", "E_T", "paper says")
	{
		s1, _ := mg.FromCounters(4, 70, 0, []core.Counter{{Item: 2, Count: 4}, {Item: 3, Count: 11}, {Item: 4, Count: 22}, {Item: 5, Count: 33}})
		s2, _ := mg.FromCounters(4, 100, 0, []core.Counter{{Item: 7, Count: 10}, {Item: 8, Count: 20}, {Item: 9, Count: 30}, {Item: 10, Count: 40}})
		combined := mg.CombinedCounters(s1, s2)
		pods, _ := mg.Merged(s1, s2)
		low, _ := mg.MergedLowError(s1, s2)
		golden.AddRow("frequent", "pods12-prune", mg.TotalMergeError(combined, pods), 80)
		golden.AddRow("frequent", "low-error", mg.TotalMergeError(combined, low), 55)
	}
	{
		mk := func(items []core.Item, counts []uint64) *spacesaving.Summary {
			states := make([]spacesaving.CounterState, len(items))
			var n uint64
			for i := range items {
				states[i] = spacesaving.CounterState{Item: items[i], Count: counts[i]}
				n += counts[i]
			}
			s, err := spacesaving.FromStates(5, n, 0, states)
			if err != nil {
				panic(err)
			}
			return s
		}
		s1 := mk([]core.Item{1, 2, 3, 4, 5}, []uint64{5, 7, 12, 14, 18})
		s2 := mk([]core.Item{6, 7, 8, 9, 10}, []uint64{4, 16, 17, 19, 23})
		combined := spacesaving.CombinedCounters(s1, s2)
		pods, _ := spacesaving.Merged(s1, s2)
		low, _ := spacesaving.MergedLowError(s1, s2)
		golden.AddRow("spacesaving", "pods12-prune", spacesaving.TotalMergeError(combined, pods), 48)
		golden.AddRow("spacesaving", "low-error", spacesaving.TotalMergeError(combined, low), 18)
	}

	// Part 2: the same comparison on synthetic streams — total error
	// accumulated over a chain of pairwise merges of disjoint-support
	// summaries (the adversarial case for merging).
	n := cfg.n()
	alphas := []float64{1.1, 1.5, 2.0}
	ks := []int{16, 64, 256}
	sites := 16
	if cfg.Quick {
		alphas = []float64{1.3}
		ks = []int{32}
	}
	sweep := stats.NewTable(
		fmt.Sprintf("E04b: cumulative total merge error over a %d-site merge chain, hash-partitioned zipf, n=%d", sites, n),
		"alpha", "k", "summary", "E_T pods12", "E_T low-error", "low/pods")
	for _, alpha := range alphas {
		stream := gen.NewZipf(n/20, alpha, cfg.Seed+uint64(alpha*10)).Stream(n)
		parts := gen.PartitionByHash(stream, sites, func(x core.Item) uint64 { return uint64(x) * 0x85ebca6b })
		for _, k := range ks {
			// Misra–Gries chain.
			var podsTE, lowTE uint64
			buildMG := func(part []core.Item) *mg.Summary {
				s := mg.New(k)
				s.UpdateBatch(part)
				return s
			}
			accP, accL := buildMG(parts[0]), buildMG(parts[0])
			for _, p := range parts[1:] {
				nxt := buildMG(p)
				podsTE += chainStepMG(accP, nxt, (*mg.Summary).Merge)
				lowTE += chainStepMG(accL, nxt, (*mg.Summary).MergeLowError)
			}
			sweep.AddRow(alpha, k, "mg", podsTE, lowTE, ratio(lowTE, podsTE))

			// SpaceSaving chain.
			podsTE, lowTE = 0, 0
			buildSS := func(part []core.Item) *spacesaving.Summary {
				s := spacesaving.New(k)
				s.UpdateBatch(part)
				return s
			}
			accPs, accLs := buildSS(parts[0]), buildSS(parts[0])
			for _, p := range parts[1:] {
				nxt := buildSS(p)
				podsTE += chainStepSS(accPs, nxt, (*spacesaving.Summary).Merge)
				lowTE += chainStepSS(accLs, nxt, (*spacesaving.Summary).MergeLowError)
			}
			sweep.AddRow(alpha, k, "ss", podsTE, lowTE, ratio(lowTE, podsTE))
		}
	}
	return Result{
		ID: "E04", Title: "Total merge error: PODS'12 vs low-error",
		Tables: []*stats.Table{golden, sweep},
		Notes: []string{
			"Claim (supplied text Lemmas 4.3/4.6): the low-error merge's E_T never exceeds the PODS'12 prune's; the worked examples reproduce exactly (80 vs 55, 48 vs 18).",
			"Claim: on skewed streams the ratio is well below 1 and shrinks with k.",
		},
	}
}

func chainStepMG(acc, next *mg.Summary, merge func(*mg.Summary, *mg.Summary) error) uint64 {
	combined := mg.CombinedCounters(acc, next)
	if err := merge(acc, next); err != nil {
		panic(err)
	}
	return mg.TotalMergeError(combined, acc)
}

func chainStepSS(acc, next *spacesaving.Summary, merge func(*spacesaving.Summary, *spacesaving.Summary) error) uint64 {
	combined := spacesaving.CombinedCounters(acc, next)
	if err := merge(acc, next); err != nil {
		panic(err)
	}
	return spacesaving.TotalMergeError(combined, acc)
}
