package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/mergetree"
	"repro/internal/mg"
	"repro/internal/spacesaving"
	"repro/internal/stats"
)

func init() {
	register("E19", "Trace-shaped workload: heavy-hitter accuracy on a synthetic CAIDA-like packet trace", runE19)
}

func runE19(cfg Config) Result {
	n := cfg.n()
	ks := []int{64, 256, 1024}
	sites := 16
	if cfg.Quick {
		ks = []int{128}
	}
	tb := stats.NewTable(
		fmt.Sprintf("E19: flow heavy hitters on a Pareto flow trace, n=%d packets, %d links, binary tree", n, sites),
		"k", "summary", "flows", "trueHH@1/200", "recall", "precision", "maxAbsErr(HH)")
	ft := gen.FlowTrace{ActiveFlows: n / 200, ParetoAlpha: 1.1, MinFlowSize: 1, Seed: cfg.Seed}
	trace := ft.Generate(n)
	truth := exact.FreqOf(trace)
	threshold := core.HeavyThreshold(uint64(n), 200)
	trueHH := truth.HeavyHitters(threshold)
	parts := gen.PartitionRoundRobin(trace, sites) // packets of a flow hit many links

	for _, k := range ks {
		mgM, err := mergetree.BuildAndMerge(parts,
			func(part []core.Item) *mg.Summary {
				s := mg.New(k)
				for _, x := range part {
					s.Update(x, 1)
				}
				return s
			},
			mergetree.Binary[*mg.Summary], (*mg.Summary).MergeLowError)
		if err != nil {
			panic(err)
		}
		ssM, err := mergetree.BuildAndMerge(parts,
			func(part []core.Item) *spacesaving.Summary {
				s := spacesaving.New(k)
				for _, x := range part {
					s.Update(x, 1)
				}
				return s
			},
			mergetree.Binary[*spacesaving.Summary], (*spacesaving.Summary).MergeLowError)
		if err != nil {
			panic(err)
		}
		score := func(name string, reported []core.Counter, est func(core.Item) core.Estimate) {
			r := stats.MeasureRecall(trueHH, reported)
			var worst uint64
			for _, c := range trueHH {
				e := est(c.Item)
				var d uint64
				if e.Value >= c.Count {
					d = e.Value - c.Count
				} else {
					d = c.Count - e.Value
				}
				if d > worst {
					worst = d
				}
			}
			tb.AddRow(k, name, truth.Distinct(), len(trueHH), r.RecallRate(), r.PrecisionRate(), worst)
		}
		score("mg", mgM.HeavyHitters(threshold), mgM.Estimate)
		score("ss", ssM.HeavyHitters(threshold), ssM.Estimate)
	}
	return Result{
		ID: "E19", Title: "Trace-shaped workload", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim: the mergeability guarantees are distribution-free — on a churning Pareto flow trace (the CAIDA substitute of DESIGN.md §2) recall is 1.0 whenever the summary is provisioned for the threshold (k >= 2/phi = 400 here; the k=64 row shows graceful degradation below that), with errors within the bound exactly as on the stylized Zipf streams.",
		},
	}
}
