package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/distinct"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/mg"
	"repro/internal/stats"
	"repro/internal/topk"
)

func init() {
	register("E15", "Mergeable distinct counting: KMV and HLL error vs. size, merge losslessness", runE15)
	register("E16", "Sketch+directory heavy hitters: Count-Min top-k tracker vs. MG after merging", runE16)
}

func runE15(cfg Config) Result {
	n := cfg.n()
	distincts := []int{n / 20, n / 2}
	sites := 16
	if cfg.Quick {
		distincts = []int{n / 10}
	}
	tb := stats.NewTable(
		fmt.Sprintf("E15: distinct counting over %d sites, binary merge chain, n=%d updates", sites, n),
		"trueDistinct", "summary", "size(words)", "estimate", "relErr", "theory RSE", "merged==whole")
	for _, d := range distincts {
		// Zipf-duplicated stream over exactly d distinct items.
		z := gen.NewZipf(d, 1.2, cfg.Seed+uint64(d))
		stream := z.Stream(n)
		seen := make(map[core.Item]bool)
		for _, x := range stream {
			seen[x] = true
		}
		trueD := float64(len(seen))
		parts := gen.PartitionContiguous(stream, sites)

		// KMV at k=1024, HLL at p=12 (4096 registers ≈ 4096 bytes).
		kWhole := distinct.NewKMV(1024, cfg.Seed)
		hWhole := distinct.NewHLL(12, cfg.Seed)
		for _, x := range stream {
			kWhole.Update(x)
			hWhole.Update(x)
		}
		kAcc := distinct.NewKMV(1024, cfg.Seed)
		hAcc := distinct.NewHLL(12, cfg.Seed)
		for _, p := range parts {
			kPart := distinct.NewKMV(1024, cfg.Seed)
			hPart := distinct.NewHLL(12, cfg.Seed)
			for _, x := range p {
				kPart.Update(x)
				hPart.Update(x)
			}
			if err := kAcc.Merge(kPart); err != nil {
				panic(err)
			}
			if err := hAcc.Merge(hPart); err != nil {
				panic(err)
			}
		}
		kEst, hEst := kAcc.Estimate(), hAcc.Estimate()
		tb.AddRow(int(trueD), "kmv(k=1024)", 1024, kEst, math.Abs(kEst-trueD)/trueD,
			1/math.Sqrt(1022), fmtBool(kEst == kWhole.Estimate()))
		tb.AddRow(int(trueD), "hll(p=12)", 4096/8, hEst, math.Abs(hEst-trueD)/trueD,
			1.04/math.Sqrt(4096), fmtBool(hEst == hWhole.Estimate()))
	}
	return Result{
		ID: "E15", Title: "Distinct counting", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim: order-statistics summaries of hashed items are losslessly mergeable (merged estimate identical to the whole-stream estimate) with relative error near the theoretical RSE.",
		},
	}
}

func runE16(cfg Config) Result {
	n := cfg.n()
	alphas := []float64{1.1, 1.5}
	sites := 8
	if cfg.Quick {
		alphas = []float64{1.3}
	}
	const topN = 16
	tb := stats.NewTable(
		fmt.Sprintf("E16: true-top-%d coverage after an %d-site merge chain, n=%d", topN, sites, n),
		"alpha", "summary", "space(words)", "found/true", "maxOverTop16")
	for _, alpha := range alphas {
		stream := gen.NewZipf(n/20, alpha, cfg.Seed+uint64(alpha*100)).Stream(n)
		truth := exact.FreqOf(stream)
		trueTop := truth.Counters()
		if len(trueTop) > topN {
			trueTop = trueTop[:topN]
		}
		parts := gen.PartitionByHash(stream, sites, func(x core.Item) uint64 { return uint64(x) * 0xc2b2ae35 })

		// Count-Min top-k tracker: 512x4 sketch + 64-entry directory.
		tkAcc := topk.New(64, 512, 4, cfg.Seed)
		for i, p := range parts {
			part := topk.New(64, 512, 4, cfg.Seed)
			for _, x := range p {
				part.Update(x, 1)
			}
			if i == 0 {
				tkAcc = part
			} else if err := tkAcc.Merge(part); err != nil {
				panic(err)
			}
		}
		// MG with comparable space (~2x entries per counter word-wise).
		mgAcc := mg.New(1024 + 32)
		for i, p := range parts {
			part := mg.New(1024 + 32)
			for _, x := range p {
				part.Update(x, 1)
			}
			if i == 0 {
				mgAcc = part
			} else if err := mgAcc.MergeLowError(part); err != nil {
				panic(err)
			}
		}

		score := func(top []core.Counter, est func(core.Item) core.Estimate) (int, uint64) {
			set := make(map[core.Item]bool)
			for _, c := range top {
				set[c.Item] = true
			}
			found := 0
			var maxOver uint64
			for _, c := range trueTop {
				if set[c.Item] {
					found++
				}
				e := est(c.Item)
				if e.Value > c.Count && e.Value-c.Count > maxOver {
					maxOver = e.Value - c.Count
				}
			}
			return found, maxOver
		}
		f, over := score(tkAcc.Top(), tkAcc.Estimate)
		tb.AddRow(alpha, "topk(cm 512x4 + 64)", 512*4+64*2, fmt.Sprintf("%d/%d", f, len(trueTop)), over)
		f, over = score(core.TopCounters(mgAcc.Counters(), topN), mgAcc.Estimate)
		tb.AddRow(alpha, "mg(k=1056)", 1056*2, fmt.Sprintf("%d/%d", f, len(trueTop)), over)
	}
	return Result{
		ID: "E16", Title: "Sketch+directory top-k", Tables: []*stats.Table{tb},
		Notes: []string{
			"Claim: a Count-Min sketch gains a mergeable heavy-hitter directory (union + re-rank against the merged sketch) and matches the counter summaries' coverage of the true top items at comparable space; MG never overestimates, the sketch may.",
		},
	}
}
