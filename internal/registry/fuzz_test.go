package registry_test

import (
	"bytes"
	"testing"

	"repro/internal/registry"
	_ "repro/internal/registry/all"
)

// FuzzDecodeAnyFrame fuzzes the catalog's frame-dispatch path: the
// seed corpus is one encoded Example per registered family (so every
// kind byte and payload shape is represented without naming any family
// here), and any accepted frame must decode, re-encode to a canonical
// fixpoint, and preserve its total weight.
func FuzzDecodeAnyFrame(f *testing.F) {
	for _, ent := range registry.Entries() {
		for _, n := range []int{0, 16, 512} {
			data, err := ent.Encode(ent.Example(n))
			if err != nil {
				f.Fatalf("%s: encoding example: %v", ent.Name(), err)
			}
			f.Add(data)
		}
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ent, err := registry.FromFrame(data)
		if err != nil {
			return
		}
		v, err := ent.Decode(data)
		if err != nil {
			return
		}
		canon, err := ent.Encode(v)
		if err != nil {
			t.Fatalf("%s: accepted frame failed to re-encode: %v", ent.Name(), err)
		}
		again, err := ent.Decode(canon)
		if err != nil {
			t.Fatalf("%s: re-encoded frame rejected: %v", ent.Name(), err)
		}
		canon2, err := ent.Encode(again)
		if err != nil {
			t.Fatalf("%s: second re-encode: %v", ent.Name(), err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("%s: encode/decode/encode is not a fixpoint", ent.Name())
		}
		if ent.N(again) != ent.N(v) {
			t.Fatalf("%s: round-trip changed N: %d -> %d", ent.Name(), ent.N(v), ent.N(again))
		}
	})
}
