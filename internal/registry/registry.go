// Package registry is the typed catalog of every summary family in
// this repository: one entry per codec.Kind, mapping the wire tag to
// the family's canonical name, constructors, codec, merge algorithms
// (the PODS'12 merge and, where a family defines one, the
// low-total-error variant), weight accessor, and a pooled scratch of
// decode targets.
//
// The catalog is the single dispatch plane between the codec and
// everything above it: the aggregation server, both binaries, the
// sliding-window and sharded encode paths, and the public
// mergesum.Decode/Kinds API all resolve families here instead of
// keeping their own per-kind tables. Each family package registers
// itself in an init with one Register call, compile-time-checked
// against the wire interfaces; the regcomplete analyzer in
// cmd/sketchlint flags a family that exports a codec but forgets the
// registration. Package all links every family into a binary that
// wants the full catalog without importing families directly.
//
// Registration happens only during package init (Go serializes inits
// and publishes them before main), so the catalog is read-only at
// runtime and lookups take no lock.
package registry

import (
	"encoding"
	"fmt"
	"sync"

	"repro/internal/codec"
)

// Variant selects which merge algorithm an Entry applies.
type Variant int

const (
	// MergeDefault is the family's preferred algorithm: the
	// low-total-error closed form where the family defines one
	// (Misra-Gries, SpaceSaving), the PODS'12 merge otherwise.
	MergeDefault Variant = iota
	// MergePODS forces the paper's original merge.
	MergePODS
	// MergeLowError forces the low-total-error variant. Families
	// without a distinct variant fall back to their only merge.
	MergeLowError
)

// Codec constrains a family's pointer type to the wire interfaces;
// Register is compile-time-checked against it, so a family cannot be
// cataloged without a working binary codec.
type Codec[T any] interface {
	*T
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// Spec declares one family for Register. Merge, N and Example are
// required; MergeLowError is set only by families that implement the
// follow-up paper's closed-form low-total-error merge.
type Spec[T any] struct {
	// Example returns a canonically-parameterized summary filled with
	// n deterministic updates. All Example summaries of one family
	// are merge-compatible (same k/eps/geometry/seed), which is what
	// makes them usable as fixtures for the completeness tests, fuzz
	// seeds and per-kind server benchmarks.
	Example func(n int) *T
	// Merge is the PODS'12 merge: fold src into dst.
	Merge func(dst, src *T) error
	// MergeLowError is the optional low-total-error merge.
	MergeLowError func(dst, src *T) error
	// N reports the total weight summarized, merged-in weight included.
	N func(*T) uint64
}

// Entry is one family's catalog row. All fields are set at
// registration and immutable afterwards.
type Entry struct {
	kind       codec.Kind
	name       string
	newFn      func() any
	example    func(int) any
	decodeInto func(dst any, frame []byte) error
	encode     func(any) ([]byte, error)
	mergePODS  func(dst, src any) error
	mergeLow   func(dst, src any) error // nil without a distinct variant
	n          func(any) uint64
	owns       func(any) bool // reports a value of the family's summary type
	// scratch pools decode targets: every merge in this module
	// deep-copies src, so a merged-in summary can immediately be
	// decoded into again.
	scratch sync.Pool
}

// Kind returns the wire tag.
func (e *Entry) Kind() codec.Kind { return e.kind }

// Name returns the canonical wire name ("mg", "quantile", ...).
func (e *Entry) Name() string { return e.name }

// New returns an empty decode target for this family.
func (e *Entry) New() any { return e.newFn() }

// Example returns a canonically-parameterized summary holding n
// deterministic updates; see Spec.Example.
func (e *Entry) Example(n int) any { return e.example(n) }

// DecodeInto fully replaces dst's contents with the decoded frame.
// dst must come from New or GetScratch of the same entry.
func (e *Entry) DecodeInto(dst any, frame []byte) error { return e.decodeInto(dst, frame) }

// Decode decodes a frame into a fresh summary.
func (e *Entry) Decode(frame []byte) (any, error) {
	v := e.newFn()
	if err := e.decodeInto(v, frame); err != nil {
		return nil, err
	}
	return v, nil
}

// Encode returns the summary's wire frame.
func (e *Entry) Encode(v any) ([]byte, error) { return e.encode(v) }

// Merge folds src into dst with the family's default algorithm. Both
// operands must be this family's summary type; a cross-family mix-up
// is an error before any mutation, never a panic mid-merge.
func (e *Entry) Merge(dst, src any) error {
	if err := e.checkOperands(dst, src); err != nil {
		return err
	}
	return e.MergeVariant(MergeDefault, dst, src)
}

// MergeVariant folds src into dst with the selected algorithm.
func (e *Entry) MergeVariant(v Variant, dst, src any) error {
	if err := e.checkOperands(dst, src); err != nil {
		return err
	}
	if e.mergeLow != nil && v != MergePODS {
		return e.mergeLow(dst, src)
	}
	return e.mergePODS(dst, src)
}

// checkOperands rejects merge operands that are not this family's
// summary type, including nil.
func (e *Entry) checkOperands(dst, src any) error {
	if !e.owns(dst) || !e.owns(src) {
		return fmt.Errorf("registry: %s: merge operands must be the family's summary type (got %T, %T)", e.name, dst, src)
	}
	return nil
}

// HasLowError reports whether the family defines a distinct
// low-total-error merge.
func (e *Entry) HasLowError() bool { return e.mergeLow != nil }

// Variants names the selectable merge algorithms, default first.
func (e *Entry) Variants() []string {
	if e.mergeLow != nil {
		return []string{"low-error", "pods12"}
	}
	return []string{"pods12"}
}

// N reports the summary's total summarized weight.
func (e *Entry) N(v any) uint64 { return e.n(v) }

// GetScratch returns a pooled decode target of this family.
//
//sketch:hotpath
func (e *Entry) GetScratch() any {
	if v := e.scratch.Get(); v != nil {
		return v
	}
	return e.newFn()
}

// PutScratch recycles a decoded summary whose contents are no longer
// referenced. Never recycle a summary something else still owns.
//
//sketch:hotpath
func (e *Entry) PutScratch(v any) { e.scratch.Put(v) }

var (
	byKind [codec.KindCount]*Entry
	byName = map[string]*Entry{}
)

// Register catalogs one family under its wire tag and canonical name.
// It is called once per family from the family package's init and
// panics on an incomplete spec, a reused tag, or a reused name — the
// tag-collision class of bug (topk shadowing countmin's tag, hll and
// kmv shadowing bottomk's) becomes a startup failure instead of a
// wire-format ambiguity.
func Register[T any, PT Codec[T]](kind codec.Kind, name string, spec Spec[T]) {
	switch {
	case kind == codec.KindInvalid || int(kind) >= codec.KindCount:
		panic(fmt.Sprintf("registry: kind %d out of range", uint8(kind)))
	case spec.Merge == nil || spec.N == nil || spec.Example == nil:
		panic(fmt.Sprintf("registry: %s: Spec needs Example, Merge and N", name))
	case byKind[kind] != nil:
		panic(fmt.Sprintf("registry: kind %v already registered as %q", kind, byKind[kind].name))
	case byName[name] != nil:
		panic(fmt.Sprintf("registry: name %q already registered", name))
	}
	codec.RegisterKindName(kind, name)
	e := &Entry{
		kind:       kind,
		name:       name,
		newFn:      func() any { return new(T) },
		example:    func(n int) any { return spec.Example(n) },
		decodeInto: func(dst any, b []byte) error { return PT(dst.(*T)).UnmarshalBinary(b) },
		encode:     func(v any) ([]byte, error) { return PT(v.(*T)).MarshalBinary() },
		mergePODS:  func(d, s any) error { return spec.Merge(d.(*T), s.(*T)) },
		n:          func(v any) uint64 { return spec.N(v.(*T)) },
		owns:       func(v any) bool { p, ok := v.(*T); return ok && p != nil },
	}
	if spec.MergeLowError != nil {
		e.mergeLow = func(d, s any) error { return spec.MergeLowError(d.(*T), s.(*T)) }
	}
	byKind[kind] = e
	byName[name] = e
}

// ByKind returns the entry registered under the wire tag.
func ByKind(k codec.Kind) (*Entry, bool) {
	if k == codec.KindInvalid || int(k) >= codec.KindCount || byKind[k] == nil {
		return nil, false
	}
	return byKind[k], true
}

// ByName returns the entry registered under the canonical wire name.
func ByName(name string) (*Entry, bool) {
	e, ok := byName[name]
	return e, ok
}

// Entries returns every registered entry in ascending tag order.
func Entries() []*Entry {
	out := make([]*Entry, 0, len(byName))
	for _, e := range byKind {
		if e != nil {
			out = append(out, e)
		}
	}
	return out
}

// Names returns every registered wire name in ascending tag order.
func Names() []string {
	out := make([]string, 0, len(byName))
	for _, e := range byKind {
		if e != nil {
			out = append(out, e.name)
		}
	}
	return out
}

// FromFrame resolves the entry serving a wire frame by peeking at its
// kind tag; the frame's payload is not validated here.
func FromFrame(data []byte) (*Entry, error) {
	k, err := codec.PeekKind(data)
	if err != nil {
		return nil, err
	}
	e, ok := ByKind(k)
	if !ok {
		return nil, fmt.Errorf("registry: no family registered for %v", k)
	}
	return e, nil
}
