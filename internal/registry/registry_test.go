package registry_test

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/mergetree"
	"repro/internal/registry"
	_ "repro/internal/registry/all"
)

// TestCatalogComplete is the completeness table test: every wire tag
// the codec layer defines must carry a registration, resolvable by
// tag, by name, and from a frame, with the codec's name table agreeing
// with the catalog.
func TestCatalogComplete(t *testing.T) {
	if got, want := len(registry.Entries()), codec.KindCount-1; got != want {
		t.Fatalf("registry holds %d families, want %d (one per codec kind)", got, want)
	}
	for k := codec.KindMisraGries; int(k) < codec.KindCount; k++ {
		ent, ok := registry.ByKind(k)
		if !ok {
			t.Fatalf("kind %d has no registration", uint8(k))
		}
		if ent.Kind() != k {
			t.Fatalf("entry for kind %d reports kind %d", uint8(k), uint8(ent.Kind()))
		}
		byName, ok := registry.ByName(ent.Name())
		if !ok || byName != ent {
			t.Fatalf("ByName(%q) does not resolve back to the same entry", ent.Name())
		}
		// The codec's name table is a projection of the registry, so the
		// named String() path must agree with the catalog.
		if k.String() != ent.Name() {
			t.Fatalf("codec name %q != registry name %q", k.String(), ent.Name())
		}
		if gotK, ok := codec.KindByName(ent.Name()); !ok || gotK != k {
			t.Fatalf("codec.KindByName(%q) = %v, %v", ent.Name(), gotK, ok)
		}

		frame, err := ent.Encode(ent.Example(32))
		if err != nil {
			t.Fatalf("%s: encode: %v", ent.Name(), err)
		}
		fromFrame, err := registry.FromFrame(frame)
		if err != nil || fromFrame != ent {
			t.Fatalf("FromFrame(%s frame) = %v, %v", ent.Name(), fromFrame, err)
		}
	}
	if names := registry.Names(); len(names) != codec.KindCount-1 {
		t.Fatalf("Names() = %v", names)
	}
}

// TestRoundTripByteIdentical: for every family, encode → decode-into →
// re-encode must reproduce the frame byte for byte. This pins both the
// codec's canonical form and the purity of MarshalBinary (encoding may
// not perturb summary state).
func TestRoundTripByteIdentical(t *testing.T) {
	for _, ent := range registry.Entries() {
		t.Run(ent.Name(), func(t *testing.T) {
			ex := ent.Example(300)
			frame, err := ent.Encode(ex)
			if err != nil {
				t.Fatal(err)
			}
			dst := ent.New()
			if err := ent.DecodeInto(dst, frame); err != nil {
				t.Fatal(err)
			}
			again, err := ent.Encode(dst)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(frame, again) {
				t.Fatalf("re-encode differs (%d vs %d bytes)", len(frame), len(again))
			}
			// Encoding must also be pure: a second encode of the
			// original is identical to the first.
			frame2, err := ent.Encode(ex)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(frame, frame2) {
				t.Fatal("MarshalBinary mutated the summary: second encode differs")
			}
		})
	}
}

// TestMergeOfDecodedEqualsOriginals: merging decoded copies must be
// indistinguishable from merging the originals — the wire hop loses
// nothing. The fold of decoded clones is compared byte-for-byte
// against the fold of the in-memory summaries, and the decoded parts
// additionally survive mergetree.Metamorphic (every topology yields
// the same total weight).
func TestMergeOfDecodedEqualsOriginals(t *testing.T) {
	sizes := []int{100, 200, 300, 50}
	for _, ent := range registry.Entries() {
		t.Run(ent.Name(), func(t *testing.T) {
			originals := make([]any, len(sizes))
			decoded := make([]any, len(sizes))
			for i, n := range sizes {
				originals[i] = ent.Example(n)
				frame, err := ent.Encode(originals[i])
				if err != nil {
					t.Fatal(err)
				}
				if decoded[i], err = ent.Decode(frame); err != nil {
					t.Fatal(err)
				}
			}
			fold := func(parts []any) []byte {
				t.Helper()
				acc := parts[0]
				for _, p := range parts[1:] {
					if err := ent.Merge(acc, p); err != nil {
						t.Fatal(err)
					}
				}
				frame, err := ent.Encode(acc)
				if err != nil {
					t.Fatal(err)
				}
				return frame
			}
			wantFrame := fold(originals)
			gotFrame := fold(decoded)
			if !bytes.Equal(wantFrame, gotFrame) {
				t.Fatalf("fold of decoded copies differs from fold of originals (%d vs %d bytes)",
					len(gotFrame), len(wantFrame))
			}

			// Re-materialize fresh parts (the folds above consumed the
			// accumulators) and check topology independence of N.
			parts := make([]any, len(sizes))
			var wantN uint64
			for i, n := range sizes {
				parts[i] = ent.Example(n)
				wantN += ent.N(parts[i])
			}
			clone := func(v any) any {
				frame, err := ent.Encode(v)
				if err != nil {
					t.Fatal(err)
				}
				c, err := ent.Decode(frame)
				if err != nil {
					t.Fatal(err)
				}
				return c
			}
			err := mergetree.Metamorphic(parts, clone,
				mergetree.MergeFunc[any](ent.Merge),
				func(topology string, merged any) error {
					if got := ent.N(merged); got != wantN {
						return fmt.Errorf("%s: N = %d, want %d", topology, got, wantN)
					}
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMergeVariants checks the variant plumbing: families declaring a
// low-error merge expose both algorithms and default to low-error;
// families without one report exactly the PODS'12 merge.
func TestMergeVariants(t *testing.T) {
	for _, ent := range registry.Entries() {
		variants := ent.Variants()
		if ent.HasLowError() {
			if len(variants) != 2 || variants[0] != "low-error" || variants[1] != "pods12" {
				t.Fatalf("%s: Variants() = %v", ent.Name(), variants)
			}
		} else if len(variants) != 1 || variants[0] != "pods12" {
			t.Fatalf("%s: Variants() = %v", ent.Name(), variants)
		}

		// Both selectable variants must run and preserve total weight.
		for _, v := range []registry.Variant{registry.MergeDefault, registry.MergePODS, registry.MergeLowError} {
			dst, src := ent.Example(60), ent.Example(40)
			want := ent.N(dst) + ent.N(src)
			if err := ent.MergeVariant(v, dst, src); err != nil {
				t.Fatalf("%s: MergeVariant(%d): %v", ent.Name(), v, err)
			}
			if got := ent.N(dst); got != want {
				t.Fatalf("%s: variant %d merge N = %d, want %d", ent.Name(), v, got, want)
			}
		}
	}
}

// TestMergeRejectsForeignOperands: a cross-family mix-up must be an
// error before any mutation, never a panic inside a family's merge.
func TestMergeRejectsForeignOperands(t *testing.T) {
	mg, _ := registry.ByName("mg")
	ss, _ := registry.ByName("ss")
	if mg == nil || ss == nil {
		t.Fatal("mg/ss not registered")
	}
	if err := mg.Merge(mg.Example(10), ss.Example(10)); err == nil {
		t.Fatal("merging ss into mg via the mg entry succeeded")
	}
	if err := mg.Merge(nil, mg.Example(10)); err == nil {
		t.Fatal("merging into nil dst succeeded")
	}
}

// TestScratchPool: decode targets from the pool are fully overwritten
// by DecodeInto, so recycled scratch never leaks prior contents.
func TestScratchPool(t *testing.T) {
	ent, _ := registry.ByName("mg")
	big, err := ent.Encode(ent.Example(500))
	if err != nil {
		t.Fatal(err)
	}
	small, err := ent.Encode(ent.Example(10))
	if err != nil {
		t.Fatal(err)
	}
	s := ent.GetScratch()
	if err := ent.DecodeInto(s, big); err != nil {
		t.Fatal(err)
	}
	ent.PutScratch(s)
	s2 := ent.GetScratch()
	if err := ent.DecodeInto(s2, small); err != nil {
		t.Fatal(err)
	}
	enc, err := ent.Encode(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, small) {
		t.Fatal("recycled scratch leaked prior contents into the decode")
	}
}
