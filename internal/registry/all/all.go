// Package all links every summary family into the importing binary:
// each blank import runs the family's registry.Register init, so a
// process that imports this package serves the complete catalog.
// This is the module's only enumeration of family packages; dispatch
// itself always goes through the registry.
package all

import (
	_ "repro/internal/countmin"
	_ "repro/internal/countsketch"
	_ "repro/internal/distinct"
	_ "repro/internal/epsapprox"
	_ "repro/internal/gk"
	_ "repro/internal/kernel"
	_ "repro/internal/mg"
	_ "repro/internal/qdigest"
	_ "repro/internal/randquant"
	_ "repro/internal/sampling"
	_ "repro/internal/spacesaving"
	_ "repro/internal/topk"
)
