package core

import "sort"

// SortCountersAsc sorts counters in ascending order of count, breaking
// ties by item so the order is deterministic. This is the canonical
// order used by the merge algorithms, which index the combined summary
// "in ascending sorted order" (PODS'12 §2; supplied-text Algorithms 1-3).
func SortCountersAsc(cs []Counter) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Count != cs[j].Count {
			return cs[i].Count < cs[j].Count
		}
		return cs[i].Item < cs[j].Item
	})
}

// SortCountersDesc sorts counters in descending order of count with the
// same deterministic tie-break, the order reports are printed in.
func SortCountersDesc(cs []Counter) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Count != cs[j].Count {
			return cs[i].Count > cs[j].Count
		}
		return cs[i].Item < cs[j].Item
	})
}

// TotalCount sums the counts of all counters.
func TotalCount(cs []Counter) uint64 {
	var n uint64
	for _, c := range cs {
		n += c.Count
	}
	return n
}

// TopCounters returns the k counters with the largest counts, in
// descending order. It copies its input and never returns more than
// len(cs) counters.
func TopCounters(cs []Counter, k int) []Counter {
	out := make([]Counter, len(cs))
	copy(out, cs)
	SortCountersDesc(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// PadAscending returns cs sorted ascending and left-padded with
// zero-count counters up to length total. The merge algorithms of the
// supplied text assume a combined summary of exactly 2k-2 slots "padded
// with dummy counters whose frequency is zero"; this helper implements
// that convention. It panics if len(cs) > total.
func PadAscending(cs []Counter, total int) []Counter {
	if len(cs) > total {
		panic("core: cannot pad counters beyond total")
	}
	out := make([]Counter, total)
	copy(out[total-len(cs):], cs)
	SortCountersAsc(out[total-len(cs):])
	return out
}
