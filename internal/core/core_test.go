package core

import (
	"testing"
	"testing/quick"
)

func TestEstimateContains(t *testing.T) {
	e := Estimate{Value: 10, Lower: 8, Upper: 12}
	for f, want := range map[uint64]bool{7: false, 8: true, 10: true, 12: true, 13: false} {
		if got := e.Contains(f); got != want {
			t.Errorf("Contains(%d) = %v, want %v", f, got, want)
		}
	}
	if e.Width() != 4 {
		t.Errorf("Width() = %d, want 4", e.Width())
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Value: 5, Lower: 3, Upper: 9}
	if got, want := e.String(), "5 [3,9]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestMGBound(t *testing.T) {
	cases := []struct {
		n    uint64
		k    int
		want uint64
	}{
		{0, 10, 0},
		{100, 9, 10},
		{100, 99, 1},
		{100, 100, 0},
		{1000, 0, 1000},
	}
	for _, c := range cases {
		if got := MGBound(c.n, c.k); got != c.want {
			t.Errorf("MGBound(%d, %d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestSSBound(t *testing.T) {
	if got := SSBound(100, 10); got != 10 {
		t.Errorf("SSBound(100, 10) = %d, want 10", got)
	}
	if got := SSBound(99, 10); got != 9 {
		t.Errorf("SSBound(99, 10) = %d, want 9", got)
	}
}

func TestSSBoundPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SSBound(1, 0) did not panic")
		}
	}()
	SSBound(1, 0)
}

func TestMGBoundPanicsOnNegativeK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MGBound(1, -1) did not panic")
		}
	}()
	MGBound(1, -1)
}

func TestHeavyThreshold(t *testing.T) {
	// floor(n/k)+1, Definition 1.4 of the k-majority problem.
	if got := HeavyThreshold(100, 5); got != 21 {
		t.Errorf("HeavyThreshold(100, 5) = %d, want 21", got)
	}
	if got := HeavyThreshold(99, 5); got != 20 {
		t.Errorf("HeavyThreshold(99, 5) = %d, want 20", got)
	}
}

func TestSortCountersAsc(t *testing.T) {
	cs := []Counter{{3, 5}, {1, 2}, {2, 5}, {9, 1}}
	SortCountersAsc(cs)
	want := []Counter{{9, 1}, {1, 2}, {2, 5}, {3, 5}}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("SortCountersAsc = %v, want %v", cs, want)
		}
	}
}

func TestSortCountersDesc(t *testing.T) {
	cs := []Counter{{3, 5}, {1, 2}, {2, 5}, {9, 1}}
	SortCountersDesc(cs)
	want := []Counter{{2, 5}, {3, 5}, {1, 2}, {9, 1}}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("SortCountersDesc = %v, want %v", cs, want)
		}
	}
}

func TestTotalCount(t *testing.T) {
	if got := TotalCount(nil); got != 0 {
		t.Errorf("TotalCount(nil) = %d, want 0", got)
	}
	if got := TotalCount([]Counter{{1, 4}, {2, 6}}); got != 10 {
		t.Errorf("TotalCount = %d, want 10", got)
	}
}

func TestTopCounters(t *testing.T) {
	in := []Counter{{1, 5}, {2, 9}, {3, 1}, {4, 7}}
	got := TopCounters(in, 2)
	if len(got) != 2 || got[0] != (Counter{2, 9}) || got[1] != (Counter{4, 7}) {
		t.Fatalf("TopCounters = %v", got)
	}
	// Input must not be reordered.
	if in[0] != (Counter{1, 5}) {
		t.Fatal("TopCounters mutated its input")
	}
	if got := TopCounters(in, 10); len(got) != 4 {
		t.Fatalf("TopCounters with large k returned %d counters", len(got))
	}
}

func TestPadAscending(t *testing.T) {
	cs := []Counter{{7, 9}, {8, 3}}
	got := PadAscending(cs, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	if got[0].Count != 0 || got[1].Count != 0 {
		t.Fatalf("padding not at front: %v", got)
	}
	if got[2] != (Counter{8, 3}) || got[3] != (Counter{7, 9}) {
		t.Fatalf("tail not sorted ascending: %v", got)
	}
}

func TestPadAscendingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PadAscending did not panic on overflow")
		}
	}()
	PadAscending(make([]Counter, 3), 2)
}

// Property: sorting ascending then summing equals summing unsorted, and
// the ascending order is actually non-decreasing.
func TestSortCountersAscProperties(t *testing.T) {
	f := func(items []uint64, counts []uint64) bool {
		n := len(items)
		if len(counts) < n {
			n = len(counts)
		}
		cs := make([]Counter, n)
		for i := 0; i < n; i++ {
			cs[i] = Counter{Item(items[i]), counts[i] % 1000}
		}
		before := TotalCount(cs)
		SortCountersAsc(cs)
		if TotalCount(cs) != before {
			return false
		}
		for i := 1; i < len(cs); i++ {
			if cs[i-1].Count > cs[i].Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
