// Package core defines the shared vocabulary of the mergeable-summaries
// library: item and counter types, the summary interfaces implemented by
// every sketch in this repository, and the error-interval type returned
// by frequency queries.
//
// The central concept, following Agarwal, Cormode, Huang, Phillips, Wei
// and Yi ("Mergeable Summaries", PODS 2012), is a summary S(D, ε) of a
// data set D that can be *merged*: given S(D1, ε) and S(D2, ε) — and
// nothing else — one can compute S(D1 ⊎ D2, ε) with the same size and
// the same error parameter. Mergeability must hold for arbitrary merge
// orders and topologies, which is what makes these summaries usable in
// distributed and parallel aggregation.
package core

import (
	"errors"
	"fmt"
)

// Item identifies an element of the input universe. Frequency summaries
// count occurrences of Items; callers hash richer keys down to uint64.
type Item uint64

// Counter pairs an item with an (estimated) count. Counter slices are
// the interchange format between summaries, oracles and reports.
type Counter struct {
	Item  Item
	Count uint64
}

// Estimate is the answer to a point (frequency) query. The true
// frequency of the queried item is guaranteed to lie in [Lower, Upper];
// Value is the summary's point estimate within that interval.
type Estimate struct {
	Value uint64
	Lower uint64
	Upper uint64
}

// Contains reports whether the true frequency f is inside the interval.
func (e Estimate) Contains(f uint64) bool { return e.Lower <= f && f <= e.Upper }

// Width returns the width of the error interval.
func (e Estimate) Width() uint64 { return e.Upper - e.Lower }

func (e Estimate) String() string {
	return fmt.Sprintf("%d [%d,%d]", e.Value, e.Lower, e.Upper)
}

// FrequencySummary is the interface shared by the counter-based and
// sketch-based frequency summaries (Misra–Gries, SpaceSaving, Count-Min,
// Count-Sketch). Merging is defined on the concrete types because its
// signature is type-specific; see package mergetree for generic
// orchestration over concrete types.
type FrequencySummary interface {
	// Update adds w occurrences of x. w must be >= 1.
	Update(x Item, w uint64)
	// Estimate answers a point query for x with a guaranteed interval.
	Estimate(x Item) Estimate
	// N returns the total weight summarized, including merged-in weight.
	N() uint64
}

// CounterSummary is implemented by summaries that materialize an
// explicit, bounded set of candidate heavy hitters (MG, SpaceSaving).
type CounterSummary interface {
	FrequencySummary
	// Counters returns the monitored (item, estimate) pairs in
	// ascending order of count. The slice is a copy.
	Counters() []Counter
	// K returns the maximum number of counters the summary may hold.
	K() int
}

// QuantileSummary is the interface shared by the quantile summaries
// (GK, the randomized mergeable summary and its hybrid, bottom-k
// sampling). Values are float64s ordered by <.
type QuantileSummary interface {
	// Update inserts one value.
	Update(v float64)
	// N returns the number of values summarized, including merges.
	N() uint64
	// Rank estimates the number of inserted values that are <= v.
	Rank(v float64) uint64
	// Quantile returns an estimate of the phi-quantile, phi in [0, 1]:
	// a value whose rank is approximately phi*N.
	Quantile(phi float64) float64
}

// Common errors returned by merge operations.
var (
	// ErrMismatchedK is returned when merging summaries built with
	// different capacity parameters.
	ErrMismatchedK = errors.New("core: cannot merge summaries with different k")
	// ErrMismatchedShape is returned when merging sketches whose
	// internal geometry (width/depth/levels/seeds) differs.
	ErrMismatchedShape = errors.New("core: cannot merge summaries with different shapes")
	// ErrNilSummary is returned when merging with a nil summary.
	ErrNilSummary = errors.New("core: cannot merge a nil summary")
)

// MGBound returns the Misra–Gries error bound n/(k+1): the maximum
// amount by which an MG summary with k counters may undercount any item
// after summarizing total weight n, regardless of merge topology
// (PODS'12 Theorem 2.2).
func MGBound(n uint64, k int) uint64 {
	if k < 0 {
		panic("core: negative k")
	}
	return n / uint64(k+1)
}

// SSBound returns the SpaceSaving error bound n/k: the maximum
// overcount of a SpaceSaving summary with k counters on total weight n.
func SSBound(n uint64, k int) uint64 {
	if k <= 0 {
		panic("core: non-positive k")
	}
	return n / uint64(k)
}

// HeavyThreshold returns the frequency threshold floor(n/k)+1 above
// which an item is a k-majority (phi-heavy) element of a stream of
// total weight n, matching Definition 1.4 of the k-majority problem.
func HeavyThreshold(n uint64, k int) uint64 {
	if k <= 0 {
		panic("core: non-positive k")
	}
	return n/uint64(k) + 1
}
