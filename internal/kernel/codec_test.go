package kernel

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/gen"
)

func TestCodecRoundTrip(t *testing.T) {
	k := New(24)
	for _, p := range gen.RingPoints(2000, 1.5, 0.05, 7) {
		k.Update(p)
	}
	data, err := k.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Kernel
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.N() != k.N() || got.Directions() != k.Directions() || got.Size() != k.Size() {
		t.Fatal("round trip changed header")
	}
	for i := 0; i < 2*24; i++ {
		wv, wok := k.GridSupport(i)
		gv, gok := got.GridSupport(i)
		if wok != gok || wv != gv {
			t.Fatalf("slot %d differs after round trip", i)
		}
	}
	for _, theta := range []float64{0, 0.5, 1.2, math.Pi - 0.1} {
		if got.Width(theta) != k.Width(theta) {
			t.Fatalf("width differs at theta=%v", theta)
		}
	}
	// Decoded kernels keep merging.
	other := New(24)
	other.Update(gen.Point{X: 100, Y: 0})
	if err := got.Merge(other); err != nil {
		t.Fatal(err)
	}
	if got.Width(0) <= k.Width(0) {
		t.Fatal("merge after decode had no effect")
	}
}

func TestCodecEmptyKernel(t *testing.T) {
	k := New(4)
	data, err := k.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Kernel
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.Size() != 0 || got.N() != 0 {
		t.Fatal("empty round trip not empty")
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	k := New(4)
	k.Update(gen.Point{X: 1, Y: 2})
	data, _ := k.MarshalBinary()
	data[len(data)-5] ^= 0xff
	var got Kernel
	if err := got.UnmarshalBinary(data); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func FuzzUnmarshal(f *testing.F) {
	k := New(8)
	for _, p := range gen.UniformPoints(100, 1) {
		k.Update(p)
	}
	seed, _ := k.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Kernel
		if err := out.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted frames must round-trip to a canonical fixpoint:
		// re-encode, decode, re-encode byte-identically.
		canon, err := out.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
		var again Kernel
		if err := again.UnmarshalBinary(canon); err != nil {
			t.Fatalf("re-marshaled frame rejected: %v", err)
		}
		canon2, err := again.MarshalBinary()
		if err != nil {
			t.Fatalf("second re-marshal: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatal("encode/decode/encode is not a fixpoint")
		}
	})
}
