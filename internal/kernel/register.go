package kernel

import (
	"repro/internal/codec"
	"repro/internal/gen"
	"repro/internal/registry"
)

// init catalogs the family; see internal/registry.
func init() {
	registry.Register[Kernel](codec.KindKernel, "kernel", registry.Spec[Kernel]{
		Example: func(n int) *Kernel {
			k := NewEpsilon(0.1)
			for _, p := range gen.RingPoints(n, 1, 0.05, 13) {
				k.Update(p)
			}
			return k
		},
		Merge: (*Kernel).Merge,
		N:     (*Kernel).N,
	})
}
