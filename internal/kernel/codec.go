package kernel

import (
	"fmt"

	"repro/internal/codec"
	"repro/internal/gen"
)

// MarshalBinary implements encoding.BinaryMarshaler. The payload is
// built in a pooled, pre-sized buffer.
func (k *Kernel) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	// Header plus per-slot presence byte and up to three floats.
	w.Grow(2*10 + 2*k.m*(1+3*8))
	w.Int(k.m)
	w.Uint64(k.n)
	for slot := 0; slot < 2*k.m; slot++ {
		w.Bool(k.has[slot])
		if k.has[slot] {
			w.Float64(k.best[slot].X)
			w.Float64(k.best[slot].Y)
			w.Float64(k.bestDot[slot])
		}
	}
	return codec.EncodeFrame(codec.KindKernel, w.Bytes()), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (k *Kernel) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindKernel, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	m := r.Int()
	n := r.Uint64()
	if r.Err() != nil {
		return r.Err()
	}
	if m < 2 || 2*m > r.Remaining()+1 {
		// Each slot needs at least its presence byte.
		return fmt.Errorf("kernel: implausible direction count %d", m)
	}
	out := New(m)
	out.n = n
	for slot := 0; slot < 2*m; slot++ {
		if r.Bool() {
			out.has[slot] = true
			out.best[slot] = gen.Point{X: r.Float64(), Y: r.Float64()}
			out.bestDot[slot] = r.Float64()
		}
	}
	if err := r.Finish(); err != nil {
		return err
	}
	*k = *out
	return nil
}
