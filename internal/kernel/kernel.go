// Package kernel implements a mergeable ε-kernel for directional width
// in the plane (PODS'12 §5): a small subset K of the input points such
// that for every direction u,
//
//	width(K, u) ≥ (1 − ε) · width(P, u)
//
// The construction fixes a grid of m = O(1/√ε) directions (the paper's
// "reference frame", which is what makes the kernel mergeable) and
// keeps, for every grid direction, the extreme point of the input.
// Because "extreme point per fixed direction" is a semigroup (the max
// over a union is the max of the maxes), merging kernels is exact on
// the grid: after any merge tree the kernel supports exactly the same
// grid extremes as a kernel built over the whole point set, so the
// error never accumulates — only the fixed grid discretization
// contributes, and it is bounded by the sin² of half the angular step
// times the diameter-to-width ratio.
package kernel

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/gen"
)

// Kernel is a mergeable directional-width kernel. The zero value is
// not usable; use New. Not safe for concurrent use.
type Kernel struct {
	m       int // number of grid directions in [0, π)
	n       uint64
	has     []bool      // per half-direction: any point seen yet
	best    []gen.Point // extreme point per half-direction (2m of them)
	bestDot []float64   // its dot product
	cos     []float64
	sin     []float64
}

// New returns an empty kernel over m >= 2 grid directions (2m extreme
// slots). Two kernels merge iff they share m.
func New(m int) *Kernel {
	if m < 2 {
		panic("kernel: need at least 2 directions")
	}
	k := &Kernel{
		m:       m,
		has:     make([]bool, 2*m),
		best:    make([]gen.Point, 2*m),
		bestDot: make([]float64, 2*m),
		cos:     make([]float64, m),
		sin:     make([]float64, m),
	}
	for i := 0; i < m; i++ {
		theta := math.Pi * float64(i) / float64(m)
		k.cos[i] = math.Cos(theta)
		k.sin[i] = math.Sin(theta)
	}
	return k
}

// NewEpsilon returns a kernel whose grid is fine enough for relative
// width error at most eps on inputs with diameter-to-width ratio up to
// 4; see NewEpsilonAspect.
func NewEpsilon(eps float64) *Kernel {
	return NewEpsilonAspect(eps, 4)
}

// NewEpsilonAspect returns a kernel with relative width error at most
// eps on inputs whose diameter-to-width (aspect) ratio is at most
// aspect: the width error of a direction grid with angular step δ is
// ~2·sin(δ)·diameter, so m = ceil(π·aspect/eps) grid directions
// suffice.
//
// Substitution note (DESIGN.md §2): the paper's O(1/√ε)-size kernel
// uses the Agarwal–Har-Peled–Varadarajan normalization, which requires
// all sites to agree on a data-dependent affine frame; the fixed
// direction grid used here is the paper's "common reference frame"
// requirement made explicit, trading size O(aspect/ε) for exact
// mergeability (see Merge).
func NewEpsilonAspect(eps, aspect float64) *Kernel {
	if eps <= 0 || eps >= 1 {
		panic("kernel: eps must be in (0, 1)")
	}
	if aspect < 1 {
		panic("kernel: aspect must be >= 1")
	}
	m := int(math.Ceil(math.Pi * aspect / eps))
	if m < 2 {
		m = 2
	}
	return New(m)
}

// Directions returns the number of grid directions m.
func (k *Kernel) Directions() int { return k.m }

// N returns the number of points observed, including merges.
func (k *Kernel) N() uint64 { return k.n }

// Size returns the number of stored extreme points (with
// multiplicity; distinct points may be fewer).
func (k *Kernel) Size() int {
	c := 0
	for _, h := range k.has {
		if h {
			c++
		}
	}
	return c
}

// Update observes one point.
func (k *Kernel) Update(p gen.Point) {
	k.n++
	for i := 0; i < k.m; i++ {
		d := p.X*k.cos[i] + p.Y*k.sin[i]
		k.offer(i, p, d)      // +direction
		k.offer(i+k.m, p, -d) // −direction
	}
}

func (k *Kernel) offer(slot int, p gen.Point, d float64) {
	if !k.has[slot] || d > k.bestDot[slot] {
		k.has[slot] = true
		k.best[slot] = p
		k.bestDot[slot] = d
	}
}

// Merge folds other into k: per-slot maximum, which is exact. other is
// not modified.
func (k *Kernel) Merge(other *Kernel) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if k.m != other.m {
		return fmt.Errorf("%w: kernel grid %d vs %d", core.ErrMismatchedShape, k.m, other.m)
	}
	k.n += other.n
	for slot := range other.has {
		if other.has[slot] {
			k.offer(slot, other.best[slot], other.bestDot[slot])
		}
	}
	return nil
}

// Merged returns the merge of a and b without modifying either.
func Merged(a, b *Kernel) (*Kernel, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// Points returns the stored extreme points (deduplicated).
func (k *Kernel) Points() []gen.Point {
	seen := make(map[gen.Point]bool)
	var out []gen.Point
	for slot, h := range k.has {
		if h && !seen[k.best[slot]] {
			seen[k.best[slot]] = true
			out = append(out, k.best[slot])
		}
	}
	return out
}

// Width estimates the directional width of the observed point set
// along (cos θ, sin θ): the width of the kernel's point set, which
// never exceeds the true width and is within the grid discretization
// error of it.
func (k *Kernel) Width(theta float64) float64 {
	pts := k.Points()
	if len(pts) == 0 {
		return 0
	}
	ux, uy := math.Cos(theta), math.Sin(theta)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		d := p.X*ux + p.Y*uy
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	return hi - lo
}

// GridSupport returns, for grid slot i in [0, 2m), the exact support
// value max ⟨p, u_i⟩ over all observed points; used by tests to verify
// that merging is lossless on the grid.
func (k *Kernel) GridSupport(slot int) (float64, bool) {
	if slot < 0 || slot >= 2*k.m {
		panic("kernel: slot out of range")
	}
	return k.bestDot[slot], k.has[slot]
}

// Clone returns a deep copy.
func (k *Kernel) Clone() *Kernel {
	c := New(k.m)
	c.n = k.n
	copy(c.has, k.has)
	copy(c.best, k.best)
	copy(c.bestDot, k.bestDot)
	return c
}

// Reset restores the kernel to its freshly-constructed state.
func (k *Kernel) Reset() {
	k.n = 0
	for i := range k.has {
		k.has[i] = false
		k.bestDot[i] = 0
	}
}
