package kernel

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
)

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"m=1":   func() { New(1) },
		"eps=0": func() { NewEpsilon(0) },
		"eps=1": func() { NewEpsilon(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSizeBounded(t *testing.T) {
	k := New(16)
	for _, p := range gen.RingPoints(10000, 1, 0.05, 1) {
		k.Update(p)
	}
	if k.Size() > 32 {
		t.Errorf("size %d exceeds 2m = 32", k.Size())
	}
	if len(k.Points()) > 32 {
		t.Errorf("%d distinct points exceed 2m", len(k.Points()))
	}
	if k.N() != 10000 {
		t.Errorf("N = %d", k.N())
	}
}

// The kernel's width never exceeds the true width and is within the
// grid discretization of it, across the direction sweep.
func TestWidthGuarantee(t *testing.T) {
	const n = 20000
	eps := 0.05
	for name, pts := range map[string][]gen.Point{
		"ring":     gen.RingPoints(n, 2, 0.02, 1),
		"gaussian": gen.GaussianPoints(n, 3, 1, math.Pi/7, 2),
		"uniform":  gen.UniformPoints(n, 3),
	} {
		k := NewEpsilon(eps)
		for _, p := range pts {
			k.Update(p)
		}
		for i := 0; i < 64; i++ {
			theta := math.Pi * float64(i) / 64
			truth := exact.DirectionalWidth(pts, theta)
			got := k.Width(theta)
			if got > truth+1e-9 {
				t.Fatalf("%s theta=%v: kernel width %v exceeds true %v", name, theta, got, truth)
			}
			if truth > 0 && (truth-got)/truth > eps {
				t.Errorf("%s theta=%v: relative width error %v > eps=%v",
					name, theta, (truth-got)/truth, eps)
			}
		}
	}
}

// Mergeability is exact on the grid: a kernel merged over any
// partitioning supports exactly the same grid extremes as a kernel
// built over the whole set.
func TestMergeLossless(t *testing.T) {
	const n = 10000
	pts := gen.GaussianPoints(n, 2, 0.7, 0.3, 5)
	whole := New(24)
	for _, p := range pts {
		whole.Update(p)
	}
	parts := gen.PartitionRandomSizes(pts, 7, 3)
	ks := make([]*Kernel, len(parts))
	for i, p := range parts {
		ks[i] = New(24)
		for _, pt := range p {
			ks[i].Update(pt)
		}
	}
	for len(ks) > 1 {
		var next []*Kernel
		for i := 0; i+1 < len(ks); i += 2 {
			if err := ks[i].Merge(ks[i+1]); err != nil {
				t.Fatal(err)
			}
			next = append(next, ks[i])
		}
		if len(ks)%2 == 1 {
			next = append(next, ks[len(ks)-1])
		}
		ks = next
	}
	m := ks[0]
	if m.N() != n {
		t.Fatalf("N = %d", m.N())
	}
	for slot := 0; slot < 48; slot++ {
		wv, wok := whole.GridSupport(slot)
		mv, mok := m.GridSupport(slot)
		if wok != mok {
			t.Fatalf("slot %d: presence differs", slot)
		}
		if wok && wv != mv {
			t.Fatalf("slot %d: support %v != %v after merge", slot, mv, wv)
		}
	}
	// Consequently widths agree exactly too.
	for i := 0; i < 32; i++ {
		theta := math.Pi * float64(i) / 32
		if math.Abs(whole.Width(theta)-m.Width(theta)) > 1e-12 {
			t.Fatalf("width differs at theta=%v", theta)
		}
	}
}

func TestMergeMismatched(t *testing.T) {
	a := New(8)
	if err := a.Merge(New(16)); err == nil {
		t.Error("mismatched m accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestMergeWithEmpty(t *testing.T) {
	a := New(8)
	for _, p := range gen.UniformPoints(100, 1) {
		a.Update(p)
	}
	w := a.Width(0.5)
	if err := a.Merge(New(8)); err != nil {
		t.Fatal(err)
	}
	if a.Width(0.5) != w || a.N() != 100 {
		t.Fatal("merge with empty changed state")
	}
	empty := New(8)
	if err := empty.Merge(a); err != nil {
		t.Fatal(err)
	}
	if empty.Width(0.5) != w {
		t.Fatal("merge into empty lost extremes")
	}
}

func TestEmptyKernel(t *testing.T) {
	k := New(4)
	if k.Width(1) != 0 {
		t.Error("empty width should be 0")
	}
	if k.Size() != 0 || len(k.Points()) != 0 {
		t.Error("empty kernel not empty")
	}
}

func TestCloneReset(t *testing.T) {
	k := New(4)
	k.Update(gen.Point{X: 1, Y: 2})
	c := k.Clone()
	c.Update(gen.Point{X: 5, Y: 5})
	if c.N() != 2 || k.N() != 1 {
		t.Fatal("clone not independent")
	}
	k.Reset()
	if k.N() != 0 || k.Size() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestGridSupportPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slot did not panic")
		}
	}()
	New(4).GridSupport(99)
}

func TestSinglePoint(t *testing.T) {
	k := New(8)
	k.Update(gen.Point{X: 3, Y: 4})
	if w := k.Width(0.7); w != 0 {
		t.Errorf("single-point width = %v, want 0", w)
	}
	if len(k.Points()) != 1 {
		t.Errorf("points = %v", k.Points())
	}
}
