package spacesaving

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/mg"
)

func mustStates(t *testing.T, k int, cs []CounterState) *Summary {
	t.Helper()
	var n uint64
	for _, c := range cs {
		n += c.Count
	}
	s, err := FromStates(k, n, 0, cs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func goldenInputs(t *testing.T) (*Summary, *Summary) {
	t.Helper()
	s1 := mustStates(t, 5, []CounterState{
		{Item: 1, Count: 5}, {Item: 2, Count: 7}, {Item: 3, Count: 12}, {Item: 4, Count: 14}, {Item: 5, Count: 18},
	})
	s2 := mustStates(t, 5, []CounterState{
		{Item: 6, Count: 4}, {Item: 7, Count: 16}, {Item: 8, Count: 17}, {Item: 9, Count: 19}, {Item: 10, Count: 23},
	})
	return s1, s2
}

// Golden test from §5.2 of the supplied text: combined summary after
// minima subtraction.
func TestCombinedGoldenExample(t *testing.T) {
	s1, s2 := goldenInputs(t)
	combined := CombinedCounters(s1, s2)
	want := []core.Counter{
		{Item: 2, Count: 2}, {Item: 3, Count: 7}, {Item: 4, Count: 9}, {Item: 7, Count: 12},
		{Item: 5, Count: 13}, {Item: 8, Count: 13}, {Item: 9, Count: 15}, {Item: 10, Count: 19},
	}
	if len(combined) != len(want) {
		t.Fatalf("combined = %v", combined)
	}
	for i := range want {
		if combined[i] != want[i] {
			t.Fatalf("combined[%d] = %v, want %v", i, combined[i], want[i])
		}
	}
}

// §5.2.1: the PODS'12 merge (the text's Algorithm 1) produces
// [(5,1),(8,1),(9,3),(10,7)] with total error 48.
func TestMergeGoldenExample(t *testing.T) {
	s1, s2 := goldenInputs(t)
	combined := CombinedCounters(s1, s2)
	m, err := Merged(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[core.Item]uint64{5: 1, 8: 1, 9: 3, 10: 7}
	if m.Len() != len(want) {
		t.Fatalf("merged has %d counters: %v", m.Len(), m.Counters())
	}
	for item, count := range want {
		if got := m.Estimate(item).Value; got != count {
			t.Errorf("merged[%d] = %d, want %d", item, got, count)
		}
	}
	if te := TotalMergeError(combined, m); te != 48 {
		t.Errorf("total error = %d, want 48", te)
	}
	if m.N() != 56+79 {
		t.Errorf("N = %d, want 135", m.N())
	}
	// under = mu1 + mu2 + cut = 5 + 4 + 12.
	if m.UnderBound() != 21 {
		t.Errorf("UnderBound = %d, want 21", m.UnderBound())
	}
}

// §5.2.2: the low-total-error merge (the text's Algorithm 3) produces
// [(7,12),(5,13),(8,15),(9,22),(10,28)] with total error 18.
func TestMergeLowErrorGoldenExample(t *testing.T) {
	s1, s2 := goldenInputs(t)
	combined := CombinedCounters(s1, s2)
	m, err := MergedLowError(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[core.Item]uint64{7: 12, 5: 13, 8: 15, 9: 22, 10: 28}
	if m.Len() != len(want) {
		t.Fatalf("merged has %d counters: %v", m.Len(), m.Counters())
	}
	for item, count := range want {
		if got := m.Estimate(item).Value; got != count {
			t.Errorf("merged[%d] = %d, want %d", item, got, count)
		}
	}
	if te := TotalMergeError(combined, m); te != 18 {
		t.Errorf("total error = %d, want 18", te)
	}
	// The headline claim: 18 < 48.
	pods, err := Merged(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if TotalMergeError(combined, m) >= TotalMergeError(combined, pods) {
		t.Error("low-error merge not better on the worked example")
	}
	// under = mu1 + mu2 only (no prune subtraction).
	if m.UnderBound() != 9 {
		t.Errorf("UnderBound = %d, want 9", m.UnderBound())
	}
}

func TestMergeMismatched(t *testing.T) {
	a, b := New(4), New(8)
	if err := a.Merge(b); err == nil {
		t.Error("mismatched k accepted by Merge")
	}
	if err := a.MergeLowError(b); err == nil {
		t.Error("mismatched k accepted by MergeLowError")
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil accepted by Merge")
	}
	if err := a.MergeLowError(nil); err == nil {
		t.Error("nil accepted by MergeLowError")
	}
}

func TestMergeDoesNotModifyOther(t *testing.T) {
	a, b := goldenInputs(t)
	before := b.States()
	if _, err := Merged(a, b); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	after := b.States()
	if len(before) != len(after) {
		t.Fatal("merge modified other")
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("merge modified other's states")
		}
	}
}

// The closed-form merge must equal an actual SpaceSaving run over the
// combined counters processed in ascending order (the text's §4.4
// constructive proof).
func replaySS(k int, combined []core.Counter) *Summary {
	s := New(k)
	for _, c := range combined {
		if c.Count > 0 {
			s.Update(c.Item, c.Count)
		}
	}
	return s
}

func sameCounts(t *testing.T, a, b *Summary) bool {
	t.Helper()
	ca, cb := a.Counters(), b.Counters()
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

func TestMergeLowErrorEqualsReplay(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5, 8, 16} {
		for seed := uint64(0); seed < 25; seed++ {
			rng := gen.NewRNG(seed*7919 + uint64(k))
			mk := func(base int) *Summary {
				s := New(k)
				cnt := rng.Intn(k) + 1
				for i := 0; i < cnt; i++ {
					s.Update(core.Item(base+i), uint64(rng.Intn(100)+1))
				}
				return s
			}
			a := mk(0)
			b := mk(1000 + rng.Intn(k)) // may overlap with a's tail
			combined := CombinedCounters(a, b)
			m, err := MergedLowError(a, b)
			if err != nil {
				t.Fatal(err)
			}
			want := replaySS(k, combined)
			if !sameCounts(t, m, want) {
				t.Fatalf("k=%d seed=%d: closed form %v != replay %v (combined %v)",
					k, seed, m.Counters(), want.Counters(), combined)
			}
			if err := m.checkInvariants(); err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
		}
	}
}

// mergeTree folds summaries pairwise in a balanced binary tree.
func mergeTree(t *testing.T, parts []*Summary, merge func(a, b *Summary) error) *Summary {
	t.Helper()
	for len(parts) > 1 {
		var next []*Summary
		for i := 0; i+1 < len(parts); i += 2 {
			if err := merge(parts[i], parts[i+1]); err != nil {
				t.Fatal(err)
			}
			next = append(next, parts[i])
		}
		if len(parts)%2 == 1 {
			next = append(next, parts[len(parts)-1])
		}
		parts = next
	}
	return parts[0]
}

// Mergeability: after a merge tree over arbitrary partitions, every
// estimate interval still contains the true frequency, and the total
// width of the guarantee stays within the PODS'12 accounting:
// under <= sum over merges of (mu1+mu2+cut) <= 2*n/k for the pods
// variant (each element counted once in minima and once in prunes).
func TestMergeTreePreservesGuarantee(t *testing.T) {
	const n = 120000
	const k = 25
	stream := gen.NewZipf(3000, 1.2, 99).Stream(n)
	truth := exact.FreqOf(stream)

	partitionings := map[string][][]core.Item{
		"contiguous": gen.PartitionContiguous(stream, 16),
		"byhash":     gen.PartitionByHash(stream, 16, func(x core.Item) uint64 { return uint64(x) * 2654435761 }),
		"random":     gen.PartitionRandomSizes(stream, 16, 5),
	}
	merges := map[string]func(a, b *Summary) error{
		"pods":     (*Summary).Merge,
		"lowerror": (*Summary).MergeLowError,
	}
	for pname, parts := range partitionings {
		for mname, mfn := range merges {
			summaries := make([]*Summary, len(parts))
			for i, p := range parts {
				summaries[i] = New(k)
				for _, x := range p {
					summaries[i].Update(x, 1)
				}
			}
			m := mergeTree(t, summaries, mfn)
			if m.N() != n {
				t.Fatalf("%s/%s: N=%d, want %d", pname, mname, m.N(), n)
			}
			if m.Len() > k {
				t.Errorf("%s/%s: size %d > k", pname, mname, m.Len())
			}
			// Total two-sided guarantee stays O(eps * n): minima
			// subtractions and prunes are each bounded by n/k per the
			// PODS'12 analysis (factor 2 covers both sides).
			if m.UnderBound() > 2*n/uint64(k) {
				t.Errorf("%s/%s: under=%d exceeds 2n/k=%d", pname, mname, m.UnderBound(), 2*n/uint64(k))
			}
			for _, c := range truth.Counters() {
				e := m.Estimate(c.Item)
				if !e.Contains(c.Count) {
					t.Fatalf("%s/%s: interval %v misses true count %d of item %d",
						pname, mname, e, c.Count, c.Item)
				}
			}
			if err := m.checkInvariants(); err != nil {
				t.Fatalf("%s/%s: %v", pname, mname, err)
			}
		}
	}
}

func TestMergeWithEmpty(t *testing.T) {
	a := New(4)
	a.Update(1, 7)
	a.Update(2, 3)
	empty := New(4)
	if err := a.Merge(empty); err != nil {
		t.Fatal(err)
	}
	if a.N() != 10 || a.Estimate(1).Value != 7 || a.UnderBound() != 0 {
		t.Fatalf("merge with empty changed state: n=%d under=%d", a.N(), a.UnderBound())
	}
	empty2 := New(4)
	if err := empty2.MergeLowError(a); err != nil {
		t.Fatal(err)
	}
	if empty2.N() != 10 || empty2.Estimate(1).Value != 7 {
		t.Fatal("merge into empty lost state")
	}
}

// The SS <-> MG isomorphism (PODS'12 §2): a full SpaceSaving summary
// with k counters minus its minimum equals the Misra-Gries summary with
// k-1 counters over the same stream.
func TestIsomorphism(t *testing.T) {
	const n = 80000
	for _, k := range []int{2, 5, 17, 64} {
		stream := gen.NewZipf(2000, 1.3, uint64(k)*31).Stream(n)
		ss := New(k)
		mgS := mg.New(k - 1)
		if k == 1 {
			continue
		}
		for _, x := range stream {
			ss.Update(x, 1)
			mgS.Update(x, 1)
		}
		iso := ss.ToMisraGries()
		want := mgS.Counters()
		got := iso.Counters()
		if len(want) != len(got) {
			t.Fatalf("k=%d: iso has %d counters, MG has %d\niso: %v\nmg:  %v",
				k, len(got), len(want), got, want)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("k=%d: counter %d: iso %v != mg %v", k, i, got[i], want[i])
			}
		}
		if iso.N() != mgS.N() {
			t.Fatalf("k=%d: iso N=%d, mg N=%d", k, iso.N(), mgS.N())
		}
	}
}

// Low-error merge must produce at most k counters, each with a valid
// certificate against the combined counts.
func TestMergeLowErrorCertificates(t *testing.T) {
	a, b := goldenInputs(t)
	combined := CombinedCounters(a, b)
	byItem := make(map[core.Item]uint64)
	for _, c := range combined {
		byItem[c.Item] = c.Count
	}
	m, err := MergedLowError(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range m.States() {
		cv := byItem[st.Item]
		if st.Count < cv {
			t.Errorf("item %d: merged %d below combined %d", st.Item, st.Count, cv)
		}
		if st.Count-cv > st.Eps {
			t.Errorf("item %d: overcount %d exceeds certificate %d", st.Item, st.Count-cv, st.Eps)
		}
	}
}
