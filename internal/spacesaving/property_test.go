package spacesaving

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/mg"
)

func buildStream(raw []byte) []core.Counter {
	out := make([]core.Counter, 0, len(raw))
	for i := 0; i+1 < len(raw); i += 2 {
		out = append(out, core.Counter{
			Item:  core.Item(raw[i] % 32),
			Count: uint64(raw[i+1]%16) + 1,
		})
	}
	return out
}

// Property: fresh SpaceSaving conserves total weight, monitored
// estimates never underestimate, and intervals contain the truth.
func TestPropertyStreamGuarantee(t *testing.T) {
	f := func(raw []byte, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		s := New(k)
		truth := exact.NewFreqTable()
		for _, u := range buildStream(raw) {
			s.Update(u.Item, u.Count)
			truth.Add(u.Item, u.Count)
		}
		if core.TotalCount(s.Counters()) != s.N() {
			return false
		}
		if s.Len() > k || s.UnderBound() != 0 {
			return false
		}
		if err := s.checkInvariants(); err != nil {
			return false
		}
		for _, c := range truth.Counters() {
			e := s.Estimate(c.Item)
			if e.Value != 0 && e.Value < c.Count {
				return false // monitored items must not undercount
			}
			if !e.Contains(c.Count) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: both merges keep intervals correct for any stream split.
func TestPropertyMergeGuarantee(t *testing.T) {
	f := func(raw []byte, kRaw, cut uint8, lowError bool) bool {
		k := int(kRaw%8) + 2
		stream := buildStream(raw)
		split := 0
		if len(stream) > 0 {
			split = int(cut) % (len(stream) + 1)
		}
		a, b := New(k), New(k)
		truth := exact.NewFreqTable()
		for i, u := range stream {
			if i < split {
				a.Update(u.Item, u.Count)
			} else {
				b.Update(u.Item, u.Count)
			}
			truth.Add(u.Item, u.Count)
		}
		var err error
		if lowError {
			err = a.MergeLowError(b)
		} else {
			err = a.Merge(b)
		}
		if err != nil {
			return false
		}
		if a.N() != truth.N() || a.Len() > k {
			return false
		}
		if err := a.checkInvariants(); err != nil {
			return false
		}
		for _, c := range truth.Counters() {
			if !a.Estimate(c.Item).Contains(c.Count) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: the isomorphism to Misra–Gries holds on arbitrary streams
// (unit weights; the theorem is stated for per-item arrivals).
func TestPropertyIsomorphism(t *testing.T) {
	f := func(raw []byte, kRaw uint8) bool {
		k := int(kRaw%8) + 2
		ss := New(k)
		mgS, err := isoMG(k)
		if err != nil {
			return false
		}
		for _, b := range raw {
			x := core.Item(b % 32)
			ss.Update(x, 1)
			mgS.Update(x, 1)
		}
		want := mgS.Counters()
		got := ss.ToMisraGries().Counters()
		if len(want) != len(got) {
			return false
		}
		for i := range want {
			if want[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// isoMG builds the MG counterpart with k-1 counters.
func isoMG(k int) (*mg.Summary, error) {
	return mg.FromCounters(k-1, 0, 0, nil)
}
