package spacesaving

import "repro/internal/core"

// UpdateBatch adds one occurrence of every item in xs. The resulting
// state is identical to calling Update(x, 1) for each x in order — the
// stream-summary structure is already O(1) per unit update, so the
// batch path's win is amortizing call and validation overhead.
//
//sketch:hotpath
func (s *Summary) UpdateBatch(xs []core.Item) {
	for _, x := range xs {
		s.update(x, 1)
	}
	debugAssert(s)
}

// UpdateBatchWeighted adds Count occurrences of every Item in ws, the
// weighted variant of UpdateBatch. All weights must be >= 1.
//
//sketch:hotpath
func (s *Summary) UpdateBatchWeighted(ws []core.Counter) {
	for _, c := range ws {
		if c.Count == 0 {
			panic("spacesaving: zero-weight update")
		}
	}
	for _, c := range ws {
		s.update(c.Item, c.Count)
	}
	debugAssert(s)
}
