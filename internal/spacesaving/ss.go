// Package spacesaving implements the SpaceSaving heavy-hitter summary
// of Metwally, Agrawal and El Abbadi with the "stream-summary" bucket
// structure (worst-case O(1) unit updates), plus its merge operations.
//
// A Summary with k counters processing a stream of total weight n
// guarantees, for every item x with true frequency f(x):
//
//	f(x) ≤ Estimate(x).Value + under   and   Estimate(x).Value − eps(x) ≤ f(x)
//
// where eps(x) is the per-counter overestimation certificate and
// `under` accumulates only through merges (a fresh summary never
// undercounts). The minimum counter is at most n/k.
//
// PODS'12 (Agarwal et al.) proves SpaceSaving is isomorphic to
// Misra–Gries — subtracting the minimum counter from a full SpaceSaving
// summary with k counters yields exactly the MG summary with k−1
// counters — and is therefore mergeable with the same guarantees. Both
// the PODS'12 merge (via the isomorphism) and the low-total-error merge
// (Algorithm 3 of the supplied follow-up text) are provided.
//
// The stream-summary structure is stored flat, in structure-of-arrays
// layout: items, counts and the eps certificates are three views of a
// single contiguous backing slice, entries and buckets link to each
// other by int32 index instead of pointer, and the item lookup is an
// open-addressed hash table over a dense slot space — the
// cache-conscious frequent-items layout of Anderson et al. (see
// PAPERS.md). The update algorithm itself is the classic one; only the
// memory it walks changed.
package spacesaving

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/core"
)

// fibMul is the 64-bit Fibonacci hashing multiplier; taking the high
// bits of key*fibMul spreads dense and strided item spaces evenly
// across power-of-two tables.
const fibMul = 0x9E3779B97F4A7C15

// nilIdx is the index-space null for entry and bucket links.
const nilIdx = int32(-1)

// Summary is a SpaceSaving summary. The zero value is not usable; use
// New. Summaries are not safe for concurrent use.
//
// Entries live in dense slots [0, live): items, counts and eps are
// equal-length views of one backing allocation, and ebkt/eprev/enext
// carry the stream-summary links (bucket membership and FIFO order
// within the bucket). Eviction reuses the victim's slot, so the slot
// space never fragments. Buckets are a parallel set of arrays linked
// ascending by count through bprev/bnext and recycled through a free
// list.
type Summary struct {
	k     int
	n     uint64
	under uint64 // accumulated possible undercount, from merge minima subtractions and prunes

	items  []uint64
	counts []uint64
	eps    []uint64 // overestimation certificate: count − f(item) <= eps (+merge terms)
	ebkt   []int32
	eprev  []int32
	enext  []int32
	live   int

	bcnt  []uint64
	bhead []int32 // eviction order: head is the oldest entry
	btail []int32
	bprev []int32
	bnext []int32
	bfree []int32
	minB  int32 // ascending bucket list
	maxB  int32

	// item -> entry slot open-addressed index; hslot[i] == nilIdx
	// marks an empty hash slot.
	hkeys  []uint64
	hslot  []int32
	hmask  uint64
	hshift uint
}

// New returns an empty summary with capacity k >= 1 counters. The
// entry arrays are allocated eagerly up to a cap and grow on demand,
// so very large k does not commit memory before items arrive.
func New(k int) *Summary {
	if k < 1 {
		panic("spacesaving: k must be >= 1")
	}
	occ := k
	if occ > 1<<12 {
		occ = 1 << 12
	}
	return newSized(k, occ)
}

// newSized returns a summary whose entry arrays hold occ monitored
// items before growing.
func newSized(k, occ int) *Summary {
	s := &Summary{k: k, minB: nilIdx, maxB: nilIdx}
	if occ < 16 {
		occ = 16
	}
	if occ > k {
		occ = k
	}
	s.growTo(occ)
	return s
}

// growTo reallocates the entry arrays for cap monitored items,
// preserving contents, and rebuilds the hash index at load <= 1/2.
func (s *Summary) growTo(cap int) {
	ubuf := make([]uint64, 3*cap)
	lbuf := make([]int32, 3*cap)
	copy(ubuf[0*cap:], s.items)
	copy(ubuf[1*cap:], s.counts)
	copy(ubuf[2*cap:], s.eps)
	copy(lbuf[0*cap:], s.ebkt)
	copy(lbuf[1*cap:], s.eprev)
	copy(lbuf[2*cap:], s.enext)
	s.items = ubuf[0*cap : 1*cap : 1*cap]
	s.counts = ubuf[1*cap : 2*cap : 2*cap]
	s.eps = ubuf[2*cap:]
	s.ebkt = lbuf[0*cap : 1*cap : 1*cap]
	s.eprev = lbuf[1*cap : 2*cap : 2*cap]
	s.enext = lbuf[2*cap:]

	hsize := 16
	for hsize < 2*cap {
		hsize <<= 1
	}
	s.hkeys = make([]uint64, hsize)
	s.hslot = make([]int32, hsize)
	for i := range s.hslot {
		s.hslot[i] = nilIdx
	}
	s.hmask = uint64(hsize - 1)
	s.hshift = uint(64 - bits.TrailingZeros(uint(hsize)))
	for e := 0; e < s.live; e++ {
		s.hinsert(s.items[e], int32(e))
	}
}

// growEntries doubles the entry capacity, bounded by k.
func (s *Summary) growEntries() {
	cap := len(s.items) * 2
	if cap > s.k {
		cap = s.k
	}
	s.growTo(cap)
}

// hfind returns the entry slot monitoring key, or nilIdx.
func (s *Summary) hfind(key uint64) int32 {
	i := (key * fibMul) >> s.hshift
	for {
		e := s.hslot[i]
		if e == nilIdx {
			return nilIdx
		}
		if s.hkeys[i] == key {
			return e
		}
		i = (i + 1) & s.hmask
	}
}

// hinsert indexes key -> slot; key must be absent.
func (s *Summary) hinsert(key uint64, slot int32) {
	i := (key * fibMul) >> s.hshift
	for s.hslot[i] != nilIdx {
		i = (i + 1) & s.hmask
	}
	s.hkeys[i] = key
	s.hslot[i] = slot
}

// hdelete removes key from the index with backward-shift deletion, so
// probe chains stay tombstone-free.
func (s *Summary) hdelete(key uint64) {
	mask := s.hmask
	i := (key * fibMul) >> s.hshift
	for {
		if s.hslot[i] == nilIdx {
			return
		}
		if s.hkeys[i] == key {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if s.hslot[j] == nilIdx {
			break
		}
		// Move j's occupant back to the hole iff its home position
		// precedes the hole in probe order (the occupant stays
		// reachable either way, but the hole must not split a chain).
		h := (s.hkeys[j] * fibMul) >> s.hshift
		if ((j - h) & mask) >= ((j - i) & mask) {
			s.hkeys[i] = s.hkeys[j]
			s.hslot[i] = s.hslot[j]
			i = j
		}
	}
	s.hslot[i] = nilIdx
}

// NewEpsilon returns a summary sized for overestimation at most eps*n,
// i.e. k = ceil(1/eps) counters.
func NewEpsilon(eps float64) *Summary {
	if eps <= 0 || eps >= 1 {
		panic("spacesaving: eps must be in (0, 1)")
	}
	k := int(1/eps + 0.9999999)
	if k < 1 {
		k = 1
	}
	return New(k)
}

// K returns the counter capacity.
func (s *Summary) K() int { return s.k }

// N returns the total weight summarized, including merged-in weight.
func (s *Summary) N() uint64 { return s.n }

// Len returns the number of monitored items (<= K).
func (s *Summary) Len() int { return s.live }

// UnderBound returns the accumulated possible undercount: for every
// item, f(x) <= Estimate(x).Value + UnderBound() holds for monitored
// items, and f(x) <= MinCount() + UnderBound() for unmonitored ones.
// It is zero for a summary that has never been merged.
func (s *Summary) UnderBound() uint64 { return s.under }

// MinCount returns the smallest monitored count (0 when empty).
func (s *Summary) MinCount() uint64 {
	if s.minB == nilIdx {
		return 0
	}
	return s.bcnt[s.minB]
}

// Update adds w >= 1 occurrences of x. Unit-weight updates are O(1);
// weight-w updates cost O(buckets skipped).
func (s *Summary) Update(x core.Item, w uint64) {
	if w == 0 {
		panic("spacesaving: zero-weight update")
	}
	s.update(x, w)
	debugAssertSampled(s)
}

// update is Update without the zero-weight check, shared with the
// batch path.
func (s *Summary) update(x core.Item, w uint64) {
	s.n += w
	key := uint64(x)
	if e := s.hfind(key); e != nilIdx {
		s.increase(e, w)
		return
	}
	if s.live < s.k {
		if s.live == len(s.items) {
			s.growEntries()
		}
		e := int32(s.live)
		s.live++
		s.items[e] = key
		s.counts[e] = w
		s.eps[e] = 0
		s.hinsert(key, e)
		s.placeFrom(s.minB, e, w)
		return
	}
	// Evict the oldest entry of the minimum bucket: the incoming item
	// inherits its count as the classic SpaceSaving overestimate. The
	// victim's dense slot is reused in place.
	vb := s.minB
	victim := s.bhead[vb]
	minCount := s.bcnt[vb]
	s.unlink(victim)
	s.hdelete(s.items[victim])
	s.items[victim] = key
	s.counts[victim] = minCount + w
	s.eps[victim] = minCount
	s.hinsert(key, victim)
	s.placeFrom(s.minB, victim, minCount+w)
}

// increase moves e forward by w.
func (s *Summary) increase(e int32, w uint64) {
	start := s.ebkt[e]
	cnt := s.counts[e] + w
	s.counts[e] = cnt
	s.unlinkKeepBucket(e, start)
	from := start
	if s.bhead[start] == nilIdx { // bucket emptied; start search from neighbours
		from = s.removeEmptyBucket(start)
	}
	s.placeFrom(from, e, cnt)
}

// placeFrom inserts e (with count cnt) into the bucket with that
// count, searching forward from the hint bucket (which must not be
// preceded by any bucket with count < cnt; nilIdx searches from the
// minimum).
func (s *Summary) placeFrom(hint, e int32, cnt uint64) {
	b := hint
	if b == nilIdx {
		b = s.minB
	}
	after := nilIdx // last bucket with count < cnt
	for b != nilIdx && s.bcnt[b] < cnt {
		after = b
		b = s.bnext[b]
	}
	if b != nilIdx && s.bcnt[b] == cnt {
		s.appendEntry(b, e)
		return
	}
	// Insert a new bucket between after and b.
	nb := s.allocBucket(cnt)
	s.bprev[nb] = after
	s.bnext[nb] = b
	if after != nilIdx {
		s.bnext[after] = nb
	} else {
		s.minB = nb
	}
	if b != nilIdx {
		s.bprev[b] = nb
	} else {
		s.maxB = nb
	}
	s.appendEntry(nb, e)
}

// allocBucket takes a bucket slot from the free list, or extends the
// bucket arrays.
func (s *Summary) allocBucket(count uint64) int32 {
	if n := len(s.bfree); n > 0 {
		b := s.bfree[n-1]
		s.bfree = s.bfree[:n-1]
		s.bcnt[b] = count
		s.bhead[b], s.btail[b] = nilIdx, nilIdx
		return b
	}
	b := int32(len(s.bcnt))
	s.bcnt = append(s.bcnt, count)
	s.bhead = append(s.bhead, nilIdx)
	s.btail = append(s.btail, nilIdx)
	s.bprev = append(s.bprev, nilIdx)
	s.bnext = append(s.bnext, nilIdx)
	return b
}

func (s *Summary) appendEntry(b, e int32) {
	t := s.btail[b]
	s.ebkt[e] = b
	s.eprev[e] = t
	s.enext[e] = nilIdx
	if t != nilIdx {
		s.enext[t] = e
	} else {
		s.bhead[b] = e
	}
	s.btail[b] = e
}

// unlink removes e from its bucket and drops the bucket if emptied.
func (s *Summary) unlink(e int32) {
	b := s.ebkt[e]
	s.unlinkKeepBucket(e, b)
	if s.bhead[b] == nilIdx {
		s.removeEmptyBucket(b)
	}
}

func (s *Summary) unlinkKeepBucket(e, b int32) {
	p, nx := s.eprev[e], s.enext[e]
	if p != nilIdx {
		s.enext[p] = nx
	} else {
		s.bhead[b] = nx
	}
	if nx != nilIdx {
		s.eprev[nx] = p
	} else {
		s.btail[b] = p
	}
	s.eprev[e], s.enext[e], s.ebkt[e] = nilIdx, nilIdx, nilIdx
}

// removeEmptyBucket unlinks b, recycles its slot, and returns its
// predecessor (the new search hint), which may be nilIdx.
func (s *Summary) removeEmptyBucket(b int32) int32 {
	p, nx := s.bprev[b], s.bnext[b]
	if p != nilIdx {
		s.bnext[p] = nx
	} else {
		s.minB = nx
	}
	if nx != nilIdx {
		s.bprev[nx] = p
	} else {
		s.maxB = p
	}
	s.bfree = append(s.bfree, b)
	return p
}

// Estimate answers a point query. For monitored items the interval is
// [count−eps, count+under]; for unmonitored items [0, min+under].
func (s *Summary) Estimate(x core.Item) core.Estimate {
	if e := s.hfind(uint64(x)); e != nilIdx {
		cnt, ep := s.counts[e], s.eps[e]
		lo := uint64(0)
		if cnt > ep {
			lo = cnt - ep
		}
		return core.Estimate{Value: cnt, Lower: lo, Upper: cnt + s.under}
	}
	return core.Estimate{Value: 0, Lower: 0, Upper: s.MinCount() + s.under}
}

// Counters returns the monitored (item, count) pairs in ascending count
// order (ties by item).
func (s *Summary) Counters() []core.Counter {
	out := make([]core.Counter, 0, s.live)
	for e := 0; e < s.live; e++ {
		out = append(out, core.Counter{Item: core.Item(s.items[e]), Count: s.counts[e]})
	}
	core.SortCountersAsc(out)
	return out
}

// CounterState is a Counter extended with the per-counter
// overestimation certificate; the interchange format for merges and
// the codec.
type CounterState struct {
	Item  core.Item
	Count uint64
	Eps   uint64
}

// States returns all counter states in ascending (count, item) order.
func (s *Summary) States() []CounterState {
	out := make([]CounterState, 0, s.live)
	for e := 0; e < s.live; e++ {
		out = append(out, CounterState{Item: core.Item(s.items[e]), Count: s.counts[e], Eps: s.eps[e]})
	}
	sortStates(out)
	return out
}

func sortStates(cs []CounterState) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Count != cs[j].Count {
			return cs[i].Count < cs[j].Count
		}
		return cs[i].Item < cs[j].Item
	})
}

// HeavyHitters returns every monitored item whose estimate interval
// can reach threshold (count+under >= threshold) in descending count
// order; by the SpaceSaving guarantee this includes every item with
// true frequency >= threshold provided threshold > MinCount()+under.
func (s *Summary) HeavyHitters(threshold uint64) []core.Counter {
	var out []core.Counter
	for e := 0; e < s.live; e++ {
		if s.counts[e]+s.under >= threshold {
			out = append(out, core.Counter{Item: core.Item(s.items[e]), Count: s.counts[e]})
		}
	}
	core.SortCountersDesc(out)
	return out
}

// Clone returns a deep copy.
func (s *Summary) Clone() *Summary {
	c := newSized(s.k, s.live)
	c.n = s.n
	c.under = s.under
	c.rebuild(s.States())
	return c
}

// Reset restores the summary to its freshly-constructed state, keeping
// its allocations.
func (s *Summary) Reset() {
	s.n = 0
	s.under = 0
	s.clearStructure()
}

// clearStructure empties the entry, bucket and hash storage without
// shrinking it. n and under are left alone.
func (s *Summary) clearStructure() {
	s.live = 0
	s.minB, s.maxB = nilIdx, nilIdx
	s.bcnt = s.bcnt[:0]
	s.bhead = s.bhead[:0]
	s.btail = s.btail[:0]
	s.bprev = s.bprev[:0]
	s.bnext = s.bnext[:0]
	s.bfree = s.bfree[:0]
	for i := range s.hslot {
		s.hslot[i] = nilIdx
	}
}

// rebuild replaces the structure contents with the given states, which
// must be sorted ascending and fit within k.
func (s *Summary) rebuild(states []CounterState) {
	s.clearStructure()
	if len(states) > len(s.items) {
		s.growTo(len(states))
	}
	hint := nilIdx
	for _, st := range states {
		e := int32(s.live)
		s.live++
		s.items[e] = uint64(st.Item)
		s.counts[e] = st.Count
		s.eps[e] = st.Eps
		s.hinsert(uint64(st.Item), e)
		s.placeFrom(hint, e, st.Count)
		hint = s.ebkt[e]
	}
}

// FromStates reconstructs a summary from explicit counter states, used
// by the codec and by tests replaying the paper's worked examples. The
// structure is sized for the given states (not k), so decoding a frame
// allocates in proportion to the payload.
func FromStates(k int, n, under uint64, states []CounterState) (*Summary, error) {
	if k < 1 {
		return nil, fmt.Errorf("spacesaving: k must be >= 1, have %d", k)
	}
	if len(states) > k {
		return nil, fmt.Errorf("spacesaving: %d counters exceed k=%d", len(states), k)
	}
	seen := make(map[core.Item]bool, len(states))
	for _, st := range states {
		if st.Count == 0 {
			return nil, fmt.Errorf("spacesaving: zero count for item %d", st.Item)
		}
		if seen[st.Item] {
			return nil, fmt.Errorf("spacesaving: duplicate item %d", st.Item)
		}
		seen[st.Item] = true
	}
	s := newSized(k, len(states))
	s.n = n
	s.under = under
	cp := make([]CounterState, len(states))
	copy(cp, states)
	sortStates(cp)
	s.rebuild(cp)
	return s, nil
}

// checkInvariants validates the internal structure; used by tests.
func (s *Summary) checkInvariants() error {
	seen := 0
	prev := nilIdx
	for b := s.minB; b != nilIdx; b = s.bnext[b] {
		if s.bprev[b] != prev {
			return fmt.Errorf("bucket back-link broken at count %d", s.bcnt[b])
		}
		if prev != nilIdx && s.bcnt[prev] >= s.bcnt[b] {
			return fmt.Errorf("buckets not ascending: %d then %d", s.bcnt[prev], s.bcnt[b])
		}
		if s.bhead[b] == nilIdx {
			return fmt.Errorf("empty bucket with count %d", s.bcnt[b])
		}
		prevE := nilIdx
		for e := s.bhead[b]; e != nilIdx; e = s.enext[e] {
			if s.ebkt[e] != b {
				return fmt.Errorf("entry %d points to wrong bucket", s.items[e])
			}
			if s.eprev[e] != prevE {
				return fmt.Errorf("entry back-link broken at item %d", s.items[e])
			}
			if s.counts[e] != s.bcnt[b] {
				return fmt.Errorf("entry %d count %d in bucket %d", s.items[e], s.counts[e], s.bcnt[b])
			}
			if int(e) >= s.live {
				return fmt.Errorf("entry slot %d beyond live=%d", e, s.live)
			}
			if s.hfind(s.items[e]) != e {
				return fmt.Errorf("hash does not resolve item %d to slot %d", s.items[e], e)
			}
			seen++
			prevE = e
		}
		if s.btail[b] != prevE {
			return fmt.Errorf("bucket tail wrong at count %d", s.bcnt[b])
		}
		prev = b
	}
	if s.maxB != prev {
		return fmt.Errorf("maxB wrong")
	}
	if seen != s.live {
		return fmt.Errorf("bucket entries %d != live %d", seen, s.live)
	}
	occupied := 0
	for _, sl := range s.hslot {
		if sl != nilIdx {
			occupied++
		}
	}
	if occupied != s.live {
		return fmt.Errorf("hash occupancy %d != live %d", occupied, s.live)
	}
	if s.live > s.k {
		return fmt.Errorf("size %d exceeds k=%d", s.live, s.k)
	}
	return nil
}

var _ core.CounterSummary = (*Summary)(nil)
