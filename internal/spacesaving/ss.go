// Package spacesaving implements the SpaceSaving heavy-hitter summary
// of Metwally, Agrawal and El Abbadi with the "stream-summary" bucket
// structure (worst-case O(1) unit updates), plus its merge operations.
//
// A Summary with k counters processing a stream of total weight n
// guarantees, for every item x with true frequency f(x):
//
//	f(x) ≤ Estimate(x).Value + under   and   Estimate(x).Value − eps(x) ≤ f(x)
//
// where eps(x) is the per-counter overestimation certificate and
// `under` accumulates only through merges (a fresh summary never
// undercounts). The minimum counter is at most n/k.
//
// PODS'12 (Agarwal et al.) proves SpaceSaving is isomorphic to
// Misra–Gries — subtracting the minimum counter from a full SpaceSaving
// summary with k counters yields exactly the MG summary with k−1
// counters — and is therefore mergeable with the same guarantees. Both
// the PODS'12 merge (via the isomorphism) and the low-total-error merge
// (Algorithm 3 of the supplied follow-up text) are provided.
package spacesaving

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// entry is one monitored item, linked into its count bucket.
type entry struct {
	item  core.Item
	count uint64
	eps   uint64 // overestimation certificate: count − f(item) <= eps (+merge terms)
	b     *bucket
	prev  *entry
	next  *entry
}

// bucket groups all entries sharing one count, in a doubly-linked list
// of buckets kept in ascending count order. This is the stream-summary
// structure: unit-weight updates move an entry at most one bucket
// forward, so Update is O(1).
type bucket struct {
	count uint64
	head  *entry // eviction order: head is the oldest entry
	tail  *entry
	prev  *bucket
	next  *bucket
}

// Summary is a SpaceSaving summary. The zero value is not usable; use
// New. Summaries are not safe for concurrent use.
type Summary struct {
	k       int
	n       uint64
	under   uint64 // accumulated possible undercount, from merge minima subtractions and prunes
	entries map[core.Item]*entry
	minB    *bucket // ascending bucket list
	maxB    *bucket
}

// New returns an empty summary with capacity k >= 1 counters.
func New(k int) *Summary {
	if k < 1 {
		panic("spacesaving: k must be >= 1")
	}
	return &Summary{k: k, entries: make(map[core.Item]*entry, k)}
}

// NewEpsilon returns a summary sized for overestimation at most eps*n,
// i.e. k = ceil(1/eps) counters.
func NewEpsilon(eps float64) *Summary {
	if eps <= 0 || eps >= 1 {
		panic("spacesaving: eps must be in (0, 1)")
	}
	k := int(1/eps + 0.9999999)
	if k < 1 {
		k = 1
	}
	return New(k)
}

// K returns the counter capacity.
func (s *Summary) K() int { return s.k }

// N returns the total weight summarized, including merged-in weight.
func (s *Summary) N() uint64 { return s.n }

// Len returns the number of monitored items (<= K).
func (s *Summary) Len() int { return len(s.entries) }

// UnderBound returns the accumulated possible undercount: for every
// item, f(x) <= Estimate(x).Value + UnderBound() holds for monitored
// items, and f(x) <= MinCount() + UnderBound() for unmonitored ones.
// It is zero for a summary that has never been merged.
func (s *Summary) UnderBound() uint64 { return s.under }

// MinCount returns the smallest monitored count (0 when empty).
func (s *Summary) MinCount() uint64 {
	if s.minB == nil {
		return 0
	}
	return s.minB.count
}

// Update adds w >= 1 occurrences of x. Unit-weight updates are O(1);
// weight-w updates cost O(buckets skipped).
func (s *Summary) Update(x core.Item, w uint64) {
	if w == 0 {
		panic("spacesaving: zero-weight update")
	}
	s.update(x, w)
	debugAssertSampled(s)
}

// update is Update without the zero-weight check, shared with the
// batch path.
func (s *Summary) update(x core.Item, w uint64) {
	s.n += w
	if e, ok := s.entries[x]; ok {
		s.increase(e, w)
		return
	}
	if len(s.entries) < s.k {
		e := &entry{item: x, count: w}
		s.entries[x] = e
		s.placeFrom(s.minB, e)
		return
	}
	// Evict the oldest entry of the minimum bucket: the incoming item
	// inherits its count as the classic SpaceSaving overestimate.
	victim := s.minB.head
	minCount := s.minB.count
	s.unlink(victim)
	delete(s.entries, victim.item)
	e := &entry{item: x, count: minCount + w, eps: minCount}
	s.entries[x] = e
	s.placeFrom(s.minB, e)
}

// increase moves e forward by w.
func (s *Summary) increase(e *entry, w uint64) {
	start := e.b
	e.count += w
	s.unlinkKeepBucket(e, start)
	from := start
	if from.head == nil { // bucket emptied; start search from neighbours
		from = s.removeEmptyBucket(start)
	}
	s.placeFrom(from, e)
}

// placeFrom inserts e into the bucket with count e.count, searching
// forward from the hint bucket (which must have count <= e.count, or be
// nil to search from the minimum).
func (s *Summary) placeFrom(hint *bucket, e *entry) {
	b := hint
	if b == nil {
		b = s.minB
	}
	var after *bucket // last bucket with count < e.count
	for b != nil && b.count < e.count {
		after = b
		b = b.next
	}
	if b != nil && b.count == e.count {
		s.appendEntry(b, e)
		return
	}
	// Insert a new bucket between after and b.
	nb := &bucket{count: e.count, prev: after, next: b}
	if after != nil {
		after.next = nb
	} else {
		s.minB = nb
	}
	if b != nil {
		b.prev = nb
	} else {
		s.maxB = nb
	}
	s.appendEntry(nb, e)
}

func (s *Summary) appendEntry(b *bucket, e *entry) {
	e.b = b
	e.prev = b.tail
	e.next = nil
	if b.tail != nil {
		b.tail.next = e
	} else {
		b.head = e
	}
	b.tail = e
}

// unlink removes e from its bucket and drops the bucket if emptied.
func (s *Summary) unlink(e *entry) {
	b := e.b
	s.unlinkKeepBucket(e, b)
	if b.head == nil {
		s.removeEmptyBucket(b)
	}
}

func (s *Summary) unlinkKeepBucket(e *entry, b *bucket) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		b.tail = e.prev
	}
	e.prev, e.next, e.b = nil, nil, nil
}

// removeEmptyBucket unlinks b and returns its predecessor (the new
// search hint), which may be nil.
func (s *Summary) removeEmptyBucket(b *bucket) *bucket {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.minB = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	} else {
		s.maxB = b.prev
	}
	return b.prev
}

// Estimate answers a point query. For monitored items the interval is
// [count−eps, count+under]; for unmonitored items [0, min+under].
func (s *Summary) Estimate(x core.Item) core.Estimate {
	if e, ok := s.entries[x]; ok {
		lo := uint64(0)
		if e.count > e.eps {
			lo = e.count - e.eps
		}
		return core.Estimate{Value: e.count, Lower: lo, Upper: e.count + s.under}
	}
	return core.Estimate{Value: 0, Lower: 0, Upper: s.MinCount() + s.under}
}

// Counters returns the monitored (item, count) pairs in ascending count
// order (ties by item).
func (s *Summary) Counters() []core.Counter {
	out := make([]core.Counter, 0, len(s.entries))
	for b := s.minB; b != nil; b = b.next {
		for e := b.head; e != nil; e = e.next {
			out = append(out, core.Counter{Item: e.item, Count: e.count})
		}
	}
	core.SortCountersAsc(out)
	return out
}

// CounterState is a Counter extended with the per-counter
// overestimation certificate; the interchange format for merges and
// the codec.
type CounterState struct {
	Item  core.Item
	Count uint64
	Eps   uint64
}

// States returns all counter states in ascending (count, item) order.
func (s *Summary) States() []CounterState {
	out := make([]CounterState, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, CounterState{Item: e.item, Count: e.count, Eps: e.eps})
	}
	sortStates(out)
	return out
}

func sortStates(cs []CounterState) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Count != cs[j].Count {
			return cs[i].Count < cs[j].Count
		}
		return cs[i].Item < cs[j].Item
	})
}

// HeavyHitters returns every monitored item whose estimate interval
// can reach threshold (count+under >= threshold) in descending count
// order; by the SpaceSaving guarantee this includes every item with
// true frequency >= threshold provided threshold > MinCount()+under.
func (s *Summary) HeavyHitters(threshold uint64) []core.Counter {
	var out []core.Counter
	for _, e := range s.entries {
		if e.count+s.under >= threshold {
			out = append(out, core.Counter{Item: e.item, Count: e.count})
		}
	}
	core.SortCountersDesc(out)
	return out
}

// Clone returns a deep copy.
func (s *Summary) Clone() *Summary {
	c := New(s.k)
	c.n = s.n
	c.under = s.under
	c.rebuild(s.States())
	return c
}

// Reset restores the summary to its freshly-constructed state.
func (s *Summary) Reset() {
	s.n = 0
	s.under = 0
	clear(s.entries)
	s.minB, s.maxB = nil, nil
}

// rebuild replaces the structure contents with the given states, which
// must be sorted ascending and fit within k.
func (s *Summary) rebuild(states []CounterState) {
	clear(s.entries)
	s.minB, s.maxB = nil, nil
	hint := (*bucket)(nil)
	for _, st := range states {
		e := &entry{item: st.Item, count: st.Count, eps: st.Eps}
		s.entries[st.Item] = e
		s.placeFrom(hint, e)
		hint = e.b
	}
}

// FromStates reconstructs a summary from explicit counter states, used
// by the codec and by tests replaying the paper's worked examples.
func FromStates(k int, n, under uint64, states []CounterState) (*Summary, error) {
	if k < 1 {
		return nil, fmt.Errorf("spacesaving: k must be >= 1, have %d", k)
	}
	if len(states) > k {
		return nil, fmt.Errorf("spacesaving: %d counters exceed k=%d", len(states), k)
	}
	seen := make(map[core.Item]bool, len(states))
	for _, st := range states {
		if st.Count == 0 {
			return nil, fmt.Errorf("spacesaving: zero count for item %d", st.Item)
		}
		if seen[st.Item] {
			return nil, fmt.Errorf("spacesaving: duplicate item %d", st.Item)
		}
		seen[st.Item] = true
	}
	s := New(k)
	s.n = n
	s.under = under
	cp := make([]CounterState, len(states))
	copy(cp, states)
	sortStates(cp)
	s.rebuild(cp)
	return s, nil
}

// checkInvariants validates the internal structure; used by tests.
func (s *Summary) checkInvariants() error {
	seen := 0
	var prev *bucket
	for b := s.minB; b != nil; b = b.next {
		if b.prev != prev {
			return fmt.Errorf("bucket back-link broken at count %d", b.count)
		}
		if prev != nil && prev.count >= b.count {
			return fmt.Errorf("buckets not ascending: %d then %d", prev.count, b.count)
		}
		if b.head == nil {
			return fmt.Errorf("empty bucket with count %d", b.count)
		}
		var prevE *entry
		for e := b.head; e != nil; e = e.next {
			if e.b != b {
				return fmt.Errorf("entry %d points to wrong bucket", e.item)
			}
			if e.prev != prevE {
				return fmt.Errorf("entry back-link broken at item %d", e.item)
			}
			if e.count != b.count {
				return fmt.Errorf("entry %d count %d in bucket %d", e.item, e.count, b.count)
			}
			if s.entries[e.item] != e {
				return fmt.Errorf("map does not point at entry %d", e.item)
			}
			seen++
			prevE = e
		}
		if b.tail != prevE {
			return fmt.Errorf("bucket tail wrong at count %d", b.count)
		}
		prev = b
	}
	if s.maxB != prev {
		return fmt.Errorf("maxB wrong")
	}
	if seen != len(s.entries) {
		return fmt.Errorf("bucket entries %d != map size %d", seen, len(s.entries))
	}
	if len(s.entries) > s.k {
		return fmt.Errorf("size %d exceeds k=%d", len(s.entries), s.k)
	}
	return nil
}

var _ core.CounterSummary = (*Summary)(nil)
