package spacesaving

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestMergeManyBasics(t *testing.T) {
	if _, err := MergeMany(nil); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := MergeMany([]*Summary{New(4), nil}); err == nil {
		t.Error("nil element accepted")
	}
	if _, err := MergeMany([]*Summary{New(4), New(8)}); err == nil {
		t.Error("mismatched k accepted")
	}
	a, b := New(4), New(4)
	a.Update(1, 5)
	b.Update(2, 3)
	m, err := MergeMany([]*Summary{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 8 || m.Estimate(1).Value != 5 || m.Estimate(2).Value != 3 {
		t.Fatal("two-way MergeMany wrong")
	}
	if a.N() != 5 || b.N() != 3 {
		t.Fatal("MergeMany modified inputs")
	}
	if err := m.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeManyGuarantee(t *testing.T) {
	const n = 120000
	const k = 33
	const sites = 24
	stream := gen.NewZipf(3000, 1.2, 7).Stream(n)
	truth := exact.FreqOf(stream)
	parts := gen.PartitionByHash(stream, sites, func(x core.Item) uint64 { return uint64(x) * 0x9e3779b1 })
	sums := make([]*Summary, sites)
	for i, p := range parts {
		sums[i] = New(k)
		for _, x := range p {
			sums[i].Update(x, 1)
		}
	}
	m, err := MergeMany(sums)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != n || m.Len() > k {
		t.Fatalf("N=%d Len=%d", m.N(), m.Len())
	}
	if err := m.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.UnderBound() > 2*n/uint64(k) {
		t.Errorf("under %d > 2n/k", m.UnderBound())
	}
	for _, c := range truth.Counters() {
		if e := m.Estimate(c.Item); !e.Contains(c.Count) {
			t.Fatalf("item %d: interval %v vs true %d", c.Item, e, c.Count)
		}
	}
}
