package spacesaving

import (
	"repro/internal/codec"
	"repro/internal/core"
)

// MarshalBinary encodes the summary in the library's framed wire
// format. It implements encoding.BinaryMarshaler. The payload is
// built in a pooled, pre-sized buffer.
func (s *Summary) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	states := s.States()
	// Worst-case uvarint sizing: header (k, n, under, len) plus three
	// uvarints per counter state.
	w.Grow(4*10 + len(states)*3*10)
	w.Int(s.k)
	w.Uint64(s.n)
	w.Uint64(s.under)
	w.Int(len(states))
	for _, st := range states {
		w.Uint64(uint64(st.Item))
		w.Uint64(st.Count)
		w.Uint64(st.Eps)
	}
	return codec.EncodeFrame(codec.KindSpaceSaving, w.Bytes()), nil
}

// UnmarshalBinary decodes a summary previously encoded with
// MarshalBinary, replacing the receiver's contents. It implements
// encoding.BinaryUnmarshaler.
func (s *Summary) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindSpaceSaving, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	k := r.Int()
	n := r.Uint64()
	under := r.Uint64()
	m := r.ArrayLen(3)
	states := make([]CounterState, 0, m)
	for i := 0; i < m; i++ {
		states = append(states, CounterState{
			Item:  core.Item(r.Uint64()),
			Count: r.Uint64(),
			Eps:   r.Uint64(),
		})
	}
	if err := r.Finish(); err != nil {
		return err
	}
	dec, err := FromStates(k, n, under, states)
	if err != nil {
		return err
	}
	*s = *dec
	return nil
}
