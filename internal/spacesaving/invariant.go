//go:build sanitize

package spacesaving

// sanitizeEnabled reports whether this build carries the runtime
// invariant layer (`go test -tags sanitize`). See DESIGN.md.
const sanitizeEnabled = true

// debugAssert panics if s violates the stream-summary structural
// invariants the O(1) update path and the SS↔MG isomorphism rely on:
// at most k monitored entries, a strictly ascending doubly-linked
// bucket list bracketed by minB/maxB, every entry in the bucket
// matching its count, and an entries map in exact bijection with the
// bucket lists. The walk itself is checkInvariants (shared with the
// unit tests); the sanitize layer turns its error into a panic so
// violations surface at the faulting Update/Merge, not at the next
// query.
func debugAssert(s *Summary) {
	if err := s.checkInvariants(); err != nil {
		panic("spacesaving: sanitize: " + err.Error())
	}
}

// debugAssertSampled runs debugAssert on a deterministic 1-in-64
// sample of calls (keyed on n), keeping the O(1) per-item path usable
// under the sanitize tag.
func debugAssertSampled(s *Summary) {
	if s.n&63 == 0 {
		debugAssert(s)
	}
}
