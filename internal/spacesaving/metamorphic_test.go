package spacesaving

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/mergetree"
)

// Property: the interval guarantee is independent of merge order, for
// both the PODS'12 merge and the low-total-error variant — the
// mergeability definition's universal quantifier over topologies.
func TestMetamorphicMergeOrder(t *testing.T) {
	f := func(raw []byte, kRaw, partsRaw uint8, lowError bool) bool {
		k := int(kRaw%8) + 2
		nParts := int(partsRaw%6) + 2
		parts := make([]*Summary, nParts)
		for i := range parts {
			parts[i] = New(k)
		}
		truth := exact.NewFreqTable()
		for i, u := range buildStream(raw) {
			parts[i%nParts].Update(u.Item, u.Count)
			truth.Add(u.Item, u.Count)
		}
		merge := func(dst, src *Summary) error { return dst.Merge(src) }
		if lowError {
			merge = func(dst, src *Summary) error { return dst.MergeLowError(src) }
		}
		err := mergetree.Metamorphic(parts, (*Summary).Clone, merge,
			func(topology string, m *Summary) error {
				if m.N() != truth.N() {
					return fmt.Errorf("n=%d, want %d", m.N(), truth.N())
				}
				if m.Len() > k {
					return fmt.Errorf("%d entries exceed k=%d", m.Len(), k)
				}
				if err := m.checkInvariants(); err != nil {
					return err
				}
				for _, c := range truth.Counters() {
					if e := m.Estimate(c.Item); !e.Contains(c.Count) {
						return fmt.Errorf("estimate %v misses truth %d for item %d", e, c.Count, c.Item)
					}
				}
				return nil
			})
		if err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
