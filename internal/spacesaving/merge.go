package spacesaving

import (
	"sync"

	"repro/internal/core"
	"repro/internal/mg"
)

// subtractMin applies the isomorphism pre-step: if the summary is full
// (all k counters in use) its minimum count is subtracted from every
// counter and zeroed counters are dropped, leaving at most k−1
// counters. The subtracted amount is returned; it becomes part of the
// merged summary's undercount bound. Summaries that are not full are
// left untouched (their counts are exact upper bounds already).
func subtractMin(states []CounterState, k int) ([]CounterState, uint64) {
	if len(states) < k || len(states) == 0 {
		return states, 0
	}
	mu := states[0].Count // states are sorted ascending
	out := states[:0]
	for _, st := range states {
		if st.Count > mu {
			st.Count -= mu
			out = append(out, st)
		}
	}
	return out, mu
}

// combinePool recycles the pointwise-sum accumulator map across
// merges, so the merge plane does not allocate a fresh map of size
// len(a)+len(b) on every fold.
var combinePool = sync.Pool{
	New: func() any {
		m := make(map[core.Item]CounterState, 64)
		return &m
	},
}

// getCombineMap borrows an empty accumulator map from combinePool;
// release clears it and returns it.
func getCombineMap() (m map[core.Item]CounterState, release func()) {
	mp := combinePool.Get().(*map[core.Item]CounterState)
	return *mp, func() {
		clear(*mp)
		combinePool.Put(mp)
	}
}

// combineStates sums two state lists pointwise (shared items add both
// counts and both certificates) and returns the result sorted
// ascending. Accumulation runs in a pooled map; only the returned
// slice is allocated.
func combineStates(a, b []CounterState) []CounterState {
	m, release := getCombineMap()
	defer release()
	for _, st := range a {
		m[st.Item] = st
	}
	for _, st := range b {
		if prev, ok := m[st.Item]; ok {
			prev.Count += st.Count
			prev.Eps += st.Eps
			m[st.Item] = prev
		} else {
			m[st.Item] = st
		}
	}
	out := make([]CounterState, 0, len(m))
	for _, st := range m {
		out = append(out, st)
	}
	sortStates(out)
	return out
}

// Merge folds other into s using the PODS'12 algorithm: both summaries
// are reduced to Misra–Gries form by subtracting their minimum counter
// (the SS↔MG isomorphism, Agarwal et al. §2), the counters are added
// pointwise, and if more than k−1 remain the (k)-th largest count is
// subtracted from all (the MG prune with capacity k−1). The result has
// at most k−1 counters and satisfies f(x) ∈ [Value−eps, Value+under]
// with under ≤ (n1+n2)·2/k in the worst case and ≤ ε(n1+n2) in the
// paper's accounting (minima subtraction is shared by all algorithms).
//
// other is not modified.
func (s *Summary) Merge(other *Summary) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if s.k != other.k {
		return core.ErrMismatchedK
	}
	sa, mua := subtractMin(s.States(), s.k)
	sb, mub := subtractMin(other.States(), other.k)
	combined := combineStates(sa, sb)
	s.n += other.n
	s.under += other.under + mua + mub

	c := s.k - 1 // MG capacity after the isomorphism
	if len(combined) > c && c > 0 {
		// Subtract the (c+1)-th largest = (len-c)-th smallest.
		cut := combined[len(combined)-c-1].Count
		pruned := combined[:0]
		for _, st := range combined {
			if st.Count > cut {
				st.Count -= cut
				pruned = append(pruned, st)
			}
		}
		combined = pruned
		s.under += cut
	} else if c == 0 {
		combined = combined[:0]
	}
	s.rebuild(combined)
	debugAssert(s)
	return nil
}

// Merged returns the PODS'12 merge of a and b without modifying either.
func Merged(a, b *Summary) (*Summary, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// MergeLowError folds other into s using Algorithm 3 of the supplied
// follow-up text (Cafaro–Tempesta–Pulimeno; their Theorem 4.5 evaluated
// at the final update step). After the same minima-subtraction pre-step
// as Merge, the combined counters C_1 … C_{2k−2} (ascending, front-
// padded with zeros) are turned into the exact summary a SpaceSaving
// run over them would produce:
//
//	e_j = C_{k−2+j}                    j = 1 … k
//	f_j = C_{k−2+j}                    j = 1, 2
//	f_j = C_{k−2+j} + C_{j−2}          j = 3 … k
//
// The result keeps k counters (one more than Merge) and its total
// error Σ C_{j}, j ≤ k−2, is strictly below the PODS'12 prune's
// (k−1)·C_{k−1} (the text's Lemma 4.6).
func (s *Summary) MergeLowError(other *Summary) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if s.k != other.k {
		return core.ErrMismatchedK
	}
	k := s.k
	sa, mua := subtractMin(s.States(), s.k)
	sb, mub := subtractMin(other.States(), other.k)
	combined := combineStates(sa, sb)
	s.n += other.n
	s.under += other.under + mua + mub

	if len(combined) < k {
		s.rebuild(combined)
		debugAssert(s)
		return nil
	}
	// Pad at the front with zero counters to exactly 2k−2 slots.
	pad := make([]CounterState, 2*k-2)
	copy(pad[2*k-2-len(combined):], combined)
	cntAt := func(i int) CounterState { return pad[i-1] } // 1-based C_i

	out := make([]CounterState, 0, k)
	for j := 1; j <= k; j++ {
		st := cntAt(k - 2 + j)
		if j >= 3 {
			add := cntAt(j - 2).Count
			st.Count += add
			st.Eps += add // the added occurrences are spurious for st.Item
		}
		if st.Count > 0 {
			out = append(out, st)
		}
	}
	sortStates(out)
	s.rebuild(out)
	debugAssert(s)
	return nil
}

// MergedLowError returns the low-total-error merge of a and b without
// modifying either.
func MergedLowError(a, b *Summary) (*Summary, error) {
	out := a.Clone()
	if err := out.MergeLowError(b); err != nil {
		return nil, err
	}
	return out, nil
}

// CombinedCounters returns the pointwise sum of the two summaries'
// counters *after* the minima-subtraction pre-step, in ascending order:
// the multiset S both merge algorithms build, and the reference the
// total-error metric is measured against (§5 of the supplied text).
func CombinedCounters(a, b *Summary) []core.Counter {
	sa, _ := subtractMin(a.States(), a.k)
	sb, _ := subtractMin(b.States(), b.k)
	combined := combineStates(sa, sb)
	out := make([]core.Counter, len(combined))
	for i, st := range combined {
		out[i] = core.Counter{Item: st.Item, Count: st.Count}
	}
	return out
}

// TotalMergeError measures the total error a merge committed relative
// to the combined summary: Σ over the merged summary's monitored items
// of |merged(x) − combined(x)|. SpaceSaving merges overestimate
// relative to the combined counters, so this is Σ merged(x) −
// combined(x) for the low-error merge; the PODS'12 merge underestimates
// and contributes combined(x) − merged(x). Matches the E_T metric of
// the supplied text's §5.2 (which neglects the shared minima terms).
func TotalMergeError(combined []core.Counter, merged *Summary) uint64 {
	byItem := make(map[core.Item]uint64, len(combined))
	for _, c := range combined {
		byItem[c.Item] = c.Count
	}
	var te uint64
	for _, c := range merged.Counters() {
		cv := byItem[c.Item]
		if c.Count >= cv {
			te += c.Count - cv
		} else {
			te += cv - c.Count
		}
	}
	return te
}

// ToMisraGries converts the summary to its isomorphic Misra–Gries form
// (Agarwal et al. §2): the minimum counter value is subtracted from all
// counters of a full summary, producing an MG summary with k−1
// counters over the same stream. The conversion preserves N and folds
// the subtracted minimum into the MG undercount certificate.
func (s *Summary) ToMisraGries() *mg.Summary {
	states, mu := subtractMin(s.States(), s.k)
	c := s.k - 1
	if c < 1 {
		c = 1
	}
	cs := make([]core.Counter, len(states))
	for i, st := range states {
		cs[i] = core.Counter{Item: st.Item, Count: st.Count}
	}
	out, err := mg.FromCounters(c, s.n, s.under+mu, cs)
	if err != nil {
		// Cannot happen: subtractMin leaves at most k-1 distinct,
		// positive counters.
		panic("spacesaving: isomorphism produced invalid MG summary: " + err.Error())
	}
	return out
}
