package spacesaving

import (
	"repro/internal/core"
)

// MergeMany combines any number of summaries in a single step: every
// full input has its minimum subtracted (the isomorphism pre-step),
// all counters are added pointwise, and exactly one prune runs at the
// end. Like mg.MergeMany it satisfies the pairwise bound with lower
// total error than a chain of two-way merges, because intermediate
// prunes never happen.
//
// All summaries must share k. The inputs are not modified.
func MergeMany(summaries []*Summary) (*Summary, error) {
	if len(summaries) == 0 {
		return nil, core.ErrNilSummary
	}
	k := summaries[0].k
	out := New(k)
	combined, release := getCombineMap()
	defer release()
	for _, s := range summaries {
		if s == nil {
			return nil, core.ErrNilSummary
		}
		if s.k != k {
			return nil, core.ErrMismatchedK
		}
		states, mu := subtractMin(s.States(), s.k)
		out.n += s.n
		out.under += s.under + mu
		for _, st := range states {
			if prev, ok := combined[st.Item]; ok {
				prev.Count += st.Count
				prev.Eps += st.Eps
				combined[st.Item] = prev
			} else {
				combined[st.Item] = st
			}
		}
	}
	states := make([]CounterState, 0, len(combined))
	for _, st := range combined {
		states = append(states, st)
	}
	sortStates(states)

	c := k - 1 // MG capacity after the isomorphism
	if len(states) > c && c > 0 {
		cut := states[len(states)-c-1].Count
		pruned := states[:0]
		for _, st := range states {
			if st.Count > cut {
				st.Count -= cut
				pruned = append(pruned, st)
			}
		}
		states = pruned
		out.under += cut
	} else if c == 0 {
		states = states[:0]
	}
	out.rebuild(states)
	return out, nil
}
