package spacesaving

import (
	"container/heap"

	"repro/internal/core"
)

// HeapSummary is the ablation variant of SpaceSaving: the same
// algorithm backed by a binary min-heap keyed by count instead of the
// stream-summary bucket list. Updates cost O(log k) instead of O(1);
// the estimates carry identical guarantees. It exists so the benchmark
// suite can quantify what the stream-summary structure buys
// (BenchmarkSpaceSavingHeapUpdate vs BenchmarkSpaceSavingUpdate).
type HeapSummary struct {
	k       int
	n       uint64
	entries map[core.Item]*heapEntry
	heap    entryHeap
}

type heapEntry struct {
	item  core.Item
	count uint64
	eps   uint64
	index int // position in the heap
	seq   uint64
}

// entryHeap is a min-heap on (count, seq): seq breaks count ties FIFO
// so eviction matches the bucket implementation's oldest-first policy.
type entryHeap []*heapEntry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].count != h[j].count {
		return h[i].count < h[j].count
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *entryHeap) Push(x interface{}) {
	e := x.(*heapEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewHeap returns an empty heap-backed SpaceSaving summary with k
// counters.
func NewHeap(k int) *HeapSummary {
	if k < 1 {
		panic("spacesaving: k must be >= 1")
	}
	return &HeapSummary{k: k, entries: make(map[core.Item]*heapEntry, k)}
}

// K returns the counter capacity.
func (s *HeapSummary) K() int { return s.k }

// N returns the total weight summarized.
func (s *HeapSummary) N() uint64 { return s.n }

// Len returns the number of monitored items.
func (s *HeapSummary) Len() int { return len(s.entries) }

// MinCount returns the smallest monitored count (0 when empty).
func (s *HeapSummary) MinCount() uint64 {
	if len(s.heap) == 0 {
		return 0
	}
	return s.heap[0].count
}

// Update adds w >= 1 occurrences of x in O(log k).
func (s *HeapSummary) Update(x core.Item, w uint64) {
	if w == 0 {
		panic("spacesaving: zero-weight update")
	}
	s.n += w
	if e, ok := s.entries[x]; ok {
		e.count += w
		heap.Fix(&s.heap, e.index)
		return
	}
	if len(s.entries) < s.k {
		e := &heapEntry{item: x, count: w, seq: s.n}
		s.entries[x] = e
		heap.Push(&s.heap, e)
		return
	}
	victim := s.heap[0]
	delete(s.entries, victim.item)
	minCount := victim.count
	victim.item = x
	victim.eps = minCount
	victim.count = minCount + w
	victim.seq = s.n
	s.entries[x] = victim
	heap.Fix(&s.heap, 0)
}

// Estimate answers a point query with the SpaceSaving guarantee.
func (s *HeapSummary) Estimate(x core.Item) core.Estimate {
	if e, ok := s.entries[x]; ok {
		lo := uint64(0)
		if e.count > e.eps {
			lo = e.count - e.eps
		}
		return core.Estimate{Value: e.count, Lower: lo, Upper: e.count}
	}
	return core.Estimate{Value: 0, Lower: 0, Upper: s.MinCount()}
}

// Counters returns the monitored (item, count) pairs ascending.
func (s *HeapSummary) Counters() []core.Counter {
	out := make([]core.Counter, 0, len(s.entries))
	for _, e := range s.heap {
		out = append(out, core.Counter{Item: e.item, Count: e.count})
	}
	core.SortCountersAsc(out)
	return out
}

// ToBuckets converts to the canonical stream-summary representation so
// the heap variant can participate in merges.
func (s *HeapSummary) ToBuckets() *Summary {
	states := make([]CounterState, 0, len(s.entries))
	for _, e := range s.heap {
		states = append(states, CounterState{Item: e.item, Count: e.count, Eps: e.eps})
	}
	out, err := FromStates(s.k, s.n, 0, states)
	if err != nil {
		panic("spacesaving: heap state invalid: " + err.Error())
	}
	return out
}

var _ core.CounterSummary = (*HeapSummary)(nil)
