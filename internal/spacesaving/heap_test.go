package spacesaving

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestHeapNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHeap(0) did not panic")
		}
	}()
	NewHeap(0)
}

func TestHeapZeroWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-weight update did not panic")
		}
	}()
	NewHeap(2).Update(1, 0)
}

// The heap variant must satisfy the identical SpaceSaving guarantees.
func TestHeapStreamGuarantee(t *testing.T) {
	const n = 100000
	for _, k := range []int{4, 64} {
		stream := gen.NewZipf(5000, 1.3, uint64(k)).Stream(n)
		truth := exact.FreqOf(stream)
		s := NewHeap(k)
		for _, x := range stream {
			s.Update(x, 1)
		}
		if s.N() != n {
			t.Fatalf("N = %d", s.N())
		}
		if got := core.TotalCount(s.Counters()); got != n {
			t.Fatalf("k=%d: Σ counters = %d, want %d", k, got, n)
		}
		if s.MinCount() > core.SSBound(n, k) {
			t.Fatalf("k=%d: min %d > n/k", k, s.MinCount())
		}
		for _, c := range truth.Counters() {
			e := s.Estimate(c.Item)
			if !e.Contains(c.Count) {
				t.Fatalf("k=%d: interval %v misses %d for item %d", k, e, c.Count, c.Item)
			}
		}
	}
}

// The heap variant and the bucket variant implement the same abstract
// algorithm with the same FIFO tie-breaking, so on identical input
// they must produce identical counter multisets.
func TestHeapMatchesBuckets(t *testing.T) {
	const n = 50000
	stream := gen.NewZipf(2000, 1.2, 17).Stream(n)
	h := NewHeap(32)
	b := New(32)
	for _, x := range stream {
		h.Update(x, 1)
		b.Update(x, 1)
	}
	hc, bc := h.Counters(), b.Counters()
	if len(hc) != len(bc) {
		t.Fatalf("sizes differ: %d vs %d", len(hc), len(bc))
	}
	for i := range hc {
		if hc[i].Count != bc[i].Count {
			t.Fatalf("count multiset differs at %d: %v vs %v", i, hc[i], bc[i])
		}
	}
}

func TestHeapToBuckets(t *testing.T) {
	h := NewHeap(16)
	for _, x := range gen.NewZipf(500, 1.4, 3).Stream(20000) {
		h.Update(x, 1)
	}
	s := h.ToBuckets()
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.N() != h.N() || s.Len() != h.Len() {
		t.Fatal("conversion changed header state")
	}
	hc, sc := h.Counters(), s.Counters()
	for i := range hc {
		if hc[i] != sc[i] {
			t.Fatalf("counter %d differs: %v vs %v", i, hc[i], sc[i])
		}
	}
	// Converted summaries merge like native ones.
	other := New(16)
	for _, x := range gen.NewZipf(500, 1.4, 4).Stream(10000) {
		other.Update(x, 1)
	}
	if err := s.MergeLowError(other); err != nil {
		t.Fatal(err)
	}
	if s.N() != 30000 {
		t.Fatalf("merged N = %d", s.N())
	}
}
