package spacesaving

import (
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestNewEpsilon(t *testing.T) {
	if got := NewEpsilon(0.1).K(); got != 10 {
		t.Errorf("NewEpsilon(0.1).K() = %d, want 10", got)
	}
	for _, bad := range []float64{0, 1, -2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEpsilon(%v) did not panic", bad)
				}
			}()
			NewEpsilon(bad)
		}()
	}
}

func TestUpdateBasic(t *testing.T) {
	s := New(3)
	s.Update(1, 1)
	s.Update(2, 1)
	s.Update(1, 1)
	if s.N() != 3 || s.Len() != 2 {
		t.Fatalf("N=%d Len=%d", s.N(), s.Len())
	}
	if e := s.Estimate(1); e.Value != 2 || e.Lower != 2 || e.Upper != 2 {
		t.Errorf("Estimate(1) = %v", e)
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateZeroWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-weight update did not panic")
		}
	}()
	New(2).Update(1, 0)
}

func TestEvictionInheritsMin(t *testing.T) {
	s := New(2)
	s.Update(1, 5)
	s.Update(2, 3)
	s.Update(3, 1) // must evict item 2 (count 3) and become 3+1=4
	if s.Len() != 2 {
		t.Fatalf("Len=%d", s.Len())
	}
	e := s.Estimate(3)
	if e.Value != 4 {
		t.Errorf("Estimate(3).Value = %d, want 4", e.Value)
	}
	if e.Lower != 1 { // count 4 − eps 3
		t.Errorf("Estimate(3).Lower = %d, want 1", e.Lower)
	}
	if got := s.Estimate(2); got.Value != 0 {
		t.Errorf("evicted item has estimate %v", got)
	}
	// Unmonitored upper bound is the minimum counter.
	if got := s.Estimate(99); got.Upper != 4 {
		t.Errorf("unmonitored Upper = %d, want min=4", got.Upper)
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionFIFOWithinBucket(t *testing.T) {
	s := New(3)
	s.Update(1, 1)
	s.Update(2, 1)
	s.Update(3, 1)
	// All three share the min bucket; the oldest (1) must be evicted.
	s.Update(4, 1)
	if s.Estimate(1).Value != 0 {
		t.Error("oldest min entry not evicted")
	}
	if s.Estimate(2).Value == 0 || s.Estimate(3).Value == 0 {
		t.Error("wrong entry evicted")
	}
}

// Σ counters == n for a fresh (never merged) summary: SpaceSaving
// conserves the total stream weight (eq. 9 of the supplied text).
func TestWeightConservation(t *testing.T) {
	const n = 50000
	for _, k := range []int{1, 2, 8, 64} {
		s := New(k)
		for _, x := range gen.NewZipf(1000, 1.1, uint64(k)).Stream(n) {
			s.Update(x, 1)
		}
		if got := core.TotalCount(s.Counters()); got != n {
			t.Errorf("k=%d: sum of counters = %d, want %d", k, got, n)
		}
		if s.MinCount() > core.SSBound(n, k) {
			t.Errorf("k=%d: min counter %d exceeds n/k=%d", k, s.MinCount(), core.SSBound(n, k))
		}
		if err := s.checkInvariants(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

// The SpaceSaving guarantee on a skewed stream: estimates never fall
// below the true count, overestimate by at most the per-counter
// certificate, and the certificate is at most min <= n/k.
func TestStreamGuarantee(t *testing.T) {
	const n = 200000
	for _, k := range []int{4, 16, 64} {
		stream := gen.NewZipf(10000, 1.3, uint64(k)).Stream(n)
		truth := exact.FreqOf(stream)
		s := New(k)
		for _, x := range stream {
			s.Update(x, 1)
		}
		if s.UnderBound() != 0 {
			t.Fatalf("fresh summary has under=%d", s.UnderBound())
		}
		for _, c := range truth.Counters() {
			e := s.Estimate(c.Item)
			if e.Value != 0 && e.Value < c.Count {
				t.Fatalf("k=%d: monitored underestimate of %d: est %d < true %d", k, c.Item, e.Value, c.Count)
			}
			if !e.Contains(c.Count) {
				t.Fatalf("k=%d: interval %v misses true count %d of item %d", k, e, c.Count, c.Item)
			}
			if e.Value > c.Count+core.SSBound(n, k) {
				t.Fatalf("k=%d: overestimate of %d beyond n/k: est %d true %d", k, c.Item, e.Value, c.Count)
			}
		}
	}
}

func TestWeightedUpdates(t *testing.T) {
	s := New(4)
	s.Update(1, 100)
	s.Update(2, 50)
	s.Update(3, 10)
	s.Update(4, 5)
	s.Update(5, 30) // evicts 4 (count 5): count 35, eps 5
	if e := s.Estimate(5); e.Value != 35 || e.Lower != 30 {
		t.Errorf("Estimate(5) = %v, want value 35 lower 30", e)
	}
	s.Update(1, 7)
	if e := s.Estimate(1); e.Value != 107 {
		t.Errorf("Estimate(1) = %v", e)
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHeavyHittersComplete(t *testing.T) {
	const n = 100000
	k := 50
	stream := gen.NewZipf(5000, 1.5, 7).Stream(n)
	truth := exact.FreqOf(stream)
	s := New(k)
	for _, x := range stream {
		s.Update(x, 1)
	}
	threshold := core.HeavyThreshold(n, 50)
	got := s.HeavyHitters(threshold)
	set := make(map[core.Item]bool)
	for _, c := range got {
		set[c.Item] = true
	}
	for _, c := range truth.HeavyHitters(threshold) {
		if !set[c.Item] {
			t.Errorf("true heavy hitter %d (count %d) missing", c.Item, c.Count)
		}
	}
}

func TestCountersAscending(t *testing.T) {
	s := New(16)
	for _, x := range gen.NewZipf(500, 1.2, 3).Stream(30000) {
		s.Update(x, 1)
	}
	cs := s.Counters()
	if len(cs) != 16 {
		t.Fatalf("len = %d", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Count > cs[i].Count {
			t.Fatal("Counters not ascending")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(3)
	s.Update(1, 5)
	c := s.Clone()
	c.Update(2, 2)
	if s.Len() != 1 || c.Len() != 2 || s.N() != 5 || c.N() != 7 {
		t.Fatal("clone not independent")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	s := New(3)
	s.Update(1, 5)
	s.Reset()
	if s.Len() != 0 || s.N() != 0 || s.MinCount() != 0 {
		t.Fatal("Reset left state")
	}
	s.Update(2, 1)
	if s.Estimate(2).Value != 1 {
		t.Fatal("unusable after Reset")
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFromStatesValidation(t *testing.T) {
	if _, err := FromStates(0, 0, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := FromStates(1, 5, 0, []CounterState{{Item: 1, Count: 2}, {Item: 2, Count: 3}}); err == nil {
		t.Error("too many counters accepted")
	}
	if _, err := FromStates(2, 5, 0, []CounterState{{Item: 1, Count: 0}}); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := FromStates(2, 5, 0, []CounterState{{Item: 1, Count: 1}, {Item: 1, Count: 2}}); err == nil {
		t.Error("duplicate accepted")
	}
	s, err := FromStates(2, 5, 1, []CounterState{{Item: 1, Count: 4, Eps: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 5 || s.UnderBound() != 1 {
		t.Error("header state wrong")
	}
	if e := s.Estimate(1); e.Value != 4 || e.Lower != 2 || e.Upper != 5 {
		t.Errorf("Estimate = %v", e)
	}
}

func TestInvariantsUnderChurn(t *testing.T) {
	s := New(8)
	rng := gen.NewRNG(42)
	for i := 0; i < 20000; i++ {
		s.Update(core.Item(rng.Intn(100)), uint64(rng.Intn(5)+1))
		if i%1000 == 0 {
			if err := s.checkInvariants(); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	s := New(16)
	for _, x := range gen.NewZipf(500, 1.4, 11).Stream(50000) {
		s.Update(x, 1)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.K() != s.K() || got.N() != s.N() || got.UnderBound() != s.UnderBound() {
		t.Fatal("header state changed")
	}
	ws, hs := s.States(), got.States()
	if len(ws) != len(hs) {
		t.Fatal("state count changed")
	}
	for i := range ws {
		if ws[i] != hs[i] {
			t.Fatalf("state %d: %v != %v", i, hs[i], ws[i])
		}
	}
	if err := got.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	s := New(4)
	s.Update(1, 2)
	data, _ := s.MarshalBinary()
	data[len(data)-5] ^= 0xff
	var got Summary
	if err := got.UnmarshalBinary(data); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}
