package countsketch

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
)

func TestNewPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"width":       func() { New(0, 2, 1) },
		"depth":       func() { New(2, 0, 1) },
		"zero-weight": func() { New(8, 2, 1).Update(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHeavyItemsAccurate(t *testing.T) {
	const n = 200000
	stream := gen.NewZipf(5000, 1.4, 3).Stream(n)
	truth := exact.FreqOf(stream)
	s := New(1024, 5, 7)
	for _, x := range stream {
		s.Update(x, 1)
	}
	if s.N() != n {
		t.Fatalf("N = %d", s.N())
	}
	// L2-based error: compute ||f||_2 and allow 3*||f||_2/sqrt(width)
	// per estimate on the heavy items.
	var l2 float64
	for _, c := range truth.Counters() {
		l2 += float64(c.Count) * float64(c.Count)
	}
	bound := 3 * math.Sqrt(l2) / math.Sqrt(1024)
	for _, c := range truth.Counters()[:50] {
		est := float64(s.Estimate(c.Item).Value)
		if math.Abs(est-float64(c.Count)) > bound {
			t.Errorf("item %d: |%v - %d| > %v", c.Item, est, c.Count, bound)
		}
	}
}

func TestUnbiasedOnAbsentItems(t *testing.T) {
	const n = 50000
	stream := gen.NewZipf(1000, 1.2, 9).Stream(n)
	s := New(2048, 5, 3)
	for _, x := range stream {
		s.Update(x, 1)
	}
	// Items far outside the universe should estimate near zero.
	var sum uint64
	for x := core.Item(1 << 40); x < 1<<40+100; x++ {
		sum += s.Estimate(x).Value
	}
	if avg := float64(sum) / 100; avg > float64(n)/100 {
		t.Errorf("absent items average estimate %v, want near 0", avg)
	}
}

func TestMergeLinearity(t *testing.T) {
	const n = 60000
	stream := gen.NewZipf(1000, 1.4, 2).Stream(n)
	parts := gen.PartitionRoundRobin(stream, 5)
	whole := New(256, 3, 1)
	for _, x := range stream {
		whole.Update(x, 1)
	}
	merged := New(256, 3, 1)
	for _, p := range parts {
		s := New(256, 3, 1)
		for _, x := range p {
			s.Update(x, 1)
		}
		if err := merged.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, x := range []core.Item{0, 3, 42, 999} {
		if merged.Estimate(x) != whole.Estimate(x) {
			t.Fatalf("estimate of %d differs after merge", x)
		}
	}
}

func TestMergeMismatched(t *testing.T) {
	a := New(128, 4, 1)
	for _, b := range []*Sketch{New(64, 4, 1), New(128, 3, 1), New(128, 4, 2)} {
		if err := a.Merge(b); err == nil {
			t.Error("mismatched sketch accepted")
		}
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil accepted")
	}
}

func TestHeavyHittersOver(t *testing.T) {
	const n = 50000
	z := gen.NewZipf(1000, 1.5, 4)
	stream := z.Stream(n)
	truth := exact.FreqOf(stream)
	s := New(1024, 5, 8)
	for _, x := range stream {
		s.Update(x, 1)
	}
	threshold := core.HeavyThreshold(n, 100)
	candidates := make([]core.Item, 0, 1000)
	for i := 1; i <= 1000; i++ {
		candidates = append(candidates, z.ItemForRank(i))
	}
	got := s.HeavyHittersOver(candidates, threshold)
	set := make(map[core.Item]bool)
	for _, c := range got {
		set[c.Item] = true
	}
	for _, c := range truth.HeavyHitters(threshold) {
		if !set[c.Item] {
			t.Errorf("true heavy hitter %d (count %d) missing", c.Item, c.Count)
		}
	}
}

func TestCloneAndReset(t *testing.T) {
	s := New(64, 3, 1)
	s.Update(1, 10)
	c := s.Clone()
	c.Update(1, 5)
	if s.Estimate(1).Value != 10 || c.Estimate(1).Value != 15 {
		t.Fatal("clone not independent")
	}
	s.Reset()
	if s.N() != 0 || s.Estimate(1).Value != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	s := New(128, 5, 9)
	for _, x := range gen.NewZipf(500, 1.1, 6).Stream(20000) {
		s.Update(x, 1)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Sketch
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.N() != s.N() || got.Width() != s.Width() || got.Depth() != s.Depth() {
		t.Fatal("header changed")
	}
	for x := core.Item(0); x < 500; x++ {
		if got.Estimate(x) != s.Estimate(x) {
			t.Fatalf("estimate of %d differs", x)
		}
	}
	data[len(data)-5] ^= 0xff
	if err := got.UnmarshalBinary(data); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func TestRemoveTurnstile(t *testing.T) {
	s := New(512, 5, 3)
	stream := gen.NewZipf(300, 1.3, 4).Stream(20000)
	for _, x := range stream {
		s.Update(x, 1)
	}
	for _, x := range stream[:8000] {
		s.Remove(x, 1)
	}
	direct := New(512, 5, 3)
	for _, x := range stream[8000:] {
		direct.Update(x, 1)
	}
	if s.N() != direct.N() {
		t.Fatalf("N: %d vs %d", s.N(), direct.N())
	}
	for x := core.Item(0); x < 300; x++ {
		if s.Estimate(x) != direct.Estimate(x) {
			t.Fatalf("estimate of %d differs after deletions", x)
		}
	}
}

func TestRemoveZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-weight remove did not panic")
		}
	}()
	New(8, 2, 1).Remove(1, 0)
}
