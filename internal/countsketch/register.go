package countsketch

import (
	"repro/internal/codec"
	"repro/internal/gen"
	"repro/internal/registry"
)

// init catalogs the family; see internal/registry.
func init() {
	registry.Register[Sketch](codec.KindCountSketch, "countsketch", registry.Spec[Sketch]{
		Example: func(n int) *Sketch {
			s := New(512, 4, 6)
			s.UpdateBatch(gen.NewZipf(512, 1.2, 6).Stream(n))
			return s
		},
		Merge: (*Sketch).Merge,
		N:     (*Sketch).N,
	})
}
