// Package countsketch implements the Count-Sketch of Charikar, Chen
// and Farach-Colton: a d×w matrix of signed counters; point queries
// take the median across rows of the signed cell values. Unlike
// Count-Min it is unbiased and its error scales with the stream's L2
// norm (2·‖f‖₂/√w per row), which is much smaller than εn on skewed
// streams — the classic accuracy/space trade against Count-Min.
//
// Count-Sketch is a linear sketch, hence trivially mergeable by
// cell-wise addition (the PODS'12 baseline case).
package countsketch

import (
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/core"
)

// Sketch is a Count-Sketch. The zero value is not usable; use New.
// Sketches are not safe for concurrent use.
type Sketch struct {
	width int
	depth int
	seed  uint64
	n     uint64
	rows  [][]int64
	a, b  []uint64 // bucket hash parameters
	sa    []uint64 // sign hash parameters
}

// New returns an empty sketch. Two sketches are mergeable iff they
// share width, depth and seed.
func New(width, depth int, seed uint64) *Sketch {
	if width < 1 || depth < 1 {
		panic("countsketch: width and depth must be >= 1")
	}
	s := &Sketch{
		width: width,
		depth: depth,
		seed:  seed,
		rows:  make([][]int64, depth),
		a:     make([]uint64, depth),
		b:     make([]uint64, depth),
		sa:    make([]uint64, depth),
	}
	state := seed ^ 0xc3a5c85c97cb3127
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < depth; i++ {
		s.rows[i] = make([]int64, width)
		s.a[i] = next() | 1
		s.b[i] = next()
		s.sa[i] = next() | 1
	}
	return s
}

// Width returns the row width.
func (s *Sketch) Width() int { return s.width }

// Depth returns the number of rows.
func (s *Sketch) Depth() int { return s.depth }

// N returns the total weight summarized, including merged-in weight.
func (s *Sketch) N() uint64 { return s.n }

func (s *Sketch) cell(i int, x core.Item) int {
	h := s.a[i]*uint64(x) + s.b[i]
	return int((h >> 17) % uint64(s.width))
}

func (s *Sketch) sign(i int, x core.Item) int64 {
	h := s.sa[i] * uint64(x)
	if h>>63 == 1 {
		return -1
	}
	return 1
}

// Update adds w >= 1 occurrences of x.
func (s *Sketch) Update(x core.Item, w uint64) {
	if w == 0 {
		panic("countsketch: zero-weight update")
	}
	s.n += w
	for i := 0; i < s.depth; i++ {
		s.rows[i][s.cell(i, x)] += s.sign(i, x) * int64(w)
	}
}

// UpdateBatch adds one occurrence of every item in xs. The result is
// identical to calling Update(x, 1) for each x, but the batch path
// walks the matrix row-major with the row's bucket and sign hash
// parameters held in registers, amortizing per-item loads and bounds
// checks.
//
//sketch:hotpath
func (s *Sketch) UpdateBatch(xs []core.Item) {
	if len(xs) == 0 {
		return
	}
	width := uint64(s.width)
	for i := 0; i < s.depth; i++ {
		ai, bi, sai := s.a[i], s.b[i], s.sa[i]
		row := s.rows[i]
		for _, x := range xs {
			c := ((ai*uint64(x) + bi) >> 17) % width
			if (sai*uint64(x))>>63 == 1 {
				row[c]--
			} else {
				row[c]++
			}
		}
	}
	s.n += uint64(len(xs))
}

// UpdateBatchWeighted adds Count occurrences of every Item in ws, the
// weighted variant of UpdateBatch. All weights must be >= 1.
//
//sketch:hotpath
func (s *Sketch) UpdateBatchWeighted(ws []core.Counter) {
	if len(ws) == 0 {
		return
	}
	var total uint64
	for _, c := range ws {
		if c.Count == 0 {
			panic("countsketch: zero-weight update")
		}
		total += c.Count
	}
	width := uint64(s.width)
	for i := 0; i < s.depth; i++ {
		ai, bi, sai := s.a[i], s.b[i], s.sa[i]
		row := s.rows[i]
		for _, c := range ws {
			cell := ((ai*uint64(c.Item) + bi) >> 17) % width
			if (sai*uint64(c.Item))>>63 == 1 {
				row[cell] -= int64(c.Count)
			} else {
				row[cell] += int64(c.Count)
			}
		}
	}
	s.n += total
}

// Remove subtracts w occurrences of x. Count-Sketch is a signed linear
// sketch, so deletions are exact (general turnstile model): Remove is
// Update with negated weight and even over-deletions keep the sketch
// a faithful linear image of the (now signed) frequency vector.
func (s *Sketch) Remove(x core.Item, w uint64) {
	if w == 0 {
		panic("countsketch: zero-weight remove")
	}
	if w > s.n {
		s.n = 0
	} else {
		s.n -= w
	}
	for i := 0; i < s.depth; i++ {
		s.rows[i][s.cell(i, x)] -= s.sign(i, x) * int64(w)
	}
}

// estimate returns the median-of-rows signed estimate, clamped at 0.
func (s *Sketch) estimate(x core.Item) uint64 {
	ests := make([]int64, s.depth)
	for i := 0; i < s.depth; i++ {
		ests[i] = s.sign(i, x) * s.rows[i][s.cell(i, x)]
	}
	sort.Slice(ests, func(i, j int) bool { return ests[i] < ests[j] })
	var med int64
	if s.depth%2 == 1 {
		med = ests[s.depth/2]
	} else {
		med = (ests[s.depth/2-1] + ests[s.depth/2]) / 2
	}
	if med < 0 {
		return 0
	}
	return uint64(med)
}

// Estimate answers a point query. Count-Sketch is unbiased but has no
// deterministic one-sided bound, so the guaranteed interval is the
// trivial [0, N].
func (s *Sketch) Estimate(x core.Item) core.Estimate {
	return core.Estimate{Value: s.estimate(x), Lower: 0, Upper: s.n}
}

// Merge adds other cell-wise into s. Sketches must share geometry and
// seed.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if s.width != other.width || s.depth != other.depth || s.seed != other.seed {
		return fmt.Errorf("%w: countsketch geometry/seed", core.ErrMismatchedShape)
	}
	for i := range s.rows {
		for j := range s.rows[i] {
			s.rows[i][j] += other.rows[i][j]
		}
	}
	s.n += other.n
	return nil
}

// Merged returns the merge of a and b without modifying either.
func Merged(a, b *Sketch) (*Sketch, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// HeavyHittersOver returns the candidates whose estimate reaches
// threshold, in descending estimate order.
func (s *Sketch) HeavyHittersOver(candidates []core.Item, threshold uint64) []core.Counter {
	var out []core.Counter
	for _, x := range candidates {
		if v := s.estimate(x); v >= threshold {
			out = append(out, core.Counter{Item: x, Count: v})
		}
	}
	core.SortCountersDesc(out)
	return out
}

// Clone returns a deep copy.
func (s *Sketch) Clone() *Sketch {
	c := New(s.width, s.depth, s.seed)
	c.n = s.n
	for i := range s.rows {
		copy(c.rows[i], s.rows[i])
	}
	return c
}

// Reset zeroes the sketch.
func (s *Sketch) Reset() {
	s.n = 0
	for i := range s.rows {
		for j := range s.rows[i] {
			s.rows[i][j] = 0
		}
	}
}

// MarshalBinary implements encoding.BinaryMarshaler. The payload is
// built in a pooled buffer pre-sized for the counter matrix.
func (s *Sketch) MarshalBinary() ([]byte, error) {
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	// Signed cells ride through uvarint as raw two's-complement bits,
	// so negative values take the full 10 bytes; size for that.
	w.Grow(4*10 + s.width*s.depth*10)
	w.Int(s.width)
	w.Int(s.depth)
	w.Uint64(s.seed)
	w.Uint64(s.n)
	for i := range s.rows {
		for _, v := range s.rows[i] {
			w.Uint64(uint64(v)) // two's complement through uvarint zig would be nicer; raw bits are fine
		}
	}
	return codec.EncodeFrame(codec.KindCountSketch, w.Bytes()), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Sketch) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindCountSketch, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	width := r.Int()
	depth := r.Int()
	seed := r.Uint64()
	n := r.Uint64()
	if r.Err() != nil {
		return r.Err()
	}
	if width < 1 || depth < 1 || width*depth > 1<<28 {
		return fmt.Errorf("countsketch: implausible geometry %dx%d", depth, width)
	}
	if width*depth > r.Remaining() {
		return fmt.Errorf("countsketch: geometry %dx%d exceeds payload", depth, width)
	}
	out := New(width, depth, seed)
	out.n = n
	for i := 0; i < depth; i++ {
		for j := 0; j < width; j++ {
			out.rows[i][j] = int64(r.Uint64())
		}
	}
	if err := r.Finish(); err != nil {
		return err
	}
	*s = *out
	return nil
}

var _ core.FrequencySummary = (*Sketch)(nil)
