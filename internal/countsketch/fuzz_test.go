package countsketch

import "testing"

func FuzzUnmarshal(f *testing.F) {
	s := New(32, 3, 1)
	s.Update(7, 5)
	seed, _ := s.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Sketch
		if err := out.UnmarshalBinary(data); err != nil {
			return
		}
		if _, err := out.MarshalBinary(); err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
	})
}
