package countsketch

import (
	"bytes"
	"testing"
)

func FuzzUnmarshal(f *testing.F) {
	s := New(32, 3, 1)
	s.Update(7, 5)
	seed, _ := s.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Sketch
		if err := out.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted frames must round-trip to a canonical fixpoint:
		// re-encode, decode, re-encode byte-identically.
		canon, err := out.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
		var again Sketch
		if err := again.UnmarshalBinary(canon); err != nil {
			t.Fatalf("re-marshaled frame rejected: %v", err)
		}
		canon2, err := again.MarshalBinary()
		if err != nil {
			t.Fatalf("second re-marshal: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatal("encode/decode/encode is not a fixpoint")
		}
	})
}
