// Golden wire corpus: one committed frame per registered family,
// regenerated only by `make wire-golden`. The corpus pins the wire
// bytes themselves — a codec change that survives the round-trip
// tests but shifts the encoding (field order, widths, varint vs
// fixed) still fails here, the dynamic complement to the static
// wireshape/wirecompat schema gate.
//
// The file lives in package codec_test (external) so it can enumerate
// the registry without an import cycle: families import codec, the
// catalog imports the families, and this test imports the catalog.
package codec_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/registry"
	_ "repro/internal/registry/all"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden from the current encoders instead of checking against it")

// goldenN is the deterministic update count behind every fixture.
// Changing it invalidates the corpus; regenerate deliberately.
const goldenN = 137

const goldenDir = "testdata/golden"

func goldenPath(name string) string {
	return filepath.Join(goldenDir, name+".bin")
}

// TestGoldenCorpus decodes every committed fixture with its family's
// registered decoder, checks the decode preserves the summarized
// weight, and re-encodes byte-identically. A registered family with
// no fixture fails, as does a fixture whose name matches no family.
func TestGoldenCorpus(t *testing.T) {
	if *updateGolden {
		regenerateGolden(t)
		return
	}
	live := map[string]bool{}
	for _, ent := range registry.Entries() {
		live[ent.Name()] = true
		want, err := os.ReadFile(goldenPath(ent.Name()))
		if os.IsNotExist(err) {
			t.Errorf("%s: no golden fixture for registered family — run `make wire-golden`", ent.Name())
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		got, err := ent.Encode(ent.Example(goldenN))
		if err != nil {
			t.Fatalf("%s: encode example: %v", ent.Name(), err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: encoder output differs from committed fixture (%d vs %d bytes) — "+
				"if the wire format changed deliberately, regenerate with `make wire-golden`",
				ent.Name(), len(got), len(want))
		}
		dec, err := ent.Decode(want)
		if err != nil {
			t.Errorf("%s: committed fixture no longer decodes: %v", ent.Name(), err)
			continue
		}
		if n, exp := ent.N(dec), ent.N(ent.Example(goldenN)); n != exp {
			t.Errorf("%s: decoded fixture summarizes weight %d, want %d", ent.Name(), n, exp)
		}
		again, err := ent.Encode(dec)
		if err != nil {
			t.Errorf("%s: re-encode: %v", ent.Name(), err)
		} else if !bytes.Equal(again, want) {
			t.Errorf("%s: decode→encode is not byte-identical to the fixture", ent.Name())
		}
	}
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatalf("reading %s (run `make wire-golden`?): %v", goldenDir, err)
	}
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".bin")
		if !ok {
			continue
		}
		if !live[name] {
			t.Errorf("stale fixture %s: no family registers wire name %q — run `make wire-golden`", e.Name(), name)
		}
	}
}

func regenerateGolden(t *testing.T) {
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	live := map[string]bool{}
	for _, ent := range registry.Entries() {
		live[ent.Name()] = true
		frame, err := ent.Encode(ent.Example(goldenN))
		if err != nil {
			t.Fatalf("%s: encode example: %v", ent.Name(), err)
		}
		path := goldenPath(ent.Name())
		old, readErr := os.ReadFile(path)
		if readErr == nil && bytes.Equal(old, frame) {
			continue
		}
		if err := os.WriteFile(path, frame, 0o644); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("golden: wrote %s (%d bytes)\n", path, len(frame))
	}
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name, ok := strings.CutSuffix(e.Name(), ".bin")
		if !ok || live[name] {
			continue
		}
		if err := os.Remove(filepath.Join(goldenDir, e.Name())); err != nil {
			t.Fatal(err)
		}
		fmt.Printf("golden: removed stale %s\n", e.Name())
	}
}

// decodeNoPanic decodes a (possibly corrupt) frame, converting a
// decoder panic into a test failure. Corrupt input may error or — for
// payload corruption that stays self-consistent — decode successfully,
// but it must never take down the process.
func decodeNoPanic(t *testing.T, ent *registry.Entry, frame []byte) (v any, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s: decoder panicked on corrupt frame (%d bytes): %v", ent.Name(), len(frame), r)
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return ent.Decode(frame)
}

// TestCorruptFrameTruncation truncates every family's golden frame at
// every byte boundary (which covers every field boundary) and checks
// the decoder reports an error each time — the CRC footer plus the
// readers' bounds checks make any prefix invalid.
func TestCorruptFrameTruncation(t *testing.T) {
	for _, ent := range registry.Entries() {
		frame, err := ent.Encode(ent.Example(goldenN))
		if err != nil {
			t.Fatalf("%s: encode: %v", ent.Name(), err)
		}
		for cut := 0; cut < len(frame); cut++ {
			if _, err := decodeNoPanic(t, ent, frame[:cut]); err == nil {
				t.Errorf("%s: decode accepted a frame truncated to %d/%d bytes", ent.Name(), cut, len(frame))
			}
		}
	}
}

// TestCorruptFrameFlips flips each byte of every family's frame two
// ways. A raw flip must always error: the CRC-32 footer covers the
// whole frame. A flip inside the payload with the checksum recomputed
// slips past the frame layer and exercises the per-family readers —
// including flipped length bytes, whose declared counts the guarded
// ArrayLen reads must cap at what the payload can actually hold
// instead of allocating for them. Those decodes must never panic, and
// anything accepted must re-encode to a canonical fixpoint.
func TestCorruptFrameFlips(t *testing.T) {
	for _, ent := range registry.Entries() {
		frame, err := ent.Encode(ent.Example(goldenN))
		if err != nil {
			t.Fatalf("%s: encode: %v", ent.Name(), err)
		}
		for i := range frame {
			raw := bytes.Clone(frame)
			raw[i] ^= 0xFF
			if _, err := decodeNoPanic(t, ent, raw); err == nil {
				t.Errorf("%s: decode accepted a frame with byte %d flipped (checksum not enforced?)", ent.Name(), i)
			}
		}
		payload, err := codec.DecodeFrame(ent.Kind(), frame)
		if err != nil {
			t.Fatalf("%s: reopening own frame: %v", ent.Name(), err)
		}
		for i := range payload {
			corrupt := bytes.Clone(payload)
			corrupt[i] ^= 0xFF
			reframed := codec.EncodeFrame(ent.Kind(), corrupt)
			v, err := decodeNoPanic(t, ent, reframed)
			if err != nil {
				continue // rejected by the reader's validation — fine
			}
			again, err := ent.Encode(v)
			if err != nil {
				t.Errorf("%s: re-encoding accepted corrupt payload (byte %d): %v", ent.Name(), i, err)
				continue
			}
			v2, err := ent.Decode(again)
			if err != nil {
				t.Errorf("%s: accepted corrupt payload (byte %d) did not re-decode: %v", ent.Name(), i, err)
				continue
			}
			final, err := ent.Encode(v2)
			if err != nil || !bytes.Equal(final, again) {
				t.Errorf("%s: corrupt payload (byte %d) accepted but not canonical", ent.Name(), i)
			}
		}
	}
}
