// Package codec provides the shared binary wire format used by every
// summary in this repository to implement encoding.BinaryMarshaler and
// encoding.BinaryUnmarshaler.
//
// The format is a self-describing frame:
//
//	magic   [4]byte  "MSUM"
//	version uint8    format version (currently 1)
//	kind    uint8    summary kind tag (see Kind constants)
//	length  uvarint  payload length in bytes
//	payload []byte   kind-specific body, little-endian/uvarint encoded
//	crc     uint32   IEEE CRC-32 of everything before it, little-endian
//
// The frame makes the distributed example safe to run over a raw TCP
// stream: a truncated, reordered or corrupted summary is detected at
// decode time instead of silently producing wrong counts.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

// Kind tags identify the summary type inside a frame so that a decoder
// can reject frames of the wrong type with a useful error.
type Kind uint8

// Known summary kinds. New kinds must be appended, never renumbered:
// the tag is part of the wire format. KindHLL, KindKMV and KindTopK
// were split out of the tags they historically shadowed (bottomk and
// countmin) when the family registry made one-tag-per-family a checked
// invariant.
const (
	KindInvalid Kind = iota
	KindMisraGries
	KindSpaceSaving
	KindGK
	KindRandQuant
	KindCountMin
	KindCountSketch
	KindBottomK
	KindRangeCount
	KindKernel
	KindQDigest
	KindHLL
	KindKMV
	KindTopK
)

// KindCount is the number of assigned kind tags, KindInvalid included.
// internal/registry uses it to assert catalog completeness.
const KindCount = int(KindTopK) + 1

// kindNames maps tags to the canonical wire names declared by
// registry registrations (RegisterKindName). The codec package itself
// assigns no names: the registry is the single source of truth, and
// this table is merely its projection for String/KindByName. Writes
// happen only during package init (family registrations), reads only
// afterwards, so no lock is needed.
var kindNames = map[Kind]string{}

// kindByName is the inverse of kindNames.
var kindByName = map[string]Kind{}

// RegisterKindName binds a kind tag to its canonical wire name. It is
// called by internal/registry once per family at init time and panics
// on a duplicate tag or name: two families may not share a wire tag
// (the historical topk/countmin and hll/kmv/bottomk aliasing), and two
// tags may not share a name.
func RegisterKindName(k Kind, name string) {
	if k == KindInvalid || name == "" {
		panic("codec: cannot register the invalid kind or an empty name")
	}
	if prev, ok := kindNames[k]; ok {
		panic(fmt.Sprintf("codec: kind %d already registered as %q", uint8(k), prev))
	}
	if prev, ok := kindByName[name]; ok {
		panic(fmt.Sprintf("codec: name %q already registered for kind %d", name, uint8(prev)))
	}
	kindNames[k] = name
	kindByName[name] = k
}

// KindByName returns the kind tag registered under the canonical wire
// name, or (KindInvalid, false) when no family claims it.
func KindByName(name string) (Kind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

// RegisteredKinds returns the registered tags in ascending order.
func RegisteredKinds() []Kind {
	out := make([]Kind, 0, len(kindNames))
	for k := Kind(1); int(k) < KindCount; k++ {
		if _, ok := kindNames[k]; ok {
			out = append(out, k)
		}
	}
	return out
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

const (
	// Version is the current frame format version.
	Version = 1

	magic = "MSUM"
)

// Frame-level decoding errors.
var (
	ErrBadMagic    = errors.New("codec: bad magic (not a summary frame)")
	ErrBadVersion  = errors.New("codec: unsupported frame version")
	ErrBadChecksum = errors.New("codec: checksum mismatch")
	ErrWrongKind   = errors.New("codec: frame holds a different summary kind")
	ErrTruncated   = errors.New("codec: truncated frame")
	ErrTrailing    = errors.New("codec: trailing bytes after frame")
)

// Buffer accumulates a payload using uvarint and fixed-width primitives.
// The zero value is ready to use.
type Buffer struct {
	b []byte
}

// maxPooledBuffer is the size-class cap for pooled encode scratch: a
// buffer that grew beyond it (one enormous summary) is dropped instead
// of pinned in the pool, so steady-state pooling cannot hold a
// high-water-mark of memory hostage.
const maxPooledBuffer = 1 << 20

var bufferPool = sync.Pool{New: func() any { return new(Buffer) }}

// GetBuffer returns an empty pooled Buffer. Pair with PutBuffer after
// the payload has been copied out (EncodeFrame copies), so per-encode
// payload scratch is reused instead of reallocated.
//
//sketch:hotpath
func GetBuffer() *Buffer {
	return bufferPool.Get().(*Buffer)
}

// PutBuffer resets w and returns it to the pool. Buffers above the
// size-class cap are dropped. The caller must not touch w (or any
// slice obtained from w.Bytes()) afterwards.
//
//sketch:hotpath
func PutBuffer(w *Buffer) {
	if w == nil || cap(w.b) > maxPooledBuffer {
		return
	}
	w.b = w.b[:0]
	bufferPool.Put(w)
}

// Bytes returns the accumulated payload.
func (w *Buffer) Bytes() []byte { return w.b }

// Len returns the number of accumulated payload bytes.
func (w *Buffer) Len() int { return len(w.b) }

// Reset truncates the buffer for reuse, keeping its capacity.
func (w *Buffer) Reset() { w.b = w.b[:0] }

// Grow ensures capacity for at least n more bytes — the pre-sized
// encode hint: a marshaller that knows its payload size writes with at
// most one (re)allocation instead of log-many append doublings.
//
//sketch:hotpath
func (w *Buffer) Grow(n int) {
	if n <= cap(w.b)-len(w.b) {
		return
	}
	nb := make([]byte, len(w.b), len(w.b)+n)
	copy(nb, w.b)
	w.b = nb
}

// Uint64 appends v as a uvarint.
func (w *Buffer) Uint64(v uint64) { w.b = binary.AppendUvarint(w.b, v) }

// Int appends v (which must be non-negative) as a uvarint.
func (w *Buffer) Int(v int) {
	if v < 0 {
		panic("codec: negative int")
	}
	w.Uint64(uint64(v))
}

// Bool appends v as a single 0/1 byte.
func (w *Buffer) Bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

// Float64 appends v as its IEEE-754 bits, little-endian. NaNs are
// preserved bit-exactly.
func (w *Buffer) Float64(v float64) {
	w.b = binary.LittleEndian.AppendUint64(w.b, math.Float64bits(v))
}

// Reader consumes a payload written by Buffer.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader wraps a payload for reading.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decoding error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread payload bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

// Uint64 reads a uvarint. On error it returns 0 and records the error.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Int reads a uvarint as an int, failing on overflow.
func (r *Reader) Int() int {
	v := r.Uint64()
	if r.err == nil && v > math.MaxInt32 {
		// Structural sizes in this library are far below 2^31; a
		// larger value indicates corruption even on 64-bit hosts.
		r.err = fmt.Errorf("codec: implausible size %d", v)
		return 0
	}
	return int(v)
}

// ArrayLen reads a uvarint element count and validates it against the
// remaining payload: each element needs at least minBytesPerItem bytes,
// so a count that cannot possibly fit is corruption — rejecting it here
// keeps decoders from allocating attacker-controlled amounts of memory
// before they notice the truncation.
func (r *Reader) ArrayLen(minBytesPerItem int) int {
	if minBytesPerItem < 1 {
		minBytesPerItem = 1
	}
	n := r.Int()
	if r.err != nil {
		return 0
	}
	if n*minBytesPerItem > r.Remaining() {
		r.err = fmt.Errorf("codec: array length %d exceeds remaining payload %d", n, r.Remaining())
		return 0
	}
	return n
}

// Bool reads a single byte as a bool.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.b) {
		r.fail()
		return false
	}
	v := r.b[r.off]
	r.off++
	return v != 0
}

// Float64 reads 8 little-endian bytes as a float64.
func (r *Reader) Float64() float64 {
	b := r.Borrow(8)
	if b == nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// Borrow returns the next n payload bytes without copying. The slice
// aliases the frame being decoded: it is valid only while the caller
// owns that frame buffer, so a decoder that retains bytes beyond its
// UnmarshalBinary call must copy them out first. This is the zero-copy
// read primitive for fixed-width runs (raw register arrays, packed
// floats); pooled frame buffers stay poolable because nothing durable
// aliases them.
//
//sketch:hotpath
func (r *Reader) Borrow(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail()
		return nil
	}
	out := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return out
}

// Finish verifies that the payload was consumed exactly.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return ErrTrailing
	}
	return nil
}

// EncodeFrame wraps a payload in the versioned, checksummed frame.
func EncodeFrame(kind Kind, payload []byte) []byte {
	out := make([]byte, 0, len(magic)+2+binary.MaxVarintLen64+len(payload)+4)
	out = append(out, magic...)
	out = append(out, Version, byte(kind))
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	crc := crc32.ChecksumIEEE(out)
	out = binary.LittleEndian.AppendUint32(out, crc)
	return out
}

// DecodeFrame validates a frame and returns its payload. The whole
// input must be exactly one frame.
func DecodeFrame(kind Kind, data []byte) ([]byte, error) {
	payload, rest, err := decodeFramePrefix(kind, data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrTrailing
	}
	return payload, nil
}

// PeekKind returns the kind tag of a frame without validating its
// payload or checksum: enough of the header is checked (magic and
// version) to know the byte is really a kind tag. Dispatch layers use
// it to route a frame to the registered decoder, which then performs
// the full validation.
func PeekKind(data []byte) (Kind, error) {
	if len(data) < len(magic)+2 {
		return KindInvalid, ErrTruncated
	}
	if string(data[:len(magic)]) != magic {
		return KindInvalid, ErrBadMagic
	}
	if data[len(magic)] != Version {
		return KindInvalid, fmt.Errorf("%w: %d", ErrBadVersion, data[len(magic)])
	}
	return Kind(data[len(magic)+1]), nil
}

// decodeFramePrefix decodes one frame from the front of data, returning
// the payload and any remaining bytes.
func decodeFramePrefix(kind Kind, data []byte) (payload, rest []byte, err error) {
	if len(data) < len(magic)+2 {
		return nil, nil, ErrTruncated
	}
	if string(data[:len(magic)]) != magic {
		return nil, nil, ErrBadMagic
	}
	if data[len(magic)] != Version {
		return nil, nil, fmt.Errorf("%w: %d", ErrBadVersion, data[len(magic)])
	}
	got := Kind(data[len(magic)+1])
	if got != kind {
		return nil, nil, fmt.Errorf("%w: have %v, want %v", ErrWrongKind, got, kind)
	}
	off := len(magic) + 2
	plen, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, nil, ErrTruncated
	}
	off += n
	if plen > uint64(len(data)-off) {
		return nil, nil, ErrTruncated
	}
	end := off + int(plen)
	if len(data) < end+4 {
		return nil, nil, ErrTruncated
	}
	wantCRC := binary.LittleEndian.Uint32(data[end:])
	if crc32.ChecksumIEEE(data[:end]) != wantCRC {
		return nil, nil, ErrBadChecksum
	}
	return data[off:end], data[end+4:], nil
}

// WriteFrame writes a complete frame to w, preceded by nothing: the
// frame is self-delimiting, so frames can be concatenated on a stream.
func WriteFrame(w io.Writer, kind Kind, payload []byte) error {
	_, err := w.Write(EncodeFrame(kind, payload))
	return err
}

// ReadFrame reads exactly one frame of the given kind from r.
func ReadFrame(r io.Reader, kind Kind) ([]byte, error) {
	head := make([]byte, len(magic)+2)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, err
	}
	if string(head[:len(magic)]) != magic {
		return nil, ErrBadMagic
	}
	if head[len(magic)] != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, head[len(magic)])
	}
	got := Kind(head[len(magic)+1])
	if got != kind {
		return nil, fmt.Errorf("%w: have %v, want %v", ErrWrongKind, got, kind)
	}
	// Read the uvarint length byte-by-byte (it is at most 10 bytes).
	var lenBuf []byte
	var plen uint64
	for {
		var b [1]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return nil, err
		}
		lenBuf = append(lenBuf, b[0])
		var n int
		plen, n = binary.Uvarint(lenBuf)
		if n > 0 {
			break
		}
		if len(lenBuf) >= binary.MaxVarintLen64 {
			return nil, ErrTruncated
		}
	}
	if plen > 1<<31 {
		return nil, fmt.Errorf("codec: implausible payload length %d", plen)
	}
	body := make([]byte, plen+4)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	full := append(head, lenBuf...)
	full = append(full, body...)
	payload, _, err := decodeFramePrefix(kind, full)
	if err != nil {
		return nil, err
	}
	return payload, nil
}
