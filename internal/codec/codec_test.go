package codec

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBufferReaderRoundTrip(t *testing.T) {
	var w Buffer
	w.Uint64(0)
	w.Uint64(1)
	w.Uint64(math.MaxUint64)
	w.Int(42)
	w.Bool(true)
	w.Bool(false)
	w.Float64(3.5)
	w.Float64(math.Inf(-1))

	r := NewReader(w.Bytes())
	if got := r.Uint64(); got != 0 {
		t.Errorf("Uint64 #1 = %d", got)
	}
	if got := r.Uint64(); got != 1 {
		t.Errorf("Uint64 #2 = %d", got)
	}
	if got := r.Uint64(); got != math.MaxUint64 {
		t.Errorf("Uint64 #3 = %d", got)
	}
	if got := r.Int(); got != 42 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Bool(); got != true {
		t.Errorf("Bool #1 = %v", got)
	}
	if got := r.Bool(); got != false {
		t.Errorf("Bool #2 = %v", got)
	}
	if got := r.Float64(); got != 3.5 {
		t.Errorf("Float64 #1 = %v", got)
	}
	if got := r.Float64(); !math.IsInf(got, -1) {
		t.Errorf("Float64 #2 = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	var w Buffer
	w.Uint64(300)
	r := NewReader(w.Bytes()[:1]) // cut the varint in half
	r.Uint64()
	if r.Err() == nil {
		t.Fatal("expected error on truncated varint")
	}
	r2 := NewReader(nil)
	r2.Float64()
	if r2.Err() == nil {
		t.Fatal("expected error on empty float read")
	}
	r3 := NewReader(nil)
	r3.Bool()
	if r3.Err() == nil {
		t.Fatal("expected error on empty bool read")
	}
}

func TestReaderFinishTrailing(t *testing.T) {
	var w Buffer
	w.Uint64(1)
	w.Uint64(2)
	r := NewReader(w.Bytes())
	r.Uint64()
	if err := r.Finish(); !errors.Is(err, ErrTrailing) {
		t.Fatalf("Finish = %v, want ErrTrailing", err)
	}
}

func TestNegativeIntPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int(-1) did not panic")
		}
	}()
	var w Buffer
	w.Int(-1)
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("hello summaries")
	frame := EncodeFrame(KindMisraGries, payload)
	got, err := DecodeFrame(KindMisraGries, frame)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	frame := EncodeFrame(KindGK, nil)
	got, err := DecodeFrame(KindGK, frame)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("payload = %v, want empty", got)
	}
}

func TestFrameWrongKind(t *testing.T) {
	frame := EncodeFrame(KindMisraGries, []byte("x"))
	if _, err := DecodeFrame(KindSpaceSaving, frame); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("err = %v, want ErrWrongKind", err)
	}
}

func TestFrameBadMagic(t *testing.T) {
	frame := EncodeFrame(KindMisraGries, []byte("x"))
	frame[0] = 'X'
	if _, err := DecodeFrame(KindMisraGries, frame); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestFrameBadVersion(t *testing.T) {
	frame := EncodeFrame(KindMisraGries, []byte("x"))
	frame[4] = 99
	if _, err := DecodeFrame(KindMisraGries, frame); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestFrameCorruptPayload(t *testing.T) {
	frame := EncodeFrame(KindMisraGries, []byte("abcdef"))
	frame[len(frame)-6] ^= 0xff // flip a payload byte
	if _, err := DecodeFrame(KindMisraGries, frame); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	frame := EncodeFrame(KindMisraGries, []byte("abcdef"))
	for cut := 0; cut < len(frame); cut++ {
		if _, err := DecodeFrame(KindMisraGries, frame[:cut]); err == nil {
			t.Fatalf("no error decoding frame truncated to %d bytes", cut)
		}
	}
}

func TestFrameTrailing(t *testing.T) {
	frame := EncodeFrame(KindMisraGries, []byte("x"))
	frame = append(frame, 0)
	if _, err := DecodeFrame(KindMisraGries, frame); !errors.Is(err, ErrTrailing) {
		t.Fatalf("err = %v, want ErrTrailing", err)
	}
}

func TestStreamFrames(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindGK, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, KindGK, []byte("two, longer payload")); err != nil {
		t.Fatal(err)
	}
	p1, err := ReadFrame(&buf, KindGK)
	if err != nil {
		t.Fatalf("ReadFrame #1: %v", err)
	}
	if string(p1) != "one" {
		t.Fatalf("frame #1 = %q", p1)
	}
	p2, err := ReadFrame(&buf, KindGK)
	if err != nil {
		t.Fatalf("ReadFrame #2: %v", err)
	}
	if string(p2) != "two, longer payload" {
		t.Fatalf("frame #2 = %q", p2)
	}
	if _, err := ReadFrame(&buf, KindGK); err == nil {
		t.Fatal("expected EOF-ish error on empty stream")
	}
}

func TestStreamFrameWrongKind(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, KindCountMin, []byte("p")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, KindGK); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("err = %v, want ErrWrongKind", err)
	}
}

func TestKindString(t *testing.T) {
	// Wire names come from registry registrations; the golden-corpus
	// test (package codec_test) links the full catalog into this test
	// binary, so registered tags resolve to their canonical names and
	// only unknown tags fall back to the numeric form.
	if KindMisraGries.String() != "mg" {
		t.Errorf("registered KindMisraGries.String() = %q", KindMisraGries.String())
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("unknown kind String() = %q", Kind(200).String())
	}
}

func TestPeekKind(t *testing.T) {
	frame := EncodeFrame(KindQDigest, []byte("payload"))
	k, err := PeekKind(frame)
	if err != nil || k != KindQDigest {
		t.Fatalf("PeekKind = %v, %v, want KindQDigest", k, err)
	}
	if _, err := PeekKind(frame[:3]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short frame err = %v, want ErrTruncated", err)
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 'X'
	if _, err := PeekKind(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic err = %v, want ErrBadMagic", err)
	}
	badv := append([]byte(nil), frame...)
	badv[4] = 99
	if _, err := PeekKind(badv); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version err = %v, want ErrBadVersion", err)
	}
}

// Property: any payload round-trips through frame encode/decode, both
// in-memory and over a stream.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(payload []byte, kindByte uint8) bool {
		kind := Kind(kindByte%8 + 1)
		frame := EncodeFrame(kind, payload)
		got, err := DecodeFrame(kind, frame)
		if err != nil || !bytes.Equal(got, payload) {
			return false
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, kind, payload); err != nil {
			return false
		}
		got2, err := ReadFrame(&buf, kind)
		return err == nil && bytes.Equal(got2, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBufferPoolReuse(t *testing.T) {
	w := GetBuffer()
	if w.Len() != 0 {
		t.Fatalf("pooled buffer not empty: %d bytes", w.Len())
	}
	w.Uint64(7)
	w.Float64(1.5)
	frame := EncodeFrame(KindMisraGries, w.Bytes())
	PutBuffer(w)
	// The frame must be a copy: mutating a reacquired buffer cannot
	// corrupt a frame encoded from a previous tenant.
	w2 := GetBuffer()
	defer PutBuffer(w2)
	w2.Grow(64)
	for i := 0; i < 8; i++ {
		w2.Uint64(math.MaxUint64)
	}
	payload, err := DecodeFrame(KindMisraGries, frame)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(payload)
	if got := r.Uint64(); got != 7 {
		t.Errorf("Uint64 = %d, want 7", got)
	}
	if got := r.Float64(); got != 1.5 {
		t.Errorf("Float64 = %g, want 1.5", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolSizeClassCap(t *testing.T) {
	w := new(Buffer)
	w.Grow(maxPooledBuffer + 1)
	PutBuffer(w) // must be dropped, not pooled
	if w2 := GetBuffer(); cap(w2.b) > maxPooledBuffer {
		t.Errorf("oversized buffer (cap %d) returned to pool", cap(w2.b))
	}
}

func TestBufferGrow(t *testing.T) {
	var w Buffer
	w.Uint64(1)
	before := w.Bytes()
	w.Grow(1 << 10)
	if got := w.Bytes(); len(got) != len(before) || got[0] != before[0] {
		t.Fatalf("Grow changed contents: %v vs %v", got, before)
	}
	c := cap(w.b)
	for i := 0; i < 100; i++ {
		w.Uint64(uint64(i))
	}
	if cap(w.b) != c {
		t.Errorf("Grow(1024) did not pre-size: cap went %d -> %d", c, cap(w.b))
	}
}

func TestReaderBorrow(t *testing.T) {
	var w Buffer
	w.Uint64(9)
	w.Float64(2.25)
	r := NewReader(w.Bytes())
	if got := r.Uint64(); got != 9 {
		t.Fatalf("Uint64 = %d", got)
	}
	b := r.Borrow(8)
	if len(b) != 8 {
		t.Fatalf("Borrow(8) = %d bytes", len(b))
	}
	if got := math.Float64frombits(uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56); got != 2.25 {
		t.Errorf("borrowed float bits = %g, want 2.25", got)
	}
	// Borrow must alias, not copy.
	if &b[0] != &w.b[len(w.b)-8] {
		t.Error("Borrow copied instead of aliasing")
	}
	if err := r.Finish(); err != nil {
		t.Fatal(err)
	}
	// Borrowing past the end is a recorded decode error, not a panic.
	r2 := NewReader([]byte{1, 2})
	if got := r2.Borrow(3); got != nil {
		t.Errorf("Borrow(3) of 2 bytes = %v, want nil", got)
	}
	if !errors.Is(r2.Err(), ErrTruncated) {
		t.Errorf("Err = %v, want ErrTruncated", r2.Err())
	}
}
