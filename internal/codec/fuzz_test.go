package codec

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame: no input may panic the frame decoder, and every
// frame the encoder produces must decode back to the same payload.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrame(KindMisraGries, nil))
	f.Add(EncodeFrame(KindGK, []byte("some payload")))
	f.Add([]byte("MSUM\x01\x01garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for kind := KindMisraGries; int(kind) < KindCount; kind++ {
			payload, err := DecodeFrame(kind, data)
			if err != nil {
				continue
			}
			round := EncodeFrame(kind, payload)
			got, err := DecodeFrame(kind, round)
			if err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("re-encode of decoded frame failed: %v", err)
			}
		}
	})
}

// FuzzReader: arbitrary payload bytes must never panic the primitive
// readers.
func FuzzReader(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		r.Uint64()
		r.Int()
		r.Bool()
		r.Float64()
		r.ArrayLen(8)
		_ = r.Finish()
	})
}
