// Package gk implements the Greenwald–Khanna (GK) quantile summary: a
// deterministic, compressing summary answering rank and quantile
// queries over a stream of floats with rank error at most εn using
// O((1/ε)·log(εn)) tuples.
//
// In the PODS'12 taxonomy GK is the deterministic baseline: it supports
// streaming insertion and *one-way* merging (folding a summary into
// another via the tuple-merge rule below), but it is not known to be
// fully mergeable — under repeated arbitrary merges the error guarantee
// survives (each merged tuple's uncertainty interval is the sum of its
// bracketing uncertainties, see Merge), while the *size* analysis
// breaks down: compressed size can drift above the single-stream bound.
// Experiment E06 measures exactly this, motivating the randomized
// mergeable summary of package randquant.
package gk

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// tuple summarizes g consecutive elements of the sorted input whose
// largest value is v; delta bounds the extra rank uncertainty. With
// rmin(i) = Σ_{j<=i} g_j the true rank of v_i lies in
// [rmin(i), rmin(i)+delta_i].
type tuple struct {
	v     float64
	g     uint64
	delta uint64
}

// Summary is a GK quantile summary. The zero value is not usable; use
// New. Summaries are not safe for concurrent use.
type Summary struct {
	eps    float64
	n      uint64
	tuples []tuple
	buf    []float64 // pending inserts, flushed in batch
	bufCap int
}

// New returns an empty summary with rank-error parameter eps in (0,1).
func New(eps float64) *Summary {
	if eps <= 0 || eps >= 1 {
		panic("gk: eps must be in (0, 1)")
	}
	bufCap := int(1/(2*eps)) + 1
	if bufCap < 16 {
		bufCap = 16
	}
	return &Summary{eps: eps, bufCap: bufCap}
}

// Epsilon returns the summary's error parameter.
func (s *Summary) Epsilon() float64 { return s.eps }

// N returns the number of values summarized, including merged-in ones.
func (s *Summary) N() uint64 { return s.n }

// Size returns the number of stored tuples (pending inserts included
// as one slot each). This is the space the summary actually occupies.
func (s *Summary) Size() int { return len(s.tuples) + len(s.buf) }

// Update inserts one value. NaN is rejected with a panic because it
// has no rank.
func (s *Summary) Update(v float64) {
	if math.IsNaN(v) {
		panic("gk: NaN has no rank")
	}
	s.buf = append(s.buf, v)
	s.n++
	if len(s.buf) >= s.bufCap {
		s.flush()
	}
}

// threshold is the compress/insert bound floor(2*eps*n).
func (s *Summary) threshold() uint64 {
	return uint64(2 * s.eps * float64(s.n))
}

// flush drains the insert buffer into the tuple list (one sorted
// sweep, equivalent to sequential GK inserts) and compresses.
func (s *Summary) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	out := make([]tuple, 0, len(s.tuples)+len(s.buf))
	ti := 0
	for _, v := range s.buf {
		for ti < len(s.tuples) && s.tuples[ti].v < v {
			out = append(out, s.tuples[ti])
			ti++
		}
		var delta uint64
		if len(out) == 0 && ti == 0 {
			delta = 0 // new minimum: exact
		} else if ti >= len(s.tuples) {
			delta = 0 // new maximum: exact
		} else {
			// Standard GK insert before tuple ti.
			next := s.tuples[ti]
			delta = next.g + next.delta
			if delta > 0 {
				delta--
			}
		}
		out = append(out, tuple{v: v, g: 1, delta: delta})
	}
	out = append(out, s.tuples[ti:]...)
	s.tuples = out
	s.buf = s.buf[:0]
	s.compress()
}

// compress merges adjacent tuples whose combined uncertainty fits the
// threshold, scanning right to left. The first and last tuples are
// preserved so Quantile(0) and Quantile(1) stay exact.
func (s *Summary) compress() {
	if len(s.tuples) < 3 {
		return
	}
	thr := s.threshold()
	out := s.tuples
	w := len(out) - 1 // write index, walking left
	for i := len(out) - 2; i >= 1; i-- {
		t := out[i]
		head := out[w]
		if t.g+head.g+head.delta <= thr {
			// Merge t into its right neighbour.
			head.g += t.g
			out[w] = head
		} else {
			w--
			out[w] = t
		}
	}
	w--
	out[w] = out[0]
	s.tuples = append(s.tuples[:0], out[w:]...)
}

// Flush forces pending inserts into the tuple structure; queries and
// merges do this automatically.
func (s *Summary) Flush() { s.flush() }

// Rank estimates the number of inserted values <= v, with error at
// most εn.
func (s *Summary) Rank(v float64) uint64 {
	s.flush()
	if len(s.tuples) == 0 {
		return 0
	}
	var rmin uint64
	if v < s.tuples[0].v {
		return 0
	}
	for i, t := range s.tuples {
		rmin += t.g
		if i+1 >= len(s.tuples) || s.tuples[i+1].v > v {
			// v falls between t and its successor: its rank is at
			// least rmin and at most rmax(t) + gap to successor.
			var rmaxNext uint64
			if i+1 < len(s.tuples) {
				rmaxNext = rmin + s.tuples[i+1].g + s.tuples[i+1].delta - 1
			} else {
				rmaxNext = s.n
			}
			return (rmin + rmaxNext) / 2
		}
	}
	return s.n
}

// RankBounds returns hard bounds on the rank of v: the number of
// inserted values <= v is guaranteed to lie in [lo, hi]. Unlike Rank,
// which returns a midpoint estimate, these bounds are deterministic
// certificates derived from the tuple invariants.
func (s *Summary) RankBounds(v float64) (lo, hi uint64) {
	s.flush()
	if len(s.tuples) == 0 {
		return 0, 0
	}
	if v < s.tuples[0].v {
		return 0, 0
	}
	var rmin uint64
	for i, t := range s.tuples {
		rmin += t.g
		if i+1 >= len(s.tuples) || s.tuples[i+1].v > v {
			if i+1 < len(s.tuples) {
				next := s.tuples[i+1]
				return rmin, rmin + next.g + next.delta - 1
			}
			return rmin, s.n
		}
	}
	return s.n, s.n
}

// Quantile returns a value whose rank is within εn of phi*N.
func (s *Summary) Quantile(phi float64) float64 {
	s.flush()
	if len(s.tuples) == 0 {
		return math.NaN()
	}
	if phi <= 0 {
		return s.tuples[0].v
	}
	if phi >= 1 {
		return s.tuples[len(s.tuples)-1].v
	}
	r := uint64(math.Ceil(phi * float64(s.n)))
	if r < 1 {
		r = 1
	}
	e := uint64(s.eps * float64(s.n))
	var rmin uint64
	prev := s.tuples[0].v
	for _, t := range s.tuples {
		rmin += t.g
		rmax := rmin + t.delta
		if rmax > r+e {
			return prev
		}
		prev = t.v
	}
	return s.tuples[len(s.tuples)-1].v
}

// Merge folds other into s using the standard GK tuple-merge rule: the
// tuple lists are interleaved in value order and each tuple's delta
// grows by the rank uncertainty of its position in the other summary
// (g_next + delta_next − 1 of the other's bracketing tuple). This
// preserves the invariant g+delta <= 2·eps·(n1+n2) — the error
// parameter survives — but the summary size may exceed the
// single-stream bound (GK is one-way mergeable in the PODS'12
// taxonomy; see the package comment). Summaries must share eps.
func (s *Summary) Merge(other *Summary) error {
	if other == nil {
		return core.ErrNilSummary
	}
	if s.eps != other.eps {
		return fmt.Errorf("%w: eps %v vs %v", core.ErrMismatchedShape, s.eps, other.eps)
	}
	s.flush()
	other.flush()
	if len(other.tuples) == 0 {
		return nil
	}
	if len(s.tuples) == 0 {
		s.tuples = append(s.tuples[:0], other.tuples...)
		s.n += other.n
		return nil
	}
	a, b := s.tuples, other.tuples
	out := make([]tuple, 0, len(a)+len(b))
	ai, bi := 0, 0
	for ai < len(a) || bi < len(b) {
		var t tuple
		var from, fi int
		if bi >= len(b) || (ai < len(a) && a[ai].v <= b[bi].v) {
			t, from, fi = a[ai], 0, bi
			ai++
		} else {
			t, from, fi = b[bi], 1, ai
			bi++
		}
		// Add the other summary's local uncertainty at this position.
		otherT := b
		if from == 1 {
			otherT = a
		}
		if fi < len(otherT) {
			next := otherT[fi]
			add := next.g + next.delta
			if add > 0 {
				add--
			}
			t.delta += add
		}
		out = append(out, t)
	}
	s.tuples = out
	s.n += other.n
	s.compress()
	return nil
}

// Merged returns the merge of a and b without modifying either.
func Merged(a, b *Summary) (*Summary, error) {
	out := a.Clone()
	if err := out.Merge(b); err != nil {
		return nil, err
	}
	return out, nil
}

// Clone returns a deep copy.
func (s *Summary) Clone() *Summary {
	c := New(s.eps)
	c.n = s.n
	c.tuples = append([]tuple(nil), s.tuples...)
	c.buf = append([]float64(nil), s.buf...)
	return c
}

// Reset restores the summary to its freshly-constructed state.
func (s *Summary) Reset() {
	s.n = 0
	s.tuples = s.tuples[:0]
	s.buf = s.buf[:0]
}

// checkInvariants verifies the GK invariants; used by tests.
func (s *Summary) checkInvariants() error {
	var sumG uint64
	thr := s.threshold()
	for i, t := range s.tuples {
		if t.g == 0 {
			return fmt.Errorf("tuple %d has g=0", i)
		}
		if i > 0 && t.v < s.tuples[i-1].v {
			return fmt.Errorf("tuples not sorted at %d", i)
		}
		if t.g+t.delta > thr+1 {
			return fmt.Errorf("tuple %d violates g+delta<=2εn: %d+%d > %d", i, t.g, t.delta, thr)
		}
		sumG += t.g
	}
	if sumG+uint64(len(s.buf)) != s.n {
		return fmt.Errorf("Σg=%d + buf=%d != n=%d", sumG, len(s.buf), s.n)
	}
	return nil
}

var _ core.QuantileSummary = (*Summary)(nil)
