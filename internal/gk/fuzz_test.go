package gk

import (
	"testing"

	"repro/internal/gen"
)

func FuzzUnmarshal(f *testing.F) {
	s := New(0.05)
	for _, v := range gen.UniformValues(500, 1) {
		s.Update(v)
	}
	seed, _ := s.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Summary
		if err := out.UnmarshalBinary(data); err != nil {
			return
		}
		if _, err := out.MarshalBinary(); err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
	})
}
