package gk

import (
	"testing"

	"repro/internal/gen"
)

func FuzzUnmarshal(f *testing.F) {
	s := New(0.05)
	for _, v := range gen.UniformValues(500, 1) {
		s.Update(v)
	}
	seed, _ := s.MarshalBinary()
	f.Add(seed)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Summary
		if err := out.UnmarshalBinary(data); err != nil {
			return
		}
		if _, err := out.MarshalBinary(); err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
	})
}

// FuzzMergeRoundTrip builds two same-eps summaries from the fuzzed
// byte streams, merges them, and checks the result keeps the GK
// invariant g+delta <= 2εn and survives a codec round-trip unchanged.
func FuzzMergeRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200}, []byte{5})
	f.Add([]byte{}, []byte{0, 0, 255})
	f.Fuzz(func(t *testing.T, ra, rb []byte) {
		a, b := New(0.1), New(0.1)
		for _, v := range ra {
			a.Update(float64(v))
		}
		for _, v := range rb {
			b.Update(float64(v))
		}
		n := a.N() + b.N()
		if err := a.Merge(b); err != nil {
			t.Fatalf("merge of same-eps summaries failed: %v", err)
		}
		if a.N() != n {
			t.Fatalf("merged n=%d, want %d", a.N(), n)
		}
		if err := a.checkInvariants(); err != nil {
			t.Fatalf("merged summary violates GK invariant: %v", err)
		}
		data, err := a.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var got Summary
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("round-trip rejected own frame: %v", err)
		}
		if got.N() != a.N() {
			t.Fatalf("round-trip changed n: %d -> %d", a.N(), got.N())
		}
		for _, v := range []float64{0, 100, 255} {
			if got.Rank(v) != a.Rank(v) {
				t.Fatalf("round-trip changed Rank(%v)", v)
			}
		}
	})
}
