package gk

import (
	"repro/internal/codec"
	"repro/internal/gen"
	"repro/internal/registry"
)

// init catalogs the family; see internal/registry.
func init() {
	registry.Register[Summary](codec.KindGK, "gk", registry.Spec[Summary]{
		Example: func(n int) *Summary {
			s := New(0.02)
			for _, v := range gen.UniformValues(n, 3) {
				s.Update(v)
			}
			return s
		},
		Merge: (*Summary).Merge,
		N:     (*Summary).N,
	})
}
