package gk

import "math"

// UpdateBatch inserts every value in vs. The resulting state is
// identical to calling Update(v) for each v in order: values fill the
// pending-insert buffer in bulk copies and flushes trigger at exactly
// the same points, so the amortized sorted-sweep insertion sees the
// same batches. NaN values panic, as in Update.
//
//sketch:hotpath
func (s *Summary) UpdateBatch(vs []float64) {
	for _, v := range vs {
		if math.IsNaN(v) {
			panic("gk: NaN has no rank")
		}
	}
	for len(vs) > 0 {
		room := s.bufCap - len(s.buf)
		if room <= 0 {
			s.flush()
			continue
		}
		if room > len(vs) {
			room = len(vs)
		}
		s.buf = append(s.buf, vs[:room]...)
		s.n += uint64(room)
		vs = vs[room:]
		if len(s.buf) >= s.bufCap {
			s.flush()
		}
	}
}
