package gk

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/gen"
)

func TestNewPanics(t *testing.T) {
	for _, bad := range []float64{0, -0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
}

func TestNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NaN update did not panic")
		}
	}()
	New(0.1).Update(math.NaN())
}

func TestEmpty(t *testing.T) {
	s := New(0.1)
	if s.N() != 0 || s.Size() != 0 {
		t.Fatal("empty summary not empty")
	}
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Error("Quantile on empty should be NaN")
	}
	if s.Rank(1) != 0 {
		t.Error("Rank on empty should be 0")
	}
}

func TestExactWhenSmall(t *testing.T) {
	s := New(0.1)
	vals := []float64{5, 1, 9, 3, 7}
	for _, v := range vals {
		s.Update(v)
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("Quantile(0) = %v, want 1", q)
	}
	if q := s.Quantile(1); q != 9 {
		t.Errorf("Quantile(1) = %v, want 9", q)
	}
	if r := s.Rank(4); r != 2 {
		t.Errorf("Rank(4) = %d, want 2", r)
	}
}

// Core guarantee: every quantile answer has true rank within εn of the
// target, on several distributions and ε values.
func TestQuantileGuarantee(t *testing.T) {
	const n = 100000
	for _, eps := range []float64{0.1, 0.01, 0.001} {
		for name, vals := range map[string][]float64{
			"uniform":  gen.UniformValues(n, 1),
			"normal":   gen.NormalValues(n, 2),
			"sorted":   gen.SortedValues(n),
			"reversed": gen.ReversedValues(n),
			"sawtooth": gen.SawtoothValues(n, 1000),
		} {
			s := New(eps)
			for _, v := range vals {
				s.Update(v)
			}
			if err := s.checkInvariants(); err != nil {
				t.Fatalf("eps=%v %s: %v", eps, name, err)
			}
			oracle := exact.QuantilesOf(vals)
			slack := uint64(eps*float64(n)) + 2
			for _, phi := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
				got := s.Quantile(phi)
				trueRank := oracle.Rank(got)
				target := uint64(phi * float64(n))
				diff := trueRank - target
				if target > trueRank {
					diff = target - trueRank
				}
				if diff > slack {
					t.Errorf("eps=%v %s phi=%v: rank error %d > %d", eps, name, phi, diff, slack)
				}
			}
		}
	}
}

func TestRankGuarantee(t *testing.T) {
	const n = 50000
	eps := 0.01
	vals := gen.UniformValues(n, 9)
	s := New(eps)
	for _, v := range vals {
		s.Update(v)
	}
	oracle := exact.QuantilesOf(vals)
	slack := uint64(eps*float64(n)) + 2
	for _, v := range []float64{0.001, 0.1, 0.25, 0.5, 0.77, 0.999} {
		got := s.Rank(v)
		want := oracle.Rank(v)
		diff := got - want
		if want > got {
			diff = want - got
		}
		if diff > slack {
			t.Errorf("Rank(%v) = %d, true %d, error > %d", v, got, want, diff)
		}
	}
}

// GK's reason to exist: size must stay near O((1/ε) log(εn)), far
// below n.
func TestSizeCompression(t *testing.T) {
	const n = 200000
	eps := 0.01
	s := New(eps)
	for _, v := range gen.UniformValues(n, 4) {
		s.Update(v)
	}
	s.Flush()
	// Generous ceiling: 20/eps.
	if s.Size() > int(20/eps) {
		t.Errorf("size %d too large for eps=%v, n=%d", s.Size(), eps, n)
	}
	if err := s.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateValues(t *testing.T) {
	s := New(0.05)
	const n = 10000
	for i := 0; i < n; i++ {
		s.Update(float64(i % 3))
	}
	// Values 0,1,2 each with weight n/3.
	if q := s.Quantile(0.5); q != 1 {
		t.Errorf("Quantile(0.5) = %v, want 1", q)
	}
	r := s.Rank(0)
	if math.Abs(float64(r)-float64(n)/3) > 0.05*n+2 {
		t.Errorf("Rank(0) = %d, want ~%d", r, n/3)
	}
}

func TestMergeGuarantee(t *testing.T) {
	const n = 60000
	eps := 0.02
	vals := gen.NormalValues(n, 5)
	parts := gen.PartitionContiguous(vals, 8)
	summaries := make([]*Summary, len(parts))
	for i, p := range parts {
		summaries[i] = New(eps)
		for _, v := range p {
			summaries[i].Update(v)
		}
	}
	// Balanced binary merge tree.
	for len(summaries) > 1 {
		var next []*Summary
		for i := 0; i+1 < len(summaries); i += 2 {
			if err := summaries[i].Merge(summaries[i+1]); err != nil {
				t.Fatal(err)
			}
			next = append(next, summaries[i])
		}
		if len(summaries)%2 == 1 {
			next = append(next, summaries[len(summaries)-1])
		}
		summaries = next
	}
	m := summaries[0]
	if m.N() != n {
		t.Fatalf("N = %d, want %d", m.N(), n)
	}
	if err := m.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	oracle := exact.QuantilesOf(vals)
	slack := uint64(eps*float64(n)) + 2
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		got := m.Quantile(phi)
		trueRank := oracle.Rank(got)
		target := uint64(phi * float64(n))
		diff := trueRank - target
		if target > trueRank {
			diff = target - trueRank
		}
		if diff > slack {
			t.Errorf("phi=%v: rank error %d > %d after merge tree", phi, diff, slack)
		}
	}
}

func TestMergeMismatchedEps(t *testing.T) {
	a, b := New(0.1), New(0.2)
	if err := a.Merge(b); err == nil {
		t.Fatal("mismatched eps accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestMergeWithEmpty(t *testing.T) {
	a := New(0.1)
	for _, v := range gen.UniformValues(1000, 3) {
		a.Update(v)
	}
	before := a.Quantile(0.5)
	if err := a.Merge(New(0.1)); err != nil {
		t.Fatal(err)
	}
	if a.N() != 1000 || a.Quantile(0.5) != before {
		t.Fatal("merge with empty changed state")
	}
	empty := New(0.1)
	if err := empty.Merge(a); err != nil {
		t.Fatal(err)
	}
	if empty.N() != 1000 {
		t.Fatal("merge into empty lost data")
	}
}

func TestMergedDoesNotModifyInputs(t *testing.T) {
	a, b := New(0.1), New(0.1)
	for i, v := range gen.UniformValues(2000, 7) {
		if i%2 == 0 {
			a.Update(v)
		} else {
			b.Update(v)
		}
	}
	an, bn := a.N(), b.N()
	m, err := Merged(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != an || b.N() != bn {
		t.Fatal("Merged modified an input")
	}
	if m.N() != an+bn {
		t.Fatal("Merged N wrong")
	}
}

func TestCloneAndReset(t *testing.T) {
	s := New(0.05)
	for _, v := range gen.UniformValues(5000, 1) {
		s.Update(v)
	}
	c := s.Clone()
	c.Update(9)
	if c.N() != s.N()+1 {
		t.Fatal("clone not independent")
	}
	s.Reset()
	if s.N() != 0 || s.Size() != 0 {
		t.Fatal("Reset incomplete")
	}
	s.Update(1)
	if s.N() != 1 {
		t.Fatal("unusable after Reset")
	}
}

// RankBounds must always contain the true rank, with width <= 2εn+1.
func TestRankBoundsContainTruth(t *testing.T) {
	const n = 50000
	eps := 0.01
	vals := gen.UniformValues(n, 31)
	s := New(eps)
	for _, v := range vals {
		s.Update(v)
	}
	oracle := exact.QuantilesOf(vals)
	for _, v := range []float64{-1, 0.001, 0.2, 0.5, 0.8, 0.999, 2} {
		lo, hi := s.RankBounds(v)
		truth := oracle.Rank(v)
		if truth < lo || truth > hi {
			t.Errorf("RankBounds(%v) = [%d,%d] misses true rank %d", v, lo, hi, truth)
		}
		if hi-lo > uint64(2*eps*float64(n))+1 {
			t.Errorf("RankBounds(%v) width %d exceeds 2εn", v, hi-lo)
		}
	}
	empty := New(0.1)
	if lo, hi := empty.RankBounds(1); lo != 0 || hi != 0 {
		t.Errorf("empty RankBounds = [%d,%d]", lo, hi)
	}
}

func TestExtremesAlwaysExact(t *testing.T) {
	s := New(0.01)
	vals := gen.NormalValues(50000, 13)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		s.Update(v)
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if got := s.Quantile(0); got != lo {
		t.Errorf("Quantile(0) = %v, want exact min %v", got, lo)
	}
	if got := s.Quantile(1); got != hi {
		t.Errorf("Quantile(1) = %v, want exact max %v", got, hi)
	}
}
