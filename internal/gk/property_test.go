package gk

import (
	"testing"
	"testing/quick"
)

func sanitize(vals []float64) []float64 {
	out := vals[:0]
	for _, v := range vals {
		if v == v { // drop NaN
			out = append(out, v)
		}
	}
	return out
}

// Property: the GK invariants (sorted tuples, Σg = n, g+Δ ≤ 2εn) hold
// after any sequence of updates, for several ε values.
func TestPropertyInvariants(t *testing.T) {
	f := func(vals []float64, epsRaw uint8) bool {
		eps := []float64{0.5, 0.1, 0.02}[epsRaw%3]
		s := New(eps)
		for _, v := range sanitize(vals) {
			s.Update(v)
		}
		s.Flush()
		return s.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: invariants survive any two-way merge split.
func TestPropertyMergeInvariants(t *testing.T) {
	f := func(vals []float64, cut uint8) bool {
		clean := sanitize(vals)
		split := 0
		if len(clean) > 0 {
			split = int(cut) % (len(clean) + 1)
		}
		a, b := New(0.1), New(0.1)
		for i, v := range clean {
			if i < split {
				a.Update(v)
			} else {
				b.Update(v)
			}
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		if a.N() != uint64(len(clean)) {
			return false
		}
		return a.checkInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: RankBounds always bracket Rank, and Rank is monotone.
func TestPropertyRankBoundsBracket(t *testing.T) {
	f := func(vals []float64, q1, q2 float64) bool {
		if q1 != q1 || q2 != q2 {
			return true
		}
		s := New(0.1)
		for _, v := range sanitize(vals) {
			s.Update(v)
		}
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		lo1, hi1 := s.RankBounds(q1)
		r1 := s.Rank(q1)
		if r1 < lo1 || r1 > hi1 {
			return false
		}
		return s.Rank(q1) <= s.Rank(q2) && s.Rank(q2) <= s.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
