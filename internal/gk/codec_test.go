package gk

import (
	"testing"

	"repro/internal/gen"
)

func TestCodecRoundTrip(t *testing.T) {
	s := New(0.02)
	for _, v := range gen.NormalValues(30000, 21) {
		s.Update(v)
	}
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.N() != s.N() || got.Epsilon() != s.Epsilon() || got.Size() != s.Size() {
		t.Fatal("round-trip changed header state")
	}
	for _, phi := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got.Quantile(phi) != s.Quantile(phi) {
			t.Errorf("phi=%v: %v != %v", phi, got.Quantile(phi), s.Quantile(phi))
		}
	}
	if err := got.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	s := New(0.1)
	s.Update(1)
	s.Update(2)
	data, _ := s.MarshalBinary()
	data[len(data)-5] ^= 0xff
	var got Summary
	if err := got.UnmarshalBinary(data); err == nil {
		t.Fatal("corrupted frame accepted")
	}
}

func TestCodecRejectsInconsistentWeight(t *testing.T) {
	s := New(0.1)
	for _, v := range gen.UniformValues(100, 1) {
		s.Update(v)
	}
	s.Flush()
	s.n++ // corrupt the in-memory state before encoding
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := got.UnmarshalBinary(data); err == nil {
		t.Fatal("inconsistent weight accepted")
	}
}

func TestCodecEmptySummary(t *testing.T) {
	s := New(0.1)
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got.N() != 0 || got.Size() != 0 {
		t.Fatal("empty round-trip not empty")
	}
}
