package gk

import (
	"fmt"

	"repro/internal/codec"
)

// MarshalBinary encodes the summary (pending inserts are flushed
// first). It implements encoding.BinaryMarshaler.
//
// The flush is an idempotent canonicalization, not an impurity: the
// buffered inserts are part of the logical state and must land in the
// tuple list before it is serialized, and flushing twice is a no-op.
// Callers hold exclusive access during encode (the merge plane
// encodes under the slot lock), so the mutation cannot race.
//
//sketch:encodemutates
func (s *Summary) MarshalBinary() ([]byte, error) {
	s.flush()
	w := codec.GetBuffer()
	defer codec.PutBuffer(w)
	// eps float + n + len, then (float, g, delta) per tuple.
	w.Grow(8 + 2*10 + len(s.tuples)*(8+2*10))
	w.Float64(s.eps)
	w.Uint64(s.n)
	w.Int(len(s.tuples))
	for _, t := range s.tuples {
		w.Float64(t.v)
		w.Uint64(t.g)
		w.Uint64(t.delta)
	}
	return codec.EncodeFrame(codec.KindGK, w.Bytes()), nil
}

// UnmarshalBinary decodes a summary previously encoded with
// MarshalBinary, replacing the receiver's contents. It implements
// encoding.BinaryUnmarshaler.
func (s *Summary) UnmarshalBinary(data []byte) error {
	payload, err := codec.DecodeFrame(codec.KindGK, data)
	if err != nil {
		return err
	}
	r := codec.NewReader(payload)
	eps := r.Float64()
	n := r.Uint64()
	m := r.ArrayLen(10)
	if r.Err() != nil {
		return r.Err()
	}
	if eps <= 0 || eps >= 1 {
		return fmt.Errorf("gk: invalid eps %v in frame", eps)
	}
	tuples := make([]tuple, 0, m)
	var sumG uint64
	for i := 0; i < m; i++ {
		tp := tuple{v: r.Float64(), g: r.Uint64(), delta: r.Uint64()}
		tuples = append(tuples, tp)
		sumG += tp.g
	}
	if err := r.Finish(); err != nil {
		return err
	}
	if sumG != n {
		return fmt.Errorf("gk: frame weight %d != n %d", sumG, n)
	}
	out := New(eps)
	out.n = n
	out.tuples = tuples
	*s = *out
	return nil
}
