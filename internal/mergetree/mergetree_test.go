package mergetree

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/gen"
	"repro/internal/mg"
)

// counterBox is a trivial mergeable "summary" (an exact counter) used
// to verify topology mechanics independent of sketch behavior.
type counterBox struct {
	n      uint64
	merges int
}

func mergeBoxes(dst, src *counterBox) error {
	dst.n += src.n
	dst.merges++
	return nil
}

func boxes(counts ...uint64) []*counterBox {
	out := make([]*counterBox, len(counts))
	for i, c := range counts {
		out[i] = &counterBox{n: c}
	}
	return out
}

func TestSequential(t *testing.T) {
	got, err := Sequential(boxes(1, 2, 3, 4), mergeBoxes)
	if err != nil {
		t.Fatal(err)
	}
	if got.n != 10 || got.merges != 3 {
		t.Fatalf("n=%d merges=%d", got.n, got.merges)
	}
}

func TestBinary(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 17} {
		counts := make([]uint64, size)
		var want uint64
		for i := range counts {
			counts[i] = uint64(i + 1)
			want += counts[i]
		}
		got, err := Binary(boxes(counts...), mergeBoxes)
		if err != nil {
			t.Fatal(err)
		}
		if got.n != want {
			t.Fatalf("size=%d: n=%d, want %d", size, got.n, want)
		}
	}
}

func TestRandom(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		got, err := Random(boxes(1, 2, 3, 4, 5, 6, 7), seed, mergeBoxes)
		if err != nil {
			t.Fatal(err)
		}
		if got.n != 28 {
			t.Fatalf("seed=%d: n=%d, want 28", seed, got.n)
		}
	}
}

func TestParallel(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, size := range []int{1, 2, 3, 9, 64} {
			counts := make([]uint64, size)
			var want uint64
			for i := range counts {
				counts[i] = uint64(i * 3)
				want += counts[i]
			}
			got, err := Parallel(boxes(counts...), workers, mergeBoxes)
			if err != nil {
				t.Fatal(err)
			}
			if got.n != want {
				t.Fatalf("workers=%d size=%d: n=%d, want %d", workers, size, got.n, want)
			}
		}
	}
}

func TestEmptyParts(t *testing.T) {
	if _, err := Sequential(nil, mergeBoxes); !errors.Is(err, ErrNoParts) {
		t.Error("Sequential accepted empty")
	}
	if _, err := Binary(nil, mergeBoxes); !errors.Is(err, ErrNoParts) {
		t.Error("Binary accepted empty")
	}
	if _, err := Random(nil, 1, mergeBoxes); !errors.Is(err, ErrNoParts) {
		t.Error("Random accepted empty")
	}
	if _, err := Parallel(nil, 4, mergeBoxes); !errors.Is(err, ErrNoParts) {
		t.Error("Parallel accepted empty")
	}
}

func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	failing := func(dst, src *counterBox) error {
		if src.n == 3 {
			return boom
		}
		return mergeBoxes(dst, src)
	}
	if _, err := Sequential(boxes(1, 2, 3, 4), failing); !errors.Is(err, boom) {
		t.Errorf("Sequential err = %v", err)
	}
	if _, err := Binary(boxes(1, 3, 2, 2), failing); !errors.Is(err, boom) {
		t.Errorf("Binary err = %v", err)
	}
	if _, err := Random(boxes(1, 3, 2, 2), 7, failing); !errors.Is(err, boom) {
		t.Errorf("Random err = %v", err)
	}
	// Parallel must not deadlock on error (the merge order is
	// nondeterministic, so the error may or may not fire; both are
	// acceptable, but the call must return).
	for w := 1; w <= 4; w++ {
		_, err := Parallel(boxes(1, 3, 2, 2, 5, 6), w, failing)
		if err != nil && !errors.Is(err, boom) {
			t.Errorf("Parallel err = %v", err)
		}
	}
}

// End-to-end: all four topologies produce MG summaries within the
// bound on a real workload, and all yield the identical N.
func TestTopologiesWithMG(t *testing.T) {
	const n = 60000
	const k = 16
	stream := gen.NewZipf(2000, 1.3, 5).Stream(n)
	truth := exact.FreqOf(stream)
	parts := gen.PartitionContiguous(stream, 12)
	build := func(part []core.Item) *mg.Summary {
		s := mg.New(k)
		for _, x := range part {
			s.Update(x, 1)
		}
		return s
	}
	merge := MergeFunc[*mg.Summary]((*mg.Summary).Merge)

	folds := map[string]func(parts []*mg.Summary, m MergeFunc[*mg.Summary]) (*mg.Summary, error){
		"sequential": Sequential[*mg.Summary],
		"binary":     Binary[*mg.Summary],
		"random": func(p []*mg.Summary, m MergeFunc[*mg.Summary]) (*mg.Summary, error) {
			return Random(p, 9, m)
		},
		"parallel": func(p []*mg.Summary, m MergeFunc[*mg.Summary]) (*mg.Summary, error) {
			return Parallel(p, 4, m)
		},
	}
	for name, fold := range folds {
		got, err := BuildAndMerge(parts, build, fold, merge)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.N() != n {
			t.Fatalf("%s: N=%d, want %d", name, got.N(), n)
		}
		if got.ErrorBound() > core.MGBound(n, k) {
			t.Errorf("%s: bound %d > %d", name, got.ErrorBound(), core.MGBound(n, k))
		}
		top := truth.Counters()[0]
		if e := got.Estimate(top.Item); !e.Contains(top.Count) {
			t.Errorf("%s: top item interval %v misses %d", name, e, top.Count)
		}
	}
}

func TestParallelManyParts(t *testing.T) {
	const parts = 500
	counts := make([]uint64, parts)
	var want uint64
	for i := range counts {
		counts[i] = uint64(i)
		want += counts[i]
	}
	got, err := Parallel(boxes(counts...), 8, mergeBoxes)
	if err != nil {
		t.Fatal(err)
	}
	if got.n != want {
		t.Fatalf("n=%d, want %d", got.n, want)
	}
	if got.merges == 0 {
		t.Fatal("no merges recorded")
	}
}

func ExampleSequential() {
	parts := boxes(10, 20, 30)
	total, _ := Sequential(parts, mergeBoxes)
	fmt.Println(total.n)
	// Output: 60
}

// Parallel must return the first merge error and stop claiming new
// work: a worker that observes the recorded error exits before
// starting another merge, so the number of merge calls is bounded by
// the worker count — not by the partition count.
func TestParallelPropagatesFirstError(t *testing.T) {
	sentinel := errors.New("incompatible parts")
	const workers = 4
	parts := boxes(make([]uint64, 4*workers)...)
	var calls atomic.Int64
	_, err := Parallel(parts, workers, func(dst, src *counterBox) error {
		calls.Add(1)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err=%v, want the first merge error", err)
	}
	if got := calls.Load(); got > workers {
		t.Fatalf("%d merge calls after the first error, want <= %d (one in flight per worker)", got, workers)
	}
}

// Satellite regression for the pairing reduction's error path: a
// MergeFunc failing at every possible call position must neither
// deadlock nor strand a worker, and the sentinel must surface. The old
// channel-based Parallel could leave workers blocked on the pending
// channel when a merge failed mid-drain; the pairing reduction has no
// queue to block on, so every one of these calls must return promptly.
func TestParallelFailingMergeAtEveryPosition(t *testing.T) {
	sentinel := errors.New("injected failure")
	for _, size := range []int{2, 3, 7, 16, 33} {
		maxCalls := size - 1 // merges performed by a clean fold
		for _, workers := range []int{1, 2, 4, 8} {
			for failAt := 0; failAt < maxCalls; failAt++ {
				var calls atomic.Int64
				_, err := Parallel(boxes(make([]uint64, size)...), workers,
					func(dst, src *counterBox) error {
						if calls.Add(1)-1 == int64(failAt) {
							return sentinel
						}
						return mergeBoxes(dst, src)
					})
				if !errors.Is(err, sentinel) {
					t.Fatalf("size=%d workers=%d failAt=%d: err=%v, want sentinel",
						size, workers, failAt, err)
				}
			}
		}
	}
}

// The reduction must stay correct when merges race against the claim
// counter: many parts, many workers, exact counting.
func TestParallelTreeShape(t *testing.T) {
	const size = 129 // odd leftovers at several rounds
	counts := make([]uint64, size)
	var want uint64
	for i := range counts {
		counts[i] = uint64(i + 1)
		want += counts[i]
	}
	for _, workers := range []int{1, 3, 16} {
		got, err := Parallel(boxes(counts...), workers, mergeBoxes)
		if err != nil {
			t.Fatal(err)
		}
		if got.n != want {
			t.Fatalf("workers=%d: n=%d, want %d", workers, got.n, want)
		}
	}
}
