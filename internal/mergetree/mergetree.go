// Package mergetree orchestrates merges of summaries over different
// aggregation topologies. The PODS'12 mergeability definition demands
// that a summary's guarantees hold for *every* merge order; these
// helpers are how the experiments and tests exercise that universal
// quantifier: the same partition list is folded sequentially (one-way
// streaming), as a balanced binary tree (MapReduce-style), in a random
// order (ad-hoc gossip), and concurrently.
//
// All helpers are generic over the summary type; the merge callback
// folds src into dst (dst.Merge(src) for every summary in this
// repository). The parts slice is consumed: callers must not reuse the
// summaries afterwards.
package mergetree

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/gen"
)

// MergeFunc folds src into dst.
type MergeFunc[S any] func(dst, src S) error

// ErrNoParts is returned when an empty partition list is folded.
var ErrNoParts = errors.New("mergetree: no summaries to merge")

// Sequential folds parts left to right: ((p0 ⊎ p1) ⊎ p2) ⊎ … — the
// one-way/streaming topology (also the star topology from the
// aggregator's point of view).
func Sequential[S any](parts []S, merge MergeFunc[S]) (S, error) {
	var zero S
	if len(parts) == 0 {
		return zero, ErrNoParts
	}
	acc := parts[0]
	for _, p := range parts[1:] {
		if err := merge(acc, p); err != nil {
			return zero, err
		}
	}
	return acc, nil
}

// Binary folds parts as a balanced binary tree: pairs are merged,
// then pairs of results, and so on — the MapReduce/combiner topology.
func Binary[S any](parts []S, merge MergeFunc[S]) (S, error) {
	var zero S
	if len(parts) == 0 {
		return zero, ErrNoParts
	}
	for len(parts) > 1 {
		next := parts[:0]
		for i := 0; i+1 < len(parts); i += 2 {
			if err := merge(parts[i], parts[i+1]); err != nil {
				return zero, err
			}
			next = append(next, parts[i])
		}
		if len(parts)%2 == 1 {
			next = append(next, parts[len(parts)-1])
		}
		parts = next
	}
	return parts[0], nil
}

// Random repeatedly merges two uniformly chosen summaries until one
// remains — the adversarial "arbitrary order" topology of the
// mergeability definition, deterministic per seed.
func Random[S any](parts []S, seed uint64, merge MergeFunc[S]) (S, error) {
	var zero S
	if len(parts) == 0 {
		return zero, ErrNoParts
	}
	rng := gen.NewRNG(seed)
	live := append([]S(nil), parts...)
	for len(live) > 1 {
		i := rng.Intn(len(live))
		j := rng.Intn(len(live) - 1)
		if j >= i {
			j++
		}
		if err := merge(live[i], live[j]); err != nil {
			return zero, err
		}
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	return live[0], nil
}

// Parallel folds parts with up to workers concurrent binary merges —
// the topology a multi-core aggregator actually runs. The fold is a
// lock-free pairing reduction: summaries live in a slice and are
// combined round by round as a balanced binary tree (pair (2i, 2i+1)
// merges into slot 2i), with workers claiming pair indices off a
// shared atomic counter. No channels, no mutex on the happy path, and
// every summary is owned by exactly one goroutine at a time, so the
// summaries themselves need no locking. The tree shape keeps merge
// cost balanced: after r rounds every survivor has absorbed ~2^r
// inputs, exactly like Binary but with the pairs of each round
// executing concurrently.
//
// The first merge error aborts the fold: workers stop claiming pairs,
// the current round drains, and the error is returned. A failed merge
// can never strand a worker — there is no queue to block on, only the
// claim counter, which monotonically runs off the end of the round.
func Parallel[S any](parts []S, workers int, merge MergeFunc[S]) (S, error) {
	var zero S
	n := len(parts)
	if n == 0 {
		return zero, ErrNoParts
	}
	if workers < 1 {
		workers = 1
	}
	buf := append(make([]S, 0, n), parts...)

	var failed atomic.Bool
	var errMu sync.Mutex
	var firstErr error
	record := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		failed.Store(true)
	}

	for n > 1 {
		pairs := n / 2
		w := workers
		if w > pairs {
			w = pairs
		}
		if w == 1 {
			// Small tail rounds run inline: no goroutine or barrier
			// cost when there is nothing left to parallelize.
			for i := 0; i < pairs && !failed.Load(); i++ {
				if err := merge(buf[2*i], buf[2*i+1]); err != nil {
					record(err)
				}
			}
		} else {
			var next atomic.Int64
			var wg sync.WaitGroup
			for k := 0; k < w; k++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					mergeRound(buf, pairs, &next, &failed, merge, record)
				}()
			}
			wg.Wait()
		}
		if failed.Load() {
			return zero, firstErr
		}
		// Compact the round's winners to the front; an odd leftover
		// survives to the next round untouched.
		for i := 1; i < pairs; i++ {
			buf[i] = buf[2*i]
		}
		if n%2 == 1 {
			buf[pairs] = buf[n-1]
			n = pairs + 1
		} else {
			n = pairs
		}
	}
	return buf[0], nil
}

// mergeRound is one round of the pairing reduction: claim pair index i
// from next, merge buf[2i+1] into buf[2i], repeat until the counter
// runs past pairs or a failure is flagged. Claiming is a single atomic
// add; the slots of a claimed pair are touched by exactly one worker,
// so the round needs no further synchronization.
//
//sketch:hotpath
func mergeRound[S any](buf []S, pairs int, next *atomic.Int64, failed *atomic.Bool, merge MergeFunc[S], record func(error)) {
	for !failed.Load() {
		i := next.Add(1) - 1
		if i >= int64(pairs) {
			return
		}
		if err := merge(buf[2*i], buf[2*i+1]); err != nil {
			record(err)
			return
		}
	}
}

// BuildAndMerge constructs one summary per partition with build, then
// folds them with the chosen topology. It is the common shape of every
// distributed experiment in this repository.
func BuildAndMerge[S any, T any](
	parts [][]T,
	build func(part []T) S,
	fold func(parts []S, merge MergeFunc[S]) (S, error),
	merge MergeFunc[S],
) (S, error) {
	summaries := make([]S, len(parts))
	for i, p := range parts {
		summaries[i] = build(p)
	}
	return fold(summaries, merge)
}
