// Package mergetree orchestrates merges of summaries over different
// aggregation topologies. The PODS'12 mergeability definition demands
// that a summary's guarantees hold for *every* merge order; these
// helpers are how the experiments and tests exercise that universal
// quantifier: the same partition list is folded sequentially (one-way
// streaming), as a balanced binary tree (MapReduce-style), in a random
// order (ad-hoc gossip), and concurrently.
//
// All helpers are generic over the summary type; the merge callback
// folds src into dst (dst.Merge(src) for every summary in this
// repository). The parts slice is consumed: callers must not reuse the
// summaries afterwards.
package mergetree

import (
	"errors"
	"sync"

	"repro/internal/gen"
)

// MergeFunc folds src into dst.
type MergeFunc[S any] func(dst, src S) error

// ErrNoParts is returned when an empty partition list is folded.
var ErrNoParts = errors.New("mergetree: no summaries to merge")

// Sequential folds parts left to right: ((p0 ⊎ p1) ⊎ p2) ⊎ … — the
// one-way/streaming topology (also the star topology from the
// aggregator's point of view).
func Sequential[S any](parts []S, merge MergeFunc[S]) (S, error) {
	var zero S
	if len(parts) == 0 {
		return zero, ErrNoParts
	}
	acc := parts[0]
	for _, p := range parts[1:] {
		if err := merge(acc, p); err != nil {
			return zero, err
		}
	}
	return acc, nil
}

// Binary folds parts as a balanced binary tree: pairs are merged,
// then pairs of results, and so on — the MapReduce/combiner topology.
func Binary[S any](parts []S, merge MergeFunc[S]) (S, error) {
	var zero S
	if len(parts) == 0 {
		return zero, ErrNoParts
	}
	for len(parts) > 1 {
		next := parts[:0]
		for i := 0; i+1 < len(parts); i += 2 {
			if err := merge(parts[i], parts[i+1]); err != nil {
				return zero, err
			}
			next = append(next, parts[i])
		}
		if len(parts)%2 == 1 {
			next = append(next, parts[len(parts)-1])
		}
		parts = next
	}
	return parts[0], nil
}

// Random repeatedly merges two uniformly chosen summaries until one
// remains — the adversarial "arbitrary order" topology of the
// mergeability definition, deterministic per seed.
func Random[S any](parts []S, seed uint64, merge MergeFunc[S]) (S, error) {
	var zero S
	if len(parts) == 0 {
		return zero, ErrNoParts
	}
	rng := gen.NewRNG(seed)
	live := append([]S(nil), parts...)
	for len(live) > 1 {
		i := rng.Intn(len(live))
		j := rng.Intn(len(live) - 1)
		if j >= i {
			j++
		}
		if err := merge(live[i], live[j]); err != nil {
			return zero, err
		}
		live[j] = live[len(live)-1]
		live = live[:len(live)-1]
	}
	return live[0], nil
}

// Parallel folds parts with up to workers concurrent binary merges —
// the topology a multi-core aggregator actually runs. Each summary is
// owned by exactly one goroutine at a time, so the summaries
// themselves need no locking. The first merge error aborts the fold.
func Parallel[S any](parts []S, workers int, merge MergeFunc[S]) (S, error) {
	var zero S
	if len(parts) == 0 {
		return zero, ErrNoParts
	}
	if workers < 1 {
		workers = 1
	}
	// Work-stealing reduction: a channel holds mergeable summaries;
	// each worker takes two, merges, and puts the result back.
	pending := make(chan S, len(parts))
	for _, p := range parts {
		pending <- p
	}
	remaining := len(parts)

	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || remaining <= 1 {
					mu.Unlock()
					return
				}
				remaining--
				mu.Unlock()
				// Claim two summaries. remaining was decremented by
				// one because two leave and one returns.
				a := <-pending
				b := <-pending
				if err := merge(a, b); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					remaining++ // undo; no result was produced
					mu.Unlock()
					// Return both inputs so workers blocked on the
					// channel can always make progress.
					pending <- a
					pending <- b
					return
				}
				pending <- a
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return zero, firstErr
	}
	return <-pending, nil
}

// BuildAndMerge constructs one summary per partition with build, then
// folds them with the chosen topology. It is the common shape of every
// distributed experiment in this repository.
func BuildAndMerge[S any, T any](
	parts [][]T,
	build func(part []T) S,
	fold func(parts []S, merge MergeFunc[S]) (S, error),
	merge MergeFunc[S],
) (S, error) {
	summaries := make([]S, len(parts))
	for i, p := range parts {
		summaries[i] = build(p)
	}
	return fold(summaries, merge)
}
