package mergetree

import "fmt"

// Topologies names the fold orders Metamorphic exercises.
var Topologies = []string{"sequential", "binary", "random", "parallel"}

// Metamorphic is the mergeability definition's universal quantifier as
// a test helper: it folds independent clones of parts under every
// merge topology (sequential, balanced binary, seeded random, and
// concurrent) and hands each result to check. A summary family is
// mergeable exactly when check passes for all of them — the guarantee
// may not depend on the merge order.
//
// parts are never consumed; each fold runs on fresh clones. check
// receives the topology name for error reporting and must return an
// error when the merged summary violates the family's guarantee.
func Metamorphic[S any](parts []S, clone func(S) S, merge MergeFunc[S], check func(topology string, merged S) error) error {
	folds := map[string]func([]S, MergeFunc[S]) (S, error){
		"sequential": Sequential[S],
		"binary":     Binary[S],
		"random": func(ps []S, m MergeFunc[S]) (S, error) {
			return Random(ps, 0x5eed_c0ffee, m)
		},
		"parallel": func(ps []S, m MergeFunc[S]) (S, error) {
			return Parallel(ps, 4, m)
		},
	}
	for _, name := range Topologies {
		clones := make([]S, len(parts))
		for i, p := range parts {
			clones[i] = clone(p)
		}
		merged, err := folds[name](clones, merge)
		if err != nil {
			return fmt.Errorf("mergetree: %s fold failed: %w", name, err)
		}
		if err := check(name, merged); err != nil {
			return fmt.Errorf("mergetree: %s merge order violates guarantee: %w", name, err)
		}
	}
	return nil
}
