package gen

import (
	"testing"

	"repro/internal/core"
)

func TestFlowTraceBasics(t *testing.T) {
	ft := DefaultFlowTrace(1)
	trace := ft.Generate(100000)
	if len(trace) != 100000 {
		t.Fatalf("len = %d", len(trace))
	}
	counts := make(map[core.Item]int)
	for _, x := range trace {
		counts[x]++
	}
	if len(counts) < ft.ActiveFlows {
		t.Errorf("only %d distinct flows, want at least %d", len(counts), ft.ActiveFlows)
	}
	// Heavy tail: the biggest flow should dwarf the median flow.
	max, total := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		total += c
	}
	if max < 50*total/len(counts)/1 {
		t.Errorf("no elephants: max flow %d vs mean %d", max, total/len(counts))
	}
}

func TestFlowTraceDeterminism(t *testing.T) {
	a := DefaultFlowTrace(7).Generate(5000)
	b := DefaultFlowTrace(7).Generate(5000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed traces differ")
		}
	}
	c := DefaultFlowTrace(8).Generate(5000)
	same := true
	for i := 0; i < 100; i++ {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFlowTraceDegenerateParams(t *testing.T) {
	ft := FlowTrace{ActiveFlows: 0, ParetoAlpha: -1, MinFlowSize: 0, Seed: 1}
	trace := ft.Generate(100)
	if len(trace) != 100 {
		t.Fatalf("degenerate params broke generation: %d", len(trace))
	}
}

func TestFlowTraceChurn(t *testing.T) {
	ft := FlowTrace{ActiveFlows: 64, ParetoAlpha: 1.5, MinFlowSize: 1, Seed: 3}
	trace := ft.Generate(50000)
	// The second half must contain flows unseen in the first half
	// (churn), and flow IDs never repeat after finishing: a flow's
	// packet positions are contiguous-ish but IDs increase over time.
	first := make(map[core.Item]bool)
	for _, x := range trace[:25000] {
		first[x] = true
	}
	fresh := 0
	for _, x := range trace[25000:] {
		if !first[x] {
			fresh++
		}
	}
	if fresh == 0 {
		t.Error("no flow churn in second half")
	}
}
