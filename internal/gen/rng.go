// Package gen provides the deterministic synthetic workloads used by
// the tests, examples and experiment harness: Zipf-distributed item
// streams (the standard skewed model for heavy-hitter evaluations),
// uniform and adversarial streams, float value streams for quantile
// summaries, planar point clouds for the geometric summaries, and
// stream partitioners that model distributed data placement.
//
// The target paper has no empirical section, so these generators stand
// in for the proprietary traces this literature usually evaluates on
// (see DESIGN.md §2); every generator is seeded and bit-reproducible.
//
// # Determinism contract
//
// Every randomized entry point in this package takes its seed as an
// explicit uint64 parameter and produces a byte-identical stream for a
// given (seed, parameters) pair — across runs, platforms, and Go
// releases. Nothing in this package reads math/rand's global state,
// time, or any other ambient source, and nothing else in this module
// may: this package is the module's only sanctioned randomness source,
// a boundary enforced by the detrand analyzer in cmd/sketchlint.
// Callers that need independent streams derive them by passing
// distinct seeds, never by sharing an RNG across goroutines (RNG is
// not safe for concurrent use).
package gen

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). It is intentionally independent of math/rand so that
// streams are stable across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Equal seeds yield
// identical output sequences forever — the seed is the generator's
// complete state, so experiments record it and nothing more. There is
// deliberately no time- or entropy-seeded constructor; callers wanting
// "fresh" randomness must surface a seed parameter to their own caller
// instead (see the package determinism contract).
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// State returns the generator's current state: the seed that, passed
// to NewRNG, reproduces the remaining stream exactly. Codecs persist
// an RNG with State so that marshaling is pure — encoding a summary
// twice yields identical bytes and never perturbs its future stream.
func (r *RNG) State() uint64 { return r.state }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("gen: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Norm returns a standard normal variate (Box–Muller).
func (r *RNG) Norm() float64 {
	// Reject u1 == 0 so the log is finite.
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Shuffle permutes s in place (Fisher–Yates).
func Shuffle[T any](r *RNG, s []T) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}
