package gen

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(3)
	s := make([]int, 100)
	for i := range s {
		s[i] = i
	}
	Shuffle(r, s)
	seen := make(map[int]bool)
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatal("shuffle lost elements")
	}
}

func TestZipfSkew(t *testing.T) {
	const n = 100000
	z := NewZipf(1000, 1.5, 1)
	counts := make(map[core.Item]int)
	for i := 0; i < n; i++ {
		counts[z.Sample()]++
	}
	// Rank-1 item should dominate: with alpha=1.5 over 1000 items its
	// probability is 1/zeta ≈ 0.39.
	top := counts[z.ItemForRank(1)]
	if top < n/4 {
		t.Errorf("rank-1 frequency = %d, want > %d", top, n/4)
	}
	// Monotonicity of the first few ranks (statistically robust).
	if counts[z.ItemForRank(1)] <= counts[z.ItemForRank(2)] {
		t.Error("rank 1 not more frequent than rank 2")
	}
	if counts[z.ItemForRank(2)] <= counts[z.ItemForRank(4)] {
		t.Error("rank 2 not more frequent than rank 4")
	}
}

func TestZipfAlphaZeroIsUniform(t *testing.T) {
	const n = 100000
	z := NewZipf(10, 0, 2)
	counts := make(map[core.Item]int)
	for i := 0; i < n; i++ {
		counts[z.Sample()]++
	}
	for item, c := range counts {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("item %d count %d deviates from uniform %d", item, c, n/10)
		}
	}
}

func TestZipfDeterminism(t *testing.T) {
	a := NewZipf(100, 1.1, 9).Stream(1000)
	b := NewZipf(100, 1.1, 9).Stream(1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed Zipf streams differ")
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero universe":  func() { NewZipf(0, 1, 1) },
		"negative alpha": func() { NewZipf(10, -1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestUniformSequentialBlocks(t *testing.T) {
	u := Uniform(1000, 50, 4)
	if len(u) != 1000 {
		t.Fatalf("Uniform len = %d", len(u))
	}
	for _, x := range u {
		if x >= 50 {
			t.Fatalf("Uniform item %d out of universe", x)
		}
	}
	s := Sequential(10)
	for i, x := range s {
		if x != core.Item(i) {
			t.Fatalf("Sequential[%d] = %d", i, x)
		}
	}
	b := Blocks(100, 10)
	if len(b) != 100 {
		t.Fatalf("Blocks len = %d", len(b))
	}
	if b[0] != b[9] || b[0] == b[10] {
		t.Fatalf("Blocks not in runs: %v", b[:20])
	}
}

func TestValueGenerators(t *testing.T) {
	if v := UniformValues(100, 1); len(v) != 100 {
		t.Fatal("UniformValues length")
	}
	if v := NormalValues(100, 1); len(v) != 100 {
		t.Fatal("NormalValues length")
	}
	ln := LogNormalValues(1000, 0, 1, 1)
	for _, v := range ln {
		if v <= 0 {
			t.Fatal("LogNormalValues produced non-positive value")
		}
	}
	sv := SortedValues(5)
	if !sort.Float64sAreSorted(sv) {
		t.Fatal("SortedValues not sorted")
	}
	rv := ReversedValues(5)
	if rv[0] != 4 || rv[4] != 0 {
		t.Fatalf("ReversedValues = %v", rv)
	}
	st := SawtoothValues(100, 7)
	if len(st) != 100 {
		t.Fatalf("SawtoothValues len = %d", len(st))
	}
	st2 := SawtoothValues(5, 0) // period normalized to 1
	if len(st2) != 5 {
		t.Fatalf("SawtoothValues len = %d", len(st2))
	}
}

func TestPointGenerators(t *testing.T) {
	up := UniformPoints(200, 1)
	for _, p := range up {
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
			t.Fatalf("UniformPoints out of unit square: %v", p)
		}
	}
	rp := RingPoints(500, 2, 0.01, 1)
	for _, p := range rp {
		r := math.Hypot(p.X, p.Y)
		if r < 1.5 || r > 2.5 {
			t.Fatalf("RingPoints radius %v far from 2", r)
		}
	}
	cp := ClusteredPoints(300, 3, 0.01, 1)
	if len(cp) != 300 {
		t.Fatal("ClusteredPoints length")
	}
	gp := GaussianPoints(300, 2, 0.5, math.Pi/6, 1)
	if len(gp) != 300 {
		t.Fatal("GaussianPoints length")
	}
}

func TestQuantileOf(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if q := QuantileOf(vals, 0); q != 1 {
		t.Errorf("QuantileOf(0) = %v", q)
	}
	if q := QuantileOf(vals, 0.5); q != 3 {
		t.Errorf("QuantileOf(0.5) = %v", q)
	}
	if q := QuantileOf(vals, 1); q != 5 {
		t.Errorf("QuantileOf(1) = %v", q)
	}
	if !math.IsNaN(QuantileOf(nil, 0.5)) {
		t.Error("QuantileOf(nil) should be NaN")
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Error("QuantileOf mutated its input")
	}
}

func TestPartitionsPreserveStream(t *testing.T) {
	stream := NewZipf(100, 1.2, 5).Stream(997)
	count := func(parts [][]core.Item) map[core.Item]int {
		m := make(map[core.Item]int)
		for _, p := range parts {
			for _, x := range p {
				m[x]++
			}
		}
		return m
	}
	want := count([][]core.Item{stream})
	for name, parts := range map[string][][]core.Item{
		"roundrobin": PartitionRoundRobin(stream, 7),
		"contiguous": PartitionContiguous(stream, 7),
		"random":     PartitionRandomSizes(stream, 7, 1),
		"byhash":     PartitionByHash(stream, 7, func(x core.Item) uint64 { return uint64(x) }),
	} {
		if len(parts) != 7 {
			t.Errorf("%s: %d parts, want 7", name, len(parts))
		}
		got := count(parts)
		if len(got) != len(want) {
			t.Errorf("%s: item set changed", name)
			continue
		}
		for item, c := range want {
			if got[item] != c {
				t.Errorf("%s: count of %d = %d, want %d", name, item, got[item], c)
			}
		}
	}
}

func TestPartitionByHashDisjoint(t *testing.T) {
	stream := NewZipf(100, 1.2, 5).Stream(1000)
	parts := PartitionByHash(stream, 4, func(x core.Item) uint64 { return uint64(x) })
	where := make(map[core.Item]int)
	for i, p := range parts {
		for _, x := range p {
			if j, ok := where[x]; ok && j != i {
				t.Fatalf("item %d appears in parts %d and %d", x, j, i)
			}
			where[x] = i
		}
	}
}

func TestPartitionPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"roundrobin": func() { PartitionRoundRobin([]int{1}, 0) },
		"contiguous": func() { PartitionContiguous([]int{1}, 0) },
		"random":     func() { PartitionRandomSizes([]int{1}, 0, 1) },
		"byhash":     func() { PartitionByHash([]int{1}, 0, func(int) uint64 { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with p=0 did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: contiguous partitioning concatenates back to the original.
func TestPartitionContiguousProperty(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		p := int(pRaw%16) + 1
		stream := make([]core.Item, len(raw))
		for i, v := range raw {
			stream[i] = core.Item(v)
		}
		parts := PartitionContiguous(stream, p)
		var back []core.Item
		for _, part := range parts {
			back = append(back, part...)
		}
		if len(back) != len(stream) {
			return false
		}
		for i := range back {
			if back[i] != stream[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
