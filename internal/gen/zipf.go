package gen

import (
	"math"
	"sort"

	"repro/internal/core"
)

// Zipf samples items from a Zipf (power-law) distribution over the
// universe {0, 1, …, U-1}: rank r (1-based) has probability
// proportional to 1/r^alpha. Unlike math/rand's Zipf it supports any
// alpha >= 0 (alpha = 0 degenerates to uniform), which the experiment
// sweeps need, via an exact inverse-CDF table.
//
// Item identities are a fixed pseudo-random permutation of the ranks so
// that heavy items are not the numerically smallest ones — summaries
// must find them, not guess them.
type Zipf struct {
	cdf   []float64 // cdf[i] = P(rank <= i+1)
	items []core.Item
	rng   *RNG
}

// NewZipf builds a Zipf sampler over a universe of size u with skew
// alpha, seeded deterministically. It panics if u <= 0 or alpha < 0.
func NewZipf(u int, alpha float64, seed uint64) *Zipf {
	if u <= 0 {
		panic("gen: NewZipf with non-positive universe")
	}
	if alpha < 0 {
		panic("gen: NewZipf with negative alpha")
	}
	z := &Zipf{
		cdf:   make([]float64, u),
		items: make([]core.Item, u),
		rng:   NewRNG(seed),
	}
	var total float64
	for i := 0; i < u; i++ {
		total += math.Pow(float64(i+1), -alpha)
		z.cdf[i] = total
	}
	for i := range z.cdf {
		z.cdf[i] /= total
	}
	z.cdf[u-1] = 1 // guard against rounding
	// Permute identities with an RNG derived from (but distinct from)
	// the sampling RNG so Sample order does not depend on u.
	perm := NewRNG(seed ^ 0xa5a5a5a5a5a5a5a5)
	for i := range z.items {
		z.items[i] = core.Item(i)
	}
	Shuffle(perm, z.items)
	return z
}

// Universe returns the universe size.
func (z *Zipf) Universe() int { return len(z.items) }

// ItemForRank returns the item identity assigned to 1-based rank r.
func (z *Zipf) ItemForRank(r int) core.Item { return z.items[r-1] }

// Sample draws one item.
func (z *Zipf) Sample() core.Item {
	u := z.rng.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.items) {
		i = len(z.items) - 1
	}
	return z.items[i]
}

// Stream draws n items.
func (z *Zipf) Stream(n int) []core.Item {
	out := make([]core.Item, n)
	for i := range out {
		out[i] = z.Sample()
	}
	return out
}

// Uniform returns a stream of n items drawn uniformly from a universe
// of size u.
func Uniform(n, u int, seed uint64) []core.Item {
	rng := NewRNG(seed)
	out := make([]core.Item, n)
	for i := range out {
		out[i] = core.Item(rng.Intn(u))
	}
	return out
}

// Sequential returns the stream 0, 1, …, n-1: every item distinct, the
// worst case for counter-based summaries (constant eviction pressure).
func Sequential(n int) []core.Item {
	out := make([]core.Item, n)
	for i := range out {
		out[i] = core.Item(i)
	}
	return out
}

// Blocks returns a stream consisting of each item i in {0..u-1}
// repeated n/u times, in item order. Sorted runs are the adversarial
// case for merge-based summaries because partitions become disjoint.
func Blocks(n, u int) []core.Item {
	out := make([]core.Item, 0, n)
	per := n / u
	if per == 0 {
		per = 1
	}
	for i := 0; len(out) < n; i++ {
		for j := 0; j < per && len(out) < n; j++ {
			out = append(out, core.Item(i%u))
		}
	}
	return out
}
