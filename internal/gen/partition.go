package gen

// Partitioners split a stream across p "sites" for distributed-merge
// experiments. Each models a different data-placement regime:
//
//   - PartitionRoundRobin: balanced, well-mixed (easy case).
//   - PartitionContiguous: each site sees a contiguous time slice
//     (models sharding by arrival time).
//   - PartitionRandomSizes: sites receive random, unequal shares
//     (exercises the unequal-weight merge paths).
//   - PartitionByHash: each distinct item lives entirely at one site
//     (disjoint supports — the adversarial case for merging, used by
//     the total-error experiments).

// PartitionRoundRobin deals items to p sites in rotation.
func PartitionRoundRobin[T any](stream []T, p int) [][]T {
	if p <= 0 {
		panic("gen: non-positive partition count")
	}
	parts := make([][]T, p)
	for i, x := range stream {
		parts[i%p] = append(parts[i%p], x)
	}
	return parts
}

// PartitionContiguous splits the stream into p contiguous slices of
// near-equal length. The returned slices alias the input.
func PartitionContiguous[T any](stream []T, p int) [][]T {
	if p <= 0 {
		panic("gen: non-positive partition count")
	}
	parts := make([][]T, p)
	n := len(stream)
	for i := 0; i < p; i++ {
		lo, hi := i*n/p, (i+1)*n/p
		parts[i] = stream[lo:hi]
	}
	return parts
}

// PartitionRandomSizes splits the stream into p contiguous slices with
// random cut points (every site gets at least zero items; empty parts
// are possible and intentionally exercised).
func PartitionRandomSizes[T any](stream []T, p int, seed uint64) [][]T {
	if p <= 0 {
		panic("gen: non-positive partition count")
	}
	rng := NewRNG(seed)
	cuts := make([]int, p-1)
	for i := range cuts {
		cuts[i] = rng.Intn(len(stream) + 1)
	}
	// Insertion-sort the cut points (p is small).
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	parts := make([][]T, p)
	prev := 0
	for i, c := range cuts {
		parts[i] = stream[prev:c]
		prev = c
	}
	parts[p-1] = stream[prev:]
	return parts
}

// PartitionByHash routes every occurrence of an item to the site
// selected by a hash of the item, so supports are disjoint across
// sites. The hash function is the caller's (typically identity for
// core.Item streams).
func PartitionByHash[T any](stream []T, p int, hash func(T) uint64) [][]T {
	if p <= 0 {
		panic("gen: non-positive partition count")
	}
	parts := make([][]T, p)
	for _, x := range stream {
		i := int(hash(x) % uint64(p))
		parts[i] = append(parts[i], x)
	}
	return parts
}
